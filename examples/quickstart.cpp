// Quickstart: stand up an OMOS server, define a library meta-object the way
// Figure 1 of the paper does (constraint-list + merge), define a client
// program meta-object, and execute it twice — the second invocation is
// served entirely from the image cache.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/core/server.h"
#include "src/vasm/assembler.h"

using namespace omos;

namespace {

template <typename T>
T Check(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, r.error().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}
void Check(const Result<void>& r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, r.error().ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  // The substrate: a simulated kernel (tasks, paged memory, syscalls).
  Kernel kernel;
  OmosServer server(kernel);

  // Register relocatable fragments in the OMOS namespace. Real deployments
  // would decode them from XOF files; here we assemble from source.
  Check(server.AddFragment("/lib/crt0.o", Check(Assemble(R"(
.text
.global _start
_start:
  call main
  sys 0
)", "crt0.o"), "assemble crt0")), "add crt0");

  Check(server.AddFragment("/libc/print.o", Check(Assemble(R"(
.text
.global print
print:             ; print(buf, len)
  mov r2, r1
  mov r1, r0
  movi r0, 1
  sys 1
  ret
)", "print.o"), "assemble print")), "add print");

  Check(server.AddFragment("/obj/hello.o", Check(Assemble(R"(
.text
.global main
main:
  push lr
  lea r0, msg
  movi r1, 17
  call print
  pop lr
  movi r0, 0
  ret
.data
msg: .asciiz "hello from OMOS!\n"
)", "hello.o"), "assemble hello")), "add hello");

  // A library meta-object, shaped like the paper's Figure 1: a default
  // address constraint followed by the construction expression.
  Check(server.DefineLibrary("/lib/libc", R"(
(constraint-list "T" 0x1000000 "D" 0x40200000)
(merge /libc/print.o)
)"), "define /lib/libc");

  // The client program merges crt0, its own object, and the library —
  // exactly the (merge /lib/crt0.o /obj/ls.o /lib/libc) example from §3.3.
  Check(server.DefineMeta("/bin/hello", "(merge /lib/crt0.o /obj/hello.o /lib/libc)"),
        "define /bin/hello");

  // First exec: cache miss — OMOS evaluates the m-graph, links, places and
  // caches the images, then maps them into the new task.
  for (int i = 0; i < 2; ++i) {
    TaskId id = Check(server.IntegratedExec("/bin/hello", {"hello"}), "exec");
    Task* task = kernel.FindTask(id);
    Check(kernel.RunTask(*task), "run");
    std::printf("run %d: exit=%d output=%s", i + 1, task->exit_code(), task->output().c_str());
    std::printf("        sys cycles: %llu (run 2 is served from the image cache)\n",
                static_cast<unsigned long long>(task->sys_cycles()));
  }

  const CacheStats& stats = server.cache_stats();
  std::printf("cache: %llu hits, %llu misses, %llu bytes cached\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.bytes_cached));
  std::printf("library placed at its constrained base: /lib/libc text @ 0x1000000\n");
  return 0;
}
