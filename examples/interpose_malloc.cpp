// Figure 2 of the paper, executed for real: produce a version of the C
// library where a new malloc traps calls to the original —
//
//   (hide "_REAL_malloc"
//     (merge
//       (restrict "^malloc$"
//         (copy_as "^malloc$" "_REAL_malloc"
//           (merge /bin/app.o /lib/libc.o)))
//       /lib/test_malloc.o))
//
// The wrapper counts allocations into a data word and forwards to the
// stashed original; internal library callers of malloc are rebound to the
// wrapper too (the module operations make binding virtual by default).
//
// Build & run:  ./build/examples/interpose_malloc
#include <cstdio>

#include "src/core/server.h"
#include "src/vasm/assembler.h"

using namespace omos;

namespace {
template <typename T>
T Check(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, r.error().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}
void Check(const Result<void>& r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, r.error().ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  Kernel kernel;
  OmosServer server(kernel);

  // libc: a bump-allocating malloc plus a helper that itself calls malloc
  // (so we can see *internal* callers being interposed on as well).
  Check(server.AddFragment("/lib/libc.o", Check(Assemble(R"(
.text
.global malloc
malloc:                ; dumb bump allocator over a static arena
  lea r1, arena_next
  ld r2, [r1+0]
  add r3, r2, r0
  st r3, [r1+0]
  mov r0, r2
  ret
.global strdup_empty   ; allocates via malloc internally
strdup_empty:
  push lr
  movi r0, 1
  call malloc
  movi r1, 0
  stb r1, [r0+0]
  pop lr
  ret
.data
.align 4
arena_next: .word arena
.bss
arena: .space 4096
)", "libc.o"), "assemble libc")), "add libc");

  // The interposing malloc: counts calls, then forwards to _REAL_malloc.
  Check(server.AddFragment("/lib/test_malloc.o", Check(Assemble(R"(
.text
.global malloc
malloc:
  lea r1, malloc_count
  ld r2, [r1+0]
  addi r2, r2, 1
  st r2, [r1+0]
  jmp _REAL_malloc      ; tail-call the preserved original
.data
.align 4
.global malloc_count
malloc_count: .word 0
)", "test_malloc.o"), "assemble wrapper")), "add wrapper");

  // The application: calls malloc directly AND through strdup_empty, then
  // exits with the interposer's counter — which should therefore be 3.
  Check(server.AddFragment("/bin/app.o", Check(Assemble(R"(
.text
.global _start
_start:
  movi r0, 16
  call malloc
  movi r0, 8
  call malloc
  call strdup_empty     ; internal malloc call — also interposed
  lea r1, malloc_count
  ld r0, [r1+0]
  sys 0
)", "app.o"), "assemble app")), "add app");

  // Figure 2, verbatim structure.
  Check(server.DefineMeta("/bin/traced", R"(
(hide "_REAL_malloc"
  (merge
    (restrict "^malloc$"
      (copy_as "^malloc$" "_REAL_malloc"
        (merge /bin/app.o /lib/libc.o)))
    /lib/test_malloc.o))
)"), "define /bin/traced");

  TaskId id = Check(server.IntegratedExec("/bin/traced", {"traced"}), "exec");
  Task* task = kernel.FindTask(id);
  Check(kernel.RunTask(*task), "run");
  std::printf("malloc interposition example (paper Fig. 2)\n");
  std::printf("  malloc calls trapped by the wrapper: %d (expected 3 —\n", task->exit_code());
  std::printf("  two direct calls plus one from inside the library itself)\n");
  return task->exit_code() == 3 ? 0 : 1;
}
