// Monitoring-driven routine reordering (§4.1, §6): OMOS transparently
// interposes logging wrappers around every routine ("monitor"
// specialization), derives a preferred order from the observed calls, and
// generates a new implementation with hot routines packed together
// ("reorder" specialization) — fewer text pages touched, fewer page faults.
//
// Build & run:  ./build/examples/reorder_opt
#include <cstdio>
#include <sstream>

#include "src/core/server.h"
#include "src/support/strings.h"
#include "src/vasm/assembler.h"

using namespace omos;

namespace {
template <typename T>
T Check(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, r.error().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}
void Check(const Result<void>& r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, r.error().ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  Kernel kernel;
  OmosServer server(kernel);

  // 24 routines of ~1KB each; main hammers routines 0, 8 and 16 — scattered
  // across pages in the natural link order.
  std::string meta = "(merge /obj/main.o";
  for (int i = 0; i < 24; ++i) {
    std::ostringstream src;
    src << ".text\n.global rt" << i << "\nrt" << i << ":\n  addi r0, r0, " << (i + 1)
        << "\n  ret\n.space 1000\n";
    std::string path = StrCat("/obj/rt", i, ".o");
    Check(server.AddFragment(path, Check(Assemble(src.str(), StrCat("rt", i, ".o")), "assemble")),
          "add routine");
    meta += " " + path;
  }
  meta += ")";
  Check(server.AddFragment("/obj/main.o", Check(Assemble(R"(
.text
.global _start
_start:
  movi r4, 0
  movi r0, 0
loop:
  call rt0
  call rt8
  call rt16
  addi r4, r4, 1
  movi r1, 50
  blt r4, r1, loop
  movi r0, 0
  sys 0
)", "main.o"), "assemble main")), "add main");
  Check(server.DefineMeta("/bin/app", meta), "define app");

  auto run = [&](const Specialization& spec, const char* label) {
    TaskId id = Check(server.IntegratedExec("/bin/app", {"app"}, spec), "exec");
    Task* task = kernel.FindTask(id);
    Check(kernel.RunTask(*task), "run");
    std::printf("  %-18s elapsed=%8llu cycles, text pages touched=%zu\n", label,
                static_cast<unsigned long long>(task->elapsed_cycles()),
                task->touched_text_pages());
    uint64_t elapsed = task->elapsed_cycles();
    server.ReleaseTask(id);
    kernel.DestroyTask(id);
    return elapsed;
  };

  std::printf("monitoring-driven reordering (paper sec. 4.1):\n");
  uint64_t before = run({}, "natural order");
  (void)run(Specialization{"monitor", {}}, "monitored run");

  Check(server.DerivePreferredOrder("/bin/app"), "derive order");
  auto counts = Check(server.MonitorCounts("/bin/app"), "counts");
  std::printf("  hottest routines observed:");
  for (size_t i = 0; i < counts.size() && i < 4; ++i) {
    // counts is unsorted; just show the nonzero ones.
    if (counts[i].second > 0) {
      std::printf(" %s(%llu)", counts[i].first.c_str(),
                  static_cast<unsigned long long>(counts[i].second));
    }
  }
  std::printf(" ...\n");

  uint64_t after = run(Specialization{"reorder", {}}, "usage order");
  std::printf("  speedup from reordering: %.1f%%\n",
              100.0 * (1.0 - static_cast<double>(after) / static_cast<double>(before)));
  return after < before ? 0 : 1;
}
