// Figure 3 of the paper: use `source` to fill in a missing variable
// definition from C text, and `rename` to reroute calls to a routine that
// should never be called into abort() —
//
//   (merge
//     (source "c" "int undef_var = 0;\n")
//     (rename "^undefined_routine$" "abort" /lib/lib-with-problems))
//
// Build & run:  ./build/examples/rename_abort
#include <cstdio>

#include "src/core/server.h"
#include "src/vasm/assembler.h"

using namespace omos;

namespace {
template <typename T>
T Check(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, r.error().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}
void Check(const Result<void>& r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, r.error().ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  Kernel kernel;
  OmosServer server(kernel);

  // A library with problems: reads a variable nobody defines and calls a
  // routine nobody implements. As shipped, it cannot be linked at all.
  Check(server.AddFragment("/lib/lib-with-problems.o", Check(Assemble(R"(
.text
.global _start
_start:
  lea r1, undef_var
  ld r0, [r1+0]          ; undefined data reference
  call undefined_routine ; undefined routine reference
  sys 0
)", "problems.o"), "assemble problems")), "add problems");

  Check(server.AddFragment("/lib/abort.o", Check(Assemble(R"(
.text
.global abort
abort:
  lea r0, msg
  movi r1, 29
  mov r2, r1
  mov r1, r0
  movi r0, 2
  sys 1
  movi r0, 134
  sys 0
.data
msg: .asciiz "abort: rerouted routine hit\n"
)", "abort.o"), "assemble abort")), "add abort");

  // Without the fixes, instantiation fails with unresolved references:
  Check(server.DefineMeta("/bin/broken", "(merge /lib/lib-with-problems.o /lib/abort.o)"),
        "define broken");
  auto broken = server.Instantiate("/bin/broken", {}, nullptr);
  std::printf("unfixed link attempt: %s\n",
              broken.ok() ? "unexpectedly succeeded" : broken.error().ToString().c_str());

  // Figure 3: synthesize the missing variable from C source and reroute the
  // undefined routine to abort.
  Check(server.DefineMeta("/bin/fixed", R"(
(merge
  /lib/abort.o
  (source "c" "int undef_var = 0;\n")
  (rename "^undefined_routine$" "abort" "refs"
    /lib/lib-with-problems.o))
)"), "define fixed");

  TaskId id = Check(server.IntegratedExec("/bin/fixed", {"fixed"}), "exec");
  Task* task = kernel.FindTask(id);
  Check(kernel.RunTask(*task), "run");
  std::printf("fixed program ran; output: %s", task->output().c_str());
  std::printf("exit code %d (the distinctive abort status)\n", task->exit_code());
  return task->exit_code() == 134 ? 0 : 1;
}
