// Partial-image shared libraries (§4.2): the client executable carries lazy
// stubs for each referenced library entry point; the first call through a
// stub contacts OMOS, which maps the library implementation into the task
// and patches the indirect branch table.
//
// This example makes the laziness visible: it prints the task's mapped
// regions before the first library call and after.
//
// Build & run:  ./build/examples/partial_image
#include <cstdio>

#include "src/core/server.h"
#include "src/vasm/assembler.h"

using namespace omos;

namespace {
template <typename T>
T Check(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, r.error().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}
void Check(const Result<void>& r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, r.error().ToString().c_str());
    std::exit(1);
  }
}

void DumpRegions(const Task& task, const char* when) {
  std::printf("%s:\n", when);
  for (const auto& region : task.space().Regions()) {
    std::printf("  %08x-%08x %c%c%c %s %s\n", region.base, region.base + region.size,
                (region.prot & kProtRead) ? 'r' : '-', (region.prot & kProtWrite) ? 'w' : '-',
                (region.prot & kProtExec) ? 'x' : '-', region.shared ? "shared " : "private",
                region.name.c_str());
  }
}
}  // namespace

int main() {
  Kernel kernel;
  OmosServer server(kernel);

  Check(server.AddFragment("/libm/sq.o", Check(Assemble(R"(
.text
.global square
square:
  mul r0, r0, r0
  ret
.global cube
cube:
  push lr
  push r4
  mov r4, r0
  call square
  mul r0, r0, r4
  pop r4
  pop lr
  ret
)", "sq.o"), "assemble libm")), "add libm");
  Check(server.DefineLibrary("/lib/libm", "(merge /libm/sq.o)"), "define libm");

  Check(server.AddFragment("/obj/app.o", Check(Assemble(R"(
.text
.global _start
_start:
  movi r0, 3
  call cube        ; first call: stub traps to OMOS, library is mapped
  sys 0
)", "app.o"), "assemble app")), "add app");

  // The client links against the *dynamic* specialization of the library —
  // OMOS generates the stub fragment (paper: "lib-dynamic") and caches the
  // implementation separately ("lib-dynamic-impl").
  Check(server.DefineMeta("/bin/app",
                          "(merge /obj/app.o (specialize \"lib-dynamic\" /lib/libm))"),
        "define app");

  TaskId id = Check(server.IntegratedExec("/bin/app", {"app"}), "exec");
  Task* task = kernel.FindTask(id);
  DumpRegions(*task, "before first library call (stubs only — no libm mapped)");
  Check(kernel.RunTask(*task), "run");
  DumpRegions(*task, "after run (first call demand-loaded the library)");
  std::printf("cube(3) = %d (expected 27)\n", task->exit_code());
  return task->exit_code() == 27 ? 0 : 1;
}
