// A tiny "shell session" against an OMOS-backed /bin (§5): the server's
// namespace is exported into the filesystem as `#!omos` interpreter files,
// and each command line execs through the normal path-based route. Every
// program after the first warm-up run is served entirely from the image
// cache — the persistent-linker experience.
//
// Build & run:  ./build/examples/omos_shell
#include <cstdio>
#include <sstream>

#include "src/core/server.h"
#include "src/support/strings.h"
#include "src/vasm/assembler.h"
#include "src/workloads/workloads.h"

using namespace omos;

namespace {
template <typename T>
T Check(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, r.error().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}
void Check(const Result<void>& r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, r.error().ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  Kernel kernel;
  OmosServer server(kernel);
  PopulateLsData(kernel.fs());

  // Stock the world: libc + three little utilities, all OMOS meta-objects.
  WorkloadParams params;
  params.libc_filler = 20;
  params.alpha_functions = 4;
  params.libm_functions = 4;
  params.libl_functions = 4;
  params.libcpp_functions = 4;
  params.codegen_files = 1;
  params.codegen_funcs_per_file = 1;
  Workloads w = Check(BuildWorkloads(params), "build workloads");
  Check(server.AddFragment("/lib/crt0.o", w.crt0), "crt0");
  Check(server.AddFragment("/obj/ls.o", w.ls_obj), "ls.o");
  Check(server.AddArchive("/libc", w.libc), "libc");
  Check(server.DefineLibrary("/lib/libc", "(constraint-list \"T\" 0x2000000)\n(merge /libc)"),
        "libc meta");
  Check(server.DefineMeta("/bin/ls", "(merge /lib/crt0.o /obj/ls.o /lib/libc)"), "ls meta");

  Check(server.AddFragment("/obj/echo.o", Check(Assemble(R"(
.text
.global main
main:                 ; echo: print argv[1..] separated by spaces
  push lr
  push r4
  push r5
  push r6
  mov r4, r0          ; argc
  mov r5, r1          ; argv
  movi r6, 1
echo_loop:
  bge r6, r4, echo_done
  movi r1, 4
  mul r0, r6, r1
  add r0, r5, r0
  ld r0, [r0+0]
  call print_str
  addi r6, r6, 1
  blt r6, r4, echo_space
  br echo_loop
echo_space:
  lea r0, space
  call print_str
  br echo_loop
echo_done:
  lea r0, newline
  call print_str
  pop r6
  pop r5
  pop r4
  pop lr
  movi r0, 0
  ret
.data
space: .asciiz " "
newline: .asciiz "\n"
)", "echo.o"), "assemble echo")), "echo.o");
  Check(server.DefineMeta("/bin/echo", "(merge /lib/crt0.o /obj/echo.o /lib/libc)"),
        "echo meta");

  Check(server.AddFragment("/obj/true.o", Check(Assemble(R"(
.text
.global main
main:
  movi r0, 0
  ret
)", "true.o"), "assemble true")), "true.o");
  Check(server.DefineMeta("/bin/true", "(merge /lib/crt0.o /obj/true.o /lib/libc)"),
        "true meta");

  // §5: /bin becomes a filesystem backed only by OMOS.
  int exported = Check(server.ExportNamespaceToFs("/bin", "/bin"), "export /bin");
  std::printf("exported %d OMOS meta-objects into /bin\n\n", exported);

  // The "session": each line is tokenized and exec'd through /bin.
  const char* script[] = {
      "true",
      "echo hello from the omos shell",
      "ls /data",
      "echo second ls is served from the image cache",
      "ls /data",
  };
  for (const char* line : script) {
    std::vector<std::string> args = SplitString(line, ' ');
    std::printf("$ %s\n", line);
    auto exec = server.ExecFile(StrCat("/bin/", args[0]), args, /*integrated=*/true);
    if (!exec.ok()) {
      std::printf("sh: %s\n", exec.error().ToString().c_str());
      continue;
    }
    Task* task = kernel.FindTask(*exec);
    if (auto run = kernel.RunTask(*task); !run.ok()) {
      std::printf("sh: %s\n", run.error().ToString().c_str());
      continue;
    }
    std::fputs(task->output().c_str(), stdout);
    if (task->exit_code() != 0) {
      std::printf("[exit %d]\n", task->exit_code());
    }
    server.ReleaseTask(*exec);
    kernel.DestroyTask(*exec);
  }

  const CacheStats& stats = server.cache_stats();
  std::printf("\ncache after session: %llu hits, %llu misses\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses));
  return 0;
}
