// A tiny "shell session" against an OMOS-backed /bin (§5): the server's
// namespace is exported into the filesystem as `#!omos` interpreter files,
// and each command line execs through the normal path-based route. Every
// program after the first warm-up run is served entirely from the image
// cache — the persistent-linker experience.
//
// Build & run:  ./build/examples/omos_shell
//
// Observability (omtrace): the session runs with tracing and the SimISA
// cycle profiler enabled. Three built-in commands talk to the server over
// the same IPC channel a remote system manager would use (kIntrospect):
//   help               list the built-in commands
//   stats              print the unified metrics snapshot
//   trace <file>       dump Chrome trace_event JSON (chrome://tracing)
//   profile            symbol-level profile of the last client that ran
//   placements         global layout: per-object bases, generation stamps,
//                      the conflict log, and the current layout generation
//   upgrade <lib> <blueprint>
//                      hot-patch a lib-dynamic library mid-session
//                      (docs/upgrade.md) and drive the roll to completion
#include <cstdio>
#include <sstream>

#include "src/core/server.h"
#include "src/ipc/channel.h"
#include "src/ipc/message.h"
#include "src/os/sim_fs.h"
#include "src/store/image_store.h"
#include "src/support/strings.h"
#include "src/support/trace.h"
#include "src/vasm/assembler.h"
#include "src/workloads/workloads.h"

using namespace omos;

namespace {
template <typename T>
T Check(Result<T> r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, r.error().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}
void Check(const Result<void>& r, const char* what) {
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, r.error().ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  Kernel kernel;
  OmosServer server(kernel);
  PopulateLsData(kernel.fs());

  // Persistence (PR 6): every image built this session is published to a
  // crash-safe on-disk store; a restarted shell would adopt them instead of
  // re-linking. The `stats` builtin reports the store counters.
  SimFs disk;
  ImageStore store(disk, "/omos/store", &kernel.costs());
  Check(store.Open(), "open image store");
  server.AttachStore(&store);

  // Observe the whole session: spans from every layer, plus PC samples
  // every 16 retired instructions of any client that runs.
  TraceSetEnabled(true);
  CycleProfiler::Start(/*period=*/16);

  // Stock the world: libc + three little utilities, all OMOS meta-objects.
  WorkloadParams params;
  params.libc_filler = 20;
  params.alpha_functions = 4;
  params.libm_functions = 4;
  params.libl_functions = 4;
  params.libcpp_functions = 4;
  params.codegen_files = 1;
  params.codegen_funcs_per_file = 1;
  Workloads w = Check(BuildWorkloads(params), "build workloads");
  Check(server.AddFragment("/lib/crt0.o", w.crt0), "crt0");
  Check(server.AddFragment("/obj/ls.o", w.ls_obj), "ls.o");
  Check(server.AddArchive("/libc", w.libc), "libc");
  Check(server.DefineLibrary("/lib/libc", "(constraint-list \"T\" 0x2000000)\n(merge /libc)"),
        "libc meta");
  Check(server.DefineMeta("/bin/ls", "(merge /lib/crt0.o /obj/ls.o /lib/libc)"), "ls meta");

  Check(server.AddFragment("/obj/echo.o", Check(Assemble(R"(
.text
.global main
main:                 ; echo: print argv[1..] separated by spaces
  push lr
  push r4
  push r5
  push r6
  mov r4, r0          ; argc
  mov r5, r1          ; argv
  movi r6, 1
echo_loop:
  bge r6, r4, echo_done
  movi r1, 4
  mul r0, r6, r1
  add r0, r5, r0
  ld r0, [r0+0]
  call print_str
  addi r6, r6, 1
  blt r6, r4, echo_space
  br echo_loop
echo_space:
  lea r0, space
  call print_str
  br echo_loop
echo_done:
  lea r0, newline
  call print_str
  pop r6
  pop r5
  pop r4
  pop lr
  movi r0, 0
  ret
.data
space: .asciiz " "
newline: .asciiz "\n"
)", "echo.o"), "assemble echo")), "echo.o");
  Check(server.DefineMeta("/bin/echo", "(merge /lib/crt0.o /obj/echo.o /lib/libc)"),
        "echo meta");

  Check(server.AddFragment("/obj/true.o", Check(Assemble(R"(
.text
.global main
main:
  movi r0, 0
  ret
)", "true.o"), "assemble true")), "true.o");
  Check(server.DefineMeta("/bin/true", "(merge /lib/crt0.o /obj/true.o /lib/libc)"),
        "true meta");

  // A lib-dynamic utility for the live-upgrade demo: `version` exits with
  // whatever vernum() returns, and the library is hot-patched mid-session.
  Check(server.AddFragment("/obj/ver1.o", Check(Assemble(R"(
.text
.global vernum
vernum:
  movi r0, 1
  ret
)", "ver1.o"), "assemble ver1")), "ver1.o");
  Check(server.AddFragment("/obj/ver2.o", Check(Assemble(R"(
.text
.global vernum
vernum:
  movi r0, 3
  ret
)", "ver2.o"), "assemble ver2")), "ver2.o");
  Check(server.AddFragment("/obj/version.o", Check(Assemble(R"(
.text
.global main
main:
  push lr
  call vernum
  pop lr
  ret
)", "version.o"), "assemble version")), "version.o");
  Check(server.DefineLibrary("/lib/verlib", "(merge /obj/ver1.o)"), "verlib meta");
  Check(server.DefineMeta("/bin/version",
                          "(merge /lib/crt0.o /obj/version.o"
                          " (specialize \"lib-dynamic\" /lib/verlib))"),
        "version meta");

  // §5: /bin becomes a filesystem backed only by OMOS.
  int exported = Check(server.ExportNamespaceToFs("/bin", "/bin"), "export /bin");
  std::printf("exported %d OMOS meta-objects into /bin\n\n", exported);

  // Introspection goes over the wire, like a remote system manager would.
  Channel channel = server.MakeChannel();
  auto introspect = [&](const std::string& cmd, uint32_t handle,
                        const std::string& spec = "") -> OmosReply {
    OmosRequest request;
    request.op = OmosOp::kIntrospect;
    request.path = cmd;
    request.task_handle = handle;
    request.specialization = spec;
    OmosReply reply = Check(channel.Call(request, nullptr), "introspect");
    if (!reply.ok) {
      std::printf("sh: introspect %s: %s\n", cmd.c_str(), reply.error.c_str());
    }
    return reply;
  };

  // The last-run task stays alive until the next exec (or shell exit), so
  // `profile` can resolve its PCs through the server's runtime state.
  TaskId last_task = 0;
  bool have_last = false;
  auto retire_last = [&] {
    if (have_last) {
      server.ReleaseTask(last_task);
      kernel.DestroyTask(last_task);
      have_last = false;
    }
  };

  // The "session": each line is tokenized; built-ins run here, everything
  // else execs through /bin.
  const char* script[] = {
      "help",
      "true",
      "echo hello from the omos shell",
      "ls /data",
      "echo second ls is served from the image cache",
      "ls /data",
      "version",
      "upgrade /lib/verlib (merge /obj/ver2.o)",
      "version",
      "stats",
      "placements",
      "trace omos_shell.trace.json",
      "profile",
  };
  for (const char* line : script) {
    std::vector<std::string> args = SplitString(line, ' ');
    std::printf("$ %s\n", line);
    if (args[0] == "help") {
      std::printf("built-ins: help, stats, trace <file>, profile, placements,\n"
                  "           upgrade <lib> <blueprint>\n"
                  "anything else execs through the OMOS-backed /bin\n");
      continue;
    }
    if (args[0] == "upgrade") {
      if (args.size() < 3) {
        std::printf("usage: upgrade <libpath> <blueprint>\n");
        continue;
      }
      // The old version stays pinned while the last client is held for
      // `profile`; retire it so the roll can drain.
      retire_last();
      std::string blueprint = args[2];
      for (size_t i = 3; i < args.size(); ++i) {
        blueprint += " " + args[i];
      }
      // Kick the roll over the wire (blueprint rides in the spec field),
      // then drive it in-process the way a serving loop would.
      OmosReply reply = introspect(StrCat("upgrade ", args[1]), 0, blueprint);
      if (!reply.ok) {
        continue;
      }
      std::fputs(reply.payload.c_str(), stdout);
      OmosServer::UpgradeStatus status = server.DrainUpgrade();
      for (int round = 0; round < 64 && !status.terminal(); ++round) {
        status = server.DrainUpgrade();
      }
      OmosReply after = introspect("upgrade-status", 0);
      std::fputs(after.payload.c_str(), stdout);
      continue;
    }
    if (args[0] == "stats") {
      OmosReply reply = introspect("stats-text", 0);
      std::fputs(reply.payload.c_str(), stdout);
      // The store.* counters ride in the same wire snapshot.
      OmosReply metrics = introspect("stats", 0);
      std::printf("persistence:\n");
      for (const auto& [name, value] : metrics.metrics) {
        if (StartsWith(name, "store.")) {
          std::printf("  %-24s %llu\n", name.c_str(),
                      static_cast<unsigned long long>(value));
        }
      }
      // Wire traffic: every exec-protocol byte this shell exchanged.
      std::printf("ipc:\n");
      for (const auto& [name, value] : metrics.metrics) {
        if (name == "ipc.bytes_sent" || name == "ipc.bytes_received") {
          std::printf("  %-24s %llu\n", name.c_str(),
                      static_cast<unsigned long long>(value));
        }
      }
      // Live-upgrade counters (docs/upgrade.md): rolls, migrated frames,
      // repointed slots, degradations.
      std::printf("live upgrade:\n");
      for (const auto& [name, value] : metrics.metrics) {
        if (StartsWith(name, "upgrade.")) {
          std::printf("  %-24s %llu\n", name.c_str(),
                      static_cast<unsigned long long>(value));
        }
      }
      // Block-engine counters (docs/perf.md): predecoded superblocks,
      // block/TLB reuse, and whole-cache invalidations.
      std::printf("engine:\n");
      for (const auto& [name, value] : metrics.metrics) {
        if (StartsWith(name, "engine.")) {
          std::printf("  %-24s %llu\n", name.c_str(),
                      static_cast<unsigned long long>(value));
        }
      }
      continue;
    }
    if (args[0] == "trace") {
      OmosReply reply = introspect("trace", 0);
      const char* path = args.size() > 1 ? args[1].c_str() : "omos_shell.trace.json";
      if (std::FILE* f = std::fopen(path, "w")) {
        std::fwrite(reply.payload.data(), 1, reply.payload.size(), f);
        std::fclose(f);
      }
      auto parsed = ParseChromeTrace(reply.payload);
      std::printf("wrote %s (%zu events; open in chrome://tracing)\n", path,
                  parsed.ok() ? parsed->size() : 0);
      continue;
    }
    if (args[0] == "profile") {
      OmosReply reply = introspect("profile", have_last ? last_task : 0);
      std::fputs(reply.payload.c_str(), stdout);
      continue;
    }
    if (args[0] == "placements") {
      // The namespace-global layout a fleet of clients shares: where every
      // cached image lives, the stamp prelinked execs validate against, and
      // any recorded placement conflicts awaiting a re-solve.
      OmosReply reply = introspect("placements", 0);
      std::fputs(reply.payload.c_str(), stdout);
      continue;
    }
    retire_last();
    auto exec = server.ExecFile(StrCat("/bin/", args[0]), args, /*integrated=*/true);
    if (!exec.ok()) {
      std::printf("sh: %s\n", exec.error().ToString().c_str());
      continue;
    }
    Task* task = kernel.FindTask(*exec);
    if (auto run = kernel.RunTask(*task); !run.ok()) {
      std::printf("sh: %s\n", run.error().ToString().c_str());
      continue;
    }
    std::fputs(task->output().c_str(), stdout);
    if (task->exit_code() != 0) {
      std::printf("[exit %d]\n", task->exit_code());
    }
    last_task = *exec;
    have_last = true;
  }
  retire_last();

  // A real session would end with a durable snapshot so the next boot
  // restores the namespace and adopts every image without re-linking.
  Check(server.PersistTo(store), "persist session");

  const CacheStats& stats = server.cache_stats();
  std::printf("\ncache after session: %llu hits, %llu misses\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses));
  std::printf("store after session: %llu images published, %zu live\n",
              static_cast<unsigned long long>(store.stats().puts.load()),
              store.entry_count());
  return 0;
}
