// OFE — the Object File Editor (§8.1): "a non-server version of OMOS [that]
// offers a traditional command interface and manipulates files in the
// normal Unix file namespace."
//
// Usage:
//   ofe symbols  <file.xo>                      list the symbol table
//   ofe size     <file.xo>                      section sizes (size(1))
//   ofe strings  <file.xo>                      printable strings (strings(1))
//   ofe relocs   <file.xo>                      list relocations
//   ofe disasm   <file.xo>                      disassemble text
//   ofe assemble <file.s> <out.xo>              assemble SimISA source
//   ofe convert  <in.xo> <out> (binary|text)    re-encode via a backend
//   ofe rename   <pattern> <new> <in> <out>     rename symbols ('&' = match)
//   ofe hide     <pattern> <in> <out>           demote globals to local
//   ofe weaken   <pattern> <in> <out>           demote globals to weak
//   ofe strip    <in> <out>                     drop unreferenced locals
//   ofe link     <in1.xo> <in2.xo>...           trial link, report stats
//   ofe report   <trace.json>                   aggregate an omtrace dump
//
// With no arguments it runs a self-demonstration in $TMPDIR.
#include <cstdio>
#include <cstdlib>

#include "src/support/strings.h"
#include "src/tools/ofe_lib.h"
#include "src/vasm/assembler.h"

using namespace omos;

namespace {

Result<int> RunCommand(int argc, char** argv) {
  std::string cmd = argv[1];
  if (cmd == "symbols" && argc == 3) {
    OMOS_TRY(ObjectFile object, LoadObjectFile(argv[2]));
    std::fputs(OfeSymbolListing(object).c_str(), stdout);
    return 0;
  }
  if (cmd == "size" && argc == 3) {
    OMOS_TRY(ObjectFile object, LoadObjectFile(argv[2]));
    uint32_t text = object.section(SectionKind::kText).size();
    uint32_t data = object.section(SectionKind::kData).size();
    uint32_t bss = object.section(SectionKind::kBss).size();
    std::printf("   text    data     bss     dec\n%7u %7u %7u %7u %s\n", text, data, bss,
                text + data + bss, object.name().c_str());
    return 0;
  }
  if (cmd == "strings" && argc == 3) {
    OMOS_TRY(ObjectFile object, LoadObjectFile(argv[2]));
    // Printable runs of >= 4 characters in the data section, as strings(1).
    const auto& bytes = object.section(SectionKind::kData).bytes;
    std::string run;
    for (size_t i = 0; i <= bytes.size(); ++i) {
      char c = i < bytes.size() ? static_cast<char>(bytes[i]) : '\0';
      if (i < bytes.size() && c >= 32 && c < 127) {
        run.push_back(c);
      } else {
        if (run.size() >= 4) {
          std::printf("%s\n", run.c_str());
        }
        run.clear();
      }
    }
    return 0;
  }
  if (cmd == "relocs" && argc == 3) {
    OMOS_TRY(ObjectFile object, LoadObjectFile(argv[2]));
    std::fputs(OfeRelocListing(object).c_str(), stdout);
    return 0;
  }
  if (cmd == "disasm" && argc == 3) {
    OMOS_TRY(ObjectFile object, LoadObjectFile(argv[2]));
    OMOS_TRY(std::string text, OfeDisassembly(object));
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  if (cmd == "assemble" && argc == 4) {
    OMOS_TRY(std::vector<uint8_t> source, ReadHostFile(argv[2]));
    OMOS_TRY(ObjectFile object, Assemble(std::string(source.begin(), source.end()), argv[3]));
    OMOS_TRY_VOID(SaveObjectFile(object, argv[3]));
    return 0;
  }
  if (cmd == "convert" && argc == 5) {
    OMOS_TRY(ObjectFile object, LoadObjectFile(argv[2]));
    OMOS_TRY_VOID(SaveObjectFile(object, argv[3], StrCat("xof-", argv[4])));
    return 0;
  }
  if (cmd == "rename" && argc == 6) {
    OMOS_TRY(ObjectFile object, LoadObjectFile(argv[4]));
    OMOS_TRY(ObjectFile edited, OfeRename(object, argv[2], argv[3]));
    OMOS_TRY_VOID(SaveObjectFile(edited, argv[5]));
    return 0;
  }
  if ((cmd == "hide" || cmd == "weaken") && argc == 5) {
    OMOS_TRY(ObjectFile object, LoadObjectFile(argv[3]));
    OMOS_TRY(ObjectFile edited,
             cmd == "hide" ? OfeHide(object, argv[2]) : OfeWeaken(object, argv[2]));
    OMOS_TRY_VOID(SaveObjectFile(edited, argv[4]));
    return 0;
  }
  if (cmd == "strip" && argc == 4) {
    OMOS_TRY(ObjectFile object, LoadObjectFile(argv[2]));
    OMOS_TRY(ObjectFile stripped, OfeStripLocals(object));
    OMOS_TRY_VOID(SaveObjectFile(stripped, argv[3]));
    return 0;
  }
  if (cmd == "report" && argc == 3) {
    OMOS_TRY(std::vector<uint8_t> bytes, ReadHostFile(argv[2]));
    OMOS_TRY(std::string report,
             OfeTraceReport(std::string_view(reinterpret_cast<const char*>(bytes.data()),
                                             bytes.size())));
    std::fputs(report.c_str(), stdout);
    return 0;
  }
  if (cmd == "link" && argc >= 3) {
    std::vector<ObjectFile> objects;
    for (int i = 2; i < argc; ++i) {
      OMOS_TRY(ObjectFile object, LoadObjectFile(argv[i]));
      objects.push_back(std::move(object));
    }
    OMOS_TRY(LinkedImage image, OfeLink(objects, 0x00100000, /*allow_unresolved=*/true));
    std::printf("text %zu bytes, data %zu bytes, %u relocations, %u symbols\n",
                image.text.size(), image.data.size(), image.stats.relocations_applied,
                image.stats.symbols_exported);
    for (const std::string& name : image.unresolved) {
      std::printf("unresolved: %s\n", name.c_str());
    }
    return image.unresolved.empty() ? 0 : 1;
  }
  return Err(ErrorCode::kInvalidArgument, "bad command line (run with no args for a demo)");
}

int SelfDemo() {
  std::printf("=== OFE self-demonstration ===\n");
  const char* tmp = std::getenv("TMPDIR");
  std::string base = StrCat(tmp != nullptr ? tmp : "/tmp", "/ofe_demo");

  auto assembled = Assemble(R"(
.text
.global compute
compute:
  push lr
  call helper
  addi r0, r0, 1
  pop lr
  ret
.global helper
helper:
  movi r0, 41
  ret
)", "demo.o");
  if (!assembled.ok()) {
    std::fprintf(stderr, "%s\n", assembled.error().ToString().c_str());
    return 1;
  }
  ObjectFile object = std::move(assembled).value();

  std::printf("\n-- symbols\n%s", OfeSymbolListing(object).c_str());
  std::printf("\n-- relocs\n%s", OfeRelocListing(object).c_str());
  auto disasm = OfeDisassembly(object);
  std::printf("\n-- disasm\n%s", disasm.ok() ? disasm->c_str() : "?");

  std::printf("\n-- rename ^helper$ internal_helper\n");
  auto renamed = OfeRename(object, "^helper$", "internal_helper");
  if (!renamed.ok()) {
    std::fprintf(stderr, "%s\n", renamed.error().ToString().c_str());
    return 1;
  }
  std::printf("%s", OfeSymbolListing(*renamed).c_str());

  std::printf("\n-- convert through the xof-text backend (the format switch)\n");
  std::string text_path = base + ".xt";
  if (auto saved = SaveObjectFile(object, text_path, "xof-text"); saved.ok()) {
    auto round = LoadObjectFile(text_path);
    std::printf("round-trip: %s\n",
                round.ok() && *round == object ? "identical" : "MISMATCH");
    if (!round.ok() || !(*round == object)) {
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return SelfDemo();
  }
  auto result = RunCommand(argc, argv);
  if (!result.ok()) {
    std::fprintf(stderr, "ofe: %s\n", result.error().ToString().c_str());
    return 1;
  }
  return *result;
}
