// SimISA — the simulated 32-bit RISC-like instruction set.
//
// Every instruction is 8 bytes: opcode, r1, r2, r3, then a 32-bit
// little-endian immediate at offset +4. Relocations patch exactly that
// immediate field, which keeps the linker's relocation engine trivial and
// honest: kAbs32 materializes an absolute address (the self-contained
// shared-library scheme), kPcRel32 a pc-relative displacement (the PIC
// baseline). Branch/call targets are relative to the *next* instruction.
//
// Register convention: r0-r3 arguments / r0 return value, r4-r11
// callee-saved, r12 scratch, r13 stack pointer, r14 link register.
#ifndef OMOS_SRC_ISA_ISA_H_
#define OMOS_SRC_ISA_ISA_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/support/result.h"

namespace omos {

inline constexpr int kNumRegisters = 16;
inline constexpr int kRegSp = 13;
inline constexpr int kRegLr = 14;
inline constexpr uint32_t kInsnSize = 8;

enum class Opcode : uint8_t {
  kHalt = 0,
  kNop,
  // Data movement.
  kMovI,   // r1 = imm
  kMov,    // r1 = r2
  kLea,    // r1 = imm (same as MovI; used with an abs32 reloc to take an address)
  kLeaPc,  // r1 = pc_next + imm (PIC address materialization)
  // ALU, three-register.
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kAnd,
  kOr,
  kXor,
  kShl,
  kShr,
  kAddI,  // r1 = r2 + imm
  // Memory.
  kLd,    // r1 = mem32[r2 + imm]
  kSt,    // mem32[r2 + imm] = r1
  kLdB,   // r1 = mem8[r2 + imm]
  kStB,   // mem8[r2 + imm] = r1 & 0xff
  kLdPc,  // r1 = mem32[pc_next + imm] (PIC GOT load)
  // Control flow. Branch displacements are relative to pc_next.
  kBeq,   // if (r1 == r2) pc = pc_next + imm
  kBne,
  kBlt,   // signed
  kBge,   // signed
  kBltu,
  kBgeu,
  kJmp,     // pc = imm (absolute)
  kBr,      // pc = pc_next + imm
  kJmpR,    // pc = r1
  kCall,    // lr = pc_next; pc = imm (absolute)
  kCallPc,  // lr = pc_next; pc = pc_next + imm
  kCallR,   // lr = pc_next; pc = r1
  kRet,     // pc = lr
  kPush,    // sp -= 4; mem32[sp] = r1
  kPop,     // r1 = mem32[sp]; sp += 4
  kSys,     // system call; number in imm, args r0-r3, result r0
  kCount,
};

// Mnemonic for the opcode ("movi", "beq", ...), or "?" if invalid.
std::string_view OpcodeName(Opcode op);
// Reverse lookup used by the assembler; Result error on unknown mnemonic.
Result<Opcode> OpcodeFromName(std::string_view name);

struct Instruction {
  Opcode op = Opcode::kHalt;
  uint8_t r1 = 0;
  uint8_t r2 = 0;
  uint8_t r3 = 0;
  uint32_t imm = 0;

  bool operator==(const Instruction&) const = default;
};

// Serialize into 8 bytes at `out` (caller guarantees space).
void EncodeInsn(const Instruction& insn, uint8_t* out);
// Decode 8 bytes; fails on out-of-range opcode or register.
Result<Instruction> DecodeInsn(const uint8_t* bytes);

// "call 0x00001040" style rendering for debugging and the OFE tool.
std::string Disassemble(const Instruction& insn);

}  // namespace omos

#endif  // OMOS_SRC_ISA_ISA_H_
