#include "src/isa/isa.h"

#include <array>

#include "src/support/strings.h"

namespace omos {

namespace {

constexpr std::array<std::string_view, static_cast<size_t>(Opcode::kCount)> kNames = {
    "halt", "nop",  "movi", "mov",  "lea",  "leapc", "add",  "sub",   "mul",  "div",
    "mod",  "and",  "or",   "xor",  "shl",  "shr",   "addi", "ld",    "st",   "ldb",
    "stb",  "ldpc", "beq",  "bne",  "blt",  "bge",   "bltu", "bgeu",  "jmp",  "br",
    "jmpr", "call", "callpc", "callr", "ret", "push", "pop",  "sys",
};
static_assert(kNames.size() == static_cast<size_t>(Opcode::kCount));

enum class Shape { kNone, kR1, kR1R2, kR1R2R3, kImm, kR1Imm, kR1R2Imm, kMem, kBranch };

Shape OpShape(Opcode op) {
  switch (op) {
    case Opcode::kHalt:
    case Opcode::kNop:
    case Opcode::kRet:
      return Shape::kNone;
    case Opcode::kJmpR:
    case Opcode::kCallR:
    case Opcode::kPush:
    case Opcode::kPop:
      return Shape::kR1;
    case Opcode::kMov:
      return Shape::kR1R2;
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kMod:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
      return Shape::kR1R2R3;
    case Opcode::kJmp:
    case Opcode::kBr:
    case Opcode::kCall:
    case Opcode::kCallPc:
    case Opcode::kSys:
      return Shape::kImm;
    case Opcode::kMovI:
    case Opcode::kLea:
    case Opcode::kLeaPc:
    case Opcode::kLdPc:
      return Shape::kR1Imm;
    case Opcode::kAddI:
      return Shape::kR1R2Imm;
    case Opcode::kLd:
    case Opcode::kSt:
    case Opcode::kLdB:
    case Opcode::kStB:
      return Shape::kMem;
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu:
      return Shape::kBranch;
    case Opcode::kCount:
      break;
  }
  return Shape::kNone;
}

}  // namespace

std::string_view OpcodeName(Opcode op) {
  auto index = static_cast<size_t>(op);
  return index < kNames.size() ? kNames[index] : "?";
}

Result<Opcode> OpcodeFromName(std::string_view name) {
  for (size_t i = 0; i < kNames.size(); ++i) {
    if (kNames[i] == name) {
      return static_cast<Opcode>(i);
    }
  }
  return Err(ErrorCode::kParseError, StrCat("unknown mnemonic '", name, "'"));
}

void EncodeInsn(const Instruction& insn, uint8_t* out) {
  out[0] = static_cast<uint8_t>(insn.op);
  out[1] = insn.r1;
  out[2] = insn.r2;
  out[3] = insn.r3;
  out[4] = static_cast<uint8_t>(insn.imm);
  out[5] = static_cast<uint8_t>(insn.imm >> 8);
  out[6] = static_cast<uint8_t>(insn.imm >> 16);
  out[7] = static_cast<uint8_t>(insn.imm >> 24);
}

Result<Instruction> DecodeInsn(const uint8_t* bytes) {
  Instruction insn;
  if (bytes[0] >= static_cast<uint8_t>(Opcode::kCount)) {
    return Err(ErrorCode::kExecFault, StrCat("illegal opcode ", static_cast<int>(bytes[0])));
  }
  insn.op = static_cast<Opcode>(bytes[0]);
  insn.r1 = bytes[1];
  insn.r2 = bytes[2];
  insn.r3 = bytes[3];
  if (insn.r1 >= kNumRegisters || insn.r2 >= kNumRegisters || insn.r3 >= kNumRegisters) {
    return Err(ErrorCode::kExecFault, "register index out of range");
  }
  insn.imm = static_cast<uint32_t>(bytes[4]) | static_cast<uint32_t>(bytes[5]) << 8 |
             static_cast<uint32_t>(bytes[6]) << 16 | static_cast<uint32_t>(bytes[7]) << 24;
  return insn;
}

std::string Disassemble(const Instruction& insn) {
  std::string name(OpcodeName(insn.op));
  auto reg = [](uint8_t r) { return StrCat("r", static_cast<int>(r)); };
  switch (OpShape(insn.op)) {
    case Shape::kNone:
      return name;
    case Shape::kR1:
      return StrCat(name, " ", reg(insn.r1));
    case Shape::kR1R2:
      return StrCat(name, " ", reg(insn.r1), ", ", reg(insn.r2));
    case Shape::kR1R2R3:
      return StrCat(name, " ", reg(insn.r1), ", ", reg(insn.r2), ", ", reg(insn.r3));
    case Shape::kImm:
      return StrCat(name, " ", Hex32(insn.imm));
    case Shape::kR1Imm:
      return StrCat(name, " ", reg(insn.r1), ", ", Hex32(insn.imm));
    case Shape::kR1R2Imm:
      return StrCat(name, " ", reg(insn.r1), ", ", reg(insn.r2), ", ",
                    static_cast<int32_t>(insn.imm));
    case Shape::kMem:
      return StrCat(name, " ", reg(insn.r1), ", [", reg(insn.r2), "+",
                    static_cast<int32_t>(insn.imm), "]");
    case Shape::kBranch:
      return StrCat(name, " ", reg(insn.r1), ", ", reg(insn.r2), ", ",
                    static_cast<int32_t>(insn.imm));
  }
  return name;
}

}  // namespace omos
