#include "src/vm/address_space.h"

#include <cstring>

#include "src/support/faultsim.h"
#include "src/support/strings.h"

namespace omos {

SegmentImage::SegmentImage(SegmentImage&& other) noexcept
    : phys_(other.phys_), frames_(std::move(other.frames_)), size_bytes_(other.size_bytes_) {
  other.phys_ = nullptr;
  other.frames_.clear();
  other.size_bytes_ = 0;
}

SegmentImage& SegmentImage::operator=(SegmentImage&& other) noexcept {
  if (this != &other) {
    this->~SegmentImage();
    new (this) SegmentImage(std::move(other));
  }
  return *this;
}

SegmentImage::~SegmentImage() {
  if (phys_ != nullptr) {
    for (FrameId frame : frames_) {
      phys_->Unref(frame);
    }
  }
}

Result<SegmentImage> SegmentImage::Create(PhysMemory& phys, std::span<const uint8_t> bytes) {
  SegmentImage image;
  image.phys_ = &phys;
  image.size_bytes_ = static_cast<uint32_t>(bytes.size());
  uint32_t pages = PageAlignUp(image.size_bytes_) / kPageSize;
  for (uint32_t i = 0; i < pages; ++i) {
    uint32_t offset = i * kPageSize;
    uint32_t chunk = std::min<uint32_t>(kPageSize, image.size_bytes_ - offset);
    // A full page overwrites every byte; a partial tail page needs the
    // allocator's zeroing for the remainder.
    OMOS_TRY(FrameId frame, chunk == kPageSize ? phys.AllocateUninit() : phys.Allocate());
    std::memcpy(phys.FrameData(frame), bytes.data() + offset, chunk);
    image.frames_.push_back(frame);
  }
  return image;
}

AddressSpace::~AddressSpace() {
  for (auto& [base, region] : regions_) {
    ReleasePages(region);
  }
}

void AddressSpace::ReleasePages(Region& region) {
  uint32_t pages = region.size / kPageSize;
  for (uint32_t i = 0; i < pages; ++i) {
    if (region.page_data[i] == nullptr) {
      --demand_pages_;
      continue;
    }
    phys_->Unref(region.frames[i]);
    if ((region.page_flags[i] & (kPageCow | kPageShared)) != 0) {
      --shared_pages_;
    } else {
      --private_pages_;
    }
  }
}

Result<void> AddressSpace::CheckFree(uint32_t base, uint32_t size, std::string_view name) const {
  if (base % kPageSize != 0) {
    return Err(ErrorCode::kInvalidArgument, StrCat("map ", name, ": base not page aligned"));
  }
  if (size == 0) {
    return Err(ErrorCode::kInvalidArgument, StrCat("map ", name, ": empty region"));
  }
  if (Overlaps(base, size)) {
    return Err(ErrorCode::kAlreadyExists,
               StrCat("map ", name, ": [", Hex32(base), ", ", Hex32(base + size), ") overlaps"));
  }
  return OkResult();
}

bool AddressSpace::Overlaps(uint32_t base, uint32_t size) const {
  auto it = regions_.upper_bound(base);
  if (it != regions_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.base + prev->second.size > base) {
      return true;
    }
  }
  if (it != regions_.end() && it->second.base < base + size) {
    return true;
  }
  return false;
}

Result<uint32_t> AddressSpace::MapShared(uint32_t base, const SegmentImage& image, uint8_t prot,
                                         std::string name) {
  uint32_t size = image.num_pages() * kPageSize;
  OMOS_TRY_VOID(CheckFree(base, size, name));
  Region region;
  region.base = base;
  region.size = size;
  region.prot = prot;
  region.shared = true;
  region.name = std::move(name);
  for (FrameId frame : image.frames()) {
    phys_->Ref(frame);
    region.frames.push_back(frame);
    region.page_data.push_back(phys_->FrameData(frame));
    region.page_flags.push_back(kPageShared);
  }
  shared_pages_ += image.num_pages();
  ++map_epoch_;
  last_region_ = nullptr;
  regions_.emplace(base, std::move(region));
  return image.num_pages();
}

Result<uint32_t> AddressSpace::MapCoW(uint32_t base, const SegmentImage& image, uint32_t size,
                                      uint8_t prot, std::string name) {
  size = PageAlignUp(std::max(size, image.num_pages() * kPageSize));
  OMOS_TRY_VOID(CheckFree(base, size, name));
  Region region;
  region.base = base;
  region.size = size;
  region.prot = prot;
  region.shared = false;
  region.name = std::move(name);
  uint32_t pages = size / kPageSize;
  region.frames.resize(pages, 0);
  region.page_data.resize(pages, nullptr);
  region.page_flags.resize(pages, 0);
  for (uint32_t i = 0; i < image.num_pages(); ++i) {
    FrameId frame = image.frames()[i];
    phys_->Ref(frame);
    region.frames[i] = frame;
    region.page_data[i] = phys_->FrameData(frame);
    region.page_flags[i] = kPageCow;
  }
  shared_pages_ += image.num_pages();
  demand_pages_ += pages - image.num_pages();
  ++map_epoch_;
  last_region_ = nullptr;
  regions_.emplace(base, std::move(region));
  return pages;
}

Result<uint32_t> AddressSpace::MapPrivate(uint32_t base, uint32_t size,
                                          std::span<const uint8_t> init, uint8_t prot,
                                          std::string name) {
  size = PageAlignUp(std::max<uint32_t>(size, static_cast<uint32_t>(init.size())));
  OMOS_TRY_VOID(CheckFree(base, size, name));
  Region region;
  region.base = base;
  region.size = size;
  region.prot = prot;
  region.shared = false;
  region.name = std::move(name);
  uint32_t pages = size / kPageSize;
  for (uint32_t i = 0; i < pages; ++i) {
    uint32_t offset = i * kPageSize;
    uint32_t covered =
        offset < init.size() ? std::min<uint32_t>(kPageSize, static_cast<uint32_t>(init.size()) - offset)
                             : 0;
    // Fully-initialized pages skip the allocator's zero fill (every byte is
    // about to be overwritten); partially-covered pages zero only the tail.
    OMOS_TRY(FrameId frame, phys_->AllocateUninit());
    uint8_t* data = phys_->FrameData(frame);
    if (covered > 0) {
      std::memcpy(data, init.data() + offset, covered);
    }
    if (covered < kPageSize) {
      std::memset(data + covered, 0, kPageSize - covered);
    }
    region.frames.push_back(frame);
    region.page_data.push_back(data);
    region.page_flags.push_back(0);
  }
  private_pages_ += pages;
  ++map_epoch_;
  last_region_ = nullptr;
  regions_.emplace(base, std::move(region));
  return pages;
}

Result<uint32_t> AddressSpace::MapDemandZero(uint32_t base, uint32_t size, uint8_t prot,
                                             std::string name) {
  size = PageAlignUp(size);
  OMOS_TRY_VOID(CheckFree(base, size, name));
  Region region;
  region.base = base;
  region.size = size;
  region.prot = prot;
  region.shared = false;
  region.name = std::move(name);
  uint32_t pages = size / kPageSize;
  region.frames.resize(pages, 0);
  region.page_data.resize(pages, nullptr);
  region.page_flags.resize(pages, 0);
  demand_pages_ += pages;
  ++map_epoch_;
  last_region_ = nullptr;
  regions_.emplace(base, std::move(region));
  return pages;
}

Result<uint32_t> AddressSpace::MapZero(uint32_t base, uint32_t size, uint8_t prot,
                                       std::string name) {
  return MapDemandZero(base, size, prot, std::move(name));
}

Result<void> AddressSpace::Unmap(uint32_t base) {
  auto it = regions_.find(base);
  if (it == regions_.end()) {
    return Err(ErrorCode::kNotFound, StrCat("unmap: no region at ", Hex32(base)));
  }
  ReleasePages(it->second);
  ++map_epoch_;
  last_region_ = nullptr;
  regions_.erase(it);
  return OkResult();
}

const AddressSpace::Region* AddressSpace::FindRegion(uint32_t addr) const {
  if (last_region_ != nullptr && addr >= last_region_->base &&
      addr < last_region_->base + last_region_->size) {
    return last_region_;
  }
  auto it = regions_.upper_bound(addr);
  if (it == regions_.begin()) {
    return nullptr;
  }
  --it;
  const Region& region = it->second;
  if (addr >= region.base + region.size) {
    return nullptr;
  }
  last_region_ = &region;
  return &region;
}

AddressSpace::Region* AddressSpace::FindRegionMutable(uint32_t addr) {
  return const_cast<Region*>(FindRegion(addr));
}

Result<FaultResolution> AddressSpace::HandleFault(uint32_t addr, bool is_write) {
  Region* region = FindRegionMutable(addr);
  if (region == nullptr) {
    return Err(ErrorCode::kExecFault, StrCat("page fault outside mapped region at ", Hex32(addr)));
  }
  uint32_t page = (addr - region->base) / kPageSize;
  if (region->page_data[page] == nullptr) {
    // Demand-zero fill (the first touch, read or write, materializes the page).
    if (FaultSim::Trip("vm.fault")) {
      return Err(ErrorCode::kIoError, StrCat("simulated fault during demand-zero fill at ",
                                             Hex32(addr), " in ", region->name));
    }
    OMOS_TRY(FrameId frame, phys_->Allocate());
    region->frames[page] = frame;
    region->page_data[page] = phys_->FrameData(frame);
    --demand_pages_;
    ++private_pages_;
    ++map_epoch_;
    return FaultResolution::kDemandZeroFill;
  }
  if (is_write && (region->page_flags[page] & kPageCow) != 0) {
    FrameId old_frame = region->frames[page];
    if (phys_->RefCount(old_frame) == 1) {
      // We are the frame's last owner (the cached image was evicted); adopt
      // it as private instead of copying. No one else can gain a reference
      // to a frame they don't already hold, so this cannot race.
      region->page_flags[page] &= static_cast<uint8_t>(~kPageCow);
      --shared_pages_;
      ++private_pages_;
      ++map_epoch_;
      return FaultResolution::kCowAdopt;
    }
    if (FaultSim::Trip("vm.fault")) {
      return Err(ErrorCode::kIoError, StrCat("simulated fault during CoW break at ", Hex32(addr),
                                             " in ", region->name));
    }
    OMOS_TRY(FrameId fresh, phys_->AllocateUninit());
    std::memcpy(phys_->FrameData(fresh), phys_->FrameData(old_frame), kPageSize);
    region->frames[page] = fresh;
    region->page_data[page] = phys_->FrameData(fresh);
    region->page_flags[page] &= static_cast<uint8_t>(~kPageCow);
    phys_->Unref(old_frame);
    --shared_pages_;
    ++private_pages_;
    ++map_epoch_;
    return FaultResolution::kCowCopy;
  }
  return FaultResolution::kAlreadyResolved;
}

bool AddressSpace::LookupPage(uint32_t addr, PageLookup* out) const {
  const Region* region = FindRegion(addr);
  if (region == nullptr) {
    return false;
  }
  uint32_t page = (addr - region->base) / kPageSize;
  out->prot = region->prot;
  out->data = region->page_data[page];
  out->present = out->data != nullptr;
  out->frame = region->frames[page];
  out->cow = (region->page_flags[page] & kPageCow) != 0;
  return true;
}

Result<void> AddressSpace::RaiseFault(uint32_t addr, bool is_write) {
  if (fault_handler_) {
    return fault_handler_(PageFaultInfo{addr, is_write});
  }
  OMOS_TRY_VOID(HandleFault(addr, is_write));
  return OkResult();
}

Result<void> AddressSpace::Access(uint32_t addr, void* buf, uint32_t size, bool write,
                                  bool exec) const {
  auto* out = static_cast<uint8_t*>(buf);
  uint32_t done = 0;
  while (done < size) {
    uint32_t cur = addr + done;
    const Region* region = FindRegion(cur);
    if (region == nullptr) {
      return Err(ErrorCode::kExecFault,
                 StrCat(write ? "write" : (exec ? "fetch" : "read"), " fault at ", Hex32(cur)));
    }
    uint8_t needed = write ? kProtWrite : (exec ? kProtExec : kProtRead);
    if ((region->prot & needed) == 0) {
      return Err(ErrorCode::kExecFault,
                 StrCat("protection fault at ", Hex32(cur), " in ", region->name));
    }
    uint32_t offset = cur - region->base;
    uint32_t page = offset / kPageSize;
    uint32_t in_page = offset % kPageSize;
    uint32_t chunk = std::min(size - done, kPageSize - in_page);
    uint8_t* frame_data = region->page_data[page];
    if (frame_data == nullptr || (write && (region->page_flags[page] & kPageCow) != 0)) {
      // Fault: absent page (demand-zero) or write to a CoW page. Access() is
      // logically const — faulting in a page doesn't change the space's
      // observable contents — so the mutation is routed through a non-const
      // alias of this.
      auto* self = const_cast<AddressSpace*>(this);
      OMOS_TRY_VOID(self->RaiseFault(cur, write));
      frame_data = region->page_data[page];
      if (frame_data == nullptr) {
        return Err(ErrorCode::kExecFault,
                   StrCat("fault handler left page absent at ", Hex32(cur)));
      }
    }
    if (write) {
      std::memcpy(frame_data + in_page, out + done, chunk);
    } else {
      std::memcpy(out + done, frame_data + in_page, chunk);
    }
    done += chunk;
  }
  return OkResult();
}

Result<void> AddressSpace::ReadBytes(uint32_t addr, void* out, uint32_t size) const {
  return Access(addr, out, size, /*write=*/false, /*exec=*/false);
}

Result<void> AddressSpace::WriteBytes(uint32_t addr, const void* data, uint32_t size) {
  return Access(addr, const_cast<void*>(data), size, /*write=*/true, /*exec=*/false);
}

Result<void> AddressSpace::FetchBytes(uint32_t addr, void* out, uint32_t size) const {
  return Access(addr, out, size, /*write=*/false, /*exec=*/true);
}

Result<uint32_t> AddressSpace::Read32(uint32_t addr) const {
  uint8_t buf[4];
  OMOS_TRY_VOID(ReadBytes(addr, buf, 4));
  return static_cast<uint32_t>(buf[0]) | static_cast<uint32_t>(buf[1]) << 8 |
         static_cast<uint32_t>(buf[2]) << 16 | static_cast<uint32_t>(buf[3]) << 24;
}

Result<void> AddressSpace::Write32(uint32_t addr, uint32_t value) {
  uint8_t buf[4] = {static_cast<uint8_t>(value), static_cast<uint8_t>(value >> 8),
                    static_cast<uint8_t>(value >> 16), static_cast<uint8_t>(value >> 24)};
  return WriteBytes(addr, buf, 4);
}

Result<uint8_t> AddressSpace::Read8(uint32_t addr) const {
  uint8_t b = 0;
  OMOS_TRY_VOID(ReadBytes(addr, &b, 1));
  return b;
}

Result<void> AddressSpace::Write8(uint32_t addr, uint8_t value) {
  return WriteBytes(addr, &value, 1);
}

Result<std::string> AddressSpace::ReadCString(uint32_t addr, uint32_t max_len) const {
  std::string out;
  for (uint32_t i = 0; i < max_len; ++i) {
    OMOS_TRY(uint8_t b, Read8(addr + i));
    if (b == 0) {
      return out;
    }
    out.push_back(static_cast<char>(b));
  }
  return Err(ErrorCode::kExecFault, StrCat("unterminated string at ", Hex32(addr)));
}

std::vector<AddressSpace::RegionInfo> AddressSpace::Regions() const {
  std::vector<RegionInfo> out;
  out.reserve(regions_.size());
  for (const auto& [base, region] : regions_) {
    RegionInfo info{region.base, region.size, region.prot, region.shared, region.name};
    for (uint32_t i = 0; i < region.size / kPageSize; ++i) {
      if (region.page_data[i] == nullptr) {
        ++info.absent_pages;
      } else if ((region.page_flags[i] & kPageCow) != 0) {
        ++info.cow_pages;
      }
    }
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace omos
