#include "src/vm/address_space.h"

#include <cstring>

#include "src/support/strings.h"

namespace omos {

SegmentImage::SegmentImage(SegmentImage&& other) noexcept
    : phys_(other.phys_), frames_(std::move(other.frames_)), size_bytes_(other.size_bytes_) {
  other.phys_ = nullptr;
  other.frames_.clear();
  other.size_bytes_ = 0;
}

SegmentImage& SegmentImage::operator=(SegmentImage&& other) noexcept {
  if (this != &other) {
    this->~SegmentImage();
    new (this) SegmentImage(std::move(other));
  }
  return *this;
}

SegmentImage::~SegmentImage() {
  if (phys_ != nullptr) {
    for (FrameId frame : frames_) {
      phys_->Unref(frame);
    }
  }
}

Result<SegmentImage> SegmentImage::Create(PhysMemory& phys, std::span<const uint8_t> bytes) {
  SegmentImage image;
  image.phys_ = &phys;
  image.size_bytes_ = static_cast<uint32_t>(bytes.size());
  uint32_t pages = PageAlignUp(image.size_bytes_) / kPageSize;
  for (uint32_t i = 0; i < pages; ++i) {
    OMOS_TRY(FrameId frame, phys.Allocate());
    uint32_t offset = i * kPageSize;
    uint32_t chunk = std::min<uint32_t>(kPageSize, image.size_bytes_ - offset);
    std::memcpy(phys.FrameData(frame), bytes.data() + offset, chunk);
    image.frames_.push_back(frame);
  }
  return image;
}

AddressSpace::~AddressSpace() {
  for (auto& [base, region] : regions_) {
    for (FrameId frame : region.frames) {
      phys_->Unref(frame);
    }
  }
}

Result<void> AddressSpace::CheckFree(uint32_t base, uint32_t size, std::string_view name) const {
  if (base % kPageSize != 0) {
    return Err(ErrorCode::kInvalidArgument, StrCat("map ", name, ": base not page aligned"));
  }
  if (size == 0) {
    return Err(ErrorCode::kInvalidArgument, StrCat("map ", name, ": empty region"));
  }
  if (Overlaps(base, size)) {
    return Err(ErrorCode::kAlreadyExists,
               StrCat("map ", name, ": [", Hex32(base), ", ", Hex32(base + size), ") overlaps"));
  }
  return OkResult();
}

bool AddressSpace::Overlaps(uint32_t base, uint32_t size) const {
  auto it = regions_.upper_bound(base);
  if (it != regions_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.base + prev->second.size > base) {
      return true;
    }
  }
  if (it != regions_.end() && it->second.base < base + size) {
    return true;
  }
  return false;
}

Result<uint32_t> AddressSpace::MapShared(uint32_t base, const SegmentImage& image, uint8_t prot,
                                         std::string name) {
  uint32_t size = image.num_pages() * kPageSize;
  OMOS_TRY_VOID(CheckFree(base, size, name));
  Region region;
  region.base = base;
  region.size = size;
  region.prot = prot;
  region.shared = true;
  region.name = std::move(name);
  for (FrameId frame : image.frames()) {
    phys_->Ref(frame);
    region.frames.push_back(frame);
  }
  shared_pages_ += image.num_pages();
  last_region_ = nullptr;
  regions_.emplace(base, std::move(region));
  return image.num_pages();
}

Result<uint32_t> AddressSpace::MapPrivate(uint32_t base, uint32_t size,
                                          std::span<const uint8_t> init, uint8_t prot,
                                          std::string name) {
  size = PageAlignUp(std::max<uint32_t>(size, static_cast<uint32_t>(init.size())));
  OMOS_TRY_VOID(CheckFree(base, size, name));
  Region region;
  region.base = base;
  region.size = size;
  region.prot = prot;
  region.shared = false;
  region.name = std::move(name);
  uint32_t pages = size / kPageSize;
  for (uint32_t i = 0; i < pages; ++i) {
    OMOS_TRY(FrameId frame, phys_->Allocate());
    uint32_t offset = i * kPageSize;
    if (offset < init.size()) {
      uint32_t chunk = std::min<uint32_t>(kPageSize, static_cast<uint32_t>(init.size()) - offset);
      std::memcpy(phys_->FrameData(frame), init.data() + offset, chunk);
    }
    region.frames.push_back(frame);
  }
  private_pages_ += pages;
  last_region_ = nullptr;
  regions_.emplace(base, std::move(region));
  return pages;
}

Result<uint32_t> AddressSpace::MapZero(uint32_t base, uint32_t size, uint8_t prot,
                                       std::string name) {
  return MapPrivate(base, size, {}, prot, std::move(name));
}

Result<void> AddressSpace::Unmap(uint32_t base) {
  auto it = regions_.find(base);
  if (it == regions_.end()) {
    return Err(ErrorCode::kNotFound, StrCat("unmap: no region at ", Hex32(base)));
  }
  uint32_t pages = it->second.size / kPageSize;
  for (FrameId frame : it->second.frames) {
    phys_->Unref(frame);
  }
  if (it->second.shared) {
    shared_pages_ -= pages;
  } else {
    private_pages_ -= pages;
  }
  last_region_ = nullptr;
  regions_.erase(it);
  return OkResult();
}

const AddressSpace::Region* AddressSpace::FindRegion(uint32_t addr) const {
  if (last_region_ != nullptr && addr >= last_region_->base &&
      addr < last_region_->base + last_region_->size) {
    return last_region_;
  }
  auto it = regions_.upper_bound(addr);
  if (it == regions_.begin()) {
    return nullptr;
  }
  --it;
  const Region& region = it->second;
  if (addr >= region.base + region.size) {
    return nullptr;
  }
  last_region_ = &region;
  return &region;
}

Result<void> AddressSpace::Access(uint32_t addr, void* buf, uint32_t size, bool write,
                                  bool exec) const {
  auto* out = static_cast<uint8_t*>(buf);
  uint32_t done = 0;
  while (done < size) {
    uint32_t cur = addr + done;
    const Region* region = FindRegion(cur);
    if (region == nullptr) {
      return Err(ErrorCode::kExecFault,
                 StrCat(write ? "write" : (exec ? "fetch" : "read"), " fault at ", Hex32(cur)));
    }
    uint8_t needed = write ? kProtWrite : (exec ? kProtExec : kProtRead);
    if ((region->prot & needed) == 0) {
      return Err(ErrorCode::kExecFault,
                 StrCat("protection fault at ", Hex32(cur), " in ", region->name));
    }
    uint32_t offset = cur - region->base;
    uint32_t page = offset / kPageSize;
    uint32_t in_page = offset % kPageSize;
    uint32_t chunk = std::min(size - done, kPageSize - in_page);
    // Clamp to the region end as well (regions are whole pages, so the page
    // clamp suffices, but keep it explicit).
    uint8_t* frame_data = phys_->FrameData(region->frames[page]);
    if (write) {
      std::memcpy(frame_data + in_page, out + done, chunk);
    } else {
      std::memcpy(out + done, frame_data + in_page, chunk);
    }
    done += chunk;
  }
  return OkResult();
}

Result<void> AddressSpace::ReadBytes(uint32_t addr, void* out, uint32_t size) const {
  return Access(addr, out, size, /*write=*/false, /*exec=*/false);
}

Result<void> AddressSpace::WriteBytes(uint32_t addr, const void* data, uint32_t size) {
  return Access(addr, const_cast<void*>(data), size, /*write=*/true, /*exec=*/false);
}

Result<void> AddressSpace::FetchBytes(uint32_t addr, void* out, uint32_t size) const {
  return Access(addr, out, size, /*write=*/false, /*exec=*/true);
}

Result<uint32_t> AddressSpace::Read32(uint32_t addr) const {
  uint8_t buf[4];
  OMOS_TRY_VOID(ReadBytes(addr, buf, 4));
  return static_cast<uint32_t>(buf[0]) | static_cast<uint32_t>(buf[1]) << 8 |
         static_cast<uint32_t>(buf[2]) << 16 | static_cast<uint32_t>(buf[3]) << 24;
}

Result<void> AddressSpace::Write32(uint32_t addr, uint32_t value) {
  uint8_t buf[4] = {static_cast<uint8_t>(value), static_cast<uint8_t>(value >> 8),
                    static_cast<uint8_t>(value >> 16), static_cast<uint8_t>(value >> 24)};
  return WriteBytes(addr, buf, 4);
}

Result<uint8_t> AddressSpace::Read8(uint32_t addr) const {
  uint8_t b = 0;
  OMOS_TRY_VOID(ReadBytes(addr, &b, 1));
  return b;
}

Result<void> AddressSpace::Write8(uint32_t addr, uint8_t value) {
  return WriteBytes(addr, &value, 1);
}

Result<std::string> AddressSpace::ReadCString(uint32_t addr, uint32_t max_len) const {
  std::string out;
  for (uint32_t i = 0; i < max_len; ++i) {
    OMOS_TRY(uint8_t b, Read8(addr + i));
    if (b == 0) {
      return out;
    }
    out.push_back(static_cast<char>(b));
  }
  return Err(ErrorCode::kExecFault, StrCat("unterminated string at ", Hex32(addr)));
}

std::vector<AddressSpace::RegionInfo> AddressSpace::Regions() const {
  std::vector<RegionInfo> out;
  out.reserve(regions_.size());
  for (const auto& [base, region] : regions_) {
    out.push_back({region.base, region.size, region.prot, region.shared, region.name});
  }
  return out;
}

}  // namespace omos
