#include "src/vm/phys_memory.h"

#include <cstring>

#include "src/support/strings.h"

namespace omos {

PhysMemory::PhysMemory(uint32_t max_frames) : max_frames_(max_frames) {}

Result<FrameId> PhysMemory::Allocate() {
  FrameId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    std::memset(frames_[id].data.get(), 0, kPageSize);
    frames_[id].refs = 1;
  } else {
    if (frames_.size() >= max_frames_) {
      return Err(ErrorCode::kOutOfRange, StrCat("physical memory exhausted (", max_frames_, " frames)"));
    }
    id = static_cast<FrameId>(frames_.size());
    Frame frame;
    frame.data = std::make_unique<uint8_t[]>(kPageSize);
    std::memset(frame.data.get(), 0, kPageSize);
    frame.refs = 1;
    frames_.push_back(std::move(frame));
  }
  ++frames_in_use_;
  ++total_allocations_;
  if (frames_in_use_ > peak_frames_) {
    peak_frames_ = frames_in_use_;
  }
  return id;
}

void PhysMemory::Ref(FrameId frame) { ++frames_[frame].refs; }

void PhysMemory::Unref(FrameId frame) {
  Frame& f = frames_[frame];
  if (f.refs == 0) {
    return;  // Double-unref is a bug, but keep the simulator alive.
  }
  if (--f.refs == 0) {
    free_list_.push_back(frame);
    --frames_in_use_;
  }
}

uint8_t* PhysMemory::FrameData(FrameId frame) { return frames_[frame].data.get(); }

const uint8_t* PhysMemory::FrameData(FrameId frame) const { return frames_[frame].data.get(); }

uint32_t PhysMemory::RefCount(FrameId frame) const { return frames_[frame].refs; }

}  // namespace omos
