#include "src/vm/phys_memory.h"

#include <cstring>

#include "src/support/strings.h"

namespace omos {

PhysMemory::PhysMemory(uint32_t max_frames) : max_frames_(max_frames) {
  num_blocks_ = (max_frames_ + kFramesPerBlock - 1) / kFramesPerBlock;
  blocks_ = std::make_unique<std::atomic<Frame*>[]>(num_blocks_);
  for (uint32_t i = 0; i < num_blocks_; ++i) {
    blocks_[i].store(nullptr, std::memory_order_relaxed);
  }
}

PhysMemory::~PhysMemory() {
  for (uint32_t i = 0; i < num_blocks_; ++i) {
    delete[] blocks_[i].load(std::memory_order_relaxed);
  }
}

PhysMemory::Frame& PhysMemory::FrameRef(FrameId frame) const {
  Frame* block = blocks_[frame / kFramesPerBlock].load(std::memory_order_acquire);
  return block[frame % kFramesPerBlock];
}

Result<FrameId> PhysMemory::AllocateInternal(bool zero) {
  FrameId id;
  bool recycled = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_list_.empty()) {
      id = free_list_.back();
      free_list_.pop_back();
      recycled = true;
    } else {
      if (next_frame_ >= max_frames_) {
        return Err(ErrorCode::kOutOfRange,
                   StrCat("physical memory exhausted (", max_frames_, " frames)"));
      }
      id = next_frame_++;
      uint32_t block_idx = id / kFramesPerBlock;
      if (blocks_[block_idx].load(std::memory_order_relaxed) == nullptr) {
        blocks_[block_idx].store(new Frame[kFramesPerBlock], std::memory_order_release);
      }
    }
  }
  Frame& f = FrameRef(id);
  if (f.data == nullptr) {
    // make_unique value-initializes, so a fresh buffer is already zeroed.
    f.data = std::make_unique<uint8_t[]>(kPageSize);
  } else if (zero && recycled) {
    std::memset(f.data.get(), 0, kPageSize);
  }
  f.refs.store(1, std::memory_order_relaxed);
  uint32_t in_use = frames_in_use_.fetch_add(1, std::memory_order_relaxed) + 1;
  total_allocations_.fetch_add(1, std::memory_order_relaxed);
  uint32_t peak = peak_frames_.load(std::memory_order_relaxed);
  while (in_use > peak &&
         !peak_frames_.compare_exchange_weak(peak, in_use, std::memory_order_relaxed)) {
  }
  return id;
}

Result<FrameId> PhysMemory::Allocate() { return AllocateInternal(/*zero=*/true); }

Result<FrameId> PhysMemory::AllocateUninit() { return AllocateInternal(/*zero=*/false); }

void PhysMemory::Ref(FrameId frame) {
  FrameRef(frame).refs.fetch_add(1, std::memory_order_relaxed);
}

void PhysMemory::Unref(FrameId frame) {
  Frame& f = FrameRef(frame);
  uint32_t prev = f.refs.load(std::memory_order_relaxed);
  do {
    if (prev == 0) {
      return;  // Double-unref is a bug, but keep the simulator alive.
    }
  } while (!f.refs.compare_exchange_weak(prev, prev - 1, std::memory_order_acq_rel));
  if (prev == 1) {
    // Invalidate frame-keyed caches before recycling: a block decoded from
    // this frame must never match a lookup once new contents move in.
    f.gen.fetch_add(1, std::memory_order_release);
    frames_in_use_.fetch_sub(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    free_list_.push_back(frame);
  }
}

uint8_t* PhysMemory::FrameData(FrameId frame) { return FrameRef(frame).data.get(); }

const uint8_t* PhysMemory::FrameData(FrameId frame) const { return FrameRef(frame).data.get(); }

uint32_t PhysMemory::RefCount(FrameId frame) const {
  return FrameRef(frame).refs.load(std::memory_order_relaxed);
}

uint32_t PhysMemory::FrameGen(FrameId frame) const {
  return FrameRef(frame).gen.load(std::memory_order_acquire);
}

}  // namespace omos
