// Physical frame pool with reference counting.
//
// The "shared" in shared libraries is, concretely, two tasks' address spaces
// referencing the same physical frames. OMOS's cached images own frames;
// every task that maps a cached segment bumps the frames' refcounts. The
// pool's accounting (frames in use vs. sum of mapped bytes) is how the
// memory-consumption benchmarks measure sharing.
#ifndef OMOS_SRC_VM_PHYS_MEMORY_H_
#define OMOS_SRC_VM_PHYS_MEMORY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/support/result.h"

namespace omos {

inline constexpr uint32_t kPageSize = 4096;
inline constexpr uint32_t kPageMask = kPageSize - 1;

inline uint32_t PageAlignUp(uint32_t value) { return (value + kPageMask) & ~kPageMask; }
inline uint32_t PageAlignDown(uint32_t value) { return value & ~kPageMask; }

using FrameId = uint32_t;

class PhysMemory {
 public:
  explicit PhysMemory(uint32_t max_frames = 1u << 20);

  // Allocate a zeroed frame with refcount 1.
  Result<FrameId> Allocate();

  void Ref(FrameId frame);
  // Drops a reference; the frame returns to the free list at zero.
  void Unref(FrameId frame);

  uint8_t* FrameData(FrameId frame);
  const uint8_t* FrameData(FrameId frame) const;
  uint32_t RefCount(FrameId frame) const;

  // Accounting.
  uint32_t frames_in_use() const { return frames_in_use_; }
  uint64_t bytes_in_use() const { return static_cast<uint64_t>(frames_in_use_) * kPageSize; }
  uint32_t peak_frames() const { return peak_frames_; }
  uint64_t total_allocations() const { return total_allocations_; }

 private:
  struct Frame {
    std::unique_ptr<uint8_t[]> data;
    uint32_t refs = 0;
  };

  uint32_t max_frames_;
  std::vector<Frame> frames_;
  std::vector<FrameId> free_list_;
  uint32_t frames_in_use_ = 0;
  uint32_t peak_frames_ = 0;
  uint64_t total_allocations_ = 0;
};

}  // namespace omos

#endif  // OMOS_SRC_VM_PHYS_MEMORY_H_
