// Physical frame pool with reference counting.
//
// The "shared" in shared libraries is, concretely, two tasks' address spaces
// referencing the same physical frames. OMOS's cached images own frames;
// every task that maps a cached segment bumps the frames' refcounts. The
// pool's accounting (frames in use vs. sum of mapped bytes) is how the
// memory-consumption benchmarks measure sharing.
//
// Thread safety: many tasks may run (and fault) concurrently, so the pool is
// internally synchronized. Ref/Unref are lock-free on the fast path (atomic
// refcounts); Allocate and free-list recycling take one mutex. Frame storage
// is a fixed table of lazily-filled blocks, so FrameData pointers — and the
// Frame slots themselves — stay valid without any lock while other threads
// allocate.
#ifndef OMOS_SRC_VM_PHYS_MEMORY_H_
#define OMOS_SRC_VM_PHYS_MEMORY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/support/result.h"

namespace omos {

inline constexpr uint32_t kPageSize = 4096;
inline constexpr uint32_t kPageMask = kPageSize - 1;

inline uint32_t PageAlignUp(uint32_t value) { return (value + kPageMask) & ~kPageMask; }
inline uint32_t PageAlignDown(uint32_t value) { return value & ~kPageMask; }

using FrameId = uint32_t;

class PhysMemory {
 public:
  explicit PhysMemory(uint32_t max_frames = 1u << 20);
  ~PhysMemory();

  // Allocate a zeroed frame with refcount 1.
  Result<FrameId> Allocate();
  // Allocate a frame with refcount 1 WITHOUT zeroing it: recycled frames
  // still hold their previous contents. Only for callers that immediately
  // overwrite every byte (private-map initialization, CoW break copies) —
  // this is what removes the redundant zero-fill from the eager exec path.
  Result<FrameId> AllocateUninit();

  void Ref(FrameId frame);
  // Drops a reference; the frame returns to the free list at zero.
  void Unref(FrameId frame);

  uint8_t* FrameData(FrameId frame);
  const uint8_t* FrameData(FrameId frame) const;
  uint32_t RefCount(FrameId frame) const;

  // Reuse generation: bumped each time the frame is freed to the recycle
  // list. Caches keyed by frame identity (the execution engine's predecoded
  // block cache, src/engine/) include the generation in their keys so a
  // recycled frame — same FrameId, new contents — can never satisfy a stale
  // lookup.
  uint32_t FrameGen(FrameId frame) const;

  // Accounting.
  uint32_t frames_in_use() const { return frames_in_use_.load(std::memory_order_relaxed); }
  uint64_t bytes_in_use() const { return static_cast<uint64_t>(frames_in_use()) * kPageSize; }
  uint32_t peak_frames() const { return peak_frames_.load(std::memory_order_relaxed); }
  uint64_t total_allocations() const { return total_allocations_.load(std::memory_order_relaxed); }

 private:
  // 1024 frames (4 MiB of simulated memory) per lazily-allocated block; the
  // block pointer table is sized up front so readers index it without locks.
  static constexpr uint32_t kFramesPerBlock = 1024;

  struct Frame {
    std::unique_ptr<uint8_t[]> data;         // allocated on first use, then stable
    std::atomic<uint32_t> refs{0};
    std::atomic<uint32_t> gen{0};            // bumped on each free (see FrameGen)
  };

  Result<FrameId> AllocateInternal(bool zero);
  Frame& FrameRef(FrameId frame) const;

  uint32_t max_frames_;
  uint32_t num_blocks_;
  // Fixed-size table of atomic block pointers: installed under mu_ with
  // release stores, read with acquire loads, never resized or freed until
  // destruction.
  std::unique_ptr<std::atomic<Frame*>[]> blocks_;

  mutable std::mutex mu_;  // guards free_list_, next_frame_, block installation
  std::vector<FrameId> free_list_;
  uint32_t next_frame_ = 0;  // frames ever created

  std::atomic<uint32_t> frames_in_use_{0};
  std::atomic<uint32_t> peak_frames_{0};
  std::atomic<uint64_t> total_allocations_{0};
};

}  // namespace omos

#endif  // OMOS_SRC_VM_PHYS_MEMORY_H_
