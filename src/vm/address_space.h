// Per-task virtual address spaces: page-granular regions backed by frames
// from the shared PhysMemory pool. This is the mini analog of Mach's
// vm_map() that the paper's OMOS uses to map cached segments into client
// tasks (§5, §7).
//
// Pages come in four states:
//   - present/private: this space owns the frame (MapPrivate, or a resolved
//     fault below).
//   - present/shared:  the frame belongs to a cached SegmentImage and is
//     mapped directly (MapShared — read/exec text).
//   - present/CoW:     the frame belongs to a cached SegmentImage but the
//     region is writable; the first write faults, copies the page into a
//     private frame (or adopts the frame outright if this space is its last
//     owner) and re-points the mapping (MapCoW — data segments).
//   - absent/demand-zero: no frame yet; the first touch faults in a zeroed
//     frame (MapDemandZero / MapZero — bss, stack, heap).
// Faults raised by any access path (interpreter loads/stores/fetches, kernel
// syscalls, server patching) funnel through HandleFault(). A kernel can
// interpose with SetFaultHandler() to bill simulated cycles and count
// metrics; a bare AddressSpace resolves faults inline, unbilled.
#ifndef OMOS_SRC_VM_ADDRESS_SPACE_H_
#define OMOS_SRC_VM_ADDRESS_SPACE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "src/support/result.h"
#include "src/vm/phys_memory.h"

namespace omos {

enum ProtBits : uint8_t {
  kProtRead = 1,
  kProtWrite = 2,
  kProtExec = 4,
};

// A cached, shareable image of a loaded segment: frames owned by the cache
// (refcount held), mapped read-only or CoW into any number of tasks.
class SegmentImage {
 public:
  SegmentImage() = default;
  SegmentImage(const SegmentImage&) = delete;
  SegmentImage& operator=(const SegmentImage&) = delete;
  SegmentImage(SegmentImage&& other) noexcept;
  SegmentImage& operator=(SegmentImage&& other) noexcept;
  ~SegmentImage();

  // Build an image holding `bytes` (padded to whole pages).
  static Result<SegmentImage> Create(PhysMemory& phys, std::span<const uint8_t> bytes);

  uint32_t size_bytes() const { return size_bytes_; }
  uint32_t num_pages() const { return static_cast<uint32_t>(frames_.size()); }
  const std::vector<FrameId>& frames() const { return frames_; }
  PhysMemory* phys() const { return phys_; }

 private:
  PhysMemory* phys_ = nullptr;
  std::vector<FrameId> frames_;
  uint32_t size_bytes_ = 0;
};

// How a page fault was resolved (for metrics/billing in the kernel).
enum class FaultResolution : uint8_t {
  kDemandZeroFill,   // absent page filled with a zeroed frame
  kCowCopy,          // shared frame copied into a private frame
  kCowAdopt,         // this space was the frame's last owner; no copy needed
  kAlreadyResolved,  // page was present and writable by the time we got here
};

struct PageFaultInfo {
  uint32_t addr = 0;
  bool is_write = false;
};

class AddressSpace {
 public:
  explicit AddressSpace(PhysMemory& phys) : phys_(&phys) {}
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;
  ~AddressSpace();

  // Map `image`'s frames at `base` (page aligned), sharing physical memory.
  // Returns the number of pages mapped.
  Result<uint32_t> MapShared(uint32_t base, const SegmentImage& image, uint8_t prot,
                             std::string name);

  // Map `image`'s frames copy-on-write at `base`: the image's pages are
  // shared until first write; [image pages, size) is demand-zero (bss).
  // `size` covers the whole region (initialized data + bss) and may exceed
  // the image; it is page-aligned up. Returns total pages mapped.
  Result<uint32_t> MapCoW(uint32_t base, const SegmentImage& image, uint32_t size, uint8_t prot,
                          std::string name);

  // Map fresh private frames at `base` initialized from `init` (rest zero).
  Result<uint32_t> MapPrivate(uint32_t base, uint32_t size, std::span<const uint8_t> init,
                              uint8_t prot, std::string name);

  // Map demand-zero pages: no frames are allocated until first touch.
  Result<uint32_t> MapDemandZero(uint32_t base, uint32_t size, uint8_t prot, std::string name);

  // Map zeroed pages (bss, stack, heap). Demand-paged: alias of MapDemandZero.
  Result<uint32_t> MapZero(uint32_t base, uint32_t size, uint8_t prot, std::string name);

  Result<void> Unmap(uint32_t base);

  // Resolve a page fault at `addr`: fill a demand-zero page or break a CoW
  // page for writing. Returns how it was resolved. Errors if `addr` is not
  // mapped (or a fault-injection plan trips the "vm.fault" site).
  Result<FaultResolution> HandleFault(uint32_t addr, bool is_write);

  // Interpose on fault resolution (the kernel installs one per task to bill
  // simulated cycles and count vm.* metrics). The handler must call back
  // into HandleFault() to actually resolve the page.
  using FaultHandler = std::function<Result<void>(const PageFaultInfo&)>;
  void SetFaultHandler(FaultHandler handler) { fault_handler_ = std::move(handler); }

  // Memory access used by the interpreter and the kernel. Checks protection;
  // handles page-crossing transfers; faults in absent/CoW pages as needed.
  Result<void> ReadBytes(uint32_t addr, void* out, uint32_t size) const;
  Result<void> WriteBytes(uint32_t addr, const void* data, uint32_t size);
  Result<uint32_t> Read32(uint32_t addr) const;
  Result<void> Write32(uint32_t addr, uint32_t value);
  Result<uint8_t> Read8(uint32_t addr) const;
  Result<void> Write8(uint32_t addr, uint8_t value);
  // Read a NUL-terminated string (bounded by `max_len`).
  Result<std::string> ReadCString(uint32_t addr, uint32_t max_len = 4096) const;

  // Fetch for execution (checks kProtExec).
  Result<void> FetchBytes(uint32_t addr, void* out, uint32_t size) const;

  // ---- Translation-cache support (src/engine/) ------------------------------
  //
  // Monotonic counter bumped whenever a virtual-to-frame translation could
  // have changed: any map/unmap, and any fault resolution that installs or
  // replaces a frame (demand-zero fill, CoW break/adopt). The execution
  // engine's software TLB and block cache tag their entries with this epoch
  // and self-flush on mismatch — one load+compare instead of callback
  // plumbing through every map site.
  uint64_t map_epoch() const { return map_epoch_; }

  // Snapshot of one page's current translation, for TLB fills. Resolves
  // nothing and bills nothing: an absent (demand-zero) page reports
  // present=false and the caller takes the faulting slow path instead.
  struct PageLookup {
    uint8_t* data = nullptr;  // frame bytes (valid only when present)
    FrameId frame = 0;
    uint8_t prot = 0;
    bool present = false;
    bool cow = false;  // present but still sharing an image frame; writes fault
  };
  bool LookupPage(uint32_t addr, PageLookup* out) const;

  // True if [base, base+size) overlaps an existing region.
  bool Overlaps(uint32_t base, uint32_t size) const;

  // Accounting. Pages move between buckets as faults resolve: a demand-zero
  // fill moves demand→private, a CoW break moves shared→private.
  uint32_t private_pages() const { return private_pages_; }
  uint32_t shared_pages() const { return shared_pages_; }
  uint32_t demand_pages() const { return demand_pages_; }
  uint32_t total_pages() const { return private_pages_ + shared_pages_ + demand_pages_; }

  struct RegionInfo {
    uint32_t base;
    uint32_t size;
    uint8_t prot;
    bool shared;
    std::string name;
    uint32_t cow_pages = 0;     // present, still sharing an image frame
    uint32_t absent_pages = 0;  // demand-zero, not yet touched
  };
  std::vector<RegionInfo> Regions() const;

 private:
  // Per-page state flags (Region::page_flags).
  enum PageFlags : uint8_t {
    kPageCow = 1,     // present; frame shared with an image; copy on write
    kPageShared = 2,  // present; frame shared via MapShared (never broken)
  };

  struct Region {
    uint32_t base = 0;
    uint32_t size = 0;  // page aligned
    uint8_t prot = 0;
    bool shared = false;
    std::string name;
    // Parallel per-page arrays. page_data[i] == nullptr means the page is
    // absent (demand-zero); frames[i] is only meaningful when present. The
    // cached data pointer is safe because PhysMemory never frees frame
    // buffers, only recycles them, and this space holds a ref while mapped.
    std::vector<FrameId> frames;
    std::vector<uint8_t*> page_data;
    std::vector<uint8_t> page_flags;
  };

  const Region* FindRegion(uint32_t addr) const;
  Region* FindRegionMutable(uint32_t addr);
  Result<void> Access(uint32_t addr, void* buf, uint32_t size, bool write, bool exec) const;
  Result<void> CheckFree(uint32_t base, uint32_t size, std::string_view name) const;
  // Route a fault through the installed handler (kernel billing path) or
  // resolve it inline for bare spaces.
  Result<void> RaiseFault(uint32_t addr, bool is_write);
  void ReleasePages(Region& region);

  PhysMemory* phys_;
  std::map<uint32_t, Region> regions_;  // keyed by base
  FaultHandler fault_handler_;
  uint64_t map_epoch_ = 1;
  mutable const Region* last_region_ = nullptr;
  uint32_t private_pages_ = 0;
  uint32_t shared_pages_ = 0;
  uint32_t demand_pages_ = 0;
};

}  // namespace omos

#endif  // OMOS_SRC_VM_ADDRESS_SPACE_H_
