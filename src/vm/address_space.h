// Per-task virtual address spaces: page-granular regions backed by frames
// from the shared PhysMemory pool. This is the mini analog of Mach's
// vm_map() that the paper's OMOS uses to map cached segments into client
// tasks (§5, §7).
#ifndef OMOS_SRC_VM_ADDRESS_SPACE_H_
#define OMOS_SRC_VM_ADDRESS_SPACE_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "src/support/result.h"
#include "src/vm/phys_memory.h"

namespace omos {

enum ProtBits : uint8_t {
  kProtRead = 1,
  kProtWrite = 2,
  kProtExec = 4,
};

// A cached, shareable image of a loaded segment: frames owned by the cache
// (refcount held), mapped read-only into any number of tasks.
class SegmentImage {
 public:
  SegmentImage() = default;
  SegmentImage(const SegmentImage&) = delete;
  SegmentImage& operator=(const SegmentImage&) = delete;
  SegmentImage(SegmentImage&& other) noexcept;
  SegmentImage& operator=(SegmentImage&& other) noexcept;
  ~SegmentImage();

  // Build an image holding `bytes` (padded to whole pages).
  static Result<SegmentImage> Create(PhysMemory& phys, std::span<const uint8_t> bytes);

  uint32_t size_bytes() const { return size_bytes_; }
  uint32_t num_pages() const { return static_cast<uint32_t>(frames_.size()); }
  const std::vector<FrameId>& frames() const { return frames_; }
  PhysMemory* phys() const { return phys_; }

 private:
  PhysMemory* phys_ = nullptr;
  std::vector<FrameId> frames_;
  uint32_t size_bytes_ = 0;
};

class AddressSpace {
 public:
  explicit AddressSpace(PhysMemory& phys) : phys_(&phys) {}
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;
  ~AddressSpace();

  // Map `image`'s frames at `base` (page aligned), sharing physical memory.
  // Returns the number of pages mapped.
  Result<uint32_t> MapShared(uint32_t base, const SegmentImage& image, uint8_t prot,
                             std::string name);

  // Map fresh private frames at `base` initialized from `init` (rest zero).
  Result<uint32_t> MapPrivate(uint32_t base, uint32_t size, std::span<const uint8_t> init,
                              uint8_t prot, std::string name);

  // Map fresh zeroed frames (bss, stack, heap).
  Result<uint32_t> MapZero(uint32_t base, uint32_t size, uint8_t prot, std::string name);

  Result<void> Unmap(uint32_t base);

  // Memory access used by the interpreter and the kernel. Checks protection;
  // handles page-crossing transfers.
  Result<void> ReadBytes(uint32_t addr, void* out, uint32_t size) const;
  Result<void> WriteBytes(uint32_t addr, const void* data, uint32_t size);
  Result<uint32_t> Read32(uint32_t addr) const;
  Result<void> Write32(uint32_t addr, uint32_t value);
  Result<uint8_t> Read8(uint32_t addr) const;
  Result<void> Write8(uint32_t addr, uint8_t value);
  // Read a NUL-terminated string (bounded by `max_len`).
  Result<std::string> ReadCString(uint32_t addr, uint32_t max_len = 4096) const;

  // Fetch for execution (checks kProtExec).
  Result<void> FetchBytes(uint32_t addr, void* out, uint32_t size) const;

  // True if [base, base+size) overlaps an existing region.
  bool Overlaps(uint32_t base, uint32_t size) const;

  // Accounting.
  uint32_t private_pages() const { return private_pages_; }
  uint32_t shared_pages() const { return shared_pages_; }
  uint32_t total_pages() const { return private_pages_ + shared_pages_; }

  struct RegionInfo {
    uint32_t base;
    uint32_t size;
    uint8_t prot;
    bool shared;
    std::string name;
  };
  std::vector<RegionInfo> Regions() const;

 private:
  struct Region {
    uint32_t base = 0;
    uint32_t size = 0;  // page aligned
    uint8_t prot = 0;
    bool shared = false;
    std::string name;
    std::vector<FrameId> frames;
  };

  const Region* FindRegion(uint32_t addr) const;
  Result<void> Access(uint32_t addr, void* buf, uint32_t size, bool write, bool exec) const;
  Result<void> CheckFree(uint32_t base, uint32_t size, std::string_view name) const;

  PhysMemory* phys_;
  std::map<uint32_t, Region> regions_;  // keyed by base
  mutable const Region* last_region_ = nullptr;
  uint32_t private_pages_ = 0;
  uint32_t shared_pages_ = 0;
};

}  // namespace omos

#endif  // OMOS_SRC_VM_ADDRESS_SPACE_H_
