#include "src/support/thread_pool.h"

#include <algorithm>
#include <memory>

#include "src/support/metrics.h"

namespace omos {

ThreadPool::ThreadPool(size_t threads) {
  worker_state_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    worker_state_.push_back(std::make_unique<Worker>());
  }
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  metrics_token_ = MetricsRegistry::Global().AddSource(
      [this](std::vector<std::pair<std::string, uint64_t>>& out) {
        out.emplace_back("pool.steals", steals());
        out.emplace_back("pool.tasks_submitted", tasks_submitted());
        out.emplace_back("pool.queue_depth", ForegroundPending());
        out.emplace_back("pool.threads", thread_count());
      });
}

ThreadPool::~ThreadPool() {
  MetricsRegistry::Global().RemoveSource(metrics_token_);
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

ThreadPool& ThreadPool::Global() {
  // Leaked intentionally so pool workers never race static destruction.
  static ThreadPool* pool = new ThreadPool(
      std::min<size_t>(8, std::max<size_t>(1, std::thread::hardware_concurrency())));
  return *pool;
}

void ThreadPool::Submit(std::function<void()> fn) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (workers_.empty()) {
    fn();
    return;
  }
  size_t index = next_worker_.fetch_add(1, std::memory_order_relaxed) % worker_state_.size();
  {
    std::lock_guard<std::mutex> lock(worker_state_[index]->mu);
    worker_state_[index]->deque.push_back(std::move(fn));
  }
  foreground_pending_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
  }
  wake_cv_.notify_one();
}

void ThreadPool::SubmitBackground(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(background_mu_);
    background_.push_back(std::move(fn));
  }
  if (!workers_.empty()) {
    std::lock_guard<std::mutex> lock(wake_mu_);
    wake_cv_.notify_one();
  }
}

bool ThreadPool::TakeForeground(size_t preferred, std::function<void()>& out) {
  size_t count = worker_state_.size();
  // Own deque first (newest first, for locality), then steal oldest work
  // from the others.
  for (size_t attempt = 0; attempt < count; ++attempt) {
    size_t index = (preferred + attempt) % count;
    Worker& worker = *worker_state_[index];
    std::lock_guard<std::mutex> lock(worker.mu);
    if (worker.deque.empty()) {
      continue;
    }
    if (attempt == 0) {
      out = std::move(worker.deque.back());
      worker.deque.pop_back();
    } else {
      out = std::move(worker.deque.front());
      worker.deque.pop_front();
      steals_.fetch_add(1, std::memory_order_relaxed);
    }
    foreground_pending_.fetch_sub(1, std::memory_order_acq_rel);
    return true;
  }
  return false;
}

bool ThreadPool::TakeBackground(std::function<void()>& out) {
  // Idle gate: background work runs only when no foreground task waits.
  if (foreground_pending_.load(std::memory_order_acquire) != 0) {
    return false;
  }
  std::lock_guard<std::mutex> lock(background_mu_);
  if (background_.empty()) {
    return false;
  }
  out = std::move(background_.front());
  background_.pop_front();
  return true;
}

bool ThreadPool::TakeTask(size_t worker_index, std::function<void()>& out) {
  return TakeForeground(worker_index, out) || TakeBackground(out);
}

void ThreadPool::WorkerLoop(size_t index) {
  for (;;) {
    // `active_` rises before the queue counters drop, so WaitIdle never
    // observes "no work anywhere" while a task is in hand but not yet run.
    active_.fetch_add(1, std::memory_order_acq_rel);
    std::function<void()> task;
    bool got = TakeTask(index, task);
    if (got) {
      task();
      task = nullptr;
    }
    if (active_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(wake_mu_);
      idle_cv_.notify_all();
    }
    if (got) {
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    idle_cv_.notify_all();
    wake_cv_.wait(lock, [this] {
      if (stop_.load(std::memory_order_relaxed)) {
        return true;
      }
      if (foreground_pending_.load(std::memory_order_acquire) != 0) {
        return true;
      }
      std::lock_guard<std::mutex> bg_lock(background_mu_);
      return !background_.empty();
    });
    if (stop_.load(std::memory_order_relaxed)) {
      return;
    }
  }
}

void ThreadPool::ParallelFor(size_t n, size_t grain,
                             const std::function<void(size_t, size_t)>& body) {
  if (n == 0) {
    return;
  }
  grain = std::max<size_t>(1, grain);
  size_t chunks = (n + grain - 1) / grain;
  if (workers_.empty() || chunks <= 1) {
    body(0, n);
    return;
  }

  struct SharedState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
  };
  auto state = std::make_shared<SharedState>();
  auto run_chunks = [state, chunks, grain, n, &body] {
    for (;;) {
      size_t chunk = state->next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= chunks) {
        return;
      }
      size_t begin = chunk * grain;
      body(begin, std::min(n, begin + grain));
      state->done.fetch_add(1, std::memory_order_acq_rel);
    }
  };
  // Helpers beyond the caller; each exits as soon as the chunk counter is
  // exhausted, so an oversubmitted helper costs one atomic increment. The
  // `body` reference stays valid: no helper dereferences it after every
  // chunk is claimed, and the caller blocks below until all chunks finished.
  size_t helpers = std::min(workers_.size(), chunks - 1);
  for (size_t i = 0; i < helpers; ++i) {
    Submit(run_chunks);
  }
  run_chunks();
  // Spin-yield: chunks are short (link work) and the caller usually drains
  // most of them itself, so a futex-style wait is not worth the bookkeeping.
  while (state->done.load(std::memory_order_acquire) < chunks) {
    std::this_thread::yield();
  }
}

void ThreadPool::WaitIdle() {
  if (workers_.empty()) {
    DrainBackground();
    return;
  }
  std::unique_lock<std::mutex> lock(wake_mu_);
  idle_cv_.wait(lock, [this] {
    if (foreground_pending_.load(std::memory_order_acquire) != 0 ||
        active_.load(std::memory_order_acquire) != 0) {
      return false;
    }
    std::lock_guard<std::mutex> bg_lock(background_mu_);
    return background_.empty();
  });
}

size_t ThreadPool::DrainBackground() {
  size_t ran = 0;
  for (;;) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(background_mu_);
      if (background_.empty()) {
        return ran;
      }
      task = std::move(background_.front());
      background_.pop_front();
    }
    task();
    ++ran;
  }
}

size_t ThreadPool::ForegroundPending() const {
  return foreground_pending_.load(std::memory_order_acquire);
}

}  // namespace omos
