#include "src/support/faultsim.h"

#include "src/support/log.h"
#include "src/support/strings.h"

namespace omos {

namespace {

struct SiteState {
  FaultSpec spec;
  uint64_t hits = 0;
  uint64_t fires = 0;
};

struct SimState {
  std::map<std::string, SiteState, std::less<>> sites;
  uint64_t total_fires = 0;
};

SimState& State() {
  static SimState state;
  return state;
}

// splitmix64: a well-mixed hash of (seed, hit) drives probability triggers,
// so the schedule is a pure function of the spec — replayable across runs.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

bool TriggerFires(const SiteState& site) {
  const FaultSpec& spec = site.spec;
  if (spec.max_fires >= 0 && site.fires >= static_cast<uint64_t>(spec.max_fires)) {
    return false;
  }
  if (spec.nth != 0 && site.hits == spec.nth) {
    return true;
  }
  if (spec.every != 0 && site.hits % spec.every == 0) {
    return true;
  }
  if (spec.probability > 0.0) {
    double draw = static_cast<double>(Mix(spec.seed ^ (site.hits * 0x100000001B3ull)) >> 11) *
                  (1.0 / 9007199254740992.0);  // 53-bit mantissa -> [0, 1)
    if (draw < spec.probability) {
      return true;
    }
  }
  return false;
}

}  // namespace

void FaultSim::Install(FaultPlan plan) {
  SimState& state = State();
  state.sites.clear();
  state.total_fires = 0;
  for (const auto& [site, spec] : plan.sites()) {
    state.sites.emplace(site, SiteState{spec, 0, 0});
  }
}

void FaultSim::Reset() {
  SimState& state = State();
  state.sites.clear();
  state.total_fires = 0;
}

bool FaultSim::Trip(std::string_view site, uint32_t* payload_out) {
  SimState& state = State();
  if (state.sites.empty()) {
    return false;  // fast path: no plan installed
  }
  auto it = state.sites.find(site);
  if (it == state.sites.end()) {
    return false;
  }
  SiteState& armed = it->second;
  ++armed.hits;
  if (!TriggerFires(armed)) {
    return false;
  }
  ++armed.fires;
  ++state.total_fires;
  if (payload_out != nullptr) {
    *payload_out = armed.spec.payload;
  }
  LogMessage(LogLevel::kDebug, "faultsim",
             StrCat("fired ", site, " (hit ", armed.hits, ", fire ", armed.fires, ")"));
  return true;
}

bool FaultSim::Armed(std::string_view site) {
  SimState& state = State();
  return !state.sites.empty() && state.sites.find(site) != state.sites.end();
}

uint64_t FaultSim::Hits(std::string_view site) {
  SimState& state = State();
  auto it = state.sites.find(site);
  return it == state.sites.end() ? 0 : it->second.hits;
}

uint64_t FaultSim::Fires(std::string_view site) {
  SimState& state = State();
  auto it = state.sites.find(site);
  return it == state.sites.end() ? 0 : it->second.fires;
}

uint64_t FaultSim::TotalFires() { return State().total_fires; }

}  // namespace omos
