#include "src/support/faultsim.h"

#include <atomic>
#include <mutex>

#include "src/support/log.h"
#include "src/support/metrics.h"
#include "src/support/strings.h"
#include "src/support/trace.h"

namespace omos {

namespace {

struct SiteState {
  FaultSpec spec;
  uint64_t hits = 0;
  uint64_t fires = 0;
};

// Thread-safety: `mu` guards the site map and all counters. The unarmed
// fast path — the only one production code pays when no plan is installed —
// is a single relaxed atomic load, so fault sites stay ~free under
// concurrency. With a plan installed, per-site hit counters are shared
// across threads: the total counts stay exact (mutex), but *which* thread's
// hit trips an nth/every trigger depends on scheduling. Deterministic fault
// schedules (the sweep harness, replayable seeds) therefore assume a single
// tripping thread; concurrent tests should assert totals, not which caller
// observed the fire. Install/Reset are single-writer operations: arming or
// clearing a plan while worker threads are mid-request is not supported
// (quiesce the pool first), matching how every sweep and test uses it.
struct SimState {
  std::mutex mu;
  std::map<std::string, SiteState, std::less<>> sites;
  uint64_t total_fires = 0;
  // True whenever `sites` is non-empty; readable without `mu`.
  std::atomic<bool> any_armed{false};
};

SimState& State() {
  static SimState state;
  // FaultSim totals join the unified metrics snapshot; registered once on
  // first use (the callback itself only runs at snapshot time).
  static bool metrics_registered = [] {
    MetricsRegistry::Global().AddSource(
        [](std::vector<std::pair<std::string, uint64_t>>& out) {
          out.emplace_back("fault.total_fires", FaultSim::TotalFires());
          for (auto& [site, fires] : FaultSim::FireCounts()) {
            out.emplace_back("fault.fires." + site, fires);
          }
        });
    return true;
  }();
  (void)metrics_registered;
  return state;
}

// splitmix64: a well-mixed hash of (seed, hit) drives probability triggers,
// so the schedule is a pure function of the spec — replayable across runs.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

bool TriggerFires(const SiteState& site) {
  const FaultSpec& spec = site.spec;
  if (spec.max_fires >= 0 && site.fires >= static_cast<uint64_t>(spec.max_fires)) {
    return false;
  }
  if (spec.nth != 0 && site.hits == spec.nth) {
    return true;
  }
  if (spec.every != 0 && site.hits % spec.every == 0) {
    return true;
  }
  if (spec.probability > 0.0) {
    double draw = static_cast<double>(Mix(spec.seed ^ (site.hits * 0x100000001B3ull)) >> 11) *
                  (1.0 / 9007199254740992.0);  // 53-bit mantissa -> [0, 1)
    if (draw < spec.probability) {
      return true;
    }
  }
  return false;
}

}  // namespace

void FaultSim::Install(FaultPlan plan) {
  SimState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.sites.clear();
  state.total_fires = 0;
  for (const auto& [site, spec] : plan.sites()) {
    state.sites.emplace(site, SiteState{spec, 0, 0});
  }
  state.any_armed.store(!state.sites.empty(), std::memory_order_release);
}

void FaultSim::Reset() {
  SimState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.sites.clear();
  state.total_fires = 0;
  state.any_armed.store(false, std::memory_order_release);
}

bool FaultSim::Trip(std::string_view site, uint32_t* payload_out) {
  SimState& state = State();
  if (!state.any_armed.load(std::memory_order_acquire)) {
    return false;  // fast path: no plan installed
  }
  uint64_t hits = 0;
  uint64_t fires = 0;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    auto it = state.sites.find(site);
    if (it == state.sites.end()) {
      return false;
    }
    SiteState& armed = it->second;
    ++armed.hits;
    if (!TriggerFires(armed)) {
      return false;
    }
    ++armed.fires;
    ++state.total_fires;
    if (payload_out != nullptr) {
      *payload_out = armed.spec.payload;
    }
    hits = armed.hits;
    fires = armed.fires;
  }
  TraceInstant("fault.fire", site);
  LogMessage(LogLevel::kDebug, "faultsim",
             StrCat("fired ", site, " (hit ", hits, ", fire ", fires, ")"));
  return true;
}

bool FaultSim::Armed(std::string_view site) {
  SimState& state = State();
  if (!state.any_armed.load(std::memory_order_acquire)) {
    return false;
  }
  std::lock_guard<std::mutex> lock(state.mu);
  return state.sites.find(site) != state.sites.end();
}

uint64_t FaultSim::Hits(std::string_view site) {
  SimState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.sites.find(site);
  return it == state.sites.end() ? 0 : it->second.hits;
}

uint64_t FaultSim::Fires(std::string_view site) {
  SimState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.sites.find(site);
  return it == state.sites.end() ? 0 : it->second.fires;
}

uint64_t FaultSim::TotalFires() {
  SimState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.total_fires;
}

std::vector<std::pair<std::string, uint64_t>> FaultSim::FireCounts() {
  SimState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<std::pair<std::string, uint64_t>> counts;
  counts.reserve(state.sites.size());
  for (const auto& [site, site_state] : state.sites) {
    counts.emplace_back(site, site_state.fires);
  }
  return counts;
}

}  // namespace omos
