// Error codes and the Error value type used throughout OMOS.
//
// OMOS never throws across module boundaries; fallible operations return
// Result<T> (see src/support/result.h) carrying one of these errors.
#ifndef OMOS_SRC_SUPPORT_ERROR_H_
#define OMOS_SRC_SUPPORT_ERROR_H_

#include <string>
#include <string_view>
#include <utility>

namespace omos {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kParseError,          // malformed blueprint / object file / assembly
  kDuplicateSymbol,     // merge found conflicting definitions
  kUnresolvedSymbol,    // link closure has unbound references
  kRelocationError,     // relocation target unrepresentable / bad kind
  kConstraintConflict,  // address constraint system could not place object
  kExecFault,           // simulated machine fault (bad memory, bad opcode)
  kIoError,             // simulated filesystem failure
  kProtocolError,       // malformed IPC request/response
  kTimeout,             // request or reply lost in transit (retryable)
  kUnavailable,         // peer not accepting requests (retryable)
  kCorrupted,           // stored or transmitted bytes failed an integrity check
  kUnsupported,
  kInternal,            // keep last: tests sweep [kOk, kInternal]
};

// Short stable name for an error code, e.g. "unresolved-symbol".
std::string_view ErrorCodeName(ErrorCode code);

// An error: a code plus a human-readable message with context.
class Error {
 public:
  Error(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {}

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "unresolved-symbol: reference to _foo has no definition"
  std::string ToString() const;

 private:
  ErrorCode code_;
  std::string message_;
};

}  // namespace omos

#endif  // OMOS_SRC_SUPPORT_ERROR_H_
