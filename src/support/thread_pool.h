// A small work-stealing thread pool with two priority lanes.
//
// The OMOS server is a persistent process shared by many clients (paper
// §3); request execution, the cold-link fan-out, and the idle-time image
// optimizer (§4.1: the server re-optimizes images "during idle time") all
// need worker threads. One pool serves all three:
//
//  * Foreground lane — per-worker deques with stealing. Submit() lands work
//    here; ParallelFor() fans a loop out across workers with the caller
//    participating (so nested parallelism can never deadlock: the caller
//    drains chunks itself while it waits).
//  * Background lane — a single FIFO of low-priority tasks. A worker takes
//    background work only when every foreground deque is empty, which is
//    the pool's definition of "idle time". Foreground work never waits
//    behind background work.
//
// A pool constructed with zero threads degrades to inline execution:
// Submit() and ParallelFor() run on the caller, background tasks run when
// DrainBackground() is called. This keeps single-threaded builds and the
// deterministic fault-sweep harness byte-for-byte reproducible.
#ifndef OMOS_SRC_SUPPORT_THREAD_POOL_H_
#define OMOS_SRC_SUPPORT_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace omos {

class ThreadPool {
 public:
  // `threads` worker threads; 0 = inline execution (no threads started).
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Shared process-wide pool: hardware_concurrency capped at 8 workers
  // (the server's request fan-out saturates well before that; see
  // docs/perf.md). Created on first use, never destroyed.
  static ThreadPool& Global();

  size_t thread_count() const { return workers_.size(); }

  // Enqueue `fn` on the foreground lane. With zero threads, runs inline.
  void Submit(std::function<void()> fn);

  // Enqueue `fn` on the background lane: it runs only when no foreground
  // work is queued. With zero threads it is deferred until DrainBackground().
  void SubmitBackground(std::function<void()> fn);

  // Run `body(begin, end)` over disjoint chunks covering [0, n), blocking
  // until all chunks finish. Chunk boundaries depend only on (n, grain), so
  // any per-index output is deterministic regardless of which thread runs
  // which chunk. The caller participates, so ParallelFor may be called from
  // inside pool tasks (including other ParallelFor bodies). `body` must not
  // throw.
  void ParallelFor(size_t n, size_t grain, const std::function<void(size_t, size_t)>& body);

  // Block until both lanes are empty and every worker is parked (tests and
  // shutdown barriers). Foreground submissions racing WaitIdle defer it.
  void WaitIdle();

  // Run queued background tasks on the caller until the lane is empty;
  // returns how many ran. This is how zero-thread pools (and tests wanting
  // deterministic scheduling) execute idle-time work.
  size_t DrainBackground();

  // Foreground tasks currently queued (not yet running); the background
  // gate. Approximate under concurrency.
  size_t ForegroundPending() const;

  // Observability counters (authoritative here; mirrored into the metrics
  // registry as pool.* via a per-pool source).
  uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }
  uint64_t tasks_submitted() const { return submitted_.load(std::memory_order_relaxed); }

 private:
  struct Worker {
    std::deque<std::function<void()>> deque;  // back = newest
    mutable std::mutex mu;
  };

  void WorkerLoop(size_t index);
  // Pop one runnable task, honouring lane priority. Returns false when both
  // lanes are empty.
  bool TakeTask(size_t worker_index, std::function<void()>& out);
  bool TakeForeground(size_t preferred, std::function<void()>& out);
  bool TakeBackground(std::function<void()>& out);

  std::vector<std::unique_ptr<Worker>> worker_state_;
  std::vector<std::thread> workers_;

  std::mutex background_mu_;
  std::deque<std::function<void()>> background_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::condition_variable idle_cv_;
  std::atomic<size_t> foreground_pending_{0};
  std::atomic<size_t> active_{0};  // tasks currently executing
  std::atomic<size_t> next_worker_{0};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> steals_{0};     // foreground tasks taken from another worker's deque
  std::atomic<uint64_t> submitted_{0};  // foreground tasks ever submitted
  uint64_t metrics_token_ = 0;          // this pool's registry source
};

}  // namespace omos

#endif  // OMOS_SRC_SUPPORT_THREAD_POOL_H_
