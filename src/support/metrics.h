// omtrace metrics: process-wide counters and fixed-bucket latency histograms.
//
// The registry is the single pane of glass the Introspect IPC request reads
// from: subsystems either own registry counters directly (Counter/Histogram
// pointers are stable for the life of the process, updates are lock-free) or
// register a *source* callback that contributes (name, value) pairs computed
// from their own internal state at snapshot time (CacheStats, FaultSim,
// ThreadPool). Duplicate names across sources are summed, so two ImageCache
// instances report one combined "cache.hits".
//
// Naming convention (docs/observability.md): dotted lowercase
// "<subsystem>.<metric>", e.g. "cache.hits", "ipc.retries",
// "server.request_ns". Histogram expansions append ".count", ".sum", ".p50",
// ".p90", ".p99".
#ifndef OMOS_SRC_SUPPORT_METRICS_H_
#define OMOS_SRC_SUPPORT_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace omos {

// A monotonically increasing counter. Add() is a single relaxed atomic add.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

inline constexpr int kHistogramBuckets = 64;

// A copy of a histogram's bucket counts at one instant. Benchmarks bracket a
// phase with two snapshots and subtract (Since) to get percentiles over just
// that interval, without resetting the live process-wide histogram.
struct HistogramSnapshot {
  uint64_t buckets[kHistogramBuckets] = {};
  uint64_t count = 0;

  // Bucket counts recorded after `earlier` was taken (same histogram).
  HistogramSnapshot Since(const HistogramSnapshot& earlier) const;
  // Same bucket-upper-boundary estimate as Histogram::Percentile.
  uint64_t Percentile(double p) const;
};

// Fixed-bucket histogram with power-of-two bucket boundaries: bucket i counts
// values v with 2^(i-1) <= v < 2^i (bucket 0 counts v == 0 and v == 1...
// precisely: bucket = bit_width(v)). Record() is two relaxed atomic adds.
class Histogram {
 public:
  static constexpr int kBuckets = kHistogramBuckets;

  void Record(uint64_t value) {
    buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t count() const;
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  // Upper bucket boundary containing the p-th percentile (p in [0,100]).
  // An estimate: exact within a factor of 2 (the bucket width).
  uint64_t Percentile(double p) const;
  HistogramSnapshot Snapshot() const;

  static int BucketFor(uint64_t value) {
    int bucket = 0;
    while (value > 0) {
      ++bucket;
      value >>= 1;
    }
    return bucket < kBuckets ? bucket : kBuckets - 1;
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

// Process-global registry. GetCounter/GetHistogram return stable pointers
// (never freed); callers look up once and cache the pointer on their hot
// paths. Sources let per-instance subsystem stats join the snapshot without
// moving their authoritative storage.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  // A source appends (name, value) pairs to the snapshot. Returns a token
  // for RemoveSource (call from the owning object's destructor).
  using SourceFn = std::function<void(std::vector<std::pair<std::string, uint64_t>>&)>;
  uint64_t AddSource(SourceFn fn);
  void RemoveSource(uint64_t token);

  // All counters, histogram expansions, and source contributions, summed by
  // name and sorted by name.
  std::vector<std::pair<std::string, uint64_t>> Snapshot() const;

  // Machine-parseable text: one "counter <name> <value>" line per counter or
  // source metric, one "hist <name> count=... sum=... p50=... p90=... p99=..."
  // line per histogram; sorted by name.
  std::string TextSummary() const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<uint64_t, SourceFn> sources_;
  uint64_t next_source_token_ = 1;
};

}  // namespace omos

#endif  // OMOS_SRC_SUPPORT_METRICS_H_
