// Minimal leveled logging. OMOS is a server; its observability story in the
// paper is "the system manager can monitor occurrences" — we log to stderr.
#ifndef OMOS_SRC_SUPPORT_LOG_H_
#define OMOS_SRC_SUPPORT_LOG_H_

#include <string_view>

namespace omos {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kNone = 4 };

// Messages below this level are dropped. Default: kWarning (quiet tests).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

void LogMessage(LogLevel level, std::string_view module, std::string_view message);

}  // namespace omos

#endif  // OMOS_SRC_SUPPORT_LOG_H_
