#include "src/support/strings.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <mutex>
#include <regex>

namespace omos {

std::vector<std::string> SplitString(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() && std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string Hex32(uint32_t value) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", value);
  return buf;
}

uint64_t Fnv1aBytes(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = 1469598103934665603ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

uint64_t Fnv1a(std::string_view data) { return Fnv1aBytes(data.data(), data.size()); }

namespace {

// std::regex construction is expensive; module operations reuse a handful of
// selector patterns many times, so cache compiled regexes.
const std::regex& CompiledRegex(std::string_view pattern) {
  static std::mutex mu;
  static std::map<std::string, std::regex, std::less<>>* cache =
      new std::map<std::string, std::regex, std::less<>>();
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache->find(pattern);
  if (it == cache->end()) {
    it = cache->emplace(std::string(pattern), std::regex(std::string(pattern),
                                                         std::regex::extended))
             .first;
  }
  return it->second;
}

}  // namespace

bool RegexMatch(std::string_view name, std::string_view pattern) {
  try {
    const std::regex& re = CompiledRegex(pattern);
    return std::regex_search(name.begin(), name.end(), re);
  } catch (const std::regex_error&) {
    return false;
  }
}

}  // namespace omos
