#include "src/support/strings.h"

#include "src/support/regex_cache.h"

#include <cctype>
#include <cstdio>
#include <map>
#include <mutex>
#include <regex>

namespace omos {

std::vector<std::string> SplitString(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() && std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string Hex32(uint32_t value) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", value);
  return buf;
}

uint64_t Fnv1aBytes(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = 1469598103934665603ULL;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

uint64_t Fnv1a(std::string_view data) { return Fnv1aBytes(data.data(), data.size()); }

namespace {

// splitmix64 finalizer: full-avalanche mix of one 64-bit word.
uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t HashBytes(const void* data, size_t size, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t hash = Mix64(seed ^ (0x9E3779B97F4A7C15ull + size));
  while (size >= 8) {
    uint64_t word;
    __builtin_memcpy(&word, p, 8);
    hash = Mix64(hash ^ word);
    p += 8;
    size -= 8;
  }
  if (size > 0) {
    uint64_t tail = 0;
    __builtin_memcpy(&tail, p, size);
    hash = Mix64(hash ^ tail ^ (static_cast<uint64_t>(size) << 56));
  }
  return hash;
}

namespace {

// std::regex construction is expensive; module operations reuse a handful of
// selector patterns many times, so cache compiled regexes.
const std::regex& CompiledRegex(std::string_view pattern) {
  static std::mutex mu;
  static std::map<std::string, std::regex, std::less<>>* cache =
      new std::map<std::string, std::regex, std::less<>>();
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache->find(pattern);
  if (it == cache->end()) {
    it = cache->emplace(std::string(pattern), std::regex(std::string(pattern),
                                                         std::regex::extended))
             .first;
  }
  return it->second;
}

}  // namespace

const std::regex* GetCompiledRegex(std::string_view pattern) {
  try {
    return &CompiledRegex(pattern);
  } catch (const std::regex_error&) {
    return nullptr;
  }
}

bool RegexMatch(std::string_view name, std::string_view pattern) {
  const std::regex* re = GetCompiledRegex(pattern);
  return re != nullptr && std::regex_search(name.begin(), name.end(), *re);
}

}  // namespace omos
