#include "src/support/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#include "src/support/strings.h"

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace omos {
namespace trace_internal {

std::atomic<bool> g_trace_enabled{false};

uint64_t ClockTicks() {
#if defined(__x86_64__)
  return __rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

namespace {

uint64_t ClockNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Small dense thread ids for event attribution (std::thread::id is opaque
// and wide; Chrome's tid field wants a small integer).
std::atomic<uint32_t> g_next_tid{1};

// One ring slot: a per-slot seqlock over all-atomic payload words. The
// writer marks the slot odd, stores the payload with relaxed atomic writes,
// then publishes with a release store of the even sequence; readers validate
// the sequence on both sides of the payload read and discard torn slots.
// Because every access is atomic, concurrent emit + snapshot is race-free
// under TSan without locking the emit path.
constexpr size_t kDetailWords = kTraceDetailBytes / 8;

// Cache-line aligned so the common emit (name + short detail: the first 8
// words) dirties exactly one line; long details spill into the second.
struct alignas(64) Slot {
  std::atomic<uint64_t> seq{0};  // 2*index+2 when slot `index` is readable
  std::atomic<uint64_t> ts_ticks{0};
  std::atomic<uint64_t> dur_ticks{0};
  std::atomic<uint64_t> sim_user{0};
  std::atomic<uint64_t> sim_sys{0};
  std::atomic<uint64_t> name{0};        // const char* to a string literal
  std::atomic<uint64_t> phase_tid{0};   // phase<<56 | detail_len<<32 | tid
  std::atomic<uint64_t> detail[kDetailWords] = {};
};

struct Ring {
  // Next slot index to write; monotonically increasing, owner-thread only
  // writes. floor marks the oldest index still visible (TraceClear).
  std::atomic<uint64_t> head{0};
  std::atomic<uint64_t> floor{0};
  Slot slots[kTraceRingCapacity];
};

// All rings ever created; never freed. A thread that exits parks its ring on
// the free list (events retained, still visible to snapshots) for reuse.
struct RingRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<Ring>> rings;
  std::vector<Ring*> free_rings;

  Ring* Acquire() {
    std::lock_guard<std::mutex> lock(mu);
    if (!free_rings.empty()) {
      Ring* ring = free_rings.back();
      free_rings.pop_back();
      return ring;
    }
    rings.push_back(std::make_unique<Ring>());
    return rings.back().get();
  }

  void Release(Ring* ring) {
    std::lock_guard<std::mutex> lock(mu);
    free_rings.push_back(ring);
  }
};

RingRegistry& Registry() {
  static RingRegistry* registry = new RingRegistry();  // leaked: outlives all threads
  return *registry;
}

// One TLS access covers both the ring and the dense tid on the emit path.
struct RingHolder {
  Ring* ring = nullptr;
  uint32_t tid = 0;
  ~RingHolder() {
    if (ring != nullptr) {
      Registry().Release(ring);
    }
  }
};
thread_local RingHolder t_ring;

RingHolder& LocalRingHolder() {
  RingHolder& holder = t_ring;
  if (holder.ring == nullptr) {
    holder.ring = Registry().Acquire();
    holder.tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  }
  return holder;
}

// ticks -> ns calibration: one (ticks, ns) pair captured the first time
// tracing is enabled, a second at export time. Between the two points the
// mapping is linear; with zero elapsed ticks (back-to-back calls) fall back
// to 1 tick == 1 ns.
struct Calibration {
  std::atomic<uint64_t> base_ticks{0};
  std::atomic<uint64_t> base_ns{0};
  std::atomic<bool> have_base{false};
};
Calibration g_calibration;

void EnsureCalibrationBase() {
  if (!g_calibration.have_base.load(std::memory_order_acquire)) {
    uint64_t ticks = ClockTicks();
    uint64_t ns = ClockNs();
    g_calibration.base_ticks.store(ticks, std::memory_order_relaxed);
    g_calibration.base_ns.store(ns, std::memory_order_relaxed);
    g_calibration.have_base.store(true, std::memory_order_release);
  }
}

double TicksPerNs() {
  EnsureCalibrationBase();
  uint64_t now_ticks = ClockTicks();
  uint64_t now_ns = ClockNs();
  uint64_t base_ticks = g_calibration.base_ticks.load(std::memory_order_relaxed);
  uint64_t base_ns = g_calibration.base_ns.load(std::memory_order_relaxed);
  if (now_ns <= base_ns || now_ticks <= base_ticks) {
    return 1.0;
  }
  return static_cast<double>(now_ticks - base_ticks) /
         static_cast<double>(now_ns - base_ns);
}

}  // namespace

void EmitSlot(const char* name, char phase, uint64_t start_ticks, uint64_t dur_ticks,
              uint64_t sim_user, uint64_t sim_sys, const char* detail, size_t detail_len) {
  RingHolder& holder = LocalRingHolder();
  Ring* ring = holder.ring;
  uint64_t index = ring->head.load(std::memory_order_relaxed);
  Slot& slot = ring->slots[index % kTraceRingCapacity];

  if (detail_len > kTraceDetailBytes) {
    detail_len = kTraceDetailBytes;
  }
  // Stores beyond what this event uses are skipped: the reader decodes
  // detail_len and the sim-words flag (bit 55) from the same seqlock
  // generation, so stale words from an earlier lap are never interpreted.
  bool has_sim = (sim_user | sim_sys) != 0;
  uint64_t packed = (static_cast<uint64_t>(static_cast<uint8_t>(phase)) << 56) |
                    (has_sim ? (1ull << 55) : 0) |
                    (static_cast<uint64_t>(detail_len) << 32) |
                    static_cast<uint64_t>(holder.tid);

  slot.seq.store(2 * index + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.ts_ticks.store(start_ticks, std::memory_order_relaxed);
  slot.dur_ticks.store(dur_ticks, std::memory_order_relaxed);
  if (has_sim) {
    slot.sim_user.store(sim_user, std::memory_order_relaxed);
    slot.sim_sys.store(sim_sys, std::memory_order_relaxed);
  }
  slot.name.store(reinterpret_cast<uint64_t>(name), std::memory_order_relaxed);
  slot.phase_tid.store(packed, std::memory_order_relaxed);
  for (size_t offset = 0; offset < detail_len; offset += 8) {
    uint64_t word = 0;
    size_t n = detail_len - offset < 8 ? detail_len - offset : 8;
    std::memcpy(&word, detail + offset, n);
    slot.detail[offset / 8].store(word, std::memory_order_relaxed);
  }
  slot.seq.store(2 * index + 2, std::memory_order_release);
  ring->head.store(index + 1, std::memory_order_release);
  // Warm the next slot: by the time this thread emits again, the ring has
  // cycled far enough that the slot's lines have fallen out of L1. The
  // second line holds detail words 2+; only pull it in when this event
  // shape used it — a short-detail instant then costs one line of cache
  // pollution per emit, not two.
  Slot& next = ring->slots[(index + 1) % kTraceRingCapacity];
  __builtin_prefetch(&next, 1);
  if (detail_len > 8) {
    __builtin_prefetch(reinterpret_cast<const char*>(&next) + 64, 1);
  }
}

}  // namespace trace_internal

using trace_internal::ClockTicks;
using trace_internal::EmitSlot;

void TraceSetEnabled(bool enabled) {
  if (enabled) {
    trace_internal::EnsureCalibrationBase();
  }
  trace_internal::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void TraceSpan::Finish() {
  uint64_t end = ClockTicks();
  EmitSlot(name_, 'X', start_ticks_, end - start_ticks_, sim_user_, sim_sys_, detail_,
           detail_len_);
}

void TraceInstant(const char* name) { TraceInstant(name, std::string_view(), 0, 0); }

void TraceInstant(const char* name, std::string_view detail) {
  TraceInstant(name, detail, 0, 0);
}

void TraceInstant(const char* name, std::string_view detail, uint64_t sim_user,
                  uint64_t sim_sys) {
  if (!TraceEnabled()) {
    return;
  }
  EmitSlot(name, 'i', ClockTicks(), 0, sim_user, sim_sys, detail.data(), detail.size());
}

std::vector<TraceEvent> TraceSnapshot() {
  using trace_internal::Registry;
  auto& registry = Registry();
  std::vector<trace_internal::Ring*> rings;
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    rings.reserve(registry.rings.size());
    for (const auto& ring : registry.rings) {
      rings.push_back(ring.get());
    }
  }

  double ticks_per_ns = trace_internal::TicksPerNs();
  uint64_t base_ticks =
      trace_internal::g_calibration.base_ticks.load(std::memory_order_relaxed);
  auto to_ns = [&](uint64_t ticks) -> uint64_t {
    if (ticks <= base_ticks) {
      return 0;
    }
    return static_cast<uint64_t>(static_cast<double>(ticks - base_ticks) / ticks_per_ns);
  };
  auto dur_ns = [&](uint64_t ticks) -> uint64_t {
    return static_cast<uint64_t>(static_cast<double>(ticks) / ticks_per_ns);
  };

  std::vector<TraceEvent> events;
  for (trace_internal::Ring* ring : rings) {
    uint64_t head = ring->head.load(std::memory_order_acquire);
    uint64_t floor = ring->floor.load(std::memory_order_acquire);
    uint64_t begin = head > kTraceRingCapacity ? head - kTraceRingCapacity : 0;
    if (floor > begin) {
      begin = floor;
    }
    for (uint64_t index = begin; index < head; ++index) {
      trace_internal::Slot& slot = ring->slots[index % kTraceRingCapacity];
      uint64_t seq1 = slot.seq.load(std::memory_order_acquire);
      if (seq1 != 2 * index + 2) {
        continue;  // overwritten or mid-write
      }
      TraceEvent event;
      uint64_t ts = slot.ts_ticks.load(std::memory_order_relaxed);
      uint64_t dur = slot.dur_ticks.load(std::memory_order_relaxed);
      uint64_t sim_user = slot.sim_user.load(std::memory_order_relaxed);
      uint64_t sim_sys = slot.sim_sys.load(std::memory_order_relaxed);
      uint64_t name = slot.name.load(std::memory_order_relaxed);
      uint64_t packed = slot.phase_tid.load(std::memory_order_relaxed);
      uint64_t detail_words[trace_internal::kDetailWords];
      for (size_t w = 0; w < trace_internal::kDetailWords; ++w) {
        detail_words[w] = slot.detail[w].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      uint64_t seq2 = slot.seq.load(std::memory_order_relaxed);
      if (seq2 != seq1) {
        continue;  // torn read: writer lapped us mid-slot
      }
      event.name = reinterpret_cast<const char*>(name);
      event.phase = static_cast<char>((packed >> 56) & 0xFF);
      event.tid = static_cast<uint32_t>(packed & 0xFFFFFFFF);
      if ((packed & (1ull << 55)) != 0) {  // sim words were written
        event.sim_user = sim_user;
        event.sim_sys = sim_sys;
      }
      size_t detail_len = (packed >> 32) & 0xFF;
      if (detail_len > kTraceDetailBytes) {
        detail_len = kTraceDetailBytes;
      }
      if (detail_len > 0) {
        char buffer[kTraceDetailBytes];
        std::memcpy(buffer, detail_words, sizeof(detail_words));
        event.detail.assign(buffer, detail_len);
      }
      event.ts_ns = to_ns(ts);
      event.dur_ns = dur_ns(dur);
      events.push_back(std::move(event));
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.ts_ns < b.ts_ns; });
  return events;
}

void TraceClear() {
  auto& registry = trace_internal::Registry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const auto& ring : registry.rings) {
    // Foreign-thread store is fine: floor is only read by snapshots and only
    // monotonically raised here; the owning writer never touches it.
    ring->floor.store(ring->head.load(std::memory_order_acquire),
                      std::memory_order_release);
  }
}

namespace {

void AppendJsonEscaped(std::string& out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

std::string_view CategoryOf(std::string_view name) {
  size_t dot = name.find('.');
  return dot == std::string_view::npos ? name : name.substr(0, dot);
}

void AppendMicros(std::string& out, uint64_t ns) {
  // Microseconds with fractional nanoseconds, e.g. 1234 ns -> "1.234".
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buffer;
}

}  // namespace

std::string TraceToChromeJson() {
  std::vector<TraceEvent> events = TraceSnapshot();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(out, event.name);
    out += "\",\"cat\":\"";
    AppendJsonEscaped(out, CategoryOf(event.name));
    out += "\",\"ph\":\"";
    out += event.phase == 'i' ? 'i' : 'X';
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(event.tid);
    out += ",\"ts\":";
    AppendMicros(out, event.ts_ns);
    if (event.phase != 'i') {
      out += ",\"dur\":";
      AppendMicros(out, event.dur_ns);
    } else {
      out += ",\"s\":\"t\"";
    }
    out += ",\"args\":{\"detail\":\"";
    AppendJsonEscaped(out, event.detail);
    out += "\",\"sim_user\":";
    out += std::to_string(event.sim_user);
    out += ",\"sim_sys\":";
    out += std::to_string(event.sim_sys);
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string TraceTextSummary() {
  std::vector<TraceEvent> events = TraceSnapshot();
  struct Aggregate {
    uint64_t count = 0;
    uint64_t total_ns = 0;
    uint64_t sim_user = 0;
    uint64_t sim_sys = 0;
  };
  std::map<std::string, Aggregate> spans;
  std::map<std::string, uint64_t> instants;
  for (const TraceEvent& event : events) {
    if (event.phase == 'i') {
      ++instants[event.name];
    } else {
      Aggregate& agg = spans[event.name];
      ++agg.count;
      agg.total_ns += event.dur_ns;
      agg.sim_user += event.sim_user;
      agg.sim_sys += event.sim_sys;
    }
  }
  std::string out;
  for (const auto& [name, agg] : spans) {
    out += StrCat("span ", name, " count=", agg.count, " total_ns=", agg.total_ns,
                  " avg_ns=", agg.count == 0 ? 0 : agg.total_ns / agg.count,
                  " sim_user=", agg.sim_user, " sim_sys=", agg.sim_sys, "\n");
  }
  for (const auto& [name, count] : instants) {
    out += StrCat("instant ", name, " count=", count, "\n");
  }
  return out;
}

// --- Minimal JSON reader ----------------------------------------------------
//
// Parses just enough JSON for the documents TraceToChromeJson produces (and
// reasonable hand-written variants): objects, arrays, strings with the
// escapes we emit, numbers, true/false/null.
namespace {

struct JsonParser {
  std::string_view input;
  size_t pos = 0;
  std::string error;

  bool Fail(std::string message) {
    if (error.empty()) {
      error = StrCat(message, " at offset ", pos);
    }
    return false;
  }

  void SkipSpace() {
    while (pos < input.size() && (input[pos] == ' ' || input[pos] == '\t' ||
                                  input[pos] == '\n' || input[pos] == '\r')) {
      ++pos;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos < input.size() && input[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipSpace();
    return pos < input.size() ? input[pos] : '\0';
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return Fail("expected string");
    }
    out->clear();
    while (pos < input.size()) {
      char c = input[pos++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos >= input.size()) {
          return Fail("bad escape");
        }
        char e = input[pos++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (pos + 4 > input.size()) {
              return Fail("bad \\u escape");
            }
            unsigned value = 0;
            for (int i = 0; i < 4; ++i) {
              char h = input[pos++];
              value <<= 4;
              if (h >= '0' && h <= '9') {
                value |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                value |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                value |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("bad \\u escape");
              }
            }
            // We only emit control characters this way; keep the low byte.
            *out += static_cast<char>(value & 0xFF);
            break;
          }
          default:
            return Fail("bad escape");
        }
      } else {
        *out += c;
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(double* out) {
    SkipSpace();
    size_t start = pos;
    if (pos < input.size() && (input[pos] == '-' || input[pos] == '+')) {
      ++pos;
    }
    while (pos < input.size() &&
           ((input[pos] >= '0' && input[pos] <= '9') || input[pos] == '.' ||
            input[pos] == 'e' || input[pos] == 'E' || input[pos] == '-' ||
            input[pos] == '+')) {
      ++pos;
    }
    if (pos == start) {
      return Fail("expected number");
    }
    *out = std::strtod(std::string(input.substr(start, pos - start)).c_str(), nullptr);
    return true;
  }

  // Parse any value, discarding contents except when captured by callers.
  bool SkipValue() {
    char c = Peek();
    if (c == '"') {
      std::string ignored;
      return ParseString(&ignored);
    }
    if (c == '{') {
      return ParseFlatObject(nullptr);
    }
    if (c == '[') {
      ++pos;
      if (Consume(']')) {
        return true;
      }
      do {
        if (!SkipValue()) {
          return false;
        }
      } while (Consume(','));
      return Consume(']') || Fail("expected ]");
    }
    if (c == 't' || c == 'f' || c == 'n') {
      while (pos < input.size() && input[pos] >= 'a' && input[pos] <= 'z') {
        ++pos;
      }
      return true;
    }
    double ignored;
    return ParseNumber(&ignored);
  }

  // Parse an object; if `fields` is non-null, leaf string/number values are
  // recorded as strings keyed by name (nested objects flatten one level with
  // their own keys — enough for trace events whose only nesting is "args").
  bool ParseFlatObject(std::map<std::string, std::string>* fields) {
    if (!Consume('{')) {
      return Fail("expected {");
    }
    if (Consume('}')) {
      return true;
    }
    do {
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      if (!Consume(':')) {
        return Fail("expected :");
      }
      char c = Peek();
      if (c == '"') {
        std::string value;
        if (!ParseString(&value)) {
          return false;
        }
        if (fields != nullptr) {
          (*fields)[key] = std::move(value);
        }
      } else if (c == '{') {
        if (!ParseFlatObject(fields)) {
          return false;
        }
      } else if (c == '[') {
        if (!SkipValue()) {
          return false;
        }
      } else if (c == 't' || c == 'f' || c == 'n') {
        if (!SkipValue()) {
          return false;
        }
      } else {
        double value;
        if (!ParseNumber(&value)) {
          return false;
        }
        if (fields != nullptr) {
          char buffer[64];
          std::snprintf(buffer, sizeof(buffer), "%.6f", value);
          (*fields)[key] = buffer;
        }
      }
    } while (Consume(','));
    return Consume('}') || Fail("expected }");
  }
};

uint64_t FieldU64(const std::map<std::string, std::string>& fields, const std::string& key) {
  auto it = fields.find(key);
  return it == fields.end() ? 0 : static_cast<uint64_t>(std::strtod(it->second.c_str(), nullptr));
}

double FieldF64(const std::map<std::string, std::string>& fields, const std::string& key) {
  auto it = fields.find(key);
  return it == fields.end() ? 0.0 : std::strtod(it->second.c_str(), nullptr);
}

std::string FieldStr(const std::map<std::string, std::string>& fields, const std::string& key) {
  auto it = fields.find(key);
  return it == fields.end() ? std::string() : it->second;
}

}  // namespace

Result<std::vector<ParsedTraceEvent>> ParseChromeTrace(std::string_view json) {
  JsonParser parser{json, 0, {}};
  if (!parser.Consume('{')) {
    return Err(ErrorCode::kParseError, "trace JSON: expected top-level object");
  }
  std::vector<ParsedTraceEvent> events;
  bool saw_trace_events = false;
  if (!parser.Consume('}')) {
    do {
      std::string key;
      if (!parser.ParseString(&key)) {
        return Err(ErrorCode::kParseError, StrCat("trace JSON: ", parser.error));
      }
      if (!parser.Consume(':')) {
        return Err(ErrorCode::kParseError, "trace JSON: expected ':'");
      }
      if (key == "traceEvents") {
        saw_trace_events = true;
        if (!parser.Consume('[')) {
          return Err(ErrorCode::kParseError, "trace JSON: traceEvents must be an array");
        }
        if (!parser.Consume(']')) {
          do {
            std::map<std::string, std::string> fields;
            if (!parser.ParseFlatObject(&fields)) {
              return Err(ErrorCode::kParseError, StrCat("trace JSON: ", parser.error));
            }
            ParsedTraceEvent event;
            event.name = FieldStr(fields, "name");
            event.cat = FieldStr(fields, "cat");
            event.ph = FieldStr(fields, "ph");
            event.ts_us = FieldF64(fields, "ts");
            event.dur_us = FieldF64(fields, "dur");
            event.tid = FieldU64(fields, "tid");
            event.detail = FieldStr(fields, "detail");
            event.sim_user = FieldU64(fields, "sim_user");
            event.sim_sys = FieldU64(fields, "sim_sys");
            if (event.name.empty() || event.ph.empty()) {
              return Err(ErrorCode::kParseError,
                         "trace JSON: event missing required name/ph fields");
            }
            events.push_back(std::move(event));
          } while (parser.Consume(','));
          if (!parser.Consume(']')) {
            return Err(ErrorCode::kParseError, "trace JSON: expected ']'");
          }
        }
      } else {
        if (!parser.SkipValue()) {
          return Err(ErrorCode::kParseError, StrCat("trace JSON: ", parser.error));
        }
      }
    } while (parser.Consume(','));
    if (!parser.Consume('}')) {
      return Err(ErrorCode::kParseError, "trace JSON: expected '}'");
    }
  }
  if (!saw_trace_events) {
    return Err(ErrorCode::kParseError, "trace JSON: no traceEvents array");
  }
  return events;
}

// --- CycleProfiler ----------------------------------------------------------

std::atomic<bool> CycleProfiler::enabled_{false};
std::atomic<uint64_t> CycleProfiler::mask_{63};

namespace {

constexpr size_t kProfilerCapacity = 1 << 16;
std::atomic<uint64_t> g_profiler_head{0};
std::atomic<uint64_t> g_profiler_slots[kProfilerCapacity];

}  // namespace

void CycleProfiler::Start(uint64_t period) {
  if (period < 1) {
    period = 1;
  }
  // Round down to a power of two so the hot-path check is a mask.
  uint64_t pow2 = 1;
  while (pow2 * 2 <= period) {
    pow2 *= 2;
  }
  mask_.store(pow2 - 1, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void CycleProfiler::Stop() { enabled_.store(false, std::memory_order_relaxed); }

void CycleProfiler::Clear() {
  g_profiler_head.store(0, std::memory_order_relaxed);
}

void CycleProfiler::RecordSample(uint32_t task_id, uint32_t pc) {
  uint64_t index = g_profiler_head.fetch_add(1, std::memory_order_relaxed);
  uint64_t packed = (static_cast<uint64_t>(task_id) << 32) | static_cast<uint64_t>(pc);
  g_profiler_slots[index % kProfilerCapacity].store(packed, std::memory_order_relaxed);
}

std::vector<CycleProfiler::Sample> CycleProfiler::Samples() {
  uint64_t head = g_profiler_head.load(std::memory_order_relaxed);
  uint64_t begin = head > kProfilerCapacity ? head - kProfilerCapacity : 0;
  std::vector<Sample> samples;
  samples.reserve(head - begin);
  for (uint64_t index = begin; index < head; ++index) {
    uint64_t packed = g_profiler_slots[index % kProfilerCapacity].load(std::memory_order_relaxed);
    Sample sample;
    sample.task_id = static_cast<uint32_t>(packed >> 32);
    sample.pc = static_cast<uint32_t>(packed & 0xFFFFFFFF);
    samples.push_back(sample);
  }
  return samples;
}

}  // namespace omos
