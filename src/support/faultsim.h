// Deterministic fault injection for the simulator.
//
// Production code marks *fault sites* — named points where an I/O, transport
// or storage failure can be simulated — by calling FaultSim::Trip("site").
// With no plan installed every Trip is free and returns false, so the sites
// cost nothing on the normal path. Tests (and the robustness sweeps) install
// a FaultPlan arming specific sites with deterministic triggers: fire on the
// nth hit, on every kth hit, or with a seeded pseudo-random probability.
// The same plan always yields the same fault schedule, so every failure a
// sweep finds is replayable from its seed.
//
// Site names wired into the tree (see docs/robustness.md):
//   fs.read        SimFs::Lookup fails with kIoError
//   fs.write       SimFs::TryWriteFile / the unsynced write paths fail with
//                  kIoError
//   fs.fsync       SimFs::Fsync fails with kIoError (content stays volatile)
//   fs.rename      SimFs::Rename fails with kIoError before any mutation
//   pipe.drop      WriteFrame drops the whole frame (client sees kTimeout)
//   pipe.truncate  WriteFrame writes only half the payload
//   pipe.bitflip   WriteFrame flips a bit in the written payload
//   pipe.oversize  WriteFrame writes an absurd length header
//   port.drop      PortTransport loses the message (kTimeout)
//   ring.corrupt   RingTransport flips a byte in a just-published slot
//                  (reader sees kCorrupted; ring resets)
//   ring.stall     RingTransport's peer never takes the handoff (kTimeout
//                  after a bounded simulated spin; slots reclaimed)
//   cache.bitrot   ImageCache::Get corrupts a stored image byte
//   vm.fault       AddressSpace::HandleFault fails mid-resolution (demand-
//                  zero fill or CoW break) with kIoError, before any state
//                  is mutated — faulted pages stay absent/shared
//   store.crash    ImageStore kills the "process" between journal steps:
//                  the store fails the operation, enters a sticky crashed
//                  state (nothing further is written), and the test models
//                  the power loss with SimFs::DropUnsynced before reopening
//   upgrade.link       RunUpgradeLink dies before the new version links;
//                      the upgrade aborts, no task state was touched
//   upgrade.repoint    RunUpgradeRepoint dies before any runtime slot is
//                      rewritten; the upgrade aborts consistently
//   upgrade.transfer   a safepoint frame transfer is killed before its
//                      planned rewrites apply: the task defers and retries
//                      at a later safepoint (never a torn frame)
//   upgrade.reclaim    RunUpgradeReclaim dies before the redefinition; the
//                      phase retreats to draining and DrainUpgrade retries
#ifndef OMOS_SRC_SUPPORT_FAULTSIM_H_
#define OMOS_SRC_SUPPORT_FAULTSIM_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace omos {

// When an armed site fires. Triggers combine with OR; hit counts are 1-based
// and per-site.
struct FaultSpec {
  uint64_t nth = 0;          // fire exactly on hit `nth` (0 = off)
  uint64_t every = 0;        // fire on every hit divisible by `every` (0 = off)
  double probability = 0.0;  // per-hit chance, deterministic from `seed`
  uint64_t seed = 0;
  int max_fires = -1;        // stop firing after this many (-1 = unlimited)
  uint32_t payload = 0;      // site-specific knob (e.g. which byte to corrupt)

  static FaultSpec Nth(uint64_t n) {
    FaultSpec spec;
    spec.nth = n;
    return spec;
  }
  static FaultSpec Every(uint64_t e) {
    FaultSpec spec;
    spec.every = e;
    return spec;
  }
  static FaultSpec Prob(double p, uint64_t seed) {
    FaultSpec spec;
    spec.probability = p;
    spec.seed = seed;
    return spec;
  }
  FaultSpec& WithPayload(uint32_t value) {
    payload = value;
    return *this;
  }
  FaultSpec& WithMaxFires(int n) {
    max_fires = n;
    return *this;
  }
};

// A set of armed sites. Install via FaultSim::Install or ScopedFaultPlan.
class FaultPlan {
 public:
  FaultPlan& Arm(std::string site, FaultSpec spec) {
    sites_.insert_or_assign(std::move(site), spec);
    return *this;
  }
  bool empty() const { return sites_.empty(); }
  const std::map<std::string, FaultSpec, std::less<>>& sites() const { return sites_; }

 private:
  std::map<std::string, FaultSpec, std::less<>> sites_;
};

// Process-global fault controller. Thread-safe: the unarmed fast path is
// one relaxed atomic load; armed state is mutex-guarded. Counters stay
// exact under concurrent trips, but nth/every schedules are only
// deterministic when one thread trips the site — and Install/Reset assume
// no trips are in flight (single-writer; quiesce worker threads first).
// See the SimState comment in faultsim.cc.
class FaultSim {
 public:
  // Replace the active plan and zero all counters.
  static void Install(FaultPlan plan);
  // Remove the plan and zero all counters (every Trip returns false again).
  static void Reset();

  // Record a hit at `site`; true if the site is armed and its trigger fires.
  // On fire, `*payload_out` (if non-null) receives the spec's payload knob.
  static bool Trip(std::string_view site, uint32_t* payload_out = nullptr);

  // True if the active plan arms `site` at all, whether or not its trigger
  // would fire now. Does not count as a hit. Lets amortized checks (e.g. the
  // image cache's lazy verification) go exhaustive while a test or sweep has
  // the site under fault injection.
  static bool Armed(std::string_view site);

  // Counters for armed sites (0 for unarmed/unknown sites).
  static uint64_t Hits(std::string_view site);
  static uint64_t Fires(std::string_view site);
  // Total fires across all sites since the last Install/Reset.
  static uint64_t TotalFires();
  // (site, fires) for every armed site — the metrics-registry view.
  static std::vector<std::pair<std::string, uint64_t>> FireCounts();
};

// RAII plan installer for tests: installs on construction, resets on exit.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan plan) { FaultSim::Install(std::move(plan)); }
  ~ScopedFaultPlan() { FaultSim::Reset(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace omos

#endif  // OMOS_SRC_SUPPORT_FAULTSIM_H_
