#include "src/support/error.h"

namespace omos {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kInvalidArgument:
      return "invalid-argument";
    case ErrorCode::kNotFound:
      return "not-found";
    case ErrorCode::kAlreadyExists:
      return "already-exists";
    case ErrorCode::kOutOfRange:
      return "out-of-range";
    case ErrorCode::kParseError:
      return "parse-error";
    case ErrorCode::kDuplicateSymbol:
      return "duplicate-symbol";
    case ErrorCode::kUnresolvedSymbol:
      return "unresolved-symbol";
    case ErrorCode::kRelocationError:
      return "relocation-error";
    case ErrorCode::kConstraintConflict:
      return "constraint-conflict";
    case ErrorCode::kExecFault:
      return "exec-fault";
    case ErrorCode::kIoError:
      return "io-error";
    case ErrorCode::kProtocolError:
      return "protocol-error";
    case ErrorCode::kTimeout:
      return "timeout";
    case ErrorCode::kUnavailable:
      return "unavailable";
    case ErrorCode::kCorrupted:
      return "corrupted";
    case ErrorCode::kUnsupported:
      return "unsupported";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Error::ToString() const {
  std::string out(ErrorCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace omos
