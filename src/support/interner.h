// Process-wide symbol interner: string ⇄ dense u32 id.
//
// Symbol names flow through the linker thousands of times per link — as
// object-file symbol-table keys, relocation targets, symbol-space exports
// and references, and stub/GOT lookups. Interning each distinct name once
// turns all of those into u32 comparisons and flat-table probes
// (src/support/flat_map.h), following the identifier-based resolution
// tables of Zakaria et al. (PAPERS.md, "Symbol Resolution MatRs").
//
// Ids are dense, never recycled, and stable for the process lifetime, as
// are the string_views Name() returns (names are deque-backed). The table
// only grows; distinct symbol names number in the thousands, so this is by
// design — do not intern unbounded runtime data.
#ifndef OMOS_SRC_SUPPORT_INTERNER_H_
#define OMOS_SRC_SUPPORT_INTERNER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace omos {

using SymId = uint32_t;
inline constexpr SymId kNoSymId = 0xFFFFFFFFu;

class SymbolInterner {
 public:
  static SymbolInterner& Global();

  // Id for `name`, allocating one on first sight.
  SymId Intern(std::string_view name);
  // Id for `name`, or kNoSymId if it has never been interned. A name no one
  // ever interned cannot key any table, so lookups can fail fast without
  // growing the pool.
  SymId Find(std::string_view name) const;
  // The name behind `id`; valid for the process lifetime.
  std::string_view Name(SymId id) const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::deque<std::string> names_;                       // id -> name, stable storage
  std::unordered_map<std::string_view, SymId> index_;   // views into names_
};

}  // namespace omos

#endif  // OMOS_SRC_SUPPORT_INTERNER_H_
