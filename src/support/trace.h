// omtrace tracing: per-thread lock-free span/event ring buffers with a
// global collector, plus a cycle-sampling profiler for the SimISA
// interpreter.
//
// Design:
//  - Compiled in, runtime-toggled. The disabled fast path is one relaxed
//    atomic load (TraceSpan constructor checks once and stays disarmed).
//  - Each thread emits into its own fixed-capacity ring (kTraceRingCapacity
//    slots); overflow overwrites the oldest slots, so a snapshot always
//    holds the newest-N events per thread.
//  - Every slot word is a std::atomic<uint64_t> written with relaxed stores
//    and guarded by a per-slot sequence word (seqlock): the writer never
//    blocks and a concurrent reader discards torn slots. This is data-race
//    free under TSan without any lock on the emit path.
//  - Rings are owned by a global registry and never freed; when a thread
//    exits its ring is parked on a free list (events retained) and may be
//    reused by a later thread. Each event carries the emitting thread's
//    small dense tid, so reuse cannot misattribute.
//  - Timestamps are raw TSC ticks on x86_64 (steady_clock elsewhere),
//    converted to nanoseconds at export time via two-point calibration.
//
// Events carry wall time AND simulated cycles: a span can be annotated with
// the CostModel user/sys cycles attributed to the work it covers, so a
// Chrome trace shows both clocks side by side.
#ifndef OMOS_SRC_SUPPORT_TRACE_H_
#define OMOS_SRC_SUPPORT_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/result.h"

namespace omos {

// Slots per per-thread ring. Exposed for the overflow test.
inline constexpr size_t kTraceRingCapacity = 2048;
// Inline detail payload per event (truncated beyond this).
inline constexpr size_t kTraceDetailBytes = 64;

namespace trace_internal {
extern std::atomic<bool> g_trace_enabled;
void EmitSlot(const char* name, char phase, uint64_t start_ticks, uint64_t dur_ticks,
              uint64_t sim_user, uint64_t sim_sys, const char* detail, size_t detail_len);
uint64_t ClockTicks();
}  // namespace trace_internal

// --- Runtime toggle -------------------------------------------------------

inline bool TraceEnabled() {
  return trace_internal::g_trace_enabled.load(std::memory_order_relaxed);
}
void TraceSetEnabled(bool enabled);

// --- Emission -------------------------------------------------------------

// RAII span: records a complete ("X") event on destruction covering the
// scope's duration. `name` MUST be a string literal (or otherwise outlive
// the process) — the ring stores the pointer, not a copy.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : name_(name), armed_(TraceEnabled()) {
    if (armed_) {
      start_ticks_ = trace_internal::ClockTicks();
    }
  }
  TraceSpan(const char* name, std::string_view detail) : TraceSpan(name) {
    if (armed_) {
      SetDetail(detail);
    }
  }
  ~TraceSpan() {
    if (armed_) {
      Finish();
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool armed() const { return armed_; }

  // Attach a short free-form annotation (truncated to kTraceDetailBytes).
  void SetDetail(std::string_view detail) {
    if (!armed_) {
      return;
    }
    detail_len_ = detail.size() < kTraceDetailBytes ? detail.size() : kTraceDetailBytes;
    for (size_t i = 0; i < detail_len_; ++i) {
      detail_[i] = detail[i];
    }
  }

  // Attribute simulated cycles (CostModel) to this span.
  void AddSimCycles(uint64_t user, uint64_t sys) {
    sim_user_ += user;
    sim_sys_ += sys;
  }

  // Drop the span: nothing is emitted at scope exit. For hot paths where
  // only the slow branch is worth a ring slot (e.g. a cache hit that passes
  // its probe verify disarms the cache.get span).
  void Cancel() { armed_ = false; }

 private:
  void Finish();

  const char* name_;
  uint64_t start_ticks_ = 0;
  uint64_t sim_user_ = 0;
  uint64_t sim_sys_ = 0;
  char detail_[kTraceDetailBytes];
  size_t detail_len_ = 0;
  bool armed_;
};

// Zero-duration instant ("i") event. `name` must be a string literal.
void TraceInstant(const char* name);
void TraceInstant(const char* name, std::string_view detail);
void TraceInstant(const char* name, std::string_view detail, uint64_t sim_user,
                  uint64_t sim_sys);

// --- Collection / export --------------------------------------------------

struct TraceEvent {
  const char* name = "";
  char phase = 'X';  // 'X' complete span, 'i' instant
  uint32_t tid = 0;
  uint64_t ts_ns = 0;
  uint64_t dur_ns = 0;
  uint64_t sim_user = 0;
  uint64_t sim_sys = 0;
  std::string detail;
};

// Snapshot all rings (newest-N per thread), sorted by timestamp. Safe to
// call while other threads are emitting; torn slots are skipped.
std::vector<TraceEvent> TraceSnapshot();

// Drop all buffered events (threads keep their rings; only the visible
// window is reset).
void TraceClear();

// Chrome trace_event JSON ({"traceEvents":[...]}); open in chrome://tracing
// or https://ui.perfetto.dev. Span category is the name prefix before the
// first '.'; args carry detail and simulated cycles.
std::string TraceToChromeJson();

// Human-readable aggregate: per-span count/total/avg wall ns + simulated
// cycles, per-instant counts.
std::string TraceTextSummary();

// Minimal Chrome-trace JSON reader used by the round-trip test and the
// `ofe report` command. Parses only the subset TraceToChromeJson emits.
struct ParsedTraceEvent {
  std::string name;
  std::string cat;
  std::string ph;
  double ts_us = 0;
  double dur_us = 0;
  uint64_t tid = 0;
  std::string detail;
  uint64_t sim_user = 0;
  uint64_t sim_sys = 0;
};
Result<std::vector<ParsedTraceEvent>> ParseChromeTrace(std::string_view json);

// --- SimISA cycle-sampling profiler ----------------------------------------
//
// When enabled, the interpreter records (task_id, pc) every `period`
// retired instructions into a global lock-free ring. The server resolves
// sampled PCs to symbols through the linked image's symbol index
// (OmosServer::ProfileForTask).
class CycleProfiler {
 public:
  struct Sample {
    uint32_t task_id = 0;
    uint32_t pc = 0;
  };

  // `period` is rounded down to a power of two (minimum 1).
  static void Start(uint64_t period = 64);
  static void Stop();
  static void Clear();

  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }
  static uint64_t mask() { return mask_.load(std::memory_order_relaxed); }

  // Hot-path hook; call only when enabled().
  static void RecordSample(uint32_t task_id, uint32_t pc);

  // Newest samples (up to the ring capacity), oldest first.
  static std::vector<Sample> Samples();

 private:
  static std::atomic<bool> enabled_;
  static std::atomic<uint64_t> mask_;
};

}  // namespace omos

#endif  // OMOS_SRC_SUPPORT_TRACE_H_
