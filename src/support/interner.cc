#include "src/support/interner.h"

namespace omos {

SymbolInterner& SymbolInterner::Global() {
  // Leaked intentionally: interned ids and name views must outlive any
  // static-destruction-order games.
  static SymbolInterner* interner = new SymbolInterner();
  return *interner;
}

SymId SymbolInterner::Intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  if (it != index_.end()) {
    return it->second;
  }
  SymId id = static_cast<SymId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::string_view(names_.back()), id);
  return id;
}

SymId SymbolInterner::Find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  return it == index_.end() ? kNoSymId : it->second;
}

std::string_view SymbolInterner::Name(SymId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_[id];
}

size_t SymbolInterner::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_.size();
}

}  // namespace omos
