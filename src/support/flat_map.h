// Open-addressing hash map keyed by small unsigned integers (interned
// symbol ids, packed reference keys).
//
// The linker's symbol spaces were std::map<std::string, …>: every lookup
// re-hashed/compared a string and every copy re-allocated one node per
// symbol. With names interned to dense u32 ids (src/support/interner.h) the
// tables become flat arrays of POD-keyed slots — O(1) lookups with no
// allocation, and copying a table is a single vector copy. Iteration order
// is unspecified (it depends on insertion history), so callers that need
// deterministic output sort by interned name first.
#ifndef OMOS_SRC_SUPPORT_FLAT_MAP_H_
#define OMOS_SRC_SUPPORT_FLAT_MAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace omos {

template <typename K, typename V>
class FlatMap {
  static constexpr uint8_t kEmpty = 0;
  static constexpr uint8_t kFull = 1;
  static constexpr uint8_t kTombstone = 2;

  struct Slot {
    std::pair<K, V> kv{};
    uint8_t state = kEmpty;
  };

 public:
  using value_type = std::pair<K, V>;

  template <typename SlotT, typename ValueT>
  class Iter {
   public:
    Iter() = default;
    Iter(SlotT* slot, SlotT* end) : slot_(slot), end_(end) { SkipHoles(); }
    ValueT& operator*() const { return slot_->kv; }
    ValueT* operator->() const { return &slot_->kv; }
    Iter& operator++() {
      ++slot_;
      SkipHoles();
      return *this;
    }
    bool operator==(const Iter& other) const { return slot_ == other.slot_; }

   private:
    friend class FlatMap;
    void SkipHoles() {
      while (slot_ != end_ && slot_->state != kFull) {
        ++slot_;
      }
    }
    SlotT* slot_ = nullptr;
    SlotT* end_ = nullptr;
  };

  using iterator = Iter<Slot, value_type>;
  using const_iterator = Iter<const Slot, const value_type>;

  FlatMap() = default;

  iterator begin() { return iterator(slots_.data(), slots_.data() + slots_.size()); }
  iterator end() { return iterator(slots_.data() + slots_.size(), slots_.data() + slots_.size()); }
  const_iterator begin() const {
    return const_iterator(slots_.data(), slots_.data() + slots_.size());
  }
  const_iterator end() const {
    return const_iterator(slots_.data() + slots_.size(), slots_.data() + slots_.size());
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    slots_.clear();
    size_ = 0;
    used_ = 0;
  }

  // Ensure capacity for `n` entries without rehashing mid-insert.
  void reserve(size_t n) {
    size_t want = NormalizeCapacity(n);
    if (want > slots_.size()) {
      Rehash(want);
    }
  }

  const_iterator find(K key) const {
    size_t index = FindIndex(key);
    return index == kNpos
               ? end()
               : const_iterator(slots_.data() + index, slots_.data() + slots_.size());
  }
  iterator find(K key) {
    size_t index = FindIndex(key);
    return index == kNpos ? end()
                          : iterator(slots_.data() + index, slots_.data() + slots_.size());
  }
  bool contains(K key) const { return FindIndex(key) != kNpos; }
  size_t count(K key) const { return contains(key) ? 1 : 0; }

  V& at(K key) {
    size_t index = FindIndex(key);
    assert(index != kNpos && "FlatMap::at: missing key");
    return slots_[index].kv.second;
  }
  const V& at(K key) const {
    size_t index = FindIndex(key);
    assert(index != kNpos && "FlatMap::at: missing key");
    return slots_[index].kv.second;
  }

  V& operator[](K key) { return try_emplace(key).first->second; }

  // Insert `key` with a default (or given) value if absent; returns the slot
  // and whether an insert happened (existing entries are left untouched).
  std::pair<iterator, bool> try_emplace(K key, V value = V()) {
    GrowIfNeeded();
    auto [index, inserted] = InsertIndex(key);
    if (inserted) {
      slots_[index].kv.second = std::move(value);
    }
    return {iterator(slots_.data() + index, slots_.data() + slots_.size()), inserted};
  }

  std::pair<iterator, bool> insert_or_assign(K key, V value) {
    GrowIfNeeded();
    auto [index, inserted] = InsertIndex(key);
    slots_[index].kv.second = std::move(value);
    return {iterator(slots_.data() + index, slots_.data() + slots_.size()), inserted};
  }

  bool erase(K key) {
    size_t index = FindIndex(key);
    if (index == kNpos) {
      return false;
    }
    slots_[index].state = kTombstone;
    slots_[index].kv = value_type{};
    --size_;
    return true;
  }

 private:
  static constexpr size_t kNpos = ~size_t{0};

  // Multiplicative mix (splitmix64 finalizer) so sequential ids spread.
  static size_t HashKey(K key) {
    uint64_t x = static_cast<uint64_t>(key);
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return static_cast<size_t>(x ^ (x >> 31));
  }

  static size_t NormalizeCapacity(size_t n) {
    size_t cap = 16;
    while (cap * 3 < n * 4 + 4) {  // keep load factor under 3/4
      cap *= 2;
    }
    return cap;
  }

  size_t FindIndex(K key) const {
    if (slots_.empty()) {
      return kNpos;
    }
    size_t mask = slots_.size() - 1;
    size_t index = HashKey(key) & mask;
    while (true) {
      const Slot& slot = slots_[index];
      if (slot.state == kEmpty) {
        return kNpos;
      }
      if (slot.state == kFull && slot.kv.first == key) {
        return index;
      }
      index = (index + 1) & mask;
    }
  }

  // Slot for `key`, inserting (possibly into a tombstone) if absent.
  std::pair<size_t, bool> InsertIndex(K key) {
    size_t mask = slots_.size() - 1;
    size_t index = HashKey(key) & mask;
    size_t grave = kNpos;
    while (true) {
      Slot& slot = slots_[index];
      if (slot.state == kEmpty) {
        size_t target = grave != kNpos ? grave : index;
        if (grave == kNpos) {
          ++used_;
        }
        slots_[target].state = kFull;
        slots_[target].kv.first = key;
        ++size_;
        return {target, true};
      }
      if (slot.state == kTombstone) {
        if (grave == kNpos) {
          grave = index;
        }
      } else if (slot.kv.first == key) {
        return {index, false};
      }
      index = (index + 1) & mask;
    }
  }

  void GrowIfNeeded() {
    if (slots_.empty()) {
      Rehash(16);
    } else if ((used_ + 1) * 4 > slots_.size() * 3) {
      // Grow on live entries; a tombstone-heavy table rehashes in place.
      Rehash(NormalizeCapacity(size_ + 1));
    }
  }

  void Rehash(size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    size_ = 0;
    used_ = 0;
    for (Slot& slot : old) {
      if (slot.state == kFull) {
        auto [index, inserted] = InsertIndex(slot.kv.first);
        (void)inserted;
        slots_[index].kv.second = std::move(slot.kv.second);
      }
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;  // live entries
  size_t used_ = 0;  // live entries + tombstones (probe-chain occupancy)
};

}  // namespace omos

#endif  // OMOS_SRC_SUPPORT_FLAT_MAP_H_
