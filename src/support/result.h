// Result<T>: value-or-Error, the return type of every fallible OMOS API.
//
// Usage:
//   Result<ObjectFile> r = DecodeObject(bytes);
//   if (!r.ok()) return r.error();
//   ObjectFile obj = std::move(r).value();
//
// The OMOS_TRY(var, expr) macro unwraps or propagates:
//   OMOS_TRY(auto obj, DecodeObject(bytes));
#ifndef OMOS_SRC_SUPPORT_RESULT_H_
#define OMOS_SRC_SUPPORT_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>
#include <variant>

#include "src/support/error.h"

namespace omos {

template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit from value and from Error so `return value;` / `return Err(...)` both work.
  Result(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  Result(Error error) : state_(std::in_place_index<1>, std::move(error)) {}

  bool ok() const { return state_.index() == 0; }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    CheckOk();
    return std::get<0>(state_);
  }
  T& value() & {
    CheckOk();
    return std::get<0>(state_);
  }
  T&& value() && {
    CheckOk();
    return std::get<0>(std::move(state_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const {
    CheckErr();
    return std::get<1>(state_);
  }

  // value() if ok, otherwise `fallback`.
  T value_or(T fallback) const& { return ok() ? std::get<0>(state_) : std::move(fallback); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::abort();  // Programming error: value() on failed Result.
    }
  }
  void CheckErr() const {
    if (ok()) {
      std::abort();  // Programming error: error() on successful Result.
    }
  }

  std::variant<T, Error> state_;
};

// Result<void>: success carries no value.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)) {}

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    if (ok()) {
      std::abort();
    }
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

// Convenience constructors: return Err(ErrorCode::kNotFound, "no such meta-object");
inline Error Err(ErrorCode code, std::string message) { return Error(code, std::move(message)); }

inline Result<void> OkResult() { return Result<void>(); }

#define OMOS_CONCAT_INNER_(a, b) a##b
#define OMOS_CONCAT_(a, b) OMOS_CONCAT_INNER_(a, b)

// Unwrap `expr` into `decl`, or propagate its error to the caller.
#define OMOS_TRY(decl, expr)                            \
  auto OMOS_CONCAT_(omos_try_, __LINE__) = (expr);      \
  if (!OMOS_CONCAT_(omos_try_, __LINE__).ok()) {        \
    return OMOS_CONCAT_(omos_try_, __LINE__).error();   \
  }                                                     \
  decl = std::move(OMOS_CONCAT_(omos_try_, __LINE__)).value()

// Propagate an error from a Result<void> (or any Result whose value is unused).
#define OMOS_TRY_VOID(expr)                             \
  do {                                                  \
    auto omos_try_void_ = (expr);                       \
    if (!omos_try_void_.ok()) {                         \
      return omos_try_void_.error();                    \
    }                                                   \
  } while (false)

}  // namespace omos

#endif  // OMOS_SRC_SUPPORT_RESULT_H_
