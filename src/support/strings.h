// Small string utilities shared by the assembler, blueprint parser and linker.
#ifndef OMOS_SRC_SUPPORT_STRINGS_H_
#define OMOS_SRC_SUPPORT_STRINGS_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace omos {

// Split `text` on `sep`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view text, char sep);

// Strip ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Variadic streaming concatenation: StrCat("sym ", name, " at ", addr).
template <typename... Args>
std::string StrCat(const Args&... args) {
  if constexpr (sizeof...(args) == 0) {
    return std::string();
  } else {
    std::ostringstream out;
    (out << ... << args);
    return out.str();
  }
}

// Render `value` as 0x%08x.
std::string Hex32(uint32_t value);

// FNV-1a 64-bit hash; used for cache keys and generated hash tables.
// Byte-at-a-time and stable: anything serialized (snapshot check lines,
// golden fingerprints) must keep using this.
uint64_t Fnv1a(std::string_view data);
uint64_t Fnv1aBytes(const void* data, size_t size);

// Fast word-at-a-time 64-bit hash for bulk, in-memory integrity sums (the
// image cache's page checksums). Several times faster than Fnv1aBytes but
// NOT part of any serialized format — its value may change across versions.
uint64_t HashBytes(const void* data, size_t size, uint64_t seed = 0);

// True if `name` matches POSIX-ish extended regex `pattern` (full or partial
// per std::regex_search semantics — the paper's module operations take
// regular expressions as symbol selectors, e.g. "^_malloc$").
bool RegexMatch(std::string_view name, std::string_view pattern);

}  // namespace omos

#endif  // OMOS_SRC_SUPPORT_STRINGS_H_
