#include "src/support/metrics.h"

#include <algorithm>

#include "src/support/strings.h"

namespace omos {

HistogramSnapshot HistogramSnapshot::Since(const HistogramSnapshot& earlier) const {
  HistogramSnapshot delta;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    // Buckets only grow; a concurrent Record between the two snapshots can
    // only make the delta conservative, never negative.
    delta.buckets[i] = buckets[i] >= earlier.buckets[i] ? buckets[i] - earlier.buckets[i] : 0;
    delta.count += delta.buckets[i];
  }
  return delta;
}

uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) {
    return 0;
  }
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count) + 0.5);
  rank = std::max<uint64_t>(1, std::min(rank, count));
  uint64_t seen = 0;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      return i == 0 ? 0 : (uint64_t{1} << i) - 1;
    }
  }
  return (uint64_t{1} << (kHistogramBuckets - 1));
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (int i = 0; i < kBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  return snap;
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::Percentile(double p) const {
  uint64_t counts[kBuckets];
  uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) {
    return 0;
  }
  // Rank of the p-th percentile, 1-based; clamp into [1, total].
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(total) + 0.5);
  rank = std::max<uint64_t>(1, std::min(rank, total));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) {
      // Upper boundary of bucket i: values v have bit_width(v) == i,
      // i.e. v < 2^i (bucket 0 holds only v == 0).
      return i == 0 ? 0 : (uint64_t{1} << i) - 1;
    }
  }
  return (uint64_t{1} << (kBuckets - 1));
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked: outlives all users
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return it->second.get();
}

uint64_t MetricsRegistry::AddSource(SourceFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t token = next_source_token_++;
  sources_[token] = std::move(fn);
  return token;
}

void MetricsRegistry::RemoveSource(uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  sources_.erase(token);
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::Snapshot() const {
  std::vector<std::pair<std::string, uint64_t>> raw;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, counter] : counters_) {
      raw.emplace_back(name, counter->value());
    }
    for (const auto& [name, hist] : histograms_) {
      raw.emplace_back(name + ".count", hist->count());
      raw.emplace_back(name + ".sum", hist->sum());
      raw.emplace_back(name + ".p50", hist->Percentile(50));
      raw.emplace_back(name + ".p90", hist->Percentile(90));
      raw.emplace_back(name + ".p99", hist->Percentile(99));
    }
    for (const auto& [token, source] : sources_) {
      (void)token;
      source(raw);
    }
  }
  // Sum duplicates (e.g. two ImageCache instances both reporting cache.hits).
  std::sort(raw.begin(), raw.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<std::string, uint64_t>> merged;
  for (auto& entry : raw) {
    if (!merged.empty() && merged.back().first == entry.first) {
      merged.back().second += entry.second;
    } else {
      merged.push_back(std::move(entry));
    }
  }
  return merged;
}

std::string MetricsRegistry::TextSummary() const {
  // Histogram names get "hist" lines; everything else (counters + sources)
  // gets "counter" lines. Build the hist set first so snapshot expansions of
  // a histogram are folded into its one line.
  std::vector<std::pair<std::string, uint64_t>> snapshot = Snapshot();
  std::vector<std::string> hist_names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, hist] : histograms_) {
      (void)hist;
      hist_names.push_back(name);
    }
  }
  auto is_hist_expansion = [&](const std::string& name) {
    for (const std::string& hist : hist_names) {
      if (name.size() > hist.size() && name.compare(0, hist.size(), hist) == 0 &&
          name[hist.size()] == '.') {
        std::string_view suffix(name.c_str() + hist.size() + 1);
        if (suffix == "count" || suffix == "sum" || suffix == "p50" || suffix == "p90" ||
            suffix == "p99") {
          return true;
        }
      }
    }
    return false;
  };
  auto lookup = [&](const std::string& name) -> uint64_t {
    for (const auto& [key, value] : snapshot) {
      if (key == name) {
        return value;
      }
    }
    return 0;
  };

  std::vector<std::string> lines;
  for (const auto& [name, value] : snapshot) {
    if (!is_hist_expansion(name)) {
      lines.push_back(StrCat("counter ", name, " ", std::to_string(value)));
    }
  }
  for (const std::string& name : hist_names) {
    lines.push_back(StrCat("hist ", name, " count=", std::to_string(lookup(name + ".count")),
                           " sum=", std::to_string(lookup(name + ".sum")),
                           " p50=", std::to_string(lookup(name + ".p50")),
                           " p90=", std::to_string(lookup(name + ".p90")),
                           " p99=", std::to_string(lookup(name + ".p99"))));
  }
  std::sort(lines.begin(), lines.end(), [](const std::string& a, const std::string& b) {
    // Sort by metric name (second token), so counters and hists interleave.
    return a.substr(a.find(' ') + 1) < b.substr(b.find(' ') + 1);
  });
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace omos
