// Access to the process-wide compiled-regex cache behind RegexMatch
// (src/support/strings.h). Split into its own header so only the module
// calculus — which matches one pattern against every symbol in a space —
// pays for <regex>.
#ifndef OMOS_SRC_SUPPORT_REGEX_CACHE_H_
#define OMOS_SRC_SUPPORT_REGEX_CACHE_H_

#include <regex>
#include <string_view>

namespace omos {

// Compiled POSIX-extended regex for `pattern`, or nullptr when the pattern
// is invalid (matching an invalid pattern selects nothing, mirroring
// RegexMatch). The pointer stays valid for the process lifetime — the cache
// never evicts — so callers can hoist it out of per-symbol loops.
const std::regex* GetCompiledRegex(std::string_view pattern);

}  // namespace omos

#endif  // OMOS_SRC_SUPPORT_REGEX_CACHE_H_
