#include "src/support/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

#include "src/support/trace.h"

namespace omos {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

// One-time OMOS_LOG environment override: OMOS_LOG=debug|info|warning|error|none.
// Applied lazily on first use so tests and tools get it without boilerplate;
// an explicit SetLogLevel afterwards still wins.
std::once_flag g_env_once;

void ApplyEnvOverride() {
  const char* env = std::getenv("OMOS_LOG");
  if (env == nullptr) {
    return;
  }
  std::string value(env);
  if (value == "debug") {
    g_level.store(LogLevel::kDebug, std::memory_order_relaxed);
  } else if (value == "info") {
    g_level.store(LogLevel::kInfo, std::memory_order_relaxed);
  } else if (value == "warning" || value == "warn") {
    g_level.store(LogLevel::kWarning, std::memory_order_relaxed);
  } else if (value == "error") {
    g_level.store(LogLevel::kError, std::memory_order_relaxed);
  } else if (value == "none") {
    g_level.store(LogLevel::kNone, std::memory_order_relaxed);
  }
}

void EnsureEnvApplied() { std::call_once(g_env_once, ApplyEnvOverride); }

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  EnsureEnvApplied();  // consume the env override so it cannot clobber this later
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  EnsureEnvApplied();
  return g_level.load(std::memory_order_relaxed);
}

void LogMessage(LogLevel level, std::string_view module, std::string_view message) {
  // Log records double as trace instants ("log.<tag>"), so a trace dump
  // interleaves server logs with spans regardless of the stderr level.
  if (TraceEnabled()) {
    switch (level) {
      case LogLevel::kDebug:
        TraceInstant("log.debug", message);
        break;
      case LogLevel::kInfo:
        TraceInstant("log.info", message);
        break;
      case LogLevel::kWarning:
        TraceInstant("log.warning", message);
        break;
      case LogLevel::kError:
        TraceInstant("log.error", message);
        break;
      case LogLevel::kNone:
        break;
    }
  }
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) {
    return;
  }
  std::fprintf(stderr, "[%s %.*s] %.*s\n", LevelTag(level), static_cast<int>(module.size()),
               module.data(), static_cast<int>(message.size()), message.data());
}

}  // namespace omos
