#include "src/support/log.h"

#include <atomic>
#include <cstdio>
#include <string>

namespace omos {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void LogMessage(LogLevel level, std::string_view module, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) {
    return;
  }
  std::fprintf(stderr, "[%s %.*s] %.*s\n", LevelTag(level), static_cast<int>(module.size()),
               module.data(), static_cast<int>(message.size()), message.data());
}

}  // namespace omos
