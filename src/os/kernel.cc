#include "src/os/kernel.h"

#include <cstring>

#include "src/os/cpu.h"
#include "src/support/metrics.h"
#include "src/support/strings.h"
#include "src/support/trace.h"

namespace omos {

Kernel::Kernel(CostModel costs)
    : costs_(costs),
      cow_faults_(MetricsRegistry::Global().GetCounter("vm.cow_faults")),
      demand_zero_fills_(MetricsRegistry::Global().GetCounter("vm.demand_zero_fills")),
      cow_broken_pages_(MetricsRegistry::Global().GetCounter("vm.cow_broken_pages")),
      frames_saved_(MetricsRegistry::Global().GetCounter("vm.frames_saved")) {
  // Eager, not lazy: engine() is called from admin/upgrade/driver threads
  // and must not race on first use.
  engine_ = std::make_unique<ExecEngine>(*this);
}

Task& Kernel::CreateTask(std::string name) {
  TaskId id = next_task_id_++;
  auto task = std::make_unique<Task>(id, std::move(name), phys_);
  Task& ref = *task;
  tasks_.emplace(id, std::move(task));
  ref.BillSys(costs_.exec_base);
  // Route page faults from any access path (interpreter, syscalls, server
  // patching) through the billing/metrics handler.
  ref.space().SetFaultHandler(
      [this, task_ptr = &ref](const PageFaultInfo& info) { return HandleFault(*task_ptr, info); });
  return ref;
}

void Kernel::DestroyTask(TaskId id) {
  engine_->DropTask(id);
  tasks_.erase(id);
}

ExecEngine& Kernel::engine() { return *engine_; }

Task* Kernel::FindTask(TaskId id) {
  auto it = tasks_.find(id);
  return it == tasks_.end() ? nullptr : it->second.get();
}

Result<void> Kernel::SetupStack(Task& task, std::span<const std::string> args) {
  uint32_t base = kStackTop - kStackSize;
  OMOS_TRY_VOID(MapDemandZero(task, base, kStackSize, kProtRead | kProtWrite, "stack"));

  // Write argv strings at the top of the stack, pointers below them.
  uint32_t cursor = kStackTop;
  std::vector<uint32_t> ptrs;
  for (const std::string& arg : args) {
    cursor -= static_cast<uint32_t>(arg.size()) + 1;
    OMOS_TRY_VOID(task.space().WriteBytes(cursor, arg.c_str(), static_cast<uint32_t>(arg.size()) + 1));
    ptrs.push_back(cursor);
  }
  cursor &= ~3u;
  cursor -= static_cast<uint32_t>(ptrs.size()) * 4;
  uint32_t argv = cursor;
  for (size_t i = 0; i < ptrs.size(); ++i) {
    OMOS_TRY_VOID(task.space().Write32(argv + static_cast<uint32_t>(i) * 4, ptrs[i]));
  }
  cursor -= 64;  // red zone below argv
  task.set_reg(0, static_cast<uint32_t>(args.size()));
  task.set_reg(1, argv);
  task.set_reg(kRegSp, cursor);
  return OkResult();
}

Result<void> Kernel::MapShared(Task& task, uint32_t base, const SegmentImage& image, uint8_t prot,
                               std::string name) {
  if (TraceEnabled()) {
    TraceInstant("kernel.map_shared", name, 0, costs_.page_map);
  }
  OMOS_TRY(uint32_t pages, task.space().MapShared(base, image, prot, std::move(name)));
  task.BillSys(costs_.page_map * pages);
  return OkResult();
}

Result<void> Kernel::MapPrivate(Task& task, uint32_t base, uint32_t size,
                                std::span<const uint8_t> init, uint8_t prot, std::string name) {
  if (TraceEnabled()) {
    TraceInstant("kernel.map_private", name, 0, costs_.page_map + costs_.page_copy);
  }
  OMOS_TRY(uint32_t pages, task.space().MapPrivate(base, size, init, prot, std::move(name)));
  task.BillSys((costs_.page_map + costs_.page_copy) * pages);
  return OkResult();
}

Result<void> Kernel::MapCoW(Task& task, uint32_t base, const SegmentImage& image, uint32_t size,
                            uint8_t prot, std::string name) {
  if (TraceEnabled()) {
    TraceInstant("kernel.map_cow", name, 0, costs_.page_map);
  }
  OMOS_TRY(uint32_t pages, task.space().MapCoW(base, image, size, prot, std::move(name)));
  task.BillSys(costs_.page_map * pages);
  // Every page mapped here avoided an eager private-frame copy; the ones
  // that are later written show up in vm.cow_broken_pages / demand_zero_fills.
  frames_saved_->Add(pages);
  return OkResult();
}

Result<void> Kernel::MapDemandZero(Task& task, uint32_t base, uint32_t size, uint8_t prot,
                                   std::string name) {
  OMOS_TRY(uint32_t pages, task.space().MapDemandZero(base, size, prot, std::move(name)));
  task.BillSys(costs_.page_map * pages);
  frames_saved_->Add(pages);
  return OkResult();
}

Result<void> Kernel::HandleFault(Task& task, const PageFaultInfo& info) {
  OMOS_TRY(FaultResolution resolution, task.space().HandleFault(info.addr, info.is_write));
  uint64_t cost = 0;
  const char* kind = nullptr;
  switch (resolution) {
    case FaultResolution::kDemandZeroFill:
      cost = costs_.soft_fault + costs_.zero_fill_page;
      demand_zero_fills_->Add(1);
      kind = "zero_fill";
      break;
    case FaultResolution::kCowCopy:
      cost = costs_.soft_fault + costs_.page_copy;
      cow_faults_->Add(1);
      cow_broken_pages_->Add(1);
      kind = "cow_copy";
      break;
    case FaultResolution::kCowAdopt:
      // Last owner of the frame: no copy, just flip it private.
      cost = costs_.soft_fault;
      cow_faults_->Add(1);
      cow_broken_pages_->Add(1);
      kind = "cow_adopt";
      break;
    case FaultResolution::kAlreadyResolved:
      return OkResult();
  }
  task.BillSys(cost);
  if (TraceEnabled()) {
    TraceInstant("kernel.fault", kind, 0, cost);
  }
  return OkResult();
}

const SegmentImage* Kernel::PageCacheGet(const std::string& key) const {
  auto it = page_cache_.find(key);
  return it == page_cache_.end() ? nullptr : &it->second;
}

Result<const SegmentImage*> Kernel::PageCachePut(std::string key, std::span<const uint8_t> bytes) {
  OMOS_TRY(SegmentImage image, SegmentImage::Create(phys_, bytes));
  auto [it, inserted] = page_cache_.insert_or_assign(std::move(key), std::move(image));
  return &it->second;
}

void Kernel::SetSysHook(uint32_t sysno, SysHook hook) { sys_hooks_[sysno] = std::move(hook); }

void Kernel::SetSafepointHook(SafepointHook hook) { safepoint_hook_ = std::move(hook); }

Result<void> Kernel::RunTask(Task& task, uint64_t max_instructions) {
  // Span annotated with the simulated user/sys cycles this run consumed
  // (delta of the task's accounting across the run).
  TraceSpan trace("kernel.run_task", task.name());
  uint64_t user_before = task.user_cycles();
  uint64_t sys_before = task.sys_cycles();
  struct SimBill {
    TraceSpan& span;
    Task& task;
    uint64_t user_before;
    uint64_t sys_before;
    ~SimBill() {
      span.AddSimCycles(task.user_cycles() - user_before, task.sys_cycles() - sys_before);
    }
  } bill{trace, task, user_before, sys_before};
  uint64_t executed = 0;
  while (task.state() == TaskState::kRunnable) {
    if (executed >= max_instructions) {
      return Err(ErrorCode::kExecFault,
                 StrCat(task.name(), ": exceeded instruction budget ", max_instructions));
    }
    // Safepoint: between instructions the frame is consistent, so a pending
    // live-upgrade may inspect and rewrite it here. One relaxed load when no
    // upgrade is in flight.
    if (task.safepoint_pending() && safepoint_hook_) {
      Result<void> sp = safepoint_hook_(*this, task);
      if (!sp.ok()) {
        task.Fault(sp.error());
        return sp.error();
      }
      if (task.state() != TaskState::kRunnable) {
        break;
      }
    }
    // Block engine, unless a safepoint is still pending (a deferred drain
    // leaves the flag set): then single-step so the hook is re-consulted at
    // every instruction boundary, exactly like the legacy loop.
    if (engine_mode_ == EngineMode::kBlocks && !task.safepoint_pending()) {
      Result<void> run = engine().Run(task, max_instructions, &executed);
      if (!run.ok()) {
        task.Fault(run.error());
        return run.error();
      }
      continue;
    }
    Result<void> step = CpuStep(*this, task);
    if (!step.ok()) {
      task.Fault(step.error());
      return step.error();
    }
    ++executed;
  }
  if (task.state() == TaskState::kFaulted) {
    return task.fault().value();
  }
  return OkResult();
}

Result<void> Kernel::Syscall(Task& task, uint32_t sysno) {
  task.BillSys(costs_.syscall_overhead);
  switch (sysno) {
    case kSysExit:
      task.Exit(static_cast<int>(task.reg(0)));
      return OkResult();
    case kSysWrite:
      return SysWrite(task);
    case kSysRead:
      return SysRead(task);
    case kSysOpen:
      return SysOpen(task);
    case kSysClose:
      task.CloseFd(static_cast<int>(task.reg(0)));
      task.set_reg(0, 0);
      return OkResult();
    case kSysBrk:
      return SysBrk(task);
    case kSysGetdents:
      return SysGetdents(task);
    case kSysStat:
      return SysStat(task);
    case kSysTime:
      task.set_reg(0, static_cast<uint32_t>(task.elapsed_cycles() / 1000));
      return OkResult();
    default: {
      auto it = sys_hooks_.find(sysno);
      if (it != sys_hooks_.end()) {
        return it->second(*this, task);
      }
      return Err(ErrorCode::kExecFault, StrCat(task.name(), ": unknown syscall ", sysno));
    }
  }
}

Result<void> Kernel::SysWrite(Task& task) {
  int fd = static_cast<int>(task.reg(0));
  uint32_t buf = task.reg(1);
  uint32_t len = task.reg(2);
  if (len > 1u << 20) {
    task.set_reg(0, static_cast<uint32_t>(-1));
    return OkResult();
  }
  std::string data(len, '\0');
  OMOS_TRY_VOID(task.space().ReadBytes(buf, data.data(), len));
  task.BillSys(costs_.write_byte * len);
  if (fd == 1 || fd == 2) {
    task.AppendOutput(data);
    task.set_reg(0, len);
    return OkResult();
  }
  // Writing to SimFs files is not needed by the workloads; report error.
  task.set_reg(0, static_cast<uint32_t>(-1));
  return OkResult();
}

Result<void> Kernel::SysRead(Task& task) {
  int fd = static_cast<int>(task.reg(0));
  uint32_t buf = task.reg(1);
  uint32_t len = task.reg(2);
  FdEntry* entry = task.FindFd(fd);
  if (entry == nullptr || entry->is_dir) {
    task.set_reg(0, static_cast<uint32_t>(-1));
    return OkResult();
  }
  auto file = fs_.Lookup(entry->path);
  if (!file.ok()) {
    task.set_reg(0, static_cast<uint32_t>(-1));
    return OkResult();
  }
  const std::vector<uint8_t>& bytes = (*file)->bytes;
  uint32_t avail = entry->offset >= bytes.size()
                       ? 0
                       : static_cast<uint32_t>(bytes.size()) - entry->offset;
  uint32_t n = std::min(len, avail);
  if (n > 0) {
    OMOS_TRY_VOID(task.space().WriteBytes(buf, bytes.data() + entry->offset, n));
    entry->offset += n;
  }
  task.BillSys(costs_.file_read_page * ((n + kPageSize - 1) / kPageSize));
  task.set_reg(0, n);
  return OkResult();
}

Result<void> Kernel::SysOpen(Task& task) {
  OMOS_TRY(std::string path, task.space().ReadCString(task.reg(0)));
  task.BillSys(costs_.file_open);
  auto file = fs_.Lookup(path);
  if (!file.ok()) {
    task.set_reg(0, static_cast<uint32_t>(-1));
    return OkResult();
  }
  FdEntry entry;
  entry.path = path;
  entry.is_dir = ((*file)->mode & kModeDir) != 0;
  task.set_reg(0, static_cast<uint32_t>(task.AllocFd(std::move(entry))));
  return OkResult();
}

Result<void> Kernel::SysGetdents(Task& task) {
  int fd = static_cast<int>(task.reg(0));
  uint32_t buf = task.reg(1);
  uint32_t len = task.reg(2);
  FdEntry* entry = task.FindFd(fd);
  if (entry == nullptr || !entry->is_dir) {
    task.set_reg(0, static_cast<uint32_t>(-1));
    return OkResult();
  }
  OMOS_TRY(std::vector<std::string> names, fs_.ListDir(entry->path));
  uint32_t written = 0;
  while (entry->dir_index < names.size() && written + kDirentSize <= len) {
    const std::string& name = names[entry->dir_index];
    std::string full = entry->path == "/" ? "/" + name : entry->path + "/" + name;
    auto file = fs_.Lookup(full);
    if (!file.ok()) {
      ++entry->dir_index;
      continue;
    }
    uint8_t record[kDirentSize] = {0};
    auto put32 = [&](uint32_t off, uint32_t v) {
      record[off] = static_cast<uint8_t>(v);
      record[off + 1] = static_cast<uint8_t>(v >> 8);
      record[off + 2] = static_cast<uint8_t>(v >> 16);
      record[off + 3] = static_cast<uint8_t>(v >> 24);
    };
    put32(0, (*file)->inode);
    put32(4, static_cast<uint32_t>((*file)->bytes.size()));
    put32(8, (*file)->mode);
    put32(12, (*file)->mtime);
    std::strncpy(reinterpret_cast<char*>(record + 16), name.c_str(), kDirentNameLen - 1);
    OMOS_TRY_VOID(task.space().WriteBytes(buf + written, record, kDirentSize));
    written += kDirentSize;
    ++entry->dir_index;
    task.BillSys(costs_.dirent_cost);
  }
  task.set_reg(0, written);
  return OkResult();
}

Result<void> Kernel::SysStat(Task& task) {
  OMOS_TRY(std::string path, task.space().ReadCString(task.reg(0)));
  task.BillSys(costs_.stat_cost);
  auto file = fs_.Lookup(path);
  if (!file.ok()) {
    task.set_reg(0, static_cast<uint32_t>(-1));
    return OkResult();
  }
  uint32_t buf = task.reg(1);
  OMOS_TRY_VOID(task.space().Write32(buf, static_cast<uint32_t>((*file)->bytes.size())));
  OMOS_TRY_VOID(task.space().Write32(buf + 4, (*file)->mode));
  OMOS_TRY_VOID(task.space().Write32(buf + 8, (*file)->mtime));
  OMOS_TRY_VOID(task.space().Write32(buf + 12, (*file)->inode));
  task.set_reg(0, 0);
  return OkResult();
}

Result<void> Kernel::SysBrk(Task& task) {
  uint32_t request = task.reg(0);
  if (request == 0 || request <= task.brk()) {
    task.set_reg(0, task.brk());
    return OkResult();
  }
  uint32_t old_end = PageAlignUp(task.brk());
  uint32_t new_end = PageAlignUp(request);
  if (new_end > old_end) {
    OMOS_TRY_VOID(MapDemandZero(task, old_end, new_end - old_end, kProtRead | kProtWrite, "heap"));
  }
  task.set_brk(request);
  task.set_reg(0, request);
  return OkResult();
}

}  // namespace omos
