#include "src/os/loader.h"

#include "src/support/strings.h"

namespace omos {

namespace {

Result<void> MapData(Kernel& kernel, Task& task, const LinkedImage& image) {
  uint32_t data_total = static_cast<uint32_t>(image.data.size()) + image.bss_size;
  if (data_total > 0) {
    OMOS_TRY_VOID(kernel.MapPrivate(task, image.data_base, data_total, image.data,
                                    kProtRead | kProtWrite, image.name + ".data"));
  }
  if (image.data_end() > task.brk()) {
    task.set_brk(image.data_end());
  }
  return OkResult();
}

}  // namespace

Result<void> MapLinkedImage(Kernel& kernel, Task& task, const LinkedImage& image,
                            const std::string& text_cache_key) {
  if (!image.text.empty()) {
    if (!text_cache_key.empty()) {
      const SegmentImage* cached = kernel.PageCacheGet(text_cache_key);
      if (cached == nullptr) {
        OMOS_TRY(cached, kernel.PageCachePut(text_cache_key, image.text));
      }
      OMOS_TRY_VOID(kernel.MapShared(task, image.text_base, *cached, kProtRead | kProtExec,
                                     image.name + ".text"));
    } else {
      OMOS_TRY_VOID(kernel.MapPrivate(task, image.text_base,
                                      static_cast<uint32_t>(image.text.size()), image.text,
                                      kProtRead | kProtExec, image.name + ".text"));
    }
  }
  return MapData(kernel, task, image);
}

Result<void> MapImageWithSharedText(Kernel& kernel, Task& task, const LinkedImage& image,
                                    const SegmentImage& text) {
  if (text.size_bytes() > 0) {
    OMOS_TRY_VOID(
        kernel.MapShared(task, image.text_base, text, kProtRead | kProtExec, image.name + ".text"));
  }
  return MapData(kernel, task, image);
}

Result<void> StartTask(Kernel& kernel, Task& task, uint32_t entry,
                       std::span<const std::string> args) {
  OMOS_TRY_VOID(kernel.SetupStack(task, args));
  task.set_pc(entry);
  return OkResult();
}

}  // namespace omos
