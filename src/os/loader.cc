#include "src/os/loader.h"

#include "src/support/strings.h"

namespace omos {

namespace {

// Map the data segment (initialized bytes + bss). With a master image the
// initialized pages go copy-on-write and bss demand-zero — per-exec cost is
// page mappings, not byte copies. Without one, initialized bytes are copied
// eagerly (pure bss still maps demand-zero: nothing to copy from).
Result<void> MapData(Kernel& kernel, Task& task, const LinkedImage& image,
                     const SegmentImage* data_master) {
  uint32_t data_total = static_cast<uint32_t>(image.data.size()) + image.bss_size;
  if (data_total > 0) {
    if (data_master != nullptr) {
      OMOS_TRY_VOID(kernel.MapCoW(task, image.data_base, *data_master, data_total,
                                  kProtRead | kProtWrite, image.name + ".data"));
    } else if (image.data.empty()) {
      OMOS_TRY_VOID(kernel.MapDemandZero(task, image.data_base, data_total,
                                         kProtRead | kProtWrite, image.name + ".data"));
    } else {
      OMOS_TRY_VOID(kernel.MapPrivate(task, image.data_base, data_total, image.data,
                                      kProtRead | kProtWrite, image.name + ".data"));
    }
  }
  if (image.data_end() > task.brk()) {
    task.set_brk(image.data_end());
  }
  return OkResult();
}

}  // namespace

Result<void> MapLinkedImage(Kernel& kernel, Task& task, const LinkedImage& image,
                            const std::string& text_cache_key) {
  const SegmentImage* data_master = nullptr;
  if (!text_cache_key.empty() && !image.data.empty()) {
    std::string data_key = text_cache_key + "#data";
    data_master = kernel.PageCacheGet(data_key);
    if (data_master == nullptr) {
      OMOS_TRY(data_master, kernel.PageCachePut(std::move(data_key), image.data));
    }
  }
  if (!image.text.empty()) {
    if (!text_cache_key.empty()) {
      const SegmentImage* cached = kernel.PageCacheGet(text_cache_key);
      if (cached == nullptr) {
        OMOS_TRY(cached, kernel.PageCachePut(text_cache_key, image.text));
      }
      OMOS_TRY_VOID(kernel.MapShared(task, image.text_base, *cached, kProtRead | kProtExec,
                                     image.name + ".text"));
    } else {
      OMOS_TRY_VOID(kernel.MapPrivate(task, image.text_base,
                                      static_cast<uint32_t>(image.text.size()), image.text,
                                      kProtRead | kProtExec, image.name + ".text"));
    }
  }
  return MapData(kernel, task, image, data_master);
}

Result<void> MapImageWithSharedText(Kernel& kernel, Task& task, const LinkedImage& image,
                                    const SegmentImage& text, const SegmentImage* data_master) {
  if (text.size_bytes() > 0) {
    OMOS_TRY_VOID(
        kernel.MapShared(task, image.text_base, text, kProtRead | kProtExec, image.name + ".text"));
  }
  return MapData(kernel, task, image, data_master);
}

Result<void> StartTask(Kernel& kernel, Task& task, uint32_t entry,
                       std::span<const std::string> args) {
  OMOS_TRY_VOID(kernel.SetupStack(task, args));
  task.set_pc(entry);
  return OkResult();
}

}  // namespace omos
