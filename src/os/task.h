// Task: a simulated process — address space, register file, accounting.
#ifndef OMOS_SRC_OS_TASK_H_
#define OMOS_SRC_OS_TASK_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "src/isa/isa.h"
#include "src/support/result.h"
#include "src/vm/address_space.h"

namespace omos {

using TaskId = uint32_t;

enum class TaskState { kRunnable, kExited, kFaulted };

// An open file descriptor. Directories remember how many dirents have been
// consumed by getdents().
struct FdEntry {
  std::string path;
  uint32_t offset = 0;
  bool is_dir = false;
  uint32_t dir_index = 0;
};

class Task {
 public:
  Task(TaskId id, std::string name, PhysMemory& phys)
      : id_(id), name_(std::move(name)), space_(std::make_unique<AddressSpace>(phys)) {
    regs_.fill(0);
  }

  TaskId id() const { return id_; }
  const std::string& name() const { return name_; }

  AddressSpace& space() { return *space_; }
  const AddressSpace& space() const { return *space_; }

  uint32_t reg(int i) const { return regs_[static_cast<size_t>(i)]; }
  void set_reg(int i, uint32_t v) { regs_[static_cast<size_t>(i)] = v; }
  uint32_t pc() const { return pc_; }
  void set_pc(uint32_t pc) { pc_ = pc; }

  TaskState state() const { return state_; }
  int exit_code() const { return exit_code_; }
  const std::optional<Error>& fault() const { return fault_; }

  void Exit(int code) {
    state_ = TaskState::kExited;
    exit_code_ = code;
  }
  void Fault(Error error) {
    state_ = TaskState::kFaulted;
    fault_ = std::move(error);
  }

  // Accounting (simulated cycles).
  uint64_t user_cycles() const { return user_cycles_; }
  uint64_t sys_cycles() const { return sys_cycles_; }
  uint64_t elapsed_cycles() const { return user_cycles_ + sys_cycles_; }
  void BillUser(uint64_t cycles) { user_cycles_ += cycles; }
  void BillSys(uint64_t cycles) { sys_cycles_ += cycles; }

  // Captured console output (fds 1 and 2).
  const std::string& output() const { return output_; }
  void AppendOutput(std::string_view text) { output_ += text; }

  // File descriptors. 0/1/2 are reserved for console.
  int AllocFd(FdEntry entry) {
    int fd = next_fd_++;
    fds_[fd] = std::move(entry);
    return fd;
  }
  FdEntry* FindFd(int fd) {
    auto it = fds_.find(fd);
    return it == fds_.end() ? nullptr : &it->second;
  }
  void CloseFd(int fd) { fds_.erase(fd); }

  uint32_t brk() const { return brk_; }
  void set_brk(uint32_t brk) { brk_ = brk; }

  uint64_t instructions_retired() const { return instructions_retired_; }
  void CountInstruction() {
    ++instructions_retired_;
    ++user_cycles_;
  }

  // Demand-paging accounting for instruction fetch: returns true the first
  // time `page` (pc >> 12) is executed from.
  bool TouchTextPage(uint32_t page) {
    if (page == last_fetch_page_) {
      return false;
    }
    last_fetch_page_ = page;
    return touched_text_pages_.insert(page).second;
  }
  size_t touched_text_pages() const { return touched_text_pages_.size(); }

  // Live-upgrade safepoint request (src/upgrade/): another thread sets the
  // flag when this task should pause at the next instruction boundary so
  // the kernel's safepoint hook can migrate it. The flag is the only Task
  // state touched cross-thread; everything the hook reads beyond it is
  // published under the upgrade engine's lock, so a relaxed poll suffices.
  bool safepoint_pending() const {
    return safepoint_pending_.load(std::memory_order_relaxed);
  }
  void RequestSafepoint() { safepoint_pending_.store(true, std::memory_order_release); }
  void ClearSafepoint() { safepoint_pending_.store(false, std::memory_order_relaxed); }

 private:
  TaskId id_;
  std::string name_;
  std::unique_ptr<AddressSpace> space_;
  std::array<uint32_t, kNumRegisters> regs_;
  uint32_t pc_ = 0;
  TaskState state_ = TaskState::kRunnable;
  int exit_code_ = 0;
  std::optional<Error> fault_;
  uint64_t user_cycles_ = 0;
  uint64_t sys_cycles_ = 0;
  uint64_t instructions_retired_ = 0;
  std::string output_;
  std::map<int, FdEntry> fds_;
  int next_fd_ = 3;
  uint32_t brk_ = 0;
  uint32_t last_fetch_page_ = 0xFFFFFFFF;
  std::set<uint32_t> touched_text_pages_;
  std::atomic<bool> safepoint_pending_{false};
};

}  // namespace omos

#endif  // OMOS_SRC_OS_TASK_H_
