#include "src/os/sim_fs.h"

#include <algorithm>

#include "src/support/faultsim.h"
#include "src/support/strings.h"

namespace omos {

SimFs::SimFs() {
  SimFile root;
  root.mode = kModeDir | 0755;
  root.inode = next_inode_++;
  files_.emplace("/", std::move(root));
}

std::string SimFs::Normalize(std::string_view path) {
  std::string out = "/";
  for (const std::string& part : SplitString(path, '/')) {
    if (part.empty() || part == ".") {
      continue;
    }
    if (out.back() != '/') {
      out.push_back('/');
    }
    out += part;
  }
  return out;
}

void SimFs::Mkdir(std::string_view path) {
  std::string norm = Normalize(path);
  // Create all ancestors.
  std::string cur = "/";
  for (const std::string& part : SplitString(norm, '/')) {
    if (part.empty()) {
      continue;
    }
    if (cur.back() != '/') {
      cur.push_back('/');
    }
    cur += part;
    if (files_.find(cur) == files_.end()) {
      SimFile dir;
      dir.mode = kModeDir | 0755;
      dir.inode = next_inode_++;
      files_.emplace(cur, std::move(dir));
    }
  }
}

void SimFs::WriteFile(std::string_view path, std::vector<uint8_t> bytes, uint32_t perm) {
  std::string norm = Normalize(path);
  size_t slash = norm.rfind('/');
  if (slash > 0) {
    Mkdir(std::string_view(norm).substr(0, slash));
  }
  SimFile file;
  file.bytes = std::move(bytes);
  file.mode = kModeFile | (perm & 07777);
  file.mtime = static_cast<uint32_t>(700000000 + files_.size());  // deterministic, distinct
  auto it = files_.find(norm);
  if (it != files_.end()) {
    file.inode = it->second.inode;
    it->second = std::move(file);
  } else {
    file.inode = next_inode_++;
    files_.emplace(norm, std::move(file));
  }
}

void SimFs::WriteFile(std::string_view path, std::string_view text, uint32_t perm) {
  WriteFile(path, std::vector<uint8_t>(text.begin(), text.end()), perm);
}

Result<void> SimFs::TryWriteFile(std::string_view path, std::vector<uint8_t> bytes,
                                 uint32_t perm) {
  if (FaultSim::Trip("fs.write")) {
    return Err(ErrorCode::kIoError, StrCat("simulated write failure: ", path));
  }
  WriteFile(path, std::move(bytes), perm);
  return OkResult();
}

Result<void> SimFs::TryWriteFile(std::string_view path, std::string_view text, uint32_t perm) {
  return TryWriteFile(path, std::vector<uint8_t>(text.begin(), text.end()), perm);
}

bool SimFs::Exists(std::string_view path) const {
  return files_.find(Normalize(path)) != files_.end();
}

Result<const SimFile*> SimFs::Lookup(std::string_view path) const {
  if (FaultSim::Trip("fs.read")) {
    return Err(ErrorCode::kIoError, StrCat("simulated read failure: ", path));
  }
  auto it = files_.find(Normalize(path));
  if (it == files_.end()) {
    return Err(ErrorCode::kNotFound, StrCat("no such file: ", path));
  }
  return &it->second;
}

Result<std::vector<std::string>> SimFs::ListDir(std::string_view path) const {
  std::string norm = Normalize(path);
  auto it = files_.find(norm);
  if (it == files_.end()) {
    return Err(ErrorCode::kNotFound, StrCat("no such directory: ", path));
  }
  if ((it->second.mode & kModeDir) == 0) {
    return Err(ErrorCode::kInvalidArgument, StrCat("not a directory: ", path));
  }
  std::string prefix = norm == "/" ? "/" : norm + "/";
  std::vector<std::string> names;
  for (auto iter = files_.lower_bound(prefix); iter != files_.end(); ++iter) {
    const std::string& key = iter->first;
    if (!StartsWith(key, prefix)) {
      break;
    }
    std::string_view rest = std::string_view(key).substr(prefix.size());
    if (!rest.empty() && rest.find('/') == std::string_view::npos) {
      names.emplace_back(rest);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace omos
