#include "src/os/sim_fs.h"

#include <algorithm>

#include "src/support/faultsim.h"
#include "src/support/strings.h"

namespace omos {

SimFs::SimFs() {
  SimFile root;
  root.mode = kModeDir | 0755;
  root.inode = next_inode_++;
  files_.emplace("/", std::move(root));
}

std::string SimFs::Normalize(std::string_view path) {
  std::string out = "/";
  for (const std::string& part : SplitString(path, '/')) {
    if (part.empty() || part == ".") {
      continue;
    }
    if (out.back() != '/') {
      out.push_back('/');
    }
    out += part;
  }
  return out;
}

void SimFs::Mkdir(std::string_view path) {
  std::string norm = Normalize(path);
  // Create all ancestors.
  std::string cur = "/";
  for (const std::string& part : SplitString(norm, '/')) {
    if (part.empty()) {
      continue;
    }
    if (cur.back() != '/') {
      cur.push_back('/');
    }
    cur += part;
    if (files_.find(cur) == files_.end()) {
      SimFile dir;
      dir.mode = kModeDir | 0755;
      dir.inode = next_inode_++;
      files_.emplace(cur, std::move(dir));
    }
  }
}

void SimFs::PutBytes(std::string_view norm_path, std::vector<uint8_t> bytes, uint32_t perm,
                     bool durable) {
  std::string norm(norm_path);
  size_t slash = norm.rfind('/');
  if (slash > 0) {
    Mkdir(std::string_view(norm).substr(0, slash));
  }
  auto it = files_.find(norm);
  if (it != files_.end()) {
    SimFile& file = it->second;
    if (durable) {
      file.bytes = std::move(bytes);
      file.dirty = false;
      file.exists_durably = true;
      file.synced_bytes.clear();
      file.synced_bytes.shrink_to_fit();
    } else {
      // First unsynced touch of a clean file: remember the durable content
      // the crash would revert to.
      if (!file.dirty && file.exists_durably) {
        file.synced_bytes = file.bytes;
      }
      file.bytes = std::move(bytes);
      file.dirty = true;
    }
    file.mode = kModeFile | (perm & 07777);
    return;
  }
  SimFile file;
  file.bytes = std::move(bytes);
  file.mode = kModeFile | (perm & 07777);
  file.mtime = static_cast<uint32_t>(700000000 + files_.size());  // deterministic, distinct
  file.inode = next_inode_++;
  file.dirty = !durable;
  file.exists_durably = durable;
  files_.emplace(std::move(norm), std::move(file));
}

void SimFs::WriteFile(std::string_view path, std::vector<uint8_t> bytes, uint32_t perm) {
  PutBytes(Normalize(path), std::move(bytes), perm, /*durable=*/true);
}

void SimFs::WriteFile(std::string_view path, std::string_view text, uint32_t perm) {
  WriteFile(path, std::vector<uint8_t>(text.begin(), text.end()), perm);
}

Result<void> SimFs::TryWriteFile(std::string_view path, std::vector<uint8_t> bytes,
                                 uint32_t perm) {
  if (FaultSim::Trip("fs.write")) {
    return Err(ErrorCode::kIoError, StrCat("simulated write failure: ", path));
  }
  WriteFile(path, std::move(bytes), perm);
  return OkResult();
}

Result<void> SimFs::TryWriteFile(std::string_view path, std::string_view text, uint32_t perm) {
  return TryWriteFile(path, std::vector<uint8_t>(text.begin(), text.end()), perm);
}

Result<void> SimFs::TryWriteUnsynced(std::string_view path, std::vector<uint8_t> bytes,
                                     uint32_t perm) {
  if (FaultSim::Trip("fs.write")) {
    return Err(ErrorCode::kIoError, StrCat("simulated write failure: ", path));
  }
  PutBytes(Normalize(path), std::move(bytes), perm, /*durable=*/false);
  return OkResult();
}

Result<void> SimFs::TryAppendUnsynced(std::string_view path, const std::vector<uint8_t>& bytes) {
  if (FaultSim::Trip("fs.write")) {
    return Err(ErrorCode::kIoError, StrCat("simulated write failure: ", path));
  }
  std::string norm = Normalize(path);
  auto it = files_.find(norm);
  if (it == files_.end()) {
    PutBytes(norm, bytes, 0644, /*durable=*/false);
    return OkResult();
  }
  SimFile& file = it->second;
  if ((file.mode & kModeDir) != 0) {
    return Err(ErrorCode::kInvalidArgument, StrCat("cannot append to directory: ", path));
  }
  if (!file.dirty && file.exists_durably) {
    file.synced_bytes = file.bytes;
  }
  file.bytes.insert(file.bytes.end(), bytes.begin(), bytes.end());
  file.dirty = true;
  return OkResult();
}

Result<void> SimFs::Fsync(std::string_view path) {
  if (FaultSim::Trip("fs.fsync")) {
    return Err(ErrorCode::kIoError, StrCat("simulated fsync failure: ", path));
  }
  auto it = files_.find(Normalize(path));
  if (it == files_.end()) {
    return Err(ErrorCode::kNotFound, StrCat("fsync: no such file: ", path));
  }
  SimFile& file = it->second;
  file.dirty = false;
  file.exists_durably = true;
  file.synced_bytes.clear();
  file.synced_bytes.shrink_to_fit();
  return OkResult();
}

Result<void> SimFs::Rename(std::string_view from, std::string_view to) {
  if (FaultSim::Trip("fs.rename")) {
    return Err(ErrorCode::kIoError, StrCat("simulated rename failure: ", from, " -> ", to));
  }
  std::string norm_from = Normalize(from);
  std::string norm_to = Normalize(to);
  auto it = files_.find(norm_from);
  if (it == files_.end()) {
    return Err(ErrorCode::kNotFound, StrCat("rename: no such file: ", from));
  }
  if ((it->second.mode & kModeDir) != 0) {
    return Err(ErrorCode::kInvalidArgument, StrCat("rename: is a directory: ", from));
  }
  if (norm_from == norm_to) {
    return OkResult();
  }
  SimFile file = std::move(it->second);
  files_.erase(it);
  size_t slash = norm_to.rfind('/');
  if (slash > 0) {
    Mkdir(std::string_view(norm_to).substr(0, slash));
  }
  files_.insert_or_assign(std::move(norm_to), std::move(file));
  return OkResult();
}

Result<void> SimFs::Remove(std::string_view path) {
  auto it = files_.find(Normalize(path));
  if (it == files_.end()) {
    return Err(ErrorCode::kNotFound, StrCat("remove: no such file: ", path));
  }
  if ((it->second.mode & kModeDir) != 0) {
    return Err(ErrorCode::kInvalidArgument, StrCat("remove: is a directory: ", path));
  }
  files_.erase(it);
  return OkResult();
}

void SimFs::DropUnsynced() {
  for (auto it = files_.begin(); it != files_.end();) {
    SimFile& file = it->second;
    if (!file.dirty) {
      ++it;
      continue;
    }
    if (!file.exists_durably) {
      it = files_.erase(it);
      continue;
    }
    file.bytes = std::move(file.synced_bytes);
    file.synced_bytes.clear();
    file.dirty = false;
    ++it;
  }
}

bool SimFs::Exists(std::string_view path) const {
  return files_.find(Normalize(path)) != files_.end();
}

Result<const SimFile*> SimFs::Lookup(std::string_view path) const {
  if (FaultSim::Trip("fs.read")) {
    return Err(ErrorCode::kIoError, StrCat("simulated read failure: ", path));
  }
  auto it = files_.find(Normalize(path));
  if (it == files_.end()) {
    return Err(ErrorCode::kNotFound, StrCat("no such file: ", path));
  }
  return &it->second;
}

Result<std::vector<std::string>> SimFs::ListDir(std::string_view path) const {
  std::string norm = Normalize(path);
  auto it = files_.find(norm);
  if (it == files_.end()) {
    return Err(ErrorCode::kNotFound, StrCat("no such directory: ", path));
  }
  if ((it->second.mode & kModeDir) == 0) {
    return Err(ErrorCode::kInvalidArgument, StrCat("not a directory: ", path));
  }
  std::string prefix = norm == "/" ? "/" : norm + "/";
  std::vector<std::string> names;
  for (auto iter = files_.lower_bound(prefix); iter != files_.end(); ++iter) {
    const std::string& key = iter->first;
    if (!StartsWith(key, prefix)) {
      break;
    }
    std::string_view rest = std::string_view(key).substr(prefix.size());
    if (!rest.empty() && rest.find('/') == std::string_view::npos) {
      names.emplace_back(rest);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace omos
