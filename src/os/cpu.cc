#include "src/os/cpu.h"

#include "src/isa/isa.h"
#include "src/os/kernel.h"
#include "src/os/task.h"
#include "src/support/strings.h"
#include "src/support/trace.h"

namespace omos {

Result<void> CpuStep(Kernel& kernel, Task& task) {
  uint8_t raw[kInsnSize];
  uint32_t pc = task.pc();
  OMOS_TRY_VOID(task.space().FetchBytes(pc, raw, kInsnSize));
  OMOS_TRY(Instruction insn, DecodeInsn(raw));
  task.CountInstruction();
  // Cycle-sampling profiler hook: every (mask+1) retired instructions,
  // record (task, pc) for symbol-level attribution. Disabled cost: one
  // relaxed atomic load.
  //
  // Attribution convention (shared with src/engine/): a sample records the
  // PRE-execution pc of the retiring instruction — for a taken branch, the
  // branch site, never its target — checked after CountInstruction so the
  // first retired instruction of a period-aligned stream samples
  // deterministically. Both execution engines implement exactly this;
  // engine_test asserts sample-stream equality between them.
  if (CycleProfiler::enabled() &&
      (task.instructions_retired() & CycleProfiler::mask()) == 0) {
    CycleProfiler::RecordSample(task.id(), pc);
  }
  if (task.TouchTextPage(pc / kPageSize)) {
    task.BillSys(kernel.costs().page_fault);
  }
  uint32_t next = pc + kInsnSize;
  task.set_pc(next);

  auto r = [&](uint8_t i) { return task.reg(i); };
  auto w = [&](uint8_t i, uint32_t v) { task.set_reg(i, v); };
  int32_t simm = static_cast<int32_t>(insn.imm);

  switch (insn.op) {
    case Opcode::kHalt:
      task.Exit(0);
      return OkResult();
    case Opcode::kNop:
      return OkResult();
    case Opcode::kMovI:
    case Opcode::kLea:
      w(insn.r1, insn.imm);
      return OkResult();
    case Opcode::kLeaPc:
      w(insn.r1, next + insn.imm);
      return OkResult();
    case Opcode::kMov:
      w(insn.r1, r(insn.r2));
      return OkResult();
    case Opcode::kAdd:
      w(insn.r1, r(insn.r2) + r(insn.r3));
      return OkResult();
    case Opcode::kSub:
      w(insn.r1, r(insn.r2) - r(insn.r3));
      return OkResult();
    case Opcode::kMul:
      w(insn.r1, r(insn.r2) * r(insn.r3));
      return OkResult();
    case Opcode::kDiv:
      if (r(insn.r3) == 0) {
        return Err(ErrorCode::kExecFault, StrCat("divide by zero at ", Hex32(pc)));
      }
      w(insn.r1, static_cast<uint32_t>(static_cast<int32_t>(r(insn.r2)) /
                                       static_cast<int32_t>(r(insn.r3))));
      return OkResult();
    case Opcode::kMod:
      if (r(insn.r3) == 0) {
        return Err(ErrorCode::kExecFault, StrCat("mod by zero at ", Hex32(pc)));
      }
      w(insn.r1, static_cast<uint32_t>(static_cast<int32_t>(r(insn.r2)) %
                                       static_cast<int32_t>(r(insn.r3))));
      return OkResult();
    case Opcode::kAnd:
      w(insn.r1, r(insn.r2) & r(insn.r3));
      return OkResult();
    case Opcode::kOr:
      w(insn.r1, r(insn.r2) | r(insn.r3));
      return OkResult();
    case Opcode::kXor:
      w(insn.r1, r(insn.r2) ^ r(insn.r3));
      return OkResult();
    case Opcode::kShl:
      w(insn.r1, r(insn.r2) << (r(insn.r3) & 31));
      return OkResult();
    case Opcode::kShr:
      w(insn.r1, r(insn.r2) >> (r(insn.r3) & 31));
      return OkResult();
    case Opcode::kAddI:
      w(insn.r1, r(insn.r2) + insn.imm);
      return OkResult();
    case Opcode::kLd: {
      OMOS_TRY(uint32_t v, task.space().Read32(r(insn.r2) + insn.imm));
      w(insn.r1, v);
      return OkResult();
    }
    case Opcode::kSt:
      return task.space().Write32(r(insn.r2) + insn.imm, r(insn.r1));
    case Opcode::kLdB: {
      OMOS_TRY(uint8_t v, task.space().Read8(r(insn.r2) + insn.imm));
      w(insn.r1, v);
      return OkResult();
    }
    case Opcode::kStB:
      return task.space().Write8(r(insn.r2) + insn.imm, static_cast<uint8_t>(r(insn.r1)));
    case Opcode::kLdPc: {
      OMOS_TRY(uint32_t v, task.space().Read32(next + insn.imm));
      w(insn.r1, v);
      return OkResult();
    }
    case Opcode::kBeq:
      if (r(insn.r1) == r(insn.r2)) {
        task.set_pc(next + insn.imm);
      }
      return OkResult();
    case Opcode::kBne:
      if (r(insn.r1) != r(insn.r2)) {
        task.set_pc(next + insn.imm);
      }
      return OkResult();
    case Opcode::kBlt:
      if (static_cast<int32_t>(r(insn.r1)) < static_cast<int32_t>(r(insn.r2))) {
        task.set_pc(next + insn.imm);
      }
      return OkResult();
    case Opcode::kBge:
      if (static_cast<int32_t>(r(insn.r1)) >= static_cast<int32_t>(r(insn.r2))) {
        task.set_pc(next + insn.imm);
      }
      return OkResult();
    case Opcode::kBltu:
      if (r(insn.r1) < r(insn.r2)) {
        task.set_pc(next + insn.imm);
      }
      return OkResult();
    case Opcode::kBgeu:
      if (r(insn.r1) >= r(insn.r2)) {
        task.set_pc(next + insn.imm);
      }
      return OkResult();
    case Opcode::kJmp:
      task.set_pc(insn.imm);
      return OkResult();
    case Opcode::kBr:
      task.set_pc(next + insn.imm);
      return OkResult();
    case Opcode::kJmpR:
      task.set_pc(r(insn.r1));
      return OkResult();
    case Opcode::kCall:
      w(kRegLr, next);
      task.set_pc(insn.imm);
      return OkResult();
    case Opcode::kCallPc:
      w(kRegLr, next);
      task.set_pc(next + insn.imm);
      return OkResult();
    case Opcode::kCallR:
      w(kRegLr, next);
      task.set_pc(r(insn.r1));
      return OkResult();
    case Opcode::kRet:
      task.set_pc(r(kRegLr));
      return OkResult();
    case Opcode::kPush: {
      uint32_t sp = r(kRegSp) - 4;
      w(kRegSp, sp);
      return task.space().Write32(sp, r(insn.r1));
    }
    case Opcode::kPop: {
      uint32_t sp = r(kRegSp);
      OMOS_TRY(uint32_t v, task.space().Read32(sp));
      w(insn.r1, v);
      w(kRegSp, sp + 4);
      return OkResult();
    }
    case Opcode::kSys:
      return kernel.Syscall(task, insn.imm);
    case Opcode::kCount:
      break;
  }
  (void)simm;
  return Err(ErrorCode::kExecFault, StrCat("illegal opcode at ", Hex32(pc)));
}

}  // namespace omos
