// The SimISA interpreter: executes one instruction of a task.
#ifndef OMOS_SRC_OS_CPU_H_
#define OMOS_SRC_OS_CPU_H_

#include "src/support/result.h"

namespace omos {

class Kernel;
class Task;

// Fetch/decode/execute one instruction. Bills one user cycle. Errors are
// machine faults (bad fetch, illegal opcode, memory fault, div by zero).
Result<void> CpuStep(Kernel& kernel, Task& task);

}  // namespace omos

#endif  // OMOS_SRC_OS_CPU_H_
