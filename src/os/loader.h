// Mapping helpers shared by every exec scheme (baseline loaders, OMOS
// bootstrap, OMOS integrated exec).
#ifndef OMOS_SRC_OS_LOADER_H_
#define OMOS_SRC_OS_LOADER_H_

#include <string>

#include "src/linker/image.h"
#include "src/os/kernel.h"
#include "src/support/result.h"

namespace omos {

// Map `image` into `task`:
//  * text  — shared via the kernel page cache under `text_cache_key` when
//            nonempty (first call populates the cache), else private.
//  * data  — always a private copy (initialized bytes + zeroed bss).
// Sets the task brk to the image's data end if beyond the current brk.
Result<void> MapLinkedImage(Kernel& kernel, Task& task, const LinkedImage& image,
                            const std::string& text_cache_key);

// Map text from an already-built shared SegmentImage (OMOS's cache holds
// these directly; no kernel page cache involved).
Result<void> MapImageWithSharedText(Kernel& kernel, Task& task, const LinkedImage& image,
                                    const SegmentImage& text);

// Point the task at `entry` and give it a stack with `args`.
Result<void> StartTask(Kernel& kernel, Task& task, uint32_t entry,
                       std::span<const std::string> args);

}  // namespace omos

#endif  // OMOS_SRC_OS_LOADER_H_
