// Mapping helpers shared by every exec scheme (baseline loaders, OMOS
// bootstrap, OMOS integrated exec).
#ifndef OMOS_SRC_OS_LOADER_H_
#define OMOS_SRC_OS_LOADER_H_

#include <string>

#include "src/linker/image.h"
#include "src/os/kernel.h"
#include "src/support/result.h"

namespace omos {

// Map `image` into `task`:
//  * text  — shared via the kernel page cache under `text_cache_key` when
//            nonempty (first call populates the cache), else private.
//  * data  — copy-on-write against a cached master image when
//            `text_cache_key` is nonempty (cached under key + "#data"; bss
//            is demand-zero), else an eager private copy (bootstrap paths
//            with no cache to share from).
// Sets the task brk to the image's data end if beyond the current brk.
Result<void> MapLinkedImage(Kernel& kernel, Task& task, const LinkedImage& image,
                            const std::string& text_cache_key);

// Map text from an already-built shared SegmentImage (OMOS's cache holds
// these directly; no kernel page cache involved). When `data_master` is
// nonnull the data segment maps copy-on-write against it (bss demand-zero);
// when null, initialized data is copied eagerly and a pure-bss segment maps
// demand-zero.
Result<void> MapImageWithSharedText(Kernel& kernel, Task& task, const LinkedImage& image,
                                    const SegmentImage& text,
                                    const SegmentImage* data_master = nullptr);

// Point the task at `entry` and give it a stack with `args`.
Result<void> StartTask(Kernel& kernel, Task& task, uint32_t entry,
                       std::span<const std::string> args);

}  // namespace omos

#endif  // OMOS_SRC_OS_LOADER_H_
