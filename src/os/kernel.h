// Kernel: the mini-OS — task lifecycle, syscalls, page cache, interpreter
// driver. Dynamic-linking syscalls (lazy resolve, OMOS demand-load) are
// pluggable hooks so the baseline rtld and the OMOS runtime can install
// their own policies without the kernel knowing about either.
#ifndef OMOS_SRC_OS_KERNEL_H_
#define OMOS_SRC_OS_KERNEL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>

#include "src/engine/engine.h"
#include "src/os/cost_model.h"
#include "src/os/sim_fs.h"
#include "src/os/task.h"
#include "src/support/result.h"
#include "src/vm/address_space.h"
#include "src/vm/phys_memory.h"

namespace omos {

// Syscall numbers (SYS imm).
enum Sysno : uint32_t {
  kSysExit = 0,      // r0 = code
  kSysWrite = 1,     // r0 = fd, r1 = buf, r2 = len -> bytes written
  kSysRead = 2,      // r0 = fd, r1 = buf, r2 = len -> bytes read
  kSysOpen = 3,      // r0 = path cstring -> fd or -1
  kSysClose = 4,     // r0 = fd
  kSysBrk = 5,       // r0 = new end (0 = query) -> current brk
  kSysGetdents = 6,  // r0 = fd, r1 = buf, r2 = len -> bytes (0 = end)
  kSysStat = 7,      // r0 = path, r1 = 16-byte buf -> 0 or -1
  kSysTime = 8,      // -> elapsed simulated microcycles (low 32 bits)
  // Dynamic linking traps; the kernel delegates to installed hooks.
  kSysResolve = 16,  // r12 = linkage slot index (baseline lazy binding)
  kSysDload = 17,    // r12 = slot index (OMOS partial-image lazy load)
  kSysMonLog = 18,   // r12 = function index (OMOS monitoring wrappers)
  kSysOmosLoad = 19, // r0 = blueprint/meta-path cstring, r1 = symbol cstring
                     //   -> r0 = bound address (0 on failure); dld-style
                     //   dynamic loading driven by the running program (§5)
  kSysOmosUnload = 20,  // r0 = text base of a previously loaded class -> r0 = 0/-1
};

// getdents(2) record layout: 16-byte header + 48-byte NUL-padded name.
inline constexpr uint32_t kDirentSize = 64;
inline constexpr uint32_t kDirentNameLen = 48;

// Stack geometry for new tasks.
inline constexpr uint32_t kStackTop = 0xFFF00000;
inline constexpr uint32_t kStackSize = 64 * 1024;

class Kernel {
 public:
  explicit Kernel(CostModel costs = {});

  PhysMemory& phys() { return phys_; }
  SimFs& fs() { return fs_; }
  const CostModel& costs() const { return costs_; }
  CostModel& mutable_costs() { return costs_; }

  Task& CreateTask(std::string name);
  void DestroyTask(TaskId id);
  Task* FindTask(TaskId id);

  // Map a stack and write argv; r0 = argc, r1 = argv pointer, sp set.
  Result<void> SetupStack(Task& task, std::span<const std::string> args);

  // Segment mapping with cost accounting (billed to the task's sys time).
  Result<void> MapShared(Task& task, uint32_t base, const SegmentImage& image, uint8_t prot,
                         std::string name);
  Result<void> MapPrivate(Task& task, uint32_t base, uint32_t size, std::span<const uint8_t> init,
                          uint8_t prot, std::string name);
  // Map a cached image copy-on-write: its pages stay shared until first
  // write; [image pages, size) is demand-zero bss. Per-exec cost is the
  // mappings, not a byte copy — the paper's vm_map CoW exec path (§5).
  Result<void> MapCoW(Task& task, uint32_t base, const SegmentImage& image, uint32_t size,
                      uint8_t prot, std::string name);
  // Map demand-zero pages (stack, heap, bss): frames materialize on first
  // touch through the fault path.
  Result<void> MapDemandZero(Task& task, uint32_t base, uint32_t size, uint8_t prot,
                             std::string name);

  // Page-fault entry point: resolves the fault in the task's address space,
  // bills simulated cycles, and counts vm.* metrics. Installed as the
  // space's fault handler by CreateTask, so interpreter loads/stores/fetches
  // and kernel accesses all trap here.
  Result<void> HandleFault(Task& task, const PageFaultInfo& info);

  // Page cache: read-only text images shared across invocations, keyed by
  // path+generation. This is how the *baseline* gets text sharing; OMOS's
  // image cache lives in the server.
  const SegmentImage* PageCacheGet(const std::string& key) const;
  Result<const SegmentImage*> PageCachePut(std::string key, std::span<const uint8_t> bytes);

  // Dynamic-linking trap hooks.
  using SysHook = std::function<Result<void>(Kernel&, Task&)>;
  void SetSysHook(uint32_t sysno, SysHook hook);

  // Live-upgrade safepoint hook: when a task's safepoint_pending flag is
  // set, RunTask calls the hook at the next instruction boundary — a point
  // where no instruction is mid-flight, so pc/registers/stack describe a
  // consistent frame the hook may inspect and rewrite (OSR-style frame
  // transfer). The hook runs on the thread driving the task; the check for
  // the common (no-upgrade) case is one relaxed atomic load per
  // instruction.
  using SafepointHook = std::function<Result<void>(Kernel&, Task&)>;
  void SetSafepointHook(SafepointHook hook);

  // Run the task until it exits, faults, or exceeds `max_instructions`.
  // Drives the predecoded block engine by default; SetEngineMode (or the
  // OMOS_ENGINE=interp environment override) selects the legacy
  // per-instruction interpreter, which is kept as a differential oracle.
  // Simulated cycles, retired counts, and profiler samples are identical
  // between the two engines.
  Result<void> RunTask(Task& task, uint64_t max_instructions = 200'000'000);

  // Execution-engine selection and access. The engine is per-kernel: its
  // block cache is keyed by physical frame ids, which are only unique
  // within this kernel's PhysMemory.
  EngineMode engine_mode() const { return engine_mode_; }
  void SetEngineMode(EngineMode mode) { engine_mode_ = mode; }
  ExecEngine& engine();

  // One syscall (called by the CPU; public for tests).
  Result<void> Syscall(Task& task, uint32_t sysno);

 private:
  Result<void> SysWrite(Task& task);
  Result<void> SysRead(Task& task);
  Result<void> SysOpen(Task& task);
  Result<void> SysGetdents(Task& task);
  Result<void> SysStat(Task& task);
  Result<void> SysBrk(Task& task);

  CostModel costs_;
  // vm.* fault metrics (stable registry pointers, looked up once).
  class Counter* cow_faults_;
  class Counter* demand_zero_fills_;
  class Counter* cow_broken_pages_;
  class Counter* frames_saved_;
  PhysMemory phys_;
  SimFs fs_;
  std::map<TaskId, std::unique_ptr<Task>> tasks_;
  std::map<std::string, SegmentImage> page_cache_;
  std::map<uint32_t, SysHook> sys_hooks_;
  SafepointHook safepoint_hook_;
  EngineMode engine_mode_ = DefaultEngineMode();
  std::unique_ptr<ExecEngine> engine_;
  TaskId next_task_id_ = 1;
};

}  // namespace omos

#endif  // OMOS_SRC_OS_KERNEL_H_
