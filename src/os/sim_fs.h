// SimFs: the in-memory filesystem the mini-OS serves syscalls from.
//
// Workload programs (`ls` variants) list and stat these files; loaders read
// executables and libraries out of them.
//
// Durability model (PR 6). Each file tracks which content is *durable* —
// guaranteed to survive a simulated power loss. The legacy WriteFile/
// TryWriteFile paths are immediately durable (the historical behavior, and
// what workload installation wants). The unsynced write paths model a page
// cache: new bytes are visible to readers at once but revert to the last
// fsynced content on crash — a file never fsynced since creation vanishes
// entirely. `Fsync` makes the current bytes durable; `Rename` is an atomic,
// journaled metadata operation (the classic publish step: write tmp, fsync,
// rename). `DropUnsynced` is the crash itself: tests call it to model the
// kernel's dirty pages dying with the machine. The persistent image store
// (src/store/) is built on exactly these primitives.
#ifndef OMOS_SRC_OS_SIM_FS_H_
#define OMOS_SRC_OS_SIM_FS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/result.h"

namespace omos {

// POSIX-flavoured mode bits (octal): 0040000 directory, 0100000 regular.
inline constexpr uint32_t kModeDir = 0040000;
inline constexpr uint32_t kModeFile = 0100000;

struct SimFile {
  std::vector<uint8_t> bytes;
  uint32_t mode = kModeFile | 0644;
  uint32_t mtime = 0;
  uint32_t inode = 0;
  // Durability state. `dirty` means `bytes` differ from the durable content;
  // `exists_durably` false means no fsync ever covered this file (it
  // vanishes on crash). `synced_bytes` holds the durable content only while
  // dirty && exists_durably.
  bool dirty = false;
  bool exists_durably = true;
  std::vector<uint8_t> synced_bytes;
};

class SimFs {
 public:
  SimFs();

  // Create or replace a regular file; parent directories are created.
  // Immediately durable (legacy semantics — installation-time writes).
  void WriteFile(std::string_view path, std::vector<uint8_t> bytes, uint32_t perm = 0644);
  void WriteFile(std::string_view path, std::string_view text, uint32_t perm = 0644);

  // Fault-aware write: like WriteFile, but the "fs.write" fault site can
  // fail it with kIoError (in which case nothing is written). Callers that
  // must survive storage faults use this and handle the error.
  Result<void> TryWriteFile(std::string_view path, std::vector<uint8_t> bytes,
                            uint32_t perm = 0644);
  Result<void> TryWriteFile(std::string_view path, std::string_view text, uint32_t perm = 0644);

  // Page-cache write: visible immediately, durable only after Fsync. Trips
  // "fs.write". The durability-aware callers (the image store) use these.
  Result<void> TryWriteUnsynced(std::string_view path, std::vector<uint8_t> bytes,
                                uint32_t perm = 0644);
  // Append to a file (created empty first if absent), unsynced. Trips
  // "fs.write".
  Result<void> TryAppendUnsynced(std::string_view path, const std::vector<uint8_t>& bytes);

  // Make `path`'s current bytes durable. Trips "fs.fsync" (an fsync that
  // returns EIO leaves the durable content unchanged — the writeback
  // failed). kNotFound for missing files.
  Result<void> Fsync(std::string_view path);

  // Atomically rename `from` to `to` (replacing `to` if present). The
  // rename itself is journaled metadata — durable immediately — but the
  // file's *content* durability travels with it: renaming a never-synced
  // file publishes a name whose bytes still die on crash (the classic
  // zero-length-file bug; the store fsyncs before renaming). Trips
  // "fs.rename" before any mutation.
  Result<void> Rename(std::string_view from, std::string_view to);

  // Delete a regular file (durable immediately). kNotFound if absent.
  Result<void> Remove(std::string_view path);

  // Simulated power loss: every dirty file reverts to its durable content;
  // files that were never fsynced disappear. Directories survive.
  void DropUnsynced();

  void Mkdir(std::string_view path);

  bool Exists(std::string_view path) const;
  Result<const SimFile*> Lookup(std::string_view path) const;

  // Names (not paths) of entries directly under `path`, sorted.
  Result<std::vector<std::string>> ListDir(std::string_view path) const;

  size_t file_count() const { return files_.size(); }

 private:
  static std::string Normalize(std::string_view path);
  // Shared body of the write paths.
  void PutBytes(std::string_view norm_path, std::vector<uint8_t> bytes, uint32_t perm,
                bool durable);

  std::map<std::string, SimFile, std::less<>> files_;
  uint32_t next_inode_ = 2;
};

}  // namespace omos

#endif  // OMOS_SRC_OS_SIM_FS_H_
