// SimFs: the in-memory filesystem the mini-OS serves syscalls from.
//
// Workload programs (`ls` variants) list and stat these files; loaders read
// executables and libraries out of them.
#ifndef OMOS_SRC_OS_SIM_FS_H_
#define OMOS_SRC_OS_SIM_FS_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/result.h"

namespace omos {

// POSIX-flavoured mode bits (octal): 0040000 directory, 0100000 regular.
inline constexpr uint32_t kModeDir = 0040000;
inline constexpr uint32_t kModeFile = 0100000;

struct SimFile {
  std::vector<uint8_t> bytes;
  uint32_t mode = kModeFile | 0644;
  uint32_t mtime = 0;
  uint32_t inode = 0;
};

class SimFs {
 public:
  SimFs();

  // Create or replace a regular file; parent directories are created.
  void WriteFile(std::string_view path, std::vector<uint8_t> bytes, uint32_t perm = 0644);
  void WriteFile(std::string_view path, std::string_view text, uint32_t perm = 0644);

  // Fault-aware write: like WriteFile, but the "fs.write" fault site can
  // fail it with kIoError (in which case nothing is written). Callers that
  // must survive storage faults use this and handle the error.
  Result<void> TryWriteFile(std::string_view path, std::vector<uint8_t> bytes,
                            uint32_t perm = 0644);
  Result<void> TryWriteFile(std::string_view path, std::string_view text, uint32_t perm = 0644);

  void Mkdir(std::string_view path);

  bool Exists(std::string_view path) const;
  Result<const SimFile*> Lookup(std::string_view path) const;

  // Names (not paths) of entries directly under `path`, sorted.
  Result<std::vector<std::string>> ListDir(std::string_view path) const;

  size_t file_count() const { return files_.size(); }

 private:
  static std::string Normalize(std::string_view path);

  std::map<std::string, SimFile, std::less<>> files_;
  uint32_t next_inode_ = 2;
};

}  // namespace omos

#endif  // OMOS_SRC_OS_SIM_FS_H_
