// The simulated-time cost model.
//
// Every benchmark in this repository reports *simulated cycles*, split into
// user time (instructions retired by the task, plus lazy-binding work that
// real systems perform in user-mode dynamic-linker code — the paper
// attributes HP-UX's deferred-binding overhead to user time, §8.2) and
// system time (syscall entry, page mapping, image parsing, IPC).
//
// The parameters below are order-of-magnitude estimates for an early-1990s
// workstation measured in CPU cycles; Table 1's *shape* (who wins, and that
// the gap grows with relocation count and syscall count) is insensitive to
// their exact values — see EXPERIMENTS.md for a sensitivity note.
#ifndef OMOS_SRC_OS_COST_MODEL_H_
#define OMOS_SRC_OS_COST_MODEL_H_

#include <cstdint>

namespace omos {

struct CostModel {
  // Kernel entry/exit for any syscall.
  uint64_t syscall_overhead = 300;
  // Install one page mapping (shared or private) into an address space.
  uint64_t page_map = 120;
  // Copy/zero one private page (data segment instantiation).
  uint64_t page_copy = 400;
  // Fork/exec fixed overhead: task creation, stack setup.
  uint64_t exec_base = 4000;
  // Open a file by path.
  uint64_t file_open = 500;
  // Read one 4KB page from "disk" (buffer cache hit would be cheaper; we
  // model the warm case uniformly).
  uint64_t file_read_page = 250;
  // stat() beyond syscall overhead.
  uint64_t stat_cost = 250;
  // Per directory entry returned by getdents.
  uint64_t dirent_cost = 30;
  // Per byte written to the console device.
  uint64_t write_byte = 1;
  // Parse an executable or shared-library header (per file, per exec in the
  // traditional scheme; once per cache fill in OMOS).
  uint64_t header_parse = 800;
  // Per symbol parsed from a symbol table on load.
  uint64_t symbol_parse = 6;
  // Apply one dynamic relocation (rebase or patch a data word / GOT slot).
  uint64_t reloc_apply = 25;
  // One symbol lookup in a loaded module's hash table.
  uint64_t symbol_lookup = 60;
  // Prime one lazy linkage-table slot to its resolver stub.
  uint64_t got_slot_init = 4;
  // First touch of a text page by the instruction fetcher (demand paging /
  // cold i-cache). This is what the §4.1 reordering optimization reduces:
  // clustering hot routines shrinks the set of touched pages.
  uint64_t page_fault = 1500;
  // Kernel entry/exit + page-table update for a minor (soft) data fault —
  // no disk involved. Both demand-zero fills and CoW breaks pay this; the
  // fill/copy work is billed on top (zero_fill_page / page_copy).
  uint64_t soft_fault = 250;
  // Zero one demand page at first touch. Cheaper than page_copy: one-sided
  // store stream, no source read.
  uint64_t zero_fill_page = 120;
  // Write one 4KB page to "disk" (journal appends, image-store data files).
  // Slightly above file_read_page: allocation + writeback setup.
  uint64_t file_write_page = 300;
  // fsync(): flush dirty pages plus a device write barrier. Dominates the
  // durable-publish path, which is why the store batches one fsync per
  // journal step rather than per record field.
  uint64_t fsync = 6000;
  // Atomic rename (journaled metadata update: two directory blocks).
  uint64_t rename = 700;
  // One client<->OMOS IPC round trip (request + mapped reply). The paper's
  // bootstrap scheme pays this per exec; integrated exec does not (§5). The
  // HP-UX timings used System V messages — slow IPC — which is why Table 1
  // shows OMOS's system time far above HP-UX's at similar elapsed time.
  uint64_t ipc_round_trip = 9000;
  // One doors-style shared-memory ring handoff (src/ipc/ring_transport.h):
  // write the request into a mapped slot, ring the doorbell, the server
  // thread picks it up in place — no marshalling copy through the kernel, no
  // scheduler round trip through a message queue. This is the Solaris-doors
  // observation: a cross-process call can cost little more than a protected
  // procedure call. ~20x cheaper than ipc_round_trip.
  uint64_t ring_handoff = 400;
  // Per ring slot occupied beyond the first (large messages span slots; the
  // peer touches one extra cache-line-sized region per slot).
  uint64_t ring_slot = 40;
  // Server-side work for a cache hit: namespace traversal + cache lookup.
  uint64_t omos_cache_lookup = 700;
  // Prelinked-exec fast path: one hash probe of the prelink table plus a
  // layout-generation stamp compare. No namespace traversal, no blueprint
  // normalization, no checksum walk — which is why it undercuts
  // omos_cache_lookup and lets warm prelinked exec beat integrated exec.
  uint64_t prelink_lookup = 150;
};

}  // namespace omos

#endif  // OMOS_SRC_OS_COST_MODEL_H_
