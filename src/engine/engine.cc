#include "src/engine/engine.h"

#include <array>
#include <cstdlib>
#include <cstring>

#include "src/isa/isa.h"
#include "src/os/cpu.h"
#include "src/os/kernel.h"
#include "src/os/task.h"
#include "src/support/metrics.h"
#include "src/support/strings.h"
#include "src/support/trace.h"

// Direct-threaded dispatch (computed goto) on GNU-compatible compilers;
// elsewhere the same op bodies compile as a switch in a loop.
#if defined(__GNUC__) || defined(__clang__)
#define OMOS_ENGINE_DIRECT_THREADED 1
#else
#define OMOS_ENGINE_DIRECT_THREADED 0
#endif

namespace omos {

namespace {

// Wholesale-eviction threshold for the shared block cache. The workloads
// decode a few hundred blocks; this only guards against pathological text
// churn (e.g. a stress test remapping thousands of pages).
constexpr size_t kMaxCachedBlocks = 1u << 16;

constexpr uint32_t kInvalidPage = 0xFFFFFFFFu;

inline uint32_t Load32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

inline void Store32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

}  // namespace

EngineMode DefaultEngineMode() {
  const char* env = std::getenv("OMOS_ENGINE");
  if (env != nullptr && std::string_view(env) == "interp") {
    return EngineMode::kInterp;
  }
  return EngineMode::kBlocks;
}

EngineMetrics& GetEngineMetrics() {
  static EngineMetrics metrics{
      MetricsRegistry::Global().GetCounter("engine.blocks_decoded"),
      MetricsRegistry::Global().GetCounter("engine.block_hits"),
      MetricsRegistry::Global().GetCounter("engine.invalidations"),
      MetricsRegistry::Global().GetCounter("engine.tlb_hits"),
      MetricsRegistry::Global().GetCounter("engine.tlb_misses"),
  };
  return metrics;
}

// Predecoded instruction: DecodeInsn's output, flattened so the dispatch
// loop touches one 8-byte-ish record instead of re-parsing raw bytes.
struct ExecEngine::DecodedInsn {
  Opcode op;
  uint8_t r1;
  uint8_t r2;
  uint8_t r3;
  uint32_t imm;
};

// A superblock: consecutive instructions within one text page, ending at
// the first control-flow instruction, the page edge, or the first
// undecodable instruction. Immutable once published.
struct ExecEngine::Block {
  std::vector<DecodedInsn> insns;
};

struct ExecEngine::TaskCache {
  static constexpr uint32_t kTlbEntries = 32;  // direct-mapped by virtual page
  static constexpr uint32_t kL1Entries = 64;   // direct-mapped by pc / kInsnSize

  struct TlbEntry {
    uint32_t page = kInvalidPage;  // virtual page number (addr / kPageSize)
    uint8_t* data = nullptr;       // frame bytes
    uint8_t prot = 0;
    bool cow = false;  // writes must fault even though prot allows them
  };
  struct L1Entry {
    uint32_t pc = 0;
    std::shared_ptr<const Block> block;  // also keeps the block alive vs. eviction
  };

  std::array<TlbEntry, kTlbEntries> tlb{};
  std::array<L1Entry, kL1Entries> l1{};
  // TLB and L1 epochs are tracked separately: data accesses re-sync the TLB
  // mid-block, but the L1 must only be flushed between blocks — an L1 slot
  // holds the shared_ptr keeping the currently-executing block alive.
  uint64_t tlb_epoch = 0;
  uint64_t l1_space_epoch = 0;
  uint64_t l1_engine_epoch = 0;
  // engine.* counts, batched per Run() call (Counter::Add is an atomic).
  uint64_t tlb_hits = 0;
  uint64_t tlb_misses = 0;
  uint64_t block_hits = 0;

  void FlushTlb() {
    for (TlbEntry& e : tlb) {
      e.page = kInvalidPage;
    }
  }
  void FlushL1() {
    for (L1Entry& e : l1) {
      e.pc = 0;
      e.block.reset();
    }
  }
};

ExecEngine::ExecEngine(Kernel& kernel) : kernel_(kernel) {}

ExecEngine::~ExecEngine() = default;

ExecEngine::TaskCache& ExecEngine::StateFor(const Task& task) {
  std::lock_guard<std::mutex> lock(tasks_mu_);
  std::unique_ptr<TaskCache>& slot = tasks_[task.id()];
  if (slot == nullptr) {
    slot = std::make_unique<TaskCache>();
  }
  return *slot;
}

void ExecEngine::DropTask(uint32_t task_id) {
  std::lock_guard<std::mutex> lock(tasks_mu_);
  tasks_.erase(task_id);
}

void ExecEngine::InvalidateAll(std::string_view reason) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    blocks_.clear();
  }
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  GetEngineMetrics().invalidations->Add(1);
  if (TraceEnabled()) {
    TraceInstant("engine.invalidate", reason);
  }
}

size_t ExecEngine::CachedBlocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_.size();
}

Result<const ExecEngine::Block*> ExecEngine::LookupBlock(Task& task, TaskCache& st, uint32_t pc) {
  AddressSpace& space = task.space();
  uint64_t sepoch = space.map_epoch();
  if (st.l1_space_epoch != sepoch) {
    st.FlushL1();
    st.l1_space_epoch = sepoch;
  }
  uint64_t eepoch = epoch_.load(std::memory_order_acquire);
  if (st.l1_engine_epoch != eepoch) {
    st.FlushL1();
    st.l1_engine_epoch = eepoch;
  }
  uint32_t offset = pc & kPageMask;
  if (offset > kPageSize - kInsnSize) {
    // The 8-byte fetch would cross a page; single-step it.
    return static_cast<const Block*>(nullptr);
  }
  TaskCache::L1Entry& slot = st.l1[(pc / kInsnSize) % TaskCache::kL1Entries];
  if (slot.block != nullptr && slot.pc == pc) {
    ++st.block_hits;
    return slot.block.get();
  }
  AddressSpace::PageLookup pl;
  if (!space.LookupPage(pc, &pl) || !pl.present || (pl.prot & kProtExec) == 0) {
    // Unmapped, non-executable, or demand-zero text: take the exact fetch
    // CpuStep would issue so the fault is billed — and any fault-injection
    // plan evaluated — exactly once, with the legacy error message.
    uint8_t raw[kInsnSize];
    OMOS_TRY_VOID(space.FetchBytes(pc, raw, kInsnSize));
    // The fetch resolved a fault (and bumped the map epoch); re-probe.
    st.FlushL1();
    st.l1_space_epoch = space.map_epoch();
    if (!space.LookupPage(pc, &pl) || !pl.present) {
      return static_cast<const Block*>(nullptr);
    }
  }
  if ((pl.prot & kProtWrite) != 0) {
    // Writable text can change under a cached block; never cache it.
    return static_cast<const Block*>(nullptr);
  }

  // Shared-cache key: physical frame identity + reuse generation + block
  // offset. Two tasks mapping the same image frames share one decode; a
  // recycled frame's bumped generation retires all of its stale keys.
  // (gen is truncated to 23 bits — a frame would need 8M recycles while
  // old keys linger to alias, and wholesale eviction resets sooner.)
  uint32_t gen = kernel_.phys().FrameGen(pl.frame);
  uint64_t key = (static_cast<uint64_t>(pl.frame) << 32) |
                 ((static_cast<uint64_t>(gen) << 9 | (offset >> 3)) & 0xFFFFFFFFu);
  std::shared_ptr<const Block> block;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = blocks_.find(key);
    if (it != blocks_.end()) {
      block = it->second;
    }
  }
  if (block != nullptr) {
    ++st.block_hits;
  } else {
    TraceSpan span("engine.decode");
    auto built = std::make_shared<Block>();
    const uint8_t* page_data = pl.data;
    for (uint32_t off = offset; off + kInsnSize <= kPageSize; off += kInsnSize) {
      Result<Instruction> insn = DecodeInsn(page_data + off);
      if (!insn.ok()) {
        if (built->insns.empty()) {
          // The faulting instruction is the block head: surface DecodeInsn's
          // error exactly as CpuStep would.
          return insn.error();
        }
        break;  // end the block before the undecodable instruction
      }
      built->insns.push_back(DecodedInsn{insn->op, insn->r1, insn->r2, insn->r3, insn->imm});
      switch (insn->op) {
        case Opcode::kBeq:
        case Opcode::kBne:
        case Opcode::kBlt:
        case Opcode::kBge:
        case Opcode::kBltu:
        case Opcode::kBgeu:
        case Opcode::kJmp:
        case Opcode::kBr:
        case Opcode::kJmpR:
        case Opcode::kCall:
        case Opcode::kCallPc:
        case Opcode::kCallR:
        case Opcode::kRet:
        case Opcode::kSys:
        case Opcode::kHalt:
          off = kPageSize;  // control flow (or exit) ends the block
          break;
        default:
          break;
      }
    }
    if (span.armed()) {
      span.SetDetail(StrCat(Hex32(pc), " ", built->insns.size(), " insns"));
    }
    GetEngineMetrics().blocks_decoded->Add(1);
    block = std::move(built);
    std::lock_guard<std::mutex> lock(mu_);
    if (blocks_.size() >= kMaxCachedBlocks) {
      blocks_.clear();
      epoch_.fetch_add(1, std::memory_order_acq_rel);
      GetEngineMetrics().invalidations->Add(1);
    }
    blocks_.insert_or_assign(key, block);
  }
  slot.pc = pc;
  slot.block = std::move(block);
  return slot.block.get();
}

Result<void> ExecEngine::ExecuteBlock(Task& task, TaskCache& st, const Block& block,
                                      uint64_t budget, uint64_t* executed) {
  AddressSpace& space = task.space();
  uint32_t pc = task.pc();
  uint32_t next = 0;
  // First-touch accounting for the block's text page. CpuStep checks this
  // per instruction, but a block never crosses a page, so one check at
  // entry bills identically (Run() guarantees at least one instruction of
  // budget, matching CpuStep's bill-on-first-instruction).
  if (task.TouchTextPage(pc / kPageSize)) {
    task.BillSys(kernel_.costs().page_fault);
  }

  const DecodedInsn* d = block.insns.data();
  const DecodedInsn* dend = d + block.insns.size();
  auto r = [&](uint8_t i) { return task.reg(i); };
  auto w = [&](uint8_t i, uint32_t v) { task.set_reg(i, v); };
  // Software TLB probe for a `size`-byte access that must not cross a page.
  // Returns the frame byte pointer on a hit with sufficient permission, or
  // nullptr to route the access through the billing/faulting slow path
  // (absent page, CoW write, protection mismatch, page-crossing). The slow
  // path resolves the fault exactly like CpuStep's Read32/Write32 — and
  // bumps the map epoch, which re-syncs the TLB on the next probe.
  auto tlb = [&](uint32_t addr, uint32_t size, bool write) -> uint8_t* {
    uint8_t* hit = nullptr;
    if ((addr & kPageMask) <= kPageSize - size) {
      uint64_t epoch = space.map_epoch();
      if (st.tlb_epoch != epoch) {
        st.FlushTlb();
        st.tlb_epoch = epoch;
      }
      uint32_t page = addr / kPageSize;
      TaskCache::TlbEntry& e = st.tlb[page & (TaskCache::kTlbEntries - 1)];
      if (e.page != page) {
        AddressSpace::PageLookup pl;
        if (space.LookupPage(addr, &pl) && pl.present) {
          e.page = page;
          e.data = pl.data;
          e.prot = pl.prot;
          e.cow = pl.cow;
        }
      }
      if (e.page == page) {
        bool allowed = write ? ((e.prot & kProtWrite) != 0 && !e.cow)
                             : (e.prot & kProtRead) != 0;
        if (allowed) {
          hit = e.data + (addr & kPageMask);
        }
      }
    }
    if (hit != nullptr) {
      ++st.tlb_hits;
    } else {
      ++st.tlb_misses;
    }
    return hit;
  };

// Per-instruction prologue, replicating CpuStep's exact order: budget stop
// at the boundary (pc already points at the unexecuted instruction), retire
// count, profiler sample at the pre-execution pc, then pc := pc_next.
#define OMOS_PROLOGUE()                                                      \
  do {                                                                       \
    if (*executed >= budget) {                                               \
      return OkResult();                                                     \
    }                                                                        \
    task.CountInstruction();                                                 \
    ++*executed;                                                             \
    if (CycleProfiler::enabled() &&                                          \
        (task.instructions_retired() & CycleProfiler::mask()) == 0) {        \
      CycleProfiler::RecordSample(task.id(), pc);                            \
    }                                                                        \
    next = pc + kInsnSize;                                                   \
    task.set_pc(next);                                                       \
  } while (0)

#if OMOS_ENGINE_DIRECT_THREADED
  // Label table indexed by Opcode (kCount excluded: DecodeInsn rejects it).
  static const void* const kOps[] = {
      &&L_kHalt, &&L_kNop,  &&L_kMovI,  &&L_kMov,   &&L_kLea,  &&L_kLeaPc, &&L_kAdd,
      &&L_kSub,  &&L_kMul,  &&L_kDiv,   &&L_kMod,   &&L_kAnd,  &&L_kOr,    &&L_kXor,
      &&L_kShl,  &&L_kShr,  &&L_kAddI,  &&L_kLd,    &&L_kSt,   &&L_kLdB,   &&L_kStB,
      &&L_kLdPc, &&L_kBeq,  &&L_kBne,   &&L_kBlt,   &&L_kBge,  &&L_kBltu,  &&L_kBgeu,
      &&L_kJmp,  &&L_kBr,   &&L_kJmpR,  &&L_kCall,  &&L_kCallPc, &&L_kCallR, &&L_kRet,
      &&L_kPush, &&L_kPop,  &&L_kSys};
  static_assert(static_cast<size_t>(Opcode::kCount) == 38, "keep kOps in sync with Opcode");

#define OMOS_OP(name) L_##name
#define OMOS_NEXT()                                                          \
  do {                                                                       \
    if (++d == dend) {                                                       \
      return OkResult();                                                     \
    }                                                                        \
    pc = next;                                                               \
    OMOS_PROLOGUE();                                                         \
    goto* kOps[static_cast<size_t>(d->op)];                                  \
  } while (0)

  OMOS_PROLOGUE();
  goto* kOps[static_cast<size_t>(d->op)];
#else
#define OMOS_OP(name) case Opcode::name
#define OMOS_NEXT() break

  for (;;) {
    OMOS_PROLOGUE();
    switch (d->op) {
#endif

  OMOS_OP(kHalt):
    task.Exit(0);
    return OkResult();
  OMOS_OP(kNop):
    OMOS_NEXT();
  OMOS_OP(kMovI):
  OMOS_OP(kLea):
    w(d->r1, d->imm);
    OMOS_NEXT();
  OMOS_OP(kLeaPc):
    w(d->r1, next + d->imm);
    OMOS_NEXT();
  OMOS_OP(kMov):
    w(d->r1, r(d->r2));
    OMOS_NEXT();
  OMOS_OP(kAdd):
    w(d->r1, r(d->r2) + r(d->r3));
    OMOS_NEXT();
  OMOS_OP(kSub):
    w(d->r1, r(d->r2) - r(d->r3));
    OMOS_NEXT();
  OMOS_OP(kMul):
    w(d->r1, r(d->r2) * r(d->r3));
    OMOS_NEXT();
  OMOS_OP(kDiv):
    if (r(d->r3) == 0) {
      return Err(ErrorCode::kExecFault, StrCat("divide by zero at ", Hex32(pc)));
    }
    w(d->r1, static_cast<uint32_t>(static_cast<int32_t>(r(d->r2)) /
                                   static_cast<int32_t>(r(d->r3))));
    OMOS_NEXT();
  OMOS_OP(kMod):
    if (r(d->r3) == 0) {
      return Err(ErrorCode::kExecFault, StrCat("mod by zero at ", Hex32(pc)));
    }
    w(d->r1, static_cast<uint32_t>(static_cast<int32_t>(r(d->r2)) %
                                   static_cast<int32_t>(r(d->r3))));
    OMOS_NEXT();
  OMOS_OP(kAnd):
    w(d->r1, r(d->r2) & r(d->r3));
    OMOS_NEXT();
  OMOS_OP(kOr):
    w(d->r1, r(d->r2) | r(d->r3));
    OMOS_NEXT();
  OMOS_OP(kXor):
    w(d->r1, r(d->r2) ^ r(d->r3));
    OMOS_NEXT();
  OMOS_OP(kShl):
    w(d->r1, r(d->r2) << (r(d->r3) & 31));
    OMOS_NEXT();
  OMOS_OP(kShr):
    w(d->r1, r(d->r2) >> (r(d->r3) & 31));
    OMOS_NEXT();
  OMOS_OP(kAddI):
    w(d->r1, r(d->r2) + d->imm);
    OMOS_NEXT();
  OMOS_OP(kLd): {
    uint32_t addr = r(d->r2) + d->imm;
    if (const uint8_t* p = tlb(addr, 4, /*write=*/false)) {
      w(d->r1, Load32(p));
    } else {
      Result<uint32_t> v = space.Read32(addr);
      if (!v.ok()) {
        return v.error();
      }
      w(d->r1, *v);
    }
    OMOS_NEXT();
  }
  OMOS_OP(kSt): {
    uint32_t addr = r(d->r2) + d->imm;
    if (uint8_t* p = tlb(addr, 4, /*write=*/true)) {
      Store32(p, r(d->r1));
    } else {
      Result<void> res = space.Write32(addr, r(d->r1));
      if (!res.ok()) {
        return res.error();
      }
    }
    OMOS_NEXT();
  }
  OMOS_OP(kLdB): {
    uint32_t addr = r(d->r2) + d->imm;
    if (const uint8_t* p = tlb(addr, 1, /*write=*/false)) {
      w(d->r1, *p);
    } else {
      Result<uint8_t> v = space.Read8(addr);
      if (!v.ok()) {
        return v.error();
      }
      w(d->r1, *v);
    }
    OMOS_NEXT();
  }
  OMOS_OP(kStB): {
    uint32_t addr = r(d->r2) + d->imm;
    if (uint8_t* p = tlb(addr, 1, /*write=*/true)) {
      *p = static_cast<uint8_t>(r(d->r1));
    } else {
      Result<void> res = space.Write8(addr, static_cast<uint8_t>(r(d->r1)));
      if (!res.ok()) {
        return res.error();
      }
    }
    OMOS_NEXT();
  }
  OMOS_OP(kLdPc): {
    uint32_t addr = next + d->imm;
    if (const uint8_t* p = tlb(addr, 4, /*write=*/false)) {
      w(d->r1, Load32(p));
    } else {
      Result<uint32_t> v = space.Read32(addr);
      if (!v.ok()) {
        return v.error();
      }
      w(d->r1, *v);
    }
    OMOS_NEXT();
  }
  OMOS_OP(kBeq):
    if (r(d->r1) == r(d->r2)) {
      task.set_pc(next + d->imm);
    }
    return OkResult();
  OMOS_OP(kBne):
    if (r(d->r1) != r(d->r2)) {
      task.set_pc(next + d->imm);
    }
    return OkResult();
  OMOS_OP(kBlt):
    if (static_cast<int32_t>(r(d->r1)) < static_cast<int32_t>(r(d->r2))) {
      task.set_pc(next + d->imm);
    }
    return OkResult();
  OMOS_OP(kBge):
    if (static_cast<int32_t>(r(d->r1)) >= static_cast<int32_t>(r(d->r2))) {
      task.set_pc(next + d->imm);
    }
    return OkResult();
  OMOS_OP(kBltu):
    if (r(d->r1) < r(d->r2)) {
      task.set_pc(next + d->imm);
    }
    return OkResult();
  OMOS_OP(kBgeu):
    if (r(d->r1) >= r(d->r2)) {
      task.set_pc(next + d->imm);
    }
    return OkResult();
  OMOS_OP(kJmp):
    task.set_pc(d->imm);
    return OkResult();
  OMOS_OP(kBr):
    task.set_pc(next + d->imm);
    return OkResult();
  OMOS_OP(kJmpR):
    task.set_pc(r(d->r1));
    return OkResult();
  OMOS_OP(kCall):
    w(kRegLr, next);
    task.set_pc(d->imm);
    return OkResult();
  OMOS_OP(kCallPc):
    w(kRegLr, next);
    task.set_pc(next + d->imm);
    return OkResult();
  OMOS_OP(kCallR):
    w(kRegLr, next);
    task.set_pc(r(d->r1));
    return OkResult();
  OMOS_OP(kRet):
    task.set_pc(r(kRegLr));
    return OkResult();
  OMOS_OP(kPush): {
    uint32_t sp = r(kRegSp) - 4;
    w(kRegSp, sp);
    if (uint8_t* p = tlb(sp, 4, /*write=*/true)) {
      Store32(p, r(d->r1));
    } else {
      Result<void> res = space.Write32(sp, r(d->r1));
      if (!res.ok()) {
        return res.error();
      }
    }
    OMOS_NEXT();
  }
  OMOS_OP(kPop): {
    uint32_t sp = r(kRegSp);
    uint32_t v;
    if (const uint8_t* p = tlb(sp, 4, /*write=*/false)) {
      v = Load32(p);
    } else {
      Result<uint32_t> res = space.Read32(sp);
      if (!res.ok()) {
        return res.error();
      }
      v = *res;
    }
    w(d->r1, v);
    w(kRegSp, sp + 4);
    OMOS_NEXT();
  }
  OMOS_OP(kSys):
    // The syscall may remap, exit, or request a safepoint; end the block.
    return kernel_.Syscall(task, d->imm);

#if !OMOS_ENGINE_DIRECT_THREADED
      case Opcode::kCount:
        return Err(ErrorCode::kExecFault, StrCat("illegal opcode at ", Hex32(pc)));
    }
    if (++d == dend) {
      return OkResult();
    }
    pc = next;
  }
#endif

#undef OMOS_OP
#undef OMOS_NEXT
#undef OMOS_PROLOGUE
}

Result<void> ExecEngine::Run(Task& task, uint64_t budget, uint64_t* executed) {
  TaskCache& st = StateFor(task);
  EngineMetrics& metrics = GetEngineMetrics();
  struct FlushCounts {
    TaskCache& st;
    EngineMetrics& metrics;
    ~FlushCounts() {
      if (st.tlb_hits != 0) {
        metrics.tlb_hits->Add(st.tlb_hits);
      }
      if (st.tlb_misses != 0) {
        metrics.tlb_misses->Add(st.tlb_misses);
      }
      if (st.block_hits != 0) {
        metrics.block_hits->Add(st.block_hits);
      }
      st.tlb_hits = st.tlb_misses = st.block_hits = 0;
    }
  } flush{st, metrics};

  while (task.state() == TaskState::kRunnable && *executed < budget &&
         !task.safepoint_pending()) {
    uint32_t pc = task.pc();
    Result<const Block*> block = LookupBlock(task, st, pc);
    if (!block.ok()) {
      return block.error();
    }
    if (*block == nullptr) {
      // Uncacheable pc (page-crossing fetch, writable or still-absent
      // text): single-step the legacy way.
      OMOS_TRY_VOID(CpuStep(kernel_, task));
      ++*executed;
      continue;
    }
    OMOS_TRY_VOID(ExecuteBlock(task, st, **block, budget, executed));
  }
  return OkResult();
}

}  // namespace omos
