// Predecoded direct-threaded execution engine.
//
// CpuStep() re-fetches and re-decodes 8 bytes on every instruction. For the
// paper's workloads — tight benchmark loops executing the same cached text
// in many tasks — that decode work is pure overhead: text pages are
// immutable once mapped (read|exec, never writable), so each page's
// instructions can be decoded once and reused by every task that maps the
// same frames.
//
// The engine keeps two cache levels:
//
//   - A per-kernel block cache (L2) of predecoded superblocks, keyed by
//     *physical* identity: (frame id, frame generation, page offset). Frame
//     identity is the natural analog of "(image fingerprint, page)" — two
//     tasks that MapShared the same SegmentImage map the same frames and
//     therefore share decoded blocks. The generation (PhysMemory::FrameGen)
//     makes recycled frames self-invalidate: a freed frame's gen is bumped,
//     so stale keys can never match new contents.
//
//   - A per-task direct-mapped block lookaside (L1) keyed by virtual pc,
//     plus a small software TLB in front of data loads/stores. Both are
//     tagged with AddressSpace::map_epoch() and the engine's invalidation
//     epoch, and self-flush on mismatch — map changes, CoW breaks and
//     explicit invalidations (library redefinition, live-upgrade repoint)
//     cost one compare per block entry, not a callback web.
//
// A block is a run of instructions within one text page ending at the first
// control-flow instruction (branch, jump, call, ret, sys, halt), the page
// edge, or an undecodable instruction. Executing a block replicates
// CpuStep's per-instruction order exactly — CountInstruction, profiler
// sample at the pre-execution pc, first-touch text-page billing, pc_next
// update — so retired counts, simulated cycles and profile sample streams
// are byte-identical between engines. Pages mapped writable+executable are
// never cached; they fall back to CpuStep.
#ifndef OMOS_SRC_ENGINE_ENGINE_H_
#define OMOS_SRC_ENGINE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string_view>

#include "src/support/flat_map.h"
#include "src/support/result.h"
#include "src/vm/phys_memory.h"

namespace omos {

class Kernel;
class Task;

// Which execution loop Kernel::RunTask drives.
enum class EngineMode : uint8_t {
  kBlocks,  // predecoded block engine (default)
  kInterp,  // legacy per-instruction CpuStep — the differential oracle
};

// Session default: OMOS_ENGINE=interp selects the legacy interpreter
// (CI runs the full test suite once this way); anything else — including
// unset — selects the block engine.
EngineMode DefaultEngineMode();

// engine.* counters (stable registry pointers, looked up once).
struct EngineMetrics {
  class Counter* blocks_decoded;  // engine.blocks_decoded
  class Counter* block_hits;      // engine.block_hits (L1 + shared-cache hits)
  class Counter* invalidations;   // engine.invalidations
  class Counter* tlb_hits;        // engine.tlb_hits
  class Counter* tlb_misses;      // engine.tlb_misses (slow-path accesses)
};
EngineMetrics& GetEngineMetrics();

// One engine per Kernel: block keys are physical frame ids, which are only
// unique within one PhysMemory, so the cache must not outlive or span
// kernels.
class ExecEngine {
 public:
  explicit ExecEngine(Kernel& kernel);
  ~ExecEngine();
  ExecEngine(const ExecEngine&) = delete;
  ExecEngine& operator=(const ExecEngine&) = delete;

  // Run `task` until it exits/faults, `*executed` reaches `budget`, or a
  // safepoint is requested. Increments `*executed` once per retired
  // instruction and stops exactly at the budget, mid-block if necessary, so
  // RunTask's budget semantics match the legacy loop. Errors are returned
  // un-Faulted, like CpuStep: the caller owns task.Fault().
  Result<void> Run(Task& task, uint64_t budget, uint64_t* executed);

  // Drop every cached block and bump the invalidation epoch so per-task L1
  // caches self-flush. Called on library redefinition and live-upgrade
  // repoint; `reason` labels the trace event.
  void InvalidateAll(std::string_view reason);

  // Forget a destroyed task's TLB/L1 state.
  void DropTask(uint32_t task_id);

  // Introspection (tests).
  size_t CachedBlocks() const;
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

 private:
  struct DecodedInsn;
  struct Block;
  // Named TaskCache, not TaskState: the os layer already uses TaskState for
  // the run-state enum and these methods see both scopes.
  struct TaskCache;

  TaskCache& StateFor(const Task& task);
  // Find or decode the block starting at `pc`. Returns nullptr (ok) when the
  // pc is not cacheable (page-crossing fetch, writable text) and the caller
  // should single-step; returns the error FetchBytes/DecodeInsn would raise
  // so the fault surfaces exactly once, with the legacy message.
  Result<const Block*> LookupBlock(Task& task, TaskCache& st, uint32_t pc);
  Result<void> ExecuteBlock(Task& task, TaskCache& st, const Block& block, uint64_t budget,
                            uint64_t* executed);

  Kernel& kernel_;
  std::atomic<uint64_t> epoch_{1};

  mutable std::mutex mu_;  // guards blocks_
  FlatMap<uint64_t, std::shared_ptr<const Block>> blocks_;

  std::mutex tasks_mu_;  // guards tasks_ (map shape only; states are per-driver)
  std::map<uint32_t, std::unique_ptr<TaskCache>> tasks_;
};

}  // namespace omos

#endif  // OMOS_SRC_ENGINE_ENGINE_H_
