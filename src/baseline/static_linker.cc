#include "src/baseline/static_linker.h"

#include "src/os/loader.h"
#include "src/support/strings.h"
#include "src/vm/phys_memory.h"

namespace omos {

Result<StaticExecutable> StaticLink(const std::string& name, const Module& module,
                                    const CostModel& costs, uint32_t text_base) {
  LayoutSpec layout;
  layout.text_base = text_base;
  layout.entry_symbol = "_start";
  OMOS_TRY(LinkedImage image, LinkImage(module, layout, name));

  StaticExecutable exe;
  uint32_t symbol_count = 0;
  for (const FragmentPtr& frag : module.fragments()) {
    symbol_count += static_cast<uint32_t>(frag->symbols().size());
  }
  exe.link_cost = costs.header_parse * image.stats.fragments +
                  costs.symbol_parse * symbol_count +
                  costs.reloc_apply * image.stats.relocations_applied +
                  costs.symbol_lookup * image.stats.refs_bound;
  // Writing the (large) output binary dominates big static links (§2.1).
  uint32_t total_pages =
      (static_cast<uint32_t>(image.text.size() + image.data.size()) + kPageSize - 1) / kPageSize;
  exe.link_cost += costs.file_read_page * 2 * total_pages;  // write ≈ 2x read
  exe.image = std::move(image);
  return exe;
}

Result<TaskId> StaticExec(Kernel& kernel, const StaticExecutable& exe,
                          std::vector<std::string> args) {
  Task& task = kernel.CreateTask(StrCat("static:", exe.image.name));
  const CostModel& costs = kernel.costs();
  task.BillSys(costs.file_open + costs.header_parse);
  OMOS_TRY_VOID(MapLinkedImage(kernel, task, exe.image, StrCat("static:", exe.image.name)));
  OMOS_TRY_VOID(StartTask(kernel, task, exe.image.entry, args));
  return task.id();
}

}  // namespace omos
