#include "src/baseline/dynlib.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "src/os/loader.h"
#include "src/support/metrics.h"
#include "src/support/strings.h"
#include "src/vasm/assembler.h"

namespace omos {

namespace {

std::string NamesPattern(const std::vector<std::string>& names) {
  std::string pattern = "^(";
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) {
      pattern.push_back('|');
    }
    pattern += names[i];
  }
  pattern += ")$";
  return pattern;
}

// Generate the linkage-table fragment for `routed`:
//   S:          ldpc r12, __got_S ; jmpr r12          (the PLT entry)
//   __rstub_S:  leapc r12, __got_S ; sys 16           (first-call resolver)
//   __got_S:    .word 0                               (primed by rtld)
Result<ObjectFile> GeneratePlt(const std::vector<std::string>& routed) {
  std::ostringstream text;
  std::ostringstream data;
  text << ".text\n";
  data << ".data\n.align 4\n";
  for (const std::string& fn : routed) {
    text << ".global " << fn << "\n"
         << fn << ":\n"
         << "  ldpc r12, __got_" << fn << "\n"
         << "  jmpr r12\n"
         << ".global __rstub_" << fn << "\n"
         << "__rstub_" << fn << ":\n"
         << "  leapc r12, __got_" << fn << "\n"
         << "  sys " << kSysResolve << "\n";
    data << ".global __got_" << fn << "\n" << "__got_" << fn << ": .word 0\n";
  }
  return Assemble(text.str() + data.str(), "plt.s");
}

}  // namespace

Result<DynImage> DynLibBuilder::Build(const std::string& name, const Module& module,
                                      const std::vector<std::string>& routed, uint32_t text_base,
                                      uint32_t data_base, bool dynamic_data,
                                      const std::string& entry) {
  Module m = module;
  if (!routed.empty()) {
    OMOS_TRY(const SymbolSpace* space, module.Space());
    // Defined routed functions keep their implementation under __impl_<S>;
    // the external name is taken over by the PLT entry.
    std::vector<std::string> defined;
    for (const std::string& fn : routed) {
      if (space->FindExport(fn) != nullptr) {
        defined.push_back(fn);
      }
    }
    std::string pattern_all = NamesPattern(routed);
    if (!defined.empty()) {
      m = m.CopyAs(NamesPattern(defined), "__impl_&");
    }
    m = m.Restrict(pattern_all);
    OMOS_TRY(ObjectFile plt, GeneratePlt(routed));
    OMOS_TRY(m, Module::Merge(m, Module::FromObject(
                                     std::make_shared<const ObjectFile>(std::move(plt)))));
  }

  LayoutSpec layout;
  layout.text_base = text_base;
  layout.data_base = data_base;
  layout.entry_symbol = entry;
  layout.record_relocs = true;
  OMOS_TRY(LinkedImage image, LinkImage(m, layout, name));

  DynImage out;
  out.name = name;
  out.dispatch_bytes = static_cast<uint32_t>(routed.size()) * (4 * kInsnSize + 4);

  for (const std::string& fn : routed) {
    const ImageSymbol* got = image.FindSymbol(StrCat("__got_", fn));
    const ImageSymbol* rstub = image.FindSymbol(StrCat("__rstub_", fn));
    if (got == nullptr || rstub == nullptr) {
      return Err(ErrorCode::kInternal, StrCat(name, ": missing linkage symbols for ", fn));
    }
    out.lazy_slots.push_back(LazySlot{got->addr, rstub->addr, fn});
  }

  if (dynamic_data) {
    // Every data-section fixup becomes per-exec rtld work; zero the template
    // so skipping rtld would visibly break execution.
    for (const RelocRecord& record : image.reloc_log) {
      if (record.section != SectionKind::kData) {
        continue;
      }
      uint32_t offset = record.field_addr - image.data_base;
      if (offset + 4 > image.data.size()) {
        continue;  // bss fixups cannot exist; defensive
      }
      out.data_relocs.push_back(DynReloc{record.field_addr, record.value, record.cross_fragment});
      std::fill(image.data.begin() + offset, image.data.begin() + offset + 4, uint8_t{0});
    }
  }
  image.reloc_log.clear();
  out.image = std::move(image);
  return out;
}

Result<DynImage> DynLibBuilder::BuildLibrary(const std::string& name, const Module& module) {
  OMOS_TRY(const SymbolSpace* space, module.Space());
  // Route every global function through the linkage table: exported text
  // definitions plus any external function references.
  std::set<std::string> routed_set;
  for (const auto& [sym_id, exp] : space->exports) {
    const Symbol& sym = module.fragments()[exp.def.fragment]->symbols()[exp.def.symbol];
    if (sym.section == SectionKind::kText) {
      routed_set.emplace(SymbolInterner::Global().Name(sym_id));
    }
  }
  OMOS_TRY(std::vector<std::string> unbound, module.UnboundRefNames());
  for (const std::string& sym_name : unbound) {
    routed_set.insert(sym_name);
  }
  std::vector<std::string> routed(routed_set.begin(), routed_set.end());
  uint32_t text_base = next_lib_text_;
  uint32_t data_base = next_lib_data_;
  next_lib_text_ += 0x01000000;
  next_lib_data_ += 0x01000000;
  return Build(name, module, routed, text_base, data_base, /*dynamic_data=*/true, "");
}

Result<DynImage> DynLibBuilder::BuildExecutable(const std::string& name, const Module& module,
                                                const std::vector<const DynImage*>& libs) {
  // Only unresolved references satisfied by some library are routed; the
  // executable itself is a normal fixed binary, fully bound at build time.
  OMOS_TRY(std::vector<std::string> unbound, module.UnboundRefNames());
  std::vector<std::string> routed;
  DynImage out;
  for (const std::string& sym_name : unbound) {
    for (const DynImage* lib : libs) {
      if (lib->image.FindSymbol(StrCat("__impl_", sym_name)) != nullptr ||
          lib->image.FindSymbol(sym_name) != nullptr) {
        routed.push_back(sym_name);
        break;
      }
    }
  }
  uint32_t text_base = next_exe_text_;
  uint32_t data_base = next_exe_data_;
  next_exe_text_ += 0x00400000;
  next_exe_data_ += 0x00400000;
  OMOS_TRY(out, Build(name, module, routed, text_base, data_base, /*dynamic_data=*/false,
                      "_start"));
  for (const DynImage* lib : libs) {
    out.needed.push_back(lib->name);
  }
  return out;
}

// ---- Rtld -------------------------------------------------------------------

Rtld::Rtld(Kernel& kernel) : kernel_(&kernel) {
  kernel_->SetSysHook(kSysResolve,
                      [this](Kernel& k, Task& t) { return HandleResolve(k, t); });
}

Result<void> Rtld::Install(DynImage image) {
  Installed installed;
  if (!image.image.text.empty()) {
    OMOS_TRY(SegmentImage seg, SegmentImage::Create(kernel_->phys(), image.image.text));
    installed.text_seg = std::move(seg);
  }
  if (!image.image.data.empty()) {
    OMOS_TRY(SegmentImage seg, SegmentImage::Create(kernel_->phys(), image.image.data));
    installed.data_seg = std::move(seg);
  }
  std::string name = image.name;
  installed.dyn = std::move(image);
  images_.insert_or_assign(std::move(name), std::move(installed));
  return OkResult();
}

const DynImage* Rtld::Find(const std::string& name) const {
  auto it = images_.find(name);
  return it == images_.end() ? nullptr : &it->second.dyn;
}

Result<void> Rtld::MapInstalled(Task& task, const Installed& installed, TaskState& state) {
  const CostModel& costs = kernel_->costs();
  const DynImage& dyn = installed.dyn;
  // Per-exec work: open the file, parse its header and symbol table.
  task.BillSys(costs.file_open + costs.header_parse);
  task.BillUser(costs.symbol_parse * dyn.image.symbols.size());
  if (installed.text_seg.has_value()) {
    OMOS_TRY_VOID(MapImageWithSharedText(*kernel_, task, dyn.image, *installed.text_seg,
                                         installed.data_seg ? &*installed.data_seg : nullptr));
  } else {
    OMOS_TRY_VOID(MapLinkedImage(*kernel_, task, dyn.image, ""));
  }
  // Prime every lazy linkage slot to its resolver stub.
  for (const LazySlot& slot : dyn.lazy_slots) {
    OMOS_TRY_VOID(task.space().Write32(slot.got_addr, slot.rstub_addr));
    task.BillUser(costs.got_slot_init);
    state.pending_slots[slot.got_addr] = slot.symbol;
  }
  // Apply the image's data relocations — every exec, in user-mode rtld code.
  // relocations_at_map is the per-exec fixup count the prelink scheme drives
  // to zero: OMOS map paths never touch this (images are relocated once at
  // build), so a warm prelinked exec shows a delta of exactly 0 here.
  static Counter* relocations_at_map =
      MetricsRegistry::Global().GetCounter("link.relocations_at_map");
  relocations_at_map->Add(dyn.lazy_slots.size() + dyn.data_relocs.size());
  for (const DynReloc& reloc : dyn.data_relocs) {
    OMOS_TRY_VOID(task.space().Write32(reloc.addr, reloc.value));
    task.BillUser(costs.reloc_apply + (reloc.needs_lookup ? costs.symbol_lookup : 0));
  }
  state.loaded.push_back(&installed);
  return OkResult();
}

Result<TaskId> Rtld::Exec(const std::string& name, std::vector<std::string> args) {
  auto it = images_.find(name);
  if (it == images_.end()) {
    return Err(ErrorCode::kNotFound, StrCat("no such program: ", name));
  }
  Task& task = kernel_->CreateTask(StrCat("dyn:", name));
  TaskState state;
  // Load the program, then its libraries transitively.
  std::vector<std::string> order;
  std::set<std::string> seen;
  std::vector<std::string> queue{name};
  while (!queue.empty()) {
    std::string cur = queue.front();
    queue.erase(queue.begin());
    if (!seen.insert(cur).second) {
      continue;
    }
    auto found = images_.find(cur);
    if (found == images_.end()) {
      return Err(ErrorCode::kNotFound, StrCat("missing library: ", cur));
    }
    order.push_back(cur);
    for (const std::string& dep : found->second.dyn.needed) {
      queue.push_back(dep);
    }
  }
  for (const std::string& mod : order) {
    OMOS_TRY_VOID(MapInstalled(task, images_.at(mod), state));
  }
  tasks_[task.id()] = std::move(state);
  OMOS_TRY_VOID(StartTask(*kernel_, task, it->second.dyn.image.entry, args));
  return task.id();
}

void Rtld::ReleaseTask(TaskId id) { tasks_.erase(id); }

uint32_t Rtld::TotalDispatchBytes() const {
  uint32_t total = 0;
  for (const auto& [name, installed] : images_) {
    total += installed.dyn.dispatch_bytes;
  }
  return total;
}

Result<void> Rtld::HandleResolve(Kernel& kernel, Task& task) {
  uint32_t got_addr = task.reg(12);
  auto it = tasks_.find(task.id());
  if (it == tasks_.end()) {
    return Err(ErrorCode::kExecFault, StrCat(task.name(), ": resolve without rtld state"));
  }
  auto slot = it->second.pending_slots.find(got_addr);
  if (slot == it->second.pending_slots.end()) {
    return Err(ErrorCode::kExecFault,
               StrCat(task.name(), ": resolve of unknown slot ", Hex32(got_addr)));
  }
  const std::string& symbol = slot->second;
  // Lazy binding is user-mode dynamic-linker work (§8.2).
  task.BillUser(kernel.costs().symbol_lookup);
  uint32_t target = 0;
  std::string impl_name = StrCat("__impl_", symbol);
  for (const Installed* inst : it->second.loaded) {
    if (const ImageSymbol* sym = inst->dyn.image.FindSymbol(impl_name)) {
      target = sym->addr;
      break;
    }
  }
  if (target == 0) {
    for (const Installed* inst : it->second.loaded) {
      if (const ImageSymbol* sym = inst->dyn.image.FindSymbol(symbol)) {
        // Skip the PLT entry that trapped here (same address family): a
        // definition in another image is the real target.
        target = sym->addr;
        break;
      }
    }
  }
  if (target == 0) {
    return Err(ErrorCode::kUnresolvedSymbol, StrCat("lazy resolve failed for ", symbol));
  }
  OMOS_TRY_VOID(task.space().Write32(got_addr, target));
  task.BillUser(kernel.costs().reloc_apply);
  task.set_pc(target);
  ++lazy_resolutions_;
  return OkResult();
}

}  // namespace omos
