// The traditional static-linking baseline: one monolithic executable,
// re-linked from scratch on every build. Exists to quantify the paper's
// "drastically reduced static linking time" benefit (§2.1) and the memory
// comparison benches.
#ifndef OMOS_SRC_BASELINE_STATIC_LINKER_H_
#define OMOS_SRC_BASELINE_STATIC_LINKER_H_

#include <string>
#include <vector>

#include "src/linker/link.h"
#include "src/linker/module.h"
#include "src/os/kernel.h"
#include "src/support/result.h"

namespace omos {

struct StaticExecutable {
  LinkedImage image;
  uint64_t link_cost = 0;  // simulated cycles spent linking
};

// Link `module` (client and all libraries merged) into a static executable.
// The returned link_cost models the repeated work a development cycle pays:
// header parses, symbol processing, relocations, and writing the (large)
// output file.
Result<StaticExecutable> StaticLink(const std::string& name, const Module& module,
                                    const CostModel& costs, uint32_t text_base = 0x00020000);

// exec() a static binary: read + map the whole file (no rtld work at all).
Result<TaskId> StaticExec(Kernel& kernel, const StaticExecutable& exe,
                          std::vector<std::string> args);

}  // namespace omos

#endif  // OMOS_SRC_BASELINE_STATIC_LINKER_H_
