// Serialization for DynImage — the traditional scheme's shared-library /
// dynamic-executable file format (the `.sl`/`.so` analog). The image plus
// its dynamic sections (lazy linkage slots, per-exec data relocations,
// needed-library list) round-trip through bytes, so built libraries can be
// "installed" as SimFs files or shipped between hosts.
#ifndef OMOS_SRC_BASELINE_DYN_CODEC_H_
#define OMOS_SRC_BASELINE_DYN_CODEC_H_

#include <vector>

#include "src/baseline/dynlib.h"
#include "src/support/result.h"

namespace omos {

std::vector<uint8_t> EncodeDynImage(const DynImage& image);
Result<DynImage> DecodeDynImage(const std::vector<uint8_t>& bytes);
bool IsEncodedDynImage(const std::vector<uint8_t>& bytes);

}  // namespace omos

#endif  // OMOS_SRC_BASELINE_DYN_CODEC_H_
