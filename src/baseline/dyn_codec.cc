#include "src/baseline/dyn_codec.h"

#include "src/linker/image_codec.h"
#include "src/objfmt/bytes.h"
#include "src/support/strings.h"

namespace omos {

namespace {
constexpr char kMagic[] = "XDY1";
}

bool IsEncodedDynImage(const std::vector<uint8_t>& bytes) {
  return bytes.size() >= 4 && std::equal(kMagic, kMagic + 4, bytes.begin());
}

std::vector<uint8_t> EncodeDynImage(const DynImage& image) {
  ByteWriter w;
  for (int i = 0; i < 4; ++i) {
    w.U8(static_cast<uint8_t>(kMagic[i]));
  }
  w.Str(image.name);
  w.Raw(EncodeImage(image.image));
  w.U32(static_cast<uint32_t>(image.data_relocs.size()));
  for (const DynReloc& reloc : image.data_relocs) {
    w.U32(reloc.addr);
    w.U32(reloc.value);
    w.U8(reloc.needs_lookup ? 1 : 0);
  }
  w.U32(static_cast<uint32_t>(image.lazy_slots.size()));
  for (const LazySlot& slot : image.lazy_slots) {
    w.U32(slot.got_addr);
    w.U32(slot.rstub_addr);
    w.Str(slot.symbol);
  }
  w.U32(static_cast<uint32_t>(image.needed.size()));
  for (const std::string& name : image.needed) {
    w.Str(name);
  }
  w.U32(image.dispatch_bytes);
  return w.Take();
}

Result<DynImage> DecodeDynImage(const std::vector<uint8_t>& bytes) {
  if (!IsEncodedDynImage(bytes)) {
    return Err(ErrorCode::kParseError, "not an XDY dynamic image (bad magic)");
  }
  ByteReader r(bytes.data() + 4, bytes.size() - 4);
  DynImage image;
  OMOS_TRY(image.name, r.Str());
  OMOS_TRY(std::vector<uint8_t> image_bytes, r.Raw());
  OMOS_TRY(image.image, DecodeImage(image_bytes));
  OMOS_TRY(uint32_t nrelocs, r.U32());
  for (uint32_t i = 0; i < nrelocs; ++i) {
    DynReloc reloc;
    OMOS_TRY(reloc.addr, r.U32());
    OMOS_TRY(reloc.value, r.U32());
    OMOS_TRY(uint8_t lookup, r.U8());
    reloc.needs_lookup = lookup != 0;
    image.data_relocs.push_back(reloc);
  }
  OMOS_TRY(uint32_t nslots, r.U32());
  for (uint32_t i = 0; i < nslots; ++i) {
    LazySlot slot;
    OMOS_TRY(slot.got_addr, r.U32());
    OMOS_TRY(slot.rstub_addr, r.U32());
    OMOS_TRY(slot.symbol, r.Str());
    image.lazy_slots.push_back(std::move(slot));
  }
  OMOS_TRY(uint32_t nneeded, r.U32());
  for (uint32_t i = 0; i < nneeded; ++i) {
    OMOS_TRY(std::string name, r.Str());
    image.needed.push_back(std::move(name));
  }
  OMOS_TRY(image.dispatch_bytes, r.U32());
  return image;
}

}  // namespace omos
