// The traditional shared-library baseline — the comparator in Table 1.
//
// Models an HP-UX/SunOS-style scheme with deferred (-B deferred) binding:
//  * Libraries live at fixed preferred addresses; their text is shared via
//    the kernel page cache.
//  * Every inter-routine call through a global symbol goes through a
//    linkage table (PLT): the call lands on a two-instruction dispatch stub
//    that jumps through a GOT slot in the library's *private* data segment.
//  * At every exec, the runtime loader (rtld) re-parses each library's
//    symbol table, primes all lazy GOT slots to resolver stubs, and applies
//    the library's data relocations — work repeated on *every* invocation,
//    which is exactly what OMOS's cached, pre-bound images avoid.
//  * The first call through each slot traps to the resolver (kSysResolve),
//    which performs a symbol lookup and patches the slot — lazy procedure
//    binding billed as user time, matching the paper's observation that
//    HP-UX's deferred binding inflates user time (§8.2).
#ifndef OMOS_SRC_BASELINE_DYNLIB_H_
#define OMOS_SRC_BASELINE_DYNLIB_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/linker/link.h"
#include "src/linker/module.h"
#include "src/os/kernel.h"
#include "src/support/result.h"
#include "src/vm/address_space.h"

namespace omos {

// A data-segment fixup rtld applies on every exec. `value` is precomputed
// (libraries load at fixed addresses), but the simulated cost of
// recomputing it is billed each time: reloc_apply, plus symbol_lookup when
// the target crossed a module boundary.
struct DynReloc {
  uint32_t addr = 0;
  uint32_t value = 0;
  bool needs_lookup = false;
};

// A lazy linkage-table slot: primed to `rstub_addr` at load, patched to the
// real target on first call.
struct LazySlot {
  uint32_t got_addr = 0;
  uint32_t rstub_addr = 0;
  std::string symbol;
};

// A built shared library or dynamically-linked executable.
struct DynImage {
  std::string name;
  LinkedImage image;  // data template: GOT slots zero, dyn-reloc'd words zero
  std::vector<DynReloc> data_relocs;
  std::vector<LazySlot> lazy_slots;
  std::vector<std::string> needed;  // library names this image requires
  uint32_t dispatch_bytes = 0;      // PLT text + GOT data (memory overhead)
};

// Builds DynImages from modules. Each library gets a fixed placement from
// the builder's internal registry (the "little planning by the system
// manager" of §4.1).
class DynLibBuilder {
 public:
  DynLibBuilder() = default;

  // Build `module` as the shared library `name` at the next fixed library
  // placement. All global function references (internal and external) are
  // routed through a generated PLT; data relocations become per-exec work.
  Result<DynImage> BuildLibrary(const std::string& name, const Module& module);

  // Build a dynamically-linked executable: external function references are
  // routed through the client's PLT; everything else is bound statically at
  // build time (a normal fixed executable). `libs` supplies the export sets
  // used to decide which unresolved references are library functions.
  Result<DynImage> BuildExecutable(const std::string& name, const Module& module,
                                   const std::vector<const DynImage*>& libs);

 private:
  Result<DynImage> Build(const std::string& name, const Module& module,
                         const std::vector<std::string>& routed, uint32_t text_base,
                         uint32_t data_base, bool dynamic_data, const std::string& entry);

  uint32_t next_lib_text_ = 0x60000000;
  uint32_t next_lib_data_ = 0xA0000000;
  uint32_t next_exe_text_ = 0x00020000;
  uint32_t next_exe_data_ = 0x90000000;
};

// The runtime loader. Owns installed images and serves exec + lazy binding.
class Rtld {
 public:
  explicit Rtld(Kernel& kernel);

  Result<void> Install(DynImage image);
  const DynImage* Find(const std::string& name) const;

  // exec() a dynamically-linked program: map it and every needed library,
  // priming linkage tables and applying data relocations — the per-
  // invocation work of the traditional scheme.
  Result<TaskId> Exec(const std::string& name, std::vector<std::string> args);

  void ReleaseTask(TaskId id);

  // Total dispatch-table bytes (PLT+GOT) across installed images — the
  // memory overhead the paper's §4.1 (and Kohl/Paxson) call out.
  uint32_t TotalDispatchBytes() const;

  uint64_t lazy_resolutions() const { return lazy_resolutions_; }

 private:
  struct Installed {
    DynImage dyn;
    std::optional<SegmentImage> text_seg;
    // Master copy of initialized data, mapped CoW per exec. The per-task GOT
    // priming and data relocations below break exactly the pages they touch.
    std::optional<SegmentImage> data_seg;
  };
  struct TaskState {
    // got slot address -> symbol to resolve; which images are loaded.
    std::map<uint32_t, std::string> pending_slots;
    std::vector<const Installed*> loaded;
  };

  Result<void> MapInstalled(Task& task, const Installed& installed, TaskState& state);
  Result<void> HandleResolve(Kernel& kernel, Task& task);

  Kernel* kernel_;
  std::map<std::string, Installed> images_;
  std::map<TaskId, TaskState> tasks_;
  uint64_t lazy_resolutions_ = 0;
};

}  // namespace omos

#endif  // OMOS_SRC_BASELINE_DYNLIB_H_
