// The persistent, content-addressed image store (PR 6).
//
// The paper's economy is memoizing link work; ImageCache memoizes it for
// one server lifetime. The store extends the memo across process death
// (the cross-process move of Zakaria et al., PAPERS.md): linked images are
// durable, verifiable artifacts on a SimFs "disk", addressed by a content
// fingerprint over everything that went into the link — object bytes, link
// recipe, layout/placement inputs. A restarted server probes the store on a
// cache miss and adopts the stored image instead of re-linking the world.
//
// On-disk layout under `root`:
//   <root>/journal            append-only, checksummed record stream
//   <root>/data/<fp16>.img    one serialized StoreRecord per fingerprint
//   <root>/data/<fp16>.tmp    in-flight publish (never read; removed on
//                             recovery)
//   <root>/snapshot           the server's namespace/placement snapshot
//
// Publish protocol (crash-safe write-ahead):
//   1. append INTENT{fp, key, len, hash} to journal;  fsync journal
//   2. write <fp>.tmp;                                fsync <fp>.tmp
//   3. rename <fp>.tmp -> <fp>.img                    (atomic publish)
//   4. append COMMIT{fp} to journal;                  fsync journal
// Recovery replays the journal: a checksum-bad or truncated tail is cut off
// (torn-tail truncation), COMMITted fingerprints are validated against
// their data files and indexed, INTENTs without COMMIT roll forward when
// the data file already landed intact and roll back otherwise. Invalidation
// appends TOMBSTONE records. Every outcome is counted in StoreStats and
// surfaced as store.* metrics; correctness never depends on invalidation —
// a stale record is unreachable because its fingerprint no longer matches
// (see docs/robustness.md, "Durability guarantees").
//
// Crash points: every journal step trips the "store.crash" fault site.
// When it fires the store fails the operation and goes sticky-crashed —
// all further mutation fails fast, modeling process death. Tests then call
// SimFs::DropUnsynced() (the power loss) and open a fresh ImageStore over
// the same disk to exercise recovery.
#ifndef OMOS_SRC_STORE_IMAGE_STORE_H_
#define OMOS_SRC_STORE_IMAGE_STORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/linker/image.h"
#include "src/os/cost_model.h"
#include "src/os/sim_fs.h"
#include "src/support/result.h"

namespace omos {

// A library dependency as persisted: the dep's cache key plus the bases its
// addresses were baked into the depending image at. The adopting server
// re-instantiates each dep and verifies the bases still match before
// trusting the stored program bytes.
struct StoredDep {
  std::string cache_key;
  std::string lib_path;
  uint32_t text_base = 0;
  uint32_t data_base = 0;
};

// A lazy-stub slot as persisted (mirrors core's StubSlot without depending
// on omos_core — the store sits below the server in the layering).
struct StoredStubSlot {
  uint32_t index = 0;
  std::string slot_symbol;
  std::string lib_path;
  std::string symbol;
};

// Everything needed to resurrect a CachedImage without re-linking.
struct StoreRecord {
  std::string cache_key;
  uint64_t fingerprint = 0;
  LinkedImage image;
  std::vector<StoredDep> deps;
  std::vector<StoredStubSlot> stub_slots;
  uint64_t build_cost = 0;
};

// Serialization (magic "OSR1"; image payload via the XEX image codec).
std::vector<uint8_t> EncodeStoreRecord(const StoreRecord& record);
Result<StoreRecord> DecodeStoreRecord(const std::vector<uint8_t>& bytes);

// All counters atomic; registered as a store.* metrics source.
struct StoreStats {
  std::atomic<uint64_t> probes{0};
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> puts{0};
  std::atomic<uint64_t> put_failures{0};
  std::atomic<uint64_t> invalidations{0};
  // Records whose bytes failed hash/decode validation (on Get or replay).
  std::atomic<uint64_t> corrupt_records{0};
  // Journal tails cut off during replay (torn final record).
  std::atomic<uint64_t> torn_tails{0};
  // Recovery outcomes: intents whose data file landed (rolled forward to
  // COMMIT) vs. intents abandoned (tmp/partial state removed).
  std::atomic<uint64_t> recovered_commits{0};
  std::atomic<uint64_t> rolled_back{0};
  // Committed records whose data file did not validate on replay.
  std::atomic<uint64_t> lost_records{0};
  std::atomic<uint64_t> crashes{0};
  std::atomic<uint64_t> replays{0};
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> bytes_read{0};
};

// Thread-safe (one mutex; the store is only touched on cache-miss slow
// paths). Simulated cycles for every operation are billed through the cost
// model into the caller's *cycles out-param.
class ImageStore {
 public:
  // `fs` is "the disk" — it must outlive the store and usually outlives the
  // kernel/server too (that is the point). `costs` may be null (no billing).
  ImageStore(SimFs& fs, std::string root, const CostModel* costs = nullptr);
  ~ImageStore();

  // Replay the journal and recover to a consistent index. Call exactly once
  // before any other operation.
  Result<void> Open();

  // Durably publish `record` under its fingerprint. On any failure the
  // on-disk state stays recoverable (at worst a dangling intent the next
  // Open rolls forward or back).
  Result<void> Put(const StoreRecord& record, uint64_t* cycles = nullptr);

  // Probe by (cache key, fingerprint). A fingerprint hit whose stored key
  // differs (hash collision) or whose bytes fail validation is a miss;
  // corrupt entries are tombstoned so they are not probed again.
  Result<std::optional<StoreRecord>> Get(std::string_view cache_key, uint64_t fingerprint,
                                         uint64_t* cycles = nullptr);

  // Tombstone every record whose cache key starts with `key_prefix` (or
  // equals it). Space management, not correctness: stale records are
  // already unreachable via their fingerprints. Returns how many died.
  Result<size_t> InvalidatePrefix(std::string_view key_prefix, uint64_t* cycles = nullptr);

  // Durably persist / load the server's meta-snapshot (tmp + fsync +
  // atomic rename; the snapshot text is self-checking already).
  Result<void> PutSnapshot(std::string_view snapshot, uint64_t* cycles = nullptr);
  Result<std::string> LoadSnapshot(uint64_t* cycles = nullptr);  // kNotFound if none

  size_t entry_count() const;
  // Sticky after a "store.crash" fire: the simulated process is dead and
  // writes nothing more. Reads also fail — the test reopens a fresh store.
  bool crashed() const;
  const StoreStats& stats() const { return stats_; }

 private:
  struct IndexEntry {
    std::string cache_key;
    uint32_t data_len = 0;
    uint64_t data_hash = 0;
  };

  std::string JournalPath() const;
  std::string SnapshotPath() const;
  std::string DataPath(uint64_t fingerprint) const;
  std::string TmpPath(uint64_t fingerprint) const;

  // One "store.crash" crash point; on fire flips crashed_ and errors.
  Result<void> CrashPoint();
  Result<void> FailIfCrashed() const;

  // Append one framed, checksummed record to the journal (not fsynced).
  Result<void> AppendRecord(uint8_t type, const std::vector<uint8_t>& payload, uint64_t* cycles);
  Result<void> SyncJournal(uint64_t* cycles);
  // Validate `fp`'s data file against (len, hash); returns the bytes.
  Result<std::vector<uint8_t>> ReadValidated(uint64_t fingerprint, const IndexEntry& entry,
                                             uint64_t* cycles);
  void Bill(uint64_t* cycles, uint64_t amount) const;
  uint64_t PageCost(size_t bytes, uint64_t per_page) const;

  Result<void> Replay();

  SimFs* fs_;
  std::string root_;
  const CostModel* costs_;

  mutable std::mutex mu_;
  bool open_ = false;
  bool crashed_ = false;
  std::map<uint64_t, IndexEntry> index_;
  // Latest live fingerprint per cache key (collision-checked on Get).
  std::map<std::string, uint64_t, std::less<>> by_key_;

  StoreStats stats_;
  uint64_t metrics_token_ = 0;
};

}  // namespace omos

#endif  // OMOS_SRC_STORE_IMAGE_STORE_H_
