#include "src/store/image_store.h"

#include <algorithm>
#include <utility>

#include "src/linker/image_codec.h"
#include "src/objfmt/bytes.h"
#include "src/support/faultsim.h"
#include "src/support/metrics.h"
#include "src/support/strings.h"
#include "src/support/trace.h"

namespace omos {

namespace {

// Journal record framing: [magic][type][len payload][fnv64 of type+payload].
constexpr uint32_t kJournalMagic = 0x314C4A4Fu;  // "OJL1"
constexpr uint32_t kRecordMagic = 0x3152534Fu;   // "OSR1" (data-file header)

enum JournalType : uint8_t {
  kIntent = 1,
  kCommit = 2,
  kTombstone = 3,
};

constexpr size_t kIoPage = 4096;

uint64_t JournalSum(uint8_t type, const std::vector<uint8_t>& payload) {
  uint64_t sum = Fnv1aBytes(&type, 1);
  // Chain the payload into the type's hash: same FNV stream, continued.
  constexpr uint64_t kPrime = 1099511628211ull;
  for (uint8_t b : payload) {
    sum = (sum ^ b) * kPrime;
  }
  return sum;
}

std::string FpHex(uint64_t fp) {
  char buf[17];
  static const char* digits = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    buf[i] = digits[fp & 0xF];
    fp >>= 4;
  }
  buf[16] = '\0';
  return std::string(buf);
}

}  // namespace

// ---- StoreRecord codec ------------------------------------------------------

std::vector<uint8_t> EncodeStoreRecord(const StoreRecord& record) {
  ByteWriter w;
  w.U32(kRecordMagic);
  w.Str(record.cache_key);
  w.U64(record.fingerprint);
  w.U64(record.build_cost);
  w.U32(static_cast<uint32_t>(record.deps.size()));
  for (const StoredDep& dep : record.deps) {
    w.Str(dep.cache_key);
    w.Str(dep.lib_path);
    w.U32(dep.text_base);
    w.U32(dep.data_base);
  }
  w.U32(static_cast<uint32_t>(record.stub_slots.size()));
  for (const StoredStubSlot& slot : record.stub_slots) {
    w.U32(slot.index);
    w.Str(slot.slot_symbol);
    w.Str(slot.lib_path);
    w.Str(slot.symbol);
  }
  w.Raw(EncodeImage(record.image));
  return w.Take();
}

Result<StoreRecord> DecodeStoreRecord(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  OMOS_TRY(uint32_t magic, r.U32());
  if (magic != kRecordMagic) {
    return Err(ErrorCode::kParseError, "store record: bad magic");
  }
  StoreRecord record;
  OMOS_TRY(record.cache_key, r.Str());
  OMOS_TRY(record.fingerprint, r.U64());
  OMOS_TRY(record.build_cost, r.U64());
  OMOS_TRY(uint32_t ndeps, r.U32());
  record.deps.reserve(ndeps);
  for (uint32_t i = 0; i < ndeps; ++i) {
    StoredDep dep;
    OMOS_TRY(dep.cache_key, r.Str());
    OMOS_TRY(dep.lib_path, r.Str());
    OMOS_TRY(dep.text_base, r.U32());
    OMOS_TRY(dep.data_base, r.U32());
    record.deps.push_back(std::move(dep));
  }
  OMOS_TRY(uint32_t nslots, r.U32());
  record.stub_slots.reserve(nslots);
  for (uint32_t i = 0; i < nslots; ++i) {
    StoredStubSlot slot;
    OMOS_TRY(slot.index, r.U32());
    OMOS_TRY(slot.slot_symbol, r.Str());
    OMOS_TRY(slot.lib_path, r.Str());
    OMOS_TRY(slot.symbol, r.Str());
    record.stub_slots.push_back(std::move(slot));
  }
  OMOS_TRY(std::vector<uint8_t> image_bytes, r.Raw());
  OMOS_TRY(record.image, DecodeImage(image_bytes));
  return record;
}

// ---- ImageStore -------------------------------------------------------------

ImageStore::ImageStore(SimFs& fs, std::string root, const CostModel* costs)
    : fs_(&fs), root_(std::move(root)), costs_(costs) {
  metrics_token_ = MetricsRegistry::Global().AddSource(
      [this](std::vector<std::pair<std::string, uint64_t>>& out) {
        out.emplace_back("store.probes", stats_.probes.load(std::memory_order_relaxed));
        out.emplace_back("store.hits", stats_.hits.load(std::memory_order_relaxed));
        out.emplace_back("store.misses", stats_.misses.load(std::memory_order_relaxed));
        out.emplace_back("store.puts", stats_.puts.load(std::memory_order_relaxed));
        out.emplace_back("store.put_failures",
                         stats_.put_failures.load(std::memory_order_relaxed));
        out.emplace_back("store.invalidations",
                         stats_.invalidations.load(std::memory_order_relaxed));
        out.emplace_back("store.corrupt_records",
                         stats_.corrupt_records.load(std::memory_order_relaxed));
        out.emplace_back("store.torn_tails", stats_.torn_tails.load(std::memory_order_relaxed));
        out.emplace_back("store.recovered_commits",
                         stats_.recovered_commits.load(std::memory_order_relaxed));
        out.emplace_back("store.rolled_back", stats_.rolled_back.load(std::memory_order_relaxed));
        out.emplace_back("store.lost_records",
                         stats_.lost_records.load(std::memory_order_relaxed));
        out.emplace_back("store.crashes", stats_.crashes.load(std::memory_order_relaxed));
        out.emplace_back("store.replays", stats_.replays.load(std::memory_order_relaxed));
        out.emplace_back("store.bytes_written",
                         stats_.bytes_written.load(std::memory_order_relaxed));
        out.emplace_back("store.bytes_read", stats_.bytes_read.load(std::memory_order_relaxed));
      });
}

ImageStore::~ImageStore() { MetricsRegistry::Global().RemoveSource(metrics_token_); }

std::string ImageStore::JournalPath() const { return root_ + "/journal"; }
std::string ImageStore::SnapshotPath() const { return root_ + "/snapshot"; }
std::string ImageStore::DataPath(uint64_t fp) const {
  return StrCat(root_, "/data/", FpHex(fp), ".img");
}
std::string ImageStore::TmpPath(uint64_t fp) const {
  return StrCat(root_, "/data/", FpHex(fp), ".tmp");
}

void ImageStore::Bill(uint64_t* cycles, uint64_t amount) const {
  if (cycles != nullptr) {
    *cycles += amount;
  }
}

uint64_t ImageStore::PageCost(size_t bytes, uint64_t per_page) const {
  return per_page * ((bytes + kIoPage - 1) / kIoPage + (bytes == 0 ? 1 : 0));
}

Result<void> ImageStore::CrashPoint() {
  if (FaultSim::Trip("store.crash")) {
    crashed_ = true;
    stats_.crashes.fetch_add(1, std::memory_order_relaxed);
    TraceInstant("store.crash", root_);
    return Err(ErrorCode::kUnavailable, "simulated store crash (process died)");
  }
  return OkResult();
}

Result<void> ImageStore::FailIfCrashed() const {
  if (crashed_) {
    return Err(ErrorCode::kUnavailable, "store crashed; reopen to recover");
  }
  return OkResult();
}

Result<void> ImageStore::AppendRecord(uint8_t type, const std::vector<uint8_t>& payload,
                                      uint64_t* cycles) {
  ByteWriter w;
  w.U32(kJournalMagic);
  w.U8(type);
  w.Raw(payload);
  w.U64(JournalSum(type, payload));
  if (costs_ != nullptr) {
    Bill(cycles, costs_->syscall_overhead + costs_->file_write_page);
  }
  return fs_->TryAppendUnsynced(JournalPath(), w.bytes());
}

Result<void> ImageStore::SyncJournal(uint64_t* cycles) {
  if (costs_ != nullptr) {
    Bill(cycles, costs_->fsync);
  }
  return fs_->Fsync(JournalPath());
}

Result<std::vector<uint8_t>> ImageStore::ReadValidated(uint64_t fp, const IndexEntry& entry,
                                                       uint64_t* cycles) {
  OMOS_TRY(const SimFile* file, fs_->Lookup(DataPath(fp)));
  if (costs_ != nullptr) {
    Bill(cycles, costs_->syscall_overhead + costs_->file_open +
                     PageCost(file->bytes.size(), costs_->file_read_page));
  }
  if (file->bytes.size() != entry.data_len ||
      Fnv1aBytes(file->bytes.data(), file->bytes.size()) != entry.data_hash) {
    return Err(ErrorCode::kCorrupted, StrCat("store data file failed validation: ", FpHex(fp)));
  }
  return file->bytes;
}

Result<void> ImageStore::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  if (open_) {
    return Err(ErrorCode::kInvalidArgument, "store already open");
  }
  OMOS_TRY_VOID(FailIfCrashed());
  TraceSpan span("store.replay", root_);
  fs_->Mkdir(root_);
  fs_->Mkdir(root_ + "/data");
  OMOS_TRY_VOID(Replay());
  open_ = true;
  stats_.replays.fetch_add(1, std::memory_order_relaxed);
  return OkResult();
}

Result<void> ImageStore::Replay() {
  if (!fs_->Exists(JournalPath())) {
    fs_->WriteFile(JournalPath(), std::vector<uint8_t>{});  // fresh store
    return OkResult();
  }
  OMOS_TRY(const SimFile* journal, fs_->Lookup(JournalPath()));
  // Copy: truncation below rewrites the file we are reading.
  std::vector<uint8_t> bytes = journal->bytes;

  // Pass 1: parse records until the end or a torn/corrupt tail.
  std::map<uint64_t, IndexEntry> pending;  // INTENT without COMMIT yet
  std::map<uint64_t, IndexEntry> live;     // committed, not tombstoned
  std::vector<std::pair<std::string, uint64_t>> commit_order;
  ByteReader r(bytes);
  size_t good_end = 0;
  bool torn = false;
  while (!r.AtEnd()) {
    auto parse_one = [&]() -> Result<void> {
      OMOS_TRY(uint32_t magic, r.U32());
      if (magic != kJournalMagic) {
        return Err(ErrorCode::kParseError, "journal: bad record magic");
      }
      OMOS_TRY(uint8_t type, r.U8());
      OMOS_TRY(std::vector<uint8_t> payload, r.Raw());
      OMOS_TRY(uint64_t sum, r.U64());
      if (sum != JournalSum(type, payload)) {
        return Err(ErrorCode::kCorrupted, "journal: record checksum mismatch");
      }
      ByteReader p(payload);
      switch (type) {
        case kIntent: {
          OMOS_TRY(uint64_t fp, p.U64());
          IndexEntry entry;
          OMOS_TRY(entry.cache_key, p.Str());
          OMOS_TRY(entry.data_len, p.U32());
          OMOS_TRY(entry.data_hash, p.U64());
          pending[fp] = std::move(entry);
          return OkResult();
        }
        case kCommit: {
          OMOS_TRY(uint64_t fp, p.U64());
          auto it = pending.find(fp);
          if (it != pending.end()) {
            commit_order.emplace_back(it->second.cache_key, fp);
            live[fp] = std::move(it->second);
            pending.erase(it);
          }
          return OkResult();
        }
        case kTombstone: {
          OMOS_TRY(uint64_t fp, p.U64());
          live.erase(fp);
          pending.erase(fp);
          return OkResult();
        }
        default:
          return Err(ErrorCode::kParseError, "journal: unknown record type");
      }
    };
    if (!parse_one().ok()) {
      torn = true;
      break;
    }
    good_end = bytes.size() - r.remaining();
  }
  if (torn) {
    // Cut the tail off durably so the next replay starts clean. The records
    // after the tear were never acknowledged (their final fsync cannot have
    // returned), so dropping them loses nothing that was promised.
    stats_.torn_tails.fetch_add(1, std::memory_order_relaxed);
    fs_->WriteFile(JournalPath(), std::vector<uint8_t>(bytes.begin(), bytes.begin() + good_end));
  }

  // Pass 2: validate committed records against their data files.
  bool appended = false;
  for (auto& [fp, entry] : live) {
    if (ReadValidated(fp, entry, nullptr).ok()) {
      index_[fp] = entry;
    } else {
      // Commit says durable but the bytes do not check out: real corruption
      // (or a tear that also ate the commit's data). Drop it loudly.
      stats_.lost_records.fetch_add(1, std::memory_order_relaxed);
      ByteWriter w;
      w.U64(fp);
      (void)AppendRecord(kTombstone, w.bytes(), nullptr);
      appended = true;
    }
  }
  // Keys map to the latest committed fingerprint, in journal order.
  for (const auto& [key, fp] : commit_order) {
    if (index_.count(fp) != 0) {
      by_key_[key] = fp;
    }
  }
  // Pass 3: intents that never committed — roll forward when the data file
  // already landed intact, roll back (remove partials) otherwise.
  for (auto& [fp, entry] : pending) {
    if (ReadValidated(fp, entry, nullptr).ok()) {
      ByteWriter w;
      w.U64(fp);
      OMOS_TRY_VOID(AppendRecord(kCommit, w.bytes(), nullptr));
      appended = true;
      index_[fp] = entry;
      by_key_[entry.cache_key] = fp;
      stats_.recovered_commits.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_.rolled_back.fetch_add(1, std::memory_order_relaxed);
      if (fs_->Exists(DataPath(fp))) {
        (void)fs_->Remove(DataPath(fp));
      }
      ByteWriter w;
      w.U64(fp);
      (void)AppendRecord(kTombstone, w.bytes(), nullptr);
      appended = true;
    }
  }
  // Stray publish temporaries die (their intents rolled back above, or the
  // torn tail ate the intent entirely).
  if (auto names = fs_->ListDir(root_ + "/data"); names.ok()) {
    for (const std::string& name : *names) {
      if (EndsWith(name, ".tmp")) {
        (void)fs_->Remove(StrCat(root_, "/data/", name));
      }
    }
  }
  if (appended) {
    OMOS_TRY_VOID(SyncJournal(nullptr));
  }
  return OkResult();
}

Result<void> ImageStore::Put(const StoreRecord& record, uint64_t* cycles) {
  std::lock_guard<std::mutex> lock(mu_);
  OMOS_TRY_VOID(FailIfCrashed());
  if (!open_) {
    return Err(ErrorCode::kInvalidArgument, "store not open");
  }
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  auto body = [&]() -> Result<void> {
    TraceSpan span("store.put", record.cache_key);
    std::vector<uint8_t> payload = EncodeStoreRecord(record);
    const uint64_t fp = record.fingerprint;
    IndexEntry entry;
    entry.cache_key = record.cache_key;
    entry.data_len = static_cast<uint32_t>(payload.size());
    entry.data_hash = Fnv1aBytes(payload.data(), payload.size());

    OMOS_TRY_VOID(CrashPoint());  // 1: before the intent reaches the journal
    ByteWriter intent;
    intent.U64(fp);
    intent.Str(entry.cache_key);
    intent.U32(entry.data_len);
    intent.U64(entry.data_hash);
    OMOS_TRY_VOID(AppendRecord(kIntent, intent.bytes(), cycles));
    OMOS_TRY_VOID(CrashPoint());  // 2: intent in page cache only
    OMOS_TRY_VOID(SyncJournal(cycles));
    OMOS_TRY_VOID(CrashPoint());  // 3: intent durable, no data yet
    if (costs_ != nullptr) {
      Bill(cycles, costs_->syscall_overhead + PageCost(payload.size(), costs_->file_write_page));
    }
    OMOS_TRY_VOID(fs_->TryWriteUnsynced(TmpPath(fp), payload));
    OMOS_TRY_VOID(CrashPoint());  // 4: data in page cache only
    if (costs_ != nullptr) {
      Bill(cycles, costs_->fsync);
    }
    OMOS_TRY_VOID(fs_->Fsync(TmpPath(fp)));
    OMOS_TRY_VOID(CrashPoint());  // 5: data durable under the tmp name
    if (costs_ != nullptr) {
      Bill(cycles, costs_->rename);
    }
    OMOS_TRY_VOID(fs_->Rename(TmpPath(fp), DataPath(fp)));
    OMOS_TRY_VOID(CrashPoint());  // 6: published, commit not yet recorded
    ByteWriter commit;
    commit.U64(fp);
    OMOS_TRY_VOID(AppendRecord(kCommit, commit.bytes(), cycles));
    OMOS_TRY_VOID(CrashPoint());  // 7: commit in page cache only
    OMOS_TRY_VOID(SyncJournal(cycles));
    OMOS_TRY_VOID(CrashPoint());  // 8: fully durable; the "process" dies anyway

    stats_.bytes_written.fetch_add(payload.size(), std::memory_order_relaxed);
    index_[fp] = entry;
    by_key_[entry.cache_key] = fp;
    return OkResult();
  };
  Result<void> result = body();
  if (!result.ok() && !crashed_) {
    stats_.put_failures.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

Result<std::optional<StoreRecord>> ImageStore::Get(std::string_view cache_key,
                                                   uint64_t fingerprint, uint64_t* cycles) {
  std::lock_guard<std::mutex> lock(mu_);
  OMOS_TRY_VOID(FailIfCrashed());
  if (!open_) {
    return Err(ErrorCode::kInvalidArgument, "store not open");
  }
  stats_.probes.fetch_add(1, std::memory_order_relaxed);
  TraceSpan span("store.probe", std::string(cache_key));
  auto miss = [&]() -> Result<std::optional<StoreRecord>> {
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
    return std::optional<StoreRecord>();
  };
  auto it = index_.find(fingerprint);
  if (it == index_.end() || it->second.cache_key != cache_key) {
    // Unknown fingerprint, or a fingerprint collision with another key —
    // either way the stored bytes are not this request's image.
    return miss();
  }
  auto drop_corrupt = [&]() {
    stats_.corrupt_records.fetch_add(1, std::memory_order_relaxed);
    TraceInstant("store.corrupt", std::string(cache_key));
    ByteWriter w;
    w.U64(fingerprint);
    (void)AppendRecord(kTombstone, w.bytes(), cycles);
    (void)SyncJournal(cycles);
    (void)fs_->Remove(DataPath(fingerprint));
    by_key_.erase(it->second.cache_key);
    index_.erase(it);
  };
  auto bytes = ReadValidated(fingerprint, it->second, cycles);
  if (!bytes.ok()) {
    if (bytes.error().code() == ErrorCode::kCorrupted) {
      drop_corrupt();
    }
    return miss();
  }
  auto record = DecodeStoreRecord(*bytes);
  if (!record.ok() || record->cache_key != cache_key || record->fingerprint != fingerprint) {
    drop_corrupt();
    return miss();
  }
  if (costs_ != nullptr) {
    Bill(cycles, costs_->header_parse + costs_->symbol_parse * record->image.symbols.size());
  }
  stats_.hits.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_read.fetch_add(bytes->size(), std::memory_order_relaxed);
  return std::optional<StoreRecord>(std::move(*record));
}

Result<size_t> ImageStore::InvalidatePrefix(std::string_view key_prefix, uint64_t* cycles) {
  std::lock_guard<std::mutex> lock(mu_);
  OMOS_TRY_VOID(FailIfCrashed());
  if (!open_) {
    return Err(ErrorCode::kInvalidArgument, "store not open");
  }
  std::vector<std::pair<std::string, uint64_t>> victims;
  for (const auto& [key, fp] : by_key_) {
    if (StartsWith(key, key_prefix)) {
      victims.emplace_back(key, fp);
    }
  }
  if (victims.empty()) {
    return size_t{0};
  }
  OMOS_TRY_VOID(CrashPoint());  // invalidation is journaled like any write
  for (const auto& [key, fp] : victims) {
    ByteWriter w;
    w.U64(fp);
    OMOS_TRY_VOID(AppendRecord(kTombstone, w.bytes(), cycles));
    (void)fs_->Remove(DataPath(fp));
    by_key_.erase(key);
    index_.erase(fp);
    stats_.invalidations.fetch_add(1, std::memory_order_relaxed);
  }
  OMOS_TRY_VOID(CrashPoint());  // tombstones in page cache only
  OMOS_TRY_VOID(SyncJournal(cycles));
  return victims.size();
}

Result<void> ImageStore::PutSnapshot(std::string_view snapshot, uint64_t* cycles) {
  std::lock_guard<std::mutex> lock(mu_);
  OMOS_TRY_VOID(FailIfCrashed());
  if (!open_) {
    return Err(ErrorCode::kInvalidArgument, "store not open");
  }
  TraceSpan span("store.put", "snapshot");
  std::string tmp = SnapshotPath() + ".tmp";
  OMOS_TRY_VOID(CrashPoint());  // before anything lands
  if (costs_ != nullptr) {
    Bill(cycles, costs_->syscall_overhead + PageCost(snapshot.size(), costs_->file_write_page));
  }
  OMOS_TRY_VOID(
      fs_->TryWriteUnsynced(tmp, std::vector<uint8_t>(snapshot.begin(), snapshot.end())));
  OMOS_TRY_VOID(CrashPoint());  // tmp in page cache only
  if (costs_ != nullptr) {
    Bill(cycles, costs_->fsync);
  }
  OMOS_TRY_VOID(fs_->Fsync(tmp));
  OMOS_TRY_VOID(CrashPoint());  // tmp durable, old snapshot still current
  if (costs_ != nullptr) {
    Bill(cycles, costs_->rename);
  }
  OMOS_TRY_VOID(fs_->Rename(tmp, SnapshotPath()));
  OMOS_TRY_VOID(CrashPoint());  // new snapshot published; process dies anyway
  stats_.bytes_written.fetch_add(snapshot.size(), std::memory_order_relaxed);
  return OkResult();
}

Result<std::string> ImageStore::LoadSnapshot(uint64_t* cycles) {
  std::lock_guard<std::mutex> lock(mu_);
  OMOS_TRY_VOID(FailIfCrashed());
  if (!open_) {
    return Err(ErrorCode::kInvalidArgument, "store not open");
  }
  OMOS_TRY(const SimFile* file, fs_->Lookup(SnapshotPath()));
  if (costs_ != nullptr) {
    Bill(cycles, costs_->syscall_overhead + costs_->file_open +
                     PageCost(file->bytes.size(), costs_->file_read_page));
  }
  stats_.bytes_read.fetch_add(file->bytes.size(), std::memory_order_relaxed);
  return std::string(file->bytes.begin(), file->bytes.end());
}

size_t ImageStore::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

bool ImageStore::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

}  // namespace omos
