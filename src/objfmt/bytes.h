// Little-endian byte stream reader/writer used by the binary object codec,
// the archive format, and the IPC wire protocol.
#ifndef OMOS_SRC_OBJFMT_BYTES_H_
#define OMOS_SRC_OBJFMT_BYTES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/result.h"

namespace omos {

class ByteWriter {
 public:
  void U8(uint8_t v) { bytes_.push_back(v); }
  void U32(uint32_t v) {
    bytes_.push_back(static_cast<uint8_t>(v));
    bytes_.push_back(static_cast<uint8_t>(v >> 8));
    bytes_.push_back(static_cast<uint8_t>(v >> 16));
    bytes_.push_back(static_cast<uint8_t>(v >> 24));
  }
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void U64(uint64_t v) {
    U32(static_cast<uint32_t>(v));
    U32(static_cast<uint32_t>(v >> 32));
  }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  void Raw(const std::vector<uint8_t>& data) {
    U32(static_cast<uint32_t>(data.size()));
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& bytes) : data_(bytes.data()), size_(bytes.size()) {}
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Result<uint8_t> U8() {
    if (pos_ + 1 > size_) {
      return Truncated();
    }
    return data_[pos_++];
  }
  Result<uint32_t> U32() {
    if (pos_ + 4 > size_) {
      return Truncated();
    }
    uint32_t v = static_cast<uint32_t>(data_[pos_]) | static_cast<uint32_t>(data_[pos_ + 1]) << 8 |
                 static_cast<uint32_t>(data_[pos_ + 2]) << 16 |
                 static_cast<uint32_t>(data_[pos_ + 3]) << 24;
    pos_ += 4;
    return v;
  }
  Result<int32_t> I32() {
    OMOS_TRY(uint32_t v, U32());
    return static_cast<int32_t>(v);
  }
  Result<uint64_t> U64() {
    OMOS_TRY(uint32_t lo, U32());
    OMOS_TRY(uint32_t hi, U32());
    return static_cast<uint64_t>(hi) << 32 | lo;
  }
  Result<std::string> Str() {
    OMOS_TRY(uint32_t n, U32());
    if (pos_ + n > size_) {
      return Truncated();
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  Result<std::vector<uint8_t>> Raw() {
    OMOS_TRY(uint32_t n, U32());
    if (pos_ + n > size_) {
      return Truncated();
    }
    std::vector<uint8_t> out(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return out;
  }

  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  Error Truncated() const { return Err(ErrorCode::kParseError, "truncated byte stream"); }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace omos

#endif  // OMOS_SRC_OBJFMT_BYTES_H_
