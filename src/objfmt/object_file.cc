#include "src/objfmt/object_file.h"

#include "src/support/strings.h"

namespace omos {

std::string_view SectionKindName(SectionKind kind) {
  switch (kind) {
    case SectionKind::kText:
      return "text";
    case SectionKind::kData:
      return "data";
    case SectionKind::kBss:
      return "bss";
  }
  return "?";
}

std::string_view RelocKindName(RelocKind kind) {
  switch (kind) {
    case RelocKind::kAbs32:
      return "abs32";
    case RelocKind::kPcRel32:
      return "pcrel32";
  }
  return "?";
}

std::string_view SymbolBindingName(SymbolBinding binding) {
  switch (binding) {
    case SymbolBinding::kLocal:
      return "local";
    case SymbolBinding::kGlobal:
      return "global";
    case SymbolBinding::kWeak:
      return "weak";
  }
  return "?";
}

std::string_view SymbolVisibilityName(SymbolVisibility visibility) {
  switch (visibility) {
    case SymbolVisibility::kDefault:
      return "default";
    case SymbolVisibility::kExported:
      return "exported";
    case SymbolVisibility::kHidden:
      return "hidden";
  }
  return "?";
}

ObjectFile::ObjectFile() : ObjectFile("") {}

ObjectFile::ObjectFile(std::string name) : name_(std::move(name)) {
  sections_.resize(kNumSections);
  sections_[0].kind = SectionKind::kText;
  sections_[1].kind = SectionKind::kData;
  sections_[2].kind = SectionKind::kBss;
}

Result<void> ObjectFile::RebuildSymbolIndex() {
  symbol_index_.clear();
  symbol_index_.reserve(symbols_.size());
  for (size_t i = 0; i < symbols_.size(); ++i) {
    symbols_[i].id = SymbolInterner::Global().Intern(symbols_[i].name);
    auto [it, inserted] =
        symbol_index_.try_emplace(symbols_[i].id, static_cast<uint32_t>(i));
    if (!inserted) {
      return Err(ErrorCode::kDuplicateSymbol,
                 StrCat(name_, ": rename produced duplicate symbol ", symbols_[i].name));
    }
  }
  // Renames may have rewritten relocation target names too; drop their
  // cached ids so sid() re-interns on next use.
  for (Section& sec : sections_) {
    for (Relocation& reloc : sec.relocs) {
      reloc.symbol_id = kNoSymId;
    }
  }
  return OkResult();
}

Result<void> ObjectFile::AddSymbol(Symbol symbol) {
  symbol.id = SymbolInterner::Global().Intern(symbol.name);
  auto it = symbol_index_.find(symbol.id);
  if (it != symbol_index_.end()) {
    Symbol& existing = symbols_[it->second];
    if (!existing.defined && symbol.defined) {
      existing = std::move(symbol);
      return OkResult();
    }
    if (existing.defined && symbol.defined) {
      return Err(ErrorCode::kDuplicateSymbol,
                 StrCat("symbol ", existing.name, " defined twice in ", name_));
    }
    return OkResult();  // Reference after definition (or second reference): no-op.
  }
  symbol_index_.try_emplace(symbol.id, static_cast<uint32_t>(symbols_.size()));
  symbols_.push_back(std::move(symbol));
  return OkResult();
}

Result<void> ObjectFile::DefineSymbol(std::string_view name, SymbolBinding binding,
                                      SectionKind section, uint32_t value, uint32_t size) {
  Symbol sym;
  sym.name = std::string(name);
  sym.binding = binding;
  sym.defined = true;
  sym.section = section;
  sym.value = value;
  sym.size = size;
  return AddSymbol(std::move(sym));
}

void ObjectFile::ReferenceSymbol(std::string_view name) {
  Symbol sym;
  sym.name = std::string(name);
  sym.binding = SymbolBinding::kGlobal;
  sym.defined = false;
  (void)AddSymbol(std::move(sym));
}

void ObjectFile::AddReloc(SectionKind section_kind, Relocation reloc) {
  section(section_kind).relocs.push_back(std::move(reloc));
}

const Symbol* ObjectFile::FindSymbol(std::string_view name) const {
  SymId id = SymbolInterner::Global().Find(name);
  return id == kNoSymId ? nullptr : FindSymbol(id);
}

const Symbol* ObjectFile::FindSymbol(SymId id) const {
  auto it = symbol_index_.find(id);
  return it == symbol_index_.end() ? nullptr : &symbols_[it->second];
}

Symbol* ObjectFile::FindMutableSymbol(std::string_view name) {
  SymId id = SymbolInterner::Global().Find(name);
  if (id == kNoSymId) {
    return nullptr;
  }
  auto it = symbol_index_.find(id);
  return it == symbol_index_.end() ? nullptr : &symbols_[it->second];
}

std::vector<const Symbol*> ObjectFile::Definitions() const {
  std::vector<const Symbol*> out;
  for (const Symbol& sym : symbols_) {
    if (sym.defined && sym.binding != SymbolBinding::kLocal) {
      out.push_back(&sym);
    }
  }
  return out;
}

std::vector<const Symbol*> ObjectFile::References() const {
  std::vector<const Symbol*> out;
  for (const Symbol& sym : symbols_) {
    if (!sym.defined) {
      out.push_back(&sym);
    }
  }
  return out;
}

Result<void> ObjectFile::Validate() const {
  for (const Section& sec : sections_) {
    for (const Relocation& reloc : sec.relocs) {
      if (sec.kind == SectionKind::kBss) {
        return Err(ErrorCode::kRelocationError, StrCat(name_, ": relocation in bss"));
      }
      if (reloc.offset + 4 > sec.bytes.size()) {
        return Err(ErrorCode::kRelocationError,
                   StrCat(name_, ": reloc at ", Hex32(reloc.offset), " beyond ",
                          SectionKindName(sec.kind), " size ", sec.bytes.size()));
      }
      if (FindSymbol(reloc.sid()) == nullptr) {
        return Err(ErrorCode::kRelocationError,
                   StrCat(name_, ": reloc names unknown symbol ", reloc.symbol));
      }
    }
  }
  for (const Symbol& sym : symbols_) {
    if (sym.defined && sym.value > section(sym.section).size()) {
      return Err(ErrorCode::kInvalidArgument,
                 StrCat(name_, ": symbol ", sym.name, " value ", Hex32(sym.value), " beyond ",
                        SectionKindName(sym.section), " size ", section(sym.section).size()));
    }
  }
  return OkResult();
}

uint32_t ObjectFile::TotalSize() const {
  uint32_t total = 0;
  for (const Section& sec : sections_) {
    total += sec.size();
  }
  return total;
}

bool ObjectFile::operator==(const ObjectFile& other) const {
  return name_ == other.name_ && sections_ == other.sections_ && symbols_ == other.symbols_ &&
         default_hidden_ == other.default_hidden_;
}

}  // namespace omos
