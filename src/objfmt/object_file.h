// XOF — the OMOS relocatable object format.
//
// The paper's OMOS manipulates HP SOM and a.out files through "an idealized
// interface for symbol manipulation" (§3.3); XOF is that idealized interface
// made concrete. An object file carries exactly three sections (text, data,
// bss), a symbol table, and per-section relocation lists. Fragments produced
// by the assembler, the mini-C compiler, and OMOS's own stub generators are
// all XOF objects; the linker consumes them, and the BFD-style backend
// switch (src/objfmt/backend.h) serializes them.
#ifndef OMOS_SRC_OBJFMT_OBJECT_FILE_H_
#define OMOS_SRC_OBJFMT_OBJECT_FILE_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/flat_map.h"
#include "src/support/interner.h"
#include "src/support/result.h"

namespace omos {

enum class SectionKind : uint8_t { kText = 0, kData = 1, kBss = 2 };
inline constexpr int kNumSections = 3;

std::string_view SectionKindName(SectionKind kind);

enum class RelocKind : uint8_t {
  // *(u32*)(section + offset) = S + A. Absolute address of symbol plus addend.
  kAbs32 = 0,
  // *(u32*)(section + offset) = S + A - (P + 4), where P is the absolute
  // address of the patched field. The ISA defines branch/call targets and
  // pc-relative loads as relative to the *end* of the 8-byte instruction;
  // the imm field sits at instruction+4, so P+4 is exactly the next
  // instruction's address.
  kPcRel32 = 1,
};

std::string_view RelocKindName(RelocKind kind);

// A copyable atomic SymId cell. Fragments are shared (shared_ptr) across
// concurrently-linked modules, so the lazily-cached interned id below is
// written from several threads at once; relaxed atomics make that an
// idempotent cache fill instead of a data race. Copy reads relaxed, so the
// type stays usable in aggregate-initialized structs and std::vector.
struct AtomicSymId {
  std::atomic<SymId> value{kNoSymId};

  AtomicSymId() = default;
  AtomicSymId(SymId id) : value(id) {}
  AtomicSymId(const AtomicSymId& other)
      : value(other.value.load(std::memory_order_relaxed)) {}
  AtomicSymId& operator=(const AtomicSymId& other) {
    value.store(other.value.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
  }
  AtomicSymId& operator=(SymId id) {
    value.store(id, std::memory_order_relaxed);
    return *this;
  }
  SymId load() const { return value.load(std::memory_order_relaxed); }
};

// One fixup: patch the 32-bit field at `offset` in the owning section with
// the value of `symbol` (+ addend), absolute or pc-relative.
struct Relocation {
  uint32_t offset = 0;
  RelocKind kind = RelocKind::kAbs32;
  std::string symbol;
  int32_t addend = 0;
  // Interned id of `symbol`, resolved lazily and cached; reset by
  // ObjectFile::RebuildSymbolIndex after renames. Not part of identity.
  mutable AtomicSymId symbol_id;

  // Interned id of `symbol` (cached so repeated links don't re-hash names).
  // Safe to call concurrently: every racer interns the same string and gets
  // the same id, so the cache fill is idempotent.
  SymId sid() const {
    SymId id = symbol_id.load();
    if (id == kNoSymId) {
      id = SymbolInterner::Global().Intern(symbol);
      symbol_id = id;
    }
    return id;
  }

  bool operator==(const Relocation& other) const {
    return offset == other.offset && kind == other.kind && symbol == other.symbol &&
           addend == other.addend;
  }
};

enum class SymbolBinding : uint8_t { kLocal = 0, kGlobal = 1, kWeak = 2 };

std::string_view SymbolBindingName(SymbolBinding binding);

// Export visibility, orthogonal to binding. Binding says who may *bind* a
// name (linkage); visibility says whether the definition leaves the object
// at all. kDefault defers to the object's default-hidden mode: in an
// all-exported object it exports, in a default-hidden object it does not.
// An effectively-hidden global is still linkable *within* its object (its
// self-references freeze to the local definition) but never enters the
// module's export table, so SymbolSpace, merge, and relocation never index
// it — the paper's selective-extraction story applied to symbol tables.
enum class SymbolVisibility : uint8_t { kDefault = 0, kExported = 1, kHidden = 2 };

std::string_view SymbolVisibilityName(SymbolVisibility visibility);

// A symbol table entry. `defined` entries name a location (`section`,
// `value` = offset within section); undefined entries are references that
// the linker must bind (the paper's "references" as opposed to
// "definitions").
struct Symbol {
  std::string name;
  SymbolBinding binding = SymbolBinding::kGlobal;
  bool defined = false;
  SectionKind section = SectionKind::kText;
  uint32_t value = 0;
  uint32_t size = 0;
  SymbolVisibility visibility = SymbolVisibility::kDefault;
  // Interned id of `name`, maintained by AddSymbol/RebuildSymbolIndex.
  // Not part of identity.
  SymId id = kNoSymId;

  bool operator==(const Symbol& other) const {
    return name == other.name && binding == other.binding && defined == other.defined &&
           section == other.section && value == other.value && size == other.size &&
           visibility == other.visibility;
  }
};

struct Section {
  SectionKind kind = SectionKind::kText;
  std::vector<uint8_t> bytes;   // empty for bss
  uint32_t bss_size = 0;        // only meaningful for kBss
  std::vector<Relocation> relocs;

  uint32_t size() const {
    return kind == SectionKind::kBss ? bss_size : static_cast<uint32_t>(bytes.size());
  }

  bool operator==(const Section&) const = default;
};

// A relocatable object file: the leaf operand of every OMOS m-graph.
class ObjectFile {
 public:
  ObjectFile();
  explicit ObjectFile(std::string name);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  Section& section(SectionKind kind) { return sections_[static_cast<int>(kind)]; }
  const Section& section(SectionKind kind) const { return sections_[static_cast<int>(kind)]; }

  const std::vector<Symbol>& symbols() const { return symbols_; }
  std::vector<Symbol>& mutable_symbols() { return symbols_; }

  // Default-hidden mode (the `.default_hidden` directive): kDefault-visibility
  // globals stop exporting; only explicit `.export` symbols leave the object.
  bool default_hidden() const { return default_hidden_; }
  void set_default_hidden(bool hidden) { default_hidden_ = hidden; }

  // True when `sym` does not export from this object: explicitly hidden, or
  // default-visibility under default-hidden mode. Meaningless for locals
  // (which never export) and undefined symbols.
  bool IsEffectivelyHidden(const Symbol& sym) const {
    return sym.visibility == SymbolVisibility::kHidden ||
           (default_hidden_ && sym.visibility == SymbolVisibility::kDefault);
  }

  // Call after renaming symbols through mutable_symbols(): rebuilds the
  // name index FindSymbol/Validate rely on. Duplicate names are an error.
  Result<void> RebuildSymbolIndex();

  // Adds a symbol; replaces an existing undefined entry of the same name
  // with a defined one. Returns kDuplicateSymbol on two definitions.
  Result<void> AddSymbol(Symbol symbol);

  // Convenience builders used by the assembler and stub generators.
  Result<void> DefineSymbol(std::string_view name, SymbolBinding binding, SectionKind section,
                            uint32_t value, uint32_t size = 0);
  void ReferenceSymbol(std::string_view name);
  void AddReloc(SectionKind section, Relocation reloc);

  const Symbol* FindSymbol(std::string_view name) const;
  const Symbol* FindSymbol(SymId id) const;
  Symbol* FindMutableSymbol(std::string_view name);

  // All defined global/weak symbols (the object's exports).
  std::vector<const Symbol*> Definitions() const;
  // All undefined symbols (the object's imports).
  std::vector<const Symbol*> References() const;

  // Structural checks: relocations in range, reloc symbols present in the
  // table, defined symbols within their section.
  Result<void> Validate() const;

  // Total loadable size in bytes (text + data + bss).
  uint32_t TotalSize() const;

  bool operator==(const ObjectFile& other) const;

 private:
  std::string name_;
  std::vector<Section> sections_;  // indexed by SectionKind
  std::vector<Symbol> symbols_;
  FlatMap<SymId, uint32_t> symbol_index_;  // interned name -> symbols_ slot
  bool default_hidden_ = false;
};

}  // namespace omos

#endif  // OMOS_SRC_OBJFMT_OBJECT_FILE_H_
