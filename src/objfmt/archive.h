// Archives bundle several relocatable objects (the analog of `ar` libraries
// such as /libc/gen, /libc/stdio in Figure 1 of the paper).
#ifndef OMOS_SRC_OBJFMT_ARCHIVE_H_
#define OMOS_SRC_OBJFMT_ARCHIVE_H_

#include <string>
#include <vector>

#include "src/objfmt/object_file.h"
#include "src/support/result.h"

namespace omos {

class Archive {
 public:
  Archive() = default;
  explicit Archive(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::vector<ObjectFile>& members() const { return members_; }

  void Add(ObjectFile object) { members_.push_back(std::move(object)); }

  // The member defining `symbol`, or nullptr. Used for selective extraction.
  const ObjectFile* FindDefiner(std::string_view symbol) const;

  std::vector<uint8_t> Encode() const;
  static Result<Archive> Decode(const std::vector<uint8_t>& bytes);

 private:
  std::string name_;
  std::vector<ObjectFile> members_;
};

}  // namespace omos

#endif  // OMOS_SRC_OBJFMT_ARCHIVE_H_
