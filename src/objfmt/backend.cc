#include "src/objfmt/backend.h"

#include <cctype>
#include <sstream>

#include "src/objfmt/bytes.h"
#include "src/support/strings.h"

namespace omos {

namespace {

constexpr char kBinaryMagic[] = "XOF1";
constexpr char kTextMagic[] = "#xof-text";

class XofBinaryBackend : public ObjectBackend {
 public:
  std::string_view format_name() const override { return "xof-binary"; }

  bool Matches(const std::vector<uint8_t>& bytes) const override {
    return bytes.size() >= 4 && std::equal(kBinaryMagic, kBinaryMagic + 4, bytes.begin());
  }

  Result<std::vector<uint8_t>> Encode(const ObjectFile& object) const override {
    ByteWriter w;
    for (int i = 0; i < 4; ++i) {
      w.U8(static_cast<uint8_t>(kBinaryMagic[i]));
    }
    w.Str(object.name());
    for (int i = 0; i < kNumSections; ++i) {
      const Section& sec = object.section(static_cast<SectionKind>(i));
      w.Raw(sec.bytes);
      w.U32(sec.bss_size);
      w.U32(static_cast<uint32_t>(sec.relocs.size()));
      for (const Relocation& reloc : sec.relocs) {
        w.U32(reloc.offset);
        w.U8(static_cast<uint8_t>(reloc.kind));
        w.Str(reloc.symbol);
        w.I32(reloc.addend);
      }
    }
    w.U32(static_cast<uint32_t>(object.symbols().size()));
    for (const Symbol& sym : object.symbols()) {
      w.Str(sym.name);
      w.U8(static_cast<uint8_t>(sym.binding));
      w.U8(sym.defined ? 1 : 0);
      w.U8(static_cast<uint8_t>(sym.section));
      w.U32(sym.value);
      w.U32(sym.size);
    }
    // Visibility trailer, emitted only when some annotation is non-default:
    // an all-default object encodes to the exact pre-visibility byte stream,
    // so existing goldens, store fingerprints, and mixed-version readers are
    // unaffected. Readers detect the trailer by the stream not being at end.
    bool any_visibility = object.default_hidden();
    for (const Symbol& sym : object.symbols()) {
      any_visibility = any_visibility || sym.visibility != SymbolVisibility::kDefault;
    }
    if (any_visibility) {
      w.U8(object.default_hidden() ? 1 : 0);
      for (const Symbol& sym : object.symbols()) {
        w.U8(static_cast<uint8_t>(sym.visibility));
      }
    }
    return w.Take();
  }

  Result<ObjectFile> Decode(const std::vector<uint8_t>& bytes) const override {
    if (!Matches(bytes)) {
      return Err(ErrorCode::kParseError, "not an xof-binary object (bad magic)");
    }
    ByteReader r(bytes.data() + 4, bytes.size() - 4);
    OMOS_TRY(std::string name, r.Str());
    ObjectFile object(std::move(name));
    for (int i = 0; i < kNumSections; ++i) {
      Section& sec = object.section(static_cast<SectionKind>(i));
      OMOS_TRY(sec.bytes, r.Raw());
      OMOS_TRY(sec.bss_size, r.U32());
      OMOS_TRY(uint32_t nrelocs, r.U32());
      for (uint32_t k = 0; k < nrelocs; ++k) {
        Relocation reloc;
        OMOS_TRY(reloc.offset, r.U32());
        OMOS_TRY(uint8_t kind, r.U8());
        if (kind > static_cast<uint8_t>(RelocKind::kPcRel32)) {
          return Err(ErrorCode::kParseError, StrCat("bad reloc kind ", static_cast<int>(kind)));
        }
        reloc.kind = static_cast<RelocKind>(kind);
        OMOS_TRY(reloc.symbol, r.Str());
        OMOS_TRY(reloc.addend, r.I32());
        sec.relocs.push_back(std::move(reloc));
      }
    }
    OMOS_TRY(uint32_t nsyms, r.U32());
    for (uint32_t k = 0; k < nsyms; ++k) {
      Symbol sym;
      OMOS_TRY(sym.name, r.Str());
      OMOS_TRY(uint8_t binding, r.U8());
      if (binding > static_cast<uint8_t>(SymbolBinding::kWeak)) {
        return Err(ErrorCode::kParseError, StrCat("bad symbol binding ", static_cast<int>(binding)));
      }
      sym.binding = static_cast<SymbolBinding>(binding);
      OMOS_TRY(uint8_t defined, r.U8());
      sym.defined = defined != 0;
      OMOS_TRY(uint8_t section, r.U8());
      if (section >= kNumSections) {
        return Err(ErrorCode::kParseError, StrCat("bad symbol section ", static_cast<int>(section)));
      }
      sym.section = static_cast<SectionKind>(section);
      OMOS_TRY(sym.value, r.U32());
      OMOS_TRY(sym.size, r.U32());
      OMOS_TRY_VOID(object.AddSymbol(std::move(sym)));
    }
    // Optional visibility trailer (see Encode). Symbol names in an encoded
    // object are unique, so AddSymbol appended exactly nsyms entries and the
    // trailer indexes them positionally.
    if (!r.AtEnd()) {
      OMOS_TRY(uint8_t default_hidden, r.U8());
      object.set_default_hidden(default_hidden != 0);
      if (object.symbols().size() != nsyms) {
        return Err(ErrorCode::kParseError, "visibility trailer: symbol count mismatch");
      }
      for (uint32_t k = 0; k < nsyms; ++k) {
        OMOS_TRY(uint8_t visibility, r.U8());
        if (visibility > static_cast<uint8_t>(SymbolVisibility::kHidden)) {
          return Err(ErrorCode::kParseError,
                     StrCat("bad symbol visibility ", static_cast<int>(visibility)));
        }
        object.mutable_symbols()[k].visibility = static_cast<SymbolVisibility>(visibility);
      }
    }
    return object;
  }
};

// Textual format, one record per line:
//   #xof-text
//   object <name>
//   section text|data <hex bytes>
//   bss <size>
//   reloc <section> <offset> <kind> <symbol> <addend>
//   symbol <name> <binding> def|undef <section> <value> <size> [<visibility>]
//   default_hidden
// The visibility token and the default_hidden record are emitted only when
// non-default, keeping default-mode output byte-identical to older encoders.
class XofTextBackend : public ObjectBackend {
 public:
  std::string_view format_name() const override { return "xof-text"; }

  bool Matches(const std::vector<uint8_t>& bytes) const override {
    std::string_view magic(kTextMagic);
    return bytes.size() >= magic.size() &&
           std::equal(magic.begin(), magic.end(), bytes.begin());
  }

  Result<std::vector<uint8_t>> Encode(const ObjectFile& object) const override {
    std::ostringstream out;
    out << kTextMagic << "\n";
    out << "object " << object.name() << "\n";
    for (int i = 0; i < 2; ++i) {
      SectionKind kind = static_cast<SectionKind>(i);
      const Section& sec = object.section(kind);
      out << "section " << SectionKindName(kind) << " ";
      for (uint8_t b : sec.bytes) {
        static const char kHex[] = "0123456789abcdef";
        out << kHex[b >> 4] << kHex[b & 0xf];
      }
      out << "\n";
    }
    out << "bss " << object.section(SectionKind::kBss).bss_size << "\n";
    for (int i = 0; i < kNumSections; ++i) {
      SectionKind kind = static_cast<SectionKind>(i);
      for (const Relocation& reloc : object.section(kind).relocs) {
        out << "reloc " << SectionKindName(kind) << " " << reloc.offset << " "
            << RelocKindName(reloc.kind) << " " << reloc.symbol << " " << reloc.addend << "\n";
      }
    }
    for (const Symbol& sym : object.symbols()) {
      out << "symbol " << sym.name << " " << SymbolBindingName(sym.binding) << " "
          << (sym.defined ? "def" : "undef") << " " << SectionKindName(sym.section) << " "
          << sym.value << " " << sym.size;
      if (sym.visibility != SymbolVisibility::kDefault) {
        out << " " << SymbolVisibilityName(sym.visibility);
      }
      out << "\n";
    }
    if (object.default_hidden()) {
      out << "default_hidden\n";
    }
    std::string s = out.str();
    return std::vector<uint8_t>(s.begin(), s.end());
  }

  Result<ObjectFile> Decode(const std::vector<uint8_t>& bytes) const override {
    if (!Matches(bytes)) {
      return Err(ErrorCode::kParseError, "not an xof-text object (bad magic)");
    }
    std::string text(bytes.begin(), bytes.end());
    std::istringstream in(text);
    std::string line;
    std::getline(in, line);  // magic
    ObjectFile object;
    while (std::getline(in, line)) {
      std::string_view stripped = StripWhitespace(line);
      if (stripped.empty()) {
        continue;
      }
      std::istringstream fields{std::string(stripped)};
      std::string tag;
      fields >> tag;
      if (tag == "object") {
        std::string name;
        fields >> name;
        object.set_name(name);
      } else if (tag == "section") {
        OMOS_TRY_VOID(ParseSection(fields, object));
      } else if (tag == "bss") {
        uint32_t size = 0;
        fields >> size;
        object.section(SectionKind::kBss).bss_size = size;
      } else if (tag == "reloc") {
        OMOS_TRY_VOID(ParseReloc(fields, object));
      } else if (tag == "symbol") {
        OMOS_TRY_VOID(ParseSymbol(fields, object));
      } else if (tag == "default_hidden") {
        object.set_default_hidden(true);
      } else {
        return Err(ErrorCode::kParseError, StrCat("xof-text: unknown record '", tag, "'"));
      }
    }
    return object;
  }

 private:
  static Result<SectionKind> ParseSectionKind(std::string_view name) {
    if (name == "text") {
      return SectionKind::kText;
    }
    if (name == "data") {
      return SectionKind::kData;
    }
    if (name == "bss") {
      return SectionKind::kBss;
    }
    return Err(ErrorCode::kParseError, StrCat("xof-text: bad section '", name, "'"));
  }

  static Result<void> ParseSection(std::istringstream& fields, ObjectFile& object) {
    std::string kind_name;
    std::string hex;
    fields >> kind_name >> hex;
    OMOS_TRY(SectionKind kind, ParseSectionKind(kind_name));
    Section& sec = object.section(kind);
    if (hex.size() % 2 != 0) {
      return Err(ErrorCode::kParseError, "xof-text: odd hex length");
    }
    sec.bytes.clear();
    for (size_t i = 0; i < hex.size(); i += 2) {
      auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9') {
          return c - '0';
        }
        if (c >= 'a' && c <= 'f') {
          return c - 'a' + 10;
        }
        return -1;
      };
      int hi = nibble(hex[i]);
      int lo = nibble(hex[i + 1]);
      if (hi < 0 || lo < 0) {
        return Err(ErrorCode::kParseError, "xof-text: bad hex digit");
      }
      sec.bytes.push_back(static_cast<uint8_t>(hi << 4 | lo));
    }
    return OkResult();
  }

  static Result<void> ParseReloc(std::istringstream& fields, ObjectFile& object) {
    std::string section_name;
    std::string kind_name;
    Relocation reloc;
    fields >> section_name >> reloc.offset >> kind_name >> reloc.symbol >> reloc.addend;
    OMOS_TRY(SectionKind section, ParseSectionKind(section_name));
    if (kind_name == "abs32") {
      reloc.kind = RelocKind::kAbs32;
    } else if (kind_name == "pcrel32") {
      reloc.kind = RelocKind::kPcRel32;
    } else {
      return Err(ErrorCode::kParseError, StrCat("xof-text: bad reloc kind '", kind_name, "'"));
    }
    object.AddReloc(section, std::move(reloc));
    return OkResult();
  }

  static Result<void> ParseSymbol(std::istringstream& fields, ObjectFile& object) {
    Symbol sym;
    std::string binding;
    std::string defined;
    std::string section_name;
    fields >> sym.name >> binding >> defined >> section_name >> sym.value >> sym.size;
    if (binding == "local") {
      sym.binding = SymbolBinding::kLocal;
    } else if (binding == "global") {
      sym.binding = SymbolBinding::kGlobal;
    } else if (binding == "weak") {
      sym.binding = SymbolBinding::kWeak;
    } else {
      return Err(ErrorCode::kParseError, StrCat("xof-text: bad binding '", binding, "'"));
    }
    sym.defined = defined == "def";
    OMOS_TRY(sym.section, ParseSectionKind(section_name));
    std::string visibility;
    if (fields >> visibility) {
      if (visibility == "exported") {
        sym.visibility = SymbolVisibility::kExported;
      } else if (visibility == "hidden") {
        sym.visibility = SymbolVisibility::kHidden;
      } else if (visibility != "default") {
        return Err(ErrorCode::kParseError,
                   StrCat("xof-text: bad visibility '", visibility, "'"));
      }
    }
    return object.AddSymbol(std::move(sym));
  }
};

}  // namespace

std::unique_ptr<ObjectBackend> MakeXofBinaryBackend() {
  return std::make_unique<XofBinaryBackend>();
}

std::unique_ptr<ObjectBackend> MakeXofTextBackend() { return std::make_unique<XofTextBackend>(); }

BackendRegistry::BackendRegistry() = default;

const BackendRegistry& BackendRegistry::Default() {
  static const BackendRegistry* registry = [] {
    auto* r = new BackendRegistry();
    r->Register(MakeXofBinaryBackend());
    r->Register(MakeXofTextBackend());
    return r;
  }();
  return *registry;
}

void BackendRegistry::Register(std::unique_ptr<ObjectBackend> backend) {
  backends_.push_back(std::move(backend));
}

const ObjectBackend* BackendRegistry::Find(std::string_view format_name) const {
  for (const auto& backend : backends_) {
    if (backend->format_name() == format_name) {
      return backend.get();
    }
  }
  return nullptr;
}

Result<ObjectFile> BackendRegistry::DecodeAny(const std::vector<uint8_t>& bytes) const {
  for (const auto& backend : backends_) {
    if (backend->Matches(bytes)) {
      return backend->Decode(bytes);
    }
  }
  return Err(ErrorCode::kParseError, "no backend recognizes this object format");
}

std::vector<std::string_view> BackendRegistry::FormatNames() const {
  std::vector<std::string_view> names;
  names.reserve(backends_.size());
  for (const auto& backend : backends_) {
    names.push_back(backend->format_name());
  }
  return names;
}

std::vector<uint8_t> EncodeObject(const ObjectFile& object) {
  auto result = BackendRegistry::Default().Find("xof-binary")->Encode(object);
  return std::move(result).value();  // Binary encoding cannot fail.
}

Result<ObjectFile> DecodeObject(const std::vector<uint8_t>& bytes) {
  return BackendRegistry::Default().DecodeAny(bytes);
}

}  // namespace omos
