// The object-format switch — OMOS's analog of the GNU BFD library (§7).
//
// The paper: "OMOS requires an understanding of the native object file
// format. Although this understanding has also been encapsulated in an
// object, it remains the most complex and messy portion of the system to
// port." The Backend interface is that encapsulation; two backends ship:
//   * "xof-binary" — the compact binary encoding (the native format)
//   * "xof-text"   — a human-readable textual encoding (stands in for a
//                     foreign format and proves the switch works)
#ifndef OMOS_SRC_OBJFMT_BACKEND_H_
#define OMOS_SRC_OBJFMT_BACKEND_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/objfmt/object_file.h"
#include "src/support/result.h"

namespace omos {

class ObjectBackend {
 public:
  virtual ~ObjectBackend() = default;

  virtual std::string_view format_name() const = 0;

  // True if `bytes` look like this backend's format (magic sniffing).
  virtual bool Matches(const std::vector<uint8_t>& bytes) const = 0;

  virtual Result<std::vector<uint8_t>> Encode(const ObjectFile& object) const = 0;
  virtual Result<ObjectFile> Decode(const std::vector<uint8_t>& bytes) const = 0;
};

// Registry of available backends. `DecodeAny` sniffs the format, mirroring
// bfd_check_format.
class BackendRegistry {
 public:
  // The default registry with all built-in backends registered.
  static const BackendRegistry& Default();

  BackendRegistry();

  void Register(std::unique_ptr<ObjectBackend> backend);

  const ObjectBackend* Find(std::string_view format_name) const;
  Result<ObjectFile> DecodeAny(const std::vector<uint8_t>& bytes) const;

  std::vector<std::string_view> FormatNames() const;

 private:
  std::vector<std::unique_ptr<ObjectBackend>> backends_;
};

// Built-in backend factories.
std::unique_ptr<ObjectBackend> MakeXofBinaryBackend();
std::unique_ptr<ObjectBackend> MakeXofTextBackend();

// Shorthands using the default binary backend.
std::vector<uint8_t> EncodeObject(const ObjectFile& object);
Result<ObjectFile> DecodeObject(const std::vector<uint8_t>& bytes);

}  // namespace omos

#endif  // OMOS_SRC_OBJFMT_BACKEND_H_
