#include "src/objfmt/archive.h"

#include "src/objfmt/backend.h"
#include "src/objfmt/bytes.h"
#include "src/support/strings.h"

namespace omos {

namespace {
constexpr char kArchiveMagic[] = "XAR1";
}

const ObjectFile* Archive::FindDefiner(std::string_view symbol) const {
  for (const ObjectFile& member : members_) {
    const Symbol* sym = member.FindSymbol(symbol);
    if (sym != nullptr && sym->defined && sym->binding != SymbolBinding::kLocal) {
      return &member;
    }
  }
  return nullptr;
}

std::vector<uint8_t> Archive::Encode() const {
  ByteWriter w;
  for (int i = 0; i < 4; ++i) {
    w.U8(static_cast<uint8_t>(kArchiveMagic[i]));
  }
  w.Str(name_);
  w.U32(static_cast<uint32_t>(members_.size()));
  for (const ObjectFile& member : members_) {
    w.Raw(EncodeObject(member));
  }
  return w.Take();
}

Result<Archive> Archive::Decode(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 4 || !std::equal(kArchiveMagic, kArchiveMagic + 4, bytes.begin())) {
    return Err(ErrorCode::kParseError, "not an XAR archive (bad magic)");
  }
  ByteReader r(bytes.data() + 4, bytes.size() - 4);
  OMOS_TRY(std::string name, r.Str());
  Archive archive(std::move(name));
  OMOS_TRY(uint32_t count, r.U32());
  for (uint32_t i = 0; i < count; ++i) {
    OMOS_TRY(std::vector<uint8_t> encoded, r.Raw());
    OMOS_TRY(ObjectFile member, DecodeObject(encoded));
    archive.Add(std::move(member));
  }
  return archive;
}

}  // namespace omos
