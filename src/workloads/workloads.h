// Synthetic workloads matching the shape of the paper's evaluation (§8.2):
//
//  * `ls`       — a small utility: few library references, syscall-light in
//                 its default form, syscall-heavy with "-laF" (stat per
//                 entry + more writes).
//  * `codegen`  — a large program (tens of objects, hundreds of functions)
//                 linking six libraries, most of whose symbols are unused —
//                 the case where per-invocation relocation dominates.
//
// Library code is assembled one function per object (so routine-level
// reordering is possible, §4.1); program logic is written in the OC
// C-subset and compiled.
#ifndef OMOS_SRC_WORKLOADS_WORKLOADS_H_
#define OMOS_SRC_WORKLOADS_WORKLOADS_H_

#include <string>
#include <vector>

#include "src/linker/module.h"
#include "src/objfmt/archive.h"
#include "src/os/sim_fs.h"
#include "src/support/result.h"

namespace omos {

struct WorkloadParams {
  int libc_filler = 120;       // unused "scattered" libc routines
  int alpha_functions = 180;   // per Alpha-1-style library (two of them)
  int libm_functions = 60;
  int libl_functions = 40;
  int libcpp_functions = 150;  // the "libC" stand-in
  int codegen_files = 32;      // paper: codegen is 5,240 lines in 32 files
  int codegen_funcs_per_file = 10;
};

struct Workloads {
  ObjectFile crt0;
  ObjectFile ls_obj;
  std::vector<ObjectFile> codegen_objs;  // per-file objects, main last
  Archive libc;
  Archive alpha1;
  Archive alpha2;
  Archive libm;
  Archive libl;
  Archive libcpp;
};

// Build every workload object. Deterministic.
Result<Workloads> BuildWorkloads(const WorkloadParams& params = WorkloadParams());

// Filesystem content: a directory for ls to list, input files for codegen.
void PopulateLsData(SimFs& fs, int files = 14);
void PopulateCodegenInputs(SimFs& fs);

// Fold an archive's members into one module.
Result<Module> ModuleFromArchive(const Archive& archive);
// Merge loose objects into one module.
Result<Module> ModuleFromObjects(const std::vector<ObjectFile>& objects);

// The expected ls output for a directory populated by PopulateLsData
// (short form), used by integration tests.
std::string ExpectedLsShortOutput(const SimFs& fs, const std::string& dir);

}  // namespace omos

#endif  // OMOS_SRC_WORKLOADS_WORKLOADS_H_
