#include "src/workloads/workloads.h"

#include <sstream>

#include "src/cc/compiler.h"
#include "src/support/strings.h"
#include "src/vasm/assembler.h"

namespace omos {

namespace {

// ---- Hand-written assembly library core (one function per object) -----------

struct AsmFunc {
  const char* name;
  const char* source;
};

constexpr AsmFunc kLibCore[] = {
    {"f_open",
     ".text\n.global f_open\nf_open:\n  sys 3\n  ret\n"},
    {"f_close",
     ".text\n.global f_close\nf_close:\n  sys 4\n  ret\n"},
    {"f_read",
     ".text\n.global f_read\nf_read:\n  sys 2\n  ret\n"},
    {"f_getdents",
     ".text\n.global f_getdents\nf_getdents:\n  sys 6\n  ret\n"},
    {"f_stat",
     ".text\n.global f_stat\nf_stat:\n  sys 7\n  ret\n"},
    {"f_write",
     ".text\n.global f_write\nf_write:\n  sys 1\n  ret\n"},
    {"f_brk",
     ".text\n.global f_brk\nf_brk:\n  sys 5\n  ret\n"},
    {"f_time",
     ".text\n.global f_time\nf_time:\n  sys 8\n  ret\n"},
    {"f_exit",
     ".text\n.global f_exit\nf_exit:\n  sys 0\n  ret\n"},
    {"peek8",
     ".text\n.global peek8\npeek8:\n  ldb r0, [r0+0]\n  ret\n"},
    {"peek32",
     ".text\n.global peek32\npeek32:\n  ld r0, [r0+0]\n  ret\n"},
    {"poke8",
     ".text\n.global poke8\npoke8:\n  stb r1, [r0+0]\n  ret\n"},
    {"poke32",
     ".text\n.global poke32\npoke32:\n  st r1, [r0+0]\n  ret\n"},
    {"strlen",
     ".text\n.global strlen\n"
     "strlen:\n"
     "  mov r1, r0\n"
     "  movi r2, 0\n"
     "strlen_loop:\n"
     "  ldb r3, [r1+0]\n"
     "  beq r3, r2, strlen_done\n"
     "  addi r1, r1, 1\n"
     "  br strlen_loop\n"
     "strlen_done:\n"
     "  sub r0, r1, r0\n"
     "  ret\n"},
    {"strcmp",
     ".text\n.global strcmp\n"
     "strcmp:\n"
     "  movi r3, 0\n"
     "sc_loop:\n"
     "  ldb r2, [r0+0]\n"
     "  ldb r12, [r1+0]\n"
     "  bne r2, r12, sc_diff\n"
     "  beq r2, r3, sc_eq\n"
     "  addi r0, r0, 1\n"
     "  addi r1, r1, 1\n"
     "  br sc_loop\n"
     "sc_diff:\n"
     "  sub r0, r2, r12\n"
     "  ret\n"
     "sc_eq:\n"
     "  movi r0, 0\n"
     "  ret\n"},
    {"strcpy",
     ".text\n.global strcpy\n"
     "strcpy:\n"
     "  movi r3, 0\n"
     "scp_loop:\n"
     "  ldb r2, [r1+0]\n"
     "  stb r2, [r0+0]\n"
     "  beq r2, r3, scp_done\n"
     "  addi r0, r0, 1\n"
     "  addi r1, r1, 1\n"
     "  br scp_loop\n"
     "scp_done:\n"
     "  ret\n"},
    {"path_join",
     ".text\n.global path_join\n"
     "path_join:\n"
     "  movi r3, 0\n"
     "pj_a:\n"
     "  ldb r12, [r1+0]\n"
     "  beq r12, r3, pj_slash\n"
     "  stb r12, [r0+0]\n"
     "  addi r0, r0, 1\n"
     "  addi r1, r1, 1\n"
     "  br pj_a\n"
     "pj_slash:\n"
     "  movi r12, 47\n"
     "  stb r12, [r0+0]\n"
     "  addi r0, r0, 1\n"
     "pj_b:\n"
     "  ldb r12, [r2+0]\n"
     "  beq r12, r3, pj_done\n"
     "  stb r12, [r0+0]\n"
     "  addi r0, r0, 1\n"
     "  addi r2, r2, 1\n"
     "  br pj_b\n"
     "pj_done:\n"
     "  stb r3, [r0+0]\n"
     "  ret\n"},
    {"print_str",
     ".text\n.global print_str\n"
     "print_str:\n"
     "  push lr\n"
     "  push r4\n"
     "  mov r4, r0\n"
     "  call strlen\n"
     "  mov r2, r0\n"
     "  mov r1, r4\n"
     "  movi r0, 1\n"
     "  sys 1\n"
     "  pop r4\n"
     "  pop lr\n"
     "  ret\n"},
    {"print_char",
     ".text\n.global print_char\n"
     "print_char:\n"
     "  lea r1, pc_buf\n"
     "  stb r0, [r1+0]\n"
     "  movi r0, 1\n"
     "  movi r2, 1\n"
     "  sys 1\n"
     "  ret\n"
     ".data\npc_buf: .space 4\n"},
    {"print_num",
     ".text\n.global print_num\n"
     "print_num:\n"
     "  lea r1, pn_end\n"
     "  movi r2, 10\n"
     "pn_loop:\n"
     "  mod r3, r0, r2\n"
     "  addi r3, r3, 48\n"
     "  addi r1, r1, -1\n"
     "  stb r3, [r1+0]\n"
     "  div r0, r0, r2\n"
     "  movi r3, 0\n"
     "  bne r0, r3, pn_loop\n"
     "  lea r2, pn_end\n"
     "  sub r2, r2, r1\n"
     "  movi r0, 1\n"
     "  sys 1\n"
     "  ret\n"
     ".data\npn_buf: .space 16\npn_end: .space 4\n"},
    {"print_mode",
     ".text\n.global print_mode\n"
     "print_mode:\n"
     "  push lr\n"
     "  movi r2, 16384\n"
     "  and r1, r0, r2\n"
     "  movi r3, 0\n"
     "  lea r0, pm_dash\n"
     "  beq r1, r3, pm_go\n"
     "  lea r0, pm_d\n"
     "pm_go:\n"
     "  call print_str\n"
     "  lea r0, pm_perms\n"
     "  call print_str\n"
     "  pop lr\n"
     "  ret\n"
     ".data\npm_d: .asciiz \"d\"\npm_dash: .asciiz \"-\"\npm_perms: .asciiz \"rw-r--r-- \"\n"},
    {"abort",
     ".text\n.global abort\nabort:\n  movi r0, 134\n  sys 0\n  ret\n"},
    {"malloc",
     // Trivial bump allocator over brk.
     ".text\n.global malloc\n"
     "malloc:\n"
     "  lea r2, malloc_cur\n"
     "  ld r1, [r2+0]\n"
     "  movi r3, 0\n"
     "  bne r1, r3, m_have\n"
     "  mov r3, r0\n"        // save size
     "  movi r0, 0\n"
     "  sys 5\n"              // query brk
     "  mov r1, r0\n"
     "  mov r0, r3\n"
     "  movi r3, 0\n"
     "m_have:\n"
     "  st r1, [r2+0]\n"
     "  add r3, r1, r0\n"     // new cur
     "  mov r12, r0\n"
     "  mov r0, r3\n"
     "  sys 5\n"              // extend brk
     "  st r3, [r2+0]\n"
     "  mov r0, r1\n"
     "  ret\n"
     ".data\n.align 4\nmalloc_cur: .word 0\n"},
};

std::string FillerFunc(const std::string& prefix, int index, int total, bool chain) {
  std::ostringstream out;
  out << ".text\n.global " << prefix << index << "\n" << prefix << index << ":\n";
  out << "  movi r1, " << (index % 13 + 3) << "\n";
  out << "  mul r0, r0, r1\n";
  out << "  addi r0, r0, " << (index % 7) << "\n";
  if (chain && index % 5 == 0 && index + 1 < total) {
    out << "  push lr\n  call " << prefix << (index + 1) << "\n  pop lr\n";
  }
  out << "  ret\n";
  return out.str();
}

Result<Archive> BuildFillerLib(const std::string& name, const std::string& prefix, int count) {
  Archive archive(name);
  for (int i = 0; i < count; ++i) {
    OMOS_TRY(ObjectFile obj,
             Assemble(FillerFunc(prefix, i, count, /*chain=*/true), StrCat(prefix, i, ".o")));
    archive.Add(std::move(obj));
  }
  return archive;
}

constexpr char kCrt0[] =
    ".text\n"
    ".global _start\n"
    "_start:\n"
    "  call main\n"
    "  sys 0\n";

constexpr char kLsSource[] = R"(
int dirbuf[160];
int statbuf[4];
int pathbuf[64];

int main(int argc, int argv) {
  int longmode = 0;
  int dir = 0;
  int i = 1;
  while (i < argc) {
    int arg = peek32(argv + i * 4);
    if (peek8(arg) == '-') { longmode = 1; }
    else { dir = arg; }
    i = i + 1;
  }
  if (dir == 0) { dir = "/data"; }
  int fd = f_open(dir);
  if (fd < 0) {
    print_str("ls: cannot open directory\n");
    return 1;
  }
  int n = f_getdents(fd, &dirbuf, 640);
  while (n > 0) {
    int off = 0;
    while (off < n) {
      int rec = &dirbuf + off;
      if (longmode) {
        path_join(&pathbuf, dir, rec + 16);
        if (f_stat(&pathbuf, &statbuf) == 0) {
          print_mode(statbuf[1]);
          print_num(statbuf[0]);
          print_str(" ");
        }
      }
      print_str(rec + 16);
      print_str("\n");
      off = off + 64;
    }
    n = f_getdents(fd, &dirbuf, 640);
  }
  f_close(fd);
  return 0;
}
)";

std::string CodegenFileSource(int file, int funcs, const WorkloadParams& params) {
  std::ostringstream out;
  for (int j = 0; j < funcs; ++j) {
    out << "int cg_" << file << "_" << j << "(int x) {\n";
    out << "  int y = x * " << (file + j + 3) << " + " << (j % 11) << ";\n";
    // Touch each library family so all six get linked and lazily bound.
    switch (j % 4) {
      case 0:
        out << "  y = y + a1_" << (file * 3 + j) % params.alpha_functions << "(x);\n";
        break;
      case 1:
        out << "  y = y + a2_" << (file * 5 + j) % params.alpha_functions << "(x);\n";
        break;
      case 2:
        out << "  y = y + m_" << (file + j) % params.libm_functions << "(x);\n";
        break;
      default:
        out << "  y = y + C_" << (file * 2 + j) % params.libcpp_functions << "(x);\n";
        break;
    }
    if (j + 1 < funcs) {
      out << "  return y + cg_" << file << "_" << (j + 1) << "(x + 1);\n";
    } else {
      out << "  return y;\n";
    }
    out << "}\n";
  }
  return out.str();
}

std::string CodegenMainSource(const WorkloadParams& params) {
  std::ostringstream out;
  out << R"(
int iobuf[64];

int read_input(int path) {
  int fd = f_open(path);
  if (fd < 0) { return 0; }
  int n = f_read(fd, &iobuf, 256);
  int total = 0;
  int j = 0;
  while (j < n) {
    total = total + peek8(&iobuf + j);
    j = j + 1;
  }
  f_close(fd);
  return total;
}

int main(int argc, int argv) {
  int total = read_input("/input/f0");
  total = total + read_input("/input/f1");
  total = total + read_input("/input/f2");
  total = total + l_0(total);
  int i = 0;
  while (i < 140) {
)";
  // Call the chain entry of every 8th file.
  for (int file = 0; file < params.codegen_files; file += 8) {
    out << "    total = total + cg_" << file << "_0(i);\n";
  }
  out << R"(    i = i + 1;
  }
  if (total < 0) { total = 0 - total; }
  print_num(total);
  print_str("\n");
  return 0;
}
)";
  return out.str();
}

Result<ObjectFile> CompileUnit(const std::string& source, const std::string& name) {
  OMOS_TRY(std::string asm_text, CompileC(source));
  return Assemble(asm_text, name);
}

}  // namespace

Result<Workloads> BuildWorkloads(const WorkloadParams& params) {
  Workloads w;
  OMOS_TRY(w.crt0, Assemble(kCrt0, "crt0.o"));
  OMOS_TRY(w.ls_obj, CompileUnit(kLsSource, "ls.o"));

  // libc = handwritten core + filler.
  w.libc = Archive("libc");
  for (const AsmFunc& fn : kLibCore) {
    OMOS_TRY(ObjectFile obj, Assemble(fn.source, StrCat(fn.name, ".o")));
    w.libc.Add(std::move(obj));
  }
  for (int i = 0; i < params.libc_filler; ++i) {
    OMOS_TRY(ObjectFile obj,
             Assemble(FillerFunc("c_", i, params.libc_filler, true), StrCat("c_", i, ".o")));
    w.libc.Add(std::move(obj));
  }

  OMOS_TRY(w.alpha1, BuildFillerLib("alpha1", "a1_", params.alpha_functions));
  OMOS_TRY(w.alpha2, BuildFillerLib("alpha2", "a2_", params.alpha_functions));
  OMOS_TRY(w.libm, BuildFillerLib("libm", "m_", params.libm_functions));
  OMOS_TRY(w.libl, BuildFillerLib("libl", "l_", params.libl_functions));
  OMOS_TRY(w.libcpp, BuildFillerLib("libC", "C_", params.libcpp_functions));

  for (int file = 0; file < params.codegen_files; ++file) {
    OMOS_TRY(ObjectFile obj,
             CompileUnit(CodegenFileSource(file, params.codegen_funcs_per_file, params),
                         StrCat("cg", file, ".o")));
    w.codegen_objs.push_back(std::move(obj));
  }
  OMOS_TRY(ObjectFile main_obj, CompileUnit(CodegenMainSource(params), "cgmain.o"));
  w.codegen_objs.push_back(std::move(main_obj));
  return w;
}

void PopulateLsData(SimFs& fs, int files) {
  fs.Mkdir("/data");
  for (int i = 0; i < files; ++i) {
    std::string name = StrCat("/data/file", i < 10 ? "0" : "", i, ".txt");
    fs.WriteFile(name, std::string(static_cast<size_t>(40 + i * 17), 'x'));
  }
  fs.Mkdir("/data/subdir");
}

void PopulateCodegenInputs(SimFs& fs) {
  fs.Mkdir("/input");
  fs.WriteFile("/input/f0", "alpha geometry model one\n");
  fs.WriteFile("/input/f1", "spline surface patch two\n");
  fs.WriteFile("/input/f2", "nurbs evaluation input three\n");
}

Result<Module> ModuleFromArchive(const Archive& archive) {
  Module m;
  bool first = true;
  for (const ObjectFile& member : archive.members()) {
    Module part = Module::FromObject(std::make_shared<const ObjectFile>(member));
    if (first) {
      m = std::move(part);
      first = false;
    } else {
      OMOS_TRY(m, Module::Merge(m, part));
    }
  }
  return m;
}

Result<Module> ModuleFromObjects(const std::vector<ObjectFile>& objects) {
  Module m;
  bool first = true;
  for (const ObjectFile& object : objects) {
    Module part = Module::FromObject(std::make_shared<const ObjectFile>(object));
    if (first) {
      m = std::move(part);
      first = false;
    } else {
      OMOS_TRY(m, Module::Merge(m, part));
    }
  }
  return m;
}

std::string ExpectedLsShortOutput(const SimFs& fs, const std::string& dir) {
  auto names = fs.ListDir(dir);
  std::string out;
  if (!names.ok()) {
    return out;
  }
  for (const std::string& name : *names) {
    out += name;
    out += "\n";
  }
  return out;
}

}  // namespace omos
