// The link step: lay out a module's fragments at concrete addresses and
// apply relocations through the module's symbol space.
#ifndef OMOS_SRC_LINKER_LINK_H_
#define OMOS_SRC_LINKER_LINK_H_

#include <map>
#include <string>

#include "src/linker/image.h"
#include "src/linker/module.h"
#include "src/support/result.h"

namespace omos {

struct LayoutSpec {
  uint32_t text_base = 0x00100000;
  // 0 = place data on the page after text.
  uint32_t data_base = 0;
  // Entry symbol; empty = image has no entry point (a library).
  std::string entry_symbol;
  // Leave unbound references unpatched (recorded in image.unresolved)
  // instead of failing — used when stubs will satisfy them at run time.
  bool allow_unresolved = false;
  // Record every applied relocation in image.reloc_log (baseline rtld).
  bool record_relocs = false;
  // Pre-bound external addresses: how a client links against a library that
  // is a *separate* cached image (the self-contained scheme, §4.1). A
  // reference unbound within the module resolves here before being declared
  // unresolved.
  std::map<std::string, uint32_t> externals;
};

// Produce a LinkedImage from `module`. A final bind pass resolves any
// references that became bindable after view operations (e.g. rename).
Result<LinkedImage> LinkImage(const Module& module, const LayoutSpec& layout, std::string name);

}  // namespace omos

#endif  // OMOS_SRC_LINKER_LINK_H_
