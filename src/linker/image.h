// LinkedImage: the output of the link step — bytes at final addresses,
// ready to be turned into mappable segments. This is what OMOS caches: "by
// treating executables as a cache, OMOS avoids unnecessary repetition of
// work" (§1).
#ifndef OMOS_SRC_LINKER_IMAGE_H_
#define OMOS_SRC_LINKER_IMAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/objfmt/object_file.h"
#include "src/support/flat_map.h"
#include "src/support/interner.h"

namespace omos {

struct ImageSymbol {
  std::string name;
  uint32_t addr = 0;
  uint32_t size = 0;
  SectionKind section = SectionKind::kText;
};

struct LinkStats {
  uint32_t fragments = 0;
  uint32_t relocations_applied = 0;
  uint32_t symbols_exported = 0;
  uint32_t refs_bound = 0;
};

// One relocation as applied by the link step (recorded when
// LayoutSpec::record_relocs is set). The traditional shared-library baseline
// uses this log to turn static fixups into per-invocation dynamic ones.
struct RelocRecord {
  SectionKind section = SectionKind::kText;
  uint32_t field_addr = 0;  // absolute address of the patched 32-bit field
  uint32_t value = 0;       // the value written
  std::string symbol;
  bool pcrel = false;
  bool cross_fragment = false;  // bound through the module symbol space
};

struct LinkedImage {
  std::string name;
  uint32_t text_base = 0;
  uint32_t data_base = 0;  // initialized data; bss follows immediately
  uint32_t bss_size = 0;
  uint32_t entry = 0;      // 0 when no entry symbol was requested
  std::vector<uint8_t> text;
  std::vector<uint8_t> data;
  std::vector<ImageSymbol> symbols;      // exported definitions at final addresses
  std::vector<std::string> unresolved;   // refs left unbound (partial links only)
  std::vector<RelocRecord> reloc_log;    // only when LayoutSpec::record_relocs
  LinkStats stats;

  uint32_t text_end() const { return text_base + static_cast<uint32_t>(text.size()); }
  uint32_t data_end() const { return data_base + static_cast<uint32_t>(data.size()) + bss_size; }

  // O(1) when the hash index is current (BuildSymbolIndex after the image
  // stops changing — LinkImage and cache Put both do); otherwise a linear
  // scan. FindSymbol never mutates the image, so concurrent lookups on a
  // published (cached) image are race-free.
  const ImageSymbol* FindSymbol(std::string_view name) const;
  const ImageSymbol* FindSymbol(SymId id) const;

  // (Re)builds the FindSymbol index: interned name -> symbols slot. Call
  // once after `symbols` reaches its final state and before the image is
  // shared across threads; not thread-safe against concurrent FindSymbol.
  void BuildSymbolIndex();

  FlatMap<SymId, uint32_t> symbol_index;
  size_t indexed_count = ~size_t{0};
};

}  // namespace omos

#endif  // OMOS_SRC_LINKER_IMAGE_H_
