#include "src/linker/image_codec.h"

#include "src/objfmt/bytes.h"
#include "src/support/strings.h"

namespace omos {

namespace {
constexpr char kMagic[] = "XEX1";
}

bool IsEncodedImage(const std::vector<uint8_t>& bytes) {
  return bytes.size() >= 4 && std::equal(kMagic, kMagic + 4, bytes.begin());
}

std::vector<uint8_t> EncodeImage(const LinkedImage& image) {
  ByteWriter w;
  for (int i = 0; i < 4; ++i) {
    w.U8(static_cast<uint8_t>(kMagic[i]));
  }
  w.Str(image.name);
  w.U32(image.text_base);
  w.U32(image.data_base);
  w.U32(image.bss_size);
  w.U32(image.entry);
  w.Raw(image.text);
  w.Raw(image.data);
  w.U32(static_cast<uint32_t>(image.symbols.size()));
  for (const ImageSymbol& sym : image.symbols) {
    w.Str(sym.name);
    w.U32(sym.addr);
    w.U32(sym.size);
    w.U8(static_cast<uint8_t>(sym.section));
  }
  w.U32(static_cast<uint32_t>(image.unresolved.size()));
  for (const std::string& name : image.unresolved) {
    w.Str(name);
  }
  return w.Take();
}

Result<LinkedImage> DecodeImage(const std::vector<uint8_t>& bytes) {
  if (!IsEncodedImage(bytes)) {
    return Err(ErrorCode::kParseError, "not an XEX executable (bad magic)");
  }
  ByteReader r(bytes.data() + 4, bytes.size() - 4);
  LinkedImage image;
  OMOS_TRY(image.name, r.Str());
  OMOS_TRY(image.text_base, r.U32());
  OMOS_TRY(image.data_base, r.U32());
  OMOS_TRY(image.bss_size, r.U32());
  OMOS_TRY(image.entry, r.U32());
  OMOS_TRY(image.text, r.Raw());
  OMOS_TRY(image.data, r.Raw());
  OMOS_TRY(uint32_t nsyms, r.U32());
  for (uint32_t i = 0; i < nsyms; ++i) {
    ImageSymbol sym;
    OMOS_TRY(sym.name, r.Str());
    OMOS_TRY(sym.addr, r.U32());
    OMOS_TRY(sym.size, r.U32());
    OMOS_TRY(uint8_t section, r.U8());
    if (section >= kNumSections) {
      return Err(ErrorCode::kParseError, StrCat("bad symbol section ", int(section)));
    }
    sym.section = static_cast<SectionKind>(section);
    image.symbols.push_back(std::move(sym));
  }
  OMOS_TRY(uint32_t nunresolved, r.U32());
  for (uint32_t i = 0; i < nunresolved; ++i) {
    OMOS_TRY(std::string name, r.Str());
    image.unresolved.push_back(std::move(name));
  }
  // Index now: the decoded table is final, and indexing here keeps
  // FindSymbol O(1) (and read-only) however the image is used.
  image.BuildSymbolIndex();
  return image;
}

}  // namespace omos
