#include "src/linker/link.h"

#include <algorithm>
#include <optional>

#include "src/support/strings.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"
#include "src/vm/phys_memory.h"

namespace omos {

namespace {

constexpr uint32_t kTextAlign = 8;  // instruction size
constexpr uint32_t kDataAlign = 4;

uint32_t AlignUp(uint32_t value, uint32_t align) { return (value + align - 1) / align * align; }

// Per-fragment, per-section base offsets within the output segments.
struct FragmentLayout {
  uint32_t text = 0;
  uint32_t data = 0;
  uint32_t bss = 0;
};

}  // namespace

Result<LinkedImage> LinkImage(const Module& module, const LayoutSpec& layout, std::string name) {
  TraceSpan trace("link.image", name);
  // Merge phase: bind the module's symbol spaces into one namespace.
  auto bind_traced = [&] {
    TraceSpan merge("link.merge");
    return module.Bind();
  };
  OMOS_TRY(Module bound, bind_traced());
  OMOS_TRY(const SymbolSpace* space, bound.Space());
  const std::vector<FragmentPtr>& fragments = bound.fragments();

  LinkedImage image;
  image.name = std::move(name);
  image.text_base = layout.text_base;
  image.stats.fragments = static_cast<uint32_t>(fragments.size());

  // Rekey the externals once so the per-relocation lookup below is a flat
  // u32 probe instead of a string-keyed tree walk.
  FlatMap<SymId, uint32_t> externals;
  externals.reserve(layout.externals.size());
  for (const auto& [ext_name, addr] : layout.externals) {
    externals.insert_or_assign(SymbolInterner::Global().Intern(ext_name), addr);
  }

  // Pass 1: assign every fragment's sections an offset in the output.
  std::vector<FragmentLayout> offsets(fragments.size());
  uint32_t text_size = 0;
  uint32_t data_size = 0;
  uint32_t bss_size = 0;
  for (size_t i = 0; i < fragments.size(); ++i) {
    const ObjectFile& frag = *fragments[i];
    text_size = AlignUp(text_size, kTextAlign);
    data_size = AlignUp(data_size, kDataAlign);
    bss_size = AlignUp(bss_size, kDataAlign);
    offsets[i].text = text_size;
    offsets[i].data = data_size;
    offsets[i].bss = bss_size;
    text_size += frag.section(SectionKind::kText).size();
    data_size += frag.section(SectionKind::kData).size();
    bss_size += frag.section(SectionKind::kBss).size();
  }

  image.data_base =
      layout.data_base != 0 ? layout.data_base : PageAlignUp(image.text_base + text_size);
  if (image.data_base < image.text_base + text_size && data_size + bss_size > 0) {
    return Err(ErrorCode::kInvalidArgument,
               StrCat(image.name, ": data base ", Hex32(image.data_base), " overlaps text"));
  }
  image.bss_size = bss_size;

  // Absolute address of a (fragment, section, offset) location.
  auto address_of = [&](uint32_t frag, SectionKind section, uint32_t value) -> uint32_t {
    switch (section) {
      case SectionKind::kText:
        return image.text_base + offsets[frag].text + value;
      case SectionKind::kData:
        return image.data_base + offsets[frag].data + value;
      case SectionKind::kBss:
        return image.data_base + data_size + offsets[frag].bss + value;
    }
    return 0;
  };

  // Passes 2+3, fanned out per fragment: copy the fragment's section bytes
  // and apply its relocations. Each fragment writes only its own disjoint
  // [offsets[i], offsets[i] + size) spans of image.text/image.data, so
  // fragments are independent; everything order-sensitive (stats, logs,
  // unresolved names, the first error) accumulates in a per-fragment result
  // and is reduced in fragment order below. Output bytes land at positions
  // that depend only on the layout, never on scheduling, so the image —
  // and the golden fingerprints over it — is byte-identical to the serial
  // link.
  struct FragmentResult {
    uint32_t relocations_applied = 0;
    uint32_t refs_bound = 0;
    std::vector<std::string> unresolved;
    std::vector<RelocRecord> reloc_log;
    std::optional<Error> error;  // first failed reloc of this fragment
  };
  std::vector<FragmentResult> results(fragments.size());
  image.text.assign(text_size, 0);
  image.data.assign(data_size, 0);

  auto link_fragment = [&](uint32_t i) {
    const ObjectFile& frag = *fragments[i];
    FragmentResult& res = results[i];
    const auto& text = frag.section(SectionKind::kText).bytes;
    std::copy(text.begin(), text.end(), image.text.begin() + offsets[i].text);
    const auto& data = frag.section(SectionKind::kData).bytes;
    std::copy(data.begin(), data.end(), image.data.begin() + offsets[i].data);

    for (int s = 0; s < 2; ++s) {  // text and data carry relocations
      SectionKind section = static_cast<SectionKind>(s);
      std::vector<uint8_t>& out = section == SectionKind::kText ? image.text : image.data;
      uint32_t section_off =
          section == SectionKind::kText ? offsets[i].text : offsets[i].data;
      uint32_t section_base = section == SectionKind::kText ? image.text_base : image.data_base;
      for (const Relocation& reloc : frag.section(section).relocs) {
        const Symbol* sym = frag.FindSymbol(reloc.sid());
        if (sym == nullptr) {
          res.error = Error{ErrorCode::kRelocationError,
                            StrCat(frag.name(), ": reloc names unknown symbol ", reloc.symbol)};
          return;
        }
        uint32_t target = 0;
        bool resolved = false;
        const RefRecord* ref = nullptr;
        if (sym->defined && sym->binding == SymbolBinding::kLocal) {
          target = address_of(i, sym->section, sym->value);
          resolved = true;
        } else {
          ref = space->FindRef(i, reloc.sid());
          if (ref != nullptr && ref->state != BindState::kUnbound) {
            DefId def = ref->target;
            const Symbol& def_sym = fragments[def.fragment]->symbols()[def.symbol];
            target = address_of(def.fragment, def_sym.section, def_sym.value);
            resolved = true;
            ++res.refs_bound;
          }
        }
        if (!resolved) {
          SymId want = ref != nullptr ? ref->ext_name : reloc.sid();
          auto ext = externals.find(want);
          if (ext != externals.end()) {
            target = ext->second;
            resolved = true;
            ++res.refs_bound;
          }
          if (!resolved) {
            std::string_view want_name = SymbolInterner::Global().Name(want);
            if (!layout.allow_unresolved) {
              res.error = Error{ErrorCode::kUnresolvedSymbol,
                                StrCat(image.name, ": unresolved reference to ", want_name,
                                       " from ", frag.name())};
              return;
            }
            res.unresolved.emplace_back(want_name);
            continue;
          }
        }
        uint32_t field_addr = section_base + section_off + reloc.offset;
        uint32_t value;
        if (reloc.kind == RelocKind::kAbs32) {
          value = target + static_cast<uint32_t>(reloc.addend);
        } else {
          value = target + static_cast<uint32_t>(reloc.addend) - (field_addr + 4);
        }
        uint32_t at = section_off + reloc.offset;
        out[at] = static_cast<uint8_t>(value);
        out[at + 1] = static_cast<uint8_t>(value >> 8);
        out[at + 2] = static_cast<uint8_t>(value >> 16);
        out[at + 3] = static_cast<uint8_t>(value >> 24);
        ++res.relocations_applied;
        if (layout.record_relocs) {
          bool cross = !(sym->defined && sym->binding == SymbolBinding::kLocal);
          res.reloc_log.push_back(RelocRecord{section, field_addr, value, reloc.symbol,
                                              reloc.kind == RelocKind::kPcRel32, cross});
        }
      }
    }
  };
  {
    TraceSpan relocate("link.relocate");
    ThreadPool::Global().ParallelFor(
        fragments.size(), /*grain=*/1, [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            link_fragment(static_cast<uint32_t>(i));
          }
        });
  }

  // Ordered reduce: the lowest-numbered fragment's error is the one the
  // serial link would have hit first; logs and counters concatenate in
  // fragment order, matching the serial pass exactly.
  for (FragmentResult& res : results) {
    if (res.error.has_value()) {
      return *std::move(res.error);
    }
    image.stats.relocations_applied += res.relocations_applied;
    image.stats.refs_bound += res.refs_bound;
    for (std::string& unresolved_name : res.unresolved) {
      image.unresolved.push_back(std::move(unresolved_name));
    }
    for (RelocRecord& record : res.reloc_log) {
      image.reloc_log.push_back(std::move(record));
    }
  }

  // Emit phase: exported symbols at their final addresses, in name order
  // (the flat table has no intrinsic order; emission must stay
  // byte-identical to the ordered-map output).
  TraceSpan emit("link.emit");
  std::vector<std::pair<std::string_view, const Export*>> sorted_exports;
  sorted_exports.reserve(space->exports.size());
  for (const auto& [export_id, exp] : space->exports) {
    sorted_exports.emplace_back(SymbolInterner::Global().Name(export_id), &exp);
  }
  std::sort(sorted_exports.begin(), sorted_exports.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [ext_name, exp] : sorted_exports) {
    const Symbol& sym = fragments[exp->def.fragment]->symbols()[exp->def.symbol];
    image.symbols.push_back(
        ImageSymbol{std::string(ext_name), address_of(exp->def.fragment, sym.section, sym.value),
                    sym.size, sym.section});
  }
  image.stats.symbols_exported = static_cast<uint32_t>(image.symbols.size());
  // The symbol table is final; build the lookup index before the image is
  // published (FindSymbol on an indexed image is read-only and so safe to
  // call from many threads at once).
  image.BuildSymbolIndex();

  if (!layout.entry_symbol.empty()) {
    const ImageSymbol* entry = image.FindSymbol(layout.entry_symbol);
    if (entry == nullptr) {
      return Err(ErrorCode::kUnresolvedSymbol,
                 StrCat(image.name, ": no entry symbol ", layout.entry_symbol));
    }
    image.entry = entry->addr;
  }

  // Deduplicate unresolved names for stable reporting.
  std::sort(image.unresolved.begin(), image.unresolved.end());
  image.unresolved.erase(std::unique(image.unresolved.begin(), image.unresolved.end()),
                         image.unresolved.end());
  return image;
}

}  // namespace omos
