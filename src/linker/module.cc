#include "src/linker/module.h"

#include <algorithm>

#include "src/support/metrics.h"
#include "src/support/regex_cache.h"
#include "src/support/strings.h"

namespace omos {

namespace {

// '&' in a replacement substitutes the original symbol name, e.g.
// rename("^_", "wrapped&") turns _read into wrapped_read.
std::string Substitute(const std::string& replacement, std::string_view original) {
  std::string out;
  for (char c : replacement) {
    if (c == '&') {
      out += original;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string_view NameOf(SymId id) { return SymbolInterner::Global().Name(id); }

// Interned id of a symbol-table entry (AddSymbol fills Symbol::id, but a
// hand-built table may not have gone through it).
SymId IdOf(const Symbol& sym) {
  return sym.id != kNoSymId ? sym.id : SymbolInterner::Global().Intern(sym.name);
}

}  // namespace

Module Module::FromObject(FragmentPtr object) {
  Module m;
  auto fragments = std::make_shared<std::vector<FragmentPtr>>();
  fragments->push_back(object);
  m.fragments_ = std::move(fragments);

  auto space = std::make_shared<SymbolSpace>();
  const auto& symbols = object->symbols();
  space->exports.reserve(symbols.size());
  space->refs.reserve(symbols.size());
  // Exports: all defined non-local symbols whose visibility lets them leave
  // the object. Effectively-hidden globals (explicit `.hidden`, or kDefault
  // under default-hidden mode) never enter the export table, so every
  // downstream SymbolSpace copy, merge, and view pass skips them entirely —
  // the symbol-table half of selective extraction.
  static Counter* pruned_symbols = MetricsRegistry::Global().GetCounter("link.pruned_symbols");
  for (uint32_t i = 0; i < symbols.size(); ++i) {
    const Symbol& sym = symbols[i];
    if (sym.defined && sym.binding != SymbolBinding::kLocal) {
      if (object->IsEffectivelyHidden(sym)) {
        pruned_symbols->Add();
        continue;
      }
      space->exports.insert_or_assign(IdOf(sym),
                                      Export{DefId{0, i}, sym.binding == SymbolBinding::kWeak});
    }
  }
  // The set of symbol ids any relocation names — one pass over the reloc
  // lists instead of a per-symbol scan.
  FlatMap<SymId, uint8_t> referenced;
  for (int s = 0; s < kNumSections; ++s) {
    for (const Relocation& reloc : object->section(static_cast<SectionKind>(s)).relocs) {
      referenced.try_emplace(reloc.sid());
    }
  }
  // References: undefined symbols (unbound), plus self-references to own
  // globals (bound-to-self, virtual). A reference exists if any relocation
  // names the symbol. Self-references to effectively-hidden definitions bind
  // *frozen* — with no export there is nothing for override/restrict to
  // rebind them to, exactly the state `hide` produces (§3.3).
  for (uint32_t i = 0; i < symbols.size(); ++i) {
    const Symbol& sym = symbols[i];
    SymId id = IdOf(sym);
    if (!sym.defined) {
      space->refs.insert_or_assign(PackRefKey(0, id),
                                   RefRecord{BindState::kUnbound, DefId{}, id});
    } else if (sym.binding != SymbolBinding::kLocal && referenced.contains(id)) {
      BindState state =
          object->IsEffectivelyHidden(sym) ? BindState::kFrozen : BindState::kBound;
      space->refs.insert_or_assign(PackRefKey(0, id), RefRecord{state, DefId{0, i}, id});
    }
  }
  m.base_ = std::move(space);
  return m;
}

Module Module::WithOp(ViewOp op) const {
  Module m;
  m.fragments_ = fragments_;
  m.base_ = base_;
  m.ops_ = ops_;
  m.ops_.push_back(std::move(op));
  return m;
}

Module Module::Rename(std::string pattern, std::string replacement, RenameWhich which) const {
  return WithOp(ViewOp{ViewOp::Kind::kRename, std::move(pattern), std::move(replacement), which});
}
Module Module::Restrict(std::string pattern) const {
  return WithOp(ViewOp{ViewOp::Kind::kRestrict, std::move(pattern), "", RenameWhich::kBoth});
}
Module Module::Project(std::string pattern) const {
  return WithOp(ViewOp{ViewOp::Kind::kProject, std::move(pattern), "", RenameWhich::kBoth});
}
Module Module::Hide(std::string pattern) const {
  return WithOp(ViewOp{ViewOp::Kind::kHide, std::move(pattern), "", RenameWhich::kBoth});
}
Module Module::Show(std::string pattern) const {
  return WithOp(ViewOp{ViewOp::Kind::kShow, std::move(pattern), "", RenameWhich::kBoth});
}
Module Module::Freeze(std::string pattern) const {
  return WithOp(ViewOp{ViewOp::Kind::kFreeze, std::move(pattern), "", RenameWhich::kBoth});
}
Module Module::CopyAs(std::string pattern, std::string replacement) const {
  return WithOp(ViewOp{ViewOp::Kind::kCopyAs, std::move(pattern), std::move(replacement),
                       RenameWhich::kBoth});
}

void Module::ApplyOp(const ViewOp& op, SymbolSpace& space) {
  // Compiled once per op application; an invalid pattern selects nothing
  // (same contract as RegexMatch).
  const std::regex* re = GetCompiledRegex(op.pattern);
  auto matches = [&](SymId id) {
    if (re == nullptr) {
      return false;
    }
    std::string_view name = NameOf(id);
    return std::regex_search(name.begin(), name.end(), *re);
  };

  switch (op.kind) {
    case ViewOp::Kind::kRename: {
      if (op.which != RenameWhich::kRefs) {
        struct Item {
          SymId src;
          SymId dst;
          Export exp;
        };
        std::vector<Item> items;
        items.reserve(space.exports.size());
        bool any = false;
        for (const auto& [id, exp] : space.exports) {
          SymId dst = id;
          if (matches(id)) {
            dst = SymbolInterner::Global().Intern(Substitute(op.arg, NameOf(id)));
            any = true;
          }
          items.push_back(Item{id, dst, exp});
        }
        if (any) {
          // Collisions keep the lexicographically-first source, matching the
          // ordered-map behaviour this table replaced.
          std::sort(items.begin(), items.end(),
                    [](const Item& a, const Item& b) { return NameOf(a.src) < NameOf(b.src); });
          FlatMap<SymId, Export> renamed;
          renamed.reserve(items.size());
          for (const Item& item : items) {
            renamed.try_emplace(item.dst, item.exp);
          }
          space.exports = std::move(renamed);
        }
      }
      if (op.which != RenameWhich::kDefs) {
        for (auto& [key, ref] : space.refs) {
          if (matches(ref.ext_name)) {
            ref.ext_name = SymbolInterner::Global().Intern(Substitute(op.arg, NameOf(ref.ext_name)));
          }
        }
      }
      break;
    }
    case ViewOp::Kind::kRestrict:
    case ViewOp::Kind::kProject: {
      bool keep_on_match = op.kind == ViewOp::Kind::kProject;
      std::vector<SymId> dropped;
      for (const auto& [id, exp] : space.exports) {
        if (matches(id) != keep_on_match) {
          dropped.push_back(id);
        }
      }
      for (SymId id : dropped) {
        space.exports.erase(id);
      }
      for (auto& [key, ref] : space.refs) {
        bool selected = matches(ref.ext_name) != keep_on_match;
        if (selected && ref.state == BindState::kBound) {
          ref.state = BindState::kUnbound;
        }
      }
      break;
    }
    case ViewOp::Kind::kHide:
    case ViewOp::Kind::kShow: {
      bool hide_on_match = op.kind == ViewOp::Kind::kHide;
      for (auto& [key, ref] : space.refs) {
        bool selected = matches(ref.ext_name) == hide_on_match;
        if (selected && ref.state == BindState::kBound) {
          ref.state = BindState::kFrozen;
        }
      }
      std::vector<SymId> hidden;
      for (const auto& [id, exp] : space.exports) {
        if (matches(id) == hide_on_match) {
          hidden.push_back(id);
        }
      }
      for (SymId id : hidden) {
        space.exports.erase(id);
      }
      break;
    }
    case ViewOp::Kind::kFreeze: {
      for (auto& [key, ref] : space.refs) {
        if (matches(ref.ext_name) && ref.state == BindState::kBound) {
          ref.state = BindState::kFrozen;
        }
      }
      break;
    }
    case ViewOp::Kind::kCopyAs: {
      struct Addition {
        SymId src;
        SymId dst;
        Export exp;
      };
      std::vector<Addition> additions;
      for (const auto& [id, exp] : space.exports) {
        if (matches(id)) {
          additions.push_back(
              Addition{id, SymbolInterner::Global().Intern(Substitute(op.arg, NameOf(id))), exp});
        }
      }
      // Copies from lexicographically-later sources win on collision,
      // matching the ordered-map behaviour this table replaced.
      std::sort(additions.begin(), additions.end(), [](const Addition& a, const Addition& b) {
        return NameOf(a.src) < NameOf(b.src);
      });
      for (const Addition& add : additions) {
        space.exports.insert_or_assign(add.dst, add.exp);
      }
      break;
    }
  }
}

void Module::BindSpace(SymbolSpace& space) {
  for (auto& [key, ref] : space.refs) {
    if (ref.state == BindState::kUnbound) {
      if (const Export* exp = space.FindExport(ref.ext_name)) {
        ref.state = BindState::kBound;
        ref.target = exp->def;
      }
    }
  }
}

Result<const SymbolSpace*> Module::Space() const {
  if (cache_ != nullptr) {
    return cache_.get();
  }
  if (ops_.empty()) {
    cache_ = base_;
    return cache_.get();
  }
  auto space = std::make_shared<SymbolSpace>(*base_);
  for (const ViewOp& op : ops_) {
    ApplyOp(op, *space);
  }
  cache_ = std::move(space);
  return cache_.get();
}

Result<Module> Module::Bind() const {
  OMOS_TRY(const SymbolSpace* space, Space());
  Module m;
  m.fragments_ = fragments_;
  // Share the materialized space outright when no reference would change —
  // the warm-path case (an already-bound module relinked or re-instantiated).
  bool any_bindable = false;
  for (const auto& [key, ref] : space->refs) {
    if (ref.state == BindState::kUnbound && space->exports.contains(ref.ext_name)) {
      any_bindable = true;
      break;
    }
  }
  if (!any_bindable) {
    m.base_ = cache_;  // Space() populated cache_
    return m;
  }
  auto bound = std::make_shared<SymbolSpace>(*space);
  BindSpace(*bound);
  m.base_ = std::move(bound);
  return m;
}

Result<Module> Module::Merge(const Module& a, const Module& b) {
  OMOS_TRY(const SymbolSpace* sa, a.Space());
  OMOS_TRY(const SymbolSpace* sb, b.Space());

  Module m;
  auto fragments = std::make_shared<std::vector<FragmentPtr>>(*a.fragments_);
  uint32_t offset = static_cast<uint32_t>(fragments->size());
  fragments->insert(fragments->end(), b.fragments_->begin(), b.fragments_->end());
  m.fragments_ = std::move(fragments);

  auto space = std::make_shared<SymbolSpace>(*sa);
  space->exports.reserve(sa->exports.size() + sb->exports.size());
  space->refs.reserve(sa->refs.size() + sb->refs.size());
  // Import b's exports, shifting fragment indices; duplicate strong
  // definitions are an error, weak yields to strong.
  for (const auto& [id, exp] : sb->exports) {
    Export shifted{DefId{exp.def.fragment + offset, exp.def.symbol}, exp.weak};
    auto it = space->exports.find(id);
    if (it == space->exports.end()) {
      space->exports.insert_or_assign(id, shifted);
    } else if (it->second.weak && !shifted.weak) {
      it->second = shifted;
    } else if (!it->second.weak && !shifted.weak) {
      return Err(ErrorCode::kDuplicateSymbol,
                 StrCat("merge: symbol ", NameOf(id), " defined twice"));
    }
    // strong-existing + weak-incoming (or weak/weak): keep existing.
  }
  for (const auto& [key, ref] : sb->refs) {
    RefRecord shifted = ref;
    if (shifted.state != BindState::kUnbound) {
      shifted.target.fragment += offset;
    }
    space->refs.insert_or_assign(PackRefKey(RefKeyFragment(key) + offset, RefKeyName(key)),
                                 shifted);
  }
  BindSpace(*space);
  m.base_ = std::move(space);
  return m;
}

Result<Module> Module::Override(const Module& base, const Module& over) {
  OMOS_TRY(const SymbolSpace* sa, base.Space());
  OMOS_TRY(const SymbolSpace* sb, over.Space());

  Module m;
  auto fragments = std::make_shared<std::vector<FragmentPtr>>(*base.fragments_);
  uint32_t offset = static_cast<uint32_t>(fragments->size());
  fragments->insert(fragments->end(), over.fragments_->begin(), over.fragments_->end());
  m.fragments_ = std::move(fragments);

  auto space = std::make_shared<SymbolSpace>(*sa);
  space->exports.reserve(sa->exports.size() + sb->exports.size());
  space->refs.reserve(sa->refs.size() + sb->refs.size());
  for (const auto& [key, ref] : sb->refs) {
    RefRecord shifted = ref;
    if (shifted.state != BindState::kUnbound) {
      shifted.target.fragment += offset;
    }
    space->refs.insert_or_assign(PackRefKey(RefKeyFragment(key) + offset, RefKeyName(key)),
                                 shifted);
  }
  for (const auto& [id, exp] : sb->exports) {
    Export shifted{DefId{exp.def.fragment + offset, exp.def.symbol}, exp.weak};
    auto it = space->exports.find(id);
    if (it == space->exports.end()) {
      space->exports.insert_or_assign(id, shifted);
      continue;
    }
    // Conflict: the overriding definition wins; rebind every non-frozen
    // reference that pointed at the shadowed definition.
    DefId shadowed = it->second.def;
    it->second = shifted;
    for (auto& [key, ref] : space->refs) {
      if (ref.state == BindState::kBound && ref.target == shadowed) {
        ref.target = shifted.def;
      }
    }
  }
  BindSpace(*space);
  m.base_ = std::move(space);
  return m;
}

Result<Module> Module::ReorderFragments(const std::vector<uint32_t>& order) const {
  OMOS_TRY(const SymbolSpace* space, Space());
  size_t n = fragments_->size();
  if (order.size() != n) {
    return Err(ErrorCode::kInvalidArgument, "reorder: order size mismatch");
  }
  std::vector<uint32_t> inverse(n, UINT32_MAX);
  for (uint32_t new_pos = 0; new_pos < order.size(); ++new_pos) {
    uint32_t old_pos = order[new_pos];
    if (old_pos >= n || inverse[old_pos] != UINT32_MAX) {
      return Err(ErrorCode::kInvalidArgument, "reorder: not a permutation");
    }
    inverse[old_pos] = new_pos;
  }
  Module m;
  auto fragments = std::make_shared<std::vector<FragmentPtr>>();
  fragments->reserve(n);
  for (uint32_t old_pos : order) {
    fragments->push_back((*fragments_)[old_pos]);
  }
  m.fragments_ = std::move(fragments);
  auto remapped = std::make_shared<SymbolSpace>();
  remapped->exports.reserve(space->exports.size());
  remapped->refs.reserve(space->refs.size());
  for (const auto& [id, exp] : space->exports) {
    remapped->exports.insert_or_assign(
        id, Export{DefId{inverse[exp.def.fragment], exp.def.symbol}, exp.weak});
  }
  for (const auto& [key, ref] : space->refs) {
    RefRecord record = ref;
    if (record.state != BindState::kUnbound) {
      record.target.fragment = inverse[record.target.fragment];
    }
    remapped->refs.insert_or_assign(PackRefKey(inverse[RefKeyFragment(key)], RefKeyName(key)),
                                    record);
  }
  m.base_ = std::move(remapped);
  return m;
}

Result<bool> Module::HasExport(std::string_view name) const {
  OMOS_TRY(const SymbolSpace* space, Space());
  return space->FindExport(name) != nullptr;
}

Result<std::vector<std::string>> Module::ExportNames() const {
  OMOS_TRY(const SymbolSpace* space, Space());
  std::vector<std::string> names;
  names.reserve(space->exports.size());
  for (const auto& [id, exp] : space->exports) {
    names.emplace_back(NameOf(id));
  }
  std::sort(names.begin(), names.end());
  return names;
}

Result<std::vector<std::string>> Module::UnboundRefNames() const {
  OMOS_TRY(const SymbolSpace* space, Space());
  std::vector<std::string> names;
  for (const auto& [key, ref] : space->refs) {
    if (ref.state == BindState::kUnbound) {
      names.emplace_back(NameOf(ref.ext_name));
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

}  // namespace omos
