#include "src/linker/module.h"

#include <algorithm>

#include "src/support/strings.h"

namespace omos {

namespace {

// '&' in a replacement substitutes the original symbol name, e.g.
// rename("^_", "wrapped&") turns _read into wrapped_read.
std::string Substitute(const std::string& replacement, const std::string& original) {
  std::string out;
  for (char c : replacement) {
    if (c == '&') {
      out += original;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

Module Module::FromObject(FragmentPtr object) {
  Module m;
  auto fragments = std::make_shared<std::vector<FragmentPtr>>();
  fragments->push_back(object);
  m.fragments_ = std::move(fragments);

  auto space = std::make_shared<SymbolSpace>();
  const auto& symbols = object->symbols();
  // Exports: all defined non-local symbols.
  for (uint32_t i = 0; i < symbols.size(); ++i) {
    const Symbol& sym = symbols[i];
    if (sym.defined && sym.binding != SymbolBinding::kLocal) {
      space->exports[sym.name] = Export{DefId{0, i}, sym.binding == SymbolBinding::kWeak};
    }
  }
  // References: undefined symbols (unbound), plus self-references to own
  // globals (bound-to-self, virtual). A reference exists if any relocation
  // names the symbol.
  for (uint32_t i = 0; i < symbols.size(); ++i) {
    const Symbol& sym = symbols[i];
    RefKey key{0, sym.name};
    if (!sym.defined) {
      space->refs[key] = RefRecord{BindState::kUnbound, DefId{}, sym.name};
    } else if (sym.binding != SymbolBinding::kLocal) {
      // Only materialize a self-reference if some relocation actually uses it.
      bool referenced = false;
      for (int s = 0; s < kNumSections && !referenced; ++s) {
        for (const Relocation& reloc : object->section(static_cast<SectionKind>(s)).relocs) {
          if (reloc.symbol == sym.name) {
            referenced = true;
            break;
          }
        }
      }
      if (referenced) {
        space->refs[key] = RefRecord{BindState::kBound, DefId{0, i}, sym.name};
      }
    }
  }
  m.base_ = std::move(space);
  return m;
}

Module Module::WithOp(ViewOp op) const {
  Module m;
  m.fragments_ = fragments_;
  m.base_ = base_;
  m.ops_ = ops_;
  m.ops_.push_back(std::move(op));
  return m;
}

Module Module::Rename(std::string pattern, std::string replacement, RenameWhich which) const {
  return WithOp(ViewOp{ViewOp::Kind::kRename, std::move(pattern), std::move(replacement), which});
}
Module Module::Restrict(std::string pattern) const {
  return WithOp(ViewOp{ViewOp::Kind::kRestrict, std::move(pattern), "", RenameWhich::kBoth});
}
Module Module::Project(std::string pattern) const {
  return WithOp(ViewOp{ViewOp::Kind::kProject, std::move(pattern), "", RenameWhich::kBoth});
}
Module Module::Hide(std::string pattern) const {
  return WithOp(ViewOp{ViewOp::Kind::kHide, std::move(pattern), "", RenameWhich::kBoth});
}
Module Module::Show(std::string pattern) const {
  return WithOp(ViewOp{ViewOp::Kind::kShow, std::move(pattern), "", RenameWhich::kBoth});
}
Module Module::Freeze(std::string pattern) const {
  return WithOp(ViewOp{ViewOp::Kind::kFreeze, std::move(pattern), "", RenameWhich::kBoth});
}
Module Module::CopyAs(std::string pattern, std::string replacement) const {
  return WithOp(ViewOp{ViewOp::Kind::kCopyAs, std::move(pattern), std::move(replacement),
                       RenameWhich::kBoth});
}

void Module::ApplyOp(const ViewOp& op, SymbolSpace& space) {
  auto matches = [&](const std::string& name) { return RegexMatch(name, op.pattern); };

  switch (op.kind) {
    case ViewOp::Kind::kRename: {
      if (op.which != RenameWhich::kRefs) {
        std::map<std::string, Export> renamed;
        for (auto& [name, exp] : space.exports) {
          renamed.emplace(matches(name) ? Substitute(op.arg, name) : name, exp);
        }
        space.exports = std::move(renamed);
      }
      if (op.which != RenameWhich::kDefs) {
        for (auto& [key, ref] : space.refs) {
          if (matches(ref.ext_name)) {
            ref.ext_name = Substitute(op.arg, ref.ext_name);
          }
        }
      }
      break;
    }
    case ViewOp::Kind::kRestrict:
    case ViewOp::Kind::kProject: {
      bool keep_on_match = op.kind == ViewOp::Kind::kProject;
      std::erase_if(space.exports,
                    [&](const auto& entry) { return matches(entry.first) != keep_on_match; });
      for (auto& [key, ref] : space.refs) {
        bool selected = matches(ref.ext_name) != keep_on_match;
        if (selected && ref.state == BindState::kBound) {
          ref.state = BindState::kUnbound;
        }
      }
      break;
    }
    case ViewOp::Kind::kHide:
    case ViewOp::Kind::kShow: {
      bool hide_on_match = op.kind == ViewOp::Kind::kHide;
      for (auto& [key, ref] : space.refs) {
        bool selected = matches(ref.ext_name) == hide_on_match;
        if (selected && ref.state == BindState::kBound) {
          ref.state = BindState::kFrozen;
        }
      }
      std::erase_if(space.exports,
                    [&](const auto& entry) { return matches(entry.first) == hide_on_match; });
      break;
    }
    case ViewOp::Kind::kFreeze: {
      for (auto& [key, ref] : space.refs) {
        if (matches(ref.ext_name) && ref.state == BindState::kBound) {
          ref.state = BindState::kFrozen;
        }
      }
      break;
    }
    case ViewOp::Kind::kCopyAs: {
      std::vector<std::pair<std::string, Export>> additions;
      for (const auto& [name, exp] : space.exports) {
        if (matches(name)) {
          additions.emplace_back(Substitute(op.arg, name), exp);
        }
      }
      for (auto& [name, exp] : additions) {
        space.exports[name] = exp;  // later copies win on collision
      }
      break;
    }
  }
}

void Module::BindSpace(SymbolSpace& space) {
  for (auto& [key, ref] : space.refs) {
    if (ref.state == BindState::kUnbound) {
      auto it = space.exports.find(ref.ext_name);
      if (it != space.exports.end()) {
        ref.state = BindState::kBound;
        ref.target = it->second.def;
      }
    }
  }
}

Result<const SymbolSpace*> Module::Space() const {
  if (cache_ != nullptr) {
    return cache_.get();
  }
  if (ops_.empty()) {
    cache_ = base_;
    return cache_.get();
  }
  auto space = std::make_shared<SymbolSpace>(*base_);
  for (const ViewOp& op : ops_) {
    ApplyOp(op, *space);
  }
  cache_ = std::move(space);
  return cache_.get();
}

Result<Module> Module::Bind() const {
  OMOS_TRY(const SymbolSpace* space, Space());
  auto bound = std::make_shared<SymbolSpace>(*space);
  BindSpace(*bound);
  Module m;
  m.fragments_ = fragments_;
  m.base_ = std::move(bound);
  return m;
}

Result<Module> Module::Merge(const Module& a, const Module& b) {
  OMOS_TRY(const SymbolSpace* sa, a.Space());
  OMOS_TRY(const SymbolSpace* sb, b.Space());

  Module m;
  auto fragments = std::make_shared<std::vector<FragmentPtr>>(*a.fragments_);
  uint32_t offset = static_cast<uint32_t>(fragments->size());
  fragments->insert(fragments->end(), b.fragments_->begin(), b.fragments_->end());
  m.fragments_ = std::move(fragments);

  auto space = std::make_shared<SymbolSpace>(*sa);
  // Import b's exports, shifting fragment indices; duplicate strong
  // definitions are an error, weak yields to strong.
  for (const auto& [name, exp] : sb->exports) {
    Export shifted{DefId{exp.def.fragment + offset, exp.def.symbol}, exp.weak};
    auto it = space->exports.find(name);
    if (it == space->exports.end()) {
      space->exports[name] = shifted;
    } else if (it->second.weak && !shifted.weak) {
      it->second = shifted;
    } else if (!it->second.weak && !shifted.weak) {
      return Err(ErrorCode::kDuplicateSymbol, StrCat("merge: symbol ", name, " defined twice"));
    }
    // strong-existing + weak-incoming (or weak/weak): keep existing.
  }
  for (const auto& [key, ref] : sb->refs) {
    RefRecord shifted = ref;
    if (shifted.state != BindState::kUnbound) {
      shifted.target.fragment += offset;
    }
    space->refs[RefKey{key.fragment + offset, key.name}] = std::move(shifted);
  }
  BindSpace(*space);
  m.base_ = std::move(space);
  return m;
}

Result<Module> Module::Override(const Module& base, const Module& over) {
  OMOS_TRY(const SymbolSpace* sa, base.Space());
  OMOS_TRY(const SymbolSpace* sb, over.Space());

  Module m;
  auto fragments = std::make_shared<std::vector<FragmentPtr>>(*base.fragments_);
  uint32_t offset = static_cast<uint32_t>(fragments->size());
  fragments->insert(fragments->end(), over.fragments_->begin(), over.fragments_->end());
  m.fragments_ = std::move(fragments);

  auto space = std::make_shared<SymbolSpace>(*sa);
  for (const auto& [key, ref] : sb->refs) {
    RefRecord shifted = ref;
    if (shifted.state != BindState::kUnbound) {
      shifted.target.fragment += offset;
    }
    space->refs[RefKey{key.fragment + offset, key.name}] = std::move(shifted);
  }
  for (const auto& [name, exp] : sb->exports) {
    Export shifted{DefId{exp.def.fragment + offset, exp.def.symbol}, exp.weak};
    auto it = space->exports.find(name);
    if (it == space->exports.end()) {
      space->exports[name] = shifted;
      continue;
    }
    // Conflict: the overriding definition wins; rebind every non-frozen
    // reference that pointed at the shadowed definition.
    DefId shadowed = it->second.def;
    it->second = shifted;
    for (auto& [key, ref] : space->refs) {
      if (ref.state == BindState::kBound && ref.target == shadowed) {
        ref.target = shifted.def;
      }
    }
  }
  BindSpace(*space);
  m.base_ = std::move(space);
  return m;
}

Result<Module> Module::ReorderFragments(const std::vector<uint32_t>& order) const {
  OMOS_TRY(const SymbolSpace* space, Space());
  size_t n = fragments_->size();
  if (order.size() != n) {
    return Err(ErrorCode::kInvalidArgument, "reorder: order size mismatch");
  }
  std::vector<uint32_t> inverse(n, UINT32_MAX);
  for (uint32_t new_pos = 0; new_pos < order.size(); ++new_pos) {
    uint32_t old_pos = order[new_pos];
    if (old_pos >= n || inverse[old_pos] != UINT32_MAX) {
      return Err(ErrorCode::kInvalidArgument, "reorder: not a permutation");
    }
    inverse[old_pos] = new_pos;
  }
  Module m;
  auto fragments = std::make_shared<std::vector<FragmentPtr>>();
  fragments->reserve(n);
  for (uint32_t old_pos : order) {
    fragments->push_back((*fragments_)[old_pos]);
  }
  m.fragments_ = std::move(fragments);
  auto remapped = std::make_shared<SymbolSpace>();
  for (const auto& [name, exp] : space->exports) {
    remapped->exports[name] =
        Export{DefId{inverse[exp.def.fragment], exp.def.symbol}, exp.weak};
  }
  for (const auto& [key, ref] : space->refs) {
    RefRecord record = ref;
    if (record.state != BindState::kUnbound) {
      record.target.fragment = inverse[record.target.fragment];
    }
    remapped->refs[RefKey{inverse[key.fragment], key.name}] = std::move(record);
  }
  m.base_ = std::move(remapped);
  return m;
}

Result<bool> Module::HasExport(std::string_view name) const {
  OMOS_TRY(const SymbolSpace* space, Space());
  return space->exports.count(std::string(name)) != 0;
}

Result<std::vector<std::string>> Module::ExportNames() const {
  OMOS_TRY(const SymbolSpace* space, Space());
  std::vector<std::string> names;
  names.reserve(space->exports.size());
  for (const auto& [name, exp] : space->exports) {
    names.push_back(name);
  }
  return names;
}

Result<std::vector<std::string>> Module::UnboundRefNames() const {
  OMOS_TRY(const SymbolSpace* space, Space());
  std::vector<std::string> names;
  for (const auto& [key, ref] : space->refs) {
    if (ref.state == BindState::kUnbound) {
      names.push_back(ref.ext_name);
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

}  // namespace omos
