#include "src/linker/image.h"

namespace omos {

void LinkedImage::BuildSymbolIndex() {
  symbol_index.clear();
  symbol_index.reserve(symbols.size());
  for (uint32_t i = 0; i < symbols.size(); ++i) {
    // First occurrence wins, like the linear scan this replaces.
    symbol_index.try_emplace(SymbolInterner::Global().Intern(symbols[i].name), i);
  }
  indexed_count = symbols.size();
}

namespace {

// Stale-index fallback: an image mutated after its last BuildSymbolIndex
// (or never indexed) is scanned linearly. No lazy rebuild here — FindSymbol
// is const and may run from many threads at once on a cached image.
const ImageSymbol* ScanForSymbol(const LinkedImage& image, std::string_view name) {
  for (const ImageSymbol& symbol : image.symbols) {
    if (symbol.name == name) {
      return &symbol;
    }
  }
  return nullptr;
}

}  // namespace

const ImageSymbol* LinkedImage::FindSymbol(std::string_view name) const {
  if (indexed_count != symbols.size()) {
    return ScanForSymbol(*this, name);
  }
  SymId id = SymbolInterner::Global().Find(name);
  if (id == kNoSymId) {
    return nullptr;
  }
  auto it = symbol_index.find(id);
  return it == symbol_index.end() ? nullptr : &symbols[it->second];
}

const ImageSymbol* LinkedImage::FindSymbol(SymId id) const {
  if (indexed_count != symbols.size()) {
    return ScanForSymbol(*this, SymbolInterner::Global().Name(id));
  }
  auto it = symbol_index.find(id);
  return it == symbol_index.end() ? nullptr : &symbols[it->second];
}

}  // namespace omos
