#include "src/linker/image.h"

namespace omos {

namespace {

void EnsureIndex(const LinkedImage& image) {
  if (image.indexed_count == image.symbols.size()) {
    return;
  }
  image.symbol_index.clear();
  image.symbol_index.reserve(image.symbols.size());
  for (uint32_t i = 0; i < image.symbols.size(); ++i) {
    // First occurrence wins, like the linear scan this replaces.
    image.symbol_index.try_emplace(SymbolInterner::Global().Intern(image.symbols[i].name), i);
  }
  image.indexed_count = image.symbols.size();
}

}  // namespace

const ImageSymbol* LinkedImage::FindSymbol(std::string_view name) const {
  EnsureIndex(*this);  // first, so a decoded image's names are interned
  SymId id = SymbolInterner::Global().Find(name);
  if (id == kNoSymId) {
    return nullptr;
  }
  auto it = symbol_index.find(id);
  return it == symbol_index.end() ? nullptr : &symbols[it->second];
}

const ImageSymbol* LinkedImage::FindSymbol(SymId id) const {
  EnsureIndex(*this);
  auto it = symbol_index.find(id);
  return it == symbol_index.end() ? nullptr : &symbols[it->second];
}

}  // namespace omos
