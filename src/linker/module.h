// The module calculus: Modules, module operators, and symbol-space views.
//
// Following Bracha & Lindstrom's Jigsaw (paper §3.3), a module is a
// self-referential naming scope: a set of code/data fragments, a table of
// exported definitions, and a set of references whose bindings the module
// operators manipulate. A leaf module (one object file) starts with every
// reference to one of its own global definitions *bound to self but not
// frozen* — inheritance-style virtual binding — so later `override` or
// `restrict` can rebind internal callers, which is exactly what the paper's
// malloc-interposition example (Fig. 2) relies on.
//
// Binding states per reference:
//   kUnbound — no definition chosen yet (merge will bind it)
//   kBound   — bound, but rebindable (override) and unbindable (restrict)
//   kFrozen  — permanent (freeze/hide); immune to restrict/override
//
// Unary operators (rename/hide/show/restrict/project/copy-as/freeze) are
// recorded as a lazy *view chain* over a shared immutable SymbolSpace and
// applied in one pass on first use — the paper's "views" that make
// incremental modification of a symbol namespace fast (§3.3). `merge` and
// `override` materialize.
//
// Symbol spaces are keyed by interned SymIds in open-addressing flat tables
// (src/support/interner.h, src/support/flat_map.h): lookups are u32 probes,
// copies are flat vector copies, and `Bind`/`Space` share the base space
// outright when there is nothing to change.
#ifndef OMOS_SRC_LINKER_MODULE_H_
#define OMOS_SRC_LINKER_MODULE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/objfmt/object_file.h"
#include "src/support/flat_map.h"
#include "src/support/interner.h"
#include "src/support/result.h"

namespace omos {

using FragmentPtr = std::shared_ptr<const ObjectFile>;

// Identifies a definition: fragment index within the module, symbol index
// within that fragment's symbol table.
struct DefId {
  uint32_t fragment = 0;
  uint32_t symbol = 0;

  auto operator<=>(const DefId&) const = default;
};

enum class BindState : uint8_t { kUnbound = 0, kBound = 1, kFrozen = 2 };

struct Export {
  DefId def;
  bool weak = false;
};

// Key of a reference: which fragment, and the (interned) symbol-table name
// the fragment's relocations use — packed into one u64. The name component
// is never renamed; renames change RefRecord::ext_name.
inline constexpr uint64_t PackRefKey(uint32_t fragment, SymId name) {
  return (static_cast<uint64_t>(fragment) << 32) | name;
}
inline constexpr uint32_t RefKeyFragment(uint64_t key) {
  return static_cast<uint32_t>(key >> 32);
}
inline constexpr SymId RefKeyName(uint64_t key) { return static_cast<SymId>(key); }

struct RefRecord {
  BindState state = BindState::kUnbound;
  DefId target;                 // valid when state != kUnbound
  SymId ext_name = kNoSymId;    // the external name this reference currently seeks
};

// Materialized symbol space of a module.
struct SymbolSpace {
  FlatMap<SymId, Export> exports;
  FlatMap<uint64_t, RefRecord> refs;  // PackRefKey(fragment, name) -> record

  const Export* FindExport(SymId id) const {
    auto it = exports.find(id);
    return it == exports.end() ? nullptr : &it->second;
  }
  const Export* FindExport(std::string_view name) const {
    SymId id = SymbolInterner::Global().Find(name);
    return id == kNoSymId ? nullptr : FindExport(id);
  }
  const RefRecord* FindRef(uint32_t fragment, SymId name) const {
    auto it = refs.find(PackRefKey(fragment, name));
    return it == refs.end() ? nullptr : &it->second;
  }
  const RefRecord* FindRef(uint32_t fragment, std::string_view name) const {
    SymId id = SymbolInterner::Global().Find(name);
    return id == kNoSymId ? nullptr : FindRef(fragment, id);
  }
};

enum class RenameWhich : uint8_t { kDefs, kRefs, kBoth };

class Module {
 public:
  Module() = default;

  // Leaf module from a single relocatable object.
  static Module FromObject(FragmentPtr object);

  // merge: union of fragments; duplicate strong definitions are an error
  // (weak yields to strong); every unbound reference whose ext_name matches
  // an export becomes bound.
  static Result<Module> Merge(const Module& a, const Module& b);

  // override: merge resolving export conflicts in favour of `over`; non-
  // frozen references previously bound to the shadowed definitions are
  // rebound to the overriding ones.
  static Result<Module> Override(const Module& base, const Module& over);

  // Unary module operations (lazy; O(1) to apply).
  Module Rename(std::string pattern, std::string replacement, RenameWhich which) const;
  Module Restrict(std::string pattern) const;  // drop matching defs, unbind matching refs
  Module Project(std::string pattern) const;   // restrict the complement
  Module Hide(std::string pattern) const;      // drop matching defs, freeze matching refs
  Module Show(std::string pattern) const;      // hide the complement
  Module Freeze(std::string pattern) const;    // make matching bound refs permanent
  // copy-as: duplicate each export matching `pattern` under `replacement`;
  // '&' in the replacement substitutes the matched name.
  Module CopyAs(std::string pattern, std::string replacement) const;

  // Bind unbound references against current exports (merge does this
  // automatically; exposed for the final pre-link pass). Shares the space
  // with this module when nothing is bindable — the common warm-path case.
  Result<Module> Bind() const;

  // Permute fragment order — the locality-of-reference optimization of
  // §4.1: OMOS reorders routines by observed usage. `order` must be a
  // permutation of [0, fragments().size()).
  Result<Module> ReorderFragments(const std::vector<uint32_t>& order) const;

  const std::vector<FragmentPtr>& fragments() const { return *fragments_; }

  // Materialized symbol space (applies any pending view ops once, caching).
  Result<const SymbolSpace*> Space() const;

  // Number of view ops not yet applied (for tests/benchmarks).
  size_t pending_ops() const { return ops_.size(); }

  // Introspection helpers (materialize if needed).
  Result<bool> HasExport(std::string_view name) const;
  Result<std::vector<std::string>> ExportNames() const;
  // Names sought by currently-unbound references.
  Result<std::vector<std::string>> UnboundRefNames() const;

 private:
  struct ViewOp {
    enum class Kind : uint8_t {
      kRename,
      kRestrict,
      kProject,
      kHide,
      kShow,
      kFreeze,
      kCopyAs,
    } kind;
    std::string pattern;
    std::string arg;  // replacement for rename/copy-as
    RenameWhich which = RenameWhich::kBoth;
  };

  Module WithOp(ViewOp op) const;
  static void ApplyOp(const ViewOp& op, SymbolSpace& space);
  static void BindSpace(SymbolSpace& space);

  std::shared_ptr<const std::vector<FragmentPtr>> fragments_ =
      std::make_shared<std::vector<FragmentPtr>>();
  std::shared_ptr<const SymbolSpace> base_ = std::make_shared<SymbolSpace>();
  std::vector<ViewOp> ops_;
  mutable std::shared_ptr<const SymbolSpace> cache_;
};

}  // namespace omos

#endif  // OMOS_SRC_LINKER_MODULE_H_
