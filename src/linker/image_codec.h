// XEX: serialized LinkedImage — the executable-file format. Used when an
// image leaves the server (partial-image clients are ordinary executable
// files the user can copy/rename, §4.2) and by the OFE link command.
#ifndef OMOS_SRC_LINKER_IMAGE_CODEC_H_
#define OMOS_SRC_LINKER_IMAGE_CODEC_H_

#include <vector>

#include "src/linker/image.h"
#include "src/support/result.h"

namespace omos {

// Encode an image (symbols included; the reloc log is not persisted).
std::vector<uint8_t> EncodeImage(const LinkedImage& image);
Result<LinkedImage> DecodeImage(const std::vector<uint8_t>& bytes);

// Magic sniffing ("is this an executable?").
bool IsEncodedImage(const std::vector<uint8_t>& bytes);

}  // namespace omos

#endif  // OMOS_SRC_LINKER_IMAGE_CODEC_H_
