#include "src/ipc/transport.h"

#include "src/support/faultsim.h"
#include "src/support/strings.h"

namespace omos {

namespace {

uint32_t PayloadChecksum(const uint8_t* data, size_t size) {
  return static_cast<uint32_t>(Fnv1aBytes(data, size));
}

void WriteU32(BytePipe& pipe, uint32_t value) {
  uint8_t bytes[4] = {static_cast<uint8_t>(value), static_cast<uint8_t>(value >> 8),
                      static_cast<uint8_t>(value >> 16), static_cast<uint8_t>(value >> 24)};
  pipe.Write(bytes, 4);
}

uint32_t ReadU32(const uint8_t* bytes) {
  return static_cast<uint32_t>(bytes[0]) | static_cast<uint32_t>(bytes[1]) << 8 |
         static_cast<uint32_t>(bytes[2]) << 16 | static_cast<uint32_t>(bytes[3]) << 24;
}

}  // namespace

void BytePipe::Write(const uint8_t* data, size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

Result<void> BytePipe::ReadExact(uint8_t* out, size_t size) {
  if (buffer_.size() < size) {
    return Err(ErrorCode::kProtocolError,
               StrCat("pipe underrun: wanted ", size, ", have ", buffer_.size()));
  }
  for (size_t i = 0; i < size; ++i) {
    out[i] = buffer_.front();
    buffer_.pop_front();
  }
  return OkResult();
}

void BytePipe::FlipBits(size_t offset, uint8_t mask) {
  if (offset < buffer_.size()) {
    buffer_[offset] ^= mask;
  }
}

void WriteFrame(BytePipe& pipe, const std::vector<uint8_t>& payload) {
  uint32_t knob = 0;
  if (FaultSim::Trip("pipe.drop")) {
    return;  // frame lost in transit; the reader sees an empty pipe
  }
  uint32_t size = static_cast<uint32_t>(payload.size());
  uint32_t checksum = PayloadChecksum(payload.data(), payload.size());
  if (FaultSim::Trip("pipe.oversize", &knob)) {
    WriteU32(pipe, 0x7FFFFFFF ^ knob);  // absurd length claim
    WriteU32(pipe, checksum);
    pipe.Write(payload.data(), payload.size());
    return;
  }
  WriteU32(pipe, size);
  WriteU32(pipe, checksum);
  if (FaultSim::Trip("pipe.truncate", &knob)) {
    pipe.Write(payload.data(), payload.size() / 2);  // connection died mid-frame
    return;
  }
  pipe.Write(payload.data(), payload.size());
  if (FaultSim::Trip("pipe.bitflip", &knob) && !payload.empty()) {
    size_t offset = pipe.buffered() - payload.size() + knob % payload.size();
    pipe.FlipBits(offset, static_cast<uint8_t>(1u << (knob % 8)));
  }
}

Result<std::vector<uint8_t>> ReadFrame(BytePipe& pipe, uint32_t max_frame) {
  // An empty pipe at a frame boundary is a clean EOF — the peer closed (or
  // the frame never arrived), and stream sync is intact. Report it as
  // kUnavailable and leave the pipe alone so a reconnecting peer's next
  // frame parses normally. Only a *partial* read below means framing is
  // lost; those paths drain the pipe, because leftover bytes would be
  // misparsed as the next frame's header (the classic desync bug).
  if (pipe.buffered() == 0) {
    return Err(ErrorCode::kUnavailable, "peer closed: no frame buffered");
  }
  uint8_t header[kFrameHeaderSize];
  auto header_read = pipe.ReadExact(header, kFrameHeaderSize);
  if (!header_read.ok()) {
    pipe.Clear();
    return header_read.error();
  }
  uint32_t size = ReadU32(header);
  uint32_t checksum = ReadU32(header + 4);
  if (size > max_frame) {
    pipe.Clear();
    return Err(ErrorCode::kProtocolError, StrCat("oversized frame: ", size, " bytes"));
  }
  std::vector<uint8_t> payload(size);
  auto payload_read = pipe.ReadExact(payload.data(), size);
  if (!payload_read.ok()) {
    pipe.Clear();
    return payload_read.error();
  }
  if (PayloadChecksum(payload.data(), payload.size()) != checksum) {
    pipe.Clear();
    return Err(ErrorCode::kCorrupted, StrCat("frame checksum mismatch over ", size, " bytes"));
  }
  return payload;
}

namespace {

class PortTransport : public Transport {
 public:
  PortTransport(ServeFn server, uint64_t cost) : server_(std::move(server)), cost_(cost) {}

  Result<std::vector<uint8_t>> RoundTrip(const std::vector<uint8_t>& request,
                                         uint64_t* cost_out) override {
    if (cost_out != nullptr) {
      *cost_out += cost_;
    }
    if (FaultSim::Trip("port.drop")) {
      return Err(ErrorCode::kTimeout, "message lost in transit");
    }
    return server_(request);
  }

 private:
  ServeFn server_;
  uint64_t cost_;
};

class StreamTransport : public Transport {
 public:
  StreamTransport(ServeFn server, uint64_t base_cost, uint64_t cost_per_byte)
      : server_(std::move(server)), base_cost_(base_cost), cost_per_byte_(cost_per_byte) {}

  Result<std::vector<uint8_t>> RoundTrip(const std::vector<uint8_t>& request,
                                         uint64_t* cost_out) override {
    if (cost_out != nullptr) {
      // The wire cost is paid whether or not the frames survive the trip.
      *cost_out += base_cost_ + cost_per_byte_ * (request.size() + 2 * kFrameHeaderSize);
    }
    // Client -> server leg: frame onto the request pipe, server reads it.
    WriteFrame(to_server_, request);
    auto delivered = Receive(to_server_, "request");
    if (!delivered.ok()) {
      return delivered.error();
    }
    std::vector<uint8_t> reply = server_(*delivered);
    if (cost_out != nullptr) {
      *cost_out += cost_per_byte_ * reply.size();
    }
    // Server -> client leg.
    WriteFrame(to_client_, reply);
    return Receive(to_client_, "reply");
  }

 private:
  // Read one frame; on a framing error, resynchronize BOTH pipes so the
  // next round trip starts from a clean stream instead of stale bytes. A
  // clean EOF (empty pipe: the frame we just wrote was dropped whole)
  // leaves sync intact — no drain, and the client sees a timeout.
  Result<std::vector<uint8_t>> Receive(BytePipe& pipe, const char* leg) {
    if (pipe.buffered() == 0) {
      return Err(ErrorCode::kTimeout, StrCat(leg, " lost in transit"));
    }
    auto frame = ReadFrame(pipe);
    if (!frame.ok()) {
      if (frame.error().code() != ErrorCode::kUnavailable) {
        Resync();
      }
      return frame.error();
    }
    return frame;
  }

  void Resync() {
    to_server_.Clear();
    to_client_.Clear();
  }

  ServeFn server_;
  uint64_t base_cost_;
  uint64_t cost_per_byte_;
  BytePipe to_server_;
  BytePipe to_client_;
};

}  // namespace

std::unique_ptr<Transport> MakePortTransport(ServeFn server, uint64_t round_trip_cost) {
  return std::make_unique<PortTransport>(std::move(server), round_trip_cost);
}

std::unique_ptr<Transport> MakeStreamTransport(ServeFn server, uint64_t base_cost,
                                               uint64_t cost_per_byte) {
  return std::make_unique<StreamTransport>(std::move(server), base_cost, cost_per_byte);
}

}  // namespace omos
