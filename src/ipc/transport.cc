#include "src/ipc/transport.h"

#include "src/support/strings.h"

namespace omos {

void BytePipe::Write(const uint8_t* data, size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

Result<void> BytePipe::ReadExact(uint8_t* out, size_t size) {
  if (buffer_.size() < size) {
    return Err(ErrorCode::kProtocolError,
               StrCat("pipe underrun: wanted ", size, ", have ", buffer_.size()));
  }
  for (size_t i = 0; i < size; ++i) {
    out[i] = buffer_.front();
    buffer_.pop_front();
  }
  return OkResult();
}

void WriteFrame(BytePipe& pipe, const std::vector<uint8_t>& payload) {
  uint32_t size = static_cast<uint32_t>(payload.size());
  uint8_t header[4] = {static_cast<uint8_t>(size), static_cast<uint8_t>(size >> 8),
                       static_cast<uint8_t>(size >> 16), static_cast<uint8_t>(size >> 24)};
  pipe.Write(header, 4);
  pipe.Write(payload.data(), payload.size());
}

Result<std::vector<uint8_t>> ReadFrame(BytePipe& pipe, uint32_t max_frame) {
  uint8_t header[4];
  OMOS_TRY_VOID(pipe.ReadExact(header, 4));
  uint32_t size = static_cast<uint32_t>(header[0]) | static_cast<uint32_t>(header[1]) << 8 |
                  static_cast<uint32_t>(header[2]) << 16 |
                  static_cast<uint32_t>(header[3]) << 24;
  if (size > max_frame) {
    return Err(ErrorCode::kProtocolError, StrCat("oversized frame: ", size, " bytes"));
  }
  std::vector<uint8_t> payload(size);
  OMOS_TRY_VOID(pipe.ReadExact(payload.data(), size));
  return payload;
}

namespace {

class PortTransport : public Transport {
 public:
  PortTransport(ServeFn server, uint64_t cost) : server_(std::move(server)), cost_(cost) {}

  Result<std::vector<uint8_t>> RoundTrip(const std::vector<uint8_t>& request,
                                         uint64_t* cost_out) override {
    if (cost_out != nullptr) {
      *cost_out += cost_;
    }
    return server_(request);
  }

 private:
  ServeFn server_;
  uint64_t cost_;
};

class StreamTransport : public Transport {
 public:
  StreamTransport(ServeFn server, uint64_t base_cost, uint64_t cost_per_byte)
      : server_(std::move(server)), base_cost_(base_cost), cost_per_byte_(cost_per_byte) {}

  Result<std::vector<uint8_t>> RoundTrip(const std::vector<uint8_t>& request,
                                         uint64_t* cost_out) override {
    // Client -> server leg: frame onto the request pipe, server reads it.
    WriteFrame(to_server_, request);
    OMOS_TRY(std::vector<uint8_t> delivered, ReadFrame(to_server_));
    std::vector<uint8_t> reply = server_(delivered);
    // Server -> client leg.
    WriteFrame(to_client_, reply);
    OMOS_TRY(std::vector<uint8_t> received, ReadFrame(to_client_));
    if (cost_out != nullptr) {
      *cost_out += base_cost_ + cost_per_byte_ * (request.size() + reply.size() + 8);
    }
    return received;
  }

 private:
  ServeFn server_;
  uint64_t base_cost_;
  uint64_t cost_per_byte_;
  BytePipe to_server_;
  BytePipe to_client_;
};

}  // namespace

std::unique_ptr<Transport> MakePortTransport(ServeFn server, uint64_t round_trip_cost) {
  return std::make_unique<PortTransport>(std::move(server), round_trip_cost);
}

std::unique_ptr<Transport> MakeStreamTransport(ServeFn server, uint64_t base_cost,
                                               uint64_t cost_per_byte) {
  return std::make_unique<StreamTransport>(std::move(server), base_cost, cost_per_byte);
}

}  // namespace omos
