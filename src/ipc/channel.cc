#include "src/ipc/channel.h"

#include <algorithm>
#include <optional>

#include "src/os/task.h"
#include "src/support/metrics.h"
#include "src/support/strings.h"
#include "src/support/trace.h"

namespace omos {

bool IsRetryableError(ErrorCode code) {
  switch (code) {
    case ErrorCode::kTimeout:      // request or reply lost; resend
    case ErrorCode::kUnavailable:  // peer restarting; wait and resend
    case ErrorCode::kProtocolError:  // framing damage; stream was resynced
    case ErrorCode::kCorrupted:    // checksum mismatch; retransmit
    case ErrorCode::kIoError:      // transient simulated I/O failure
      return true;
    default:
      return false;
  }
}

namespace {

// Registry counters mirror the per-channel totals process-wide; looked up
// once (pointers are stable for the process lifetime).
struct ChannelMetrics {
  Counter* calls = MetricsRegistry::Global().GetCounter("ipc.calls");
  Counter* retries = MetricsRegistry::Global().GetCounter("ipc.retries");
  Counter* backoff_cycles = MetricsRegistry::Global().GetCounter("ipc.backoff_cycles");
  Counter* failures = MetricsRegistry::Global().GetCounter("ipc.failures");
  Counter* bytes_sent = MetricsRegistry::Global().GetCounter("ipc.bytes_sent");
  Counter* bytes_received = MetricsRegistry::Global().GetCounter("ipc.bytes_received");
  Counter* batch_calls = MetricsRegistry::Global().GetCounter("ipc.batch.calls");
  Counter* batch_requests = MetricsRegistry::Global().GetCounter("ipc.batch.requests");
  Counter* stub_hits = MetricsRegistry::Global().GetCounter("ipc.stub_cache.hits");
  Counter* stub_invalidations =
      MetricsRegistry::Global().GetCounter("ipc.stub_cache.invalidations");
  Counter* transport_fallbacks =
      MetricsRegistry::Global().GetCounter("ipc.transport_fallbacks");
  Counter* transport_repromotions =
      MetricsRegistry::Global().GetCounter("ipc.transport_repromotions");
};

ChannelMetrics& Metrics() {
  static ChannelMetrics* metrics = new ChannelMetrics();
  return *metrics;
}

}  // namespace

void Channel::ArmFallbackTransport(std::unique_ptr<Transport> fallback, int threshold,
                                   int repromote_after) {
  fallback_ = std::move(fallback);
  fallback_threshold_ = std::max(1, threshold);
  repromote_after_ = repromote_after;
  consecutive_corrupted_ = 0;
  clean_streak_ = 0;
  fallback_engaged_ = false;
  probing_ = false;
}

void Channel::EnableStubCache(size_t max_entries) {
  stub_capacity_ = max_entries;
  if (stub_cache_.size() > stub_capacity_) {
    stub_cache_.clear();
  }
}

std::string Channel::StubKey(const OmosRequest& request) {
  // 0x1f (unit separator) cannot appear in namespace paths or spec strings.
  return StrCat(request.path, "\x1f", request.specialization, "\x1f", request.task_handle);
}

void Channel::ObserveGeneration(uint64_t generation) {
  if (generation <= observed_generation_) {
    return;
  }
  observed_generation_ = generation;
  if (stub_cache_.empty()) {
    return;
  }
  size_t dropped = 0;
  for (auto it = stub_cache_.begin(); it != stub_cache_.end();) {
    if (it->second.generation < generation) {
      it = stub_cache_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  if (dropped > 0) {
    Metrics().stub_invalidations->Add(dropped);
    TraceInstant("ipc.stub_invalidate", "");
  }
}

const OmosReply* Channel::StubLookup(const OmosRequest& request) {
  if (stub_capacity_ == 0 || !Cacheable(request)) {
    return nullptr;
  }
  auto it = stub_cache_.find(StubKey(request));
  if (it == stub_cache_.end() || it->second.generation != observed_generation_) {
    return nullptr;
  }
  ++stub_hits_;
  Metrics().stub_hits->Add();
  return &it->second.reply;
}

void Channel::StubInsert(const OmosRequest& request, const OmosReply& reply) {
  if (stub_capacity_ == 0 || !Cacheable(request) || !reply.ok) {
    return;
  }
  if (stub_cache_.size() >= stub_capacity_) {
    stub_cache_.erase(stub_cache_.begin());  // bounded: drop the oldest key
  }
  stub_cache_[StubKey(request)] = StubEntry{reply, reply.generation};
}

Result<void> Channel::ExchangeWithRetry(
    const std::vector<uint8_t>& wire, Task* task, TraceSpan& trace,
    const std::function<Result<void>(const std::vector<uint8_t>&)>& decode) {
  ++calls_made_;
  Metrics().calls->Add();
  // Quiet period on the fallback elapsed: this exchange probes the demoted
  // transport. A clean delivery re-promotes it; a failure retreats below.
  if (fallback_engaged_ && !probing_ && repromote_after_ > 0 &&
      clean_streak_ >= repromote_after_ && fallback_ != nullptr) {
    std::swap(transport_, fallback_);
    probing_ = true;
  }
  uint64_t cost = 0;
  int attempts = std::max(1, retry_.max_attempts);
  std::optional<Error> last_error;
  bool delivered = false;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      // Capped exponential backoff, billed like any other simulated wait.
      uint64_t backoff = std::min(retry_.base_backoff_cycles << (attempt - 2),
                                  retry_.max_backoff_cycles);
      cost += backoff;
      backoff_cycles_billed_ += backoff;
      ++retries_made_;
      Metrics().retries->Add();
      Metrics().backoff_cycles->Add(backoff);
      TraceInstant("ipc.retry", last_error ? ErrorCodeName(last_error->code()) : "");
    }
    bytes_sent_ += wire.size();
    Metrics().bytes_sent->Add(wire.size());
    auto reply_bytes = transport_->RoundTrip(wire, &cost);
    if (reply_bytes.ok()) {
      bytes_received_ += reply_bytes->size();
      Metrics().bytes_received->Add(reply_bytes->size());
      auto decoded = decode(*reply_bytes);
      if (decoded.ok()) {
        last_error.reset();
        delivered = true;
        consecutive_corrupted_ = 0;  // a clean round trip ends the streak
        if (probing_) {
          // The demoted ring answered cleanly: re-promote it for good.
          probing_ = false;
          fallback_engaged_ = false;
          clean_streak_ = 0;
          Metrics().transport_repromotions->Add();
          TraceInstant("ipc.transport_repromote", "stream->ring");
        } else if (fallback_engaged_ && repromote_after_ > 0) {
          ++clean_streak_;
        }
        break;
      }
      // A reply that unmarshals wrong is as retryable as a damaged frame.
      last_error = decoded.error();
    } else {
      last_error = reply_bytes.error();
    }
    // Adaptive demotion: a streak of checksum failures means the transport
    // itself (a damaged ring mapping) is suspect, not the request — swap to
    // the armed fallback so the remaining retries go out on clean plumbing.
    // The swap retains the demoted transport for a later re-promotion probe.
    if (last_error->code() == ErrorCode::kCorrupted) {
      if (probing_) {
        // The probe hit corruption: the ring is still damaged. Retreat and
        // restart the quiet period.
        std::swap(transport_, fallback_);
        probing_ = false;
        clean_streak_ = 0;
      } else if (fallback_ != nullptr && !fallback_engaged_ &&
                 ++consecutive_corrupted_ >= fallback_threshold_) {
        std::swap(transport_, fallback_);
        fallback_engaged_ = true;
        consecutive_corrupted_ = 0;
        Metrics().transport_fallbacks->Add();
        TraceInstant("ipc.transport_fallback", "ring->stream");
      }
    } else {
      consecutive_corrupted_ = 0;
    }
    if (!IsRetryableError(last_error->code())) {
      break;
    }
  }
  // A probe that ran out of attempts without a clean delivery (e.g. on
  // timeouts rather than corruption) retreats too.
  if (!delivered && probing_) {
    std::swap(transport_, fallback_);
    probing_ = false;
    clean_streak_ = 0;
  }
  // Failed attempts consumed simulated time too.
  if (task != nullptr) {
    task->BillSys(cost);
  } else {
    cycles_billed_ += cost;
  }
  trace.AddSimCycles(0, cost);
  if (delivered) {
    return OkResult();
  }
  Metrics().failures->Add();
  return *last_error;
}

Result<OmosReply> Channel::Call(const OmosRequest& request, Task* task) {
  if (const OmosReply* cached = StubLookup(request)) {
    TraceInstant("ipc.stub_hit", request.path);
    return *cached;  // zero server round trips
  }
  TraceSpan trace("ipc.call");
  std::vector<uint8_t> wire = EncodeRequest(request);
  OmosReply reply;
  auto status = ExchangeWithRetry(
      wire, task, trace, [&](const std::vector<uint8_t>& bytes) -> Result<void> {
        OMOS_TRY(reply, DecodeReply(bytes));
        return OkResult();
      });
  if (!status.ok()) {
    trace.SetDetail(ErrorCodeName(status.error().code()));
    return status.error();
  }
  ObserveGeneration(reply.generation);
  StubInsert(request, reply);
  return reply;
}

Result<std::vector<OmosReply>> Channel::CallBatch(const std::vector<OmosRequest>& requests,
                                                  Task* task) {
  if (requests.empty()) {
    return Err(ErrorCode::kInvalidArgument, "empty batch");
  }
  std::vector<OmosReply> replies(requests.size());
  // Serve stub-cache hits locally; only misses cross the wire.
  std::vector<size_t> miss_index;
  miss_index.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    if (const OmosReply* cached = StubLookup(requests[i])) {
      replies[i] = *cached;
    } else {
      miss_index.push_back(i);
    }
  }
  if (miss_index.empty()) {
    TraceInstant("ipc.stub_hit", "whole batch");
    return replies;  // fully cached: no round trip at all
  }
  TraceSpan trace("ipc.call_batch");
  std::vector<OmosRequest> misses;
  misses.reserve(miss_index.size());
  for (size_t index : miss_index) {
    misses.push_back(requests[index]);
  }
  Metrics().batch_calls->Add();
  Metrics().batch_requests->Add(misses.size());
  std::vector<uint8_t> wire = EncodeRequestBatch(misses);
  std::vector<OmosReply> miss_replies;
  auto status = ExchangeWithRetry(
      wire, task, trace, [&](const std::vector<uint8_t>& bytes) -> Result<void> {
        OMOS_TRY(miss_replies, DecodeReplyBatch(bytes));
        if (miss_replies.size() != misses.size()) {
          return Err(ErrorCode::kProtocolError,
                     StrCat("batch reply count ", miss_replies.size(), " != request count ",
                            misses.size()));
        }
        return OkResult();
      });
  if (!status.ok()) {
    trace.SetDetail(ErrorCodeName(status.error().code()));
    return status.error();
  }
  for (size_t i = 0; i < miss_replies.size(); ++i) {
    ObserveGeneration(miss_replies[i].generation);
  }
  for (size_t i = 0; i < miss_replies.size(); ++i) {
    StubInsert(misses[i], miss_replies[i]);
    replies[miss_index[i]] = std::move(miss_replies[i]);
  }
  return replies;
}

}  // namespace omos
