#include "src/ipc/channel.h"

#include <algorithm>
#include <optional>

#include "src/os/task.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"

namespace omos {

bool IsRetryableError(ErrorCode code) {
  switch (code) {
    case ErrorCode::kTimeout:      // request or reply lost; resend
    case ErrorCode::kUnavailable:  // peer restarting; wait and resend
    case ErrorCode::kProtocolError:  // framing damage; stream was resynced
    case ErrorCode::kCorrupted:    // checksum mismatch; retransmit
    case ErrorCode::kIoError:      // transient simulated I/O failure
      return true;
    default:
      return false;
  }
}

namespace {

// Registry counters mirror the per-channel totals process-wide; looked up
// once (pointers are stable for the process lifetime).
struct ChannelMetrics {
  Counter* calls = MetricsRegistry::Global().GetCounter("ipc.calls");
  Counter* retries = MetricsRegistry::Global().GetCounter("ipc.retries");
  Counter* backoff_cycles = MetricsRegistry::Global().GetCounter("ipc.backoff_cycles");
  Counter* failures = MetricsRegistry::Global().GetCounter("ipc.failures");
};

ChannelMetrics& Metrics() {
  static ChannelMetrics* metrics = new ChannelMetrics();
  return *metrics;
}

}  // namespace

Result<OmosReply> Channel::Call(const OmosRequest& request, Task* task) {
  TraceSpan trace("ipc.call");
  ++calls_made_;
  Metrics().calls->Add();
  std::vector<uint8_t> wire = EncodeRequest(request);
  uint64_t cost = 0;
  int attempts = std::max(1, retry_.max_attempts);
  std::optional<Error> last_error;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      // Capped exponential backoff, billed like any other simulated wait.
      uint64_t backoff = std::min(retry_.base_backoff_cycles << (attempt - 2),
                                  retry_.max_backoff_cycles);
      cost += backoff;
      backoff_cycles_billed_ += backoff;
      ++retries_made_;
      Metrics().retries->Add();
      Metrics().backoff_cycles->Add(backoff);
      TraceInstant("ipc.retry", last_error ? ErrorCodeName(last_error->code()) : "");
    }
    auto reply_bytes = transport_->RoundTrip(wire, &cost);
    if (reply_bytes.ok()) {
      auto reply = DecodeReply(*reply_bytes);
      if (reply.ok()) {
        last_error.reset();
        if (task != nullptr) {
          task->BillSys(cost);
        } else {
          cycles_billed_ += cost;
        }
        trace.AddSimCycles(0, cost);
        return std::move(reply).value();
      }
      // A reply that unmarshals wrong is as retryable as a damaged frame.
      last_error = reply.error();
    } else {
      last_error = reply_bytes.error();
    }
    if (!IsRetryableError(last_error->code())) {
      break;
    }
  }
  // Failed attempts consumed simulated time too.
  if (task != nullptr) {
    task->BillSys(cost);
  } else {
    cycles_billed_ += cost;
  }
  trace.AddSimCycles(0, cost);
  trace.SetDetail(ErrorCodeName(last_error->code()));
  Metrics().failures->Add();
  return *last_error;
}

}  // namespace omos
