#include "src/ipc/channel.h"

#include <algorithm>
#include <optional>

#include "src/os/task.h"

namespace omos {

bool IsRetryableError(ErrorCode code) {
  switch (code) {
    case ErrorCode::kTimeout:      // request or reply lost; resend
    case ErrorCode::kUnavailable:  // peer restarting; wait and resend
    case ErrorCode::kProtocolError:  // framing damage; stream was resynced
    case ErrorCode::kCorrupted:    // checksum mismatch; retransmit
    case ErrorCode::kIoError:      // transient simulated I/O failure
      return true;
    default:
      return false;
  }
}

Result<OmosReply> Channel::Call(const OmosRequest& request, Task* task) {
  ++calls_made_;
  std::vector<uint8_t> wire = EncodeRequest(request);
  uint64_t cost = 0;
  int attempts = std::max(1, retry_.max_attempts);
  std::optional<Error> last_error;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempt > 1) {
      // Capped exponential backoff, billed like any other simulated wait.
      uint64_t backoff = std::min(retry_.base_backoff_cycles << (attempt - 2),
                                  retry_.max_backoff_cycles);
      cost += backoff;
      backoff_cycles_billed_ += backoff;
      ++retries_made_;
    }
    auto reply_bytes = transport_->RoundTrip(wire, &cost);
    if (reply_bytes.ok()) {
      auto reply = DecodeReply(*reply_bytes);
      if (reply.ok()) {
        last_error.reset();
        if (task != nullptr) {
          task->BillSys(cost);
        } else {
          cycles_billed_ += cost;
        }
        return std::move(reply).value();
      }
      // A reply that unmarshals wrong is as retryable as a damaged frame.
      last_error = reply.error();
    } else {
      last_error = reply_bytes.error();
    }
    if (!IsRetryableError(last_error->code())) {
      break;
    }
  }
  // Failed attempts consumed simulated time too.
  if (task != nullptr) {
    task->BillSys(cost);
  } else {
    cycles_billed_ += cost;
  }
  return *last_error;
}

}  // namespace omos
