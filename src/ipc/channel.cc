#include "src/ipc/channel.h"

#include "src/os/task.h"

namespace omos {

Result<OmosReply> Channel::Call(const OmosRequest& request, Task* task) {
  ++calls_made_;
  std::vector<uint8_t> wire = EncodeRequest(request);
  uint64_t cost = 0;
  OMOS_TRY(std::vector<uint8_t> reply_bytes, transport_->RoundTrip(wire, &cost));
  if (task != nullptr) {
    task->BillSys(cost);
  } else {
    cycles_billed_ += cost;
  }
  return DecodeReply(reply_bytes);
}

}  // namespace omos
