// Channel: the client side of OMOS IPC, billing the simulated round-trip
// cost to whoever makes the call (a task, or a bare cycle counter for
// server-to-server traffic).
#ifndef OMOS_SRC_IPC_CHANNEL_H_
#define OMOS_SRC_IPC_CHANNEL_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/ipc/message.h"
#include "src/ipc/transport.h"
#include "src/support/result.h"

namespace omos {

class Task;

// The server end: consumes a marshalled request, produces a marshalled
// reply. Implemented by core::OmosServer.
using MessageServer = std::function<std::vector<uint8_t>(const std::vector<uint8_t>&)>;

class Channel {
 public:
  // Message-oriented transport with a flat round-trip cost (Mach-like).
  Channel(MessageServer server, uint64_t round_trip_cost)
      : transport_(MakePortTransport(std::move(server), round_trip_cost)) {}

  // Any transport (see src/ipc/transport.h for the SysV-style byte stream).
  explicit Channel(std::unique_ptr<Transport> transport) : transport_(std::move(transport)) {}

  // Full marshal -> deliver -> unmarshal round trip. If `task` is non-null
  // the round-trip cost is billed to its system time; otherwise it is
  // accumulated in cycles_billed() (for host-side clients).
  Result<OmosReply> Call(const OmosRequest& request, Task* task);

  uint64_t cycles_billed() const { return cycles_billed_; }
  uint64_t calls_made() const { return calls_made_; }

 private:
  std::unique_ptr<Transport> transport_;
  uint64_t cycles_billed_ = 0;
  uint64_t calls_made_ = 0;
};

}  // namespace omos

#endif  // OMOS_SRC_IPC_CHANNEL_H_
