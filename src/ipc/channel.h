// Channel: the client side of OMOS IPC, billing the simulated round-trip
// cost to whoever makes the call (a task, or a bare cycle counter for
// server-to-server traffic).
//
// Channels survive transient transport failures: with a RetryPolicy armed,
// a retryable error (timeout, unavailable peer, framing/corruption damage)
// is retried with capped exponential backoff, and the backoff wait is
// billed in simulated cycles like any other cost.
//
// Two client-side optimizations ride on top of any transport:
//
//  * CallBatch — N requests marshalled into one frame, executed on the
//    server's request pool, N replies back, ONE transport round trip
//    billed. A failing member reply never poisons the other N-1.
//  * Stub cache (EnableStubCache) — successful Instantiate replies are
//    memoized by (path, specialization, task) so a repeat Instantiate is
//    answered locally with zero server round trips. Every server reply
//    piggybacks the namespace generation; a bumped generation (any
//    redefinition) invalidates stale entries at the next server contact,
//    so redefinition still takes effect on the next call.
#ifndef OMOS_SRC_IPC_CHANNEL_H_
#define OMOS_SRC_IPC_CHANNEL_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/ipc/message.h"
#include "src/ipc/transport.h"
#include "src/support/result.h"
#include "src/support/trace.h"

namespace omos {

class Task;

// The server end: consumes a marshalled request, produces a marshalled
// reply. Implemented by core::OmosServer.
using MessageServer = std::function<std::vector<uint8_t>(const std::vector<uint8_t>&)>;

// Errors worth retrying: the request may succeed if simply sent again.
bool IsRetryableError(ErrorCode code);

struct RetryPolicy {
  int max_attempts = 1;                // total attempts; 1 = fail fast
  uint64_t base_backoff_cycles = 500;  // wait before the first retry
  uint64_t max_backoff_cycles = 8000;  // cap for the exponential growth

  static RetryPolicy None() { return RetryPolicy{}; }
  static RetryPolicy Default() { return RetryPolicy{4, 500, 8000}; }
};

class Channel {
 public:
  // Message-oriented transport with a flat round-trip cost (Mach-like).
  Channel(MessageServer server, uint64_t round_trip_cost)
      : transport_(MakePortTransport(std::move(server), round_trip_cost)) {}

  // Any transport (see src/ipc/transport.h for the SysV-style byte stream,
  // src/ipc/ring_transport.h for the doors-style shared-memory ring).
  explicit Channel(std::unique_ptr<Transport> transport) : transport_(std::move(transport)) {}

  void set_retry_policy(RetryPolicy policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

  // Memoize successful Instantiate replies client-side (see file comment).
  // `max_entries` bounds the cache; 0 disables it again.
  void EnableStubCache(size_t max_entries = 256);

  // Adaptive transport demotion: after `threshold` consecutive kCorrupted
  // round trips the channel swaps to `fallback` (typically a plain stream
  // when the shared-memory ring's checksums keep failing — slower, but not
  // sharing the damaged mapping). A successful round trip resets the
  // streak. Demotions count in ipc.transport_fallbacks.
  //
  // Re-promotion: with `repromote_after` > 0, once `repromote_after`
  // consecutive exchanges deliver cleanly on the fallback the channel
  // probes the demoted transport again with the next exchange. A clean
  // probe re-promotes (ipc.transport_repromotions); a corrupted one
  // retreats to the fallback and restarts the quiet period. 0 keeps the
  // demotion permanent.
  void ArmFallbackTransport(std::unique_ptr<Transport> fallback, int threshold = 3,
                            int repromote_after = 0);
  bool fallback_engaged() const { return fallback_engaged_; }

  // Full marshal -> deliver -> unmarshal round trip, retried per the policy.
  // If `task` is non-null the round-trip cost (including backoff waits) is
  // billed to its system time; otherwise it is accumulated in
  // cycles_billed() (for host-side clients).
  Result<OmosReply> Call(const OmosRequest& request, Task* task);

  // Deliver `requests` as ONE frame and bill one transport round trip; the
  // reply vector is parallel to `requests`. Per-request failures come back
  // as ok=false member replies; only a transport/framing failure (after
  // retries, which resend the whole batch) fails the call. Stub-cache hits
  // are answered locally and trimmed from the wire frame — a fully cached
  // batch makes no round trip at all.
  Result<std::vector<OmosReply>> CallBatch(const std::vector<OmosRequest>& requests, Task* task);

  uint64_t cycles_billed() const { return cycles_billed_; }
  // Frames that reached the transport (stub-cache hits make none).
  uint64_t calls_made() const { return calls_made_; }
  uint64_t retries_made() const { return retries_made_; }
  uint64_t backoff_cycles_billed() const { return backoff_cycles_billed_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }
  uint64_t stub_hits() const { return stub_hits_; }
  // Newest namespace generation observed on any reply.
  uint64_t observed_generation() const { return observed_generation_; }

 private:
  struct StubEntry {
    OmosReply reply;
    uint64_t generation = 0;
  };

  // The retry loop shared by Call and CallBatch: deliver `wire`, let
  // `decode` validate/consume the reply bytes (a reply that unmarshals
  // wrong is as retryable as a damaged frame), bill `task` or the local
  // counter either way and attribute the cycles to `trace`.
  Result<void> ExchangeWithRetry(const std::vector<uint8_t>& wire, Task* task, TraceSpan& trace,
                                 const std::function<Result<void>(const std::vector<uint8_t>&)>& decode);

  static bool Cacheable(const OmosRequest& request) {
    return request.op == OmosOp::kInstantiate;
  }
  static std::string StubKey(const OmosRequest& request);
  // Fold a reply's piggybacked generation into the cache: a newer
  // generation drops every entry cached under an older one.
  void ObserveGeneration(uint64_t generation);
  const OmosReply* StubLookup(const OmosRequest& request);
  void StubInsert(const OmosRequest& request, const OmosReply& reply);

  std::unique_ptr<Transport> transport_;
  std::unique_ptr<Transport> fallback_;  // holds the demoted transport after a swap
  int fallback_threshold_ = 0;
  int consecutive_corrupted_ = 0;
  bool fallback_engaged_ = false;
  // Re-promotion state: clean exchanges delivered since the demotion, and
  // whether the current exchange is the probe running on the demoted ring.
  int repromote_after_ = 0;
  int clean_streak_ = 0;
  bool probing_ = false;
  RetryPolicy retry_;
  uint64_t cycles_billed_ = 0;
  uint64_t calls_made_ = 0;
  uint64_t retries_made_ = 0;
  uint64_t backoff_cycles_billed_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
  uint64_t stub_hits_ = 0;

  size_t stub_capacity_ = 0;  // 0 = stub cache disabled
  uint64_t observed_generation_ = 0;
  std::map<std::string, StubEntry> stub_cache_;
};

}  // namespace omos

#endif  // OMOS_SRC_IPC_CHANNEL_H_
