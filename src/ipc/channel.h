// Channel: the client side of OMOS IPC, billing the simulated round-trip
// cost to whoever makes the call (a task, or a bare cycle counter for
// server-to-server traffic).
//
// Channels survive transient transport failures: with a RetryPolicy armed,
// a retryable error (timeout, unavailable peer, framing/corruption damage)
// is retried with capped exponential backoff, and the backoff wait is
// billed in simulated cycles like any other cost.
#ifndef OMOS_SRC_IPC_CHANNEL_H_
#define OMOS_SRC_IPC_CHANNEL_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/ipc/message.h"
#include "src/ipc/transport.h"
#include "src/support/result.h"

namespace omos {

class Task;

// The server end: consumes a marshalled request, produces a marshalled
// reply. Implemented by core::OmosServer.
using MessageServer = std::function<std::vector<uint8_t>(const std::vector<uint8_t>&)>;

// Errors worth retrying: the request may succeed if simply sent again.
bool IsRetryableError(ErrorCode code);

struct RetryPolicy {
  int max_attempts = 1;                // total attempts; 1 = fail fast
  uint64_t base_backoff_cycles = 500;  // wait before the first retry
  uint64_t max_backoff_cycles = 8000;  // cap for the exponential growth

  static RetryPolicy None() { return RetryPolicy{}; }
  static RetryPolicy Default() { return RetryPolicy{4, 500, 8000}; }
};

class Channel {
 public:
  // Message-oriented transport with a flat round-trip cost (Mach-like).
  Channel(MessageServer server, uint64_t round_trip_cost)
      : transport_(MakePortTransport(std::move(server), round_trip_cost)) {}

  // Any transport (see src/ipc/transport.h for the SysV-style byte stream).
  explicit Channel(std::unique_ptr<Transport> transport) : transport_(std::move(transport)) {}

  void set_retry_policy(RetryPolicy policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }

  // Full marshal -> deliver -> unmarshal round trip, retried per the policy.
  // If `task` is non-null the round-trip cost (including backoff waits) is
  // billed to its system time; otherwise it is accumulated in
  // cycles_billed() (for host-side clients).
  Result<OmosReply> Call(const OmosRequest& request, Task* task);

  uint64_t cycles_billed() const { return cycles_billed_; }
  uint64_t calls_made() const { return calls_made_; }
  uint64_t retries_made() const { return retries_made_; }
  uint64_t backoff_cycles_billed() const { return backoff_cycles_billed_; }

 private:
  std::unique_ptr<Transport> transport_;
  RetryPolicy retry_;
  uint64_t cycles_billed_ = 0;
  uint64_t calls_made_ = 0;
  uint64_t retries_made_ = 0;
  uint64_t backoff_cycles_billed_ = 0;
};

}  // namespace omos

#endif  // OMOS_SRC_IPC_CHANNEL_H_
