// The OMOS IPC wire protocol.
//
// The paper's OMOS speaks Mach IPC, Sun RPC, and System V messages (§8.1);
// here there is one transport (an in-process channel with simulated cost,
// src/ipc/channel.h) but real marshalling: requests and replies cross the
// "boundary" as byte vectors, and malformed messages are protocol errors.
// Mapped segments cannot cross a message boundary — as on Mach, the server
// maps memory into the client's task directly and the reply carries only
// handles and addresses.
#ifndef OMOS_SRC_IPC_MESSAGE_H_
#define OMOS_SRC_IPC_MESSAGE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/support/result.h"

namespace omos {

enum class OmosOp : uint32_t {
  kInstantiate = 1,   // path + specialization -> image handle + entry + segments
  kDefineMeta = 2,    // path + blueprint text -> ok
  kListNamespace = 3, // path -> child names
  kDynamicLoad = 4,   // blueprint or path + wanted symbols -> bound values
  kStats = 5,         // -> cache statistics
  // Observability (omtrace). request.path selects the subcommand:
  //   "stats"          -> `metrics` holds the unified registry snapshot
  //   "stats-text"     -> `payload` holds the metrics text summary
  //   "trace"          -> `payload` holds Chrome trace_event JSON
  //   "trace-summary"  -> `payload` holds the trace text summary
  //   "trace-start" / "trace-stop" / "trace-clear" -> toggle tracing
  //   "profile-start" / "profile-stop"             -> toggle the profiler
  //   "profile"        -> `payload` holds a symbol-level profile of
  //                       request.task_handle (or flat across tasks when 0)
  kIntrospect = 6,
};

struct SegmentDesc {
  uint32_t base = 0;
  uint32_t size = 0;
  uint8_t prot = 0;
  std::string name;
};

struct OmosRequest {
  OmosOp op = OmosOp::kInstantiate;
  std::string path;           // namespace path (or blueprint text for kDynamicLoad)
  std::string specialization; // e.g. "lib-constrained", "" = meta-object default
  uint32_t task_handle = 0;   // target task for mapping ops
  std::vector<std::string> symbols;  // kDynamicLoad: symbols whose values to return
};

struct OmosReply {
  bool ok = false;
  std::string error;
  uint32_t entry = 0;
  std::vector<SegmentDesc> segments;       // what got mapped into the task
  std::vector<std::string> names;          // kListNamespace
  std::vector<uint32_t> symbol_values;     // kDynamicLoad, parallel to request.symbols
  uint64_t stat_hits = 0;
  uint64_t stat_misses = 0;
  // kIntrospect: free-form text payload (trace JSON, summaries, profiles,
  // "placements", "upgrade <libpath>" — new blueprint in
  // request.specialization — and "upgrade-status") and the structured
  // metrics snapshot.
  std::string payload;
  std::vector<std::pair<std::string, uint64_t>> metrics;
  // The server's namespace generation, piggybacked on every reply (success
  // or failure). Bumped by any namespace mutation (DefineMeta, AddFragment,
  // OptimizePlacements, Restore, ...); clients key cached replies on it so
  // a redefinition invalidates their stub caches on the next contact.
  uint64_t generation = 0;
};

std::vector<uint8_t> EncodeRequest(const OmosRequest& request);
Result<OmosRequest> DecodeRequest(const std::vector<uint8_t>& bytes);
std::vector<uint8_t> EncodeReply(const OmosReply& reply);
Result<OmosReply> DecodeReply(const std::vector<uint8_t>& bytes);

// ---- Request batching -------------------------------------------------------
// N requests marshalled into one frame; the server executes them on its
// request pool and returns N replies in request order, all for one
// transport round trip. A malformed or failing member yields a reply with
// ok=false in its position — it never poisons the other N-1. An empty
// batch is a protocol error.
std::vector<uint8_t> EncodeRequestBatch(const std::vector<OmosRequest>& requests);
Result<std::vector<OmosRequest>> DecodeRequestBatch(const std::vector<uint8_t>& bytes);
std::vector<uint8_t> EncodeReplyBatch(const std::vector<OmosReply>& replies);
Result<std::vector<OmosReply>> DecodeReplyBatch(const std::vector<uint8_t>& bytes);
// Cheap magic peek: does this frame carry a batch? (The server's message
// entry point dispatches on it.)
bool IsBatchRequest(const std::vector<uint8_t>& bytes);
bool IsBatchReply(const std::vector<uint8_t>& bytes);

}  // namespace omos

#endif  // OMOS_SRC_IPC_MESSAGE_H_
