// The OMOS IPC wire protocol.
//
// The paper's OMOS speaks Mach IPC, Sun RPC, and System V messages (§8.1);
// here there is one transport (an in-process channel with simulated cost,
// src/ipc/channel.h) but real marshalling: requests and replies cross the
// "boundary" as byte vectors, and malformed messages are protocol errors.
// Mapped segments cannot cross a message boundary — as on Mach, the server
// maps memory into the client's task directly and the reply carries only
// handles and addresses.
#ifndef OMOS_SRC_IPC_MESSAGE_H_
#define OMOS_SRC_IPC_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/result.h"

namespace omos {

enum class OmosOp : uint32_t {
  kInstantiate = 1,   // path + specialization -> image handle + entry + segments
  kDefineMeta = 2,    // path + blueprint text -> ok
  kListNamespace = 3, // path -> child names
  kDynamicLoad = 4,   // blueprint or path + wanted symbols -> bound values
  kStats = 5,         // -> cache statistics
};

struct SegmentDesc {
  uint32_t base = 0;
  uint32_t size = 0;
  uint8_t prot = 0;
  std::string name;
};

struct OmosRequest {
  OmosOp op = OmosOp::kInstantiate;
  std::string path;           // namespace path (or blueprint text for kDynamicLoad)
  std::string specialization; // e.g. "lib-constrained", "" = meta-object default
  uint32_t task_handle = 0;   // target task for mapping ops
  std::vector<std::string> symbols;  // kDynamicLoad: symbols whose values to return
};

struct OmosReply {
  bool ok = false;
  std::string error;
  uint32_t entry = 0;
  std::vector<SegmentDesc> segments;       // what got mapped into the task
  std::vector<std::string> names;          // kListNamespace
  std::vector<uint32_t> symbol_values;     // kDynamicLoad, parallel to request.symbols
  uint64_t stat_hits = 0;
  uint64_t stat_misses = 0;
};

std::vector<uint8_t> EncodeRequest(const OmosRequest& request);
Result<OmosRequest> DecodeRequest(const std::vector<uint8_t>& bytes);
std::vector<uint8_t> EncodeReply(const OmosReply& reply);
Result<OmosReply> DecodeReply(const std::vector<uint8_t>& bytes);

}  // namespace omos

#endif  // OMOS_SRC_IPC_MESSAGE_H_
