// IPC transports. The paper's OMOS "supports communication via Mach IPC,
// Sun RPC, and System V messages" (§8.1); the HP-UX timings in Table 1 used
// System V messages, the Mach timings used Mach IPC. Here the same server
// endpoint is reachable over two transports with different cost shapes:
//
//  * PortTransport   — message-oriented (Mach-like): constant cost per
//                      round trip, messages delivered whole.
//  * StreamTransport — byte-stream with explicit length framing (SysV /
//                      RPC-over-pipe-like): base cost plus a per-byte cost,
//                      and real framing code that can fail on truncation.
//
// Both transports carry fault sites (src/support/faultsim.h): frames can be
// dropped (kTimeout), truncated, bit-flipped or given absurd length headers.
// Each frame carries a checksum, so in-flight corruption surfaces as a typed
// kCorrupted error instead of a misparsed message, and the stream transport
// resynchronizes its pipes after any framing error — stale payload bytes are
// never misread as the next frame's header.
#ifndef OMOS_SRC_IPC_TRANSPORT_H_
#define OMOS_SRC_IPC_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/support/result.h"

namespace omos {

// A transport carries request bytes to a server function and reply bytes
// back, accumulating the simulated cycle cost of the round trip.
class Transport {
 public:
  virtual ~Transport() = default;

  // Deliver `request`, produce the reply. `cost_out` accumulates simulated
  // cycles for this round trip.
  virtual Result<std::vector<uint8_t>> RoundTrip(const std::vector<uint8_t>& request,
                                                 uint64_t* cost_out) = 0;
};

using ServeFn = std::function<std::vector<uint8_t>(const std::vector<uint8_t>&)>;

// Message-oriented: whole messages, constant cost (Mach IPC shape).
std::unique_ptr<Transport> MakePortTransport(ServeFn server, uint64_t round_trip_cost);

// Byte-stream: length + checksum framing over an in-memory duplex pipe,
// cost = base + per_byte * bytes (System V message / RPC shape). The framing
// really runs — a mangled length prefix is a protocol error, a mangled
// payload a kCorrupted error.
std::unique_ptr<Transport> MakeStreamTransport(ServeFn server, uint64_t base_cost,
                                               uint64_t cost_per_byte);

// The in-memory byte pipe the stream transport runs over (exposed for
// tests: you can inject/inspect raw bytes).
class BytePipe {
 public:
  void Write(const uint8_t* data, size_t size);
  // Read exactly `size` bytes; fails if the pipe drains first.
  Result<void> ReadExact(uint8_t* out, size_t size);
  // XOR `mask` into the byte at `offset` from the read end (fault injection).
  void FlipBits(size_t offset, uint8_t mask);
  size_t buffered() const { return buffer_.size(); }
  void Clear() { buffer_.clear(); }

 private:
  std::deque<uint8_t> buffer_;
};

// Framing helpers shared by the stream transport and its tests. Each frame
// is an 8-byte header — 4-byte little-endian length, 4-byte FNV-1a payload
// checksum — followed by the payload. ReadFrame verifies the checksum
// (kCorrupted on mismatch). A completely empty pipe is a clean EOF at a
// frame boundary — "peer closed", reported as kUnavailable with the pipe
// untouched, since sync is intact. Any *partial* read (truncated header or
// payload, bad length, bad checksum) means framing is lost: those errors
// drain the pipe, because everything buffered is garbage.
inline constexpr size_t kFrameHeaderSize = 8;
void WriteFrame(BytePipe& pipe, const std::vector<uint8_t>& payload);
Result<std::vector<uint8_t>> ReadFrame(BytePipe& pipe, uint32_t max_frame = 16u << 20);

}  // namespace omos

#endif  // OMOS_SRC_IPC_TRANSPORT_H_
