#include "src/ipc/message.h"

#include "src/objfmt/bytes.h"
#include "src/support/strings.h"

namespace omos {

namespace {
constexpr uint32_t kRequestMagic = 0x4f524551;       // "OREQ"
constexpr uint32_t kReplyMagic = 0x4f525040;         // "ORP@"
constexpr uint32_t kBatchRequestMagic = 0x4f425251;  // "OBRQ"
constexpr uint32_t kBatchReplyMagic = 0x4f425250;    // "OBRP"

uint32_t PeekMagic(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 4) {
    return 0;
  }
  return static_cast<uint32_t>(bytes[0]) | static_cast<uint32_t>(bytes[1]) << 8 |
         static_cast<uint32_t>(bytes[2]) << 16 | static_cast<uint32_t>(bytes[3]) << 24;
}
}  // namespace

std::vector<uint8_t> EncodeRequest(const OmosRequest& request) {
  ByteWriter w;
  w.U32(kRequestMagic);
  w.U32(static_cast<uint32_t>(request.op));
  w.Str(request.path);
  w.Str(request.specialization);
  w.U32(request.task_handle);
  w.U32(static_cast<uint32_t>(request.symbols.size()));
  for (const std::string& sym : request.symbols) {
    w.Str(sym);
  }
  return w.Take();
}

Result<OmosRequest> DecodeRequest(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  OMOS_TRY(uint32_t magic, r.U32());
  if (magic != kRequestMagic) {
    return Err(ErrorCode::kProtocolError, "bad request magic");
  }
  OmosRequest request;
  OMOS_TRY(uint32_t op, r.U32());
  if (op < 1 || op > 6) {
    return Err(ErrorCode::kProtocolError, StrCat("bad op ", op));
  }
  request.op = static_cast<OmosOp>(op);
  OMOS_TRY(request.path, r.Str());
  OMOS_TRY(request.specialization, r.Str());
  OMOS_TRY(request.task_handle, r.U32());
  OMOS_TRY(uint32_t nsyms, r.U32());
  for (uint32_t i = 0; i < nsyms; ++i) {
    OMOS_TRY(std::string sym, r.Str());
    request.symbols.push_back(std::move(sym));
  }
  return request;
}

std::vector<uint8_t> EncodeReply(const OmosReply& reply) {
  ByteWriter w;
  w.U32(kReplyMagic);
  w.U8(reply.ok ? 1 : 0);
  w.Str(reply.error);
  w.U32(reply.entry);
  w.U32(static_cast<uint32_t>(reply.segments.size()));
  for (const SegmentDesc& seg : reply.segments) {
    w.U32(seg.base);
    w.U32(seg.size);
    w.U8(seg.prot);
    w.Str(seg.name);
  }
  w.U32(static_cast<uint32_t>(reply.names.size()));
  for (const std::string& name : reply.names) {
    w.Str(name);
  }
  w.U32(static_cast<uint32_t>(reply.symbol_values.size()));
  for (uint32_t value : reply.symbol_values) {
    w.U32(value);
  }
  w.U64(reply.stat_hits);
  w.U64(reply.stat_misses);
  w.Str(reply.payload);
  w.U32(static_cast<uint32_t>(reply.metrics.size()));
  for (const auto& [name, value] : reply.metrics) {
    w.Str(name);
    w.U64(value);
  }
  w.U64(reply.generation);
  return w.Take();
}

Result<OmosReply> DecodeReply(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  OMOS_TRY(uint32_t magic, r.U32());
  if (magic != kReplyMagic) {
    return Err(ErrorCode::kProtocolError, "bad reply magic");
  }
  OmosReply reply;
  OMOS_TRY(uint8_t ok, r.U8());
  reply.ok = ok != 0;
  OMOS_TRY(reply.error, r.Str());
  OMOS_TRY(reply.entry, r.U32());
  OMOS_TRY(uint32_t nsegs, r.U32());
  for (uint32_t i = 0; i < nsegs; ++i) {
    SegmentDesc seg;
    OMOS_TRY(seg.base, r.U32());
    OMOS_TRY(seg.size, r.U32());
    OMOS_TRY(seg.prot, r.U8());
    OMOS_TRY(seg.name, r.Str());
    reply.segments.push_back(std::move(seg));
  }
  OMOS_TRY(uint32_t nnames, r.U32());
  for (uint32_t i = 0; i < nnames; ++i) {
    OMOS_TRY(std::string name, r.Str());
    reply.names.push_back(std::move(name));
  }
  OMOS_TRY(uint32_t nvalues, r.U32());
  for (uint32_t i = 0; i < nvalues; ++i) {
    OMOS_TRY(uint32_t value, r.U32());
    reply.symbol_values.push_back(value);
  }
  OMOS_TRY(reply.stat_hits, r.U64());
  OMOS_TRY(reply.stat_misses, r.U64());
  OMOS_TRY(reply.payload, r.Str());
  OMOS_TRY(uint32_t nmetrics, r.U32());
  for (uint32_t i = 0; i < nmetrics; ++i) {
    OMOS_TRY(std::string name, r.Str());
    OMOS_TRY(uint64_t value, r.U64());
    reply.metrics.emplace_back(std::move(name), value);
  }
  OMOS_TRY(reply.generation, r.U64());
  return reply;
}

// ---- Request batching -------------------------------------------------------
// Envelope: magic + count + one length-prefixed encoded message per member.
// Members reuse the single-message codecs, so every existing malformed-
// message defence applies per member.

std::vector<uint8_t> EncodeRequestBatch(const std::vector<OmosRequest>& requests) {
  ByteWriter w;
  w.U32(kBatchRequestMagic);
  w.U32(static_cast<uint32_t>(requests.size()));
  for (const OmosRequest& request : requests) {
    w.Raw(EncodeRequest(request));
  }
  return w.Take();
}

Result<std::vector<OmosRequest>> DecodeRequestBatch(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  OMOS_TRY(uint32_t magic, r.U32());
  if (magic != kBatchRequestMagic) {
    return Err(ErrorCode::kProtocolError, "bad batch request magic");
  }
  OMOS_TRY(uint32_t count, r.U32());
  if (count == 0) {
    return Err(ErrorCode::kProtocolError, "empty request batch");
  }
  std::vector<OmosRequest> requests;
  requests.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    OMOS_TRY(std::vector<uint8_t> member, r.Raw());
    OMOS_TRY(OmosRequest request, DecodeRequest(member));
    requests.push_back(std::move(request));
  }
  return requests;
}

std::vector<uint8_t> EncodeReplyBatch(const std::vector<OmosReply>& replies) {
  ByteWriter w;
  w.U32(kBatchReplyMagic);
  w.U32(static_cast<uint32_t>(replies.size()));
  for (const OmosReply& reply : replies) {
    w.Raw(EncodeReply(reply));
  }
  return w.Take();
}

Result<std::vector<OmosReply>> DecodeReplyBatch(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  OMOS_TRY(uint32_t magic, r.U32());
  if (magic != kBatchReplyMagic) {
    return Err(ErrorCode::kProtocolError, "bad batch reply magic");
  }
  OMOS_TRY(uint32_t count, r.U32());
  if (count == 0) {
    return Err(ErrorCode::kProtocolError, "empty reply batch");
  }
  std::vector<OmosReply> replies;
  replies.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    OMOS_TRY(std::vector<uint8_t> member, r.Raw());
    OMOS_TRY(OmosReply reply, DecodeReply(member));
    replies.push_back(std::move(reply));
  }
  return replies;
}

bool IsBatchRequest(const std::vector<uint8_t>& bytes) {
  return PeekMagic(bytes) == kBatchRequestMagic;
}

bool IsBatchReply(const std::vector<uint8_t>& bytes) {
  return PeekMagic(bytes) == kBatchReplyMagic;
}

}  // namespace omos
