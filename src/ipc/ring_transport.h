// Doors-style shared-memory ring transport.
//
// The port and stream transports (src/ipc/transport.h) model message-queue
// IPC: every round trip pays a scheduler bounce and a marshalling copy
// through the kernel (cost_model.ipc_round_trip = 9000 cycles). Solaris
// doors showed the alternative: map a buffer into both address spaces, write
// the request into a fixed-size slot in place, and hand the slot off with a
// doorbell — a cross-process call for little more than a protected procedure
// call. Table 1's bootstrap-vs-integrated gap is an IPC-count story, so this
// is the transport that closes it (see `table1 --sweep`).
//
// Protocol. Two rings (request ring, reply ring) of fixed-size slots. A
// message occupies ceil(size / slot_bytes) consecutive slots, wrapping at
// the ring end. Each slot is published with a seqlock: the writer bumps the
// slot's sequence word to odd, fills the slot (chunk bytes, chunk length,
// per-slot FNV-1a checksum, total message length in the head slot), then
// bumps it to even and flips the slot state to kReady. The reader verifies
// the sequence is stable-even and the checksum matches before consuming;
// damage surfaces as a typed kCorrupted error and the ring resets to a
// clean state (the recovery analogue of the stream transport's pipe drain),
// so the retry machinery in Channel carries over unchanged.
//
// Fault sites (src/support/faultsim.h):
//   ring.corrupt  flip a byte in a just-published slot -> reader kCorrupted
//   ring.stall    peer never takes the handoff -> kTimeout after a bounded
//                 simulated spin, slots reclaimed
//
// Cost shape: ring_handoff per round trip plus ring_slot per slot spanned
// beyond the first in each direction — cheap and nearly flat in message
// size, vs ipc_round_trip + per-byte for the queue transports.
#ifndef OMOS_SRC_IPC_RING_TRANSPORT_H_
#define OMOS_SRC_IPC_RING_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/ipc/transport.h"
#include "src/support/result.h"

namespace omos {

// One direction of the shared ring (exposed for tests: wrap-around and
// corruption-recovery behaviour is unit-testable without a server).
class SharedMemoryRing {
 public:
  // `slots` is rounded up to a power of two; capacity = slots * slot_bytes.
  SharedMemoryRing(uint32_t slots, uint32_t slot_bytes);

  // Publish `message` into consecutive slots (seqlock discipline per slot).
  // kInvalidArgument if the message cannot fit in the ring at all;
  // kUnavailable if the peer has not yet drained enough slots.
  Result<void> Push(const std::vector<uint8_t>& message);

  // Consume the oldest published message: verify every slot's seqlock is
  // stable and its checksum matches, reassemble, free the slots.
  // kUnavailable on an empty ring; kCorrupted (after Reset()) on damage.
  Result<std::vector<uint8_t>> Pop();

  // Recovery: mark every slot free and rewind both cursors. The ring
  // analogue of the stream transport's desync drain.
  void Reset();

  uint32_t slot_count() const { return static_cast<uint32_t>(slots_.size()); }
  uint32_t slot_bytes() const { return slot_bytes_; }
  bool empty() const { return live_slots_ == 0; }

  // Slots a `size`-byte message would span.
  uint32_t SlotsFor(size_t size) const {
    return size == 0 ? 1 : static_cast<uint32_t>((size + slot_bytes_ - 1) / slot_bytes_);
  }

  // Lifetime traffic counters (authoritative; the transport mirrors them
  // into the ipc.ring.* registry metrics).
  uint64_t messages_pushed() const { return messages_pushed_; }
  uint64_t slots_published() const { return slots_published_; }
  uint64_t wraps() const { return wraps_; }
  uint64_t corruptions_seen() const { return corruptions_seen_; }

  // Damage a byte of a published slot in place (fault injection / tests).
  // The slot index is relative to the oldest unconsumed message.
  void CorruptByte(uint32_t slot_offset, uint32_t byte_offset, uint8_t mask);

 private:
  enum SlotState : uint32_t { kFree = 0, kReady = 1 };

  struct Slot {
    std::atomic<uint32_t> seq{0};  // seqlock: odd while being written
    uint32_t state = kFree;
    uint32_t chunk_len = 0;
    uint32_t total_len = 0;  // head slot of a message only
    uint32_t checksum = 0;   // FNV-1a over the chunk bytes
    std::vector<uint8_t> bytes;
  };

  uint32_t Mask() const { return static_cast<uint32_t>(slots_.size()) - 1; }

  std::vector<Slot> slots_;
  uint32_t slot_bytes_;
  uint32_t head_ = 0;  // next slot the writer publishes
  uint32_t tail_ = 0;  // next slot the reader consumes
  uint32_t live_slots_ = 0;
  uint64_t messages_pushed_ = 0;
  uint64_t slots_published_ = 0;
  uint64_t wraps_ = 0;
  uint64_t corruptions_seen_ = 0;
};

struct RingConfig {
  uint32_t slots = 64;
  uint32_t slot_bytes = 512;
  // Billed once per round trip (doorbell + peer pickup).
  uint64_t handoff_cost = 400;
  // Billed per slot spanned beyond the first, each direction.
  uint64_t slot_cost = 40;
  // Simulated cycles burned spinning on a stalled peer before giving up
  // with kTimeout (the ring.stall fault site).
  uint64_t stall_spin_cycles = 2000;
};

// A Transport over a pair of SharedMemoryRings bound to `server`. Same
// ServeFn contract as the port/stream transports, so it drops into Channel
// (retry/backoff, batching, the stub cache) unchanged.
std::unique_ptr<Transport> MakeRingTransport(ServeFn server, RingConfig config = RingConfig());

}  // namespace omos

#endif  // OMOS_SRC_IPC_RING_TRANSPORT_H_
