#include "src/ipc/ring_transport.h"

#include <algorithm>
#include <cstring>

#include "src/support/faultsim.h"
#include "src/support/metrics.h"
#include "src/support/strings.h"

namespace omos {

namespace {

uint32_t RoundUpPow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

uint32_t ChunkChecksum(const uint8_t* data, size_t size) {
  return static_cast<uint32_t>(Fnv1aBytes(data, size));
}

}  // namespace

SharedMemoryRing::SharedMemoryRing(uint32_t slots, uint32_t slot_bytes)
    : slots_(std::max<uint32_t>(2, RoundUpPow2(slots))), slot_bytes_(std::max<uint32_t>(16, slot_bytes)) {
  for (Slot& slot : slots_) {
    slot.bytes.resize(slot_bytes_);
  }
}

Result<void> SharedMemoryRing::Push(const std::vector<uint8_t>& message) {
  uint32_t needed = SlotsFor(message.size());
  if (needed > slot_count()) {
    return Err(ErrorCode::kInvalidArgument,
               StrCat("message of ", message.size(), " bytes needs ", needed,
                      " slots; ring has ", slot_count()));
  }
  if (live_slots_ + needed > slot_count()) {
    return Err(ErrorCode::kUnavailable,
               StrCat("ring full: ", live_slots_, "/", slot_count(), " slots live"));
  }
  for (uint32_t i = 0; i < needed; ++i) {
    uint32_t index = (head_ + i) & Mask();
    if (index == 0 && slots_published_ + i > 0) {
      ++wraps_;  // any later landing on slot 0 means the cursor crossed the end
    }
    Slot& slot = slots_[index];
    size_t offset = static_cast<size_t>(i) * slot_bytes_;
    size_t chunk = std::min<size_t>(slot_bytes_, message.size() - std::min(offset, message.size()));
    // Seqlock publish: odd while the slot is inconsistent, even when stable.
    slot.seq.fetch_add(1, std::memory_order_acq_rel);
    if (chunk > 0) {
      std::memcpy(slot.bytes.data(), message.data() + offset, chunk);
    }
    slot.chunk_len = static_cast<uint32_t>(chunk);
    slot.total_len = i == 0 ? static_cast<uint32_t>(message.size()) : 0;
    slot.checksum = ChunkChecksum(slot.bytes.data(), chunk);
    slot.state = kReady;
    slot.seq.fetch_add(1, std::memory_order_acq_rel);
  }
  head_ = (head_ + needed) & Mask();
  live_slots_ += needed;
  ++messages_pushed_;
  slots_published_ += needed;
  return OkResult();
}

Result<std::vector<uint8_t>> SharedMemoryRing::Pop() {
  if (live_slots_ == 0) {
    return Err(ErrorCode::kUnavailable, "ring empty: nothing published");
  }
  Slot& first = slots_[tail_];
  uint32_t seq_before = first.seq.load(std::memory_order_acquire);
  if ((seq_before & 1u) != 0 || first.state != kReady) {
    // Torn handoff: the writer died (or stalled) mid-publish.
    Reset();
    return Err(ErrorCode::kUnavailable, "ring head slot torn mid-publish");
  }
  uint32_t total = first.total_len;
  uint32_t needed = SlotsFor(total);
  if (needed > live_slots_) {
    Reset();
    return Err(ErrorCode::kCorrupted,
               StrCat("ring head claims ", total, " bytes (", needed, " slots), only ",
                      live_slots_, " live"));
  }
  std::vector<uint8_t> message;
  message.reserve(total);
  for (uint32_t i = 0; i < needed; ++i) {
    Slot& slot = slots_[(tail_ + i) & Mask()];
    uint32_t s1 = slot.seq.load(std::memory_order_acquire);
    if ((s1 & 1u) != 0 || slot.state != kReady) {
      Reset();
      return Err(ErrorCode::kUnavailable, StrCat("ring slot ", i, " torn mid-publish"));
    }
    if (slot.checksum != ChunkChecksum(slot.bytes.data(), slot.chunk_len)) {
      ++corruptions_seen_;
      Reset();
      return Err(ErrorCode::kCorrupted,
                 StrCat("ring slot ", i, " checksum mismatch over ", slot.chunk_len, " bytes"));
    }
    uint32_t s2 = slot.seq.load(std::memory_order_acquire);
    if (s1 != s2) {
      Reset();
      return Err(ErrorCode::kUnavailable, StrCat("ring slot ", i, " republished mid-read"));
    }
    message.insert(message.end(), slot.bytes.begin(), slot.bytes.begin() + slot.chunk_len);
  }
  if (message.size() != total) {
    ++corruptions_seen_;
    Reset();
    return Err(ErrorCode::kCorrupted,
               StrCat("ring message reassembled to ", message.size(), " bytes, head claimed ",
                      total));
  }
  // Free the consumed slots.
  for (uint32_t i = 0; i < needed; ++i) {
    Slot& slot = slots_[(tail_ + i) & Mask()];
    slot.seq.fetch_add(1, std::memory_order_acq_rel);
    slot.state = kFree;
    slot.chunk_len = 0;
    slot.total_len = 0;
    slot.checksum = 0;
    slot.seq.fetch_add(1, std::memory_order_acq_rel);
  }
  tail_ = (tail_ + needed) & Mask();
  live_slots_ -= needed;
  return message;
}

void SharedMemoryRing::Reset() {
  for (Slot& slot : slots_) {
    slot.seq.fetch_add(2, std::memory_order_acq_rel);  // stays even: stable-free
    slot.state = kFree;
    slot.chunk_len = 0;
    slot.total_len = 0;
    slot.checksum = 0;
  }
  head_ = 0;
  tail_ = 0;
  live_slots_ = 0;
}

void SharedMemoryRing::CorruptByte(uint32_t slot_offset, uint32_t byte_offset, uint8_t mask) {
  if (live_slots_ == 0) {
    return;
  }
  Slot& slot = slots_[(tail_ + slot_offset % live_slots_) & Mask()];
  if (slot.chunk_len == 0) {
    return;
  }
  slot.bytes[byte_offset % slot.chunk_len] ^= mask;
}

namespace {

// Registry mirrors of the per-ring counters (process-wide totals).
struct RingMetrics {
  Counter* handoffs = MetricsRegistry::Global().GetCounter("ipc.ring.handoffs");
  Counter* slots = MetricsRegistry::Global().GetCounter("ipc.ring.slots");
  Counter* wraps = MetricsRegistry::Global().GetCounter("ipc.ring.wraps");
  Counter* corruptions = MetricsRegistry::Global().GetCounter("ipc.ring.corruptions");
  Counter* stalls = MetricsRegistry::Global().GetCounter("ipc.ring.stalls");
};

RingMetrics& Metrics() {
  static RingMetrics* metrics = new RingMetrics();
  return *metrics;
}

class RingTransport : public Transport {
 public:
  RingTransport(ServeFn server, RingConfig config)
      : server_(std::move(server)),
        config_(config),
        to_server_(config.slots, config.slot_bytes),
        to_client_(config.slots, config.slot_bytes) {}

  Result<std::vector<uint8_t>> RoundTrip(const std::vector<uint8_t>& request,
                                         uint64_t* cost_out) override {
    uint32_t knob = 0;
    // The doorbell cost is paid whether or not the handoff survives.
    Bill(cost_out, config_.handoff_cost +
                       config_.slot_cost * (to_server_.SlotsFor(request.size()) - 1));
    auto pushed = to_server_.Push(request);
    if (!pushed.ok()) {
      Recover();
      return pushed.error();
    }
    Track(to_server_);
    if (FaultSim::Trip("ring.corrupt", &knob)) {
      to_server_.CorruptByte(knob >> 8, knob, static_cast<uint8_t>(1u << (knob % 8)));
    }
    if (FaultSim::Trip("ring.stall")) {
      // The server thread never takes the doorbell: burn the spin budget,
      // reclaim the slots so the ring stays usable, report a timeout.
      Metrics().stalls->Add();
      Bill(cost_out, config_.stall_spin_cycles);
      Recover();
      return Err(ErrorCode::kTimeout, "ring peer stalled on request handoff");
    }
    auto delivered = to_server_.Pop();
    if (!delivered.ok()) {
      return Tracked(to_server_, delivered.error());
    }
    std::vector<uint8_t> reply = server_(*delivered);

    Bill(cost_out, config_.slot_cost * (to_client_.SlotsFor(reply.size()) - 1));
    auto reply_pushed = to_client_.Push(reply);
    if (!reply_pushed.ok()) {
      Recover();
      return reply_pushed.error();
    }
    Track(to_client_);
    if (FaultSim::Trip("ring.corrupt", &knob)) {
      to_client_.CorruptByte(knob >> 8, knob, static_cast<uint8_t>(1u << (knob % 8)));
    }
    if (FaultSim::Trip("ring.stall")) {
      Metrics().stalls->Add();
      Bill(cost_out, config_.stall_spin_cycles);
      Recover();
      return Err(ErrorCode::kTimeout, "ring peer stalled on reply handoff");
    }
    auto received = to_client_.Pop();
    if (!received.ok()) {
      return Tracked(to_client_, received.error());
    }
    Metrics().handoffs->Add();
    return received;
  }

 private:
  static void Bill(uint64_t* cost_out, uint64_t cycles) {
    if (cost_out != nullptr) {
      *cost_out += cycles;
    }
  }

  // Mirror a ring's per-push deltas into the registry counters.
  void Track(SharedMemoryRing& ring) {
    uint64_t& seen_slots = &ring == &to_server_ ? server_slots_seen_ : client_slots_seen_;
    uint64_t& seen_wraps = &ring == &to_server_ ? server_wraps_seen_ : client_wraps_seen_;
    Metrics().slots->Add(ring.slots_published() - seen_slots);
    Metrics().wraps->Add(ring.wraps() - seen_wraps);
    seen_slots = ring.slots_published();
    seen_wraps = ring.wraps();
  }

  // A failed Pop already reset the ring; count the corruption and make sure
  // both directions start the next attempt clean.
  Error Tracked(SharedMemoryRing& ring, Error error) {
    (void)ring;
    if (error.code() == ErrorCode::kCorrupted) {
      Metrics().corruptions->Add();
    }
    Recover();
    return error;
  }

  void Recover() {
    to_server_.Reset();
    to_client_.Reset();
  }

  ServeFn server_;
  RingConfig config_;
  SharedMemoryRing to_server_;
  SharedMemoryRing to_client_;
  uint64_t server_slots_seen_ = 0;
  uint64_t client_slots_seen_ = 0;
  uint64_t server_wraps_seen_ = 0;
  uint64_t client_wraps_seen_ = 0;
};

}  // namespace

std::unique_ptr<Transport> MakeRingTransport(ServeFn server, RingConfig config) {
  return std::make_unique<RingTransport>(std::move(server), config);
}

}  // namespace omos
