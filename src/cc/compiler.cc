#include "src/cc/compiler.h"

#include <cctype>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <vector>

#include "src/support/strings.h"

namespace omos {

namespace {

// ---- Lexer ------------------------------------------------------------------

enum class Tok {
  kEnd,
  kIdent,
  kNumber,
  kString,
  kPunct,  // operators and punctuation, text in `text`
  kKwInt,
  kKwIf,
  kKwElse,
  kKwWhile,
  kKwFor,
  kKwBreak,
  kKwContinue,
  kKwReturn,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  int64_t number = 0;
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      SkipSpace();
      Token tok;
      tok.line = line_;
      if (pos_ >= src_.size()) {
        out.push_back(tok);
        return out;
      }
      char c = src_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
        size_t start = pos_;
        while (pos_ < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(src_[pos_])) != 0 || src_[pos_] == '_')) {
          ++pos_;
        }
        tok.text = std::string(src_.substr(start, pos_ - start));
        if (tok.text == "int") {
          tok.kind = Tok::kKwInt;
        } else if (tok.text == "if") {
          tok.kind = Tok::kKwIf;
        } else if (tok.text == "else") {
          tok.kind = Tok::kKwElse;
        } else if (tok.text == "while") {
          tok.kind = Tok::kKwWhile;
        } else if (tok.text == "for") {
          tok.kind = Tok::kKwFor;
        } else if (tok.text == "break") {
          tok.kind = Tok::kKwBreak;
        } else if (tok.text == "continue") {
          tok.kind = Tok::kKwContinue;
        } else if (tok.text == "return") {
          tok.kind = Tok::kKwReturn;
        } else {
          tok.kind = Tok::kIdent;
        }
      } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        size_t start = pos_;
        while (pos_ < src_.size() &&
               (std::isalnum(static_cast<unsigned char>(src_[pos_])) != 0)) {
          ++pos_;
        }
        std::string text(src_.substr(start, pos_ - start));
        tok.kind = Tok::kNumber;
        tok.number = std::strtoll(text.c_str(), nullptr, 0);
      } else if (c == '\'') {
        // Character literal.
        ++pos_;
        if (pos_ >= src_.size()) {
          return LexErr("unterminated char literal");
        }
        char v = src_[pos_++];
        if (v == '\\' && pos_ < src_.size()) {
          char esc = src_[pos_++];
          v = esc == 'n' ? '\n' : esc == 't' ? '\t' : esc == '0' ? '\0' : esc;
        }
        if (pos_ >= src_.size() || src_[pos_] != '\'') {
          return LexErr("unterminated char literal");
        }
        ++pos_;
        tok.kind = Tok::kNumber;
        tok.number = v;
      } else if (c == '"') {
        ++pos_;
        std::string value;
        while (pos_ < src_.size() && src_[pos_] != '"') {
          char v = src_[pos_++];
          if (v == '\\' && pos_ < src_.size()) {
            char esc = src_[pos_++];
            v = esc == 'n' ? '\n' : esc == 't' ? '\t' : esc == '0' ? '\0' : esc;
          }
          value.push_back(v);
        }
        if (pos_ >= src_.size()) {
          return LexErr("unterminated string literal");
        }
        ++pos_;
        tok.kind = Tok::kString;
        tok.text = std::move(value);
      } else {
        static const char* kTwoChar[] = {"==", "!=", "<=", ">=", "&&", "||"};
        tok.kind = Tok::kPunct;
        bool matched = false;
        if (pos_ + 1 < src_.size()) {
          std::string two(src_.substr(pos_, 2));
          for (const char* cand : kTwoChar) {
            if (two == cand) {
              tok.text = two;
              pos_ += 2;
              matched = true;
              break;
            }
          }
        }
        if (!matched) {
          tok.text = std::string(1, c);
          ++pos_;
        }
      }
      out.push_back(std::move(tok));
    }
  }

 private:
  void SkipSpace() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') {
          ++pos_;
        }
      } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < src_.size() && !(src_[pos_] == '*' && src_[pos_ + 1] == '/')) {
          if (src_[pos_] == '\n') {
            ++line_;
          }
          ++pos_;
        }
        pos_ += 2;
      } else {
        break;
      }
    }
  }

  Error LexErr(std::string message) const {
    return Err(ErrorCode::kParseError, StrCat("oc:", line_, ": ", std::move(message)));
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
};

// ---- Code generator ---------------------------------------------------------
//
// Evaluation model: every expression leaves its value in r0. Binary ops
// evaluate the left side, push it, evaluate the right side, then pop the
// left into r1 and combine. r11 is the frame pointer; locals live at
// negative offsets from it. The generated code favours simplicity over
// quality — it is a substrate, not the contribution.

class Compiler {
 public:
  explicit Compiler(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Result<std::string> Run() {
    while (!At(Tok::kEnd)) {
      OMOS_TRY_VOID(TopLevel());
    }
    std::ostringstream out;
    out << ".text\n" << text_.str();
    std::string data = data_.str();
    if (!data.empty()) {
      out << ".data\n.align 4\n" << data;
    }
    std::string bss = bss_.str();
    if (!bss.empty()) {
      out << ".bss\n.align 4\n" << bss;
    }
    return out.str();
  }

 private:
  // -- token helpers
  const Token& Cur() const { return toks_[pos_]; }
  bool At(Tok kind) const { return Cur().kind == kind; }
  bool AtPunct(std::string_view p) const { return Cur().kind == Tok::kPunct && Cur().text == p; }
  void Advance() { ++pos_; }
  bool EatPunct(std::string_view p) {
    if (AtPunct(p)) {
      Advance();
      return true;
    }
    return false;
  }
  Result<void> ExpectPunct(std::string_view p) {
    if (!EatPunct(p)) {
      return ParseErr(StrCat("expected '", p, "', got '", Cur().text, "'"));
    }
    return OkResult();
  }
  Error ParseErr(std::string message) const {
    return Err(ErrorCode::kParseError, StrCat("oc:", Cur().line, ": ", std::move(message)));
  }

  // -- emission helpers
  void E(std::string_view line) { text_ << "  " << line << "\n"; }
  void Label(std::string_view label) { text_ << label << ":\n"; }
  std::string NewLabel(std::string_view stem) { return StrCat(".L", stem, label_counter_++); }
  std::string InternString(const std::string& value) {
    std::string label = StrCat(".Lstr", label_counter_++);
    std::ostringstream esc;
    for (char c : value) {
      if (c == '\n') {
        esc << "\\n";
      } else if (c == '\t') {
        esc << "\\t";
      } else if (c == '"') {
        esc << "\\\"";
      } else if (c == '\\') {
        esc << "\\\\";
      } else if (c == '\0') {
        esc << "\\0";
      } else {
        esc << c;
      }
    }
    data_ << label << ": .asciiz \"" << esc.str() << "\"\n.align 4\n";
    return label;
  }

  // -- symbol tables
  struct Local {
    int offset = 0;  // relative to r11 (negative)
    bool is_array = false;
  };

  std::optional<Local> FindLocal(const std::string& name) const {
    auto it = locals_.find(name);
    if (it == locals_.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  // -- grammar
  Result<void> TopLevel() {
    if (!At(Tok::kKwInt)) {
      return ParseErr(StrCat("expected declaration, got '", Cur().text, "'"));
    }
    Advance();
    while (EatPunct("*")) {
      // Pointers are ints; stars at the declaration site are accepted noise.
    }
    if (!At(Tok::kIdent)) {
      return ParseErr("expected identifier");
    }
    std::string name = Cur().text;
    Advance();
    if (AtPunct("(")) {
      return Function(name);
    }
    return GlobalVar(name);
  }

  Result<void> GlobalVar(const std::string& name) {
    if (EatPunct("[")) {
      if (!At(Tok::kNumber)) {
        return ParseErr("expected array size");
      }
      int64_t n = Cur().number;
      Advance();
      OMOS_TRY_VOID(ExpectPunct("]"));
      OMOS_TRY_VOID(ExpectPunct(";"));
      bss_ << ".global " << name << "\n" << name << ": .space " << n * 4 << "\n";
      global_arrays_.insert(name);
      return OkResult();
    }
    int64_t init = 0;
    if (EatPunct("=")) {
      bool negative = EatPunct("-");
      if (!At(Tok::kNumber)) {
        return ParseErr("global initializer must be a constant");
      }
      init = negative ? -Cur().number : Cur().number;
      Advance();
    }
    OMOS_TRY_VOID(ExpectPunct(";"));
    data_ << ".global " << name << "\n" << name << ": .word " << init << "\n";
    return OkResult();
  }

  Result<void> Function(const std::string& name) {
    OMOS_TRY_VOID(ExpectPunct("("));
    locals_.clear();
    frame_size_ = 0;
    std::vector<std::string> params;
    if (!AtPunct(")")) {
      while (true) {
        if (!At(Tok::kKwInt)) {
          return ParseErr("expected parameter type");
        }
        Advance();
        while (EatPunct("*")) {
        }
        if (!At(Tok::kIdent)) {
          return ParseErr("expected parameter name");
        }
        params.push_back(Cur().text);
        Advance();
        if (!EatPunct(",")) {
          break;
        }
      }
    }
    OMOS_TRY_VOID(ExpectPunct(")"));
    if (params.size() > 4) {
      return ParseErr("more than 4 parameters not supported");
    }
    for (const std::string& param : params) {
      OMOS_TRY_VOID(AddLocal(param, 1, false));
    }

    // Body is compiled into a side buffer so the frame size is known for the
    // prologue.
    std::ostringstream saved_text;
    saved_text.swap(text_);
    epilogue_label_ = NewLabel("ret");
    OMOS_TRY_VOID(ExpectPunct("{"));
    OMOS_TRY_VOID(BlockRest());
    std::string body = text_.str();
    text_.swap(saved_text);

    text_ << ".global " << name << "\n" << name << ":\n";
    E("push lr");
    E("push r11");
    E("mov r11, sp");
    if (frame_size_ > 0) {
      E(StrCat("addi sp, sp, -", frame_size_));
    }
    for (size_t i = 0; i < params.size(); ++i) {
      E(StrCat("st r", i, ", [r11+", locals_[params[i]].offset, "]"));
    }
    text_ << body;
    E("movi r0, 0");  // fall-off-end returns 0
    Label(epilogue_label_);
    E("mov sp, r11");
    E("pop r11");
    E("pop lr");
    E("ret");
    return OkResult();
  }

  Result<void> AddLocal(const std::string& name, int words, bool is_array) {
    if (locals_.count(name) != 0) {
      return ParseErr(StrCat("duplicate local ", name));
    }
    frame_size_ += words * 4;
    locals_[name] = Local{-frame_size_, is_array};
    return OkResult();
  }

  // Block with the opening '{' already consumed.
  Result<void> BlockRest() {
    while (!AtPunct("}")) {
      if (At(Tok::kEnd)) {
        return ParseErr("unterminated block");
      }
      OMOS_TRY_VOID(Statement());
    }
    Advance();
    return OkResult();
  }

  Result<void> Statement() {
    if (At(Tok::kKwInt)) {
      Advance();
      while (EatPunct("*")) {
      }
      if (!At(Tok::kIdent)) {
        return ParseErr("expected local name");
      }
      std::string name = Cur().text;
      Advance();
      if (EatPunct("[")) {
        if (!At(Tok::kNumber)) {
          return ParseErr("expected array size");
        }
        int64_t n = Cur().number;
        Advance();
        OMOS_TRY_VOID(ExpectPunct("]"));
        OMOS_TRY_VOID(ExpectPunct(";"));
        return AddLocal(name, static_cast<int>(n), true);
      }
      OMOS_TRY_VOID(AddLocal(name, 1, false));
      if (EatPunct("=")) {
        OMOS_TRY_VOID(Expr());
        E(StrCat("st r0, [r11+", locals_[name].offset, "]"));
      }
      return ExpectPunct(";");
    }
    if (At(Tok::kKwReturn)) {
      Advance();
      if (!AtPunct(";")) {
        OMOS_TRY_VOID(Expr());
      }
      OMOS_TRY_VOID(ExpectPunct(";"));
      E(StrCat("br ", epilogue_label_));
      return OkResult();
    }
    if (At(Tok::kKwIf)) {
      Advance();
      OMOS_TRY_VOID(ExpectPunct("("));
      OMOS_TRY_VOID(Expr());
      OMOS_TRY_VOID(ExpectPunct(")"));
      std::string else_label = NewLabel("else");
      std::string end_label = NewLabel("endif");
      E("movi r1, 0");
      E(StrCat("beq r0, r1, ", else_label));
      OMOS_TRY_VOID(StatementOrBlock());
      if (At(Tok::kKwElse)) {
        Advance();
        E(StrCat("br ", end_label));
        Label(else_label);
        OMOS_TRY_VOID(StatementOrBlock());
        Label(end_label);
      } else {
        Label(else_label);
      }
      return OkResult();
    }
    if (At(Tok::kKwWhile)) {
      Advance();
      std::string top = NewLabel("while");
      std::string end = NewLabel("endwhile");
      Label(top);
      OMOS_TRY_VOID(ExpectPunct("("));
      OMOS_TRY_VOID(Expr());
      OMOS_TRY_VOID(ExpectPunct(")"));
      E("movi r1, 0");
      E(StrCat("beq r0, r1, ", end));
      loops_.push_back({end, top});
      OMOS_TRY_VOID(StatementOrBlock());
      loops_.pop_back();
      E(StrCat("br ", top));
      Label(end);
      return OkResult();
    }
    if (At(Tok::kKwFor)) {
      return ForStatement();
    }
    if (At(Tok::kKwBreak) || At(Tok::kKwContinue)) {
      bool is_break = At(Tok::kKwBreak);
      Advance();
      OMOS_TRY_VOID(ExpectPunct(";"));
      if (loops_.empty()) {
        return ParseErr(is_break ? "break outside loop" : "continue outside loop");
      }
      E(StrCat("br ", is_break ? loops_.back().first : loops_.back().second));
      return OkResult();
    }
    if (EatPunct("{")) {
      return BlockRest();
    }
    OMOS_TRY_VOID(SimpleStatement());
    return ExpectPunct(";");
  }

  // for (init; cond; step) body — the step clause is compiled into a side
  // buffer and replayed after the body.
  Result<void> ForStatement() {
    Advance();  // for
    OMOS_TRY_VOID(ExpectPunct("("));
    if (!EatPunct(";")) {
      OMOS_TRY_VOID(Statement());  // decl or assignment, consumes ';'
    }
    std::string cond = NewLabel("for");
    std::string step = NewLabel("forstep");
    std::string end = NewLabel("endfor");
    Label(cond);
    if (!AtPunct(";")) {
      OMOS_TRY_VOID(Expr());
      E("movi r1, 0");
      E(StrCat("beq r0, r1, ", end));
    }
    OMOS_TRY_VOID(ExpectPunct(";"));
    std::string step_code;
    if (!AtPunct(")")) {
      std::ostringstream saved;
      saved.swap(text_);
      OMOS_TRY_VOID(SimpleStatement());
      step_code = text_.str();
      text_.swap(saved);
    }
    OMOS_TRY_VOID(ExpectPunct(")"));
    loops_.push_back({end, step});
    OMOS_TRY_VOID(StatementOrBlock());
    loops_.pop_back();
    Label(step);
    text_ << step_code;
    E(StrCat("br ", cond));
    Label(end);
    return OkResult();
  }

  // Assignment or expression, with no trailing ';'.
  Result<void> SimpleStatement() {
    if (AtPunct("*")) {
      // *expr = value;
      Advance();
      OMOS_TRY_VOID(Unary());
      E("push r0");  // address
      OMOS_TRY_VOID(ExpectPunct("="));
      OMOS_TRY_VOID(Expr());
      E("pop r1");
      E("st r0, [r1+0]");
      return OkResult();
    }
    if (At(Tok::kIdent)) {
      // Lookahead for "ident =", "ident[expr] =".
      size_t save = pos_;
      std::string name = Cur().text;
      Advance();
      if (EatPunct("=")) {
        OMOS_TRY_VOID(Expr());
        return StoreVar(name);
      }
      if (EatPunct("[")) {
        OMOS_TRY_VOID(Expr());  // index
        OMOS_TRY_VOID(ExpectPunct("]"));
        if (EatPunct("=")) {
          E("movi r1, 4");
          E("mul r0, r0, r1");
          E("push r0");
          OMOS_TRY_VOID(LoadVarAddressValue(name));  // base address in r0
          E("pop r1");
          E("add r0, r0, r1");
          E("push r0");  // element address
          OMOS_TRY_VOID(Expr());
          E("pop r1");
          E("st r0, [r1+0]");
          return OkResult();
        }
        // `a[i]` as a bare statement would need rollback of emitted index
        // code; no workload needs it, so reject rather than miscompile.
        return ParseErr("array expression statement not supported");
      }
      pos_ = save;  // plain expression statement
    }
    return Expr();
  }

  Result<void> StatementOrBlock() {
    if (EatPunct("{")) {
      return BlockRest();
    }
    return Statement();
  }

  // Store r0 into variable `name`.
  Result<void> StoreVar(const std::string& name) {
    if (auto local = FindLocal(name); local.has_value()) {
      if (local->is_array) {
        return ParseErr(StrCat("cannot assign to array ", name));
      }
      E(StrCat("st r0, [r11+", local->offset, "]"));
      return OkResult();
    }
    E(StrCat("lea r1, ", name));
    E("st r0, [r1+0]");
    return OkResult();
  }

  // Leave the *pointer value* of `name` in r0: for arrays this is the base
  // address; for scalars it is the variable's value (pointer arithmetic).
  Result<void> LoadVarAddressValue(const std::string& name) {
    if (auto local = FindLocal(name); local.has_value()) {
      if (local->is_array) {
        E(StrCat("addi r0, r11, ", local->offset));
      } else {
        E(StrCat("ld r0, [r11+", local->offset, "]"));
      }
      return OkResult();
    }
    if (global_arrays_.count(name) != 0) {
      E(StrCat("lea r0, ", name));
    } else {
      E(StrCat("lea r1, ", name));
      E("ld r0, [r1+0]");
    }
    return OkResult();
  }

  // -- expressions (precedence climbing)
  Result<void> Expr() { return OrExpr(); }

  // || and && short-circuit, as in C: the right side is not evaluated when
  // the left side decides the result.
  Result<void> OrExpr() {
    OMOS_TRY_VOID(AndExpr());
    if (!AtPunct("||")) {
      return OkResult();
    }
    std::string true_label = NewLabel("ortrue");
    std::string end_label = NewLabel("orend");
    while (AtPunct("||")) {
      Advance();
      E("movi r1, 0");
      E(StrCat("bne r0, r1, ", true_label));
      OMOS_TRY_VOID(AndExpr());
    }
    E("movi r1, 0");
    E(StrCat("bne r0, r1, ", true_label));
    E("movi r0, 0");
    E(StrCat("br ", end_label));
    Label(true_label);
    E("movi r0, 1");
    Label(end_label);
    return OkResult();
  }

  Result<void> AndExpr() {
    OMOS_TRY_VOID(BitExpr());
    if (!AtPunct("&&")) {
      return OkResult();
    }
    std::string false_label = NewLabel("andfalse");
    std::string end_label = NewLabel("andend");
    while (AtPunct("&&")) {
      Advance();
      E("movi r1, 0");
      E(StrCat("beq r0, r1, ", false_label));
      OMOS_TRY_VOID(BitExpr());
    }
    E("movi r1, 0");
    E(StrCat("beq r0, r1, ", false_label));
    E("movi r0, 1");
    E(StrCat("br ", end_label));
    Label(false_label);
    E("movi r0, 0");
    Label(end_label);
    return OkResult();
  }

  // Collapse r0 to 0/1.
  Result<void> Normalize() {
    E("movi r1, 0");
    E("movi r2, 1");
    E("bne r0, r1, 8");
    E("movi r2, 0");
    E("mov r0, r2");
    return OkResult();
  }

  Result<void> BitExpr() {
    OMOS_TRY_VOID(CmpExpr());
    while (AtPunct("&") || AtPunct("|") || AtPunct("^")) {
      std::string op = Cur().text;
      Advance();
      E("push r0");
      OMOS_TRY_VOID(CmpExpr());
      E("pop r1");
      E(StrCat(op == "&" ? "and" : op == "|" ? "or" : "xor", " r0, r1, r0"));
    }
    return OkResult();
  }

  Result<void> CmpExpr() {
    OMOS_TRY_VOID(AddExpr());
    while (AtPunct("==") || AtPunct("!=") || AtPunct("<") || AtPunct("<=") || AtPunct(">") ||
           AtPunct(">=")) {
      std::string op = Cur().text;
      Advance();
      E("push r0");
      OMOS_TRY_VOID(AddExpr());
      E("pop r1");
      // r1 <op> r0 -> 0/1 in r0, via a branch that skips the "false" move.
      std::string insn = op == "==" ? "beq"
                         : op == "!=" ? "bne"
                         : op == "<"  ? "blt"
                         : op == "<=" ? "bge"  // r1 <= r0  <=>  r0 >= r1
                         : op == ">"  ? "blt"  // r1 > r0   <=>  r0 < r1
                                      : "bge";  // r1 >= r0
      bool swapped = (op == "<=" || op == ">");
      E("movi r2, 1");
      if (swapped) {
        E(StrCat(insn, " r0, r1, 8"));
      } else {
        E(StrCat(insn, " r1, r0, 8"));
      }
      E("movi r2, 0");
      E("mov r0, r2");
    }
    return OkResult();
  }

  Result<void> AddExpr() {
    OMOS_TRY_VOID(MulExpr());
    while (AtPunct("+") || AtPunct("-")) {
      std::string op = Cur().text;
      Advance();
      E("push r0");
      OMOS_TRY_VOID(MulExpr());
      E("pop r1");
      E(StrCat(op == "+" ? "add" : "sub", " r0, r1, r0"));
    }
    return OkResult();
  }

  Result<void> MulExpr() {
    OMOS_TRY_VOID(Unary());
    while (AtPunct("*") || AtPunct("/") || AtPunct("%")) {
      std::string op = Cur().text;
      Advance();
      E("push r0");
      OMOS_TRY_VOID(Unary());
      E("pop r1");
      E(StrCat(op == "*" ? "mul" : op == "/" ? "div" : "mod", " r0, r1, r0"));
    }
    return OkResult();
  }

  Result<void> Unary() {
    if (EatPunct("-")) {
      OMOS_TRY_VOID(Unary());
      E("movi r1, 0");
      E("sub r0, r1, r0");
      return OkResult();
    }
    if (EatPunct("!")) {
      OMOS_TRY_VOID(Unary());
      E("movi r1, 0");
      E("movi r2, 0");
      E("bne r0, r1, 8");
      E("movi r2, 1");
      E("mov r0, r2");
      return OkResult();
    }
    if (EatPunct("*")) {
      OMOS_TRY_VOID(Unary());
      E("ld r0, [r0+0]");
      return OkResult();
    }
    if (EatPunct("&")) {
      if (!At(Tok::kIdent)) {
        return ParseErr("& requires a variable");
      }
      std::string name = Cur().text;
      Advance();
      if (auto local = FindLocal(name); local.has_value()) {
        E(StrCat("addi r0, r11, ", local->offset));
      } else {
        E(StrCat("lea r0, ", name));
      }
      return OkResult();
    }
    return Primary();
  }

  Result<void> Primary() {
    if (At(Tok::kNumber)) {
      E(StrCat("movi r0, ", Cur().number));
      Advance();
      return OkResult();
    }
    if (At(Tok::kString)) {
      std::string label = InternString(Cur().text);
      Advance();
      E(StrCat("lea r0, ", label));
      return OkResult();
    }
    if (EatPunct("(")) {
      OMOS_TRY_VOID(Expr());
      return ExpectPunct(")");
    }
    if (!At(Tok::kIdent)) {
      return ParseErr(StrCat("unexpected token '", Cur().text, "'"));
    }
    std::string name = Cur().text;
    Advance();
    if (AtPunct("(")) {
      return Call(name);
    }
    if (EatPunct("[")) {
      OMOS_TRY_VOID(Expr());
      OMOS_TRY_VOID(ExpectPunct("]"));
      E("movi r1, 4");
      E("mul r0, r0, r1");
      E("push r0");
      OMOS_TRY_VOID(LoadVarAddressValue(name));
      E("pop r1");
      E("add r0, r0, r1");
      E("ld r0, [r0+0]");
      return OkResult();
    }
    return LoadVarAddressValue(name);
  }

  Result<void> Call(const std::string& name) {
    OMOS_TRY_VOID(ExpectPunct("("));
    int argc = 0;
    if (!AtPunct(")")) {
      while (true) {
        OMOS_TRY_VOID(Expr());
        E("push r0");
        ++argc;
        if (!EatPunct(",")) {
          break;
        }
      }
    }
    OMOS_TRY_VOID(ExpectPunct(")"));
    if (argc > 4) {
      return ParseErr("more than 4 call arguments not supported");
    }
    for (int i = argc - 1; i >= 0; --i) {
      E(StrCat("pop r", i));
    }
    E(StrCat("call ", name));
    return OkResult();
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
  std::ostringstream text_;
  std::ostringstream data_;
  std::ostringstream bss_;
  std::map<std::string, Local> locals_;
  std::set<std::string> global_arrays_;
  int frame_size_ = 0;
  int label_counter_ = 0;
  std::string epilogue_label_;
  // (break_label, continue_label) per enclosing loop.
  std::vector<std::pair<std::string, std::string>> loops_;
};

}  // namespace

Result<std::string> CompileC(std::string_view source) {
  Lexer lexer(source);
  OMOS_TRY(std::vector<Token> toks, lexer.Run());
  Compiler compiler(std::move(toks));
  return compiler.Run();
}

}  // namespace omos
