// A small C-subset compiler ("OC") targeting SimISA assembly.
//
// Backs the blueprint operator `(source "c" ...)` — Figure 3 of the paper
// resolves an undefined data reference with (source "c" "int undef_var = 0;").
// Supported subset:
//   * int globals with optional initializers, int arrays: int g = 3; int a[8];
//   * functions: int f(int a, int b) { ... } with up to 4 parameters
//   * locals (int), assignment, pointer deref (*p = e, x = *p), address-of
//     (&g, &local), array indexing (a[i] as *(a + i) with 4-byte scaling)
//   * if/else, while, return, blocks, expression statements
//   * int literals, string literals (valued as the string's address),
//     calls, unary - ! *, binary + - * / % == != < <= > >= & | ^ && ||
// Everything is a 32-bit int; pointer arithmetic on `+`/`-` with arrays is
// *not* auto-scaled except through the a[i] form.
#ifndef OMOS_SRC_CC_COMPILER_H_
#define OMOS_SRC_CC_COMPILER_H_

#include <string>
#include <string_view>

#include "src/support/result.h"

namespace omos {

// Compile OC source to SimISA assembly text (feed to Assemble()).
Result<std::string> CompileC(std::string_view source);

}  // namespace omos

#endif  // OMOS_SRC_CC_COMPILER_H_
