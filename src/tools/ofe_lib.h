// OFE core operations (§8.1): the non-server Object File Editor. These are
// the file-level editing operations the OFE command-line tool exposes; the
// OMOS server uses the richer module calculus (src/linker/module.h), but a
// per-file editor works directly on symbol tables, as the original did.
#ifndef OMOS_SRC_TOOLS_OFE_LIB_H_
#define OMOS_SRC_TOOLS_OFE_LIB_H_

#include <string>
#include <vector>

#include "src/linker/image.h"
#include "src/objfmt/archive.h"
#include "src/objfmt/object_file.h"
#include "src/support/result.h"

namespace omos {

// Human-readable symbol table ("nm"-alike).
std::string OfeSymbolListing(const ObjectFile& object);

// Relocation listing, one line per fixup.
std::string OfeRelocListing(const ObjectFile& object);

// Disassemble the text section with symbol labels and reloc annotations.
Result<std::string> OfeDisassembly(const ObjectFile& object);

// Rename every symbol matching `pattern` to `replacement` ('&' substitutes
// the original name); relocations follow.
Result<ObjectFile> OfeRename(const ObjectFile& object, const std::string& pattern,
                             const std::string& replacement);

// Demote matching defined globals to local visibility ("strip exports").
Result<ObjectFile> OfeHide(const ObjectFile& object, const std::string& pattern);

// Demote matching defined globals to weak binding.
Result<ObjectFile> OfeWeaken(const ObjectFile& object, const std::string& pattern);

// Drop local symbols that no relocation needs ("strip -x"-alike).
Result<ObjectFile> OfeStripLocals(const ObjectFile& object);

// Link several objects into an image at `text_base` (unresolved refs
// allowed when `allow_unresolved`).
Result<LinkedImage> OfeLink(const std::vector<ObjectFile>& objects, uint32_t text_base,
                            bool allow_unresolved);

// Aggregate an omtrace Chrome-trace JSON document (as written by the
// server's Introspect "trace" subcommand or omos_shell's `trace` built-in)
// into a per-span report: count, total/avg wall time, simulated cycles.
Result<std::string> OfeTraceReport(std::string_view json);

// Host filesystem I/O (the OFE "manipulates files in the normal Unix file
// namespace").
Result<std::vector<uint8_t>> ReadHostFile(const std::string& path);
Result<void> WriteHostFile(const std::string& path, const std::vector<uint8_t>& bytes);
Result<ObjectFile> LoadObjectFile(const std::string& path);
Result<void> SaveObjectFile(const ObjectFile& object, const std::string& path,
                            std::string_view format = "xof-binary");

}  // namespace omos

#endif  // OMOS_SRC_TOOLS_OFE_LIB_H_
