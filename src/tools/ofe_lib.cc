#include "src/tools/ofe_lib.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <map>
#include <set>
#include <sstream>

#include "src/isa/isa.h"
#include "src/linker/link.h"
#include "src/linker/module.h"
#include "src/objfmt/backend.h"
#include "src/support/strings.h"
#include "src/support/trace.h"

namespace omos {

namespace {

std::string Substitute(const std::string& replacement, const std::string& original) {
  std::string out;
  for (char c : replacement) {
    if (c == '&') {
      out += original;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string OfeSymbolListing(const ObjectFile& object) {
  std::ostringstream out;
  out << "object " << object.name() << ": text " << object.section(SectionKind::kText).size()
      << ", data " << object.section(SectionKind::kData).size() << ", bss "
      << object.section(SectionKind::kBss).size() << " bytes\n";
  for (const Symbol& sym : object.symbols()) {
    if (sym.defined) {
      out << "  " << sym.name << " " << SymbolBindingName(sym.binding) << " "
          << SectionKindName(sym.section) << " +" << sym.value;
      if (sym.size != 0) {
        out << " size " << sym.size;
      }
      out << "\n";
    } else {
      out << "  " << sym.name << " undefined\n";
    }
  }
  return out.str();
}

std::string OfeRelocListing(const ObjectFile& object) {
  std::ostringstream out;
  for (int s = 0; s < kNumSections; ++s) {
    SectionKind kind = static_cast<SectionKind>(s);
    for (const Relocation& reloc : object.section(kind).relocs) {
      out << "  " << SectionKindName(kind) << "+" << reloc.offset << " "
          << RelocKindName(reloc.kind) << " -> " << reloc.symbol;
      if (reloc.addend != 0) {
        out << (reloc.addend > 0 ? "+" : "") << reloc.addend;
      }
      out << "\n";
    }
  }
  return out.str();
}

Result<std::string> OfeDisassembly(const ObjectFile& object) {
  std::ostringstream out;
  const Section& text = object.section(SectionKind::kText);
  for (uint32_t off = 0; off + kInsnSize <= text.bytes.size(); off += kInsnSize) {
    for (const Symbol& sym : object.symbols()) {
      if (sym.defined && sym.section == SectionKind::kText && sym.value == off) {
        out << sym.name << ":\n";
      }
    }
    OMOS_TRY(Instruction insn, DecodeInsn(text.bytes.data() + off));
    out << "  " << Hex32(off).substr(6) << ": " << Disassemble(insn);
    for (const Relocation& reloc : text.relocs) {
      if (reloc.offset == off + 4) {
        out << "   ; " << RelocKindName(reloc.kind) << "(" << reloc.symbol << ")";
      }
    }
    out << "\n";
  }
  return out.str();
}

Result<ObjectFile> OfeRename(const ObjectFile& object, const std::string& pattern,
                             const std::string& replacement) {
  ObjectFile out = object;
  std::map<std::string, std::string> renames;
  for (Symbol& sym : out.mutable_symbols()) {
    if (RegexMatch(sym.name, pattern)) {
      std::string new_name = Substitute(replacement, sym.name);
      renames[sym.name] = new_name;
      sym.name = new_name;
    }
  }
  for (int s = 0; s < kNumSections; ++s) {
    for (Relocation& reloc : out.section(static_cast<SectionKind>(s)).relocs) {
      auto it = renames.find(reloc.symbol);
      if (it != renames.end()) {
        reloc.symbol = it->second;
      }
    }
  }
  OMOS_TRY_VOID(out.RebuildSymbolIndex());
  OMOS_TRY_VOID(out.Validate());
  return out;
}

Result<ObjectFile> OfeHide(const ObjectFile& object, const std::string& pattern) {
  ObjectFile out = object;
  for (Symbol& sym : out.mutable_symbols()) {
    if (sym.defined && sym.binding != SymbolBinding::kLocal && RegexMatch(sym.name, pattern)) {
      sym.binding = SymbolBinding::kLocal;
    }
  }
  return out;
}

Result<ObjectFile> OfeWeaken(const ObjectFile& object, const std::string& pattern) {
  ObjectFile out = object;
  for (Symbol& sym : out.mutable_symbols()) {
    if (sym.defined && sym.binding == SymbolBinding::kGlobal && RegexMatch(sym.name, pattern)) {
      sym.binding = SymbolBinding::kWeak;
    }
  }
  return out;
}

Result<ObjectFile> OfeStripLocals(const ObjectFile& object) {
  std::set<std::string> needed;
  for (int s = 0; s < kNumSections; ++s) {
    for (const Relocation& reloc :
         object.section(static_cast<SectionKind>(s)).relocs) {
      needed.insert(reloc.symbol);
    }
  }
  ObjectFile out(object.name());
  for (int s = 0; s < kNumSections; ++s) {
    out.section(static_cast<SectionKind>(s)) = object.section(static_cast<SectionKind>(s));
  }
  for (const Symbol& sym : object.symbols()) {
    if (sym.defined && sym.binding == SymbolBinding::kLocal && needed.count(sym.name) == 0) {
      continue;  // stripped
    }
    OMOS_TRY_VOID(out.AddSymbol(sym));
  }
  OMOS_TRY_VOID(out.Validate());
  return out;
}

Result<LinkedImage> OfeLink(const std::vector<ObjectFile>& objects, uint32_t text_base,
                            bool allow_unresolved) {
  Module m;
  bool first = true;
  for (const ObjectFile& object : objects) {
    Module part = Module::FromObject(std::make_shared<const ObjectFile>(object));
    if (first) {
      m = std::move(part);
      first = false;
    } else {
      OMOS_TRY(m, Module::Merge(m, part));
    }
  }
  LayoutSpec layout;
  layout.text_base = text_base;
  layout.allow_unresolved = allow_unresolved;
  return LinkImage(m, layout, "ofe-link");
}

Result<std::vector<uint8_t>> ReadHostFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Err(ErrorCode::kIoError, StrCat("cannot open ", path));
  }
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

Result<void> WriteHostFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Err(ErrorCode::kIoError, StrCat("cannot write ", path));
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return OkResult();
}

Result<std::string> OfeTraceReport(std::string_view json) {
  OMOS_TRY(std::vector<ParsedTraceEvent> events, ParseChromeTrace(json));
  struct Row {
    uint64_t count = 0;
    double total_us = 0;
    uint64_t sim_user = 0;
    uint64_t sim_sys = 0;
    bool instant = false;
  };
  std::map<std::string, Row> rows;
  for (const ParsedTraceEvent& ev : events) {
    Row& row = rows[ev.name];
    ++row.count;
    row.total_us += ev.dur_us;
    row.sim_user += ev.sim_user;
    row.sim_sys += ev.sim_sys;
    row.instant = ev.ph == "i";
  }
  std::vector<std::pair<std::string, Row>> sorted(rows.begin(), rows.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second.total_us != b.second.total_us) {
      return a.second.total_us > b.second.total_us;
    }
    return a.first < b.first;
  });
  std::ostringstream out;
  out << "trace report: " << events.size() << " events, " << rows.size() << " span kinds\n";
  char line[256];
  for (const auto& [name, row] : sorted) {
    if (row.instant) {
      std::snprintf(line, sizeof(line), "  %-28s x%-6llu (instant)\n", name.c_str(),
                    static_cast<unsigned long long>(row.count));
    } else {
      std::snprintf(line, sizeof(line),
                    "  %-28s x%-6llu total %10.1fus  avg %8.1fus  sim %llu+%llu\n",
                    name.c_str(), static_cast<unsigned long long>(row.count), row.total_us,
                    row.total_us / static_cast<double>(row.count),
                    static_cast<unsigned long long>(row.sim_user),
                    static_cast<unsigned long long>(row.sim_sys));
    }
    out << line;
  }
  return out.str();
}

Result<ObjectFile> LoadObjectFile(const std::string& path) {
  OMOS_TRY(std::vector<uint8_t> bytes, ReadHostFile(path));
  return BackendRegistry::Default().DecodeAny(bytes);
}

Result<void> SaveObjectFile(const ObjectFile& object, const std::string& path,
                            std::string_view format) {
  const ObjectBackend* backend = BackendRegistry::Default().Find(format);
  if (backend == nullptr) {
    return Err(ErrorCode::kNotFound, StrCat("no backend '", format, "'"));
  }
  OMOS_TRY(std::vector<uint8_t> bytes, backend->Encode(object));
  return WriteHostFile(path, bytes);
}

}  // namespace omos
