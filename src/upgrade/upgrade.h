// Live library upgrade (dynamic update): the version-independent pieces of
// the hot-patch engine — the frame-transfer map that migrates on-stack
// frames between two linked versions of a library (OSR-style), degradation
// stubs for symbols a new version dropped, and the upgrade.* metrics.
//
// The orchestration (background link, per-task slot repoint, safepoint
// transfer, reclamation) lives in OmosServer::BeginUpgrade and friends; this
// module deliberately knows nothing about the server so it can be unit-
// tested against two bare LinkedImages.
//
// Transfer-map semantics (docs/upgrade.md has the full state machine):
//  * Symbol extents are derived from the sorted exported-symbol table
//    (label-to-next-label, clipped to the segment end) — the same
//    approximation the cycle profiler uses to attribute PCs.
//  * A symbol present in both versions with an equal extent maps its whole
//    range by offset: SimISA instructions are fixed 8-byte words, so an old
//    mid-function pc lands on the equivalent new instruction.
//  * A symbol whose extent changed maps only at its entry (offset 0); a
//    frame suspended mid-body defers until the frame pops.
//  * A symbol deleted in the new version maps its entry to a degradation
//    stub (when one was generated); everything else is untransferable.
#ifndef OMOS_SRC_UPGRADE_UPGRADE_H_
#define OMOS_SRC_UPGRADE_UPGRADE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/linker/image.h"
#include "src/objfmt/object_file.h"
#include "src/support/result.h"

namespace omos {

class Counter;

// Return value of a degradation stub: calls into a symbol the new version
// no longer provides yield this sentinel instead of faulting — the wire
// protocol's kUnavailable ("peer not accepting requests, retryable") carried
// into the ISA. Clients check availability instead of crashing mid-roll.
inline constexpr uint32_t kUpgradeUnavailable = 0xFFFFFFFFu;

// Upgrade state machine. Forward-only except the kReclaiming -> kDraining
// retreat when a reclaim attempt is killed by fault injection.
enum class UpgradePhase {
  kIdle,        // no upgrade in flight
  kLinking,     // new version linking on the idle lane
  kRepointing,  // runtimes being switched to the new version
  kDraining,    // waiting for live tasks to reach safepoints
  kReclaiming,  // every task migrated; old version being released
  kDone,
  kAborted,
};
const char* UpgradePhaseName(UpgradePhase phase);

// One old-range -> new-range mapping. Text and data ranges share the
// representation; `deleted` marks symbols with no new-version counterpart.
struct TransferRange {
  std::string name;
  uint32_t old_start = 0;
  uint32_t old_size = 0;
  uint32_t new_start = 0;  // degradation stub address when `deleted`
  uint32_t new_size = 0;
  bool deleted = false;
};

// Same-name, same-size initialized/bss data symbols: the task's current old
// bytes are carried into the new version at repoint time so library state
// (counters, caches) survives the upgrade.
struct DataCarry {
  std::string name;
  uint32_t old_addr = 0;
  uint32_t new_addr = 0;
  uint32_t size = 0;
};

class FrameTransferMap {
 public:
  // Build the map between two linked versions of the same library.
  // `degrade_stubs` maps deleted-symbol names to their stub entry addresses
  // (empty when nothing was deleted or no stub image exists yet).
  static FrameTransferMap Build(const LinkedImage& old_image, const LinkedImage& new_image,
                                const std::map<std::string, uint32_t>& degrade_stubs);

  // True when `addr` lies inside the old version's text or data segments
  // (the only values a transfer must rewrite).
  bool Covers(uint32_t addr) const;

  // Map an old-version address to its new-version equivalent. nullopt means
  // the address is not transferable right now (mid-body of a resized or
  // deleted symbol, or padding between symbols): the caller defers and
  // retries at a later safepoint, when the frame has popped.
  std::optional<uint32_t> MapAddr(uint32_t addr) const;

  const std::vector<TransferRange>& ranges() const { return ranges_; }
  const std::vector<DataCarry>& data_carries() const { return data_carries_; }

  uint32_t old_text_base() const { return old_text_base_; }
  uint32_t old_text_end() const { return old_text_end_; }
  uint32_t old_data_base() const { return old_data_base_; }
  uint32_t old_data_end() const { return old_data_end_; }

 private:
  uint32_t old_text_base_ = 0;
  uint32_t old_text_end_ = 0;
  uint32_t old_data_base_ = 0;
  uint32_t old_data_end_ = 0;
  std::vector<TransferRange> ranges_;  // sorted by old_start, non-overlapping
  std::vector<DataCarry> data_carries_;
};

// Names of old-version text symbols absent from the new version, sorted.
std::vector<std::string> DeletedTextSymbols(const LinkedImage& old_image,
                                            const LinkedImage& new_image);

// Generate the availability-check stub object for `deleted` symbols: each
// stub is `name: movi r0, kUpgradeUnavailable; ret`. The caller links it as
// a tiny self-contained image and maps it into migrating tasks.
Result<ObjectFile> GenerateDegradationStubs(const std::vector<std::string>& deleted,
                                            std::string_view object_name);

// upgrade.* counters (unified metrics registry; see docs/observability.md).
struct UpgradeMetrics {
  Counter* begun;
  Counter* completed;
  Counter* aborted;
  Counter* tasks_repointed;
  Counter* slots_repointed;
  Counter* frames_transferred;
  Counter* transfers_deferred;
  Counter* stack_words_rewritten;
  Counter* degraded_bindings;
  Counter* images_reclaimed;
};
UpgradeMetrics& UpgradeStats();

}  // namespace omos

#endif  // OMOS_SRC_UPGRADE_UPGRADE_H_
