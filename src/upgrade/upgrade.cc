#include "src/upgrade/upgrade.h"

#include <algorithm>

#include "src/support/metrics.h"
#include "src/support/strings.h"
#include "src/vasm/assembler.h"

namespace omos {

const char* UpgradePhaseName(UpgradePhase phase) {
  switch (phase) {
    case UpgradePhase::kIdle:
      return "idle";
    case UpgradePhase::kLinking:
      return "linking";
    case UpgradePhase::kRepointing:
      return "repointing";
    case UpgradePhase::kDraining:
      return "draining";
    case UpgradePhase::kReclaiming:
      return "reclaiming";
    case UpgradePhase::kDone:
      return "done";
    case UpgradePhase::kAborted:
      return "aborted";
  }
  return "?";
}

namespace {

struct Extent {
  const ImageSymbol* sym;
  uint32_t size;  // label-to-next-label, clipped to the segment end
};

// Sort one section's symbols by address and derive extents. The assembler
// does not record symbol sizes, so the extent of a symbol is the span to
// the next symbol in the same segment (clipped to the segment end) — the
// same attribution rule the cycle profiler uses.
std::vector<Extent> SectionExtents(const LinkedImage& image, bool text, uint32_t seg_end) {
  std::vector<Extent> extents;
  for (const ImageSymbol& sym : image.symbols) {
    bool is_text = sym.section == SectionKind::kText;
    if (is_text == text) {
      extents.push_back({&sym, 0});
    }
  }
  std::sort(extents.begin(), extents.end(),
            [](const Extent& a, const Extent& b) { return a.sym->addr < b.sym->addr; });
  for (size_t i = 0; i < extents.size(); ++i) {
    uint32_t end = i + 1 < extents.size() ? extents[i + 1].sym->addr : seg_end;
    extents[i].size = end > extents[i].sym->addr ? end - extents[i].sym->addr : 0;
  }
  return extents;
}

void BuildSectionRanges(const LinkedImage& old_image, const LinkedImage& new_image, bool text,
                        const std::map<std::string, uint32_t>& degrade_stubs,
                        std::vector<TransferRange>* ranges,
                        std::vector<DataCarry>* data_carries) {
  uint32_t old_end = text ? old_image.text_end() : old_image.data_end();
  uint32_t new_end = text ? new_image.text_end() : new_image.data_end();
  std::vector<Extent> old_extents = SectionExtents(old_image, text, old_end);
  std::vector<Extent> new_extents = SectionExtents(new_image, text, new_end);
  std::map<std::string, Extent> by_name;
  for (const Extent& e : new_extents) {
    by_name.emplace(e.sym->name, e);
  }
  for (const Extent& e : old_extents) {
    TransferRange range;
    range.name = e.sym->name;
    range.old_start = e.sym->addr;
    range.old_size = e.size;
    auto it = by_name.find(e.sym->name);
    if (it == by_name.end()) {
      range.deleted = true;
      auto stub = degrade_stubs.find(e.sym->name);
      range.new_start = stub == degrade_stubs.end() ? 0 : stub->second;
      range.new_size = 0;
    } else {
      range.new_start = it->second.sym->addr;
      range.new_size = it->second.size;
      if (!text && range.old_size == range.new_size && range.old_size > 0) {
        data_carries->push_back(
            {range.name, range.old_start, range.new_start, range.old_size});
      }
    }
    ranges->push_back(std::move(range));
  }
}

}  // namespace

FrameTransferMap FrameTransferMap::Build(const LinkedImage& old_image,
                                         const LinkedImage& new_image,
                                         const std::map<std::string, uint32_t>& degrade_stubs) {
  FrameTransferMap map;
  map.old_text_base_ = old_image.text_base;
  map.old_text_end_ = old_image.text_end();
  map.old_data_base_ = old_image.data_base;
  map.old_data_end_ = old_image.data_end();
  BuildSectionRanges(old_image, new_image, /*text=*/true, degrade_stubs, &map.ranges_,
                     &map.data_carries_);
  BuildSectionRanges(old_image, new_image, /*text=*/false, degrade_stubs, &map.ranges_,
                     &map.data_carries_);
  std::sort(map.ranges_.begin(), map.ranges_.end(),
            [](const TransferRange& a, const TransferRange& b) {
              return a.old_start < b.old_start;
            });
  return map;
}

bool FrameTransferMap::Covers(uint32_t addr) const {
  return (addr >= old_text_base_ && addr < old_text_end_) ||
         (addr >= old_data_base_ && addr < old_data_end_);
}

std::optional<uint32_t> FrameTransferMap::MapAddr(uint32_t addr) const {
  if (!Covers(addr)) {
    return addr;  // not the old version's memory: unchanged
  }
  // Last range with old_start <= addr.
  auto it = std::upper_bound(ranges_.begin(), ranges_.end(), addr,
                             [](uint32_t a, const TransferRange& r) { return a < r.old_start; });
  if (it == ranges_.begin()) {
    return std::nullopt;  // before the first symbol: unattributable
  }
  const TransferRange& range = *std::prev(it);
  uint32_t offset = addr - range.old_start;
  if (offset >= range.old_size) {
    return std::nullopt;  // padding past the section's last symbol
  }
  if (range.deleted) {
    // Only the entry can degrade gracefully; a frame suspended mid-body of
    // deleted code must finish on the old version first.
    if (offset == 0 && range.new_start != 0) {
      return range.new_start;
    }
    return std::nullopt;
  }
  if (range.old_size == range.new_size) {
    return range.new_start + offset;  // fixed-width insns: exact mid-body map
  }
  return offset == 0 ? std::optional<uint32_t>(range.new_start) : std::nullopt;
}

std::vector<std::string> DeletedTextSymbols(const LinkedImage& old_image,
                                            const LinkedImage& new_image) {
  std::vector<std::string> deleted;
  for (const ImageSymbol& sym : old_image.symbols) {
    if (sym.section == SectionKind::kText && new_image.FindSymbol(sym.name) == nullptr) {
      deleted.push_back(sym.name);
    }
  }
  std::sort(deleted.begin(), deleted.end());
  return deleted;
}

Result<ObjectFile> GenerateDegradationStubs(const std::vector<std::string>& deleted,
                                            std::string_view object_name) {
  std::string source = ".text\n";
  for (const std::string& name : deleted) {
    source += StrCat(".global ", name, "\n", name, ":\n");
    source += StrCat("  movi r0, ", kUpgradeUnavailable, "\n");
    source += "  ret\n";
  }
  return Assemble(source, std::string(object_name));
}

UpgradeMetrics& UpgradeStats() {
  static UpgradeMetrics* metrics = new UpgradeMetrics{
      MetricsRegistry::Global().GetCounter("upgrade.begun"),
      MetricsRegistry::Global().GetCounter("upgrade.completed"),
      MetricsRegistry::Global().GetCounter("upgrade.aborted"),
      MetricsRegistry::Global().GetCounter("upgrade.tasks_repointed"),
      MetricsRegistry::Global().GetCounter("upgrade.slots_repointed"),
      MetricsRegistry::Global().GetCounter("upgrade.frames_transferred"),
      MetricsRegistry::Global().GetCounter("upgrade.transfers_deferred"),
      MetricsRegistry::Global().GetCounter("upgrade.stack_words_rewritten"),
      MetricsRegistry::Global().GetCounter("upgrade.degraded_bindings"),
      MetricsRegistry::Global().GetCounter("upgrade.images_reclaimed"),
  };
  return *metrics;
}

}  // namespace omos
