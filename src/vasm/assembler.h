// vasm — the SimISA assembler, producing XOF relocatable objects.
//
// This backs the blueprint operator `(source "asm" ...)` (§3.3, §6 Fig. 3):
// OMOS can produce fragments directly from source. Workload programs and
// OMOS's generated stubs are written in this assembly dialect.
//
// Dialect:
//   ; comment                # comment
//   .text / .data / .bss     switch section
//   .global NAME / .weak NAME  export a label (labels default to local)
//   .align N                  pad current section to N bytes
//   label:                    define label at current offset
//   .word V  .byte V  .ascii "s"  .asciiz "s"  .space N
//   <mnemonic> operands       one SimISA instruction (8 bytes)
//
// Symbolic operands always emit relocations (abs32 for absolute forms,
// pcrel32 for pc-relative forms); the linker resolves them, even for labels
// local to the file — assembly never needs to know load addresses.
#ifndef OMOS_SRC_VASM_ASSEMBLER_H_
#define OMOS_SRC_VASM_ASSEMBLER_H_

#include <string>
#include <string_view>

#include "src/objfmt/object_file.h"
#include "src/support/result.h"

namespace omos {

// Assemble `source` into an object named `name`. Errors carry line numbers.
Result<ObjectFile> Assemble(std::string_view source, std::string name);

}  // namespace omos

#endif  // OMOS_SRC_VASM_ASSEMBLER_H_
