#include "src/vasm/assembler.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <vector>

#include "src/isa/isa.h"
#include "src/support/strings.h"

namespace omos {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' || c == '.' || c == '$';
}
bool IsIdentChar(char c) {
  return IsIdentStart(c) || std::isdigit(static_cast<unsigned char>(c)) != 0;
}

// An operand is a register, a numeric immediate, a symbol, or a memory
// reference [reg+disp].
struct Operand {
  enum class Kind { kReg, kImm, kSym, kMem } kind = Kind::kImm;
  uint8_t reg = 0;
  int64_t imm = 0;
  std::string sym;
  uint8_t mem_base = 0;
  int32_t mem_disp = 0;
};

struct Line {
  int number = 0;
  std::vector<std::string> labels;
  std::string directive;              // nonempty for .text/.word/...
  std::vector<std::string> dir_args;  // raw argument tokens (strings kept quoted)
  std::optional<Opcode> op;
  std::vector<Operand> operands;
};

class Assembler {
 public:
  explicit Assembler(std::string name) : object_(std::move(name)) {}

  Result<ObjectFile> Run(std::string_view source) {
    OMOS_TRY_VOID(ParseAll(source));
    OMOS_TRY_VOID(Layout());
    OMOS_TRY_VOID(Emit());
    OMOS_TRY_VOID(object_.Validate());
    return std::move(object_);
  }

 private:
  Error LineErr(int line, std::string message) const {
    return Err(ErrorCode::kParseError,
               StrCat(object_.name(), ":", line, ": ", std::move(message)));
  }

  // ---- Parsing -------------------------------------------------------------

  Result<void> ParseAll(std::string_view source) {
    std::vector<std::string> raw = SplitString(source, '\n');
    for (size_t i = 0; i < raw.size(); ++i) {
      OMOS_TRY_VOID(ParseLine(static_cast<int>(i) + 1, raw[i]));
    }
    return OkResult();
  }

  Result<void> ParseLine(int number, std::string_view text) {
    // Strip comments, respecting string literals.
    std::string clean;
    bool in_str = false;
    for (size_t i = 0; i < text.size(); ++i) {
      char c = text[i];
      if (c == '"' && (i == 0 || text[i - 1] != '\\')) {
        in_str = !in_str;
      }
      if (!in_str && (c == ';' || c == '#')) {
        break;
      }
      clean.push_back(c);
    }
    std::string_view body = StripWhitespace(clean);

    Line line;
    line.number = number;

    // Leading labels ("name:").
    while (true) {
      size_t i = 0;
      while (i < body.size() && IsIdentChar(body[i])) {
        ++i;
      }
      if (i > 0 && i < body.size() && body[i] == ':') {
        line.labels.emplace_back(body.substr(0, i));
        body = StripWhitespace(body.substr(i + 1));
      } else {
        break;
      }
    }

    if (!body.empty()) {
      if (body[0] == '.') {
        size_t sp = body.find_first_of(" \t");
        line.directive = std::string(body.substr(0, sp));
        if (sp != std::string_view::npos) {
          OMOS_TRY(line.dir_args, SplitArgs(body.substr(sp + 1), number));
        }
      } else {
        size_t sp = body.find_first_of(" \t");
        std::string mnemonic(body.substr(0, sp));
        auto op = OpcodeFromName(mnemonic);
        if (!op.ok()) {
          return LineErr(number, op.error().message());
        }
        line.op = op.value();
        if (sp != std::string_view::npos) {
          OMOS_TRY(std::vector<std::string> args, SplitArgs(body.substr(sp + 1), number));
          for (const std::string& arg : args) {
            auto operand = ParseOperand(arg, number);
            if (!operand.ok()) {
              return operand.error();
            }
            line.operands.push_back(std::move(operand).value());
          }
        }
      }
    }

    if (!line.labels.empty() || !line.directive.empty() || line.op.has_value()) {
      lines_.push_back(std::move(line));
    }
    return OkResult();
  }

  // Split a comma-separated argument list; commas inside quotes don't split.
  Result<std::vector<std::string>> SplitArgs(std::string_view text, int number) const {
    std::vector<std::string> args;
    std::string current;
    bool in_str = false;
    for (size_t i = 0; i < text.size(); ++i) {
      char c = text[i];
      if (c == '"' && (i == 0 || text[i - 1] != '\\')) {
        in_str = !in_str;
      }
      if (c == ',' && !in_str) {
        args.emplace_back(StripWhitespace(current));
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    if (in_str) {
      return LineErr(number, "unterminated string literal");
    }
    std::string_view last = StripWhitespace(current);
    if (!last.empty() || !args.empty()) {
      args.emplace_back(last);
    }
    return args;
  }

  static std::optional<uint8_t> ParseReg(std::string_view token) {
    if (token == "sp") {
      return kRegSp;
    }
    if (token == "lr") {
      return kRegLr;
    }
    if (token.size() >= 2 && token[0] == 'r') {
      int value = 0;
      for (size_t i = 1; i < token.size(); ++i) {
        if (std::isdigit(static_cast<unsigned char>(token[i])) == 0) {
          return std::nullopt;
        }
        value = value * 10 + (token[i] - '0');
      }
      if (value < kNumRegisters) {
        return static_cast<uint8_t>(value);
      }
    }
    return std::nullopt;
  }

  static std::optional<int64_t> ParseNumber(std::string_view token) {
    if (token.empty()) {
      return std::nullopt;
    }
    if (token.size() >= 3 && token.front() == '\'' && token.back() == '\'') {
      std::string_view inner = token.substr(1, token.size() - 2);
      if (inner.size() == 1) {
        return inner[0];
      }
      if (inner.size() == 2 && inner[0] == '\\') {
        switch (inner[1]) {
          case 'n':
            return '\n';
          case 't':
            return '\t';
          case '0':
            return 0;
          case '\\':
            return '\\';
          default:
            return std::nullopt;
        }
      }
      return std::nullopt;
    }
    const char* begin = token.data();
    char* end = nullptr;
    long long value = std::strtoll(begin, &end, 0);
    if (end != begin + token.size()) {
      return std::nullopt;
    }
    return value;
  }

  Result<Operand> ParseOperand(std::string_view token, int number) const {
    Operand operand;
    if (token.empty()) {
      return LineErr(number, "empty operand");
    }
    if (token.front() == '[') {
      if (token.back() != ']') {
        return LineErr(number, StrCat("bad memory operand '", token, "'"));
      }
      std::string_view inner = token.substr(1, token.size() - 2);
      size_t plus = inner.find_first_of("+-", 1);
      std::string_view reg_part = plus == std::string_view::npos ? inner : inner.substr(0, plus);
      auto reg = ParseReg(StripWhitespace(reg_part));
      if (!reg.has_value()) {
        return LineErr(number, StrCat("bad base register in '", token, "'"));
      }
      operand.kind = Operand::Kind::kMem;
      operand.mem_base = *reg;
      if (plus != std::string_view::npos) {
        // "[r11+4]" and "[r11+-4]" / "[r11-4]" are all accepted.
        std::string_view disp_text = inner.substr(plus);
        if (disp_text.front() == '+') {
          disp_text.remove_prefix(1);
        }
        auto disp = ParseNumber(StripWhitespace(disp_text));
        if (!disp.has_value()) {
          return LineErr(number, StrCat("bad displacement in '", token, "'"));
        }
        operand.mem_disp = static_cast<int32_t>(*disp);
      }
      return operand;
    }
    if (auto reg = ParseReg(token); reg.has_value()) {
      operand.kind = Operand::Kind::kReg;
      operand.reg = *reg;
      return operand;
    }
    if (auto num = ParseNumber(token); num.has_value()) {
      operand.kind = Operand::Kind::kImm;
      operand.imm = *num;
      return operand;
    }
    if (IsIdentStart(token.front())) {
      operand.kind = Operand::Kind::kSym;
      operand.sym = std::string(token);
      return operand;
    }
    return LineErr(number, StrCat("unparseable operand '", token, "'"));
  }

  // ---- Layout (pass 1) ------------------------------------------------------

  static Result<std::string> Unquote(std::string_view token, int) {
    std::string out;
    if (token.size() < 2 || token.front() != '"' || token.back() != '"') {
      return Err(ErrorCode::kParseError, StrCat("expected string literal, got '", token, "'"));
    }
    std::string_view inner = token.substr(1, token.size() - 2);
    for (size_t i = 0; i < inner.size(); ++i) {
      if (inner[i] == '\\' && i + 1 < inner.size()) {
        ++i;
        switch (inner[i]) {
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case '0':
            out.push_back('\0');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '"':
            out.push_back('"');
            break;
          default:
            out.push_back(inner[i]);
            break;
        }
      } else {
        out.push_back(inner[i]);
      }
    }
    return out;
  }

  Result<uint32_t> DirectiveSize(const Line& line) const {
    const std::string& d = line.directive;
    if (d == ".word") {
      return static_cast<uint32_t>(4 * line.dir_args.size());
    }
    if (d == ".byte") {
      return static_cast<uint32_t>(line.dir_args.size());
    }
    if (d == ".space") {
      if (line.dir_args.size() != 1) {
        return LineErr(line.number, ".space takes one argument");
      }
      auto n = ParseNumber(line.dir_args[0]);
      if (!n.has_value() || *n < 0) {
        return LineErr(line.number, "bad .space size");
      }
      return static_cast<uint32_t>(*n);
    }
    if (d == ".ascii" || d == ".asciiz") {
      if (line.dir_args.size() != 1) {
        return LineErr(line.number, StrCat(d, " takes one string"));
      }
      auto s = Unquote(line.dir_args[0], line.number);
      if (!s.ok()) {
        return LineErr(line.number, s.error().message());
      }
      return static_cast<uint32_t>(s.value().size() + (d == ".asciiz" ? 1 : 0));
    }
    return LineErr(line.number, StrCat("unknown directive ", d));
  }

  Result<void> Layout() {
    SectionKind section = SectionKind::kText;
    uint32_t offsets[kNumSections] = {0, 0, 0};
    for (const Line& line : lines_) {
      uint32_t& offset = offsets[static_cast<int>(section)];
      for (const std::string& label : line.labels) {
        if (labels_.count(label) != 0) {
          return LineErr(line.number, StrCat("duplicate label ", label));
        }
        labels_[label] = {section, offset};
      }
      if (!line.directive.empty()) {
        const std::string& d = line.directive;
        if (d == ".text") {
          section = SectionKind::kText;
        } else if (d == ".data") {
          section = SectionKind::kData;
        } else if (d == ".bss") {
          section = SectionKind::kBss;
        } else if (d == ".global" || d == ".weak" || d == ".local" || d == ".export" ||
                   d == ".hidden" || d == ".default_hidden") {
          continue;  // binding/visibility handled in Emit
        } else if (d == ".align") {
          std::optional<int64_t> n =
              line.dir_args.empty() ? std::optional<int64_t>() : ParseNumber(line.dir_args[0]);
          if (!n.has_value() || *n <= 0) {
            return LineErr(line.number, "bad .align");
          }
          uint32_t align = static_cast<uint32_t>(*n);
          offset = (offset + align - 1) / align * align;
          // Labels on the same line as .align would have pre-pad offsets;
          // disallow to avoid surprises.
          if (!line.labels.empty()) {
            return LineErr(line.number, "label on .align line; put label after");
          }
        } else {
          OMOS_TRY(uint32_t size, DirectiveSize(line));
          if (section == SectionKind::kBss && d != ".space") {
            return LineErr(line.number, "only .space allowed in .bss");
          }
          offset += size;
        }
      } else if (line.op.has_value()) {
        if (section != SectionKind::kText) {
          return LineErr(line.number, "instruction outside .text");
        }
        offset += kInsnSize;
      }
    }
    return OkResult();
  }

  // ---- Emission (pass 2) ----------------------------------------------------

  void EmitBytes(SectionKind section, const void* data, size_t size) {
    const auto* bytes = static_cast<const uint8_t*>(data);
    auto& vec = object_.section(section).bytes;
    vec.insert(vec.end(), bytes, bytes + size);
  }

  // Record `sym` as an immediate operand: define-or-reference it in the
  // symbol table and attach a relocation on the imm field just emitted.
  void AddSymbolFixup(SectionKind section, uint32_t insn_offset, RelocKind kind,
                      const std::string& sym, int32_t addend) {
    if (labels_.count(sym) == 0 && object_.FindSymbol(sym) == nullptr) {
      object_.ReferenceSymbol(sym);
    }
    Relocation reloc;
    reloc.offset = insn_offset + 4;  // imm field
    reloc.kind = kind;
    reloc.symbol = sym;
    reloc.addend = addend;
    object_.AddReloc(section, std::move(reloc));
  }

  Result<void> Emit() {
    // Labels become local defined symbols first; .global/.weak upgrade them.
    for (const auto& [name, loc] : labels_) {
      OMOS_TRY_VOID(object_.DefineSymbol(name, SymbolBinding::kLocal, loc.first, loc.second));
    }

    SectionKind section = SectionKind::kText;
    for (const Line& line : lines_) {
      if (!line.directive.empty()) {
        OMOS_TRY_VOID(EmitDirective(line, section));
      } else if (line.op.has_value()) {
        OMOS_TRY_VOID(EmitInstruction(line, section));
      }
    }
    object_.section(SectionKind::kBss).bss_size = bss_offset_;
    return OkResult();
  }

  Result<void> EmitDirective(const Line& line, SectionKind& section) {
    const std::string& d = line.directive;
    if (d == ".text") {
      section = SectionKind::kText;
      return OkResult();
    }
    if (d == ".data") {
      section = SectionKind::kData;
      return OkResult();
    }
    if (d == ".bss") {
      section = SectionKind::kBss;
      return OkResult();
    }
    if (d == ".global" || d == ".weak") {
      for (const std::string& name : line.dir_args) {
        Symbol* sym = object_.FindMutableSymbol(name);
        if (sym == nullptr || !sym->defined) {
          return LineErr(line.number, StrCat(d, " of undefined label ", name));
        }
        sym->binding = d == ".weak" ? SymbolBinding::kWeak : SymbolBinding::kGlobal;
      }
      return OkResult();
    }
    if (d == ".local") {
      return OkResult();
    }
    if (d == ".export" || d == ".hidden") {
      for (const std::string& name : line.dir_args) {
        Symbol* sym = object_.FindMutableSymbol(name);
        if (sym == nullptr || !sym->defined) {
          return LineErr(line.number, StrCat(d, " of undefined label ", name));
        }
        sym->visibility =
            d == ".hidden" ? SymbolVisibility::kHidden : SymbolVisibility::kExported;
      }
      return OkResult();
    }
    if (d == ".default_hidden") {
      object_.set_default_hidden(true);
      return OkResult();
    }
    if (d == ".align") {
      auto n = ParseNumber(line.dir_args[0]);
      uint32_t align = static_cast<uint32_t>(*n);
      if (section == SectionKind::kBss) {
        bss_offset_ = (bss_offset_ + align - 1) / align * align;
      } else {
        auto& bytes = object_.section(section).bytes;
        while (bytes.size() % align != 0) {
          bytes.push_back(0);
        }
      }
      return OkResult();
    }
    if (d == ".space") {
      OMOS_TRY(uint32_t size, DirectiveSize(line));
      if (section == SectionKind::kBss) {
        bss_offset_ += size;
      } else {
        auto& bytes = object_.section(section).bytes;
        bytes.insert(bytes.end(), size, 0);
      }
      return OkResult();
    }
    if (d == ".word") {
      for (const std::string& arg : line.dir_args) {
        uint32_t offset = static_cast<uint32_t>(object_.section(section).bytes.size());
        if (auto num = ParseNumber(arg); num.has_value()) {
          uint32_t v = static_cast<uint32_t>(*num);
          EmitBytes(section, &v, 4);
        } else {
          // Symbolic word: emit zero + abs32 reloc at this offset.
          uint32_t zero = 0;
          EmitBytes(section, &zero, 4);
          if (labels_.count(arg) == 0 && object_.FindSymbol(arg) == nullptr) {
            object_.ReferenceSymbol(arg);
          }
          object_.AddReloc(section, Relocation{offset, RelocKind::kAbs32, arg, 0});
        }
      }
      return OkResult();
    }
    if (d == ".byte") {
      for (const std::string& arg : line.dir_args) {
        auto num = ParseNumber(arg);
        if (!num.has_value()) {
          return LineErr(line.number, StrCat("bad .byte value '", arg, "'"));
        }
        uint8_t v = static_cast<uint8_t>(*num);
        EmitBytes(section, &v, 1);
      }
      return OkResult();
    }
    if (d == ".ascii" || d == ".asciiz") {
      auto s = Unquote(line.dir_args[0], line.number);
      if (!s.ok()) {
        return LineErr(line.number, s.error().message());
      }
      std::string text = std::move(s).value();
      if (d == ".asciiz") {
        text.push_back('\0');
      }
      EmitBytes(section, text.data(), text.size());
      return OkResult();
    }
    return LineErr(line.number, StrCat("unknown directive ", d));
  }

  Result<void> EmitInstruction(const Line& line, SectionKind section) {
    Instruction insn;
    insn.op = *line.op;
    uint32_t insn_offset = static_cast<uint32_t>(object_.section(section).bytes.size());

    // Which reloc kind does a symbolic immediate in this opcode take?
    auto reloc_kind = [&]() -> RelocKind {
      switch (insn.op) {
        case Opcode::kLeaPc:
        case Opcode::kLdPc:
        case Opcode::kCallPc:
        case Opcode::kBr:
        case Opcode::kBeq:
        case Opcode::kBne:
        case Opcode::kBlt:
        case Opcode::kBge:
        case Opcode::kBltu:
        case Opcode::kBgeu:
          return RelocKind::kPcRel32;
        default:
          return RelocKind::kAbs32;
      }
    };

    std::optional<std::string> fixup_sym;
    auto take_reg = [&](size_t i, uint8_t* out) -> Result<void> {
      if (i >= line.operands.size() || line.operands[i].kind != Operand::Kind::kReg) {
        return LineErr(line.number, StrCat("operand ", i + 1, " must be a register"));
      }
      *out = line.operands[i].reg;
      return OkResult();
    };
    auto take_imm_or_sym = [&](size_t i) -> Result<void> {
      if (i >= line.operands.size()) {
        return LineErr(line.number, "missing immediate operand");
      }
      const Operand& operand = line.operands[i];
      if (operand.kind == Operand::Kind::kImm) {
        insn.imm = static_cast<uint32_t>(operand.imm);
      } else if (operand.kind == Operand::Kind::kSym) {
        fixup_sym = operand.sym;
      } else {
        return LineErr(line.number, StrCat("operand ", i + 1, " must be immediate or symbol"));
      }
      return OkResult();
    };
    auto expect_count = [&](size_t n) -> Result<void> {
      if (line.operands.size() != n) {
        return LineErr(line.number, StrCat(OpcodeName(insn.op), " expects ", n, " operands, got ",
                                           line.operands.size()));
      }
      return OkResult();
    };

    switch (insn.op) {
      case Opcode::kHalt:
      case Opcode::kNop:
      case Opcode::kRet:
        OMOS_TRY_VOID(expect_count(0));
        break;
      case Opcode::kJmpR:
      case Opcode::kCallR:
      case Opcode::kPush:
      case Opcode::kPop:
        OMOS_TRY_VOID(expect_count(1));
        OMOS_TRY_VOID(take_reg(0, &insn.r1));
        break;
      case Opcode::kMov:
        OMOS_TRY_VOID(expect_count(2));
        OMOS_TRY_VOID(take_reg(0, &insn.r1));
        OMOS_TRY_VOID(take_reg(1, &insn.r2));
        break;
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kDiv:
      case Opcode::kMod:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kShl:
      case Opcode::kShr:
        OMOS_TRY_VOID(expect_count(3));
        OMOS_TRY_VOID(take_reg(0, &insn.r1));
        OMOS_TRY_VOID(take_reg(1, &insn.r2));
        OMOS_TRY_VOID(take_reg(2, &insn.r3));
        break;
      case Opcode::kJmp:
      case Opcode::kBr:
      case Opcode::kCall:
      case Opcode::kCallPc:
      case Opcode::kSys:
        OMOS_TRY_VOID(expect_count(1));
        OMOS_TRY_VOID(take_imm_or_sym(0));
        break;
      case Opcode::kMovI:
      case Opcode::kLea:
      case Opcode::kLeaPc:
      case Opcode::kLdPc:
        OMOS_TRY_VOID(expect_count(2));
        OMOS_TRY_VOID(take_reg(0, &insn.r1));
        OMOS_TRY_VOID(take_imm_or_sym(1));
        break;
      case Opcode::kAddI:
        OMOS_TRY_VOID(expect_count(3));
        OMOS_TRY_VOID(take_reg(0, &insn.r1));
        OMOS_TRY_VOID(take_reg(1, &insn.r2));
        OMOS_TRY_VOID(take_imm_or_sym(2));
        break;
      case Opcode::kLd:
      case Opcode::kSt:
      case Opcode::kLdB:
      case Opcode::kStB: {
        OMOS_TRY_VOID(expect_count(2));
        OMOS_TRY_VOID(take_reg(0, &insn.r1));
        if (line.operands[1].kind != Operand::Kind::kMem) {
          return LineErr(line.number, "second operand must be [reg+disp]");
        }
        insn.r2 = line.operands[1].mem_base;
        insn.imm = static_cast<uint32_t>(line.operands[1].mem_disp);
        break;
      }
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlt:
      case Opcode::kBge:
      case Opcode::kBltu:
      case Opcode::kBgeu:
        OMOS_TRY_VOID(expect_count(3));
        OMOS_TRY_VOID(take_reg(0, &insn.r1));
        OMOS_TRY_VOID(take_reg(1, &insn.r2));
        OMOS_TRY_VOID(take_imm_or_sym(2));
        break;
      case Opcode::kCount:
        return LineErr(line.number, "bad opcode");
    }

    uint8_t encoded[kInsnSize];
    EncodeInsn(insn, encoded);
    EmitBytes(section, encoded, kInsnSize);
    if (fixup_sym.has_value()) {
      AddSymbolFixup(section, insn_offset, reloc_kind(), *fixup_sym, 0);
    }
    return OkResult();
  }

  ObjectFile object_;
  std::vector<Line> lines_;
  std::map<std::string, std::pair<SectionKind, uint32_t>> labels_;
  uint32_t bss_offset_ = 0;
};

}  // namespace

Result<ObjectFile> Assemble(std::string_view source, std::string name) {
  Assembler assembler(std::move(name));
  return assembler.Run(source);
}

}  // namespace omos
