#include "src/core/server.h"

#include <algorithm>
#include <charconv>
#include <sstream>

#include <chrono>

#include "src/cc/compiler.h"
#include "src/core/stubgen.h"
#include "src/support/faultsim.h"
#include "src/ipc/ring_transport.h"
#include "src/objfmt/backend.h"
#include "src/support/log.h"
#include "src/support/metrics.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"
#include "src/vasm/assembler.h"

namespace omos {

namespace {

constexpr int kMaxEvalDepth = 64;
// Simulated cycles to assemble one line of generated source.
constexpr uint64_t kAssembleLineCost = 40;

uint32_t AlignTo(uint32_t value, uint32_t align) { return (value + align - 1) / align * align; }

// Regex alternation matching exactly the given names: "^(a|b|c)$".
std::string NamesPattern(const std::vector<std::string>& names) {
  std::string pattern = "^(";
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) {
      pattern.push_back('|');
    }
    pattern += names[i];
  }
  pattern += ")$";
  return pattern;
}

}  // namespace

// ---- Specialization ---------------------------------------------------------

std::string Specialization::ToKeyString() const {
  std::string out = name;
  if (hints.text_base.has_value()) {
    out += ";T=" + Hex32(*hints.text_base);
  }
  if (hints.data_base.has_value()) {
    out += ";D=" + Hex32(*hints.data_base);
  }
  return out;
}

Specialization Specialization::FromKeyString(std::string_view text) {
  Specialization spec;
  std::vector<std::string> parts = SplitString(text, ';');
  if (!parts.empty()) {
    spec.name = parts[0];
  }
  for (size_t i = 1; i < parts.size(); ++i) {
    if (StartsWith(parts[i], "T=")) {
      spec.hints.text_base = static_cast<uint32_t>(std::stoul(parts[i].substr(2), nullptr, 0));
    } else if (StartsWith(parts[i], "D=")) {
      spec.hints.data_base = static_cast<uint32_t>(std::stoul(parts[i].substr(2), nullptr, 0));
    }
  }
  return spec;
}

// ---- Construction -----------------------------------------------------------

OmosServer::OmosServer(Kernel& kernel, Config config)
    : kernel_(&kernel), config_(config), cache_(config.cache_capacity_bytes),
      solver_(config.arenas) {
  kernel_->SetSysHook(kSysDload,
                      [this](Kernel& k, Task& t) { return HandleDload(k, t); });
  kernel_->SetSysHook(kSysMonLog,
                      [this](Kernel& k, Task& t) { return HandleMonLog(k, t); });
  kernel_->SetSysHook(kSysOmosLoad,
                      [this](Kernel& k, Task& t) { return HandleOmosLoadSys(k, t); });
  kernel_->SetSysHook(kSysOmosUnload,
                      [this](Kernel& k, Task& t) { return HandleOmosUnloadSys(k, t); });
  kernel_->SetSafepointHook([this](Kernel& k, Task& t) { return HandleSafepoint(k, t); });
  optimizer_->server = this;
}

OmosServer::~OmosServer() {
  // Background jobs hold a shared_ptr to optimizer_, not to the server;
  // blank the back-pointer (waiting out any job mid-run) so jobs that fire
  // after this point are no-ops.
  std::lock_guard<std::mutex> lock(optimizer_->job_mu);
  optimizer_->server = nullptr;
}

void OmosServer::InvalidateImagesOf(std::string_view path) {
  std::string norm = OmosNamespace::Normalize(path);
  // Seed: the path's own cached images, plus images of every meta-object
  // whose blueprint mentions the path.
  std::set<std::string> victim_paths{norm};
  bool grew = true;
  while (grew) {
    grew = false;
    // Propagate through library-dependency edges recorded in cached images.
    for (const std::string& key : cache_.Keys()) {
      std::string_view path_part = key;
      SplitCacheKey(key, &path_part, nullptr);
      std::string key_path(path_part);
      if (victim_paths.count(key_path) != 0) {
        continue;
      }
      const CachedImage* image = cache_.Peek(key);
      if (image == nullptr) {
        continue;
      }
      for (const LibDep& dep : image->deps) {
        std::string_view dep_part = dep.cache_key;
        SplitCacheKey(dep.cache_key, &dep_part, nullptr);
        std::string dep_path(dep_part);
        if (victim_paths.count(dep_path) != 0 || victim_paths.count(dep.lib_path) != 0) {
          victim_paths.insert(key_path);
          grew = true;
          break;
        }
      }
    }
  }
  // Also: metas whose blueprint text references a victim path directly
  // (fragment redefinition has no dep edge).
  // One extra pass is enough because their images carry the meta's path.
  for (const std::string& key : cache_.Keys()) {
    std::string_view path_part = key;
    SplitCacheKey(key, &path_part, nullptr);
    std::string key_path(path_part);
    auto entry = namespace_.Lookup(key_path);
    if (entry.ok() && (*entry)->blueprint_text.find(norm) != std::string::npos) {
      victim_paths.insert(key_path);
    }
  }
  for (const std::string& key : cache_.Keys()) {
    std::string_view path_part = key;
    SplitCacheKey(key, &path_part, nullptr);
    std::string key_path(path_part);
    if (victim_paths.count(key_path) != 0) {
      {
        std::lock_guard<std::mutex> lock(solver_mu_);
        solver_.Release(key);
      }
      cache_.Evict(key);
    }
  }
  // Persisted images of the victims are stale too. Space management only:
  // a stale record is already unreachable (its fingerprint covers the old
  // inputs), so a failed tombstone costs bytes, not correctness.
  if (store_ != nullptr) {
    for (const std::string& victim : victim_paths) {
      (void)store_->InvalidatePrefix(victim + std::string(kCacheKeySep));
    }
  }
  // Optimizer bookkeeping for invalidated images is stale: drop hit counts
  // and aliases so the rebuilt image earns optimization afresh.
  {
    std::lock_guard<std::mutex> lock(optimizer_->mu);
    for (const std::string& victim : victim_paths) {
      std::string prefix = victim + std::string(kCacheKeySep);
      auto stale = [&](const std::string& key) { return StartsWith(key, prefix); };
      std::erase_if(optimizer_->warm_hits, [&](const auto& kv) { return stale(kv.first); });
      std::erase_if(optimizer_->attempted, stale);
      std::erase_if(optimizer_->alias, [&](const auto& kv) { return stale(kv.first); });
    }
  }
  // Predecoded blocks of the victims' text are stale the moment a rebuilt
  // image can be mapped; running tasks pick up the flush at their next
  // block boundary. (Frame recycling alone would also retire the keys, but
  // only after the last task unmaps the old image.)
  kernel_->engine().InvalidateAll("redefine");
}

Result<void> OmosServer::DefineMeta(std::string_view path, std::string_view blueprint) {
  std::lock_guard<std::mutex> lock(admin_mu_);
  InvalidateImagesOf(path);
  BumpNamespaceGeneration();
  return namespace_.DefineMeta(path, blueprint, EntryKind::kMeta);
}

Result<void> OmosServer::DefineLibrary(std::string_view path, std::string_view blueprint) {
  std::lock_guard<std::mutex> lock(admin_mu_);
  InvalidateImagesOf(path);
  BumpNamespaceGeneration();
  return namespace_.DefineMeta(path, blueprint, EntryKind::kLibrary);
}

Result<void> OmosServer::AddFragment(std::string_view path, ObjectFile object) {
  std::lock_guard<std::mutex> lock(admin_mu_);
  InvalidateImagesOf(path);
  BumpNamespaceGeneration();
  return namespace_.AddFragment(path, std::move(object));
}

Result<void> OmosServer::AddArchive(std::string_view dir, const Archive& archive) {
  std::lock_guard<std::mutex> lock(admin_mu_);
  BumpNamespaceGeneration();
  std::string meta = "(merge";
  for (const ObjectFile& member : archive.members()) {
    std::string path = StrCat(dir, "/", member.name());
    OMOS_TRY_VOID(namespace_.AddFragment(path, member));
    meta += " " + path;
  }
  meta += ")";
  return namespace_.DefineMeta(dir, meta, EntryKind::kMeta);
}

// ---- Blueprint evaluation ---------------------------------------------------

Result<Module> OmosServer::RequireModule(EvalValue value, std::string_view op) const {
  if (!value.module.has_value()) {
    return Err(ErrorCode::kInvalidArgument,
               StrCat(op, ": operand yields no module (library references need merge context)"));
  }
  return std::move(*value.module);
}

Result<Module> OmosServer::MergeValues(std::vector<EvalValue> values, EvalValue& out,
                                       bool override_mode) {
  std::optional<Module> acc;
  for (EvalValue& value : values) {
    out.libs.insert(out.libs.end(), value.libs.begin(), value.libs.end());
    if (value.hints.text_base.has_value()) {
      out.hints.text_base = value.hints.text_base;
    }
    if (value.hints.data_base.has_value()) {
      out.hints.data_base = value.hints.data_base;
    }
    if (!value.module.has_value()) {
      continue;
    }
    if (!acc.has_value()) {
      acc = std::move(*value.module);
    } else if (override_mode) {
      OMOS_TRY(acc, Module::Override(*acc, *value.module));
    } else {
      OMOS_TRY(acc, Module::Merge(*acc, *value.module));
    }
  }
  if (!acc.has_value()) {
    acc = Module();
  }
  return std::move(*acc);
}

Result<OmosServer::EvalValue> OmosServer::EvalName(const std::string& name, BuildTracker& tracker,
                                                   int depth) {
  OMOS_TRY(const NamespaceEntry* entry, namespace_.Lookup(name));
  EvalValue value;
  switch (entry->kind) {
    case EntryKind::kFragment:
      value.module = Module::FromObject(entry->fragment);
      return value;
    case EntryKind::kLibrary: {
      LibraryUse use;
      use.path = OmosNamespace::Normalize(name);
      use.spec.name = entry->default_spec;
      // The library's own constraint-list is its *default* placement and is
      // applied when the library image itself is built; only explicit
      // specialize-time hints travel in the spec (and hence the cache key).
      value.libs.push_back(std::move(use));
      return value;
    }
    case EntryKind::kMeta:
      return Eval(entry->construction, tracker, depth + 1);
  }
  return Err(ErrorCode::kInternal, "bad namespace entry kind");
}

Result<OmosServer::EvalValue> OmosServer::Eval(const Sexpr& expr, BuildTracker& tracker,
                                               int depth) {
  if (depth > kMaxEvalDepth) {
    return Err(ErrorCode::kParseError, "blueprint: evaluation too deep (cycle?)");
  }
  if (expr.kind == Sexpr::Kind::kSymbol) {
    return EvalName(expr.atom, tracker, depth);
  }
  if (expr.IsAtom()) {
    return Err(ErrorCode::kParseError,
               StrCat("blueprint: cannot evaluate atom '", expr.ToString(), "'"));
  }
  if (expr.children.empty() || expr.children[0].kind != Sexpr::Kind::kSymbol) {
    return Err(ErrorCode::kParseError, "blueprint: expected (operation args...)");
  }
  const std::string& op = expr.children[0].atom;

  auto eval_operands = [&](size_t first) -> Result<std::vector<EvalValue>> {
    std::vector<EvalValue> values;
    for (size_t i = first; i < expr.children.size(); ++i) {
      OMOS_TRY(EvalValue value, Eval(expr.children[i], tracker, depth + 1));
      values.push_back(std::move(value));
    }
    return values;
  };
  auto string_arg = [&](size_t i) -> Result<std::string> {
    if (i >= expr.children.size() || expr.children[i].kind != Sexpr::Kind::kString) {
      return Err(ErrorCode::kParseError, StrCat(op, ": argument ", i, " must be a string"));
    }
    return expr.children[i].atom;
  };
  auto unary_operand = [&](size_t first) -> Result<EvalValue> {
    OMOS_TRY(std::vector<EvalValue> values, eval_operands(first));
    if (values.empty()) {
      return Err(ErrorCode::kParseError, StrCat(op, ": missing operand"));
    }
    EvalValue out;
    OMOS_TRY(Module merged, MergeValues(std::move(values), out, /*override_mode=*/false));
    out.module = std::move(merged);
    return out;
  };

  if (op == "merge" || op == "list") {
    OMOS_TRY(std::vector<EvalValue> values, eval_operands(1));
    EvalValue out;
    OMOS_TRY(Module merged, MergeValues(std::move(values), out, /*override_mode=*/false));
    out.module = std::move(merged);
    return out;
  }
  if (op == "override") {
    OMOS_TRY(std::vector<EvalValue> values, eval_operands(1));
    EvalValue out;
    OMOS_TRY(Module merged, MergeValues(std::move(values), out, /*override_mode=*/true));
    out.module = std::move(merged);
    return out;
  }
  if (op == "freeze" || op == "restrict" || op == "project" || op == "hide" || op == "show") {
    OMOS_TRY(std::string pattern, string_arg(1));
    OMOS_TRY(EvalValue value, unary_operand(2));
    Module m = std::move(*value.module);
    if (op == "freeze") {
      m = m.Freeze(pattern);
    } else if (op == "restrict") {
      m = m.Restrict(pattern);
    } else if (op == "project") {
      m = m.Project(pattern);
    } else if (op == "hide") {
      m = m.Hide(pattern);
    } else {
      m = m.Show(pattern);
    }
    value.module = std::move(m);
    return value;
  }
  if (op == "copy-as" || op == "copy_as") {
    OMOS_TRY(std::string pattern, string_arg(1));
    OMOS_TRY(std::string newname, string_arg(2));
    OMOS_TRY(EvalValue value, unary_operand(3));
    value.module = value.module->CopyAs(pattern, newname);
    return value;
  }
  if (op == "rename") {
    OMOS_TRY(std::string pattern, string_arg(1));
    OMOS_TRY(std::string newname, string_arg(2));
    size_t operand_start = 3;
    RenameWhich which = RenameWhich::kBoth;
    if (expr.children.size() > 3 && expr.children[3].kind == Sexpr::Kind::kString) {
      const std::string& w = expr.children[3].atom;
      if (w == "refs") {
        which = RenameWhich::kRefs;
      } else if (w == "defs") {
        which = RenameWhich::kDefs;
      } else if (w == "both") {
        which = RenameWhich::kBoth;
      } else {
        return Err(ErrorCode::kParseError, StrCat("rename: bad selector '", w, "'"));
      }
      operand_start = 4;
    }
    OMOS_TRY(EvalValue value, unary_operand(operand_start));
    value.module = value.module->Rename(pattern, newname, which);
    return value;
  }
  if (op == "source") {
    OMOS_TRY(std::string lang, string_arg(1));
    OMOS_TRY(std::string text, string_arg(2));
    size_t lines = 1 + std::count(text.begin(), text.end(), '\n');
    tracker.work += kAssembleLineCost * lines;
    ObjectFile object;
    if (lang == "asm") {
      OMOS_TRY(object, Assemble(text, "source.s"));
    } else if (lang == "c") {
      OMOS_TRY(std::string asm_text, CompileC(text));
      OMOS_TRY(object, Assemble(asm_text, "source.c"));
    } else {
      return Err(ErrorCode::kUnsupported, StrCat("source: unknown language '", lang, "'"));
    }
    EvalValue value;
    value.module = Module::FromObject(std::make_shared<const ObjectFile>(std::move(object)));
    return value;
  }
  if (op == "specialize") {
    OMOS_TRY(std::string spec_name, string_arg(1));
    PlacementHints hints;
    size_t operand_start = 2;
    // Optional (list "T" addr ["D" addr]) placement argument.
    if (expr.children.size() > 2 && expr.children[2].kind == Sexpr::Kind::kList &&
        !expr.children[2].children.empty() && expr.children[2].children[0].atom == "list") {
      const auto& args = expr.children[2].children;
      for (size_t i = 1; i + 1 < args.size(); i += 2) {
        if (args[i].atom == "T") {
          hints.text_base = static_cast<uint32_t>(args[i + 1].number);
        } else if (args[i].atom == "D") {
          hints.data_base = static_cast<uint32_t>(args[i + 1].number);
        }
      }
      operand_start = 3;
    }
    OMOS_TRY(std::vector<EvalValue> values, eval_operands(operand_start));
    EvalValue out;
    OMOS_TRY(Module merged, MergeValues(std::move(values), out, /*override_mode=*/false));
    if (!out.libs.empty()) {
      for (LibraryUse& use : out.libs) {
        use.spec.name = spec_name;
        if (hints.text_base.has_value()) {
          use.spec.hints.text_base = hints.text_base;
        }
        if (hints.data_base.has_value()) {
          use.spec.hints.data_base = hints.data_base;
        }
      }
      out.module = std::move(merged);
      return out;
    }
    // Module-level specialization: only placement-style specializations are
    // meaningful here; monitor/reorder apply at Instantiate time.
    if (spec_name == "lib-constrained" || spec_name == "constrained") {
      out.hints = hints;
      out.module = std::move(merged);
      return out;
    }
    return Err(ErrorCode::kUnsupported,
               StrCat("specialize ", spec_name, ": operand is not a library"));
  }
  if (op == "constrain") {
    // (constrain "T" addr operand...) — placement hint for this object.
    OMOS_TRY(std::string which, string_arg(1));
    if (expr.children.size() < 4 || expr.children[2].kind != Sexpr::Kind::kNumber) {
      return Err(ErrorCode::kParseError, "constrain: expected (constrain \"T\" addr operand)");
    }
    uint32_t addr = static_cast<uint32_t>(expr.children[2].number);
    OMOS_TRY(EvalValue value, unary_operand(3));
    if (which == "T") {
      value.hints.text_base = addr;
    } else if (which == "D") {
      value.hints.data_base = addr;
    } else {
      return Err(ErrorCode::kParseError, "constrain: key must be \"T\" or \"D\"");
    }
    return value;
  }
  if (op == "initializers") {
    // Generate a __run_initializers routine calling every __init_* export in
    // name order (the C++ static-constructor story, §2.2/§3.3).
    OMOS_TRY(EvalValue value, unary_operand(1));
    OMOS_TRY(std::vector<std::string> exports, value.module->ExportNames());
    std::vector<std::string> inits;
    for (const std::string& name : exports) {
      if (StartsWith(name, "__init_")) {
        inits.push_back(name);
      }
    }
    std::ostringstream text;
    text << ".text\n.global __run_initializers\n__run_initializers:\n  push lr\n";
    for (const std::string& init : inits) {
      text << "  call " << init << "\n";
    }
    text << "  pop lr\n  ret\n";
    tracker.work += kAssembleLineCost * (inits.size() + 4);
    OMOS_TRY(ObjectFile object, Assemble(text.str(), "initializers.s"));
    OMOS_TRY(Module merged,
             Module::Merge(*value.module,
                           Module::FromObject(std::make_shared<const ObjectFile>(std::move(object)))));
    value.module = std::move(merged);
    return value;
  }
  return Err(ErrorCode::kParseError, StrCat("blueprint: unknown operation '", op, "'"));
}

Result<Module> OmosServer::EvaluateBlueprint(std::string_view text, uint64_t* work_cycles) {
  OMOS_TRY(Sexpr expr, ParseSexpr(text));
  BuildTracker tracker;
  OMOS_TRY(EvalValue value, Eval(expr, tracker, 0));
  if (work_cycles != nullptr) {
    *work_cycles += tracker.work;
  }
  return RequireModule(std::move(value), "blueprint");
}

// ---- Instantiation ----------------------------------------------------------

void OmosServer::ChargeLinkWork(const LinkStats& stats, uint32_t symbol_count,
                                BuildTracker& tracker) const {
  const CostModel& costs = kernel_->costs();
  tracker.work += costs.header_parse * stats.fragments;
  tracker.work += costs.symbol_parse * symbol_count;
  tracker.work += costs.reloc_apply * stats.relocations_applied;
  tracker.work += costs.symbol_lookup * stats.refs_bound;
}

Result<Module> OmosServer::BuildMonolithicModule(const std::string& path, BuildTracker& tracker) {
  OMOS_TRY(const NamespaceEntry* entry, namespace_.Lookup(path));
  if (entry->kind == EntryKind::kFragment) {
    return Module::FromObject(entry->fragment);
  }
  OMOS_TRY(EvalValue value, Eval(entry->construction, tracker, 0));
  Module m = value.module.has_value() ? std::move(*value.module) : Module();
  // Fold library dependencies in, transitively.
  std::vector<LibraryUse> pending = std::move(value.libs);
  std::set<std::string> seen;
  int guard = 0;
  while (!pending.empty()) {
    if (++guard > 100) {
      return Err(ErrorCode::kParseError, StrCat(path, ": library dependency cycle"));
    }
    LibraryUse use = std::move(pending.back());
    pending.pop_back();
    if (!seen.insert(use.path).second) {
      continue;
    }
    OMOS_TRY(const NamespaceEntry* lib, namespace_.Lookup(use.path));
    if (lib->kind == EntryKind::kFragment) {
      OMOS_TRY(m, Module::Merge(m, Module::FromObject(lib->fragment)));
      continue;
    }
    OMOS_TRY(EvalValue lib_value, Eval(lib->construction, tracker, 0));
    if (lib_value.module.has_value()) {
      OMOS_TRY(m, Module::Merge(m, *lib_value.module));
    }
    for (LibraryUse& nested : lib_value.libs) {
      pending.push_back(std::move(nested));
    }
  }
  return m;
}

namespace {

// Warm hits emit a one-timestamp instant, 1-in-8 sampled per thread (the
// first hit always emits). At warm-hit rates the unsampled stream would
// cycle the whole trace ring in milliseconds and its emit cost would
// rival the rest of the hit path; exact hit counts live in cache.hits.
void TraceWarmHitSampled(const std::string& norm) {
  thread_local uint32_t hit_count = 0;
  if ((hit_count++ & 7) == 0) {
    TraceInstant("server.instantiate.hit", norm);
  }
}

}  // namespace

Result<const CachedImage*> OmosServer::Instantiate(const std::string& path,
                                                   const Specialization& spec,
                                                   uint64_t* work_cycles) {
  std::string norm = OmosNamespace::Normalize(path);
  std::string key = MakeCacheKey(norm, spec.ToKeyString());
  // Idle-time optimizer: a hot default-spec image may have a reorder-built
  // twin; serve it instead (the "atomic swap-in on next Get").
  if (const CachedImage* optimized = OptimizedAlias(key)) {
    TraceWarmHitSampled(norm);
    return optimized;
  }
  if (const CachedImage* hit = cache_.Get(key)) {
    NoteWarmHit(key, norm, spec);
    TraceWarmHitSampled(norm);
    return hit;
  }
  // Cold path: the span covers single-flight election and the build.
  TraceSpan trace("server.instantiate", norm);
  // Miss: elect one builder per key. Followers block until the leader
  // publishes, so N concurrent misses of one key do the construction work
  // once and share the image (CacheStats::single_flight_waits counts the
  // followers; inserts stays 1).
  ImageCache::MissJoin join = cache_.JoinBuild(key);
  if (!join.leader) {
    if (join.image != nullptr) {
      return join.image;
    }
    // The leader's build failed. Build it ourselves so this caller gets a
    // first-hand error — or a success, if the failure was transient (e.g. a
    // redefinition raced the build).
  }
  BuildTracker tracker;
  auto result = [&]() -> Result<const CachedImage*> {
    // Second tier: a persisted image linked from identical inputs adopts
    // straight into the cache — no evaluation, no relocation.
    if (store_ != nullptr && StorableSpec(spec)) {
      if (const CachedImage* adopted = TryAdoptFromStore(norm, spec, key, tracker)) {
        return adopted;
      }
    }
    auto built = BuildImage(path, spec, key, tracker);
    if (built.ok() && store_ != nullptr && StorableSpec(spec)) {
      // The lease keeps *built valid across the publish even if a racing
      // redefinition evicts the entry underneath us.
      ImageCache::ReadLease lease(cache_);
      PublishToStore(norm, spec, **built, tracker);
    }
    return built;
  }();
  if (join.leader) {
    cache_.FinishBuild(key, result.ok() ? *result : nullptr);
  }
  if (work_cycles != nullptr) {
    *work_cycles += tracker.work;
  }
  trace.AddSimCycles(0, tracker.work);
  return result;
}

// ---- Idle-time background optimization --------------------------------------

void OmosServer::EnableBackgroundOptimizer(uint64_t hot_threshold) {
  std::lock_guard<std::mutex> lock(optimizer_->mu);
  optimizer_->enabled = true;
  optimizer_->hot_threshold = hot_threshold == 0 ? 1 : hot_threshold;
}

size_t OmosServer::DrainBackgroundWork() {
  size_t ran = ThreadPool::Global().DrainBackground();
  // A worker may have grabbed a job just before the drain; wait it out so
  // callers observe a stable post-optimization state.
  ThreadPool::Global().WaitIdle();
  return ran;
}

const CachedImage* OmosServer::OptimizedAlias(const std::string& key) {
  std::string optimized_key;
  {
    std::lock_guard<std::mutex> lock(optimizer_->mu);
    if (!optimizer_->enabled) {
      return nullptr;
    }
    auto it = optimizer_->alias.find(key);
    if (it == optimizer_->alias.end()) {
      return nullptr;
    }
    optimized_key = it->second;
  }
  if (const CachedImage* optimized = cache_.Get(optimized_key)) {
    return optimized;
  }
  // The optimized twin fell out of the cache; forget it and let the hit
  // counter earn a fresh optimization pass.
  std::lock_guard<std::mutex> lock(optimizer_->mu);
  auto it = optimizer_->alias.find(key);
  if (it != optimizer_->alias.end() && it->second == optimized_key) {
    optimizer_->alias.erase(it);
    optimizer_->attempted.erase(key);
    optimizer_->warm_hits.erase(key);
  }
  return nullptr;
}

void OmosServer::NoteWarmHit(const std::string& key, const std::string& norm,
                             const Specialization& spec) {
  if (!spec.name.empty()) {
    return;  // only default-spec images are candidates for a reorder twin
  }
  {
    std::lock_guard<std::mutex> lock(optimizer_->mu);
    if (!optimizer_->enabled) {
      return;
    }
    if (++optimizer_->warm_hits[key] < optimizer_->hot_threshold ||
        optimizer_->attempted.count(key) != 0) {
      return;
    }
    optimizer_->attempted.insert(key);
  }
  // Queue on the background lane: the pool runs it only when no foreground
  // request is pending — the paper's "during idle time". The job holds the
  // shared state, not the server, so it degrades to a no-op if the server
  // is gone by the time it runs.
  std::shared_ptr<OptimizerState> state = optimizer_;
  ThreadPool::Global().SubmitBackground([state, key, norm] {
    std::lock_guard<std::mutex> alive(state->job_mu);
    if (state->server != nullptr) {
      state->server->RunOptimizeJob(key, norm);
    }
  });
}

void OmosServer::RunOptimizeJob(const std::string& key, const std::string& norm) {
  // Speculatively re-instantiate the hot image's declared library deps so
  // they are warm for the next cold client (cheap: usually all cache hits).
  {
    ImageCache::ReadLease lease(cache_);
    if (const CachedImage* hot = cache_.Peek(key)) {
      std::vector<LibDep> deps = hot->deps;
      for (const LibDep& dep : deps) {
        uint64_t scratch = 0;
        (void)GetOrRebuild(dep.cache_key, &scratch);
      }
    }
  }
  // Re-link under the reorder specialization when profile data exists.
  if (!HasPreferredOrder(norm)) {
    return;
  }
  Specialization reorder;
  reorder.name = "reorder";
  uint64_t scratch = 0;
  auto optimized = Instantiate(norm, reorder, &scratch);
  if (!optimized.ok()) {
    LogMessage(LogLevel::kDebug, "optimizer",
               StrCat("reorder of ", norm, " failed: ", optimized.error().ToString()));
    return;
  }
  std::lock_guard<std::mutex> lock(optimizer_->mu);
  optimizer_->alias[key] = (*optimized)->key;
}

Result<const CachedImage*> OmosServer::GetOrRebuild(const std::string& cache_key,
                                                    uint64_t* work) {
  if (const CachedImage* hit = cache_.Get(cache_key)) {
    return hit;
  }
  std::string_view path_part;
  std::string_view spec_part;
  if (!SplitCacheKey(cache_key, &path_part, &spec_part)) {
    return Err(ErrorCode::kNotFound,
               StrCat("image not cached and key carries no blueprint path: ", cache_key));
  }
  std::string path(path_part);
  Specialization spec = Specialization::FromKeyString(spec_part);
  return Instantiate(path, spec, work);
}

Result<const CachedImage*> OmosServer::BuildImage(const std::string& path,
                                                  const Specialization& spec,
                                                  const std::string& key,
                                                  BuildTracker& tracker) {
  TraceSpan trace("server.build_image", key);
  OMOS_TRY(const NamespaceEntry* entry, namespace_.Lookup(path));

  EvalValue value;
  if (spec.name == "monitor" || spec.name == "reorder") {
    OMOS_TRY(Module mono, BuildMonolithicModule(path, tracker));
    if (spec.name == "monitor") {
      // Collect the text-section function exports to wrap.
      OMOS_TRY(const SymbolSpace* space, mono.Space());
      std::vector<std::string> names;
      for (const auto& [name_id, exp] : space->exports) {
        const Symbol& sym = mono.fragments()[exp.def.fragment]->symbols()[exp.def.symbol];
        if (sym.section == SectionKind::kText) {
          names.emplace_back(SymbolInterner::Global().Name(name_id));
        }
      }
      // Flat-table iteration order is unspecified; keep the wrapper order
      // (and thus mon-log slot order) name-sorted as before.
      std::sort(names.begin(), names.end());
      if (names.empty()) {
        return Err(ErrorCode::kInvalidArgument, StrCat(path, ": nothing to monitor"));
      }
      std::string pattern = NamesPattern(names);
      Module wrapped = mono.CopyAs(pattern, "__mon_&").Restrict(pattern);
      OMOS_TRY(ObjectFile wrappers, GenerateMonitorWrappers(names, 0));
      OMOS_TRY(Module merged,
               Module::Merge(wrapped, Module::FromObject(std::make_shared<const ObjectFile>(
                                          std::move(wrappers)))));
      {
        std::lock_guard<std::mutex> lock(monitor_mu_);
        monitor_names_[OmosNamespace::Normalize(path)] = names;
        monitor_counts_[OmosNamespace::Normalize(path)].assign(names.size(), 0);
      }
      value.module = std::move(merged);
    } else {
      std::vector<std::string> hot;
      {
        std::lock_guard<std::mutex> lock(monitor_mu_);
        auto order_it = preferred_order_.find(OmosNamespace::Normalize(path));
        if (order_it == preferred_order_.end()) {
          return Err(ErrorCode::kNotFound,
                     StrCat(path, ": no recorded routine order; run a monitor pass first"));
        }
        hot = order_it->second;
      }
      // Rank fragments by the hottest routine they define and lay hot ones
      // out first.
      OMOS_TRY(const SymbolSpace* space, mono.Space());
      size_t n = mono.fragments().size();
      std::vector<size_t> rank(n, hot.size());
      for (const auto& [name_id, exp] : space->exports) {
        auto pos = std::find(hot.begin(), hot.end(), SymbolInterner::Global().Name(name_id));
        if (pos != hot.end()) {
          size_t r = static_cast<size_t>(pos - hot.begin());
          rank[exp.def.fragment] = std::min(rank[exp.def.fragment], r);
        }
      }
      std::vector<uint32_t> order(n);
      for (uint32_t i = 0; i < n; ++i) {
        order[i] = i;
      }
      std::stable_sort(order.begin(), order.end(),
                       [&](uint32_t a, uint32_t b) { return rank[a] < rank[b]; });
      OMOS_TRY(Module reordered, mono.ReorderFragments(order));
      value.module = std::move(reordered);
    }
  } else if (entry->kind == EntryKind::kFragment) {
    value.module = Module::FromObject(entry->fragment);
  } else {
    OMOS_TRY(value, Eval(entry->construction, tracker, 0));
  }

  if (!value.module.has_value()) {
    value.module = Module();
  }
  Module client = std::move(*value.module);

  // Resolve library dependencies.
  std::map<std::string, uint32_t> externals;
  std::vector<LibDep> deps;
  std::vector<StubSlot> slots;
  std::set<std::string> seen_libs;
  for (const LibraryUse& use : value.libs) {
    if (!seen_libs.insert(use.path).second) {
      continue;
    }
    Specialization lib_spec = use.spec;
    if (lib_spec.name.empty()) {
      lib_spec.name = "lib-constrained";
    }
    if (lib_spec.name == "lib-dynamic") {
      Specialization impl_spec = lib_spec;
      impl_spec.name = "lib-dynamic-impl";
      OMOS_TRY(const CachedImage* impl, Instantiate(use.path, impl_spec, &tracker.work));
      std::string impl_key = impl->key;
      // Stubs for each referenced entry point present in the library (§4.2).
      OMOS_TRY(std::vector<std::string> wanted, client.UnboundRefNames());
      std::vector<std::string> functions;
      for (const std::string& name : wanted) {
        const ImageSymbol* sym = impl->image.FindSymbol(name);
        if (sym != nullptr && sym->section == SectionKind::kText) {
          functions.push_back(name);
        }
      }
      OMOS_TRY(StubFragment stubs, GenerateLazyStubs(use.path, functions,
                                                     static_cast<uint32_t>(slots.size())));
      tracker.work += kAssembleLineCost * 8 * functions.size();
      OMOS_TRY(client, Module::Merge(client, Module::FromObject(std::make_shared<const ObjectFile>(
                                                 std::move(stubs.object)))));
      for (StubSlot& slot : stubs.slots) {
        slot.lib_path = impl_key;  // runtime resolves through the cache key
        slots.push_back(std::move(slot));
      }
      deps.push_back(LibDep{impl_key, use.path});  // lazy: not mapped at exec
    } else {
      OMOS_TRY(const CachedImage* lib, Instantiate(use.path, lib_spec, &tracker.work));
      for (const ImageSymbol& sym : lib->image.symbols) {
        externals.emplace(sym.name, sym.addr);
      }
      deps.push_back(LibDep{lib->key, use.path});
    }
  }
  bool has_lazy = !slots.empty();

  // Size estimate for placement (must match LinkImage's layout pass).
  uint32_t text_size = 0;
  uint32_t data_size = 0;
  uint32_t bss_size = 0;
  for (const FragmentPtr& frag : client.fragments()) {
    text_size = AlignTo(text_size, 8) + frag->section(SectionKind::kText).size();
    data_size = AlignTo(data_size, 4) + frag->section(SectionKind::kData).size();
    bss_size = AlignTo(bss_size, 4) + frag->section(SectionKind::kBss).size();
  }

  PlacementHints hints = entry->hints;
  if (value.hints.text_base.has_value()) {
    hints.text_base = value.hints.text_base;
  }
  if (value.hints.data_base.has_value()) {
    hints.data_base = value.hints.data_base;
  }
  if (spec.hints.text_base.has_value()) {
    hints.text_base = spec.hints.text_base;
  }
  if (spec.hints.data_base.has_value()) {
    hints.data_base = spec.hints.data_base;
  }
  Placement placement;
  bool conflict_grew = false;
  {
    std::lock_guard<std::mutex> lock(solver_mu_);
    size_t conflicts_before = solver_.conflicts().size();
    OMOS_TRY(placement, solver_.Place(key, text_size, data_size + bss_size, hints));
    conflict_grew = solver_.conflicts().size() > conflicts_before;
  }
  if (conflict_grew && prelink_enabled()) {
    // A weak hint lost to a live placement: the recorded conflict feeds the
    // namespace re-solve, and prelinked images re-link through the idle lane.
    SchedulePrelinkRepair();
  }

  LayoutSpec layout;
  layout.text_base = placement.text_base;
  layout.data_base = placement.data_base;
  layout.externals = std::move(externals);
  OMOS_TRY(bool has_start, client.HasExport("_start"));
  layout.entry_symbol = has_start ? "_start" : "";
  OMOS_TRY(LinkedImage image, LinkImage(client, layout, key));

  uint32_t symbol_count = 0;
  for (const FragmentPtr& frag : client.fragments()) {
    symbol_count += static_cast<uint32_t>(frag->symbols().size());
  }
  ChargeLinkWork(image.stats, symbol_count, tracker);

  CachedImage cached;
  cached.image = std::move(image);
  OMOS_TRY_VOID(MaterializeSegments(cached));
  cached.deps = std::move(deps);
  if (has_lazy) {
    cached.stub_slots = std::move(slots);
  }
  cached.build_cost = tracker.work;
  cached.layout_generation = placement.generation;
  return cache_.Put(key, std::move(cached));
}

Result<void> OmosServer::MaterializeSegments(CachedImage& cached) {
  if (cached.image.text.empty() && (config_.eager_data_copy || cached.image.data.empty())) {
    return OkResult();
  }
  std::lock_guard<std::mutex> lock(kernel_mu_);  // phys-memory allocation
  if (!cached.image.text.empty()) {
    OMOS_TRY(SegmentImage seg, SegmentImage::Create(kernel_->phys(), cached.image.text));
    cached.text_seg = std::move(seg);
  }
  if (!config_.eager_data_copy && !cached.image.data.empty()) {
    OMOS_TRY(SegmentImage seg, SegmentImage::Create(kernel_->phys(), cached.image.data));
    cached.data_seg = std::move(seg);
  }
  return OkResult();
}

// ---- Persistent image store -------------------------------------------------

bool OmosServer::StorableSpec(const Specialization& spec) {
  return spec.name != "monitor" && spec.name != "reorder";
}

namespace {

// Incremental FNV-1a stream for the store fingerprint. Fields are
// length-prefixed so adjacent strings cannot alias.
struct FingerprintStream {
  uint64_t h = 1469598103934665603ULL;
  void Bytes(const void* data, size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void Str(std::string_view s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }
};

// Names a blueprint expression can pull out of the namespace: any atom that
// looks like an absolute path. Over-approximating is safe — an unused or
// undefined name changes nothing (undefined names hash as absent), it can
// only make the fingerprint conservative.
void CollectMentionedPaths(const Sexpr& expr, std::vector<std::string>& out) {
  if (expr.IsAtom()) {
    if ((expr.kind == Sexpr::Kind::kSymbol || expr.kind == Sexpr::Kind::kString) &&
        !expr.atom.empty() && expr.atom.front() == '/') {
      out.push_back(expr.atom);
    }
    return;
  }
  for (const Sexpr& child : expr.children) {
    CollectMentionedPaths(child, out);
  }
}

}  // namespace

Result<uint64_t> OmosServer::StoreFingerprint(const std::string& norm,
                                              const Specialization& spec) const {
  FingerprintStream fp;
  fp.Str("omos-store-v2");
  fp.Str(norm);
  fp.Str(spec.ToKeyString());
  // The layout generation versions every stored image: bytes published at
  // generation G bake in generation-G addresses, so once any live placement
  // moves (G bumps) stale records stop matching and cold builds replace them.
  {
    std::lock_guard<std::mutex> lock(solver_mu_);
    fp.U64(solver_.layout_generation());
  }
  // Deterministic DFS over every namespace entry the construction can
  // reach: blueprint text for metas/libraries (covers constraints, default
  // specs and operator structure), encoded object bytes for fragments.
  std::set<std::string> seen;
  std::vector<std::string> work{norm};
  while (!work.empty()) {
    std::string path = OmosNamespace::Normalize(work.back());
    work.pop_back();
    if (!seen.insert(path).second) {
      continue;
    }
    auto entry_or = namespace_.Lookup(path);
    if (!entry_or.ok()) {
      continue;  // absent names contribute nothing (and change the hash when defined later)
    }
    const NamespaceEntry* entry = *entry_or;
    fp.Str(path);
    fp.U64(static_cast<uint64_t>(entry->kind));
    if (entry->kind == EntryKind::kFragment) {
      std::vector<uint8_t> object = EncodeObject(*entry->fragment);
      fp.U64(object.size());
      fp.Bytes(object.data(), object.size());
    } else {
      fp.Str(entry->blueprint_text);
      CollectMentionedPaths(entry->construction, work);
    }
  }
  return fp.h;
}

const CachedImage* OmosServer::TryAdoptFromStore(const std::string& norm,
                                                 const Specialization& spec,
                                                 const std::string& key,
                                                 BuildTracker& tracker) {
  auto fingerprint = StoreFingerprint(norm, spec);
  if (!fingerprint.ok()) {
    return nullptr;
  }
  auto probe = store_->Get(key, *fingerprint, &tracker.work);
  if (!probe.ok() || !probe->has_value()) {
    return nullptr;
  }
  StoreRecord record = std::move(**probe);
  // The stored program bytes bake in each dependency's addresses; every dep
  // must land exactly where it was when the record was written. A restored
  // placement snapshot makes this deterministic; anything else falls back
  // to a cold build.
  for (const StoredDep& dep : record.deps) {
    uint64_t dep_work = 0;
    auto lib = GetOrRebuild(dep.cache_key, &dep_work);
    tracker.work += dep_work;
    if (!lib.ok() || (*lib)->image.text_base != dep.text_base ||
        (*lib)->image.data_base != dep.data_base) {
      MetricsRegistry::Global().GetCounter("store.dep_mismatches")->Add();
      return nullptr;
    }
  }
  // Re-reserve the image's own bases. Place() reuses an existing placement
  // record for the same object and sizes, so after RestoreFromStore this is
  // exactly the snapshot's assignment; a disagreement means the layout
  // world moved and the stored bytes would be wrong at the new address.
  PlacementHints hints;
  hints.text_base = record.image.text_base;
  hints.data_base = record.image.data_base;
  uint64_t placement_generation = 0;
  {
    std::lock_guard<std::mutex> lock(solver_mu_);
    auto placed = solver_.Place(key, static_cast<uint32_t>(record.image.text.size()),
                                static_cast<uint32_t>(record.image.data.size()) +
                                    record.image.bss_size,
                                hints);
    if (!placed.ok() || placed->text_base != record.image.text_base ||
        placed->data_base != record.image.data_base) {
      MetricsRegistry::Global().GetCounter("store.placement_mismatches")->Add();
      return nullptr;
    }
    placement_generation = placed->generation;
  }
  CachedImage cached;
  cached.image = std::move(record.image);
  cached.deps.reserve(record.deps.size());
  for (const StoredDep& dep : record.deps) {
    cached.deps.push_back(LibDep{dep.cache_key, dep.lib_path});
  }
  cached.stub_slots.reserve(record.stub_slots.size());
  for (const StoredStubSlot& slot : record.stub_slots) {
    cached.stub_slots.push_back(StubSlot{slot.index, slot.slot_symbol, slot.lib_path, slot.symbol});
  }
  cached.build_cost = record.build_cost;
  cached.layout_generation = placement_generation;
  if (!MaterializeSegments(cached).ok()) {
    return nullptr;  // out of frames; the cold path will report properly
  }
  TraceInstant("store.adopt", key);
  return cache_.Put(key, std::move(cached));
}

void OmosServer::PublishToStore(const std::string& norm, const Specialization& spec,
                                const CachedImage& image, BuildTracker& tracker) {
  auto fingerprint = StoreFingerprint(norm, spec);
  if (!fingerprint.ok()) {
    return;
  }
  StoreRecord record;
  record.cache_key = image.key;
  record.fingerprint = *fingerprint;
  record.image = image.image;
  record.deps.reserve(image.deps.size());
  for (const LibDep& dep : image.deps) {
    StoredDep stored{dep.cache_key, dep.lib_path, 0, 0};
    // Lazy deps are keyed by the impl image; either way the dep's cached
    // image carries the bases the program was linked against.
    if (const CachedImage* lib = cache_.Peek(dep.cache_key)) {
      stored.text_base = lib->image.text_base;
      stored.data_base = lib->image.data_base;
    }
    record.deps.push_back(std::move(stored));
  }
  record.stub_slots.reserve(image.stub_slots.size());
  for (const StubSlot& slot : image.stub_slots) {
    record.stub_slots.push_back(StoredStubSlot{slot.index, slot.slot_symbol, slot.lib_path,
                                               slot.symbol});
  }
  record.build_cost = image.build_cost;
  auto put = store_->Put(record, &tracker.work);
  if (!put.ok()) {
    LogMessage(LogLevel::kDebug, "store",
               StrCat("publish of ", image.key, " failed: ", put.error().ToString()));
  }
}

Result<void> OmosServer::PersistTo(ImageStore& store) { return store.PutSnapshot(Snapshot()); }

Result<void> OmosServer::RestoreFromStore(ImageStore& store) {
  OMOS_TRY(std::string snapshot, store.LoadSnapshot());
  OMOS_TRY_VOID(Restore(snapshot));
  store_ = &store;
  return OkResult();
}

// ---- Exec paths -------------------------------------------------------------

Result<uint32_t> OmosServer::MapProgram(Task& task, const CachedImage& program) {
  TraceSpan trace("server.map_program", program.key);
  {
    std::lock_guard<std::mutex> lock(kernel_mu_);
    if (program.text_seg.has_value()) {
      OMOS_TRY_VOID(MapImageWithSharedText(*kernel_, task, program.image, *program.text_seg,
                                           program.data_seg ? &*program.data_seg : nullptr));
    } else {
      OMOS_TRY_VOID(MapLinkedImage(*kernel_, task, program.image, ""));
    }
  }
  TaskRuntime runtime;
  runtime.program_key = program.key;
  for (const LibDep& dep : program.deps) {
    // Lazy deps (partial-image libraries) map on first call via kSysDload.
    bool lazy = false;
    for (const StubSlot& slot : program.stub_slots) {
      if (slot.lib_path == dep.cache_key) {
        lazy = true;
        break;
      }
    }
    if (lazy) {
      continue;
    }
    // An evicted or rotted library image is rebuilt, not a fatal error; the
    // rebuild reuses the old placement so the program's references stay valid.
    uint64_t rebuild_work = 0;
    OMOS_TRY(const CachedImage* lib, GetOrRebuild(dep.cache_key, &rebuild_work));
    std::lock_guard<std::mutex> lock(kernel_mu_);
    task.BillSys(rebuild_work);
    if (lib->text_seg.has_value()) {
      OMOS_TRY_VOID(MapImageWithSharedText(*kernel_, task, lib->image, *lib->text_seg,
                                           lib->data_seg ? &*lib->data_seg : nullptr));
    } else {
      OMOS_TRY_VOID(MapLinkedImage(*kernel_, task, lib->image, ""));
    }
  }
  for (const StubSlot& slot : program.stub_slots) {
    const ImageSymbol* sym = program.image.FindSymbol(slot.slot_symbol);
    if (sym == nullptr) {
      return Err(ErrorCode::kInternal, StrCat("missing stub slot symbol ", slot.slot_symbol));
    }
    // A live upgrade in flight redirects lazy slots of the old version so
    // tasks exec'd mid-roll bind the new one (the cached program image still
    // names the old impl key until the reclaim-phase redefinition).
    runtime.slots.push_back(
        TaskRuntime::Slot{sym->addr, RedirectLibKey(slot.lib_path), slot.symbol});
  }
  std::lock_guard<std::mutex> lock(runtimes_mu_);
  runtimes_[task.id()] = std::move(runtime);
  return program.image.entry;
}

void OmosServer::ReleaseTask(TaskId id) {
  {
    std::lock_guard<std::mutex> lock(runtimes_mu_);
    runtimes_.erase(id);
  }
  // A released task can no longer execute old-version code: take it out of
  // any in-flight upgrade's pending set (and reclaim if it was the last).
  std::shared_ptr<UpgradeJob> reclaim_ready;
  {
    std::lock_guard<std::mutex> lock(upgrade_mu_);
    if (upgrade_job_ != nullptr && upgrade_job_->pending.erase(id) > 0) {
      upgrade_job_->retry_at.erase(id);
      if (upgrade_job_->pending.empty() && upgrade_job_->phase == UpgradePhase::kDraining) {
        reclaim_ready = upgrade_job_;
      }
    }
  }
  if (reclaim_ready != nullptr) {
    ScheduleUpgradeReclaim(reclaim_ready);
  }
}

// ---- Live upgrade (docs/upgrade.md) ------------------------------------------

namespace {
// After a deferred transfer, let this many old-version instructions retire
// before re-scanning the stack: a failed attempt walked the whole live
// stack, so retrying every instruction would dominate execution.
constexpr uint64_t kTransferRetryInterval = 256;
}  // namespace

Result<uint64_t> OmosServer::BeginUpgrade(const std::string& path,
                                          const std::string& new_blueprint) {
  std::string norm = OmosNamespace::Normalize(path);
  OMOS_TRY_VOID(namespace_.Lookup(norm));
  Specialization impl_spec;
  impl_spec.name = "lib-dynamic-impl";
  std::shared_ptr<UpgradeJob> job;
  {
    std::lock_guard<std::mutex> lock(upgrade_mu_);
    if (upgrade_job_ != nullptr && upgrade_job_->phase != UpgradePhase::kDone &&
        upgrade_job_->phase != UpgradePhase::kAborted) {
      return Err(ErrorCode::kUnavailable,
                 StrCat("upgrade of ", upgrade_job_->path, " already in flight"));
    }
    job = std::make_shared<UpgradeJob>();
    job->id = ++upgrade_counter_;
    job->path = norm;
    job->new_blueprint = new_blueprint;
    job->old_impl_key = MakeCacheKey(norm, impl_spec.ToKeyString());
    job->new_impl_key =
        MakeCacheKey(OmosNamespace::Normalize(StrCat(norm, "@v", job->id)), impl_spec.ToKeyString());
    job->phase = UpgradePhase::kLinking;
    upgrade_job_ = job;
  }
  UpgradeStats().begun->Add();
  TraceInstant("upgrade.begin", norm);
  // Link on the idle lane (the pool runs it only when no foreground request
  // is pending) so running tasks never stall behind the new version's link.
  std::shared_ptr<OptimizerState> state = optimizer_;
  ThreadPool::Global().SubmitBackground([state, job] {
    std::lock_guard<std::mutex> alive(state->job_mu);
    if (state->server != nullptr) {
      state->server->RunUpgradeLink(job);
    }
  });
  return job->id;
}

void OmosServer::RunUpgradeLink(std::shared_ptr<UpgradeJob> job) {
  TraceSpan trace("upgrade.link", job->path);
  if (FaultSim::Trip("upgrade.link")) {
    AbortUpgrade(job, "upgrade.link: injected fault");
    return;
  }
  // The new version links under a shadow namespace path so the solver
  // assigns it a fresh placement: old addresses must stay live while
  // suspended frames still execute old code. The real path keeps the old
  // definition until the reclaim phase redefines it.
  std::string shadow = OmosNamespace::Normalize(StrCat(job->path, "@v", job->id));
  if (Result<void> defined = DefineLibrary(shadow, job->new_blueprint); !defined.ok()) {
    AbortUpgrade(job, defined.error().ToString());
    return;
  }
  Specialization impl_spec;
  impl_spec.name = "lib-dynamic-impl";
  ImageCache::ReadLease lease(cache_);  // pins images across map construction
  uint64_t work = 0;
  auto linked = Instantiate(shadow, impl_spec, &work);
  if (!linked.ok()) {
    AbortUpgrade(job, linked.error().ToString());
    return;
  }
  const CachedImage* new_impl = *linked;
  // The old implementation only matters if some task or cached client can
  // still reach it; a rebuilt image reuses the old placement, so the
  // transfer map's old-address ranges are exact even after an eviction.
  bool old_referenced = cache_.Contains(job->old_impl_key);
  if (!old_referenced) {
    std::lock_guard<std::mutex> lock(runtimes_mu_);
    for (const auto& [tid, runtime] : runtimes_) {
      if (runtime.mapped_libs.count(job->old_impl_key) != 0) {
        old_referenced = true;
        break;
      }
      for (const TaskRuntime::Slot& slot : runtime.slots) {
        if (slot.lib_path == job->old_impl_key) {
          old_referenced = true;
          break;
        }
      }
      if (old_referenced) {
        break;
      }
    }
  }
  if (!old_referenced) {
    job->map = std::make_shared<const FrameTransferMap>();  // covers nothing
    RunUpgradeRepoint(std::move(job));
    return;
  }
  auto old_or = GetOrRebuild(job->old_impl_key, &work);
  if (!old_or.ok()) {
    AbortUpgrade(job, old_or.error().ToString());
    return;
  }
  const CachedImage* old_impl = *old_or;
  // Symbols the new version dropped degrade to availability-check stubs
  // (return kUpgradeUnavailable) instead of faulting. The stub image lives
  // under a path that does not embed job->path, so the reclaim-phase
  // redefinition's blueprint-text sweep cannot evict it from under a task.
  std::vector<std::string> deleted = DeletedTextSymbols(old_impl->image, new_impl->image);
  if (!deleted.empty()) {
    std::string degrade_dir = StrCat("/.upgrade/v", job->id);
    auto stub_obj = GenerateDegradationStubs(deleted, "degrade.o");
    if (!stub_obj.ok()) {
      AbortUpgrade(job, stub_obj.error().ToString());
      return;
    }
    std::string frag_path = StrCat(degrade_dir, "/degrade.o");
    std::string meta_path = StrCat(degrade_dir, "/degrade");
    if (Result<void> added = AddFragment(frag_path, std::move(*stub_obj)); !added.ok()) {
      AbortUpgrade(job, added.error().ToString());
      return;
    }
    if (Result<void> meta = DefineMeta(meta_path, StrCat("(merge ", frag_path, ")"));
        !meta.ok()) {
      AbortUpgrade(job, meta.error().ToString());
      return;
    }
    auto stubs = Instantiate(meta_path, Specialization{}, &work);
    if (!stubs.ok()) {
      AbortUpgrade(job, stubs.error().ToString());
      return;
    }
    job->degrade_key = (*stubs)->key;
    for (const std::string& name : deleted) {
      if (const ImageSymbol* sym = (*stubs)->image.FindSymbol(name)) {
        job->degrade_addrs[name] = sym->addr;
      }
    }
  }
  job->map = std::make_shared<const FrameTransferMap>(
      FrameTransferMap::Build(old_impl->image, new_impl->image, job->degrade_addrs));
  RunUpgradeRepoint(std::move(job));
}

void OmosServer::RunUpgradeRepoint(std::shared_ptr<UpgradeJob> job) {
  if (FaultSim::Trip("upgrade.repoint")) {
    // Killed before any runtime was touched: the abort leaves every task on
    // the old version, consistently.
    AbortUpgrade(job, "upgrade.repoint: injected fault");
    return;
  }
  {
    std::lock_guard<std::mutex> lock(upgrade_mu_);
    if (job->phase != UpgradePhase::kLinking) {
      return;  // aborted concurrently
    }
    job->phase = UpgradePhase::kRepointing;
  }
  // One critical section switches every runtime from the old implementation
  // key to the new one: lazy slots resolved after this bind the new version;
  // already-resolved slots keep calling the (still mapped) old code until
  // the task's safepoint transfer. No task observes a half-switched table.
  std::set<TaskId> affected;
  uint64_t repointed_tasks = 0;
  {
    std::lock_guard<std::mutex> lock(runtimes_mu_);
    for (auto& [tid, runtime] : runtimes_) {
      bool uses_old = runtime.mapped_libs.count(job->old_impl_key) != 0;
      for (TaskRuntime::Slot& slot : runtime.slots) {
        if (slot.lib_path == job->old_impl_key) {
          slot.lib_path = job->new_impl_key;
          uses_old = true;
        }
      }
      if (runtime.mapped_libs.count(job->old_impl_key) != 0) {
        affected.insert(tid);  // old code/data mapped: needs a frame transfer
      }
      if (uses_old) {
        ++repointed_tasks;
      }
    }
  }
  UpgradeStats().tasks_repointed->Add(repointed_tasks);
  TraceInstant("upgrade.repoint",
               StrCat(job->path, ": ", affected.size(), " task(s) to drain"));
  // Retire predecoded blocks of the old version's text: draining tasks
  // finish their current block on the still-mapped old code, then re-decode
  // through the repointed linkage at the next block boundary.
  kernel_->engine().InvalidateAll("upgrade.repoint");
  // Publish the pending set before flagging: a safepoint that fires between
  // the flag and the publish would otherwise see "not pending" and clear the
  // flag, stranding the task on the old version forever.
  {
    std::lock_guard<std::mutex> lock(upgrade_mu_);
    if (job->phase != UpgradePhase::kRepointing) {
      return;
    }
    job->pending = affected;
    job->phase = UpgradePhase::kDraining;
  }
  std::set<TaskId> gone;
  {
    std::lock_guard<std::mutex> lock(kernel_mu_);
    for (TaskId tid : affected) {
      if (Task* task = kernel_->FindTask(tid)) {
        task->RequestSafepoint();
      } else {
        gone.insert(tid);  // destroyed without ReleaseTask; nothing to drain
      }
    }
  }
  bool reclaim_ready = false;
  {
    std::lock_guard<std::mutex> lock(upgrade_mu_);
    for (TaskId tid : gone) {
      job->pending.erase(tid);
    }
    reclaim_ready = job->phase == UpgradePhase::kDraining && job->pending.empty();
  }
  if (reclaim_ready) {
    ScheduleUpgradeReclaim(job);
  }
}

Result<void> OmosServer::HandleSafepoint(Kernel& kernel, Task& task) {
  std::shared_ptr<UpgradeJob> job;
  {
    std::lock_guard<std::mutex> lock(upgrade_mu_);
    job = upgrade_job_;
    if (job == nullptr || job->phase != UpgradePhase::kDraining ||
        job->pending.count(task.id()) == 0) {
      task.ClearSafepoint();  // stale flag (job aborted or task already done)
      return OkResult();
    }
    auto retry = job->retry_at.find(task.id());
    if (retry != job->retry_at.end() && task.instructions_retired() < retry->second) {
      return OkResult();  // deferred recently; let old code make progress
    }
  }
  return TryTransferTask(kernel, task, job);
}

Result<void> OmosServer::TryTransferTask(Kernel& kernel, Task& task,
                                         const std::shared_ptr<UpgradeJob>& job) {
  const FrameTransferMap& map = *job->map;
  auto defer = [&]() {
    UpgradeStats().transfers_deferred->Add();
    std::lock_guard<std::mutex> lock(upgrade_mu_);
    job->retry_at[task.id()] = task.instructions_retired() + kTransferRetryInterval;
    return OkResult();
  };
  if (FaultSim::Trip("upgrade.transfer")) {
    return defer();  // a killed transfer is a deferral, never a torn state
  }
  ImageCache::ReadLease lease(cache_);  // pins *new_impl across the mapping
  uint64_t rebuild_work = 0;
  auto new_or = GetOrRebuild(job->new_impl_key, &rebuild_work);
  if (!new_or.ok()) {
    return defer();
  }
  const CachedImage* new_impl = *new_or;
  // Plan every rewrite before applying any: pc, lr, the register file, and
  // each live stack word that lies in the old version's segments. One
  // unmappable value (a frame suspended mid-body of a resized or deleted
  // function) defers the whole transfer — the task resumes old code and we
  // retry at a later safepoint, when that frame has popped.
  auto map_value = [&map](uint32_t value) -> std::optional<uint32_t> {
    return map.Covers(value) ? map.MapAddr(value) : std::optional<uint32_t>(value);
  };
  std::optional<uint32_t> new_pc = map_value(task.pc());
  if (!new_pc.has_value()) {
    return defer();
  }
  uint32_t new_regs[kNumRegisters];
  for (int i = 0; i < kNumRegisters; ++i) {
    if (i == kRegSp) {
      new_regs[i] = task.reg(i);
      continue;
    }
    std::optional<uint32_t> mapped = map_value(task.reg(i));
    if (!mapped.has_value()) {
      return defer();
    }
    new_regs[i] = *mapped;
  }
  uint32_t sp = task.reg(kRegSp);
  std::vector<std::pair<uint32_t, uint32_t>> stack_rewrites;
  for (uint32_t addr = sp & ~3u; addr < kStackTop; addr += 4) {
    Result<uint32_t> word = task.space().Read32(addr);
    if (!word.ok()) {
      break;  // off the mapped stack region
    }
    if (!map.Covers(*word)) {
      continue;
    }
    std::optional<uint32_t> mapped = map.MapAddr(*word);
    if (!mapped.has_value()) {
      return defer();
    }
    if (*mapped != *word) {
      stack_rewrites.emplace_back(addr, *mapped);
    }
  }
  // Map the new version into the task on first contact, and carry the old
  // version's same-shape data state (the task's private CoW bytes) into the
  // new segments before any new code can run. A dload mid-drain may have
  // mapped it already — then the new version's state is live; don't clobber.
  bool first_contact = false;
  {
    std::lock_guard<std::mutex> lock(runtimes_mu_);
    auto it = runtimes_.find(task.id());
    if (it == runtimes_.end()) {
      return defer();  // released concurrently; ReleaseTask drops it from pending
    }
    first_contact = it->second.mapped_libs.insert(job->new_impl_key).second;
  }
  if (first_contact) {
    {
      task.BillSys(kernel.costs().ipc_round_trip + kernel.costs().omos_cache_lookup +
                   rebuild_work);
      std::lock_guard<std::mutex> lock(kernel_mu_);
      if (new_impl->text_seg.has_value()) {
        OMOS_TRY_VOID(MapImageWithSharedText(kernel, task, new_impl->image, *new_impl->text_seg,
                                             new_impl->data_seg ? &*new_impl->data_seg : nullptr));
      } else {
        OMOS_TRY_VOID(MapLinkedImage(kernel, task, new_impl->image, ""));
      }
    }
    for (const DataCarry& carry : map.data_carries()) {
      std::vector<uint8_t> bytes(carry.size);
      OMOS_TRY_VOID(task.space().ReadBytes(carry.old_addr, bytes.data(), carry.size));
      OMOS_TRY_VOID(task.space().WriteBytes(carry.new_addr, bytes.data(), carry.size));
    }
  }
  bool need_degrade = false;
  if (!job->degrade_key.empty()) {
    std::lock_guard<std::mutex> lock(runtimes_mu_);
    auto it = runtimes_.find(task.id());
    if (it != runtimes_.end()) {
      need_degrade = it->second.mapped_libs.insert(job->degrade_key).second;
    }
  }
  if (need_degrade) {
    auto stubs = GetOrRebuild(job->degrade_key, &rebuild_work);
    if (stubs.ok()) {
      std::lock_guard<std::mutex> lock(kernel_mu_);
      if ((*stubs)->text_seg.has_value()) {
        OMOS_TRY_VOID(MapImageWithSharedText(kernel, task, (*stubs)->image, *(*stubs)->text_seg,
                                             (*stubs)->data_seg ? &*(*stubs)->data_seg : nullptr));
      } else {
        OMOS_TRY_VOID(MapLinkedImage(kernel, task, (*stubs)->image, ""));
      }
    }
  }
  // Point of no return: apply the planned rewrites. All writes hit this
  // task's own registers and private pages, on this task's own thread.
  task.set_pc(*new_pc);
  for (int i = 0; i < kNumRegisters; ++i) {
    if (i != kRegSp) {
      task.set_reg(i, new_regs[i]);
    }
  }
  for (const auto& [addr, value] : stack_rewrites) {
    OMOS_TRY_VOID(task.space().Write32(addr, value));
  }
  // Already-resolved lazy slots still hold old-version addresses; rebind
  // them to the new symbol (or its degradation stub) so the next call lands
  // in new code without another dload round trip.
  std::vector<TaskRuntime::Slot> slots;
  {
    std::lock_guard<std::mutex> lock(runtimes_mu_);
    auto it = runtimes_.find(task.id());
    if (it != runtimes_.end()) {
      slots = it->second.slots;
    }
  }
  uint64_t slots_repointed = 0;
  for (const TaskRuntime::Slot& slot : slots) {
    if (slot.lib_path != job->new_impl_key) {
      continue;
    }
    Result<uint32_t> current = task.space().Read32(slot.slot_addr);
    if (!current.ok() || !map.Covers(*current)) {
      continue;  // still lazy (trampoline) or already bound to new code
    }
    uint32_t target = 0;
    if (const ImageSymbol* sym = new_impl->image.FindSymbol(slot.symbol)) {
      target = sym->addr;
    } else if (auto stub = job->degrade_addrs.find(slot.symbol);
               stub != job->degrade_addrs.end()) {
      target = stub->second;
      UpgradeStats().degraded_bindings->Add();
    }
    if (target == 0) {
      continue;
    }
    OMOS_TRY_VOID(task.space().Write32(slot.slot_addr, target));
    ++slots_repointed;
  }
  // Drop the old version from this task. Unmapping decrements the shared
  // frames' refcounts; PhysMemory frees them once the last task lets go.
  {
    std::lock_guard<std::mutex> lock(runtimes_mu_);
    auto it = runtimes_.find(task.id());
    if (it != runtimes_.end()) {
      it->second.mapped_libs.erase(job->old_impl_key);
    }
  }
  {
    std::lock_guard<std::mutex> lock(kernel_mu_);
    if (map.old_text_end() > map.old_text_base()) {
      (void)task.space().Unmap(map.old_text_base());
    }
    if (map.old_data_end() > map.old_data_base()) {
      (void)task.space().Unmap(map.old_data_base());
    }
  }
  task.ClearSafepoint();
  UpgradeStats().frames_transferred->Add();
  UpgradeStats().slots_repointed->Add(slots_repointed);
  UpgradeStats().stack_words_rewritten->Add(stack_rewrites.size());
  TraceInstant("upgrade.transfer", task.name());
  bool reclaim_ready = false;
  {
    std::lock_guard<std::mutex> lock(upgrade_mu_);
    job->pending.erase(task.id());
    job->retry_at.erase(task.id());
    reclaim_ready = job->phase == UpgradePhase::kDraining && job->pending.empty();
  }
  if (reclaim_ready) {
    ScheduleUpgradeReclaim(job);
  }
  return OkResult();
}

void OmosServer::ScheduleUpgradeReclaim(const std::shared_ptr<UpgradeJob>& job) {
  {
    std::lock_guard<std::mutex> lock(upgrade_mu_);
    if (job->phase != UpgradePhase::kDraining) {
      return;  // someone else already moved it on (or it aborted)
    }
    job->phase = UpgradePhase::kReclaiming;
  }
  std::shared_ptr<OptimizerState> state = optimizer_;
  std::shared_ptr<UpgradeJob> claimed = job;
  ThreadPool::Global().SubmitBackground([state, claimed] {
    std::lock_guard<std::mutex> alive(state->job_mu);
    if (state->server != nullptr) {
      state->server->RunUpgradeReclaim(claimed);
    }
  });
}

void OmosServer::RunUpgradeReclaim(std::shared_ptr<UpgradeJob> job) {
  TraceSpan trace("upgrade.reclaim", job->path);
  if (FaultSim::Trip("upgrade.reclaim")) {
    // Killed mid-reclaim: retreat to draining so DrainUpgrade (or the next
    // task release) re-attempts. The redirect stays active meanwhile.
    std::lock_guard<std::mutex> lock(upgrade_mu_);
    if (job->phase == UpgradePhase::kReclaiming) {
      job->phase = UpgradePhase::kDraining;
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(upgrade_mu_);
    if (job->phase != UpgradePhase::kReclaiming) {
      return;
    }
  }
  // Every task migrated: make the new version THE version. Redefining the
  // real path evicts the old implementation and every cached client image
  // that linked against it and releases their placements — the existing
  // redefinition semantics do the reclamation. Tasks keep their mappings
  // (per-task address spaces hold frame refcounts), so this only drops the
  // server-side copies.
  size_t entries_before = cache_.entry_count();
  if (Result<void> redefined = DefineLibrary(job->path, job->new_blueprint); !redefined.ok()) {
    AbortUpgrade(job, redefined.error().ToString());
    return;
  }
  // The shadow-path and degradation-stub entries served the migration;
  // future execs resolve the real path. Drop the cached copies (running
  // tasks keep their mapped frames, and a straggler dload can rebuild from
  // the shadow definitions, which stay in the namespace).
  cache_.Evict(job->new_impl_key);
  if (!job->degrade_key.empty()) {
    cache_.Evict(job->degrade_key);
  }
  size_t entries_after = cache_.entry_count();
  if (entries_before > entries_after) {
    UpgradeStats().images_reclaimed->Add(entries_before - entries_after);
  }
  {
    std::lock_guard<std::mutex> lock(upgrade_mu_);
    job->phase = UpgradePhase::kDone;
  }
  UpgradeStats().completed->Add();
  TraceInstant("upgrade.complete", job->path);
}

void OmosServer::AbortUpgrade(const std::shared_ptr<UpgradeJob>& job, std::string why) {
  std::set<TaskId> pending;
  {
    std::lock_guard<std::mutex> lock(upgrade_mu_);
    if (job->phase == UpgradePhase::kDone || job->phase == UpgradePhase::kAborted) {
      return;
    }
    job->phase = UpgradePhase::kAborted;
    job->error = why;
    pending.swap(job->pending);
    job->retry_at.clear();
  }
  {
    std::lock_guard<std::mutex> lock(kernel_mu_);
    for (TaskId tid : pending) {
      if (Task* task = kernel_->FindTask(tid)) {
        task->ClearSafepoint();
      }
    }
  }
  UpgradeStats().aborted->Add();
  TraceInstant("upgrade.abort", StrCat(job->path, ": ", why));
}

std::string OmosServer::RedirectLibKey(const std::string& key) const {
  std::lock_guard<std::mutex> lock(upgrade_mu_);
  if (upgrade_job_ != nullptr && upgrade_job_->old_impl_key == key &&
      (upgrade_job_->phase == UpgradePhase::kRepointing ||
       upgrade_job_->phase == UpgradePhase::kDraining ||
       upgrade_job_->phase == UpgradePhase::kReclaiming)) {
    return upgrade_job_->new_impl_key;
  }
  return key;
}

uint32_t OmosServer::DegradeBindingFor(const std::string& impl_key, const std::string& symbol,
                                       std::string* degrade_key) const {
  std::lock_guard<std::mutex> lock(upgrade_mu_);
  if (upgrade_job_ == nullptr || upgrade_job_->degrade_key.empty() ||
      upgrade_job_->phase == UpgradePhase::kAborted ||
      upgrade_job_->new_impl_key != impl_key) {
    return 0;
  }
  auto it = upgrade_job_->degrade_addrs.find(symbol);
  if (it == upgrade_job_->degrade_addrs.end()) {
    return 0;
  }
  *degrade_key = upgrade_job_->degrade_key;
  return it->second;
}

OmosServer::UpgradeStatus OmosServer::UpgradeStatusNow() const {
  std::lock_guard<std::mutex> lock(upgrade_mu_);
  UpgradeStatus status;
  if (upgrade_job_ == nullptr) {
    return status;
  }
  status.id = upgrade_job_->id;
  status.path = upgrade_job_->path;
  status.phase = upgrade_job_->phase;
  status.tasks_pending = upgrade_job_->pending.size();
  status.error = upgrade_job_->error;
  return status;
}

OmosServer::UpgradeStatus OmosServer::DrainUpgrade() {
  for (int round = 0; round < 8; ++round) {
    DrainBackgroundWork();
    std::shared_ptr<UpgradeJob> job;
    bool waiting_on_tasks = false;
    bool reclaim_ready = false;
    {
      std::lock_guard<std::mutex> lock(upgrade_mu_);
      job = upgrade_job_;
      if (job == nullptr || job->phase == UpgradePhase::kDone ||
          job->phase == UpgradePhase::kAborted) {
        break;
      }
      if (job->phase == UpgradePhase::kDraining) {
        if (job->pending.empty()) {
          reclaim_ready = true;  // e.g. a faulted reclaim retreated here
        } else {
          waiting_on_tasks = true;
        }
      }
    }
    if (waiting_on_tasks) {
      break;  // the caller must run (or release) the pending tasks
    }
    if (reclaim_ready) {
      ScheduleUpgradeReclaim(job);  // next round's drain executes it
    }
  }
  return UpgradeStatusNow();
}

Result<TaskId> OmosServer::BootstrapExec(const std::string& path, std::vector<std::string> args,
                                         const Specialization& spec) {
  TraceSpan trace("server.exec_bootstrap", path);
  TaskId task_id;
  Task* task;
  {
    std::lock_guard<std::mutex> lock(kernel_mu_);
    task = &kernel_->CreateTask(StrCat("omos-boot:", path));
    task_id = task->id();
    const CostModel& costs = kernel_->costs();
    // Load and run the tiny bootstrap loader program (#! /bin/omos).
    task->BillSys(costs.file_open + costs.header_parse + costs.file_read_page);
    task->BillUser(config_.bootstrap_user_cycles);
  }
  Channel channel = MakeChannel();
  OmosRequest request;
  request.op = OmosOp::kInstantiate;
  request.path = path;
  request.specialization = spec.ToKeyString();
  request.task_handle = task_id;
  OMOS_TRY(OmosReply reply, channel.Call(request, task));
  if (!reply.ok) {
    return Err(ErrorCode::kNotFound, reply.error);
  }
  std::lock_guard<std::mutex> lock(kernel_mu_);
  OMOS_TRY_VOID(StartTask(*kernel_, *task, reply.entry, args));
  return task_id;
}

Result<TaskId> OmosServer::IntegratedExec(const std::string& path, std::vector<std::string> args,
                                          const Specialization& spec) {
  TraceSpan trace("server.exec_integrated", path);
  Task* task;
  {
    std::lock_guard<std::mutex> lock(kernel_mu_);
    task = &kernel_->CreateTask(StrCat("omos-exec:", path));
  }
  ImageCache::ReadLease lease(cache_);  // pins *image across mapping
  uint64_t work = 0;
  OMOS_TRY(const CachedImage* image, Instantiate(path, spec, &work));
  {
    std::lock_guard<std::mutex> lock(kernel_mu_);
    task->BillSys(work + kernel_->costs().omos_cache_lookup);
  }
  OMOS_TRY(uint32_t entry, MapProgram(*task, *image));
  std::lock_guard<std::mutex> lock(kernel_mu_);
  OMOS_TRY_VOID(StartTask(*kernel_, *task, entry, args));
  return task->id();
}

// ---- Fleet-wide prelink -------------------------------------------------------

namespace {

// Prelink-table counters; see docs/observability.md.
struct PrelinkMetrics {
  Counter* hits = MetricsRegistry::Global().GetCounter("prelink.hits");
  Counter* stale = MetricsRegistry::Global().GetCounter("prelink.stale");
  Counter* misses = MetricsRegistry::Global().GetCounter("prelink.misses");
  Counter* relinks = MetricsRegistry::Global().GetCounter("prelink.relinks");
  Counter* repairs = MetricsRegistry::Global().GetCounter("prelink.repairs");
};

PrelinkMetrics& PrelinkStats() {
  static PrelinkMetrics* metrics = new PrelinkMetrics();
  return *metrics;
}

}  // namespace

void OmosServer::EnablePrelink() {
  prelink_enabled_.store(true, std::memory_order_relaxed);
}

void OmosServer::RecordPrelinkEntry(const std::string& path, const std::string& cache_key) {
  uint64_t stamp;
  {
    std::lock_guard<std::mutex> lock(solver_mu_);
    stamp = solver_.GenerationOf(cache_key);
  }
  std::lock_guard<std::mutex> lock(prelink_mu_);
  prelink_[OmosNamespace::Normalize(path)] = PrelinkEntry{cache_key, stamp};
}

Result<int> OmosServer::PrelinkNamespace(const std::string& prefix) {
  TraceSpan trace("server.prelink_namespace", prefix);
  std::string dir = OmosNamespace::Normalize(prefix);
  int recorded = 0;
  for (const std::string& name : namespace_.List(dir)) {
    std::string meta_path = dir == "/" ? "/" + name : dir + "/" + name;
    auto entry = namespace_.Lookup(meta_path);
    if (!entry.ok() || (*entry)->kind == EntryKind::kFragment) {
      continue;  // only executable meta-objects get prelink entries
    }
    uint64_t scratch = 0;
    ImageCache::ReadLease lease(cache_);  // pins *image across RecordPrelinkEntry
    OMOS_TRY(const CachedImage* image, Instantiate(meta_path, {}, &scratch));
    RecordPrelinkEntry(meta_path, image->key);
    ++recorded;
  }
  // Prelinking a namespace opts into conflict-driven repair: future
  // placement collisions re-solve + re-link in the background.
  EnablePrelink();
  return recorded;
}

size_t OmosServer::PrelinkValidCount() const {
  std::vector<PrelinkEntry> entries;
  {
    std::lock_guard<std::mutex> lock(prelink_mu_);
    entries.reserve(prelink_.size());
    for (const auto& [path, entry] : prelink_) {
      entries.push_back(entry);
    }
  }
  size_t valid = 0;
  std::lock_guard<std::mutex> lock(solver_mu_);
  for (const PrelinkEntry& entry : entries) {
    if (entry.stamp != 0 && solver_.GenerationOf(entry.cache_key) == entry.stamp) {
      ++valid;
    }
  }
  return valid;
}

Result<TaskId> OmosServer::PrelinkedExec(const std::string& path, std::vector<std::string> args) {
  TraceSpan trace("server.exec_prelinked", path);
  std::string norm = OmosNamespace::Normalize(path);
  PrelinkEntry entry;
  bool have_entry = false;
  {
    std::lock_guard<std::mutex> lock(prelink_mu_);
    auto it = prelink_.find(norm);
    if (it != prelink_.end()) {
      entry = it->second;
      have_entry = true;
    }
  }
  Task* task;
  {
    std::lock_guard<std::mutex> lock(kernel_mu_);
    task = &kernel_->CreateTask(StrCat("omos-prelink:", path));
  }
  ImageCache::ReadLease lease(cache_);  // pins *image across mapping
  const CachedImage* image = nullptr;
  if (have_entry) {
    // The stamp compare IS the validity check: the image's relocations were
    // applied at `entry.stamp`; while the solver still reports that
    // generation for the key, every address baked into the image is current
    // and the map below performs zero relocations.
    bool stamp_valid;
    {
      std::lock_guard<std::mutex> lock(solver_mu_);
      stamp_valid = entry.stamp != 0 && solver_.GenerationOf(entry.cache_key) == entry.stamp;
    }
    if (stamp_valid) {
      image = cache_.Get(entry.cache_key);
      if (image == nullptr && store_ != nullptr) {
        // Restart-warm path: the snapshot restored the entry (re-stamped at
        // the restored layout generation) but the in-memory cache is cold.
        // The attached store adopts the persisted image with zero
        // relocations; when the adopted image carries the entry's stamp the
        // exec is a prelink hit, not a rebuild.
        uint64_t adopt_work = 0;
        auto adopted = GetOrRebuild(entry.cache_key, &adopt_work);
        if (adopted.ok() && (*adopted)->layout_generation == entry.stamp) {
          image = *adopted;
          std::lock_guard<std::mutex> lock(kernel_mu_);
          task->BillSys(adopt_work);
        }
      }
    }
  }
  if (image != nullptr) {
    PrelinkStats().hits->Add();
    std::lock_guard<std::mutex> lock(kernel_mu_);
    task->BillSys(kernel_->costs().prelink_lookup);
  } else {
    // No entry, a stale stamp, or the image fell out of the cache: pay the
    // full lookup, then let the idle lane re-link everything stale so the
    // next exec is fast again.
    if (have_entry) {
      PrelinkStats().stale->Add();
    } else {
      PrelinkStats().misses->Add();
    }
    uint64_t work = 0;
    OMOS_TRY(image, Instantiate(norm, {}, &work));
    {
      std::lock_guard<std::mutex> lock(kernel_mu_);
      task->BillSys(work + kernel_->costs().omos_cache_lookup);
    }
    RecordPrelinkEntry(norm, image->key);
    if (have_entry && prelink_enabled()) {
      SchedulePrelinkRepair();
    }
  }
  OMOS_TRY(uint32_t entry_addr, MapProgram(*task, *image));
  std::lock_guard<std::mutex> lock(kernel_mu_);
  OMOS_TRY_VOID(StartTask(*kernel_, *task, entry_addr, args));
  return task->id();
}

void OmosServer::SchedulePrelinkRepair() {
  {
    std::lock_guard<std::mutex> lock(prelink_mu_);
    if (prelink_repair_queued_) {
      return;  // one repair pass covers every conflict recorded before it runs
    }
    prelink_repair_queued_ = true;
  }
  // Same lifetime discipline as the optimizer jobs: the job holds the shared
  // state, not the server, and no-ops if the server died first.
  std::shared_ptr<OptimizerState> state = optimizer_;
  ThreadPool::Global().SubmitBackground([state] {
    std::lock_guard<std::mutex> alive(state->job_mu);
    if (state->server != nullptr) {
      state->server->RunPrelinkRepair();
    }
  });
}

void OmosServer::RunPrelinkRepair() {
  {
    std::lock_guard<std::mutex> lock(prelink_mu_);
    prelink_repair_queued_ = false;  // conflicts after this point re-queue
  }
  TraceSpan trace("server.prelink_repair", "");
  PrelinkStats().repairs->Add();
  std::vector<std::string> moved;
  {
    std::lock_guard<std::mutex> lock(solver_mu_);
    moved = solver_.SolveNamespace();
  }
  if (!moved.empty()) {
    // Addresses in cached client replies moved; stub caches must refresh.
    BumpNamespaceGeneration();
    for (const std::string& key : moved) {
      if (cache_.Contains(key)) {
        cache_.Evict(key);
      }
    }
    // Images that linked against a moved library baked in its old addresses.
    ImageCache::ReadLease lease(cache_);  // keeps Peek pointers valid across Evict
    for (const std::string& moved_key : moved) {
      for (const std::string& key : cache_.Keys()) {
        const CachedImage* image = cache_.Peek(key);
        if (image == nullptr) {
          continue;
        }
        for (const LibDep& dep : image->deps) {
          if (dep.cache_key == moved_key) {
            cache_.Evict(key);
            break;
          }
        }
      }
    }
  }
  // Re-instantiate every prelinked path at the solved layout and re-stamp
  // its entry. Unmoved images are warm cache hits; moved ones re-link once
  // here instead of on a client's critical path.
  std::vector<std::string> paths;
  {
    std::lock_guard<std::mutex> lock(prelink_mu_);
    paths.reserve(prelink_.size());
    for (const auto& [path, entry] : prelink_) {
      paths.push_back(path);
    }
  }
  for (const std::string& path : paths) {
    uint64_t scratch = 0;
    auto image = Instantiate(path, {}, &scratch);
    if (image.ok()) {
      RecordPrelinkEntry(path, (*image)->key);
      PrelinkStats().relinks->Add();
    }
  }
}

Result<int> OmosServer::ExportNamespaceToFs(std::string_view namespace_dir,
                                            std::string_view fs_dir) {
  int exported = 0;
  std::string dir = OmosNamespace::Normalize(namespace_dir);
  for (const std::string& name : namespace_.List(dir)) {
    std::string meta_path = dir == "/" ? "/" + name : dir + "/" + name;
    auto entry = namespace_.Lookup(meta_path);
    if (!entry.ok() || (*entry)->kind == EntryKind::kFragment) {
      continue;  // only executable meta-objects are exported
    }
    std::lock_guard<std::mutex> lock(kernel_mu_);
    OMOS_TRY_VOID(kernel_->fs().TryWriteFile(StrCat(fs_dir, "/", name),
                                             StrCat("#!omos ", meta_path, "\n"), 0755));
    ++exported;
  }
  return exported;
}

Result<TaskId> OmosServer::ExecFile(const std::string& fs_path, std::vector<std::string> args,
                                    bool integrated) {
  OMOS_TRY(const SimFile* file, kernel_->fs().Lookup(fs_path));
  std::string text(file->bytes.begin(), file->bytes.end());
  if (!StartsWith(text, "#!omos ")) {
    return Err(ErrorCode::kInvalidArgument, StrCat(fs_path, ": not an OMOS interpreter file"));
  }
  std::string meta(StripWhitespace(std::string_view(text).substr(7)));
  if (integrated) {
    return IntegratedExec(meta, std::move(args));
  }
  return BootstrapExec(meta, std::move(args));
}

// ---- Lazy loading and monitoring hooks ---------------------------------------

Result<void> OmosServer::HandleDload(Kernel& kernel, Task& task) {
  uint32_t index = task.reg(12);
  TaskRuntime::Slot slot;
  {
    std::lock_guard<std::mutex> lock(runtimes_mu_);
    auto it = runtimes_.find(task.id());
    if (it == runtimes_.end() || index >= it->second.slots.size()) {
      return Err(ErrorCode::kExecFault, StrCat(task.name(), ": bad dload slot ", index));
    }
    slot = it->second.slots[index];
  }
  ImageCache::ReadLease lease(cache_);  // pins *impl across the mapping below
  uint64_t rebuild_work = 0;
  OMOS_TRY(const CachedImage* impl, GetOrRebuild(slot.lib_path, &rebuild_work));
  task.BillSys(rebuild_work);
  bool first_use = false;
  {
    std::lock_guard<std::mutex> lock(runtimes_mu_);
    auto it = runtimes_.find(task.id());
    if (it == runtimes_.end()) {
      return Err(ErrorCode::kExecFault, StrCat(task.name(), ": task released during dload"));
    }
    first_use = it->second.mapped_libs.insert(slot.lib_path).second;
  }
  if (first_use) {
    // First use in this task: the stub "contacts OMOS and loads in the
    // library" (§4.2) — one IPC round trip plus the mapping work.
    task.BillSys(kernel.costs().ipc_round_trip + kernel.costs().omos_cache_lookup);
    std::lock_guard<std::mutex> lock(kernel_mu_);
    if (impl->text_seg.has_value()) {
      OMOS_TRY_VOID(MapImageWithSharedText(kernel, task, impl->image, *impl->text_seg,
                                           impl->data_seg ? &*impl->data_seg : nullptr));
    } else {
      OMOS_TRY_VOID(MapLinkedImage(kernel, task, impl->image, ""));
    }
  }
  // "the first time a function is accessed, its name is looked up in the
  // function hash table and the value stored in an indirect branch table" —
  // user-mode work in the stub.
  task.BillUser(kernel.costs().symbol_lookup);
  const ImageSymbol* sym = impl->image.FindSymbol(slot.symbol);
  uint32_t target = sym != nullptr ? sym->addr : 0;
  if (sym == nullptr) {
    // Availability-check semantics mid-roll (docs/upgrade.md): a symbol the
    // new library version dropped binds to its degradation stub — callers
    // get kUpgradeUnavailable back instead of a fault.
    std::string degrade_key;
    target = DegradeBindingFor(slot.lib_path, slot.symbol, &degrade_key);
    if (target == 0) {
      return Err(ErrorCode::kUnresolvedSymbol,
                 StrCat("symbol ", slot.symbol, " not in ", slot.lib_path));
    }
    OMOS_TRY(const CachedImage* stubs, GetOrRebuild(degrade_key, &rebuild_work));
    bool stubs_first_use = false;
    {
      std::lock_guard<std::mutex> lock(runtimes_mu_);
      auto it = runtimes_.find(task.id());
      if (it == runtimes_.end()) {
        return Err(ErrorCode::kExecFault, StrCat(task.name(), ": task released during dload"));
      }
      stubs_first_use = it->second.mapped_libs.insert(degrade_key).second;
    }
    if (stubs_first_use) {
      std::lock_guard<std::mutex> lock(kernel_mu_);
      if (stubs->text_seg.has_value()) {
        OMOS_TRY_VOID(MapImageWithSharedText(kernel, task, stubs->image, *stubs->text_seg,
                                             stubs->data_seg ? &*stubs->data_seg : nullptr));
      } else {
        OMOS_TRY_VOID(MapLinkedImage(kernel, task, stubs->image, ""));
      }
    }
    UpgradeStats().degraded_bindings->Add();
  }
  OMOS_TRY_VOID(task.space().Write32(slot.slot_addr, target));
  task.BillUser(kernel.costs().reloc_apply);
  task.set_pc(target);
  return OkResult();
}

Result<void> OmosServer::HandleMonLog(Kernel& kernel, Task& task) {
  (void)kernel;
  uint32_t index = task.reg(12);
  std::string key;
  {
    std::lock_guard<std::mutex> lock(runtimes_mu_);
    auto it = runtimes_.find(task.id());
    if (it == runtimes_.end()) {
      return OkResult();  // Unmonitored task; ignore.
    }
    key = it->second.program_key;
  }
  // program_key = "<path>§<spec>"; recover the path.
  std::string_view path_part = key;
  SplitCacheKey(key, &path_part, nullptr);
  std::string path(path_part);
  std::lock_guard<std::mutex> lock(monitor_mu_);
  auto counts = monitor_counts_.find(path);
  if (counts != monitor_counts_.end() && index < counts->second.size()) {
    ++counts->second[index];
  }
  return OkResult();
}

Result<std::vector<std::pair<std::string, uint64_t>>> OmosServer::MonitorCounts(
    const std::string& path) const {
  std::string norm = OmosNamespace::Normalize(path);
  std::lock_guard<std::mutex> lock(monitor_mu_);
  auto names = monitor_names_.find(norm);
  auto counts = monitor_counts_.find(norm);
  if (names == monitor_names_.end() || counts == monitor_counts_.end()) {
    return Err(ErrorCode::kNotFound, StrCat("no monitor data for ", path));
  }
  std::vector<std::pair<std::string, uint64_t>> out;
  for (size_t i = 0; i < names->second.size(); ++i) {
    out.emplace_back(names->second[i], counts->second[i]);
  }
  return out;
}

Result<void> OmosServer::DerivePreferredOrder(const std::string& path) {
  // MonitorCounts takes monitor_mu_ itself; lock only for the final write.
  OMOS_TRY(auto counts, MonitorCounts(path));
  std::stable_sort(counts.begin(), counts.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<std::string> order;
  order.reserve(counts.size());
  for (const auto& [name, count] : counts) {
    order.push_back(name);
  }
  std::lock_guard<std::mutex> lock(monitor_mu_);
  preferred_order_[OmosNamespace::Normalize(path)] = std::move(order);
  return OkResult();
}

bool OmosServer::HasPreferredOrder(const std::string& path) const {
  std::lock_guard<std::mutex> lock(monitor_mu_);
  return preferred_order_.count(OmosNamespace::Normalize(path)) != 0;
}

// ---- Dynamic loading ----------------------------------------------------------

Result<OmosServer::DynLoadResult> OmosServer::DynamicLoad(
    Task& task, const std::string& blueprint_or_path, const std::vector<std::string>& symbols) {
  BuildTracker tracker;
  EvalValue value;
  if (StartsWith(blueprint_or_path, "(")) {
    OMOS_TRY(Sexpr expr, ParseSexpr(blueprint_or_path));
    OMOS_TRY(value, Eval(expr, tracker, 0));
  } else {
    OMOS_TRY(value, EvalName(blueprint_or_path, tracker, 0));
  }
  OMOS_TRY(Module module, RequireModule(std::move(value), "dynamic-load"));

  // Pin every cache pointer used below (the program image and the loaded
  // class) so a concurrent eviction cannot free them mid-map.
  ImageCache::ReadLease lease(cache_);

  // The loaded class may refer to procedures and data within the client
  // (§5): the running program's exported symbols become externals.
  std::map<std::string, uint32_t> externals;
  std::string program_key;
  {
    std::lock_guard<std::mutex> lock(runtimes_mu_);
    auto rt = runtimes_.find(task.id());
    if (rt != runtimes_.end()) {
      program_key = rt->second.program_key;
    }
  }
  if (!program_key.empty()) {
    if (const CachedImage* program = cache_.Get(program_key)) {
      for (const ImageSymbol& sym : program->image.symbols) {
        externals.emplace(sym.name, sym.addr);
      }
    }
  }

  std::string key = StrCat("dyn:", Hex32(static_cast<uint32_t>(Fnv1a(blueprint_or_path))));
  const CachedImage* cached = cache_.Get(key);
  if (cached == nullptr) {
    uint32_t text_size = 0;
    uint32_t data_size = 0;
    uint32_t bss_size = 0;
    for (const FragmentPtr& frag : module.fragments()) {
      text_size = AlignTo(text_size, 8) + frag->section(SectionKind::kText).size();
      data_size = AlignTo(data_size, 4) + frag->section(SectionKind::kData).size();
      bss_size = AlignTo(bss_size, 4) + frag->section(SectionKind::kBss).size();
    }
    Placement placement;
    {
      std::lock_guard<std::mutex> lock(solver_mu_);
      OMOS_TRY(placement, solver_.Place(key, text_size, data_size + bss_size, {}));
    }
    LayoutSpec layout;
    layout.text_base = placement.text_base;
    layout.data_base = placement.data_base;
    layout.externals = std::move(externals);
    OMOS_TRY(LinkedImage image, LinkImage(module, layout, key));
    CachedImage ci;
    ci.image = std::move(image);
    if (!ci.image.text.empty() || (!config_.eager_data_copy && !ci.image.data.empty())) {
      std::lock_guard<std::mutex> lock(kernel_mu_);
      if (!ci.image.text.empty()) {
        OMOS_TRY(SegmentImage seg, SegmentImage::Create(kernel_->phys(), ci.image.text));
        ci.text_seg = std::move(seg);
      }
      if (!config_.eager_data_copy && !ci.image.data.empty()) {
        OMOS_TRY(SegmentImage seg, SegmentImage::Create(kernel_->phys(), ci.image.data));
        ci.data_seg = std::move(seg);
      }
    }
    ci.build_cost = tracker.work;
    ci.layout_generation = placement.generation;
    cached = cache_.Put(key, std::move(ci));
  }
  task.BillSys(tracker.work + kernel_->costs().omos_cache_lookup);
  {
    std::lock_guard<std::mutex> lock(kernel_mu_);
    if (cached->text_seg.has_value()) {
      OMOS_TRY_VOID(MapImageWithSharedText(*kernel_, task, cached->image, *cached->text_seg,
                                           cached->data_seg ? &*cached->data_seg : nullptr));
    } else {
      OMOS_TRY_VOID(MapLinkedImage(*kernel_, task, cached->image, ""));
    }
  }
  // Remember the mapped regions so the class can be dynamically unlinked.
  TaskRuntime::DynRegion region;
  region.text_base = cached->image.text_base;
  region.has_text = !cached->image.text.empty();
  region.data_base = cached->image.data_base;
  region.has_data = cached->image.data.size() + cached->image.bss_size > 0;
  {
    std::lock_guard<std::mutex> lock(runtimes_mu_);
    runtimes_[task.id()].dyn_loaded.push_back(region);
  }

  DynLoadResult result;
  result.text_base = cached->image.text_base;
  for (const std::string& name : symbols) {
    const ImageSymbol* sym = cached->image.FindSymbol(name);
    result.symbol_values.push_back(sym == nullptr ? 0 : sym->addr);
  }
  return result;
}

Result<void> OmosServer::DynamicUnload(Task& task, uint32_t text_base) {
  std::lock_guard<std::mutex> rt_lock(runtimes_mu_);
  auto rt = runtimes_.find(task.id());
  if (rt == runtimes_.end()) {
    return Err(ErrorCode::kNotFound, StrCat(task.name(), ": no OMOS runtime state"));
  }
  auto& regions = rt->second.dyn_loaded;
  for (auto it = regions.begin(); it != regions.end(); ++it) {
    if (it->text_base != text_base) {
      continue;
    }
    std::lock_guard<std::mutex> lock(kernel_mu_);  // runtimes_mu_ -> kernel_mu_ is in order
    if (it->has_text) {
      OMOS_TRY_VOID(task.space().Unmap(it->text_base));
    }
    if (it->has_data) {
      OMOS_TRY_VOID(task.space().Unmap(it->data_base));
    }
    regions.erase(it);
    return OkResult();
  }
  return Err(ErrorCode::kNotFound,
             StrCat(task.name(), ": no dynamically loaded class at ", Hex32(text_base)));
}

Result<void> OmosServer::HandleOmosLoadSys(Kernel& kernel, Task& task) {
  (void)kernel;
  OMOS_TRY(std::string blueprint, task.space().ReadCString(task.reg(0)));
  OMOS_TRY(std::string symbol, task.space().ReadCString(task.reg(1)));
  // The in-task path is a real IPC to the server.
  task.BillSys(kernel_->costs().ipc_round_trip);
  auto result = DynamicLoad(task, blueprint, {symbol});
  if (!result.ok() || result->symbol_values.empty()) {
    task.set_reg(0, 0);
    return OkResult();
  }
  task.set_reg(0, result->symbol_values[0]);
  return OkResult();
}

Result<void> OmosServer::HandleOmosUnloadSys(Kernel& kernel, Task& task) {
  (void)kernel;
  auto result = DynamicUnload(task, task.reg(0));
  task.set_reg(0, result.ok() ? 0 : static_cast<uint32_t>(-1));
  return OkResult();
}

// ---- Crash / recovery ---------------------------------------------------------
//
// Snapshot grammar (line-oriented; blobs are length-prefixed so blueprints
// may contain newlines; the final `check` line is an FNV-1a hash of every
// byte before it):
//   omos-snapshot 1
//   meta <kind> <blueprint-len> <path>\n<blueprint>\n
//   frag <hex-len> <path>\n<hex-of-XOF-object>\n
//   order <count> <path>\n<routine-name>\n ...
//   layoutgen <generation>
//   place <text-base> <text-size> <data-base> <data-size> <object-key>
//   prelink <path> <cache-key>
//   check <fnv64-hex>

namespace {

constexpr std::string_view kSnapshotMagic = "omos-snapshot 1";

std::string HexEncode(const std::vector<uint8_t>& bytes) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

Result<std::vector<uint8_t>> HexDecode(std::string_view hex) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  if (hex.size() % 2 != 0) {
    return Err(ErrorCode::kCorrupted, "snapshot: odd-length hex blob");
  }
  std::vector<uint8_t> bytes(hex.size() / 2);
  for (size_t i = 0; i < bytes.size(); ++i) {
    int hi = nibble(hex[2 * i]);
    int lo = nibble(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) {
      return Err(ErrorCode::kCorrupted, "snapshot: bad hex digit");
    }
    bytes[i] = static_cast<uint8_t>(hi << 4 | lo);
  }
  return bytes;
}

std::string Hex64(uint64_t value) {
  return Hex32(static_cast<uint32_t>(value >> 32)) + Hex32(static_cast<uint32_t>(value)).substr(2);
}

Result<uint64_t> ParseU64(std::string_view text) {
  uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Err(ErrorCode::kParseError, StrCat("snapshot: bad number '", text, "'"));
  }
  return value;
}

// Line/blob reader over the snapshot text.
struct SnapshotCursor {
  std::string_view text;
  size_t pos = 0;

  bool AtEnd() const { return pos >= text.size(); }

  Result<std::string_view> Line() {
    if (AtEnd()) {
      return Err(ErrorCode::kParseError, "snapshot: truncated (expected line)");
    }
    size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) {
      return Err(ErrorCode::kParseError, "snapshot: missing final newline");
    }
    std::string_view line = text.substr(pos, nl - pos);
    pos = nl + 1;
    return line;
  }

  // Exactly `n` bytes followed by a newline.
  Result<std::string_view> Blob(size_t n) {
    if (pos + n >= text.size() || text[pos + n] != '\n') {
      return Err(ErrorCode::kParseError, "snapshot: truncated blob");
    }
    std::string_view blob = text.substr(pos, n);
    pos += n + 1;
    return blob;
  }
};

// "a b c rest of line" -> pops space-separated fields from the front.
Result<std::string_view> PopField(std::string_view& line) {
  if (line.empty()) {
    return Err(ErrorCode::kParseError, "snapshot: missing field");
  }
  size_t space = line.find(' ');
  std::string_view field = line.substr(0, space);
  line = space == std::string_view::npos ? std::string_view() : line.substr(space + 1);
  return field;
}

Result<uint64_t> PopNumber(std::string_view& line) {
  OMOS_TRY(std::string_view field, PopField(line));
  return ParseU64(field);
}

}  // namespace

std::string OmosServer::Snapshot() const {
  std::string out(kSnapshotMagic);
  out.push_back('\n');
  for (const auto& [path, entry] : namespace_.SnapshotEntries()) {
    if (entry->kind == EntryKind::kFragment) {
      std::string hex = HexEncode(EncodeObject(*entry->fragment));
      out += StrCat("frag ", hex.size(), " ", path, "\n", hex, "\n");
    } else {
      out += StrCat("meta ", entry->kind == EntryKind::kLibrary ? 1 : 0, " ",
                    entry->blueprint_text.size(), " ", path, "\n", entry->blueprint_text, "\n");
    }
  }
  {
    std::lock_guard<std::mutex> lock(monitor_mu_);
    for (const auto& [path, order] : preferred_order_) {
      out += StrCat("order ", order.size(), " ", path, "\n");
      for (const std::string& name : order) {
        out += name;
        out.push_back('\n');
      }
    }
  }
  std::vector<PlacementRecord> placements;
  uint64_t layout_generation = 1;
  {
    std::lock_guard<std::mutex> lock(solver_mu_);
    placements = solver_.ExportPlacements();
    layout_generation = solver_.layout_generation();
  }
  // Before the place lines: Restore() must resume the generation counter
  // before adoptions stamp placements with it.
  out += StrCat("layoutgen ", layout_generation, "\n");
  for (const PlacementRecord& record : placements) {
    out += StrCat("place ", record.placement.text_base, " ", record.text_size, " ",
                  record.placement.data_base, " ", record.data_size, " ", record.object, "\n");
  }
  // After the place lines: Restore() re-stamps each prelink row against the
  // adopted placements, so a restarted server execs warm immediately.
  {
    std::lock_guard<std::mutex> lock(prelink_mu_);
    for (const auto& [path, entry] : prelink_) {
      out += StrCat("prelink ", path, " ", entry.cache_key, "\n");
    }
  }
  out += StrCat("check ", Hex64(Fnv1a(out)), "\n");
  return out;
}

Result<void> OmosServer::Restore(std::string_view snapshot) {
  // Serialize against concurrent Define*/Restore; per-structure locks below
  // keep readers (Lookup, HasPreferredOrder) safe while we repopulate.
  std::lock_guard<std::mutex> admin_lock(admin_mu_);
  BumpNamespaceGeneration();
  // Integrity first: the trailing check line must hash everything before it.
  size_t check_at = snapshot.rfind("check ");
  if (check_at == std::string_view::npos || check_at == 0 || snapshot[check_at - 1] != '\n') {
    return Err(ErrorCode::kCorrupted, "snapshot: missing check line");
  }
  std::string_view check_line = snapshot.substr(check_at);
  std::string_view digest = StripWhitespace(check_line.substr(6));
  if (digest != Hex64(Fnv1a(snapshot.substr(0, check_at)))) {
    return Err(ErrorCode::kCorrupted, "snapshot: checksum mismatch");
  }

  SnapshotCursor cursor{snapshot.substr(0, check_at), 0};
  OMOS_TRY(std::string_view magic, cursor.Line());
  if (magic != kSnapshotMagic) {
    return Err(ErrorCode::kParseError, StrCat("snapshot: bad magic '", magic, "'"));
  }
  while (!cursor.AtEnd()) {
    OMOS_TRY(std::string_view line, cursor.Line());
    OMOS_TRY(std::string_view tag, PopField(line));
    if (tag == "meta") {
      OMOS_TRY(uint64_t kind, PopNumber(line));
      OMOS_TRY(uint64_t len, PopNumber(line));
      OMOS_TRY(std::string_view blueprint, cursor.Blob(len));
      OMOS_TRY_VOID(namespace_.DefineMeta(
          line, blueprint, kind == 1 ? EntryKind::kLibrary : EntryKind::kMeta));
    } else if (tag == "frag") {
      OMOS_TRY(uint64_t len, PopNumber(line));
      OMOS_TRY(std::string_view hex, cursor.Blob(len));
      OMOS_TRY(std::vector<uint8_t> bytes, HexDecode(hex));
      OMOS_TRY(ObjectFile object, DecodeObject(bytes));
      OMOS_TRY_VOID(namespace_.AddFragment(line, std::move(object)));
    } else if (tag == "order") {
      OMOS_TRY(uint64_t count, PopNumber(line));
      std::vector<std::string> order;
      order.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        OMOS_TRY(std::string_view name, cursor.Line());
        order.emplace_back(name);
      }
      std::lock_guard<std::mutex> lock(monitor_mu_);
      preferred_order_[OmosNamespace::Normalize(line)] = std::move(order);
    } else if (tag == "layoutgen") {
      OMOS_TRY(uint64_t generation, PopNumber(line));
      std::lock_guard<std::mutex> lock(solver_mu_);
      solver_.set_layout_generation(generation);
    } else if (tag == "place") {
      PlacementRecord record;
      OMOS_TRY(uint64_t text_base, PopNumber(line));
      OMOS_TRY(uint64_t text_size, PopNumber(line));
      OMOS_TRY(uint64_t data_base, PopNumber(line));
      OMOS_TRY(uint64_t data_size, PopNumber(line));
      record.placement.text_base = static_cast<uint32_t>(text_base);
      record.placement.data_base = static_cast<uint32_t>(data_base);
      record.text_size = static_cast<uint32_t>(text_size);
      record.data_size = static_cast<uint32_t>(data_size);
      record.object = std::string(line);
      std::lock_guard<std::mutex> lock(solver_mu_);
      OMOS_TRY_VOID(solver_.AdoptPlacement(record));
    } else if (tag == "prelink") {
      OMOS_TRY(std::string_view path, PopField(line));
      std::string cache_key(line);
      if (cache_key.empty()) {
        return Err(ErrorCode::kParseError, "snapshot: prelink row without cache key");
      }
      // Stamp against the placements adopted above (not the pre-crash
      // stamp): the entry is exec-valid exactly while the restored solver
      // still reports this generation for the key.
      uint64_t stamp;
      {
        std::lock_guard<std::mutex> lock(solver_mu_);
        stamp = solver_.GenerationOf(cache_key);
      }
      {
        std::lock_guard<std::mutex> lock(prelink_mu_);
        prelink_[std::string(path)] = PrelinkEntry{std::move(cache_key), stamp};
      }
      EnablePrelink();
    } else {
      return Err(ErrorCode::kParseError, StrCat("snapshot: unknown record '", tag, "'"));
    }
  }
  return OkResult();
}

// ---- Administration -----------------------------------------------------------

int OmosServer::OptimizePlacements() {
  int evicted = 0;
  {
    std::lock_guard<std::mutex> admin_lock(admin_mu_);
    // Cached client replies carry segment addresses; a re-pack moves them.
    BumpNamespaceGeneration();
    std::vector<std::string> changed;
    {
      std::lock_guard<std::mutex> lock(solver_mu_);
      changed = solver_.OptimizePlacements();
    }
    for (const std::string& key : changed) {
      if (cache_.Contains(key)) {
        cache_.Evict(key);
        ++evicted;
      }
    }
    // Any image that depended on a moved library is stale too.
    ImageCache::ReadLease lease(cache_);  // keeps Peek pointers valid across Evict
    for (const std::string& moved : changed) {
      for (const std::string& key : cache_.Keys()) {
        const CachedImage* image = cache_.Peek(key);
        if (image == nullptr) {
          continue;
        }
        for (const LibDep& dep : image->deps) {
          if (dep.cache_key == moved) {
            cache_.Evict(key);
            ++evicted;
            break;
          }
        }
      }
    }
  }
  // Outside admin_mu_ (the repair re-enters Instantiate): re-link prelinked
  // images at the re-packed layout and re-stamp their table entries, so an
  // administrative re-pack doesn't leave the whole prelink table stale.
  if (prelink_enabled()) {
    RunPrelinkRepair();
  }
  return evicted;
}

Result<std::vector<ImageSymbol>> OmosServer::SymbolsForTask(TaskId id) const {
  std::string program_key;
  std::set<std::string> mapped_libs;
  {
    std::lock_guard<std::mutex> lock(runtimes_mu_);
    auto it = runtimes_.find(id);
    if (it == runtimes_.end()) {
      return Err(ErrorCode::kNotFound, StrCat("no OMOS runtime state for task ", id));
    }
    program_key = it->second.program_key;
    mapped_libs = it->second.mapped_libs;
  }
  ImageCache::ReadLease lease(cache_);  // keeps Peek pointers valid while we copy
  std::vector<ImageSymbol> symbols;
  auto append = [&](const std::string& key) {
    const CachedImage* image = cache_.Peek(key);
    if (image != nullptr) {
      symbols.insert(symbols.end(), image->image.symbols.begin(), image->image.symbols.end());
    }
  };
  append(program_key);
  const CachedImage* program = cache_.Peek(program_key);
  if (program != nullptr) {
    for (const LibDep& dep : program->deps) {
      append(dep.cache_key);
    }
  }
  for (const std::string& lib_key : mapped_libs) {
    append(lib_key);
  }
  return symbols;
}

Result<std::string> OmosServer::ProfileForTask(TaskId id) const {
  std::vector<CycleProfiler::Sample> samples = CycleProfiler::Samples();

  // Which tasks to attribute: the requested one, or every task with runtime
  // state when id == 0 (the flat, cross-task profile).
  std::vector<TaskId> ids;
  {
    std::lock_guard<std::mutex> lock(runtimes_mu_);
    if (id != 0) {
      if (runtimes_.find(id) == runtimes_.end()) {
        return Err(ErrorCode::kNotFound, StrCat("no OMOS runtime state for task ", id));
      }
      ids.push_back(id);
    } else {
      for (const auto& [task_id, runtime] : runtimes_) {
        (void)runtime;
        ids.push_back(task_id);
      }
    }
  }

  std::string out;
  for (TaskId task_id : ids) {
    std::string program_key;
    std::set<std::string> mapped_libs;
    {
      std::lock_guard<std::mutex> lock(runtimes_mu_);
      auto it = runtimes_.find(task_id);
      if (it == runtimes_.end()) {
        continue;  // released since we listed it
      }
      program_key = it->second.program_key;
      mapped_libs = it->second.mapped_libs;
    }

    // Address-sorted text symbols across the task's program + library images,
    // each tagged with the image it came from (the per-image dimension).
    struct Row {
      uint32_t addr;
      uint32_t size;
      const std::string* name;
      const std::string* image;
    };
    ImageCache::ReadLease lease(cache_);  // keeps Peek pointers valid
    std::set<std::string> keys{program_key};
    const CachedImage* program = cache_.Peek(program_key);
    if (program != nullptr) {
      for (const LibDep& dep : program->deps) {
        keys.insert(dep.cache_key);
      }
    }
    for (const std::string& lib_key : mapped_libs) {
      keys.insert(lib_key);
    }
    std::vector<Row> rows;
    for (const std::string& image_key : keys) {
      const CachedImage* image = cache_.Peek(image_key);
      if (image == nullptr) {
        continue;
      }
      for (const ImageSymbol& sym : image->image.symbols) {
        if (sym.section == SectionKind::kText) {
          rows.push_back(Row{sym.addr, sym.size, &sym.name, &image->image.name});
        }
      }
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.addr < b.addr; });

    // Resolve each of this task's samples to the covering symbol: greatest
    // addr <= pc, respecting the symbol size when it has one.
    auto resolve = [&](uint32_t pc) -> const Row* {
      auto it = std::upper_bound(rows.begin(), rows.end(), pc,
                                 [](uint32_t value, const Row& row) { return value < row.addr; });
      if (it == rows.begin()) {
        return nullptr;
      }
      --it;
      if (it->size != 0 && pc >= it->addr + it->size) {
        return nullptr;
      }
      return &*it;
    };

    uint64_t task_samples = 0;
    uint64_t unresolved = 0;
    std::map<std::pair<std::string, std::string>, uint64_t> by_symbol;  // (sym, image) -> n
    std::map<std::string, uint64_t> by_image;
    for (const CycleProfiler::Sample& sample : samples) {
      if (sample.task_id != task_id) {
        continue;
      }
      ++task_samples;
      const Row* row = resolve(sample.pc);
      if (row == nullptr) {
        ++unresolved;
        continue;
      }
      ++by_symbol[{*row->name, *row->image}];
      ++by_image[*row->image];
    }

    out += StrCat("profile task=", task_id, " samples=", task_samples, "\n");
    std::vector<std::pair<std::pair<std::string, std::string>, uint64_t>> flat(
        by_symbol.begin(), by_symbol.end());
    std::sort(flat.begin(), flat.end(), [](const auto& a, const auto& b) {
      return a.second != b.second ? a.second > b.second : a.first < b.first;
    });
    for (const auto& [key, count] : flat) {
      uint64_t pct = task_samples == 0 ? 0 : count * 100 / task_samples;
      out += StrCat("  ", count, " ", pct, "% ", key.first, " (", key.second, ")\n");
    }
    if (unresolved > 0) {
      out += StrCat("  ", unresolved, " ", task_samples == 0 ? 0 : unresolved * 100 / task_samples,
                    "% [unresolved]\n");
    }
    for (const auto& [image, count] : by_image) {
      out += StrCat("image ", image, " samples=", count, "\n");
    }
  }
  if (out.empty()) {
    out = "profile: no samples\n";
  }
  return out;
}

// ---- IPC --------------------------------------------------------------------

Channel OmosServer::MakeChannel() { return MakeChannel(exec_transport()); }

Channel OmosServer::MakeChannel(ExecTransport transport) {
  ServeFn serve = [this](const std::vector<uint8_t>& bytes) { return ServeMessage(bytes); };
  const CostModel& costs = kernel_->costs();
  switch (transport) {
    case ExecTransport::kStream:
      // SysV-message shape: queue round trip plus per-byte framing.
      return Channel(MakeStreamTransport(std::move(serve), costs.ipc_round_trip, 2));
    case ExecTransport::kRing: {
      RingConfig config;
      config.handoff_cost = costs.ring_handoff;
      config.slot_cost = costs.ring_slot;
      ServeFn fallback_serve = [this](const std::vector<uint8_t>& bytes) {
        return ServeMessage(bytes);
      };
      Channel channel(MakeRingTransport(std::move(serve), config));
      // A ring whose checksums keep failing (damaged shared mapping) demotes
      // to the plain stream so clients stay reachable, just slower. After a
      // quiet period of 8 clean stream exchanges the channel probes the ring
      // again and re-promotes if the damage has cleared (remapped ring).
      channel.ArmFallbackTransport(
          MakeStreamTransport(std::move(fallback_serve), costs.ipc_round_trip, 2),
          /*threshold=*/3, /*repromote_after=*/8);
      return channel;
    }
    case ExecTransport::kPort:
      break;
  }
  return Channel(std::move(serve), costs.ipc_round_trip);
}

namespace {

const char* OpName(OmosOp op) {
  switch (op) {
    case OmosOp::kInstantiate:
      return "instantiate";
    case OmosOp::kDefineMeta:
      return "define-meta";
    case OmosOp::kListNamespace:
      return "list-namespace";
    case OmosOp::kDynamicLoad:
      return "dynamic-load";
    case OmosOp::kStats:
      return "stats";
    case OmosOp::kIntrospect:
      return "introspect";
  }
  return "unknown";
}

}  // namespace

OmosReply OmosServer::HandleRequest(const OmosRequest& request) {
  TraceSpan trace("server.request", OpName(request.op));
  // Request-latency histogram + counter; pointers cached after first lookup.
  // Counted on entry so an Introspect snapshot sees its own request.
  static Counter* requests = MetricsRegistry::Global().GetCounter("server.requests");
  static Histogram* request_ns = MetricsRegistry::Global().GetHistogram("server.request_ns");
  requests->Add();
  auto start = std::chrono::steady_clock::now();
  OmosReply reply = HandleRequestImpl(request);
  // Every reply piggybacks the namespace generation so client stub caches
  // learn about redefinitions at their next server contact.
  reply.generation = namespace_generation();
  request_ns->Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           start)
          .count()));
  return reply;
}

OmosReply OmosServer::HandleRequestImpl(const OmosRequest& request) {
  OmosReply reply;
  switch (request.op) {
    case OmosOp::kInstantiate: {
      Task* task;
      {
        std::lock_guard<std::mutex> lock(kernel_mu_);
        task = kernel_->FindTask(request.task_handle);
      }
      if (task == nullptr) {
        reply.error = "bad task handle";
        return reply;
      }
      Specialization spec = Specialization::FromKeyString(request.specialization);
      ImageCache::ReadLease lease(cache_);  // pins *image across MapProgram
      uint64_t work = 0;
      auto image = Instantiate(request.path, spec, &work);
      if (!image.ok()) {
        reply.error = image.error().ToString();
        return reply;
      }
      {
        std::lock_guard<std::mutex> lock(kernel_mu_);
        task->BillSys(work + kernel_->costs().omos_cache_lookup);
      }
      auto entry = MapProgram(*task, **image);
      if (!entry.ok()) {
        reply.error = entry.error().ToString();
        return reply;
      }
      reply.ok = true;
      reply.entry = *entry;
      std::lock_guard<std::mutex> lock(kernel_mu_);
      for (const auto& region : task->space().Regions()) {
        reply.segments.push_back(SegmentDesc{region.base, region.size, region.prot, region.name});
      }
      return reply;
    }
    case OmosOp::kDefineMeta: {
      // The blueprint text travels in the `specialization` field.
      auto status = DefineMeta(request.path, request.specialization);
      if (!status.ok()) {
        reply.error = status.error().ToString();
        return reply;
      }
      reply.ok = true;
      return reply;
    }
    case OmosOp::kListNamespace:
      reply.ok = true;
      reply.names = ListNamespace(request.path);
      return reply;
    case OmosOp::kDynamicLoad: {
      Task* task;
      {
        std::lock_guard<std::mutex> lock(kernel_mu_);
        task = kernel_->FindTask(request.task_handle);
      }
      if (task == nullptr) {
        reply.error = "bad task handle";
        return reply;
      }
      auto result = DynamicLoad(*task, request.path, request.symbols);
      if (!result.ok()) {
        reply.error = result.error().ToString();
        return reply;
      }
      reply.ok = true;
      reply.entry = result->text_base;
      reply.symbol_values = result->symbol_values;
      return reply;
    }
    case OmosOp::kStats:
      reply.ok = true;
      reply.stat_hits = cache_.stats().hits;
      reply.stat_misses = cache_.stats().misses;
      return reply;
    case OmosOp::kIntrospect:
      return HandleIntrospect(request);
  }
  reply.error = "unknown op";
  return reply;
}

OmosReply OmosServer::HandleIntrospect(const OmosRequest& request) {
  OmosReply reply;
  const std::string& cmd = request.path;
  if (cmd == "stats") {
    reply.ok = true;
    reply.metrics = MetricsRegistry::Global().Snapshot();
    reply.stat_hits = cache_.stats().hits;
    reply.stat_misses = cache_.stats().misses;
    return reply;
  }
  if (cmd == "stats-text") {
    reply.ok = true;
    reply.payload = MetricsRegistry::Global().TextSummary();
    return reply;
  }
  if (cmd == "trace") {
    reply.ok = true;
    reply.payload = TraceToChromeJson();
    return reply;
  }
  if (cmd == "trace-summary") {
    reply.ok = true;
    reply.payload = TraceTextSummary();
    return reply;
  }
  if (cmd == "trace-start") {
    TraceSetEnabled(true);
    reply.ok = true;
    return reply;
  }
  if (cmd == "trace-stop") {
    TraceSetEnabled(false);
    reply.ok = true;
    return reply;
  }
  if (cmd == "trace-clear") {
    TraceClear();
    reply.ok = true;
    return reply;
  }
  if (cmd == "profile-start") {
    // task_handle doubles as the sampling period here (0 = default).
    CycleProfiler::Clear();
    CycleProfiler::Start(request.task_handle == 0 ? 64 : request.task_handle);
    reply.ok = true;
    return reply;
  }
  if (cmd == "profile-stop") {
    CycleProfiler::Stop();
    reply.ok = true;
    return reply;
  }
  if (cmd == "profile") {
    auto profile = ProfileForTask(request.task_handle);
    if (!profile.ok()) {
      reply.error = profile.error().ToString();
      return reply;
    }
    reply.ok = true;
    reply.payload = *profile;
    return reply;
  }
  if (cmd == "placements") {
    // The global layout as the solver sees it: generation, one line per
    // placed object (with its stamp), then the outstanding conflict log.
    reply.ok = true;
    std::string out;
    std::lock_guard<std::mutex> lock(solver_mu_);
    out = StrCat("layout generation ", solver_.layout_generation(), "\n");
    for (const PlacementRecord& record : solver_.ExportPlacements()) {
      out += StrCat("place T=", Hex32(record.placement.text_base),
                    " D=", Hex32(record.placement.data_base),
                    " gen=", record.placement.generation, " ", record.object, "\n");
    }
    for (const ConflictRecord& conflict : solver_.conflicts()) {
      out += StrCat("conflict ", conflict.object, " wanted=", Hex32(conflict.wanted),
                    " got=", Hex32(conflict.got), " holder=", conflict.holder, "\n");
    }
    reply.payload = out;
    return reply;
  }
  if (StartsWith(cmd, "upgrade ")) {
    // "upgrade <libpath>" with the new blueprint in request.specialization:
    // kick off a live upgrade (docs/upgrade.md). The reply returns the
    // upgrade id; progress is polled via "upgrade-status".
    std::string target = cmd.substr(std::string_view("upgrade ").size());
    auto begun = BeginUpgrade(target, request.specialization);
    if (!begun.ok()) {
      reply.error = begun.error().ToString();
      return reply;
    }
    reply.ok = true;
    reply.payload = StrCat("upgrade ", *begun, " of ", target, " started\n");
    return reply;
  }
  if (cmd == "upgrade-status") {
    UpgradeStatus status = UpgradeStatusNow();
    reply.ok = true;
    if (status.id == 0) {
      reply.payload = "no upgrade\n";
    } else {
      reply.payload = StrCat("upgrade ", status.id, " ", status.path, ": ",
                             UpgradePhaseName(status.phase), ", ", status.tasks_pending,
                             " task(s) pending",
                             status.error.empty() ? "" : StrCat(" (", status.error, ")"), "\n");
    }
    return reply;
  }
  reply.error = StrCat("unknown introspect subcommand: ", cmd);
  return reply;
}

std::vector<uint8_t> OmosServer::ServeMessage(const std::vector<uint8_t>& request_bytes) {
  if (IsBatchRequest(request_bytes)) {
    return ServeBatch(request_bytes);
  }
  auto request = DecodeRequest(request_bytes);
  OmosReply reply;
  if (!request.ok()) {
    reply.error = request.error().ToString();
    reply.generation = namespace_generation();
  } else {
    reply = HandleRequest(*request);
  }
  return EncodeReply(reply);
}

std::vector<uint8_t> OmosServer::ServeBatch(const std::vector<uint8_t>& request_bytes) {
  static Counter* batches = MetricsRegistry::Global().GetCounter("server.batches");
  static Counter* batched = MetricsRegistry::Global().GetCounter("server.batched_requests");
  auto requests = DecodeRequestBatch(request_bytes);
  if (!requests.ok()) {
    // The whole envelope is unreadable; a single error reply tells the
    // client to retry (framing damage is retryable).
    OmosReply reply;
    reply.error = requests.error().ToString();
    reply.generation = namespace_generation();
    return EncodeReply(reply);
  }
  batches->Add();
  batched->Add(requests->size());
  TraceSpan trace("server.batch", StrCat(requests->size(), " requests"));
  std::vector<OmosReply> replies(requests->size());
  // Members are independent; fan out on the request pool. A member that
  // fails produces an ok=false reply in its slot and nothing else.
  ThreadPool::Global().ParallelFor(requests->size(), /*grain=*/1,
                                   [&](size_t begin, size_t end) {
                                     for (size_t i = begin; i < end; ++i) {
                                       replies[i] = HandleRequest((*requests)[i]);
                                     }
                                   });
  return EncodeReplyBatch(replies);
}

void OmosServer::ServeAsync(std::vector<uint8_t> request_bytes,
                            std::function<void(std::vector<uint8_t>)> done) {
  ThreadPool::Global().Submit(
      [this, bytes = std::move(request_bytes), done = std::move(done)]() mutable {
        done(ServeMessage(bytes));
      });
}

}  // namespace omos
