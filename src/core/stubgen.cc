#include "src/core/stubgen.h"

#include <sstream>

#include "src/os/kernel.h"
#include "src/support/strings.h"
#include "src/vasm/assembler.h"

namespace omos {

Result<StubFragment> GenerateLazyStubs(const std::string& lib_path,
                                       const std::vector<std::string>& functions,
                                       uint32_t first_slot_index) {
  std::ostringstream text;
  std::ostringstream data;
  StubFragment out;
  text << ".text\n";
  data << ".data\n.align 4\n";
  uint32_t index = first_slot_index;
  for (const std::string& fn : functions) {
    std::string slot = StrCat("__slot_", index);
    std::string lazy = StrCat("__lazy_", index);
    text << ".global " << fn << "\n"
         << fn << ":\n"
         << "  ldpc r12, " << slot << "\n"
         << "  jmpr r12\n"
         << lazy << ":\n"
         << "  movi r12, " << index << "\n"
         << "  sys " << kSysDload << "\n";
    data << ".global " << slot << "\n" << slot << ": .word " << lazy << "\n";
    out.slots.push_back(StubSlot{index, slot, lib_path, fn});
    ++index;
  }
  std::string source = text.str() + data.str();
  OMOS_TRY(out.object, Assemble(source, StrCat("stubs:", lib_path)));
  return out;
}

Result<ObjectFile> GenerateMonitorWrappers(const std::vector<std::string>& functions,
                                           uint32_t first_index) {
  std::ostringstream text;
  text << ".text\n";
  uint32_t index = first_index;
  for (const std::string& fn : functions) {
    text << ".global " << fn << "\n"
         << fn << ":\n"
         << "  movi r12, " << index << "\n"
         << "  sys " << kSysMonLog << "\n"
         << "  jmp __mon_" << fn << "\n";
    ++index;
  }
  return Assemble(text.str(), "monitor-wrappers");
}

}  // namespace omos
