// OmosServer — the persistent object/meta-object server (§3).
//
// The server owns: the hierarchical namespace of meta-objects and fragments,
// the blueprint evaluator (m-graph execution), the address-constraint
// solver, and the image cache. Program loading is a special case of class
// instantiation: clients ask for a meta-object by name (plus an optional
// specialization) and get back mapped segments and an entry point.
//
// Exec paths (§5):
//  * BootstrapExec   — models `#! /bin/omos`: a tiny bootstrap program plus
//                      one IPC round trip to the server.
//  * IntegratedExec  — OMOS wired into the kernel's exec(): no bootstrap
//                      load, no IPC round trip (the OSF/1 configuration that
//                      wins by 56% in Table 1).
// Both end with the server mapping cached segments into the task.
#ifndef OMOS_SRC_CORE_SERVER_H_
#define OMOS_SRC_CORE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/cache.h"
#include "src/core/constraints.h"
#include "src/core/namespace.h"
#include "src/core/sexpr.h"
#include "src/ipc/channel.h"
#include "src/ipc/message.h"
#include "src/linker/link.h"
#include "src/linker/module.h"
#include "src/objfmt/archive.h"
#include "src/os/kernel.h"
#include "src/os/loader.h"
#include "src/store/image_store.h"
#include "src/support/result.h"
#include "src/upgrade/upgrade.h"

namespace omos {

// How an instantiation is specialized (§3.4). Well-known names:
//   ""                  — meta-object default (self-contained)
//   "lib-constrained"   — fixed-address self-contained library (§4.1)
//   "lib-dynamic"       — partial-image client stubs (§4.2)
//   "lib-dynamic-impl"  — the demand-loaded library implementation (§4.2)
//   "monitor"           — interpose call-logging wrappers (§4.1, §6)
//   "reorder"           — lay out routines by recorded usage (§4.1)
struct Specialization {
  std::string name;
  PlacementHints hints;

  // Stable string form used in cache keys and IPC ("lib-constrained;T=0x...").
  std::string ToKeyString() const;
  static Specialization FromKeyString(std::string_view text);
};

struct OmosServerConfig {
  SolverArenas arenas;
  uint64_t cache_capacity_bytes = 256ull << 20;
  // Extra user cycles modelling the bootstrap program's own execution.
  uint64_t bootstrap_user_cycles = 300;
  // Copy initialized data eagerly at exec instead of mapping it CoW against
  // the cached master (the pre-CoW behavior; kept for A/B benchmarking).
  bool eager_data_copy = false;
};

// Concurrency model (PR 3): many worker threads may call Instantiate /
// GetOrRebuild / ServeMessage / the exec paths at once. The cache and the
// namespace synchronize themselves; the server's own state is guarded by a
// strict lock hierarchy (acquire downward only, release before recursing
// into Instantiate):
//
//   admin_mu_    — serializes administrative writers (Define*, AddFragment,
//                  Restore, OptimizePlacements) against each other
//   monitor_mu_  — monitor_names_ / monitor_counts_ / preferred_order_
//   solver_mu_   — every ConstraintSolver call
//   upgrade_mu_  — the live-upgrade job (phase, pending tasks, plan)
//   runtimes_mu_ — runtimes_ (per-task stub/dyn state)
//   kernel_mu_   — kernel and task mutation (CreateTask, mapping, billing,
//                  SimFs writes); never held across a build
//
// Cache misses are single-flight: concurrent Instantiates of one key elect
// a leader via ImageCache::JoinBuild and everyone shares its image. Callers
// that use a returned CachedImage* concurrently with possible eviction
// (redefinition under load) must hold an ImageCache::ReadLease across the
// call and every use of the pointer; the request paths below do.
//
// `solver()`, `cache()` and `conflicts()` hand out raw references for tests
// and tools — use them only while no worker threads are in flight.
class OmosServer {
 public:
  using Config = OmosServerConfig;

  OmosServer(Kernel& kernel, Config config = Config());
  ~OmosServer();

  Kernel& kernel() { return *kernel_; }

  // ---- Namespace administration --------------------------------------------
  // Define or redefine a meta-object. Redefinition invalidates every cached
  // image built from the old blueprint ("a library fix is instantly
  // incorporated into all clients", §2.1): the path's own images and any
  // image that depends on them are evicted, and their address placements
  // released, so the next instantiation rebuilds against the new version.
  Result<void> DefineMeta(std::string_view path, std::string_view blueprint);
  Result<void> DefineLibrary(std::string_view path, std::string_view blueprint);
  Result<void> AddFragment(std::string_view path, ObjectFile object);
  // Registers each member at `<dir>/<member-name>` and a meta-object at
  // `<dir>` merging all of them.
  Result<void> AddArchive(std::string_view dir, const Archive& archive);
  std::vector<std::string> ListNamespace(std::string_view path) const {
    return namespace_.List(path);
  }
  const OmosNamespace& name_space() const { return namespace_; }

  // ---- Instantiation --------------------------------------------------------
  // Instantiate `path` under `spec`. On a cache miss the construction work
  // (parsing, module ops, linking) is performed and its simulated cost is
  // added to `*work_cycles` (may be null). Cache hits add only lookup cost.
  Result<const CachedImage*> Instantiate(const std::string& path, const Specialization& spec,
                                         uint64_t* work_cycles);

  // Evaluate an anonymous blueprint into a Module (library dependencies are
  // resolved self-contained and merged as externals are not possible here,
  // so blueprints passed to this must be closed or rely on merge operands).
  Result<Module> EvaluateBlueprint(std::string_view text, uint64_t* work_cycles = nullptr);

  // ---- Exec paths -----------------------------------------------------------
  Result<TaskId> BootstrapExec(const std::string& path, std::vector<std::string> args,
                               const Specialization& spec = {});
  Result<TaskId> IntegratedExec(const std::string& path, std::vector<std::string> args,
                                const Specialization& spec = {});
  // Fleet-wide prelink exec: the prelink table maps `path` straight to a
  // cache key plus the layout generation its image was linked at. When the
  // stamp still matches the solver, the image maps with zero per-exec
  // relocation for `prelink_lookup` cycles (< omos_cache_lookup — no
  // namespace traversal, no blueprint normalization). A stale stamp falls
  // back to a full Instantiate and queues a background re-link that
  // refreshes the entry through the idle lane. Requires PrelinkNamespace.
  Result<TaskId> PrelinkedExec(const std::string& path, std::vector<std::string> args);
  // `#! /bin/omos <meta-path>` interpreter-style exec from a SimFs file.
  Result<TaskId> ExecFile(const std::string& fs_path, std::vector<std::string> args,
                          bool integrated);

  // §5: "/bin, for example, can become a 'filesystem' backed only by OMOS".
  // Writes a `#!omos <meta>` interpreter file into the kernel's SimFs for
  // every meta-object under `namespace_dir`, so ordinary path-based exec
  // reaches the server. Returns the number of entries exported.
  Result<int> ExportNamespaceToFs(std::string_view namespace_dir, std::string_view fs_dir);

  // Map a cached program image (plus its constrained library deps) into a
  // task, registering lazy-stub state. Returns the entry address.
  Result<uint32_t> MapProgram(Task& task, const CachedImage& program);

  // Drop per-task runtime state (call when a task is destroyed).
  void ReleaseTask(TaskId id);

  // ---- Live upgrade (src/upgrade/, docs/upgrade.md) -------------------------
  // Hot-patch `path` (a lib-dynamic library) to `new_blueprint` without
  // restarting its clients: the new version links in the background (idle
  // lane — no foreground stall), every live task's stub slots are repointed
  // to it, frames still executing old code migrate OSR-style at the next
  // safepoint, and the old version's frames are reclaimed once nothing
  // references them. Constrained (non-lazy) clients pick the new version up
  // at their next Instantiate, exactly like an ordinary redefinition.
  // Returns the upgrade id; kUnavailable while another upgrade is in flight.
  Result<uint64_t> BeginUpgrade(const std::string& path, const std::string& new_blueprint);

  struct UpgradeStatus {
    uint64_t id = 0;
    std::string path;
    UpgradePhase phase = UpgradePhase::kIdle;
    size_t tasks_pending = 0;
    std::string error;
    bool terminal() const {
      return phase == UpgradePhase::kDone || phase == UpgradePhase::kAborted;
    }
  };
  UpgradeStatus UpgradeStatusNow() const;
  // Drive the upgrade as far as it can go from this thread: run queued
  // background work and, when every task has migrated, perform the
  // reclamation. Tasks still running old frames on other threads migrate on
  // their own threads (safepoints); callers poll until terminal().
  UpgradeStatus DrainUpgrade();

  // ---- Dynamic loading (dld-style, §5) --------------------------------------
  struct DynLoadResult {
    uint32_t text_base = 0;
    std::vector<uint32_t> symbol_values;
  };
  Result<DynLoadResult> DynamicLoad(Task& task, const std::string& blueprint_or_path,
                                    const std::vector<std::string>& symbols);

  // Dynamic unlinking (paper §9: dld offers it; "since OMOS retains access
  // to the symbol table and relocation information for loaded modules,
  // unlinking support could be added" — here it is). Unmaps a class
  // previously loaded into `task` by DynamicLoad, identified by the text
  // base DynamicLoad returned. The cached image survives for other tasks.
  Result<void> DynamicUnload(Task& task, uint32_t text_base);

  // ---- Monitoring / reordering (§4.1) ---------------------------------------
  // Call counts recorded for a "monitor"-specialized instantiation of `path`.
  Result<std::vector<std::pair<std::string, uint64_t>>> MonitorCounts(
      const std::string& path) const;
  // Record the preferred routine order for `path` from monitor counts; the
  // "reorder" specialization consumes it.
  Result<void> DerivePreferredOrder(const std::string& path);
  bool HasPreferredOrder(const std::string& path) const;

  // ---- Idle-time background optimization (§4.1) -----------------------------
  // "During idle periods, OMOS may re-link the module using the profile
  // information gathered in monitoring mode." When enabled, the server
  // counts warm hits per cached image; once an image with a recorded
  // routine order (DerivePreferredOrder) reaches `hot_threshold` hits, a
  // low-priority job is queued on the shared pool's background lane — it
  // runs only when no foreground request is waiting. The job re-links the
  // image under the "reorder" specialization and registers an alias; the
  // next Instantiate of the original key atomically swaps to the optimized
  // image. The job also speculatively re-instantiates the hot image's
  // declared library dependencies so they are warm in the cache.
  // Redefinition of the underlying path drops the alias with the images.
  void EnableBackgroundOptimizer(uint64_t hot_threshold = 8);

  // Runs queued idle-time jobs on the caller and waits for any a worker
  // already picked up; returns how many the caller ran. Gives tests (and
  // shutdown) a deterministic "all background work done" point.
  size_t DrainBackgroundWork();

  // ---- Fleet-wide prelink (§4.1 feedback loop) ------------------------------
  // Turn on prelink maintenance: placement conflicts observed during builds
  // trigger a recorded namespace re-solve plus a background re-link of every
  // prelinked image whose home moved (idle lane), so the table converges
  // back to 100% zero-relocation exec without blocking any foreground
  // request.
  void EnablePrelink();
  bool prelink_enabled() const { return prelink_enabled_.load(std::memory_order_relaxed); }
  // Instantiate every meta-object under `prefix` (default spec) and record
  // each in the prelink table with the layout-generation stamp its image
  // was linked at. Returns the number of entries (re)recorded.
  Result<int> PrelinkNamespace(const std::string& prefix);
  // How many prelink entries are currently stamp-valid (their object still
  // sits at the generation the image was linked at). Test/CLI helper.
  size_t PrelinkValidCount() const;

  // ---- Crash / recovery -----------------------------------------------------
  // Serialize the server's durable state — the namespace (blueprints and
  // fragments), preferred routine orders, and the constraint solver's
  // placement assignments — into a self-checking text snapshot. The image
  // cache is deliberately NOT serialized here: a restarted server
  // repopulates it on demand — from the attached ImageStore when one holds
  // a matching record (no re-link), or by rebuilding from the blueprint.
  // Because the placements are restored, both paths produce images
  // byte-identical (same bases, same entry points) to the pre-crash
  // counterparts. Snapshot()/Restore() are the inner codec of the
  // store-backed restart (PersistTo/RestoreFromStore).
  std::string Snapshot() const;
  // Repopulate a (typically fresh) server from Snapshot() output. Damaged
  // snapshots are rejected with kCorrupted before any state is applied.
  Result<void> Restore(std::string_view snapshot);

  // ---- Persistent image store (PR 6) ----------------------------------------
  // Attach an opened ImageStore as the image cache's second tier: cache
  // misses probe the store by (cache key, content fingerprint) and adopt
  // hits without re-linking; successful cold builds are published back.
  // Call at startup, before serving traffic; the store must outlive the
  // server. Pass nullptr to detach.
  void AttachStore(ImageStore* store) { store_ = store; }
  ImageStore* store() const { return store_; }
  // Durably persist Snapshot() into `store` (tmp + fsync + atomic rename).
  Result<void> PersistTo(ImageStore& store);
  // Store-backed restart: load the persisted snapshot out of `store`,
  // Restore() it, and attach the store so instantiations re-use the
  // persisted images. kNotFound when the store holds no snapshot yet.
  Result<void> RestoreFromStore(ImageStore& store);

  // ---- Administration ---------------------------------------------------------
  // Feed recorded placement conflicts back into the constraint system
  // (§4.1, "this could be done fully automatically"): re-pack every known
  // object and evict cached images whose addresses changed so they rebuild
  // at their new homes. Returns the number of images invalidated.
  int OptimizePlacements();

  // Debugger support (§4.1: "we plan to enhance gdb to interface directly
  // with OMOS"): the full symbol table visible in `task` — its program
  // image plus every library image mapped so far.
  Result<std::vector<ImageSymbol>> SymbolsForTask(TaskId id) const;

  // Symbol-level profile of the CycleProfiler samples attributed to `id`
  // (0 = every task with runtime state), resolved through the cached
  // images' symbol indexes. Human-readable text; see docs/observability.md.
  Result<std::string> ProfileForTask(TaskId id) const;

  // ---- IPC ------------------------------------------------------------------
  // Which transport exec-protocol clients (BootstrapExec, MakeChannel)
  // speak. The cost shapes differ by ~20x (docs/perf.md#transports):
  //   kPort   — message queue, flat ipc_round_trip per trip (the default;
  //             the paper's measured configuration)
  //   kStream — byte stream, ipc_round_trip base + per-byte framing
  //   kRing   — doors-style shared-memory ring, ring_handoff + per-slot
  enum class ExecTransport { kPort, kStream, kRing };
  void SetExecTransport(ExecTransport transport) {
    exec_transport_.store(transport, std::memory_order_relaxed);
  }
  ExecTransport exec_transport() const {
    return exec_transport_.load(std::memory_order_relaxed);
  }

  // Monotonic namespace generation: bumped by every mutation that can
  // change what Instantiate returns (Define*, AddFragment/Archive,
  // Restore, OptimizePlacements). Piggybacked on every IPC reply so
  // client-side stub caches invalidate on redefinition.
  uint64_t namespace_generation() const {
    return namespace_generation_.load(std::memory_order_acquire);
  }

  // Handles single-message frames AND batch frames (EncodeRequestBatch):
  // batch members execute in parallel on the shared pool and their replies
  // come back in one frame, so a batch costs its clients one round trip.
  std::vector<uint8_t> ServeMessage(const std::vector<uint8_t>& request_bytes);
  // Request executor: decode + handle + encode on the shared thread pool, so
  // multiple clients' Instantiate/Get calls proceed in parallel. `done` is
  // invoked with the encoded reply on a pool thread (or inline when the
  // pool has no workers). Safe to call from many threads.
  void ServeAsync(std::vector<uint8_t> request_bytes,
                  std::function<void(std::vector<uint8_t>)> done);
  // A client channel bound to this server over exec_transport(), billing
  // that transport's cost shape from the kernel's cost model.
  Channel MakeChannel();
  // Same, with an explicit transport choice (benches compare all three).
  Channel MakeChannel(ExecTransport transport);

  const CacheStats& cache_stats() const { return cache_.stats(); }
  const std::vector<ConflictRecord>& conflicts() const { return solver_.conflicts(); }
  ConstraintSolver& solver() { return solver_; }
  ImageCache& cache() { return cache_; }

 private:
  // A library mention picked up while evaluating a blueprint.
  struct LibraryUse {
    std::string path;
    Specialization spec;
  };
  // The value lattice of blueprint evaluation.
  struct EvalValue {
    std::optional<Module> module;
    std::vector<LibraryUse> libs;
    PlacementHints hints;
  };
  struct BuildTracker {
    uint64_t work = 0;
  };
  struct TaskRuntime {
    struct Slot {
      uint32_t slot_addr = 0;
      std::string lib_path;
      std::string symbol;
    };
    struct DynRegion {
      uint32_t text_base = 0;
      uint32_t data_base = 0;
      bool has_text = false;
      bool has_data = false;
    };
    std::string program_key;
    std::vector<Slot> slots;
    std::set<std::string> mapped_libs;
    std::vector<DynRegion> dyn_loaded;
  };

  Result<EvalValue> Eval(const Sexpr& expr, BuildTracker& tracker, int depth);
  Result<EvalValue> EvalName(const std::string& name, BuildTracker& tracker, int depth);
  Result<Module> RequireModule(EvalValue value, std::string_view op) const;
  static Result<Module> MergeValues(std::vector<EvalValue> values, EvalValue& out,
                                    bool override_mode);

  // Build the full (merged) module for a path, folding its libraries in —
  // used by monitor/reorder monolithic instantiations.
  Result<Module> BuildMonolithicModule(const std::string& path, BuildTracker& tracker);

  Result<const CachedImage*> BuildImage(const std::string& path, const Specialization& spec,
                                        const std::string& key, BuildTracker& tracker);

  // Frame-backed master segments (shared text + CoW data) for a freshly
  // linked or store-adopted image. One copy into phys memory; every client
  // task maps against these masters.
  Result<void> MaterializeSegments(CachedImage& cached);

  // ---- Persistent store plumbing (all no-ops when store_ == nullptr) -------
  // Whether (path, spec) links from deterministic inputs only. Monitor and
  // reorder builds depend on runtime profile state, so they are never
  // stored or adopted.
  static bool StorableSpec(const Specialization& spec);
  // Content fingerprint over everything that goes into the link: the path,
  // the spec string, and the transitive closure of blueprint texts and
  // object-file bytes reachable from the construction expression. Matching
  // fingerprints ⇒ a stored image was linked from identical inputs.
  Result<uint64_t> StoreFingerprint(const std::string& norm, const Specialization& spec) const;
  // Probe the store on a cache miss; on a hit, verify dependency placements,
  // re-reserve the stored bases, materialize segments and insert into the
  // cache. nullptr on miss or any verification failure (caller cold-builds).
  const CachedImage* TryAdoptFromStore(const std::string& norm, const Specialization& spec,
                                       const std::string& key, BuildTracker& tracker);
  // Publish a freshly built image; failures are counted, never fatal.
  void PublishToStore(const std::string& norm, const Specialization& spec,
                      const CachedImage& image, BuildTracker& tracker);

  // Cache lookup that survives eviction and bit-rot: a missing or corrupted
  // entry is transparently rebuilt from its blueprint via the cache key
  // ("<path>§<spec>"). Work cycles for a rebuild accumulate in *work.
  Result<const CachedImage*> GetOrRebuild(const std::string& cache_key, uint64_t* work);

  // Charge linking work for an image build.
  void ChargeLinkWork(const LinkStats& stats, uint32_t symbol_count, BuildTracker& tracker) const;

  // Evict cached images built from `path` (directly or via blueprint
  // references and library dependencies) and release their placements.
  void InvalidateImagesOf(std::string_view path);

  Result<void> HandleDload(Kernel& kernel, Task& task);
  Result<void> HandleMonLog(Kernel& kernel, Task& task);
  Result<void> HandleOmosLoadSys(Kernel& kernel, Task& task);
  Result<void> HandleOmosUnloadSys(Kernel& kernel, Task& task);

  OmosReply HandleRequest(const OmosRequest& request);
  OmosReply HandleRequestImpl(const OmosRequest& request);
  OmosReply HandleIntrospect(const OmosRequest& request);
  // Decode + execute a batch frame: members run in parallel on the shared
  // pool (ParallelFor, caller participates); a bad member yields an
  // ok=false reply in its slot without touching the other N-1.
  std::vector<uint8_t> ServeBatch(const std::vector<uint8_t>& request_bytes);
  void BumpNamespaceGeneration() {
    namespace_generation_.fetch_add(1, std::memory_order_acq_rel);
  }

  // Shared between the server and its queued background jobs, so a job that
  // outlives the server (still parked on the pool's background lane) sees
  // server == nullptr and becomes a no-op. job_mu serializes job execution
  // against server destruction (and jobs against each other — idle-time
  // work has no concurrency claim to make).
  struct OptimizerState {
    std::mutex job_mu;
    OmosServer* server = nullptr;

    std::mutex mu;  // guards everything below
    bool enabled = false;
    uint64_t hot_threshold = 8;
    std::map<std::string, uint64_t> warm_hits;     // original key -> hits
    std::set<std::string> attempted;               // keys already queued
    std::map<std::string, std::string> alias;      // original -> optimized key
  };

  // ---- Live upgrade internals ----------------------------------------------
  // One upgrade in flight at a time. Mutable fields (phase, pending,
  // retry_at, error) are guarded by upgrade_mu_; the immutable plan (keys,
  // transfer map, degradation addresses) is written before the job becomes
  // visible to safepoints and read-only after.
  struct UpgradeJob {
    uint64_t id = 0;
    std::string path;           // normalized library path
    std::string new_blueprint;
    std::string old_impl_key;   // lib-dynamic-impl cache key being replaced
    std::string new_impl_key;   // shadow-path impl key of the new version
    std::string degrade_key;    // degradation-stub image key ("" if none)
    std::shared_ptr<const FrameTransferMap> map;
    std::map<std::string, uint32_t> degrade_addrs;  // deleted symbol -> stub

    UpgradePhase phase = UpgradePhase::kIdle;       // guarded by upgrade_mu_
    std::set<TaskId> pending;                       // guarded by upgrade_mu_
    // Deferral backoff: task -> instructions_retired before the next
    // transfer attempt (a failed attempt scanned the whole stack; don't
    // re-scan every instruction).
    std::map<TaskId, uint64_t> retry_at;            // guarded by upgrade_mu_
    std::string error;                              // guarded by upgrade_mu_
  };

  // Background-link body (idle lane), then the atomic runtime repoint.
  void RunUpgradeLink(std::shared_ptr<UpgradeJob> job);
  void RunUpgradeRepoint(std::shared_ptr<UpgradeJob> job);
  // Safepoint hook body: attempt the OSR frame transfer for `task`.
  Result<void> HandleSafepoint(Kernel& kernel, Task& task);
  Result<void> TryTransferTask(Kernel& kernel, Task& task,
                               const std::shared_ptr<UpgradeJob>& job);
  // Reclaim the old version (evict + release placements) once no task
  // references it; retried by DrainUpgrade when killed by fault injection.
  void RunUpgradeReclaim(std::shared_ptr<UpgradeJob> job);
  void AbortUpgrade(const std::shared_ptr<UpgradeJob>& job, std::string why);
  // Old-impl-key -> new-impl-key redirect while an upgrade is repointing, so
  // tasks exec'd mid-roll resolve their lazy slots against the new version.
  std::string RedirectLibKey(const std::string& key) const;
  // Degradation-stub binding for `symbol` of `impl_key`, or 0.
  uint32_t DegradeBindingFor(const std::string& impl_key, const std::string& symbol,
                             std::string* degrade_key) const;
  void ScheduleUpgradeReclaim(const std::shared_ptr<UpgradeJob>& job);

  // One prelink-table row: the cache key `path` resolves to, plus the
  // layout generation the cached image's relocations were applied at. The
  // entry is exec-valid while the solver still reports `stamp` for the key.
  struct PrelinkEntry {
    std::string cache_key;
    uint64_t stamp = 0;
  };

  // Record/refresh `path`'s prelink entry from the current cache + solver
  // state. Called after a successful Instantiate of a prelinked path.
  void RecordPrelinkEntry(const std::string& path, const std::string& cache_key);
  // Queue the conflict-repair job on the idle lane (at most one in flight):
  // SolveNamespace under solver_mu_, evict moved images + dependents, then
  // re-instantiate every prelinked path so its entry is stamp-valid again.
  void SchedulePrelinkRepair();
  // Body of the repair job; also the synchronous core of OptimizePlacements'
  // prelink refresh.
  void RunPrelinkRepair();

  // Warm-hit bookkeeping for `key` (path `norm`, default spec only); queues
  // an optimization job at the hot threshold.
  void NoteWarmHit(const std::string& key, const std::string& norm, const Specialization& spec);
  // The optimized image to serve instead of `key`, or nullptr. Drops the
  // alias if the optimized image fell out of the cache.
  const CachedImage* OptimizedAlias(const std::string& key);
  // Body of one background job: reorder-relink `norm` and alias it to
  // `key`; speculatively re-instantiate the image's library deps.
  void RunOptimizeJob(const std::string& key, const std::string& norm);

  Kernel* kernel_;
  Config config_;
  OmosNamespace namespace_;   // internally synchronized
  ImageCache cache_;          // internally synchronized
  // Second cache tier; set at startup (AttachStore/RestoreFromStore), read
  // on miss paths. Not owned.
  ImageStore* store_ = nullptr;

  // Lock hierarchy (see class comment): acquire strictly downward, never
  // hold any of these across a recursive Instantiate or a cache call that
  // can build (JoinBuild leadership is not a lock).
  mutable std::mutex admin_mu_;
  mutable std::mutex monitor_mu_;
  mutable std::mutex solver_mu_;
  mutable std::mutex upgrade_mu_;
  mutable std::mutex runtimes_mu_;
  mutable std::mutex kernel_mu_;

  ConstraintSolver solver_;             // guarded by solver_mu_
  std::map<TaskId, TaskRuntime> runtimes_;  // guarded by runtimes_mu_
  // Monitoring: program path -> function names (slot order) and counts.
  // All three guarded by monitor_mu_.
  std::map<std::string, std::vector<std::string>> monitor_names_;
  std::map<std::string, std::vector<uint64_t>> monitor_counts_;
  std::map<std::string, std::vector<std::string>> preferred_order_;

  std::shared_ptr<OptimizerState> optimizer_ = std::make_shared<OptimizerState>();

  // Live upgrade: at most one job; the pointer itself is guarded by
  // upgrade_mu_ (safepoints copy the shared_ptr out under the lock).
  std::shared_ptr<UpgradeJob> upgrade_job_;  // guarded by upgrade_mu_
  uint64_t upgrade_counter_ = 0;             // guarded by upgrade_mu_

  // Prelink table: path -> entry. prelink_mu_ is a LEAF lock — acquired on
  // its own, never while holding (or before taking) any lock above; the
  // exec path reads the entry, drops the lock, then consults the solver.
  mutable std::mutex prelink_mu_;
  std::map<std::string, PrelinkEntry> prelink_;         // guarded by prelink_mu_
  bool prelink_repair_queued_ = false;                  // guarded by prelink_mu_
  std::atomic<bool> prelink_enabled_{false};

  // See namespace_generation(); starts at 1 so "0" is always stale.
  std::atomic<uint64_t> namespace_generation_{1};
  std::atomic<ExecTransport> exec_transport_{ExecTransport::kPort};
};

}  // namespace omos

#endif  // OMOS_SRC_CORE_SERVER_H_
