#include "src/core/namespace.h"

#include <algorithm>

#include "src/support/strings.h"

namespace omos {

std::string OmosNamespace::Normalize(std::string_view path) {
  std::string out = "/";
  for (const std::string& part : SplitString(path, '/')) {
    if (part.empty()) {
      continue;
    }
    if (out.back() != '/') {
      out.push_back('/');
    }
    out += part;
  }
  return out;
}

Result<void> OmosNamespace::DefineMeta(std::string_view path, std::string_view blueprint,
                                       EntryKind kind) {
  OMOS_TRY(std::vector<Sexpr> exprs, ParseSexprs(blueprint));
  NamespaceEntry entry;
  entry.kind = kind;
  entry.blueprint_text = std::string(blueprint);

  std::vector<Sexpr> construction;
  for (Sexpr& expr : exprs) {
    if (expr.kind == Sexpr::Kind::kList && !expr.children.empty() &&
        expr.children[0].kind == Sexpr::Kind::kSymbol) {
      const std::string& head = expr.children[0].atom;
      if (head == "constraint-list") {
        // (constraint-list "T" 0x100000 "D" 0x40200000)
        for (size_t i = 1; i + 1 < expr.children.size(); i += 2) {
          if (expr.children[i].atom == "T") {
            entry.hints.text_base = static_cast<uint32_t>(expr.children[i + 1].number);
          } else if (expr.children[i].atom == "D") {
            entry.hints.data_base = static_cast<uint32_t>(expr.children[i + 1].number);
          } else {
            return Err(ErrorCode::kParseError,
                       StrCat(path, ": constraint-list key must be \"T\" or \"D\""));
          }
        }
        entry.kind = EntryKind::kLibrary;
        continue;
      }
      if (head == "default-specialization") {
        if (expr.children.size() != 2 || expr.children[1].kind != Sexpr::Kind::kString) {
          return Err(ErrorCode::kParseError,
                     StrCat(path, ": default-specialization takes one string"));
        }
        entry.default_spec = expr.children[1].atom;
        entry.kind = EntryKind::kLibrary;
        continue;
      }
    }
    construction.push_back(std::move(expr));
  }
  if (construction.size() != 1) {
    return Err(ErrorCode::kParseError,
               StrCat(path, ": expected exactly one construction expression, got ",
                      construction.size()));
  }
  entry.construction = std::move(construction[0]);
  return Publish(Normalize(path), std::move(entry));
}

Result<void> OmosNamespace::AddFragment(std::string_view path, ObjectFile object) {
  OMOS_TRY_VOID(object.Validate());
  NamespaceEntry entry;
  entry.kind = EntryKind::kFragment;
  entry.fragment = std::make_shared<const ObjectFile>(std::move(object));
  return Publish(Normalize(path), std::move(entry));
}

Result<void> OmosNamespace::Publish(std::string path, NamespaceEntry entry) {
  auto fresh = std::make_shared<const NamespaceEntry>(std::move(entry));
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(std::move(path), fresh);
  if (!inserted) {
    // Redefinition: retire the old version so pointers handed out by
    // earlier Lookups stay valid (in-flight builds finish against it).
    graveyard_.push_back(std::move(it->second));
    it->second = std::move(fresh);
  }
  return OkResult();
}

Result<const NamespaceEntry*> OmosNamespace::Lookup(std::string_view path) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(Normalize(path));
  if (it == entries_.end()) {
    return Err(ErrorCode::kNotFound, StrCat("no such object: ", path));
  }
  return it->second.get();
}

bool OmosNamespace::Exists(std::string_view path) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entries_.count(Normalize(path)) != 0;
}

size_t OmosNamespace::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entries_.size();
}

std::vector<std::pair<std::string, std::shared_ptr<const NamespaceEntry>>>
OmosNamespace::SnapshotEntries() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::pair<std::string, std::shared_ptr<const NamespaceEntry>>> out;
  out.reserve(entries_.size());
  for (const auto& [path, entry] : entries_) {
    out.emplace_back(path, entry);
  }
  return out;
}

std::vector<std::string> OmosNamespace::List(std::string_view path) const {
  std::string prefix = Normalize(path);
  if (prefix.back() != '/') {
    prefix.push_back('/');
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> names;
  for (auto it = entries_.lower_bound(prefix); it != entries_.end(); ++it) {
    if (!StartsWith(it->first, prefix)) {
      break;
    }
    std::string_view rest = std::string_view(it->first).substr(prefix.size());
    size_t slash = rest.find('/');
    std::string name(slash == std::string_view::npos ? rest : rest.substr(0, slash));
    if (names.empty() || names.back() != name) {
      names.push_back(std::move(name));
    }
  }
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

}  // namespace omos
