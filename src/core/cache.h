// The OMOS image cache: bound, relocated, mappable images keyed by
// (meta-object, specialization, placement). "By treating executables as a
// cache, OMOS avoids unnecessary repetition of work" (§1); cache hits are
// the entire speed story of the self-contained scheme.
#ifndef OMOS_SRC_CORE_CACHE_H_
#define OMOS_SRC_CORE_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/linker/image.h"
#include "src/support/result.h"
#include "src/vm/address_space.h"

namespace omos {

// Cache keys are "<normalized path><kCacheKeySep><spec string>". The
// separator is U+00A7 SECTION SIGN, two bytes in UTF-8, chosen because it
// cannot appear in either half.
inline constexpr std::string_view kCacheKeySep = "\xc2\xa7";

// Builds "<path>§<spec>".
std::string MakeCacheKey(std::string_view path, std::string_view spec);

// Splits a cache key back into its (path, spec) halves. Returns false when
// the separator is absent (not a composed key); outputs are untouched then.
bool SplitCacheKey(std::string_view key, std::string_view* path, std::string_view* spec);

// A stub slot in a partial-image client: the `index`-th lazy slot resolves
// `symbol` out of library `lib_path` (specialized `lib-dynamic-impl`).
struct StubSlot {
  uint32_t index = 0;
  std::string slot_symbol;  // data symbol holding the branch-table entry
  std::string lib_path;
  std::string symbol;
};

// A resolved library dependency of a cached program image.
struct LibDep {
  std::string cache_key;  // key of the library's own cached image
  std::string lib_path;
};

// One cached, mappable image: the linked bytes plus the shareable text
// segment (built once), plus whatever the exec path needs to finish the job
// (library deps to map, stub slots to register).
struct CachedImage {
  std::string key;
  LinkedImage image;
  std::optional<SegmentImage> text_seg;
  std::vector<LibDep> deps;
  std::vector<StubSlot> stub_slots;
  uint64_t build_cost = 0;  // simulated cycles spent constructing this image

  // Integrity sums, set by Put. The linked bytes (text then data, viewed as
  // one stream) are summed per 4 KiB page; the layout fields get their own
  // sum. Get verifies the whole set once per entry lifetime and then
  // amortizes: a constant number of pages per warm hit. A mismatch means the
  // cached copy rotted and must be rebuilt from its blueprint.
  std::vector<uint64_t> page_sums;
  uint64_t layout_sum = 0;

  void ComputeSums();
  // Recomputes the sum of page `page` (an index into page_sums).
  uint64_t PageSum(size_t page) const;
  uint64_t LayoutSum() const;
  // True when `page` and the layout sum still match (layout checked so every
  // probe also covers the O(1)-sized metadata).
  bool VerifyPage(size_t page) const;
  // Recomputes and compares everything. O(bytes).
  bool VerifyAll() const;

  uint32_t bytes() const {
    return static_cast<uint32_t>(image.text.size() + image.data.size());
  }
};

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t bytes_cached = 0;
  // Entries that failed checksum verification on Get; each is evicted and
  // counts as a miss, so the caller transparently rebuilds it.
  uint64_t corruption_rebuilds = 0;
  // Full-image verifications (first Get after Put, and fault-sim runs).
  uint64_t full_verifies = 0;
  // Total pages checked across all Gets, full or amortized.
  uint64_t pages_verified = 0;
};

// LRU image cache with a byte budget. Entries are heap-allocated and stable:
// pointers returned by Get/Put remain valid until eviction.
class ImageCache {
 public:
  explicit ImageCache(uint64_t capacity_bytes = 256ull << 20)
      : capacity_bytes_(capacity_bytes) {}

  // Lookup; bumps LRU and hit/miss counters.
  const CachedImage* Get(const std::string& key);
  // Lookup without touching LRU or statistics (introspection/invalidation).
  const CachedImage* Peek(const std::string& key) const;
  bool Contains(const std::string& key) const { return entries_.count(key) != 0; }
  std::vector<std::string> Keys() const;

  const CachedImage* Put(std::string key, CachedImage image);
  void Evict(const std::string& key);

  const CacheStats& stats() const { return stats_; }
  size_t entry_count() const { return entries_.size(); }

 private:
  void TrimToCapacity();

  uint64_t capacity_bytes_;
  std::list<std::string> lru_;  // front = most recent
  struct Entry {
    std::unique_ptr<CachedImage> image;
    std::list<std::string>::iterator lru_it;
    // Verification state: the first Get after Put walks every page; later
    // Gets round-robin a constant number of pages from probe_cursor.
    bool verified_once = false;
    size_t probe_cursor = 0;
  };
  std::map<std::string, Entry> entries_;
  CacheStats stats_;
};

}  // namespace omos

#endif  // OMOS_SRC_CORE_CACHE_H_
