// The OMOS image cache: bound, relocated, mappable images keyed by
// (meta-object, specialization, placement). "By treating executables as a
// cache, OMOS avoids unnecessary repetition of work" (§1); cache hits are
// the entire speed story of the self-contained scheme.
//
// Concurrency model (PR 3): the cache is internally synchronized so many
// server worker threads can Get/Put/Evict at once.
//
//  * Entries are sharded by cache-key hash; each shard has its own mutex,
//    so lookups for different keys rarely contend. Eviction order is still
//    a single global LRU list (its own mutex; critical sections are one
//    list splice), because the byte budget is global — see
//    `Cache.LruEvictionByBytes`.
//  * `CacheStats` counters are atomics; read them individually.
//  * Checksum verification — the expensive part of a warm Get — runs
//    *outside* any lock, on a shared_ptr-pinned entry, so concurrent warm
//    hits on the same key scale.
//  * Single-flight miss deduplication: concurrent misses on the same key
//    elect one builder via JoinBuild/FinishBuild; the rest wait and share
//    the built image (`CacheStats::single_flight_waits`).
//
// Pointer lifetime: a `const CachedImage*` from Get/Put/Peek stays valid
// until the entry is evicted — and, under concurrency, for as long as any
// ReadLease opened before the Get is still alive: eviction moves entries
// with open leases to a retired list drained only when every lease closes.
// Single-threaded callers need no lease. Concurrent callers must hold one
// across the Get and every use of the returned pointer.
#ifndef OMOS_SRC_CORE_CACHE_H_
#define OMOS_SRC_CORE_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/linker/image.h"
#include "src/support/result.h"
#include "src/vm/address_space.h"

namespace omos {

// Cache keys are "<normalized path><kCacheKeySep><spec string>". The
// separator is U+00A7 SECTION SIGN, two bytes in UTF-8, chosen because it
// cannot appear in either half.
inline constexpr std::string_view kCacheKeySep = "\xc2\xa7";

// Builds "<path>§<spec>".
std::string MakeCacheKey(std::string_view path, std::string_view spec);

// Splits a cache key back into its (path, spec) halves. Returns false when
// the separator is absent (not a composed key); outputs are untouched then.
bool SplitCacheKey(std::string_view key, std::string_view* path, std::string_view* spec);

// A stub slot in a partial-image client: the `index`-th lazy slot resolves
// `symbol` out of library `lib_path` (specialized `lib-dynamic-impl`).
struct StubSlot {
  uint32_t index = 0;
  std::string slot_symbol;  // data symbol holding the branch-table entry
  std::string lib_path;
  std::string symbol;
};

// A resolved library dependency of a cached program image.
struct LibDep {
  std::string cache_key;  // key of the library's own cached image
  std::string lib_path;
};

// One cached, mappable image: the linked bytes plus the shareable text
// segment (built once), plus whatever the exec path needs to finish the job
// (library deps to map, stub slots to register).
struct CachedImage {
  std::string key;
  LinkedImage image;
  std::optional<SegmentImage> text_seg;
  // Frame-backed master copy of the initialized data segment, mapped CoW
  // into each client task (the paper's vm_map exec path). Absent when the
  // image has no data or the server runs with eager_data_copy.
  std::optional<SegmentImage> data_seg;
  std::vector<LibDep> deps;
  std::vector<StubSlot> stub_slots;
  uint64_t build_cost = 0;  // simulated cycles spent constructing this image
  // Layout generation the image's placement was assigned at (the prelink
  // validity stamp). Folded into LayoutSum so a rotted stamp is caught like
  // any other layout-field corruption.
  uint64_t layout_generation = 0;

  // Integrity sums, set by Put. The linked bytes (text then data, viewed as
  // one stream) are summed per 4 KiB page; the layout fields get their own
  // sum. Get verifies the whole set once per entry lifetime and then
  // amortizes: a constant number of pages per warm hit. A mismatch means the
  // cached copy rotted and must be rebuilt from its blueprint.
  std::vector<uint64_t> page_sums;
  uint64_t layout_sum = 0;

  void ComputeSums();
  // Recomputes the sum of page `page` (an index into page_sums).
  uint64_t PageSum(size_t page) const;
  uint64_t LayoutSum() const;
  // True when `page` and the layout sum still match (layout checked so every
  // probe also covers the O(1)-sized metadata).
  bool VerifyPage(size_t page) const;
  // Recomputes and compares everything. O(bytes).
  bool VerifyAll() const;

  uint32_t bytes() const {
    return static_cast<uint32_t>(image.text.size() + image.data.size());
  }
};

// All counters atomic: worker threads bump them without the shard locks.
struct CacheStats {
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> bytes_cached{0};
  // Entries that failed checksum verification on Get; each is evicted and
  // counts as a miss, so the caller transparently rebuilds it.
  std::atomic<uint64_t> corruption_rebuilds{0};
  // Full-image verifications (first Get after Put, and fault-sim runs).
  std::atomic<uint64_t> full_verifies{0};
  // Total pages checked across all Gets, full or amortized.
  std::atomic<uint64_t> pages_verified{0};
  // Entries inserted by Put. Under single-flight, N concurrent misses on
  // one key still insert exactly once (tests/concurrency_test.cc asserts).
  std::atomic<uint64_t> inserts{0};
  // Misses that joined another thread's in-flight build instead of
  // building themselves.
  std::atomic<uint64_t> single_flight_waits{0};
};

// Sharded, internally synchronized LRU image cache with a global byte
// budget. See the file comment for the locking and lifetime story.
class ImageCache {
 public:
  // Registers this cache as a metrics-registry source (cache.* names);
  // the destructor unregisters it. CacheStats stays authoritative here.
  explicit ImageCache(uint64_t capacity_bytes = 256ull << 20);
  ~ImageCache();

  // Pins entry pointers: entries evicted while any lease is open are
  // retired, not destroyed, until the last lease closes.
  class ReadLease {
   public:
    explicit ReadLease(const ImageCache& cache) : cache_(&cache) {
      cache_->readers_.fetch_add(1, std::memory_order_acq_rel);
    }
    ~ReadLease() {
      if (cache_->readers_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        cache_->DrainRetired();
      }
    }
    ReadLease(const ReadLease&) = delete;
    ReadLease& operator=(const ReadLease&) = delete;

   private:
    const ImageCache* cache_;
  };

  // Lookup; bumps LRU and hit/miss counters. Verification runs unlocked.
  const CachedImage* Get(const std::string& key);
  // Lookup without touching LRU or statistics (introspection/invalidation).
  const CachedImage* Peek(const std::string& key) const;
  bool Contains(const std::string& key) const;
  std::vector<std::string> Keys() const;

  const CachedImage* Put(std::string key, CachedImage image);
  void Evict(const std::string& key);

  // ---- Single-flight miss deduplication -----------------------------------
  // After a missed Get, call JoinBuild: the first caller becomes the
  // *leader* (must build the image, Put it, then call FinishBuild exactly
  // once — on failure too, with nullptr). Later callers block until the
  // leader finishes and receive its result. Re-entrant on the leader
  // thread: a recursive JoinBuild on the same key stays leader (dependency
  // cycles surface as eval errors, not deadlocks).
  struct MissJoin {
    bool leader = false;
    // Follower only: the leader's published image; nullptr when the
    // leader's build failed (caller retries or reports its own error).
    const CachedImage* image = nullptr;
  };
  MissJoin JoinBuild(const std::string& key);
  void FinishBuild(const std::string& key, const CachedImage* image);

  const CacheStats& stats() const { return stats_; }
  size_t entry_count() const;

 private:
  // Shard count: cache-key hash & (16 - 1). 16 shards keep the per-shard
  // mutexes all but uncontended at the 8-worker pool size while costing
  // one cache line of mutex each; see docs/perf.md.
  static constexpr size_t kShards = 16;

  struct Entry {
    std::shared_ptr<CachedImage> image;
    std::list<std::string>::iterator lru_it;
    // Verification state: the first Get after Put walks every page; later
    // Gets round-robin a constant number of pages from probe_cursor.
    bool verified_once = false;
    size_t probe_cursor = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, Entry> entries;
  };

  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    const CachedImage* image = nullptr;
    std::thread::id leader;
    int depth = 0;  // leader re-entrancy
  };

  Shard& ShardFor(const std::string& key);
  const Shard& ShardFor(const std::string& key) const;
  void TrimToCapacity();
  // Parks an evicted image on the retired list while any lease is open
  // (destroys it immediately otherwise). Null is a no-op.
  void Retire(std::shared_ptr<CachedImage> image);
  void DrainRetired() const;

  uint64_t capacity_bytes_;
  Shard shards_[kShards];

  // Global eviction order; lock after a shard mutex, never before.
  mutable std::mutex lru_mu_;
  std::list<std::string> lru_;  // front = most recent

  std::mutex inflight_mu_;
  std::map<std::string, std::shared_ptr<InFlight>> inflight_;

  mutable std::atomic<size_t> readers_{0};
  mutable std::mutex retired_mu_;
  mutable std::vector<std::shared_ptr<CachedImage>> retired_;

  CacheStats stats_;
  uint64_t metrics_token_ = 0;
};

}  // namespace omos

#endif  // OMOS_SRC_CORE_CACHE_H_
