#include "src/core/constraints.h"

#include "src/support/strings.h"
#include "src/vm/phys_memory.h"

namespace omos {

ConstraintSolver::ConstraintSolver(Arenas arenas) : arenas_(arenas) {}

const ConstraintSolver::Range* ConstraintSolver::FindOverlap(
    const std::map<uint32_t, Range>& ranges, uint32_t base, uint32_t size) {
  auto it = ranges.upper_bound(base);
  if (it != ranges.begin()) {
    auto prev = std::prev(it);
    if (prev->second.base + prev->second.size > base) {
      return &prev->second;
    }
  }
  if (it != ranges.end() && it->second.base < base + size) {
    return &it->second;
  }
  return nullptr;
}

Result<uint32_t> ConstraintSolver::Fit(std::map<uint32_t, Range>& ranges, uint32_t lo, uint32_t hi,
                                       uint32_t size, std::optional<uint32_t> preferred,
                                       const std::string& object) {
  size = PageAlignUp(std::max<uint32_t>(size, 1));
  if (preferred.has_value()) {
    uint32_t base = PageAlignDown(*preferred);
    const Range* overlap = FindOverlap(ranges, base, size);
    if (overlap == nullptr && base >= lo && base + size <= hi) {
      ranges.emplace(base, Range{base, size, object});
      return base;
    }
    // Weak constraint lost to the required no-overlap constraint; spill and
    // record the conflict for the system manager / feedback loop (§3.5).
    uint32_t got = 0;
    uint32_t cursor = lo;
    for (const auto& [rbase, range] : ranges) {
      if (cursor + size <= range.base) {
        break;
      }
      cursor = std::max(cursor, range.base + range.size);
    }
    if (cursor + size > hi) {
      return Err(ErrorCode::kConstraintConflict,
                 StrCat("no address space for ", object, " (", size, " bytes)"));
    }
    got = cursor;
    conflicts_.push_back(
        ConflictRecord{object, *preferred, got, overlap != nullptr ? overlap->owner : "arena"});
    ranges.emplace(got, Range{got, size, object});
    return got;
  }
  uint32_t cursor = lo;
  for (const auto& [rbase, range] : ranges) {
    if (cursor + size <= range.base) {
      break;
    }
    cursor = std::max(cursor, range.base + range.size);
  }
  if (cursor + size > hi) {
    return Err(ErrorCode::kConstraintConflict,
               StrCat("no address space for ", object, " (", size, " bytes)"));
  }
  ranges.emplace(cursor, Range{cursor, size, object});
  return cursor;
}

Result<Placement> ConstraintSolver::Place(const std::string& object, uint32_t text_size,
                                          uint32_t data_size, const PlacementHints& hints) {
  auto it = placements_.find(object);
  if (it != placements_.end()) {
    // Strong constraint: reuse the existing implementation's placement when
    // it still fits this request.
    if (it->second.text_size >= text_size && it->second.data_size >= data_size) {
      Placement reused = it->second.placement;
      reused.reused = true;
      return reused;
    }
    Release(object);
  }
  OMOS_TRY(uint32_t text_base, Fit(text_ranges_, arenas_.text_lo, arenas_.text_hi, text_size,
                                   hints.text_base, object));
  auto data = Fit(data_ranges_, arenas_.data_lo, arenas_.data_hi, data_size, hints.data_base,
                  object);
  if (!data.ok()) {
    // Roll back the text reservation.
    text_ranges_.erase(text_base);
    return data.error();
  }
  Placement placement{text_base, std::move(data).value(), false};
  placements_[object] = Record{placement, text_size, data_size};
  return placement;
}

const Placement* ConstraintSolver::Find(const std::string& object) const {
  auto it = placements_.find(object);
  return it == placements_.end() ? nullptr : &it->second.placement;
}

std::vector<std::string> ConstraintSolver::OptimizePlacements() {
  // Deterministic re-pack: objects in name order, first-fit from the arena
  // base. Larger address-space churn is acceptable here — this is the
  // occasional administrative pass, not the per-request path.
  std::vector<std::string> changed;
  std::map<std::string, Record> old = std::move(placements_);
  placements_.clear();
  text_ranges_.clear();
  data_ranges_.clear();
  conflicts_.clear();
  for (const auto& [object, record] : old) {
    auto text = Fit(text_ranges_, arenas_.text_lo, arenas_.text_hi, record.text_size,
                    std::nullopt, object);
    auto data = Fit(data_ranges_, arenas_.data_lo, arenas_.data_hi, record.data_size,
                    std::nullopt, object);
    if (!text.ok() || !data.ok()) {
      continue;  // arena exhaustion cannot happen while re-packing a subset
    }
    Placement placement{std::move(text).value(), std::move(data).value(), false};
    placements_[object] = Record{placement, record.text_size, record.data_size};
    if (placement.text_base != record.placement.text_base ||
        placement.data_base != record.placement.data_base) {
      changed.push_back(object);
    }
  }
  return changed;
}

std::vector<PlacementRecord> ConstraintSolver::ExportPlacements() const {
  std::vector<PlacementRecord> records;
  records.reserve(placements_.size());
  for (const auto& [object, record] : placements_) {
    records.push_back(
        PlacementRecord{object, record.placement, record.text_size, record.data_size});
  }
  return records;
}

Result<void> ConstraintSolver::AdoptPlacement(const PlacementRecord& record) {
  Release(record.object);  // adopting replaces any placement we invented
  uint32_t text_size = PageAlignUp(std::max<uint32_t>(record.text_size, 1));
  uint32_t data_size = PageAlignUp(std::max<uint32_t>(record.data_size, 1));
  const Range* text_clash = FindOverlap(text_ranges_, record.placement.text_base, text_size);
  const Range* data_clash = FindOverlap(data_ranges_, record.placement.data_base, data_size);
  if (text_clash != nullptr || data_clash != nullptr) {
    return Err(ErrorCode::kConstraintConflict,
               StrCat("cannot adopt placement for ", record.object, ": range owned by ",
                      text_clash != nullptr ? text_clash->owner : data_clash->owner));
  }
  text_ranges_.emplace(record.placement.text_base,
                       Range{record.placement.text_base, text_size, record.object});
  data_ranges_.emplace(record.placement.data_base,
                       Range{record.placement.data_base, data_size, record.object});
  Placement placement = record.placement;
  placement.reused = false;
  placements_[record.object] = Record{placement, record.text_size, record.data_size};
  return OkResult();
}

void ConstraintSolver::Release(const std::string& object) {
  auto it = placements_.find(object);
  if (it == placements_.end()) {
    return;
  }
  text_ranges_.erase(it->second.placement.text_base);
  data_ranges_.erase(it->second.placement.data_base);
  placements_.erase(it);
}

}  // namespace omos
