#include "src/core/constraints.h"

#include <algorithm>
#include <set>

#include "src/support/metrics.h"
#include "src/support/strings.h"
#include "src/vm/phys_memory.h"

namespace omos {

namespace {

// Registry counters for the layout solver; looked up once (pointers are
// stable for the process lifetime). docs/observability.md lists them.
struct SolverMetrics {
  Counter* places = MetricsRegistry::Global().GetCounter("solver.places");
  Counter* reuses = MetricsRegistry::Global().GetCounter("solver.reuses");
  Counter* conflicts = MetricsRegistry::Global().GetCounter("solver.conflicts");
  Counter* moves = MetricsRegistry::Global().GetCounter("solver.moves");
  Counter* resolves = MetricsRegistry::Global().GetCounter("solver.resolves");
};

SolverMetrics& Metrics() {
  static SolverMetrics* metrics = new SolverMetrics();
  return *metrics;
}

}  // namespace

ConstraintSolver::ConstraintSolver(Arenas arenas) : arenas_(arenas) {}

const ConstraintSolver::Range* ConstraintSolver::FindOverlap(
    const std::map<uint32_t, Range>& ranges, uint32_t base, uint32_t size) {
  auto it = ranges.upper_bound(base);
  if (it != ranges.begin()) {
    auto prev = std::prev(it);
    if (prev->second.base + prev->second.size > base) {
      return &prev->second;
    }
  }
  if (it != ranges.end() && it->second.base < base + size) {
    return &it->second;
  }
  return nullptr;
}

Result<uint32_t> ConstraintSolver::Fit(std::map<uint32_t, Range>& ranges, uint32_t lo, uint32_t hi,
                                       uint32_t size, std::optional<uint32_t> preferred,
                                       const std::string& object) {
  size = PageAlignUp(std::max<uint32_t>(size, 1));
  if (preferred.has_value()) {
    uint32_t base = PageAlignDown(*preferred);
    const Range* overlap = FindOverlap(ranges, base, size);
    if (overlap == nullptr && base >= lo && base + size <= hi) {
      ranges.emplace(base, Range{base, size, object});
      return base;
    }
    // Weak constraint lost to the required no-overlap constraint; spill and
    // record the conflict for the system manager / feedback loop (§3.5).
    uint32_t got = 0;
    uint32_t cursor = lo;
    for (const auto& [rbase, range] : ranges) {
      if (cursor + size <= range.base) {
        break;
      }
      cursor = std::max(cursor, range.base + range.size);
    }
    if (cursor + size > hi) {
      return Err(ErrorCode::kConstraintConflict,
                 StrCat("no address space for ", object, " (", size, " bytes)"));
    }
    got = cursor;
    conflicts_.push_back(
        ConflictRecord{object, *preferred, got, overlap != nullptr ? overlap->owner : "arena"});
    Metrics().conflicts->Add();
    ranges.emplace(got, Range{got, size, object});
    return got;
  }
  uint32_t cursor = lo;
  for (const auto& [rbase, range] : ranges) {
    if (cursor + size <= range.base) {
      break;
    }
    cursor = std::max(cursor, range.base + range.size);
  }
  if (cursor + size > hi) {
    return Err(ErrorCode::kConstraintConflict,
               StrCat("no address space for ", object, " (", size, " bytes)"));
  }
  ranges.emplace(cursor, Range{cursor, size, object});
  return cursor;
}

Result<Placement> ConstraintSolver::Place(const std::string& object, uint32_t text_size,
                                          uint32_t data_size, const PlacementHints& hints) {
  auto it = placements_.find(object);
  bool regrow = false;
  if (it != placements_.end()) {
    // Strong constraint: reuse the existing implementation's placement when
    // it still fits this request.
    if (it->second.text_size >= text_size && it->second.data_size >= data_size) {
      Placement reused = it->second.placement;
      reused.reused = true;
      Metrics().reuses->Add();
      return reused;
    }
    Release(object);
    // The object outgrew its home: the refit below moves a live placement,
    // so it must advance the layout generation like any other move.
    regrow = true;
  }
  OMOS_TRY(uint32_t text_base, Fit(text_ranges_, arenas_.text_lo, arenas_.text_hi, text_size,
                                   hints.text_base, object));
  auto data = Fit(data_ranges_, arenas_.data_lo, arenas_.data_hi, data_size, hints.data_base,
                  object);
  if (!data.ok()) {
    // Roll back the text reservation.
    text_ranges_.erase(text_base);
    return data.error();
  }
  if (regrow) {
    ++layout_generation_;
    Metrics().moves->Add();
  }
  Placement placement{text_base, std::move(data).value(), false, layout_generation_};
  placements_[object] = Record{placement, text_size, data_size};
  Metrics().places->Add();
  return placement;
}

const Placement* ConstraintSolver::Find(const std::string& object) const {
  auto it = placements_.find(object);
  return it == placements_.end() ? nullptr : &it->second.placement;
}

uint64_t ConstraintSolver::GenerationOf(const std::string& object) const {
  auto it = placements_.find(object);
  return it == placements_.end() ? 0 : it->second.placement.generation;
}

std::vector<std::string> ConstraintSolver::OptimizePlacements() {
  // Deterministic re-pack: objects in name order, first-fit from the arena
  // base. Larger address-space churn is acceptable here — this is the
  // occasional administrative pass, not the per-request path.
  std::vector<std::string> changed;
  std::map<std::string, Record> old = std::move(placements_);
  placements_.clear();
  text_ranges_.clear();
  data_ranges_.clear();
  conflicts_.clear();
  uint64_t next_generation = layout_generation_ + 1;
  for (const auto& [object, record] : old) {
    auto text = Fit(text_ranges_, arenas_.text_lo, arenas_.text_hi, record.text_size,
                    std::nullopt, object);
    auto data = Fit(data_ranges_, arenas_.data_lo, arenas_.data_hi, record.data_size,
                    std::nullopt, object);
    if (!text.ok() || !data.ok()) {
      continue;  // arena exhaustion cannot happen while re-packing a subset
    }
    Placement placement{std::move(text).value(), std::move(data).value(), false,
                        record.placement.generation};
    bool moved = placement.text_base != record.placement.text_base ||
                 placement.data_base != record.placement.data_base;
    if (moved) {
      placement.generation = next_generation;
      changed.push_back(object);
    }
    placements_[object] = Record{placement, record.text_size, record.data_size};
  }
  if (!changed.empty()) {
    layout_generation_ = next_generation;
    Metrics().moves->Add(changed.size());
  }
  return changed;
}

std::vector<std::string> ConstraintSolver::SolveNamespace() {
  Metrics().resolves->Add();
  if (conflicts_.empty()) {
    return {};  // the current layout already satisfies every client
  }
  // Deterministic order: conflicted objects by name, each handled once even
  // if it spilled repeatedly.
  std::set<std::string> pending;
  std::map<std::string, uint32_t> wanted;
  for (const ConflictRecord& conflict : conflicts_) {
    if (placements_.count(conflict.object) > 0 && pending.insert(conflict.object).second) {
      wanted[conflict.object] = conflict.wanted;
    }
  }
  std::vector<std::string> moved;
  uint64_t next_generation = layout_generation_ + 1;
  size_t consumed = conflicts_.size();  // records that drove this pass
  for (const std::string& object : pending) {
    Record record = placements_.at(object);
    Release(object);
    PlacementHints hints;
    hints.text_base = wanted.at(object);
    size_t conflicts_before = conflicts_.size();
    auto text = Fit(text_ranges_, arenas_.text_lo, arenas_.text_hi, record.text_size,
                    hints.text_base, object);
    auto data = Fit(data_ranges_, arenas_.data_lo, arenas_.data_hi, record.data_size,
                    std::nullopt, object);
    // Whether the wanted base freed up or not, Fit produced *some* home (the
    // arenas still held this object a moment ago); a re-spill just re-logs
    // the conflict for the next pass.
    if (!text.ok() || !data.ok()) {
      conflicts_.resize(conflicts_before);
      // Put the old placement back; nothing changed for this object.
      text_ranges_.emplace(record.placement.text_base,
                           Range{record.placement.text_base,
                                 PageAlignUp(std::max<uint32_t>(record.text_size, 1)), object});
      data_ranges_.emplace(record.placement.data_base,
                           Range{record.placement.data_base,
                                 PageAlignUp(std::max<uint32_t>(record.data_size, 1)), object});
      placements_[object] = record;
      continue;
    }
    Placement placement{std::move(text).value(), std::move(data).value(), false,
                        record.placement.generation};
    if (placement.text_base != record.placement.text_base ||
        placement.data_base != record.placement.data_base) {
      placement.generation = next_generation;
      moved.push_back(object);
    }
    placements_[object] = Record{placement, record.text_size, record.data_size};
  }
  // Conflicts that drove this pass are resolved; re-spills logged above
  // (appended past `consumed`, possibly for the same objects) stay for the
  // next pass. Drop only the records we consumed.
  std::vector<ConflictRecord> remaining;
  for (size_t i = 0; i < conflicts_.size(); ++i) {
    if (i >= consumed || pending.count(conflicts_[i].object) == 0) {
      remaining.push_back(conflicts_[i]);
    }
  }
  conflicts_ = std::move(remaining);
  if (!moved.empty()) {
    layout_generation_ = next_generation;
    Metrics().moves->Add(moved.size());
  }
  return moved;
}

std::vector<PlacementRecord> ConstraintSolver::ExportPlacements() const {
  std::vector<PlacementRecord> records;
  records.reserve(placements_.size());
  for (const auto& [object, record] : placements_) {
    records.push_back(
        PlacementRecord{object, record.placement, record.text_size, record.data_size});
  }
  return records;
}

Result<void> ConstraintSolver::AdoptPlacement(const PlacementRecord& record) {
  Release(record.object);  // adopting replaces any placement we invented
  uint32_t text_size = PageAlignUp(std::max<uint32_t>(record.text_size, 1));
  uint32_t data_size = PageAlignUp(std::max<uint32_t>(record.data_size, 1));
  const Range* text_clash = FindOverlap(text_ranges_, record.placement.text_base, text_size);
  const Range* data_clash = FindOverlap(data_ranges_, record.placement.data_base, data_size);
  if (text_clash != nullptr || data_clash != nullptr) {
    return Err(ErrorCode::kConstraintConflict,
               StrCat("cannot adopt placement for ", record.object, ": range owned by ",
                      text_clash != nullptr ? text_clash->owner : data_clash->owner));
  }
  text_ranges_.emplace(record.placement.text_base,
                       Range{record.placement.text_base, text_size, record.object});
  data_ranges_.emplace(record.placement.data_base,
                       Range{record.placement.data_base, data_size, record.object});
  Placement placement = record.placement;
  placement.reused = false;
  placement.generation = layout_generation_;
  placements_[record.object] = Record{placement, record.text_size, record.data_size};
  return OkResult();
}

void ConstraintSolver::Release(const std::string& object) {
  auto it = placements_.find(object);
  if (it == placements_.end()) {
    return;
  }
  text_ranges_.erase(it->second.placement.text_base);
  data_ranges_.erase(it->second.placement.data_base);
  placements_.erase(it);
}

}  // namespace omos
