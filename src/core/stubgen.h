// Generated fragments: partial-image lazy stubs (§4.2) and monitoring
// wrappers (§4.1/§6). Both are produced as assembly source and assembled —
// the same path the blueprint `source` operator uses, mirroring the paper's
// "stub code is compiled and returned as the representative implementation
// of the library".
#ifndef OMOS_SRC_CORE_STUBGEN_H_
#define OMOS_SRC_CORE_STUBGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/cache.h"
#include "src/objfmt/object_file.h"
#include "src/support/result.h"

namespace omos {

// Lazy-binding stubs for a partial-image client. For each function F:
//   F:          ldpc r12, __slot_<i>   ; load branch-table entry
//               jmpr r12
//   __lazy_<i>: movi r12, <i>          ; slot index
//               sys  17                ; kSysDload -> OMOS
// and a data word __slot_<i> initially pointing at __lazy_<i>. The first
// call loads the library and patches the slot; later calls cost two extra
// instructions — the paper's "indirect branch table".
struct StubFragment {
  ObjectFile object;
  std::vector<StubSlot> slots;
};

Result<StubFragment> GenerateLazyStubs(const std::string& lib_path,
                                       const std::vector<std::string>& functions,
                                       uint32_t first_slot_index);

// Monitoring wrappers (the reordering experiment's data source). For each
// function F (assumed renamed to __mon_F in the wrapped module):
//   F: movi r12, <index>
//      sys  18                          ; kSysMonLog -> count the call
//      jmp  __mon_F                     ; tail-jump to the real code
Result<ObjectFile> GenerateMonitorWrappers(const std::vector<std::string>& functions,
                                           uint32_t first_index);

}  // namespace omos

#endif  // OMOS_SRC_CORE_STUBGEN_H_
