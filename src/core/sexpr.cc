#include "src/core/sexpr.h"

#include <cctype>
#include <cstdlib>

#include "src/support/strings.h"

namespace omos {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Sexpr> ParseOne() {
    SkipSpace();
    if (AtEnd()) {
      return Err(ErrorCode::kParseError, "blueprint: unexpected end of input");
    }
    char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      Sexpr list;
      list.kind = Sexpr::Kind::kList;
      while (true) {
        SkipSpace();
        if (AtEnd()) {
          return Err(ErrorCode::kParseError, "blueprint: unterminated list");
        }
        if (text_[pos_] == ')') {
          ++pos_;
          return list;
        }
        OMOS_TRY(Sexpr child, ParseOne());
        list.children.push_back(std::move(child));
      }
    }
    if (c == ')') {
      return Err(ErrorCode::kParseError, "blueprint: unexpected ')'");
    }
    if (c == '"') {
      return ParseString();
    }
    return ParseAtom();
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ';') {
        while (pos_ < text_.size() && text_[pos_] != '\n') {
          ++pos_;
        }
      } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }

 private:
  Result<Sexpr> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char esc = text_[pos_++];
        switch (esc) {
          case 'n':
            out.push_back('\n');
            break;
          case 't':
            out.push_back('\t');
            break;
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          default:
            out.push_back(esc);
            break;
        }
      } else {
        out.push_back(c);
      }
    }
    if (AtEnd()) {
      return Err(ErrorCode::kParseError, "blueprint: unterminated string");
    }
    ++pos_;  // closing quote
    return Sexpr::Str(std::move(out));
  }

  Result<Sexpr> ParseAtom() {
    size_t start = pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c)) != 0 || c == '(' || c == ')' || c == ';' ||
          c == '"') {
        break;
      }
      ++pos_;
    }
    std::string token(text_.substr(start, pos_ - start));
    // Numbers: decimal or 0x hex.
    bool numeric = !token.empty() && (std::isdigit(static_cast<unsigned char>(token[0])) != 0);
    if (numeric) {
      const char* begin = token.c_str();
      char* end = nullptr;
      unsigned long long value = std::strtoull(begin, &end, 0);
      if (end == begin + token.size()) {
        Sexpr num;
        num.kind = Sexpr::Kind::kNumber;
        num.number = value;
        num.atom = token;
        return num;
      }
    }
    return Sexpr::Symbol(std::move(token));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string Sexpr::ToString() const {
  switch (kind) {
    case Kind::kSymbol:
      return atom;
    case Kind::kString: {
      std::string out = "\"";
      for (char c : atom) {
        if (c == '"' || c == '\\') {
          out.push_back('\\');
        }
        if (c == '\n') {
          out += "\\n";
          continue;
        }
        out.push_back(c);
      }
      out.push_back('"');
      return out;
    }
    case Kind::kNumber:
      return atom.empty() ? std::to_string(number) : atom;
    case Kind::kList: {
      std::string out = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) {
          out.push_back(' ');
        }
        out += children[i].ToString();
      }
      out.push_back(')');
      return out;
    }
  }
  return "";
}

Result<Sexpr> ParseSexpr(std::string_view text) {
  Parser parser(text);
  OMOS_TRY(Sexpr expr, parser.ParseOne());
  parser.SkipSpace();
  if (!parser.AtEnd()) {
    return Err(ErrorCode::kParseError, "blueprint: trailing input after expression");
  }
  return expr;
}

Result<std::vector<Sexpr>> ParseSexprs(std::string_view text) {
  Parser parser(text);
  std::vector<Sexpr> out;
  while (true) {
    parser.SkipSpace();
    if (parser.AtEnd()) {
      return out;
    }
    OMOS_TRY(Sexpr expr, parser.ParseOne());
    out.push_back(std::move(expr));
  }
}

}  // namespace omos
