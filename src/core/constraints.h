// The prioritized address-constraint system (§3.5), generalized into a
// namespace-global layout solver.
//
// Constraints, strongest first:
//   1. required — no two placed objects may overlap;
//   2. strong   — an existing placement for the same object is reused
//                 (so its read-only pages stay shared among clients);
//   3. weak     — a caller-supplied preferred base is honoured when it does
//                 not violate 1 (otherwise the solver spills to the next
//                 free range and records the conflict, which the paper
//                 suggests feeding back to improve placements).
//
// Fleet-wide prelink (§4.1 feedback loop): the solver's placement map IS
// the global layout — one conflict-free home per image, valid for every
// client simultaneously. The layout is versioned by a monotonic *layout
// generation*: fresh placements do not bump it, but any pass that MOVES a
// live placement (SolveNamespace, OptimizePlacements, a grow-refit) does.
// Each placement carries the generation it was last (re)assigned at;
// an image linked against placement P is valid for zero-relocation mapping
// exactly while GenerationOf(object) still equals the stamp it recorded.
#ifndef OMOS_SRC_CORE_CONSTRAINTS_H_
#define OMOS_SRC_CORE_CONSTRAINTS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/support/result.h"

namespace omos {

struct PlacementHints {
  std::optional<uint32_t> text_base;
  std::optional<uint32_t> data_base;
};

struct Placement {
  uint32_t text_base = 0;
  uint32_t data_base = 0;
  bool reused = false;  // an existing identical placement was reused
  // Layout generation this placement was last (re)assigned at. An image
  // linked at this placement is prelink-valid while the solver still
  // reports the same generation for the object.
  uint64_t generation = 0;
};

struct ConflictRecord {
  std::string object;
  uint32_t wanted = 0;
  uint32_t got = 0;
  std::string holder;  // who owned the conflicting range
};

// One object's placement assignment, as exported for a server snapshot and
// re-adopted after a restart (so rebuilt images land at identical homes).
struct PlacementRecord {
  std::string object;
  Placement placement;
  uint32_t text_size = 0;
  uint32_t data_size = 0;
};

struct SolverArenas {
  uint32_t text_lo = 0x00100000;
  uint32_t text_hi = 0x3FF00000;
  uint32_t data_lo = 0x40000000;
  uint32_t data_hi = 0x7FF00000;
};

class ConstraintSolver {
 public:
  using Arenas = SolverArenas;

  explicit ConstraintSolver(Arenas arenas = Arenas());

  // Place `object` needing `text_size`/`data_size` bytes. If the object was
  // placed before with the same sizes, that placement is reused (strong
  // constraint). A weak hint that conflicts spills to the next free range
  // and logs a ConflictRecord.
  Result<Placement> Place(const std::string& object, uint32_t text_size, uint32_t data_size,
                          const PlacementHints& hints = {});

  // Forget an object's placement (cache eviction path).
  void Release(const std::string& object);

  // §4.1: "OMOS could easily record the conflicts found, and occasionally
  // the system manager could feed that data into OMOS' constraint system to
  // determine better placements, or this could be done fully automatically."
  // Re-packs every known object into a deterministic, conflict-free layout
  // and clears the conflict log. Returns the objects whose placement
  // changed (their cached images must be rebuilt). Bumps the layout
  // generation when anything moved.
  std::vector<std::string> OptimizePlacements();

  // The fleet-wide re-solve: resolve every recorded conflict into a stable
  // global layout while moving as little as possible. Objects whose hints
  // lost to the no-overlap constraint are re-placed at their recorded
  // wanted base when that range has since freed up (first-fit otherwise);
  // every other placement stays at its current home. Deterministic: the
  // conflict log is processed in object-name order. Clears the conflict log
  // and bumps the layout generation iff any placement moved. Returns the
  // moved objects (their cached images must be re-linked).
  std::vector<std::string> SolveNamespace();

  const std::vector<ConflictRecord>& conflicts() const { return conflicts_; }
  size_t placed_count() const { return placements_.size(); }
  // Current placement of `object`, if any.
  const Placement* Find(const std::string& object) const;

  // The global layout version. Starts at 1; bumped only when a live
  // placement moves (never by a fresh Place), so store fingerprints stay
  // stable while the layout is stable.
  uint64_t layout_generation() const { return layout_generation_; }
  // The generation `object`'s placement was last assigned at; 0 when the
  // object is not placed. The prelink validity check.
  uint64_t GenerationOf(const std::string& object) const;
  // Restore path: resume the generation counter from a snapshot.
  void set_layout_generation(uint64_t generation) { layout_generation_ = generation; }

  // Snapshot support: export every placement assignment, in object order.
  std::vector<PlacementRecord> ExportPlacements() const;
  // Claim `record`'s ranges for its object (restore path). Fails with
  // kConstraintConflict if the ranges are already owned by another object.
  // The adopted placement is stamped with the current layout generation.
  Result<void> AdoptPlacement(const PlacementRecord& record);

 private:
  struct Range {
    uint32_t base = 0;
    uint32_t size = 0;
    std::string owner;
  };
  struct Record {
    Placement placement;
    uint32_t text_size = 0;
    uint32_t data_size = 0;
  };

  // First-fit within [lo, hi); honours `preferred` when free.
  Result<uint32_t> Fit(std::map<uint32_t, Range>& ranges, uint32_t lo, uint32_t hi, uint32_t size,
                       std::optional<uint32_t> preferred, const std::string& object);
  static const Range* FindOverlap(const std::map<uint32_t, Range>& ranges, uint32_t base,
                                  uint32_t size);

  Arenas arenas_;
  std::map<uint32_t, Range> text_ranges_;
  std::map<uint32_t, Range> data_ranges_;
  std::map<std::string, Record> placements_;
  std::vector<ConflictRecord> conflicts_;
  uint64_t layout_generation_ = 1;
};

}  // namespace omos

#endif  // OMOS_SRC_CORE_CONSTRAINTS_H_
