// The blueprint specification language: "a simple Lisp-like syntax. The
// first word in an expression is a graph operation followed by a series of
// arguments. Arguments can be the names of server objects, strings, or
// other graph operations." (§3.3)
#ifndef OMOS_SRC_CORE_SEXPR_H_
#define OMOS_SRC_CORE_SEXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/result.h"

namespace omos {

struct Sexpr {
  enum class Kind { kSymbol, kString, kNumber, kList };

  Kind kind = Kind::kList;
  std::string atom;             // symbol text or string contents
  uint64_t number = 0;          // kNumber
  std::vector<Sexpr> children;  // kList

  bool IsAtom() const { return kind != Kind::kList; }

  static Sexpr Symbol(std::string s) {
    Sexpr e;
    e.kind = Kind::kSymbol;
    e.atom = std::move(s);
    return e;
  }
  static Sexpr Str(std::string s) {
    Sexpr e;
    e.kind = Kind::kString;
    e.atom = std::move(s);
    return e;
  }

  // Round-trip printer (for diagnostics and blueprint hashing).
  std::string ToString() const;
};

// Parse one expression; trailing garbage is an error.
Result<Sexpr> ParseSexpr(std::string_view text);

// Parse a sequence of top-level expressions (library meta-objects start
// with a constraint-list followed by the construction expression, Fig. 1).
Result<std::vector<Sexpr>> ParseSexprs(std::string_view text);

}  // namespace omos

#endif  // OMOS_SRC_CORE_SEXPR_H_
