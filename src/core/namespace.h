// OMOS's hierarchical namespace: "names represent meta-objects, executable
// code fragments, or directories of other objects" (§3.2).
//
// Internally synchronized (PR 3): many server worker threads Lookup/List
// concurrently while administrative requests redefine entries. Entries are
// immutable once published and held by shared_ptr; a redefinition swaps in
// a new entry and retires the old one to a graveyard kept until the
// namespace dies, so a `const NamespaceEntry*` from Lookup stays valid for
// the namespace's lifetime even across concurrent redefinition (builds in
// flight keep linking against the blueprint version they looked up).
#ifndef OMOS_SRC_CORE_NAMESPACE_H_
#define OMOS_SRC_CORE_NAMESPACE_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/constraints.h"
#include "src/core/sexpr.h"
#include "src/linker/module.h"
#include "src/support/result.h"

namespace omos {

enum class EntryKind { kMeta, kLibrary, kFragment };

struct NamespaceEntry {
  EntryKind kind = EntryKind::kMeta;
  // kMeta / kLibrary:
  std::string blueprint_text;  // full source, for hashing and re-parsing
  Sexpr construction;          // the construction expression
  PlacementHints hints;        // from (constraint-list "T" addr "D" addr)
  std::string default_spec;    // from (default-specialization "name"); "" = self-contained
  // kFragment:
  FragmentPtr fragment;
};

class OmosNamespace {
 public:
  // Define a meta-object at `path`. The blueprint may contain, before the
  // construction expression, a (constraint-list "T" addr ["D" addr]) record
  // and a (default-specialization "name") record — Fig. 1's library shape.
  Result<void> DefineMeta(std::string_view path, std::string_view blueprint,
                          EntryKind kind = EntryKind::kMeta);

  // Register a relocatable object fragment (a leaf operand, e.g. /obj/ls.o).
  Result<void> AddFragment(std::string_view path, ObjectFile object);

  // The pointer stays valid for the namespace's lifetime (see file comment),
  // but names the entry version current at lookup time.
  Result<const NamespaceEntry*> Lookup(std::string_view path) const;
  bool Exists(std::string_view path) const;

  // Immediate children of `path` (directory listing of the exported
  // namespace — what /bin backed by OMOS would enumerate, §5).
  std::vector<std::string> List(std::string_view path) const;

  size_t size() const;

  // A point-in-time copy of every entry, keyed by normalized path, in path
  // order (snapshot support). Each shared_ptr keeps its entry alive
  // independent of later redefinitions.
  std::vector<std::pair<std::string, std::shared_ptr<const NamespaceEntry>>> SnapshotEntries()
      const;

  static std::string Normalize(std::string_view path);

 private:
  Result<void> Publish(std::string path, NamespaceEntry entry);

  mutable std::shared_mutex mu_;
  std::map<std::string, std::shared_ptr<const NamespaceEntry>, std::less<>> entries_;
  // Redefined entries, kept so Lookup pointers handed out before the
  // redefinition never dangle. Bounded by the number of redefinitions.
  std::vector<std::shared_ptr<const NamespaceEntry>> graveyard_;
};

}  // namespace omos

#endif  // OMOS_SRC_CORE_NAMESPACE_H_
