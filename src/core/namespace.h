// OMOS's hierarchical namespace: "names represent meta-objects, executable
// code fragments, or directories of other objects" (§3.2).
#ifndef OMOS_SRC_CORE_NAMESPACE_H_
#define OMOS_SRC_CORE_NAMESPACE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/constraints.h"
#include "src/core/sexpr.h"
#include "src/linker/module.h"
#include "src/support/result.h"

namespace omos {

enum class EntryKind { kMeta, kLibrary, kFragment };

struct NamespaceEntry {
  EntryKind kind = EntryKind::kMeta;
  // kMeta / kLibrary:
  std::string blueprint_text;  // full source, for hashing and re-parsing
  Sexpr construction;          // the construction expression
  PlacementHints hints;        // from (constraint-list "T" addr "D" addr)
  std::string default_spec;    // from (default-specialization "name"); "" = self-contained
  // kFragment:
  FragmentPtr fragment;
};

class OmosNamespace {
 public:
  // Define a meta-object at `path`. The blueprint may contain, before the
  // construction expression, a (constraint-list "T" addr ["D" addr]) record
  // and a (default-specialization "name") record — Fig. 1's library shape.
  Result<void> DefineMeta(std::string_view path, std::string_view blueprint,
                          EntryKind kind = EntryKind::kMeta);

  // Register a relocatable object fragment (a leaf operand, e.g. /obj/ls.o).
  Result<void> AddFragment(std::string_view path, ObjectFile object);

  Result<const NamespaceEntry*> Lookup(std::string_view path) const;
  bool Exists(std::string_view path) const { return entries_.count(Normalize(path)) != 0; }

  // Immediate children of `path` (directory listing of the exported
  // namespace — what /bin backed by OMOS would enumerate, §5).
  std::vector<std::string> List(std::string_view path) const;

  size_t size() const { return entries_.size(); }

  // Every entry keyed by normalized path, in path order (snapshot support).
  const std::map<std::string, NamespaceEntry, std::less<>>& entries() const { return entries_; }

  static std::string Normalize(std::string_view path);

 private:
  std::map<std::string, NamespaceEntry, std::less<>> entries_;
};

}  // namespace omos

#endif  // OMOS_SRC_CORE_NAMESPACE_H_
