#include "src/core/cache.h"

namespace omos {

const CachedImage* ImageCache::Get(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.erase(it->second.lru_it);
  lru_.push_front(key);
  it->second.lru_it = lru_.begin();
  return it->second.image.get();
}

const CachedImage* ImageCache::Peek(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : it->second.image.get();
}

std::vector<std::string> ImageCache::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    keys.push_back(key);
  }
  return keys;
}

const CachedImage* ImageCache::Put(std::string key, CachedImage image) {
  Evict(key);
  auto owned = std::make_unique<CachedImage>(std::move(image));
  owned->key = key;
  stats_.bytes_cached += owned->bytes();
  lru_.push_front(key);
  const CachedImage* result = owned.get();
  entries_.emplace(std::move(key), Entry{std::move(owned), lru_.begin()});
  TrimToCapacity();
  return result;
}

void ImageCache::Evict(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return;
  }
  stats_.bytes_cached -= it->second.image->bytes();
  ++stats_.evictions;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void ImageCache::TrimToCapacity() {
  while (stats_.bytes_cached > capacity_bytes_ && lru_.size() > 1) {
    // Evict least-recently-used (never the entry just inserted).
    std::string victim = lru_.back();
    Evict(victim);
  }
}

}  // namespace omos
