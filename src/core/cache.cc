#include "src/core/cache.h"

#include "src/support/faultsim.h"
#include "src/support/log.h"
#include "src/support/strings.h"

namespace omos {

uint64_t CachedImage::ComputeChecksum() const {
  uint64_t sum = Fnv1aBytes(image.text.data(), image.text.size());
  sum ^= Fnv1aBytes(image.data.data(), image.data.size()) * 0x100000001B3ull;
  sum ^= (static_cast<uint64_t>(image.text_base) << 32 | image.data_base) * 0x9E3779B97F4A7C15ull;
  sum ^= static_cast<uint64_t>(image.entry) * 0xBF58476D1CE4E5B9ull;
  return sum;
}

const CachedImage* ImageCache::Get(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  CachedImage& stored = *it->second.image;
  // Fault site: bit-rot in the cached copy's backing store.
  uint32_t knob = 0;
  if (FaultSim::Trip("cache.bitrot", &knob)) {
    std::vector<uint8_t>& victim =
        stored.image.text.empty() ? stored.image.data : stored.image.text;
    if (!victim.empty()) {
      victim[knob % victim.size()] ^= static_cast<uint8_t>(1u << (1 + knob % 7));
    }
  }
  if (stored.checksum != stored.ComputeChecksum()) {
    // The cached bytes rotted. Drop the entry and report a miss: the caller
    // rebuilds from the blueprint, and the placement solver still holds the
    // old addresses, so the rebuilt image is byte-identical.
    LogMessage(LogLevel::kWarning, "cache", StrCat("checksum mismatch, rebuilding: ", key));
    ++stats_.corruption_rebuilds;
    ++stats_.misses;
    Evict(key);
    return nullptr;
  }
  ++stats_.hits;
  lru_.erase(it->second.lru_it);
  lru_.push_front(key);
  it->second.lru_it = lru_.begin();
  return it->second.image.get();
}

const CachedImage* ImageCache::Peek(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : it->second.image.get();
}

std::vector<std::string> ImageCache::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    keys.push_back(key);
  }
  return keys;
}

const CachedImage* ImageCache::Put(std::string key, CachedImage image) {
  Evict(key);
  auto owned = std::make_unique<CachedImage>(std::move(image));
  owned->key = key;
  owned->checksum = owned->ComputeChecksum();
  stats_.bytes_cached += owned->bytes();
  lru_.push_front(key);
  const CachedImage* result = owned.get();
  entries_.emplace(std::move(key), Entry{std::move(owned), lru_.begin()});
  TrimToCapacity();
  return result;
}

void ImageCache::Evict(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return;
  }
  stats_.bytes_cached -= it->second.image->bytes();
  ++stats_.evictions;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void ImageCache::TrimToCapacity() {
  while (stats_.bytes_cached > capacity_bytes_ && lru_.size() > 1) {
    // Evict least-recently-used (never the entry just inserted).
    std::string victim = lru_.back();
    Evict(victim);
  }
}

}  // namespace omos
