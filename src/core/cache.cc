#include "src/core/cache.h"

#include <algorithm>

#include "src/support/faultsim.h"
#include "src/support/log.h"
#include "src/support/metrics.h"
#include "src/support/strings.h"
#include "src/support/trace.h"

namespace omos {

namespace {

// Page granularity for integrity sums. 4 KiB matches the VM page size, so a
// single flipped bit dirties exactly one sum.
constexpr size_t kSumPageSize = 4096;

// Pages probed per warm Get once the entry has been fully verified. Constant,
// so warm-hit cost no longer scales with image size.
constexpr size_t kProbesPerGet = 2;

}  // namespace

std::string MakeCacheKey(std::string_view path, std::string_view spec) {
  std::string key;
  key.reserve(path.size() + kCacheKeySep.size() + spec.size());
  key.append(path);
  key.append(kCacheKeySep);
  key.append(spec);
  return key;
}

bool SplitCacheKey(std::string_view key, std::string_view* path, std::string_view* spec) {
  size_t sep = key.find(kCacheKeySep);
  if (sep == std::string_view::npos) {
    return false;
  }
  if (path != nullptr) {
    *path = key.substr(0, sep);
  }
  if (spec != nullptr) {
    *spec = key.substr(sep + kCacheKeySep.size());
  }
  return true;
}

uint64_t CachedImage::PageSum(size_t page) const {
  // text and data are summed as one contiguous stream of pages.
  size_t begin = page * kSumPageSize;
  size_t end = begin + kSumPageSize;
  uint64_t sum = 0x6b79616765ull + page;  // per-page seed so empty pages differ
  if (begin < image.text.size()) {
    size_t take = std::min(end, image.text.size()) - begin;
    sum = HashBytes(image.text.data() + begin, take, sum);
  }
  size_t data_begin = begin > image.text.size() ? begin - image.text.size() : 0;
  size_t data_end = end > image.text.size() ? end - image.text.size() : 0;
  if (data_begin < image.data.size() && data_end > 0) {
    size_t take = std::min(data_end, image.data.size()) - data_begin;
    sum = HashBytes(image.data.data() + data_begin, take, sum);
  }
  return sum;
}

uint64_t CachedImage::LayoutSum() const {
  uint64_t sum = (static_cast<uint64_t>(image.text_base) << 32 | image.data_base) *
                 0x9E3779B97F4A7C15ull;
  sum ^= static_cast<uint64_t>(image.entry) * 0xBF58476D1CE4E5B9ull;
  sum ^= static_cast<uint64_t>(image.bss_size) * 0x94D049BB133111EBull;
  sum ^= static_cast<uint64_t>(image.text.size()) << 32 | static_cast<uint64_t>(image.data.size());
  sum ^= layout_generation * 0xD6E8FEB86659FD93ull;
  return sum;
}

void CachedImage::ComputeSums() {
  size_t total = image.text.size() + image.data.size();
  size_t pages = (total + kSumPageSize - 1) / kSumPageSize;
  page_sums.resize(pages);
  for (size_t p = 0; p < pages; ++p) {
    page_sums[p] = PageSum(p);
  }
  layout_sum = LayoutSum();
}

bool CachedImage::VerifyPage(size_t page) const {
  if (layout_sum != LayoutSum()) {
    return false;
  }
  return page >= page_sums.size() || page_sums[page] == PageSum(page);
}

bool CachedImage::VerifyAll() const {
  if (layout_sum != LayoutSum()) {
    return false;
  }
  size_t total = image.text.size() + image.data.size();
  size_t pages = (total + kSumPageSize - 1) / kSumPageSize;
  if (pages != page_sums.size()) {
    return false;
  }
  for (size_t p = 0; p < pages; ++p) {
    if (page_sums[p] != PageSum(p)) {
      return false;
    }
  }
  return true;
}

ImageCache::ImageCache(uint64_t capacity_bytes) : capacity_bytes_(capacity_bytes) {
  metrics_token_ = MetricsRegistry::Global().AddSource(
      [this](std::vector<std::pair<std::string, uint64_t>>& out) {
        out.emplace_back("cache.hits", stats_.hits.load(std::memory_order_relaxed));
        out.emplace_back("cache.misses", stats_.misses.load(std::memory_order_relaxed));
        out.emplace_back("cache.evictions", stats_.evictions.load(std::memory_order_relaxed));
        out.emplace_back("cache.bytes_cached",
                         stats_.bytes_cached.load(std::memory_order_relaxed));
        out.emplace_back("cache.corruption_rebuilds",
                         stats_.corruption_rebuilds.load(std::memory_order_relaxed));
        out.emplace_back("cache.full_verifies",
                         stats_.full_verifies.load(std::memory_order_relaxed));
        out.emplace_back("cache.pages_verified",
                         stats_.pages_verified.load(std::memory_order_relaxed));
        out.emplace_back("cache.inserts", stats_.inserts.load(std::memory_order_relaxed));
        out.emplace_back("cache.single_flight_waits",
                         stats_.single_flight_waits.load(std::memory_order_relaxed));
      });
}

ImageCache::~ImageCache() { MetricsRegistry::Global().RemoveSource(metrics_token_); }

ImageCache::Shard& ImageCache::ShardFor(const std::string& key) {
  return shards_[Fnv1a(key) & (kShards - 1)];
}

const ImageCache::Shard& ImageCache::ShardFor(const std::string& key) const {
  return shards_[Fnv1a(key) & (kShards - 1)];
}

const CachedImage* ImageCache::Get(const std::string& key) {
  // Tracing here covers only the interesting outcomes: cache.miss /
  // cache.corrupt instants and a cache.verify span around the full
  // checksum walk. A probe-verified warm hit emits nothing — even one
  // timestamp read per hit would blow the tracing overhead budget, and
  // hits stay visible through cache.hits and the enclosing
  // server.instantiate span.
  Shard& shard = ShardFor(key);
  // Pin the image and copy the verification plan under the shard lock, then
  // hash pages outside it: the checksum walk is the expensive part of a warm
  // hit, and it only reads immutable bytes (the pin keeps them alive even if
  // a concurrent Evict wins the race).
  std::shared_ptr<CachedImage> pinned;
  bool full = false;
  size_t probe_begin = 0;
  size_t probes = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
      ++stats_.misses;
      TraceInstant("cache.miss", key);
      return nullptr;
    }
    Entry& entry = it->second;
    CachedImage& stored = *entry.image;
    // Fault site: bit-rot in the cached copy's backing store.
    uint32_t knob = 0;
    if (FaultSim::Trip("cache.bitrot", &knob)) {
      std::vector<uint8_t>& victim =
          stored.image.text.empty() ? stored.image.data : stored.image.text;
      if (!victim.empty()) {
        victim[knob % victim.size()] ^= static_cast<uint8_t>(1u << (1 + knob % 7));
      }
    }
    // Verification policy: the first Get after Put pays a full walk; later
    // warm hits probe a constant number of pages round-robin, so a resident
    // corruption is still caught within size/kProbesPerGet hits. While a
    // bit-rot fault plan is armed we keep full verification so injected
    // corruption is detected on the same Get that trips it.
    size_t pages = stored.page_sums.size();
    if (!entry.verified_once || FaultSim::Armed("cache.bitrot")) {
      full = true;
      entry.verified_once = true;
    } else {
      probes = std::min(kProbesPerGet, pages);
      probe_begin = entry.probe_cursor;
      entry.probe_cursor = pages == 0 ? 0 : (entry.probe_cursor + probes) % pages;
    }
    // Bump LRU while we hold the shard lock (lock order: shard, then LRU).
    {
      std::lock_guard<std::mutex> lru_lock(lru_mu_);
      lru_.splice(lru_.begin(), lru_, entry.lru_it);
    }
    pinned = entry.image;
  }

  bool ok;
  if (full) {
    TraceSpan verify("cache.verify", key);
    ok = pinned->VerifyAll();
    ++stats_.full_verifies;
    stats_.pages_verified += pinned->page_sums.size();
  } else {
    ok = true;
    size_t pages = pinned->page_sums.size();
    for (size_t i = 0; i < probes && ok; ++i) {
      ok = pinned->VerifyPage((probe_begin + i) % pages);
    }
    if (pages == 0) {
      ok = ok && pinned->layout_sum == pinned->LayoutSum();
    }
    stats_.pages_verified += probes;
  }
  if (!ok) {
    // The cached bytes rotted. Drop the entry and report a miss: the caller
    // rebuilds from the blueprint, and the placement solver still holds the
    // old addresses, so the rebuilt image is byte-identical.
    LogMessage(LogLevel::kWarning, "cache", StrCat("checksum mismatch, rebuilding: ", key));
    ++stats_.corruption_rebuilds;
    ++stats_.misses;
    TraceInstant("cache.corrupt", key);
    Evict(key);
    return nullptr;
  }
  ++stats_.hits;
  return pinned.get();
}

const CachedImage* ImageCache::Peek(const std::string& key) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  return it == shard.entries.end() ? nullptr : it->second.image.get();
}

bool ImageCache::Contains(const std::string& key) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.entries.count(key) != 0;
}

std::vector<std::string> ImageCache::Keys() const {
  std::vector<std::string> keys;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, entry] : shard.entries) {
      keys.push_back(key);
    }
  }
  std::sort(keys.begin(), keys.end());  // shard order is hash order; stabilize
  return keys;
}

size_t ImageCache::entry_count() const {
  size_t count = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    count += shard.entries.size();
  }
  return count;
}

const CachedImage* ImageCache::Put(std::string key, CachedImage image) {
  auto owned = std::make_shared<CachedImage>(std::move(image));
  owned->key = key;
  // Sums and the symbol index are built outside any lock: both are O(image)
  // and touch only the new entry.
  owned->ComputeSums();
  owned->image.BuildSymbolIndex();
  const CachedImage* result = owned.get();

  Shard& shard = ShardFor(key);
  std::shared_ptr<CachedImage> replaced;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      // Replacement is an eviction of the old bytes.
      stats_.bytes_cached -= it->second.image->bytes();
      ++stats_.evictions;
      replaced = std::move(it->second.image);
      it->second.image = std::move(owned);
      it->second.verified_once = false;
      it->second.probe_cursor = 0;
      std::lock_guard<std::mutex> lru_lock(lru_mu_);
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    } else {
      std::list<std::string>::iterator lru_it;
      {
        std::lock_guard<std::mutex> lru_lock(lru_mu_);
        lru_.push_front(key);
        lru_it = lru_.begin();
      }
      shard.entries.emplace(key, Entry{std::move(owned), lru_it,
                                       /*verified_once=*/false, /*probe_cursor=*/0});
    }
    stats_.bytes_cached += result->bytes();
    ++stats_.inserts;
  }
  Retire(std::move(replaced));
  TrimToCapacity();
  return result;
}

void ImageCache::Evict(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::shared_ptr<CachedImage> victim;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end()) {
      return;
    }
    stats_.bytes_cached -= it->second.image->bytes();
    ++stats_.evictions;
    TraceInstant("cache.evict", key);
    {
      std::lock_guard<std::mutex> lru_lock(lru_mu_);
      lru_.erase(it->second.lru_it);
    }
    victim = std::move(it->second.image);
    shard.entries.erase(it);
  }
  Retire(std::move(victim));
}

void ImageCache::Retire(std::shared_ptr<CachedImage> image) {
  if (image == nullptr) {
    return;
  }
  // A lease opened before this eviction may still hold the raw pointer;
  // park the image until every lease closes. With no lease open the image
  // dies here (single-threaded behavior unchanged).
  if (readers_.load(std::memory_order_acquire) != 0) {
    std::lock_guard<std::mutex> lock(retired_mu_);
    retired_.push_back(std::move(image));
  }
}

void ImageCache::DrainRetired() const {
  std::vector<std::shared_ptr<CachedImage>> drop;
  {
    std::lock_guard<std::mutex> lock(retired_mu_);
    if (readers_.load(std::memory_order_acquire) != 0) {
      return;  // someone re-opened a lease; they will drain
    }
    drop.swap(retired_);
  }
  // Destroyed outside the lock.
}

void ImageCache::TrimToCapacity() {
  while (stats_.bytes_cached.load(std::memory_order_acquire) > capacity_bytes_) {
    std::string victim;
    {
      std::lock_guard<std::mutex> lru_lock(lru_mu_);
      if (lru_.size() <= 1) {
        return;  // never evict the entry just inserted
      }
      victim = lru_.back();
    }
    Evict(victim);
  }
}

ImageCache::MissJoin ImageCache::JoinBuild(const std::string& key) {
  std::shared_ptr<InFlight> flight;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(key);
    if (it == inflight_.end()) {
      auto fresh = std::make_shared<InFlight>();
      fresh->leader = std::this_thread::get_id();
      fresh->depth = 1;
      inflight_.emplace(key, std::move(fresh));
      return MissJoin{/*leader=*/true, nullptr};
    }
    if (it->second->leader == std::this_thread::get_id()) {
      ++it->second->depth;  // recursive build of the same key stays leader
      return MissJoin{/*leader=*/true, nullptr};
    }
    flight = it->second;
  }
  ++stats_.single_flight_waits;
  TraceInstant("cache.single_flight_wait", key);
  std::unique_lock<std::mutex> wait_lock(flight->mu);
  flight->cv.wait(wait_lock, [&] { return flight->done; });
  return MissJoin{/*leader=*/false, flight->image};
}

void ImageCache::FinishBuild(const std::string& key, const CachedImage* image) {
  std::shared_ptr<InFlight> flight;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(key);
    if (it == inflight_.end()) {
      return;
    }
    if (--it->second->depth > 0) {
      return;  // a recursive leader frame; the outermost publishes
    }
    flight = std::move(it->second);
    inflight_.erase(it);
  }
  {
    std::lock_guard<std::mutex> done_lock(flight->mu);
    flight->done = true;
    flight->image = image;
  }
  flight->cv.notify_all();
}

}  // namespace omos
