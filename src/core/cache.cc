#include "src/core/cache.h"

#include <algorithm>

#include "src/support/faultsim.h"
#include "src/support/log.h"
#include "src/support/strings.h"

namespace omos {

namespace {

// Page granularity for integrity sums. 4 KiB matches the VM page size, so a
// single flipped bit dirties exactly one sum.
constexpr size_t kSumPageSize = 4096;

// Pages probed per warm Get once the entry has been fully verified. Constant,
// so warm-hit cost no longer scales with image size.
constexpr size_t kProbesPerGet = 2;

}  // namespace

std::string MakeCacheKey(std::string_view path, std::string_view spec) {
  std::string key;
  key.reserve(path.size() + kCacheKeySep.size() + spec.size());
  key.append(path);
  key.append(kCacheKeySep);
  key.append(spec);
  return key;
}

bool SplitCacheKey(std::string_view key, std::string_view* path, std::string_view* spec) {
  size_t sep = key.find(kCacheKeySep);
  if (sep == std::string_view::npos) {
    return false;
  }
  if (path != nullptr) {
    *path = key.substr(0, sep);
  }
  if (spec != nullptr) {
    *spec = key.substr(sep + kCacheKeySep.size());
  }
  return true;
}

uint64_t CachedImage::PageSum(size_t page) const {
  // text and data are summed as one contiguous stream of pages.
  size_t begin = page * kSumPageSize;
  size_t end = begin + kSumPageSize;
  uint64_t sum = 0x6b79616765ull + page;  // per-page seed so empty pages differ
  if (begin < image.text.size()) {
    size_t take = std::min(end, image.text.size()) - begin;
    sum = HashBytes(image.text.data() + begin, take, sum);
  }
  size_t data_begin = begin > image.text.size() ? begin - image.text.size() : 0;
  size_t data_end = end > image.text.size() ? end - image.text.size() : 0;
  if (data_begin < image.data.size() && data_end > 0) {
    size_t take = std::min(data_end, image.data.size()) - data_begin;
    sum = HashBytes(image.data.data() + data_begin, take, sum);
  }
  return sum;
}

uint64_t CachedImage::LayoutSum() const {
  uint64_t sum = (static_cast<uint64_t>(image.text_base) << 32 | image.data_base) *
                 0x9E3779B97F4A7C15ull;
  sum ^= static_cast<uint64_t>(image.entry) * 0xBF58476D1CE4E5B9ull;
  sum ^= static_cast<uint64_t>(image.bss_size) * 0x94D049BB133111EBull;
  sum ^= static_cast<uint64_t>(image.text.size()) << 32 | static_cast<uint64_t>(image.data.size());
  return sum;
}

void CachedImage::ComputeSums() {
  size_t total = image.text.size() + image.data.size();
  size_t pages = (total + kSumPageSize - 1) / kSumPageSize;
  page_sums.resize(pages);
  for (size_t p = 0; p < pages; ++p) {
    page_sums[p] = PageSum(p);
  }
  layout_sum = LayoutSum();
}

bool CachedImage::VerifyPage(size_t page) const {
  if (layout_sum != LayoutSum()) {
    return false;
  }
  return page >= page_sums.size() || page_sums[page] == PageSum(page);
}

bool CachedImage::VerifyAll() const {
  if (layout_sum != LayoutSum()) {
    return false;
  }
  size_t total = image.text.size() + image.data.size();
  size_t pages = (total + kSumPageSize - 1) / kSumPageSize;
  if (pages != page_sums.size()) {
    return false;
  }
  for (size_t p = 0; p < pages; ++p) {
    if (page_sums[p] != PageSum(p)) {
      return false;
    }
  }
  return true;
}

const CachedImage* ImageCache::Get(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  Entry& entry = it->second;
  CachedImage& stored = *entry.image;
  // Fault site: bit-rot in the cached copy's backing store.
  uint32_t knob = 0;
  if (FaultSim::Trip("cache.bitrot", &knob)) {
    std::vector<uint8_t>& victim =
        stored.image.text.empty() ? stored.image.data : stored.image.text;
    if (!victim.empty()) {
      victim[knob % victim.size()] ^= static_cast<uint8_t>(1u << (1 + knob % 7));
    }
  }
  // Verification policy: the first Get after Put pays a full walk; later
  // warm hits probe a constant number of pages round-robin, so a resident
  // corruption is still caught within size/kProbesPerGet hits. While a
  // bit-rot fault plan is armed we keep full verification so injected
  // corruption is detected on the same Get that trips it.
  bool ok;
  if (!entry.verified_once || FaultSim::Armed("cache.bitrot")) {
    ok = stored.VerifyAll();
    ++stats_.full_verifies;
    stats_.pages_verified += stored.page_sums.size();
    entry.verified_once = true;
  } else {
    ok = true;
    size_t pages = stored.page_sums.size();
    size_t probes = std::min(kProbesPerGet, pages);
    for (size_t i = 0; i < probes && ok; ++i) {
      ok = stored.VerifyPage(entry.probe_cursor);
      entry.probe_cursor = pages == 0 ? 0 : (entry.probe_cursor + 1) % pages;
    }
    if (pages == 0) {
      ok = ok && stored.layout_sum == stored.LayoutSum();
    }
    stats_.pages_verified += probes;
  }
  if (!ok) {
    // The cached bytes rotted. Drop the entry and report a miss: the caller
    // rebuilds from the blueprint, and the placement solver still holds the
    // old addresses, so the rebuilt image is byte-identical.
    LogMessage(LogLevel::kWarning, "cache", StrCat("checksum mismatch, rebuilding: ", key));
    ++stats_.corruption_rebuilds;
    ++stats_.misses;
    Evict(key);
    return nullptr;
  }
  ++stats_.hits;
  lru_.erase(entry.lru_it);
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
  return entry.image.get();
}

const CachedImage* ImageCache::Peek(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : it->second.image.get();
}

std::vector<std::string> ImageCache::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    keys.push_back(key);
  }
  return keys;
}

const CachedImage* ImageCache::Put(std::string key, CachedImage image) {
  Evict(key);
  auto owned = std::make_unique<CachedImage>(std::move(image));
  owned->key = key;
  owned->ComputeSums();
  stats_.bytes_cached += owned->bytes();
  lru_.push_front(key);
  const CachedImage* result = owned.get();
  entries_.emplace(std::move(key), Entry{std::move(owned), lru_.begin(),
                                         /*verified_once=*/false, /*probe_cursor=*/0});
  TrimToCapacity();
  return result;
}

void ImageCache::Evict(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return;
  }
  stats_.bytes_cached -= it->second.image->bytes();
  ++stats_.evictions;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void ImageCache::TrimToCapacity() {
  while (stats_.bytes_cached > capacity_bytes_ && lru_.size() > 1) {
    // Evict least-recently-used (never the entry just inserted).
    std::string victim = lru_.back();
    Evict(victim);
  }
}

}  // namespace omos
