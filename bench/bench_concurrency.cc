// Concurrent-server throughput (PR 3): warm-hit Instantiate scaling across
// client threads, single-flight cold misses, and ServeAsync request
// dispatch. google-benchmark's ThreadRange runs the same body on 1/2/4/8
// threads; items_per_second is the aggregate Instantiate rate, so the
// 8-thread row divided by the 1-thread row is the scaling factor the issue's
// acceptance criterion asks about (>= 3x warm-hit throughput at 8 threads).
#include <atomic>
#include <string>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "bench/bench_metrics.h"
#include "src/core/cache.h"
#include "src/ipc/message.h"
#include "src/support/thread_pool.h"

namespace omos {
namespace {

// One shared world per benchmark run; built on the first thread in, torn
// down by the last one out (benchmark threads all enter the function).
OmosWorld* g_world = nullptr;
MetricsDelta* g_delta = nullptr;

void BM_WarmInstantiateThreads(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_world = new OmosWorld(MakeOmosWorld());
    g_world->Warm();
    g_delta = new MetricsDelta();
  }
  // google-benchmark barriers threads between setup and the loop.
  for (auto _ : state) {
    ImageCache::ReadLease lease(g_world->server->cache());
    benchmark::DoNotOptimize(BENCH_UNWRAP(g_world->server->Instantiate("/bin/ls", {}, nullptr)));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    g_delta->Export(state, {"cache.hits"});
    delete g_delta;
    g_delta = nullptr;
    delete g_world;
    g_world = nullptr;
  }
}
BENCHMARK(BM_WarmInstantiateThreads)->ThreadRange(1, 8)->UseRealTime();

// All threads miss the same cold key at once; single-flight elects one
// builder. items == instantiations served, not builds performed.
void BM_ColdMissSingleFlight(benchmark::State& state) {
  if (state.thread_index() == 0) {
    g_world = new OmosWorld(MakeOmosWorld());
    g_delta = new MetricsDelta();
  }
  uint64_t round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    if (state.thread_index() == 0) {
      g_world->server->cache().Evict(
          MakeCacheKey("/bin/ls", Specialization{}.ToKeyString()));
    }
    state.ResumeTiming();
    ImageCache::ReadLease lease(g_world->server->cache());
    benchmark::DoNotOptimize(BENCH_UNWRAP(g_world->server->Instantiate("/bin/ls", {}, nullptr)));
    ++round;
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    g_delta->Export(state, {"cache.inserts", "cache.single_flight_waits"});
    delete g_delta;
    g_delta = nullptr;
    delete g_world;
    g_world = nullptr;
  }
}
BENCHMARK(BM_ColdMissSingleFlight)->ThreadRange(1, 8)->UseRealTime();

// Request execution through the thread pool: encode a kListNamespace
// request, dispatch via ServeAsync, wait for the reply callback.
void BM_ServeAsyncListNamespace(benchmark::State& state) {
  OmosWorld world = MakeOmosWorld();
  OmosRequest request;
  request.op = OmosOp::kListNamespace;
  request.path = "/bin";
  std::vector<uint8_t> bytes = EncodeRequest(request);
  MetricsDelta delta;
  for (auto _ : state) {
    std::atomic<bool> done{false};
    world.server->ServeAsync(bytes, [&](std::vector<uint8_t> reply) {
      benchmark::DoNotOptimize(reply.size());
      done.store(true, std::memory_order_release);
    });
    while (!done.load(std::memory_order_acquire)) {
    }
  }
  state.SetItemsProcessed(state.iterations());
  delta.Export(state, {"server.requests", "pool.tasks_submitted", "pool.steals"});
}
BENCHMARK(BM_ServeAsyncListNamespace)->UseRealTime();

}  // namespace
}  // namespace omos
