// Interpreter throughput: host-seconds per simulated instruction, for the
// three dominant instruction mixes. Establishes that the simulated-cycle
// results in the other benches are cheap to regenerate.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/vasm/assembler.h"

namespace omos {
namespace {

LinkedImage BuildLoop(const char* body, int iterations) {
  std::string source = StrCat(R"(
.text
.global _start
_start:
  movi r4, 0
loop:
)", body, R"(
  addi r4, r4, 1
  movi r5, )", iterations, R"(
  blt r4, r5, loop
  movi r0, 0
  sys 0
.data
.align 4
word: .word 7
)");
  ObjectFile obj = BENCH_UNWRAP(Assemble(source, "loop.o"));
  Module m = Module::FromObject(std::make_shared<const ObjectFile>(std::move(obj)));
  LayoutSpec layout;
  layout.entry_symbol = "_start";
  return BENCH_UNWRAP(LinkImage(m, layout, "loop"));
}

void RunLoopBench(benchmark::State& state, const char* body) {
  LinkedImage image = BuildLoop(body, 2000);
  for (auto _ : state) {
    Kernel kernel;
    Task& task = kernel.CreateTask("bench");
    BENCH_CHECK(MapLinkedImage(kernel, task, image, ""));
    std::vector<std::string> args{"bench"};
    BENCH_CHECK(StartTask(kernel, task, image.entry, args));
    BENCH_CHECK(kernel.RunTask(task));
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(task.instructions_retired()));
  }
}

void BM_InterpAlu(benchmark::State& state) {
  RunLoopBench(state, "  add r1, r1, r4\n  xor r2, r1, r4\n  mul r3, r2, r4\n");
}
BENCHMARK(BM_InterpAlu);

void BM_InterpMemory(benchmark::State& state) {
  RunLoopBench(state, "  lea r1, word\n  ld r2, [r1+0]\n  st r2, [r1+0]\n");
}
BENCHMARK(BM_InterpMemory);

void BM_InterpCalls(benchmark::State& state) {
  LinkedImage image = BuildLoop("  call helper\n", 2000);
  // Rebuild with a helper function included.
  std::string source = StrCat(R"(
.text
.global _start
_start:
  movi r4, 0
loop:
  call helper
  addi r4, r4, 1
  movi r5, 2000
  blt r4, r5, loop
  movi r0, 0
  sys 0
helper:
  ret
)");
  ObjectFile obj = BENCH_UNWRAP(Assemble(source, "calls.o"));
  Module m = Module::FromObject(std::make_shared<const ObjectFile>(std::move(obj)));
  LayoutSpec layout;
  layout.entry_symbol = "_start";
  image = BENCH_UNWRAP(LinkImage(m, layout, "calls"));
  for (auto _ : state) {
    Kernel kernel;
    Task& task = kernel.CreateTask("bench");
    BENCH_CHECK(MapLinkedImage(kernel, task, image, ""));
    std::vector<std::string> args{"bench"};
    BENCH_CHECK(StartTask(kernel, task, image.entry, args));
    BENCH_CHECK(kernel.RunTask(task));
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<int64_t>(task.instructions_retired()));
  }
}
BENCHMARK(BM_InterpCalls);

}  // namespace
}  // namespace omos
