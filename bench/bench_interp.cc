// Interpreter throughput: host-seconds per simulated instruction, legacy
// per-instruction interpreter vs. the predecoded block engine, for the
// three dominant instruction mixes.
//
// Steady-state methodology: each mix is an infinite loop, mapped ONCE into
// a warm kernel; measurement slices re-enter RunTask with an instruction
// budget, so the numbers cover pure execution (warm block cache, warm TLB)
// with no per-iteration kernel/map setup. The gates CI enforces:
//
//   PASS: interp alu speedup >= 3x       (engine vs legacy, ALU mix)
//   PASS: interp memory speedup >= 2x    (engine vs legacy, ld/st mix)
//   PASS: interp cycle identity          (simulated results byte-identical)
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/engine/engine.h"
#include "src/os/loader.h"
#include "src/support/metrics.h"
#include "src/vasm/assembler.h"

namespace omos {
namespace {

struct Mix {
  const char* name;
  const char* body;  // loop body; r4/r5 are the induction registers
};

const Mix kMixes[] = {
    {"alu", "  add r1, r1, r4\n  xor r2, r1, r4\n  mul r3, r2, r4\n"},
    {"memory", "  lea r1, word\n  ld r2, [r1+0]\n  st r2, [r1+0]\n"},
    {"calls", "  call helper\n  call helper\n"},
};

LinkedImage BuildImage(const Mix& mix, int iterations) {
  // iterations == 0 builds the steady-state variant: an unbounded loop the
  // harness slices with RunTask instruction budgets.
  std::string loop_exit = iterations == 0
                              ? std::string("  br loop\n")
                              : StrCat("  addi r4, r4, 1\n  movi r5, ", iterations,
                                       "\n  blt r4, r5, loop\n  movi r0, 0\n  sys 0\n");
  std::string source = StrCat(R"(
.text
.global _start
_start:
  movi r4, 0
loop:
)", mix.body, loop_exit, R"(
helper:
  ret
.data
.align 4
word: .word 7
)");
  ObjectFile obj = BENCH_UNWRAP(Assemble(source, "loop.o"));
  Module m = Module::FromObject(std::make_shared<const ObjectFile>(std::move(obj)));
  LayoutSpec layout;
  layout.entry_symbol = "_start";
  return BENCH_UNWRAP(LinkImage(m, layout, "loop"));
}

struct World {
  std::unique_ptr<Kernel> kernel;
  Task* task = nullptr;
};

World MapOnce(const LinkedImage& image, EngineMode mode) {
  World w;
  w.kernel = std::make_unique<Kernel>();
  w.kernel->SetEngineMode(mode);
  w.task = &w.kernel->CreateTask("bench");
  BENCH_CHECK(MapLinkedImage(*w.kernel, *w.task, image, ""));
  std::vector<std::string> args{"bench"};
  BENCH_CHECK(StartTask(*w.kernel, *w.task, image.entry, args));
  return w;
}

// One budgeted slice of the steady-state loop. The budget error is the
// expected outcome; anything else is a bench bug.
void RunSlice(World& w, uint64_t insns) {
  Result<void> run = w.kernel->RunTask(*w.task, insns);
  if (run.ok() || w.task->state() != TaskState::kRunnable) {
    std::fprintf(stderr, "steady-state loop stopped unexpectedly\n");
    std::abort();
  }
}

// Steady-state throughput in simulated instructions per host second.
double MeasureRate(const LinkedImage& image, EngineMode mode) {
  World w = MapOnce(image, mode);
  constexpr uint64_t kSlice = 2'000'000;
  RunSlice(w, kSlice);  // warm-up: decode blocks, fill TLB, touch pages
  uint64_t before = w.task->instructions_retired();
  auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    RunSlice(w, kSlice);
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  } while (elapsed < 0.25);
  return static_cast<double>(w.task->instructions_retired() - before) / elapsed;
}

struct SimResult {
  int exit_code = 0;
  uint64_t user = 0;
  uint64_t sys = 0;
  uint64_t retired = 0;
  std::string output;

  bool operator==(const SimResult&) const = default;
};

// Run the bounded variant to completion and capture every simulated-side
// observable the paper's tables are built from.
SimResult RunBounded(const LinkedImage& image, EngineMode mode) {
  World w = MapOnce(image, mode);
  BENCH_CHECK(w.kernel->RunTask(*w.task));
  return SimResult{w.task->exit_code(), w.task->user_cycles(), w.task->sys_cycles(),
                   w.task->instructions_retired(), w.task->output()};
}

int Main() {
  std::printf("Interpreter throughput: legacy CpuStep vs predecoded block engine\n");
  std::printf("(steady state: map once, budgeted RunTask slices; Minsns/s = simulated\n");
  std::printf(" instructions retired per host second)\n\n");
  std::printf("%-8s %14s %14s %9s\n", "mix", "interp Mi/s", "blocks Mi/s", "speedup");

  EngineMetrics& em = GetEngineMetrics();
  uint64_t tlb_hits0 = em.tlb_hits->value();
  uint64_t tlb_misses0 = em.tlb_misses->value();
  uint64_t decoded0 = em.blocks_decoded->value();

  bool ok = true;
  double speedup_by_mix[3] = {0, 0, 0};
  for (size_t i = 0; i < 3; ++i) {
    LinkedImage image = BuildImage(kMixes[i], 0);
    double interp = MeasureRate(image, EngineMode::kInterp);
    double blocks = MeasureRate(image, EngineMode::kBlocks);
    speedup_by_mix[i] = blocks / interp;
    std::printf("%-8s %14.1f %14.1f %8.2fx\n", kMixes[i].name, interp / 1e6, blocks / 1e6,
                speedup_by_mix[i]);
  }

  std::printf("\nengine counters over the blocks runs: %llu blocks decoded, "
              "tlb %llu hits / %llu misses\n",
              static_cast<unsigned long long>(em.blocks_decoded->value() - decoded0),
              static_cast<unsigned long long>(em.tlb_hits->value() - tlb_hits0),
              static_cast<unsigned long long>(em.tlb_misses->value() - tlb_misses0));

  // Differential check: the simulated-cycle results the other benches
  // report must be byte-identical between engines.
  bool identical = true;
  for (const Mix& mix : kMixes) {
    LinkedImage image = BuildImage(mix, 2000);
    SimResult interp = RunBounded(image, EngineMode::kInterp);
    SimResult blocks = RunBounded(image, EngineMode::kBlocks);
    if (!(interp == blocks)) {
      identical = false;
      std::printf("MISMATCH %s: interp{exit=%d user=%llu sys=%llu retired=%llu} "
                  "blocks{exit=%d user=%llu sys=%llu retired=%llu}\n",
                  mix.name, interp.exit_code, static_cast<unsigned long long>(interp.user),
                  static_cast<unsigned long long>(interp.sys),
                  static_cast<unsigned long long>(interp.retired), blocks.exit_code,
                  static_cast<unsigned long long>(blocks.user),
                  static_cast<unsigned long long>(blocks.sys),
                  static_cast<unsigned long long>(blocks.retired));
    }
  }

  std::printf("\n");
  auto gate = [&](bool pass, const std::string& what) {
    std::printf("%s: %s\n", pass ? "PASS" : "FAIL", what.c_str());
    ok = ok && pass;
  };
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f", speedup_by_mix[0]);
  gate(speedup_by_mix[0] >= 3.0, StrCat("interp alu speedup ", buf, "x >= 3x"));
  std::snprintf(buf, sizeof buf, "%.2f", speedup_by_mix[1]);
  gate(speedup_by_mix[1] >= 2.0, StrCat("interp memory speedup ", buf, "x >= 2x"));
  std::snprintf(buf, sizeof buf, "%.2f", speedup_by_mix[2]);
  std::printf("INFO: interp calls speedup %sx (not gated)\n", buf);
  gate(identical, "interp cycle identity across engines");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace omos

int main() { return omos::Main(); }
