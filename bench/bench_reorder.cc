// §4.1 / [14]: "reordering code based on function usage in order to improve
// locality of reference ... we achieved average speedups in excess of 10%."
//
// A synthetic application with 64 padded routines (~600 bytes each) calls a
// scattered hot subset in a loop. OMOS first instantiates it with the
// "monitor" specialization (wrappers log every call), derives the preferred
// order, then instantiates with "reorder". The reordered layout touches far
// fewer text pages; with demand-paging cost that is a >10% elapsed win.
#include <cstdio>
#include <sstream>

#include "bench/bench_common.h"
#include "src/vasm/assembler.h"

namespace omos {
namespace {

constexpr int kRoutines = 64;
constexpr int kHotStride = 6;  // every 6th routine is hot -> scattered
constexpr int kLoops = 60;

std::string RoutineSource(int i) {
  std::ostringstream out;
  out << ".text\n.global hc_" << i << "\nhc_" << i << ":\n";
  out << "  movi r1, " << (i + 2) << "\n  mul r0, r0, r1\n  addi r0, r0, " << (i % 9) << "\n";
  out << "  ret\n";
  out << ".space 600\n";  // realistic routine footprint -> multiple per page
  return out.str();
}

std::string MainSource() {
  std::ostringstream out;
  out << ".text\n.global main\nmain:\n  push lr\n  push r4\n  push r5\n";
  out << "  movi r4, 0\n";                       // loop counter
  out << "  movi r5, 1\n";                       // accumulator
  out << "main_loop:\n";
  for (int i = 0; i < kRoutines; i += kHotStride) {
    out << "  mov r0, r5\n  call hc_" << i << "\n  mov r5, r0\n";
  }
  out << "  addi r4, r4, 1\n";
  out << "  movi r1, " << kLoops << "\n";
  out << "  blt r4, r1, main_loop\n";
  out << "  movi r0, 0\n  pop r5\n  pop r4\n  pop lr\n  ret\n";
  return out.str();
}

struct RunStats {
  uint64_t user = 0;
  uint64_t sys = 0;
  size_t pages = 0;
};

RunStats RunSpec(OmosServer& server, Kernel& kernel, const Specialization& spec) {
  TaskId id = BENCH_UNWRAP(server.IntegratedExec("/bin/hotcold", {"hotcold"}, spec));
  Task* task = kernel.FindTask(id);
  BENCH_CHECK(kernel.RunTask(*task));
  RunStats stats{task->user_cycles(), task->sys_cycles(), task->touched_text_pages()};
  server.ReleaseTask(id);
  kernel.DestroyTask(id);
  return stats;
}

}  // namespace
}  // namespace omos

int main() {
  using namespace omos;
  Kernel kernel;
  OmosServer server(kernel);

  ObjectFile crt0 = BENCH_UNWRAP(Assemble(
      ".text\n.global _start\n_start:\n  call main\n  sys 0\n", "crt0.o"));
  BENCH_CHECK(server.AddFragment("/lib/crt0.o", std::move(crt0)));
  std::string meta = "(merge /lib/crt0.o /obj/hc_main.o";
  ObjectFile main_obj = BENCH_UNWRAP(Assemble(MainSource(), "hc_main.o"));
  BENCH_CHECK(server.AddFragment("/obj/hc_main.o", std::move(main_obj)));
  for (int i = 0; i < kRoutines; ++i) {
    ObjectFile obj = BENCH_UNWRAP(Assemble(RoutineSource(i), StrCat("hc_", i, ".o")));
    std::string path = StrCat("/obj/hc_", i, ".o");
    BENCH_CHECK(server.AddFragment(path, std::move(obj)));
    meta += " " + path;
  }
  meta += ")";
  BENCH_CHECK(server.DefineMeta("/bin/hotcold", meta));

  std::printf("=== Function reordering by observed usage (sec. 4.1 / [14]) ===\n\n");

  // Unoptimized baseline layout (archive order).
  RunStats plain = RunSpec(server, kernel, {});

  // Monitored run gathers usage; its own cost shows monitoring overhead.
  RunStats monitored = RunSpec(server, kernel, Specialization{"monitor", {}});
  BENCH_CHECK(server.DerivePreferredOrder("/bin/hotcold"));

  // Reordered layout.
  RunStats reordered = RunSpec(server, kernel, Specialization{"reorder", {}});

  auto print = [](const char* name, const RunStats& s) {
    std::printf("  %-22s user=%8llu  sys=%8llu  elapsed=%8llu  text-pages=%zu\n", name,
                static_cast<unsigned long long>(s.user), static_cast<unsigned long long>(s.sys),
                static_cast<unsigned long long>(s.user + s.sys), s.pages);
  };
  print("original order", plain);
  print("monitored (overhead)", monitored);
  print("usage-reordered", reordered);

  double speedup = 1.0 - static_cast<double>(reordered.user + reordered.sys) /
                             static_cast<double>(plain.user + plain.sys);
  std::printf("\n  reordering speedup: %.1f%%  (paper reports >10%% average)\n", speedup * 100.0);
  std::printf("  touched text pages: %zu -> %zu\n", plain.pages, reordered.pages);
  return speedup > 0.0 ? 0 : 1;
}
