// §3.3 claim: symbol-space "views" allow fast, efficient, incremental
// modification of a symbol namespace. Compares applying a chain of module
// operations lazily (one materialization at the end) against eagerly
// materializing after every operation.
#include <benchmark/benchmark.h>

#include <set>

#include "bench/bench_common.h"

namespace omos {
namespace {

Module BigModule() {
  static const Module* module = [] {
    return new Module(BENCH_UNWRAP(ModuleFromArchive(FullWorkloads().libc)));
  }();
  return *module;
}

// libc re-annotated in default-hidden mode: only defined globals some other
// member actually references stay exported (the cross-member API); every
// internal helper prunes out of the symbol space at FromObject time.
std::vector<ObjectFile> DefaultHiddenLibc() {
  const Archive& libc = FullWorkloads().libc;
  std::set<std::string> wanted;
  for (const ObjectFile& member : libc.members()) {
    for (const Symbol* ref : member.References()) {
      wanted.insert(ref->name);
    }
  }
  std::vector<ObjectFile> out;
  for (const ObjectFile& member : libc.members()) {
    ObjectFile copy = member;
    copy.set_default_hidden(true);
    for (Symbol& sym : copy.mutable_symbols()) {
      if (sym.defined && sym.binding != SymbolBinding::kLocal && wanted.count(sym.name) != 0) {
        sym.visibility = SymbolVisibility::kExported;
      }
    }
    out.push_back(std::move(copy));
  }
  return out;
}

// Symbol-space size with and without visibility pruning: the default-hidden
// module carries exports/refs tables shrunk to the real API, so every
// SymbolSpace copy a view chain or merge makes moves fewer entries — the
// symbol-table analogue of bench_dispatch_memory's static column.
void BM_SpaceMaterializeAllExported(benchmark::State& state) {
  Module base = BigModule();
  size_t exports = 0;
  for (auto _ : state) {
    Module m = base.Rename("^c_0$", "r0", RenameWhich::kBoth);  // force a materialization
    const SymbolSpace* space = BENCH_UNWRAP(m.Space());
    exports = space->exports.size();
    benchmark::DoNotOptimize(space);
  }
  state.counters["exports"] = static_cast<double>(exports);
}
BENCHMARK(BM_SpaceMaterializeAllExported)->Unit(benchmark::kMicrosecond);

void BM_SpaceMaterializeDefaultHidden(benchmark::State& state) {
  static const Module* hidden_module =
      new Module(BENCH_UNWRAP(ModuleFromObjects(DefaultHiddenLibc())));
  Module base = *hidden_module;
  size_t exports = 0;
  for (auto _ : state) {
    Module m = base.Rename("^c_0$", "r0", RenameWhich::kBoth);
    const SymbolSpace* space = BENCH_UNWRAP(m.Space());
    exports = space->exports.size();
    benchmark::DoNotOptimize(space);
  }
  state.counters["exports"] = static_cast<double>(exports);
}
BENCHMARK(BM_SpaceMaterializeDefaultHidden)->Unit(benchmark::kMicrosecond);

void BM_ViewChainLazy(benchmark::State& state) {
  Module base = BigModule();
  int64_t ops = state.range(0);
  for (auto _ : state) {
    Module m = base;
    for (int64_t i = 0; i < ops; ++i) {
      switch (i % 4) {
        case 0:
          m = m.Rename(StrCat("^c_", i, "$"), StrCat("renamed_", i), RenameWhich::kBoth);
          break;
        case 1:
          m = m.Hide(StrCat("^c_", i, "$"));
          break;
        case 2:
          m = m.CopyAs(StrCat("^c_", i, "$"), StrCat("copy_", i));
          break;
        default:
          m = m.Freeze(StrCat("^c_", i, "$"));
          break;
      }
    }
    benchmark::DoNotOptimize(BENCH_UNWRAP(m.Space()));
  }
}
BENCHMARK(BM_ViewChainLazy)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_ViewChainEagerCopy(benchmark::State& state) {
  Module base = BigModule();
  int64_t ops = state.range(0);
  for (auto _ : state) {
    Module m = base;
    for (int64_t i = 0; i < ops; ++i) {
      switch (i % 4) {
        case 0:
          m = m.Rename(StrCat("^c_", i, "$"), StrCat("renamed_", i), RenameWhich::kBoth);
          break;
        case 1:
          m = m.Hide(StrCat("^c_", i, "$"));
          break;
        case 2:
          m = m.CopyAs(StrCat("^c_", i, "$"), StrCat("copy_", i));
          break;
        default:
          m = m.Freeze(StrCat("^c_", i, "$"));
          break;
      }
      // Force materialization after every op (what a naive symbol-table
      // copy per operation costs).
      benchmark::DoNotOptimize(BENCH_UNWRAP(m.Space()));
    }
  }
}
BENCHMARK(BM_ViewChainEagerCopy)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace omos
