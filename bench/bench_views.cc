// §3.3 claim: symbol-space "views" allow fast, efficient, incremental
// modification of a symbol namespace. Compares applying a chain of module
// operations lazily (one materialization at the end) against eagerly
// materializing after every operation.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace omos {
namespace {

Module BigModule() {
  static const Module* module = [] {
    return new Module(BENCH_UNWRAP(ModuleFromArchive(FullWorkloads().libc)));
  }();
  return *module;
}

void BM_ViewChainLazy(benchmark::State& state) {
  Module base = BigModule();
  int64_t ops = state.range(0);
  for (auto _ : state) {
    Module m = base;
    for (int64_t i = 0; i < ops; ++i) {
      switch (i % 4) {
        case 0:
          m = m.Rename(StrCat("^c_", i, "$"), StrCat("renamed_", i), RenameWhich::kBoth);
          break;
        case 1:
          m = m.Hide(StrCat("^c_", i, "$"));
          break;
        case 2:
          m = m.CopyAs(StrCat("^c_", i, "$"), StrCat("copy_", i));
          break;
        default:
          m = m.Freeze(StrCat("^c_", i, "$"));
          break;
      }
    }
    benchmark::DoNotOptimize(BENCH_UNWRAP(m.Space()));
  }
}
BENCHMARK(BM_ViewChainLazy)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_ViewChainEagerCopy(benchmark::State& state) {
  Module base = BigModule();
  int64_t ops = state.range(0);
  for (auto _ : state) {
    Module m = base;
    for (int64_t i = 0; i < ops; ++i) {
      switch (i % 4) {
        case 0:
          m = m.Rename(StrCat("^c_", i, "$"), StrCat("renamed_", i), RenameWhich::kBoth);
          break;
        case 1:
          m = m.Hide(StrCat("^c_", i, "$"));
          break;
        case 2:
          m = m.CopyAs(StrCat("^c_", i, "$"), StrCat("copy_", i));
          break;
        default:
          m = m.Freeze(StrCat("^c_", i, "$"));
          break;
      }
      // Force materialization after every op (what a naive symbol-table
      // copy per operation costs).
      benchmark::DoNotOptimize(BENCH_UNWRAP(m.Space()));
    }
  }
}
BENCHMARK(BM_ViewChainEagerCopy)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace omos
