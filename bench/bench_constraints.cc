// §3.5: the prioritized address-constraint system. Measures placement
// throughput, the reuse (strong-constraint) fast path, and conflict
// resolution when weak hints collide.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/constraints.h"

namespace omos {
namespace {

void BM_PlaceFresh(benchmark::State& state) {
  int64_t i = 0;
  ConstraintSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BENCH_UNWRAP(solver.Place(StrCat("lib", i++), 64 * 1024, 16 * 1024)));
  }
}
BENCHMARK(BM_PlaceFresh);

void BM_PlaceReused(benchmark::State& state) {
  ConstraintSolver solver;
  BENCH_UNWRAP(solver.Place("libc", 256 * 1024, 64 * 1024));
  for (auto _ : state) {
    Placement p = BENCH_UNWRAP(solver.Place("libc", 256 * 1024, 64 * 1024));
    if (!p.reused) {
      state.SkipWithError("expected placement reuse");
    }
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_PlaceReused);

void BM_PlaceConflictingHints(benchmark::State& state) {
  int64_t i = 0;
  ConstraintSolver solver;
  PlacementHints hint;
  hint.text_base = 0x01000000;  // everyone asks for the same spot
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BENCH_UNWRAP(solver.Place(StrCat("clash", i++), 64 * 1024, 16 * 1024, hint)));
  }
  state.counters["conflicts_recorded"] = static_cast<double>(solver.conflicts().size());
}
BENCHMARK(BM_PlaceConflictingHints);

}  // namespace
}  // namespace omos
