// §3.1/§3.2 claim: caching bound+relocated images avoids repeating work.
// Measures server-side instantiation: cold (construct, link, place) vs warm
// (cache lookup only), in wall time and simulated work cycles.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/cache.h"
#include "src/os/loader.h"
#include "src/os/sim_fs.h"
#include "src/store/image_store.h"

namespace omos {
namespace {

void BM_InstantiateCold(benchmark::State& state) {
  uint64_t work = 0;
  uint64_t builds = 0;
  for (auto _ : state) {
    state.PauseTiming();
    OmosWorld world = MakeOmosWorld();
    state.ResumeTiming();
    uint64_t w = 0;
    benchmark::DoNotOptimize(BENCH_UNWRAP(world.server->Instantiate("/bin/ls", {}, &w)));
    work += w;
    ++builds;
  }
  state.counters["sim_work_cycles"] =
      benchmark::Counter(static_cast<double>(work) / static_cast<double>(builds));
}
BENCHMARK(BM_InstantiateCold)->Unit(benchmark::kMillisecond);

void BM_InstantiateWarm(benchmark::State& state) {
  OmosWorld world = MakeOmosWorld();
  world.Warm();
  uint64_t work = 0;
  for (auto _ : state) {
    uint64_t w = 0;
    benchmark::DoNotOptimize(BENCH_UNWRAP(world.server->Instantiate("/bin/ls", {}, &w)));
    work += w;
  }
  state.counters["sim_work_cycles"] = benchmark::Counter(static_cast<double>(work));
  state.counters["cache_hits"] =
      benchmark::Counter(static_cast<double>(world.server->cache_stats().hits));
}
BENCHMARK(BM_InstantiateWarm)->Unit(benchmark::kMicrosecond);

// Warm-hit cost as a function of image size: Get must be (amortized) O(1),
// not O(bytes). Entries are synthetic images of `range(0)` KiB of text.
void BM_WarmGetBySize(benchmark::State& state) {
  ImageCache cache;
  CachedImage synthetic;
  synthetic.image.name = "synthetic";
  synthetic.image.text_base = 0x00100000;
  synthetic.image.text.assign(static_cast<size_t>(state.range(0)) * 1024, 0xAB);
  synthetic.image.data.assign(4096, 0xCD);
  cache.Put("synthetic", std::move(synthetic));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Get("synthetic"));
  }
  state.SetComplexityN(state.range(0));
  state.counters["image_kib"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_WarmGetBySize)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Complexity()
    ->Unit(benchmark::kNanosecond);

// Warm-exec data mapping cost as a function of data-segment size. Eager
// mapping copies every initialized-data byte per exec (O(bytes)); CoW maps
// the cached master's frames read-only-shared and only pays per-page
// bookkeeping plus the pages the task actually writes, so its per-exec cost
// stays flat as the data segment grows.
void RunWarmExec(benchmark::State& state, bool cow) {
  Kernel kernel;
  LinkedImage image;
  image.name = "warm";
  image.text_base = 0x00100000;
  image.text.assign(kPageSize, 0x90);
  image.data_base = 0x00200000;
  image.data.assign(static_cast<size_t>(state.range(0)) * 1024, 0xCD);
  SegmentImage text = BENCH_UNWRAP(SegmentImage::Create(kernel.phys(), image.text));
  SegmentImage data = BENCH_UNWRAP(SegmentImage::Create(kernel.phys(), image.data));
  int n = 0;
  for (auto _ : state) {
    Task& task = kernel.CreateTask(StrCat("warm", n++));
    BENCH_CHECK(MapImageWithSharedText(kernel, task, image, text, cow ? &data : nullptr));
    // The realistic warm-exec write pattern: a few dirtied data pages, the
    // rest of the segment untouched.
    BENCH_CHECK(task.space().Write8(image.data_base, 1));
    BENCH_CHECK(
        task.space().Write8(image.data_base + static_cast<uint32_t>(image.data.size()) - 1, 2));
    kernel.DestroyTask(task.id());
  }
  state.SetComplexityN(state.range(0));
  state.counters["data_kib"] = static_cast<double>(state.range(0));
}

void BM_ExecWarmCoW(benchmark::State& state) { RunWarmExec(state, true); }
BENCHMARK(BM_ExecWarmCoW)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(4096)
    ->Complexity()
    ->Unit(benchmark::kMicrosecond);

void BM_ExecWarmEager(benchmark::State& state) { RunWarmExec(state, false); }
BENCHMARK(BM_ExecWarmEager)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(4096)
    ->Complexity()
    ->Unit(benchmark::kMicrosecond);

// Specializations are separate cache entries: flipping between two
// specializations of the same meta-object must not thrash.
void BM_InstantiateTwoSpecializations(benchmark::State& state) {
  OmosWorld world = MakeOmosWorld();
  Specialization a;
  Specialization b{"lib-constrained", {}};
  BENCH_UNWRAP(world.server->Instantiate("/bin/ls", a, nullptr));
  BENCH_UNWRAP(world.server->Instantiate("/lib/libc", b, nullptr));
  for (auto _ : state) {
    uint64_t w = 0;
    benchmark::DoNotOptimize(BENCH_UNWRAP(world.server->Instantiate("/bin/ls", a, &w)));
    benchmark::DoNotOptimize(BENCH_UNWRAP(world.server->Instantiate("/lib/libc", b, &w)));
    if (w != 0) {
      state.SkipWithError("unexpected rebuild on warm cache");
    }
  }
}
BENCHMARK(BM_InstantiateTwoSpecializations)->Unit(benchmark::kMicrosecond);

// Store-backed restart (PR 6): time a cold server coming back from the
// persistent image store — replay the journal, restore the meta-snapshot,
// and serve "/bin/ls" by adopting its stored image instead of re-linking.
// Compare against BM_InstantiateCold: recovery should cost a fraction of a
// full construct+link+place.
void BM_RestartRecovery(benchmark::State& state) {
  SimFs disk;  // the disk outlives every server generation
  {
    OmosWorld seed = MakeOmosWorld();
    ImageStore store(disk, "/omos/store", &seed.kernel->costs());
    BENCH_CHECK(store.Open());
    seed.server->AttachStore(&store);
    seed.Warm();
    BENCH_CHECK(seed.server->PersistTo(store));
  }
  uint64_t work = 0;
  uint64_t restarts = 0;
  uint64_t store_hits = 0;
  for (auto _ : state) {
    state.PauseTiming();
    OmosWorld world = MakeOmosWorld();
    state.ResumeTiming();
    ImageStore store(disk, "/omos/store", &world.kernel->costs());
    BENCH_CHECK(store.Open());
    BENCH_CHECK(world.server->RestoreFromStore(store));
    uint64_t w = 0;
    benchmark::DoNotOptimize(BENCH_UNWRAP(world.server->Instantiate("/bin/ls", {}, &w)));
    work += w;
    store_hits += store.stats().hits.load();
    ++restarts;
  }
  state.counters["sim_work_cycles"] =
      benchmark::Counter(static_cast<double>(work) / static_cast<double>(restarts));
  state.counters["store_hits_per_restart"] =
      benchmark::Counter(static_cast<double>(store_hits) / static_cast<double>(restarts));
}
BENCHMARK(BM_RestartRecovery)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace omos
