// §3.1/§3.2 claim: caching bound+relocated images avoids repeating work.
// Measures server-side instantiation: cold (construct, link, place) vs warm
// (cache lookup only), in wall time and simulated work cycles.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace omos {
namespace {

void BM_InstantiateCold(benchmark::State& state) {
  uint64_t work = 0;
  uint64_t builds = 0;
  for (auto _ : state) {
    state.PauseTiming();
    OmosWorld world = MakeOmosWorld();
    state.ResumeTiming();
    uint64_t w = 0;
    benchmark::DoNotOptimize(BENCH_UNWRAP(world.server->Instantiate("/bin/ls", {}, &w)));
    work += w;
    ++builds;
  }
  state.counters["sim_work_cycles"] =
      benchmark::Counter(static_cast<double>(work) / static_cast<double>(builds));
}
BENCHMARK(BM_InstantiateCold)->Unit(benchmark::kMillisecond);

void BM_InstantiateWarm(benchmark::State& state) {
  OmosWorld world = MakeOmosWorld();
  world.Warm();
  uint64_t work = 0;
  for (auto _ : state) {
    uint64_t w = 0;
    benchmark::DoNotOptimize(BENCH_UNWRAP(world.server->Instantiate("/bin/ls", {}, &w)));
    work += w;
  }
  state.counters["sim_work_cycles"] = benchmark::Counter(static_cast<double>(work));
  state.counters["cache_hits"] =
      benchmark::Counter(static_cast<double>(world.server->cache_stats().hits));
}
BENCHMARK(BM_InstantiateWarm)->Unit(benchmark::kMicrosecond);

// Specializations are separate cache entries: flipping between two
// specializations of the same meta-object must not thrash.
void BM_InstantiateTwoSpecializations(benchmark::State& state) {
  OmosWorld world = MakeOmosWorld();
  Specialization a;
  Specialization b{"lib-constrained", {}};
  BENCH_UNWRAP(world.server->Instantiate("/bin/ls", a, nullptr));
  BENCH_UNWRAP(world.server->Instantiate("/lib/libc", b, nullptr));
  for (auto _ : state) {
    uint64_t w = 0;
    benchmark::DoNotOptimize(BENCH_UNWRAP(world.server->Instantiate("/bin/ls", a, &w)));
    benchmark::DoNotOptimize(BENCH_UNWRAP(world.server->Instantiate("/lib/libc", b, &w)));
    if (w != 0) {
      state.SkipWithError("unexpected rebuild on warm cache");
    }
  }
}
BENCHMARK(BM_InstantiateTwoSpecializations)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace omos
