// §3.1/§3.2 claim: caching bound+relocated images avoids repeating work.
// Measures server-side instantiation: cold (construct, link, place) vs warm
// (cache lookup only), in wall time and simulated work cycles.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/cache.h"

namespace omos {
namespace {

void BM_InstantiateCold(benchmark::State& state) {
  uint64_t work = 0;
  uint64_t builds = 0;
  for (auto _ : state) {
    state.PauseTiming();
    OmosWorld world = MakeOmosWorld();
    state.ResumeTiming();
    uint64_t w = 0;
    benchmark::DoNotOptimize(BENCH_UNWRAP(world.server->Instantiate("/bin/ls", {}, &w)));
    work += w;
    ++builds;
  }
  state.counters["sim_work_cycles"] =
      benchmark::Counter(static_cast<double>(work) / static_cast<double>(builds));
}
BENCHMARK(BM_InstantiateCold)->Unit(benchmark::kMillisecond);

void BM_InstantiateWarm(benchmark::State& state) {
  OmosWorld world = MakeOmosWorld();
  world.Warm();
  uint64_t work = 0;
  for (auto _ : state) {
    uint64_t w = 0;
    benchmark::DoNotOptimize(BENCH_UNWRAP(world.server->Instantiate("/bin/ls", {}, &w)));
    work += w;
  }
  state.counters["sim_work_cycles"] = benchmark::Counter(static_cast<double>(work));
  state.counters["cache_hits"] =
      benchmark::Counter(static_cast<double>(world.server->cache_stats().hits));
}
BENCHMARK(BM_InstantiateWarm)->Unit(benchmark::kMicrosecond);

// Warm-hit cost as a function of image size: Get must be (amortized) O(1),
// not O(bytes). Entries are synthetic images of `range(0)` KiB of text.
void BM_WarmGetBySize(benchmark::State& state) {
  ImageCache cache;
  CachedImage synthetic;
  synthetic.image.name = "synthetic";
  synthetic.image.text_base = 0x00100000;
  synthetic.image.text.assign(static_cast<size_t>(state.range(0)) * 1024, 0xAB);
  synthetic.image.data.assign(4096, 0xCD);
  cache.Put("synthetic", std::move(synthetic));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Get("synthetic"));
  }
  state.SetComplexityN(state.range(0));
  state.counters["image_kib"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_WarmGetBySize)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Complexity()
    ->Unit(benchmark::kNanosecond);

// Specializations are separate cache entries: flipping between two
// specializations of the same meta-object must not thrash.
void BM_InstantiateTwoSpecializations(benchmark::State& state) {
  OmosWorld world = MakeOmosWorld();
  Specialization a;
  Specialization b{"lib-constrained", {}};
  BENCH_UNWRAP(world.server->Instantiate("/bin/ls", a, nullptr));
  BENCH_UNWRAP(world.server->Instantiate("/lib/libc", b, nullptr));
  for (auto _ : state) {
    uint64_t w = 0;
    benchmark::DoNotOptimize(BENCH_UNWRAP(world.server->Instantiate("/bin/ls", a, &w)));
    benchmark::DoNotOptimize(BENCH_UNWRAP(world.server->Instantiate("/lib/libc", b, &w)));
    if (w != 0) {
      state.SkipWithError("unexpected rebuild on warm cache");
    }
  }
}
BENCHMARK(BM_InstantiateTwoSpecializations)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace omos
