// Table 1 reproduction: "Constraint-based Shared Library Performance".
//
// The paper compares, over 1000 invocations of short-running programs:
//   HP-UX section:   vendor shared libraries  vs  OMOS bootstrap exec
//     ls              ratio 1.007 (parity)
//     ls -laF         ratio 0.93
//     codegen         ratio 0.82
//   OSF/1 section:   vendor shared libs vs OMOS bootstrap (0.60) vs OMOS
//                    integrated exec (0.44)
//
// Here all schemes run on the same simulated machine, so the table has one
// section with three columns. Simulated cycles are deterministic; each
// configuration is run warm and scaled to 1000 iterations. We expect the
// *shape*: parity (±few %) on tiny ls, growing OMOS advantage with syscall
// count (-laF) and with program/library size (codegen), and integrated exec
// strictly beating bootstrap exec.
#include <cstdio>

#include <string_view>

#include "bench/bench_common.h"
#include "src/support/metrics.h"

namespace omos {
namespace {

constexpr int kIterations = 1000;
constexpr int kMeasuredRuns = 3;  // deterministic; 3 verifies stability

struct Row {
  const char* test;
  InvocationCost baseline;
  InvocationCost bootstrap;
  InvocationCost integrated;
  InvocationCost prelinked;
  PageSharing baseline_pages;
  PageSharing bootstrap_pages;
  PageSharing integrated_pages;
  PageSharing prelinked_pages;
};

InvocationCost Median3(InvocationCost a, InvocationCost b, InvocationCost c) {
  // Deterministic simulation: verify and return the last (warm) run.
  if (b.elapsed() != c.elapsed()) {
    std::fprintf(stderr, "warning: nondeterministic simulation (%llu vs %llu)\n",
                 static_cast<unsigned long long>(b.elapsed()),
                 static_cast<unsigned long long>(c.elapsed()));
  }
  (void)a;
  return c;
}

template <typename RunFn>
InvocationCost Measure(RunFn run) {
  InvocationCost costs[kMeasuredRuns];
  for (int i = 0; i < kMeasuredRuns; ++i) {
    costs[i] = run();
  }
  return Median3(costs[0], costs[1], costs[2]);
}

void PrintRow(const char* scheme, InvocationCost cost, double ratio_vs_baseline,
              PageSharing pages) {
  std::printf("  %-28s %8.2f %8.2f %9.2f", scheme, Seconds(cost.user * kIterations),
              Seconds(cost.sys * kIterations), Seconds(cost.elapsed() * kIterations));
  if (ratio_vs_baseline > 0) {
    std::printf("   %5.3f", ratio_vs_baseline);
  } else {
    std::printf("   %5s", "");
  }
  // Per-task page sharing after one full run: shared pages still reference
  // cached master frames (text + unbroken CoW data); private pages are the
  // task's own (stack, heap, CoW-broken, demand-filled).
  std::printf("   %6u/%-6u %8u\n", pages.shared_pages, pages.private_pages,
              pages.frames_in_use);
}

void PrintTest(const Row& row) {
  std::printf("Test: %s (%d iterations)\n", row.test, kIterations);
  std::printf("  %-28s %8s %8s %9s   %5s   %13s %8s\n", "", "User", "System", "Elapsed", "Ratio",
              "Shared/Priv", "Frames");
  PrintRow("Traditional Shared Lib", row.baseline, 0, row.baseline_pages);
  PrintRow("OMOS bootstrap exec", row.bootstrap,
           static_cast<double>(row.bootstrap.elapsed()) / row.baseline.elapsed(),
           row.bootstrap_pages);
  PrintRow("OMOS integrated exec", row.integrated,
           static_cast<double>(row.integrated.elapsed()) / row.baseline.elapsed(),
           row.integrated_pages);
  PrintRow("OMOS prelinked exec", row.prelinked,
           static_cast<double>(row.prelinked.elapsed()) / row.baseline.elapsed(),
           row.prelinked_pages);
  std::printf("\n");
}

}  // namespace
}  // namespace omos

namespace omos {
namespace {

// --sweep: show that the orderings in Table 1 are robust to the one genuinely
// machine-specific cost parameter, the IPC round trip. Ratios move smoothly;
// no ordering flips until IPC becomes implausibly free or implausibly huge.
void SensitivitySweep() {
  std::printf("=== Sensitivity: Table 1 ls ratio vs IPC round-trip cost ===\n\n");
  std::printf("%14s %22s %22s\n", "ipc cycles", "bootstrap/traditional", "integrated/traditional");
  for (uint64_t ipc : {2000ull, 5000ull, 9000ull, 14000ull, 20000ull}) {
    BaselineWorld baseline = MakeBaselineWorld();
    OmosWorld world = MakeOmosWorld();
    world.kernel->mutable_costs().ipc_round_trip = ipc;
    world.Warm();
    (void)baseline.Run("ls", {"ls", "/data"});
    (void)world.Run("/bin/ls", {"ls", "/data"}, false);
    (void)world.Run("/bin/ls", {"ls", "/data"}, true);
    InvocationCost base = baseline.Run("ls", {"ls", "/data"});
    InvocationCost boot = world.Run("/bin/ls", {"ls", "/data"}, false);
    InvocationCost integ = world.Run("/bin/ls", {"ls", "/data"}, true);
    std::printf("%14llu %22.3f %22.3f\n", static_cast<unsigned long long>(ipc),
                static_cast<double>(boot.elapsed()) / base.elapsed(),
                static_cast<double>(integ.elapsed()) / base.elapsed());
  }
  std::printf("\nIntegrated exec never pays the IPC, so its ratio is flat; the\n");
  std::printf("bootstrap ratio crosses 1.0 as IPC grows — exactly the paper's\n");
  std::printf("observation that the bootstrap's IPC counteracts the relocation savings.\n");

  // Second axis: hold the cost model fixed and swap the exec transport.
  // The doors-style ring collapses the round trip from 9000 cycles to a few
  // hundred, pulling bootstrap exec to near-parity with integrated exec.
  std::printf("\n=== Sensitivity: Table 1 ls ratio vs exec transport ===\n\n");
  std::printf("%10s %22s %22s %22s\n", "transport", "bootstrap/traditional",
              "integrated/traditional", "bootstrap/integrated");
  struct TransportPoint {
    const char* name;
    OmosServer::ExecTransport transport;
  };
  for (const TransportPoint& point :
       {TransportPoint{"port", OmosServer::ExecTransport::kPort},
        TransportPoint{"stream", OmosServer::ExecTransport::kStream},
        TransportPoint{"ring", OmosServer::ExecTransport::kRing}}) {
    BaselineWorld baseline = MakeBaselineWorld();
    OmosWorld world = MakeOmosWorld();
    world.server->SetExecTransport(point.transport);
    world.Warm();
    (void)baseline.Run("ls", {"ls", "/data"});
    (void)world.Run("/bin/ls", {"ls", "/data"}, false);
    (void)world.Run("/bin/ls", {"ls", "/data"}, true);
    InvocationCost base = baseline.Run("ls", {"ls", "/data"});
    InvocationCost boot = world.Run("/bin/ls", {"ls", "/data"}, false);
    InvocationCost integ = world.Run("/bin/ls", {"ls", "/data"}, true);
    std::printf("%10s %22.3f %22.3f %22.3f\n", point.name,
                static_cast<double>(boot.elapsed()) / base.elapsed(),
                static_cast<double>(integ.elapsed()) / base.elapsed(),
                static_cast<double>(boot.elapsed()) / integ.elapsed());
  }
  std::printf("\nOver the shared-memory ring, bootstrap exec lands within 1.5x of\n");
  std::printf("integrated exec: the cheap handoff makes the extra exec-protocol\n");
  std::printf("round trip nearly free, without giving up the separate-server split.\n");
}

}  // namespace
}  // namespace omos

int main(int argc, char** argv) {
  using namespace omos;
  if (argc > 1 && std::string_view(argv[1]) == "--sweep") {
    SensitivitySweep();
    return 0;
  }
  std::printf("=== Table 1: Constraint-based Shared Library Performance ===\n");
  std::printf("(simulated cycles at %.0f MHz; times are for %d iterations)\n\n", kClockHz / 1e6,
              kIterations);

  BaselineWorld baseline = MakeBaselineWorld();
  OmosWorld world = MakeOmosWorld();
  world.Warm();
  world.Prelink();

  // Warm both worlds: one throwaway invocation per configuration.
  (void)baseline.Run("ls", {"ls", "/data"});
  (void)world.Run("/bin/ls", {"ls", "/data"}, false);
  (void)world.Run("/bin/ls", {"ls", "/data"}, true);
  (void)world.RunPrelinked("/bin/ls", {"ls", "/data"});

  Row ls_row{"ls"};
  ls_row.baseline = Measure([&] { return baseline.Run("ls", {"ls", "/data"}); });
  ls_row.bootstrap = Measure([&] { return world.Run("/bin/ls", {"ls", "/data"}, false); });
  ls_row.integrated = Measure([&] { return world.Run("/bin/ls", {"ls", "/data"}, true); });
  ls_row.prelinked = Measure([&] { return world.RunPrelinked("/bin/ls", {"ls", "/data"}); });
  ls_row.baseline_pages = baseline.SampleSharing("ls", {"ls", "/data"});
  ls_row.bootstrap_pages = world.SampleSharing("/bin/ls", {"ls", "/data"}, false);
  ls_row.integrated_pages = world.SampleSharing("/bin/ls", {"ls", "/data"}, true);
  ls_row.prelinked_pages = world.SampleSharingPrelinked("/bin/ls", {"ls", "/data"});
  PrintTest(ls_row);

  Row laf_row{"ls -laF"};
  laf_row.baseline = Measure([&] { return baseline.Run("ls", {"ls", "-laF", "/data"}); });
  laf_row.bootstrap =
      Measure([&] { return world.Run("/bin/ls", {"ls", "-laF", "/data"}, false); });
  laf_row.integrated =
      Measure([&] { return world.Run("/bin/ls", {"ls", "-laF", "/data"}, true); });
  laf_row.prelinked =
      Measure([&] { return world.RunPrelinked("/bin/ls", {"ls", "-laF", "/data"}); });
  laf_row.baseline_pages = baseline.SampleSharing("ls", {"ls", "-laF", "/data"});
  laf_row.bootstrap_pages = world.SampleSharing("/bin/ls", {"ls", "-laF", "/data"}, false);
  laf_row.integrated_pages = world.SampleSharing("/bin/ls", {"ls", "-laF", "/data"}, true);
  laf_row.prelinked_pages = world.SampleSharingPrelinked("/bin/ls", {"ls", "-laF", "/data"});
  PrintTest(laf_row);

  (void)baseline.Run("codegen", {"codegen"});
  (void)world.Run("/bin/codegen", {"codegen"}, false);
  (void)world.Run("/bin/codegen", {"codegen"}, true);
  (void)world.RunPrelinked("/bin/codegen", {"codegen"});
  Row cg_row{"codegen"};
  cg_row.baseline = Measure([&] { return baseline.Run("codegen", {"codegen"}); });
  cg_row.bootstrap = Measure([&] { return world.Run("/bin/codegen", {"codegen"}, false); });
  cg_row.integrated = Measure([&] { return world.Run("/bin/codegen", {"codegen"}, true); });
  cg_row.prelinked = Measure([&] { return world.RunPrelinked("/bin/codegen", {"codegen"}); });
  cg_row.baseline_pages = baseline.SampleSharing("codegen", {"codegen"});
  cg_row.bootstrap_pages = world.SampleSharing("/bin/codegen", {"codegen"}, false);
  cg_row.integrated_pages = world.SampleSharing("/bin/codegen", {"codegen"}, true);
  cg_row.prelinked_pages = world.SampleSharingPrelinked("/bin/codegen", {"codegen"});
  PrintTest(cg_row);

  std::printf("Paper shapes: ls ratio ~1.0; ls -laF < 1 (OMOS wins as syscalls grow);\n");
  std::printf("codegen markedly < 1 (per-invocation relocations dominate);\n");
  std::printf("integrated exec strictly faster than bootstrap exec (paper: .44 vs .60).\n");

  // Prelink gates: a warm prelinked exec maps stamped images as-is — zero
  // per-exec relocation work (the link.relocations_at_map delta across one
  // run must be 0; the baseline rtld bumps it every exec) — and, paying
  // only the prelink-table probe instead of the full namespace + cache
  // lookup, never costs more than integrated exec.
  Counter* at_map = MetricsRegistry::Global().GetCounter("link.relocations_at_map");
  uint64_t map_before = at_map->value();
  (void)world.RunPrelinked("/bin/ls", {"ls", "/data"});
  (void)world.RunPrelinked("/bin/codegen", {"codegen"});
  uint64_t map_delta = at_map->value() - map_before;
  bool zero_reloc = map_delta == 0;
  bool no_worse = ls_row.prelinked.elapsed() <= ls_row.integrated.elapsed() &&
                  laf_row.prelinked.elapsed() <= laf_row.integrated.elapsed() &&
                  cg_row.prelinked.elapsed() <= cg_row.integrated.elapsed();
  std::printf("\n  %s: warm prelinked exec applied %llu relocations at map time (want 0)\n",
              zero_reloc ? "PASS" : "FAIL", static_cast<unsigned long long>(map_delta));
  std::printf("  %s: prelinked exec <= integrated exec on every test\n",
              no_worse ? "PASS" : "FAIL");
  return zero_reloc && no_worse ? 0 : 1;
}
