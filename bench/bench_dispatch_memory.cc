// §4.1 / Kohl & Paxson [11] claim: "for small programs (e.g. ls) and
// libraries (libc), more memory is used for dispatch tables than is saved
// in library code"; and "the self-contained shared libraries have no
// dispatch table, [so] the absolute memory requirement for applications is
// decreased."
//
// Three schemes for N concurrent `ls` clients on the simulated machine:
//   static       — selective archive extraction, no sharing, no dispatch
//   traditional  — whole libc shared + PLT/GOT dispatch tables
//   OMOS         — whole libc shared, no dispatch tables
// Reports measured physical bytes (page granular) plus exact byte-level
// accounting of text, data, and dispatch-table sizes.
#include <cstdio>
#include <set>

#include "bench/bench_common.h"
#include "src/baseline/static_linker.h"

namespace omos {
namespace {

// Selective extraction: pull only archive members needed to close the
// program's references (what `ld` does with .a libraries).
Module SelectiveStaticModule() {
  const Workloads& w = FullWorkloads();
  Module m = BENCH_UNWRAP(ModuleFromObjects({w.crt0, w.ls_obj}));
  std::set<std::string> pulled;
  while (true) {
    std::vector<std::string> unbound = BENCH_UNWRAP(m.UnboundRefNames());
    bool progress = false;
    for (const std::string& name : unbound) {
      const ObjectFile* member = w.libc.FindDefiner(name);
      if (member != nullptr && pulled.insert(member->name()).second) {
        m = BENCH_UNWRAP(
            Module::Merge(m, Module::FromObject(std::make_shared<const ObjectFile>(*member))));
        progress = true;
      }
    }
    if (!progress) {
      return m;
    }
  }
}

struct SchemeNumbers {
  uint64_t phys_bytes[5];  // measured at N = 1, 2, 4, 8, 16
  // Page-sharing split summed across the N live clients at each checkpoint:
  // shared = text/data pages still referencing cached master frames (CoW
  // pages count as shared until written), private = per-task frames.
  uint32_t shared_pages[5] = {};
  uint32_t private_pages[5] = {};
  uint32_t text_bytes = 0;
  uint32_t dispatch_bytes = 0;
};

constexpr int kClientCounts[5] = {1, 2, 4, 8, 16};

void SumPages(Kernel& kernel, const std::vector<TaskId>& ids, uint32_t* shared,
              uint32_t* priv) {
  *shared = 0;
  *priv = 0;
  for (TaskId id : ids) {
    Task* task = kernel.FindTask(id);
    if (task != nullptr) {
      *shared += task->space().shared_pages();
      *priv += task->space().private_pages();
    }
  }
}

}  // namespace
}  // namespace omos

int main() {
  using namespace omos;
  SchemeNumbers stat{}, trad{}, omos_n{};

  // Static: each client is a full private copy of its (selectively
  // extracted) image.
  {
    Kernel kernel;
    PopulateLsData(kernel.fs());
    Module m = SelectiveStaticModule();
    StaticExecutable exe = BENCH_UNWRAP(StaticLink("ls", m, kernel.costs()));
    stat.text_bytes = static_cast<uint32_t>(exe.image.text.size());
    int idx = 0;
    std::vector<TaskId> ids;
    for (int n = 1; n <= 16; ++n) {
      // Private text: disable page-cache sharing by giving each exec a
      // distinct cache key (models distinct statically linked binaries).
      Task& task = kernel.CreateTask(StrCat("static", n));
      BENCH_CHECK(MapLinkedImage(kernel, task, exe.image, ""));
      std::vector<std::string> args{"ls", "/data"};
      BENCH_CHECK(StartTask(kernel, task, exe.image.entry, args));
      ids.push_back(task.id());
      if (idx < 5 && n == kClientCounts[idx]) {
        stat.phys_bytes[idx] = kernel.phys().bytes_in_use();
        SumPages(kernel, ids, &stat.shared_pages[idx], &stat.private_pages[idx]);
        ++idx;
      }
    }
  }

  // Traditional shared libraries.
  {
    BaselineWorld world = MakeBaselineWorld();
    trad.text_bytes = static_cast<uint32_t>(world.rtld->Find("libc")->image.text.size());
    trad.dispatch_bytes =
        world.rtld->Find("libc")->dispatch_bytes + world.rtld->Find("ls")->dispatch_bytes;
    uint64_t setup = world.kernel->phys().bytes_in_use();
    (void)setup;
    int idx = 0;
    std::vector<TaskId> ids;
    for (int n = 1; n <= 16; ++n) {
      TaskId id = BENCH_UNWRAP(world.rtld->Exec("ls", {"ls", "/data"}));
      ids.push_back(id);
      if (idx < 5 && n == kClientCounts[idx]) {
        trad.phys_bytes[idx] = world.kernel->phys().bytes_in_use();
        SumPages(*world.kernel, ids, &trad.shared_pages[idx], &trad.private_pages[idx]);
        ++idx;
      }
    }
  }

  // OMOS self-contained.
  {
    OmosWorld world = MakeOmosWorld();
    world.Warm();
    const CachedImage* libc =
        BENCH_UNWRAP(world.server->Instantiate("/lib/libc", {"lib-constrained", {}}, nullptr));
    omos_n.text_bytes = static_cast<uint32_t>(libc->image.text.size());
    int idx = 0;
    std::vector<TaskId> ids;
    for (int n = 1; n <= 16; ++n) {
      TaskId id = BENCH_UNWRAP(world.server->IntegratedExec("/bin/ls", {"ls", "/data"}));
      ids.push_back(id);
      if (idx < 5 && n == kClientCounts[idx]) {
        omos_n.phys_bytes[idx] = world.kernel->phys().bytes_in_use();
        SumPages(*world.kernel, ids, &omos_n.shared_pages[idx], &omos_n.private_pages[idx]);
        ++idx;
      }
    }
  }

  std::printf("=== Memory: dispatch tables vs sharing (ls + libc), N clients ===\n\n");
  std::printf("byte-level accounting:\n");
  std::printf("  static ls text (selective extraction):  %u bytes\n", stat.text_bytes);
  std::printf("  shared libc text (whole library):       %u bytes\n", trad.text_bytes);
  std::printf("  traditional dispatch tables (PLT+GOT):  %u bytes\n", trad.dispatch_bytes);
  std::printf("  OMOS dispatch tables:                   0 bytes\n\n");
  std::printf("measured physical memory (pages are 4KB; includes stacks and caches):\n");
  std::printf("%10s %16s %16s %16s\n", "clients", "static", "traditional", "omos");
  for (int i = 0; i < 5; ++i) {
    std::printf("%10d %16llu %16llu %16llu\n", kClientCounts[i],
                static_cast<unsigned long long>(stat.phys_bytes[i]),
                static_cast<unsigned long long>(trad.phys_bytes[i]),
                static_cast<unsigned long long>(omos_n.phys_bytes[i]));
  }
  std::printf("\npage sharing across the N clients (shared/private 4KB pages; CoW data\n");
  std::printf("pages stay shared until written, untouched demand pages have no frame):\n");
  std::printf("%10s %16s %16s %16s %16s\n", "clients", "static", "traditional", "omos",
              "frames_in_use");
  for (int i = 0; i < 5; ++i) {
    char stat_buf[32], trad_buf[32], omos_buf[32];
    std::snprintf(stat_buf, sizeof stat_buf, "%u/%u", stat.shared_pages[i],
                  stat.private_pages[i]);
    std::snprintf(trad_buf, sizeof trad_buf, "%u/%u", trad.shared_pages[i],
                  trad.private_pages[i]);
    std::snprintf(omos_buf, sizeof omos_buf, "%u/%u", omos_n.shared_pages[i],
                  omos_n.private_pages[i]);
    std::printf("%10d %16s %16s %16s %16llu\n", kClientCounts[i], stat_buf, trad_buf, omos_buf,
                static_cast<unsigned long long>(omos_n.phys_bytes[i] / kPageSize));
  }
  std::printf(
      "\nShape: for one small client, static linking beats the traditional shared\n"
      "scheme (the dispatch tables plus whole-library mapping cost more than\n"
      "sharing saves — the [11] observation); as clients multiply, sharing wins.\n"
      "OMOS is never worse than traditional: same sharing, no dispatch tables.\n");
  return 0;
}
