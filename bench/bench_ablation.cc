// Ablation of OMOS's design choices (DESIGN.md §4), on the ls workload:
//
//   1. image cache OFF    — every exec re-evaluates, re-links and re-places
//                           (what a per-process dynamic linker fundamentally
//                           does; isolates the value of the *persistent
//                           server with cache*)
//   2. image cache ON     — the shipped configuration
//   3. partial-image      — lazy stubs instead of pre-bound addresses
//                           (flexibility/debuggability for first-call cost)
//   4. bootstrap vs integrated exec — isolates the IPC + loader overhead
#include <cstdio>

#include "bench/bench_common.h"

namespace omos {
namespace {

InvocationCost RunOnce(OmosWorld& world, const char* meta, bool integrated) {
  return world.Run(meta, {"ls", "/data"}, integrated);
}

}  // namespace
}  // namespace omos

int main() {
  using namespace omos;
  std::printf("=== Ablation: what each OMOS design choice buys (ls workload) ===\n\n");

  // 2/4: shipped configurations, warm.
  OmosWorld world = MakeOmosWorld();
  world.Warm();
  (void)RunOnce(world, "/bin/ls", true);
  InvocationCost integrated = RunOnce(world, "/bin/ls", true);
  InvocationCost bootstrap = RunOnce(world, "/bin/ls", false);

  // 1: cache off — evict everything between execs, forcing a rebuild.
  InvocationCost no_cache;
  {
    OmosWorld cold = MakeOmosWorld();
    // Warm once so constraint placements stabilize, then measure with the
    // cache emptied before each exec.
    (void)RunOnce(cold, "/bin/ls", true);
    for (const std::string& key : cold.server->cache().Keys()) {
      cold.server->cache().Evict(key);
    }
    no_cache = RunOnce(cold, "/bin/ls", true);
  }

  // 3: partial-image (lib-dynamic) variant of the same program.
  InvocationCost partial;
  {
    OmosWorld lazy = MakeOmosWorld();
    BENCH_CHECK(lazy.server->DefineMeta(
        "/bin/ls-lazy",
        "(merge /lib/crt0.o /obj/ls.o (specialize \"lib-dynamic\" /lib/libc))"));
    (void)RunOnce(lazy, "/bin/ls-lazy", true);
    partial = RunOnce(lazy, "/bin/ls-lazy", true);
  }

  auto row = [](const char* name, InvocationCost cost, InvocationCost baseline) {
    std::printf("  %-34s user=%7llu sys=%7llu elapsed=%8llu  (%.2fx)\n", name,
                static_cast<unsigned long long>(cost.user),
                static_cast<unsigned long long>(cost.sys),
                static_cast<unsigned long long>(cost.elapsed()),
                static_cast<double>(cost.elapsed()) / static_cast<double>(baseline.elapsed()));
  };
  row("integrated exec, cache ON", integrated, integrated);
  row("bootstrap exec, cache ON", bootstrap, integrated);
  row("integrated exec, cache OFF", no_cache, integrated);
  row("partial-image (lazy stubs)", partial, integrated);

  std::printf(
      "\nReadings: the cache is the headline win (per-exec re-linking costs\n"
      "many times a warm exec); the bootstrap+IPC path costs a constant\n"
      "premium over integrated exec; partial-image trades a small first-call\n"
      "penalty for ordinary-executable semantics.\n");
  return no_cache.elapsed() > integrated.elapsed() ? 0 : 1;
}
