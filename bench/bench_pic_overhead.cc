// §4.1: "the self-contained shared library scheme can use absolute
// addressing modes ... Use of the OMOS constraint system does not preclude
// PIC, [but] PIC is not required."
//
// Measures the per-call cost of the three binding styles on the simulated
// machine, with a tight loop of cross-library calls:
//   * direct absolute call  (OMOS self-contained)
//   * linkage-table call    (traditional PLT: call -> ldpc -> jmpr)
//   * partial-image stub    (OMOS lib-dynamic after first-call patching)
#include <cstdio>

#include "bench/bench_common.h"
#include "src/vasm/assembler.h"

namespace omos {
namespace {

constexpr int kCalls = 20000;

const char* kLibSource =
    ".text\n.global bump\nbump:\n  addi r0, r0, 1\n  ret\n";

std::string MainSource() {
  return StrCat(
      ".text\n.global main\nmain:\n  push lr\n  push r4\n  movi r4, 0\n  movi r0, 0\n"
      "loop:\n"
      "  call bump\n"
      "  addi r4, r4, 1\n"
      "  movi r1, ", kCalls, "\n"
      "  blt r4, r1, loop\n"
      "  movi r0, 0\n  pop r4\n  pop lr\n  ret\n");
}

uint64_t RunUserCycles(Kernel& kernel, TaskId id) {
  Task* task = kernel.FindTask(id);
  BENCH_CHECK(kernel.RunTask(*task));
  if (task->exit_code() != 0) {
    std::abort();
  }
  return task->user_cycles();
}

}  // namespace
}  // namespace omos

int main() {
  using namespace omos;
  std::printf("=== Call binding overhead: absolute vs dispatch-table vs lazy stub ===\n\n");

  ObjectFile crt0 = BENCH_UNWRAP(
      Assemble(".text\n.global _start\n_start:\n  call main\n  sys 0\n", "crt0.o"));
  ObjectFile lib_obj = BENCH_UNWRAP(Assemble(kLibSource, "bump.o"));
  ObjectFile main_obj = BENCH_UNWRAP(Assemble(MainSource(), "main.o"));

  // 1. OMOS self-contained: absolute direct call.
  uint64_t direct_cycles = 0;
  {
    Kernel kernel;
    OmosServer server(kernel);
    BENCH_CHECK(server.AddFragment("/lib/crt0.o", crt0));
    BENCH_CHECK(server.AddFragment("/obj/main.o", main_obj));
    BENCH_CHECK(server.AddFragment("/obj/bump.o", lib_obj));
    BENCH_CHECK(server.DefineLibrary("/lib/bump", "(merge /obj/bump.o)"));
    BENCH_CHECK(server.DefineMeta("/bin/prog", "(merge /lib/crt0.o /obj/main.o /lib/bump)"));
    TaskId id = BENCH_UNWRAP(server.IntegratedExec("/bin/prog", {"prog"}));
    direct_cycles = RunUserCycles(kernel, id);
  }

  // 2. Traditional PLT dispatch.
  uint64_t plt_cycles = 0;
  {
    Kernel kernel;
    Rtld rtld(kernel);
    DynLibBuilder builder;
    Module lib_m = Module::FromObject(std::make_shared<const ObjectFile>(lib_obj));
    DynImage lib = BENCH_UNWRAP(builder.BuildLibrary("libbump", lib_m));
    BENCH_CHECK(rtld.Install(std::move(lib)));
    Module prog_m = BENCH_UNWRAP(ModuleFromObjects({crt0, main_obj}));
    DynImage prog = BENCH_UNWRAP(builder.BuildExecutable("prog", prog_m, {rtld.Find("libbump")}));
    BENCH_CHECK(rtld.Install(std::move(prog)));
    TaskId id = BENCH_UNWRAP(rtld.Exec("prog", {"prog"}));
    plt_cycles = RunUserCycles(kernel, id);
  }

  // 3. OMOS partial-image stubs (lib-dynamic).
  uint64_t stub_cycles = 0;
  {
    Kernel kernel;
    OmosServer server(kernel);
    BENCH_CHECK(server.AddFragment("/lib/crt0.o", crt0));
    BENCH_CHECK(server.AddFragment("/obj/main.o", main_obj));
    BENCH_CHECK(server.AddFragment("/obj/bump.o", lib_obj));
    BENCH_CHECK(server.DefineLibrary("/lib/bump", "(merge /obj/bump.o)"));
    BENCH_CHECK(server.DefineMeta(
        "/bin/prog",
        "(merge /lib/crt0.o /obj/main.o (specialize \"lib-dynamic\" /lib/bump))"));
    TaskId id = BENCH_UNWRAP(server.IntegratedExec("/bin/prog", {"prog"}));
    stub_cycles = RunUserCycles(kernel, id);
  }

  double per_call_direct = static_cast<double>(direct_cycles) / kCalls;
  double per_call_plt = static_cast<double>(plt_cycles) / kCalls;
  double per_call_stub = static_cast<double>(stub_cycles) / kCalls;
  std::printf("  %-34s %12s %14s\n", "binding style", "user cycles", "cycles/call");
  std::printf("  %-34s %12llu %14.2f\n", "absolute (OMOS self-contained)",
              static_cast<unsigned long long>(direct_cycles), per_call_direct);
  std::printf("  %-34s %12llu %14.2f\n", "PLT dispatch (traditional)",
              static_cast<unsigned long long>(plt_cycles), per_call_plt);
  std::printf("  %-34s %12llu %14.2f\n", "lazy stub (OMOS partial-image)",
              static_cast<unsigned long long>(stub_cycles), per_call_stub);
  std::printf("\n  dispatch overhead vs absolute: %.1f%% (PLT), %.1f%% (stub)\n",
              (per_call_plt / per_call_direct - 1.0) * 100.0,
              (per_call_stub / per_call_direct - 1.0) * 100.0);
  return per_call_plt > per_call_direct ? 0 : 1;
}
