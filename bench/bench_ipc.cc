// bench_ipc: the exec-protocol transports under load.
//
// Section 1 — simulated cycles per request for each transport (Mach-style
// port, SysV-style stream, doors-style shared-memory ring), then with
// request batching (one frame, one round trip for N requests) and the
// client stub cache (repeat Instantiate answered locally, zero round trips).
//
// Section 2 — open-loop wall-clock: N simulated clients (1k/4k/10k), each
// issuing one request, driven by worker lanes with batching over the ring
// transport. p50/p99 come from the server.request_ns histogram delta per
// load point. PASS line requires p99 to stay within 2x from 1k to 10k —
// per-request server work is constant, so the batched ring keeps the tail
// flat as the client count grows.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/ipc/channel.h"
#include "src/support/metrics.h"
#include "src/support/thread_pool.h"

namespace omos {
namespace {

constexpr int kBatchSize = 16;

OmosRequest PingRequest() {
  OmosRequest request;
  request.op = OmosOp::kListNamespace;
  request.path = "/bin";
  return request;
}

uint64_t CyclesPerCall(Channel& channel, int calls) {
  OmosRequest request = PingRequest();
  uint64_t before = channel.cycles_billed();
  for (int i = 0; i < calls; ++i) {
    OmosReply reply = BENCH_UNWRAP(channel.Call(request, nullptr));
    if (!reply.ok) {
      std::fprintf(stderr, "ping failed: %s\n", reply.error.c_str());
      std::abort();
    }
  }
  return (channel.cycles_billed() - before) / static_cast<uint64_t>(calls);
}

uint64_t CyclesPerBatchedCall(Channel& channel, int batches) {
  std::vector<OmosRequest> requests(kBatchSize, PingRequest());
  uint64_t before = channel.cycles_billed();
  for (int i = 0; i < batches; ++i) {
    std::vector<OmosReply> replies = BENCH_UNWRAP(channel.CallBatch(requests, nullptr));
    for (const OmosReply& reply : replies) {
      if (!reply.ok) {
        std::fprintf(stderr, "batched ping failed: %s\n", reply.error.c_str());
        std::abort();
      }
    }
  }
  return (channel.cycles_billed() - before) / static_cast<uint64_t>(batches * kBatchSize);
}

void TransportCyclesTable(OmosWorld& world) {
  std::printf("=== Simulated cycles per request, by transport ===\n\n");
  std::printf("%10s %14s %22s\n", "transport", "cycles/req", "batched(16) cycles/req");
  struct Point {
    const char* name;
    OmosServer::ExecTransport transport;
  };
  for (const Point& point : {Point{"port", OmosServer::ExecTransport::kPort},
                             Point{"stream", OmosServer::ExecTransport::kStream},
                             Point{"ring", OmosServer::ExecTransport::kRing}}) {
    Channel single = world.server->MakeChannel(point.transport);
    Channel batched = world.server->MakeChannel(point.transport);
    uint64_t per_call = CyclesPerCall(single, 64);
    uint64_t per_batched = CyclesPerBatchedCall(batched, 4);
    std::printf("%10s %14llu %22llu\n", point.name,
                static_cast<unsigned long long>(per_call),
                static_cast<unsigned long long>(per_batched));
  }
  std::printf("\n");
}

void StubCacheSection(OmosWorld& world) {
  std::printf("=== Stub cache: warm repeat Instantiate ===\n\n");
  Channel channel = world.server->MakeChannel(OmosServer::ExecTransport::kRing);
  channel.EnableStubCache();
  Task* task;
  {
    task = &world.kernel->CreateTask("bench-stub-client");
  }
  OmosRequest request;
  request.op = OmosOp::kInstantiate;
  request.path = "/bin/ls";
  request.specialization = Specialization().ToKeyString();
  request.task_handle = task->id();

  OmosReply cold = BENCH_UNWRAP(channel.Call(request, nullptr));
  if (!cold.ok) {
    std::fprintf(stderr, "cold instantiate failed: %s\n", cold.error.c_str());
    std::abort();
  }
  uint64_t cold_calls = channel.calls_made();
  uint64_t cold_cycles = channel.cycles_billed();

  constexpr int kWarmRepeats = 100;
  for (int i = 0; i < kWarmRepeats; ++i) {
    OmosReply warm = BENCH_UNWRAP(channel.Call(request, nullptr));
    if (!warm.ok || warm.entry != cold.entry) {
      std::fprintf(stderr, "warm instantiate diverged\n");
      std::abort();
    }
  }
  uint64_t warm_calls = channel.calls_made() - cold_calls;
  uint64_t warm_cycles = channel.cycles_billed() - cold_cycles;
  std::printf("  cold: %llu round trips, %llu cycles\n",
              static_cast<unsigned long long>(cold_calls),
              static_cast<unsigned long long>(cold_cycles));
  std::printf("  warm x%d: %llu round trips, %llu cycles, %llu stub hits\n", kWarmRepeats,
              static_cast<unsigned long long>(warm_calls),
              static_cast<unsigned long long>(warm_cycles),
              static_cast<unsigned long long>(channel.stub_hits()));
  std::printf("  %s: warm repeats make zero server round trips\n\n",
              warm_calls == 0 ? "PASS" : "FAIL");
}

// One load point: `clients` simulated clients, each issuing one request,
// grouped into batches of kBatchSize per wire frame, spread over worker
// lanes that each own a private ring channel.
struct LoadPoint {
  int clients;
  uint64_t p50_ns;
  uint64_t p99_ns;
};

LoadPoint RunLoadPoint(OmosWorld& world, int clients) {
  Histogram* request_ns = MetricsRegistry::Global().GetHistogram("server.request_ns");
  HistogramSnapshot before = request_ns->Snapshot();
  size_t lanes = 16;
  size_t per_lane = (static_cast<size_t>(clients) + lanes - 1) / lanes;
  ThreadPool::Global().ParallelFor(lanes, /*grain=*/1, [&](size_t begin, size_t end) {
    for (size_t lane = begin; lane < end; ++lane) {
      Channel channel = world.server->MakeChannel(OmosServer::ExecTransport::kRing);
      size_t first = lane * per_lane;
      size_t last = std::min(first + per_lane, static_cast<size_t>(clients));
      size_t remaining = last > first ? last - first : 0;
      while (remaining > 0) {
        size_t group = std::min<size_t>(remaining, kBatchSize);
        std::vector<OmosRequest> requests(group, PingRequest());
        std::vector<OmosReply> replies = BENCH_UNWRAP(channel.CallBatch(requests, nullptr));
        for (const OmosReply& reply : replies) {
          if (!reply.ok) {
            std::fprintf(stderr, "load request failed: %s\n", reply.error.c_str());
            std::abort();
          }
        }
        remaining -= group;
      }
    }
  });
  HistogramSnapshot delta = request_ns->Snapshot().Since(before);
  LoadPoint point;
  point.clients = clients;
  point.p50_ns = delta.Percentile(50);
  point.p99_ns = delta.Percentile(99);
  if (delta.count != static_cast<uint64_t>(clients)) {
    std::fprintf(stderr, "load point served %llu != %d requests\n",
                 static_cast<unsigned long long>(delta.count), clients);
    std::abort();
  }
  return point;
}

void OpenLoopSection(OmosWorld& world) {
  std::printf("=== Open loop: N clients, batched ring transport ===\n\n");
  std::printf("%10s %14s %14s\n", "clients", "p50 ns", "p99 ns");
  std::vector<LoadPoint> points;
  for (int clients : {1000, 4000, 10000}) {
    points.push_back(RunLoadPoint(world, clients));
    std::printf("%10d %14llu %14llu\n", points.back().clients,
                static_cast<unsigned long long>(points.back().p50_ns),
                static_cast<unsigned long long>(points.back().p99_ns));
  }
  // Percentiles are pow2-bucket upper boundaries (2^i - 1), so the drift
  // ratio can only take values 2^k: gate in exact integer arithmetic. A
  // float `ratio <= 2.0` would sit boundary-exact at one-bucket drift and
  // flap on rounding; `(last+1) <= 2*(first+1)` admits exactly one bucket
  // of drift, deterministically.
  uint64_t first_p99 = points.front().p99_ns + 1;
  uint64_t last_p99 = points.back().p99_ns + 1;
  bool flat = last_p99 <= 2 * first_p99;
  std::printf("\n  %s: p99 drift %dk -> %dk clients is %.2fx (budget: one bucket, 2x)\n\n",
              flat ? "PASS" : "FAIL", points.front().clients / 1000,
              points.back().clients / 1000,
              static_cast<double>(last_p99) / static_cast<double>(first_p99));
}

}  // namespace
}  // namespace omos

int main() {
  using namespace omos;
  std::printf("=== bench_ipc: transports, batching, stub cache ===\n\n");
  OmosWorld world = MakeOmosWorld();
  world.Warm();
  TransportCyclesTable(world);
  StubCacheSection(world);
  OpenLoopSection(world);
  return 0;
}
