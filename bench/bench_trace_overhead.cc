// omtrace overhead: what the always-compiled-in instrumentation costs on
// the hot path. Budgets (checked after the google-benchmark run, printed
// as BUDGET lines and written next to a sample trace artifact):
//   - tracing enabled:  <= 5% on a warm Instantiate
//   - tracing disabled: <= 1% on a warm Instantiate (the disarmed spans)
//
// This binary has a custom main (links benchmark::benchmark, not
// benchmark_main): after the benchmarks it measures the budgets directly
// and dumps a sample Chrome trace JSON for the CI artifact.
#include <chrono>
#include <cstdio>
#include <string>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/support/trace.h"

namespace omos {
namespace {

// The disarmed fast path in isolation: one relaxed load per span.
void BM_SpanDisabled(benchmark::State& state) {
  TraceSetEnabled(false);
  for (auto _ : state) {
    TraceSpan span("bench.disabled");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  TraceSetEnabled(true);
  for (auto _ : state) {
    TraceSpan span("bench.enabled");
    benchmark::DoNotOptimize(&span);
  }
  TraceSetEnabled(false);
  TraceClear();
}
BENCHMARK(BM_SpanEnabled);

void BM_InstantiateWarmTraceOff(benchmark::State& state) {
  OmosWorld world = MakeOmosWorld();
  world.Warm();
  TraceSetEnabled(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BENCH_UNWRAP(world.server->Instantiate("/bin/ls", {}, nullptr)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InstantiateWarmTraceOff);

void BM_InstantiateWarmTraceOn(benchmark::State& state) {
  OmosWorld world = MakeOmosWorld();
  world.Warm();
  TraceSetEnabled(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BENCH_UNWRAP(world.server->Instantiate("/bin/ls", {}, nullptr)));
  }
  state.SetItemsProcessed(state.iterations());
  TraceSetEnabled(false);
  TraceClear();
}
BENCHMARK(BM_InstantiateWarmTraceOn);

// Direct budget measurement, independent of benchmark's own statistics.
double TimeWarmLoopOnce(OmosWorld& world, int iters) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    benchmark::DoNotOptimize(
        BENCH_UNWRAP(world.server->Instantiate("/bin/ls", {}, nullptr)));
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

int CheckBudgetsAndWriteSample(const char* sample_path) {
  OmosWorld world = MakeOmosWorld();
  world.Warm();
  constexpr int kIters = 10000;
  constexpr int kReps = 25;

  // Interleave on/off reps and keep the best of each, so scheduler noise
  // and frequency drift hit both sides evenly. Many short reps beat few
  // long ones: the min estimator converges with the number of draws, and a
  // 12ms rep is long enough to amortize the clock reads around it.
  TraceSetEnabled(false);
  TimeWarmLoopOnce(world, kIters);  // warm the loop itself
  double off_s = 1e300;
  double on_s = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    TraceSetEnabled(false);
    off_s = std::min(off_s, TimeWarmLoopOnce(world, kIters));
    TraceSetEnabled(true);
    on_s = std::min(on_s, TimeWarmLoopOnce(world, kIters));
  }
  TraceSetEnabled(false);

  // "Disabled" overhead cannot be measured against an uninstrumented build
  // from inside this one; bound it instead by the cost of the disarmed
  // spans a warm Instantiate executes (span ctor+dtor is one relaxed load).
  auto span_start = std::chrono::steady_clock::now();
  constexpr int kSpanIters = 1 << 20;
  for (int i = 0; i < kSpanIters; ++i) {
    TraceSpan span("budget.probe");
    benchmark::DoNotOptimize(&span);
  }
  double span_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - span_start).count();
  constexpr double kSpansPerWarmInstantiate = 4;  // instantiate + cache.get + lease path
  double disabled_pct =
      100.0 * (span_s / kSpanIters) * kSpansPerWarmInstantiate / (off_s / kIters);
  double enabled_pct = 100.0 * (on_s - off_s) / off_s;

  std::printf("BUDGET trace-enabled overhead on warm Instantiate: %.2f%% (budget 5%%) %s\n",
              enabled_pct, enabled_pct <= 5.0 ? "OK" : "EXCEEDED");
  std::printf("BUDGET trace-disabled overhead bound: %.3f%% (budget 1%%) %s\n", disabled_pct,
              disabled_pct <= 1.0 ? "OK" : "EXCEEDED");

  // Sample artifact: a short traced session, exported as Chrome JSON.
  TraceClear();
  TraceSetEnabled(true);
  for (int i = 0; i < 8; ++i) {
    benchmark::DoNotOptimize(BENCH_UNWRAP(world.server->Instantiate("/bin/ls", {}, nullptr)));
  }
  std::string json = TraceToChromeJson();
  TraceSetEnabled(false);
  if (std::FILE* f = std::fopen(sample_path, "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote sample trace: %s (%zu bytes)\n", sample_path, json.size());
  } else {
    std::fprintf(stderr, "cannot write %s\n", sample_path);
    return 1;
  }
  // Budgets are reported, not asserted: shared CI runners are too noisy for
  // a hard perf gate, and the sample artifact preserves the evidence.
  return 0;
}

}  // namespace
}  // namespace omos

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return omos::CheckBudgetsAndWriteSample("bench_trace_sample.trace.json");
}
