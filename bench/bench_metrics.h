// Bench-side bridge to the omtrace metrics registry: capture a snapshot at
// a known point, then publish the delta of selected metrics as
// google-benchmark counters. Replaces hand-rolled `state.counters[...] =`
// reads of per-object stats structs — benches report the same registry
// numbers the server exports over Introspect.
#ifndef OMOS_BENCH_BENCH_METRICS_H_
#define OMOS_BENCH_BENCH_METRICS_H_

#include <initializer_list>
#include <map>
#include <string>
#include <string_view>

#include <benchmark/benchmark.h>

#include "src/support/metrics.h"

namespace omos {

class MetricsDelta {
 public:
  MetricsDelta() : base_(Snap()) {}

  // Current value minus value at construction (0 if the metric was absent).
  uint64_t Delta(std::string_view metric) const {
    std::map<std::string, uint64_t, std::less<>> now = Snap();
    auto it = now.find(metric);
    uint64_t current = it == now.end() ? 0 : it->second;
    auto base = base_.find(metric);
    uint64_t before = base == base_.end() ? 0 : base->second;
    return current - before;
  }

  // Publish each metric's delta as a benchmark counter under its own name.
  void Export(benchmark::State& state, std::initializer_list<std::string_view> metrics) const {
    std::map<std::string, uint64_t, std::less<>> now = Snap();
    for (std::string_view metric : metrics) {
      auto it = now.find(metric);
      uint64_t current = it == now.end() ? 0 : it->second;
      auto base = base_.find(metric);
      uint64_t before = base == base_.end() ? 0 : base->second;
      state.counters[std::string(metric)] =
          benchmark::Counter(static_cast<double>(current - before));
    }
  }

 private:
  static std::map<std::string, uint64_t, std::less<>> Snap() {
    std::map<std::string, uint64_t, std::less<>> out;
    for (const auto& [name, value] : MetricsRegistry::Global().Snapshot()) {
      out[name] = value;
    }
    return out;
  }

  std::map<std::string, uint64_t, std::less<>> base_;
};

}  // namespace omos

#endif  // OMOS_BENCH_BENCH_METRICS_H_
