// Robustness costs: what the fault-tolerance machinery adds to the fast
// path (unarmed fault sites, frame checksums), and what recovery costs when
// faults actually fire (retry with backoff, corruption-triggered rebuilds,
// snapshot/restore round trips).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "bench/bench_metrics.h"
#include "src/ipc/channel.h"
#include "src/support/faultsim.h"
#include "src/support/log.h"

namespace omos {
namespace {

// The price of an unarmed fault site on the hot path: one map lookup guard.
void BM_TripUnarmed(benchmark::State& state) {
  FaultSim::Reset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FaultSim::Trip("fs.read"));
  }
}
BENCHMARK(BM_TripUnarmed);

void BM_TripArmed(benchmark::State& state) {
  ScopedFaultPlan plan(FaultPlan().Arm("fs.read", FaultSpec::Prob(0.01, 7)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FaultSim::Trip("fs.read"));
  }
}
BENCHMARK(BM_TripArmed);

Channel MakeServerChannel(OmosWorld& world) {
  OmosServer* server = world.server.get();
  return Channel(MakeStreamTransport(
      [server](const std::vector<uint8_t>& bytes) { return server->ServeMessage(bytes); },
      2000, 2));
}

// Checksummed-framing overhead on a clean stream round trip.
void BM_StreamCallNoFaults(benchmark::State& state) {
  OmosWorld world = MakeOmosWorld();
  world.Warm();
  Channel channel = MakeServerChannel(world);
  OmosRequest request;
  request.op = OmosOp::kInstantiate;
  request.path = "/bin/ls";
  for (auto _ : state) {
    benchmark::DoNotOptimize(BENCH_UNWRAP(channel.Call(request, nullptr)));
  }
  state.counters["sim_cycles_per_call"] = benchmark::Counter(
      static_cast<double>(channel.cycles_billed()) / static_cast<double>(channel.calls_made()));
}
BENCHMARK(BM_StreamCallNoFaults)->Unit(benchmark::kMicrosecond);

// Same call with a lossy wire: every 4th frame dropped, retries absorb it.
void BM_StreamCallLossyWire(benchmark::State& state) {
  OmosWorld world = MakeOmosWorld();
  world.Warm();
  Channel channel = MakeServerChannel(world);
  channel.set_retry_policy(RetryPolicy::Default());
  OmosRequest request;
  request.op = OmosOp::kInstantiate;
  request.path = "/bin/ls";
  ScopedFaultPlan plan(FaultPlan().Arm("pipe.drop", FaultSpec::Every(4)));
  MetricsDelta delta;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BENCH_UNWRAP(channel.Call(request, nullptr)));
  }
  delta.Export(state, {"ipc.retries", "ipc.backoff_cycles", "fault.total_fires"});
}
BENCHMARK(BM_StreamCallLossyWire)->Unit(benchmark::kMicrosecond);

// Cost of detecting a rotted cache entry and rebuilding it, vs a warm hit.
void BM_CorruptionRebuild(benchmark::State& state) {
  OmosWorld world = MakeOmosWorld();
  world.Warm();
  // Every iteration deliberately rots the cache; silence the per-rebuild log.
  LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  MetricsDelta delta;
  uint64_t work = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ScopedFaultPlan plan(FaultPlan().Arm("cache.bitrot", FaultSpec::Nth(1)));
    state.ResumeTiming();
    uint64_t w = 0;
    benchmark::DoNotOptimize(BENCH_UNWRAP(world.server->Instantiate("/bin/ls", {}, &w)));
    work += w;
  }
  state.counters["sim_rebuild_cycles"] = benchmark::Counter(
      static_cast<double>(work) / static_cast<double>(state.iterations()));
  delta.Export(state, {"cache.corruption_rebuilds", "fault.total_fires"});
  SetLogLevel(old_level);
}
BENCHMARK(BM_CorruptionRebuild)->Unit(benchmark::kMillisecond);

void BM_Snapshot(benchmark::State& state) {
  OmosWorld world = MakeOmosWorld();
  world.Warm();
  size_t bytes = 0;
  for (auto _ : state) {
    std::string snapshot = world.server->Snapshot();
    bytes = snapshot.size();
    benchmark::DoNotOptimize(snapshot);
  }
  state.counters["snapshot_bytes"] = benchmark::Counter(static_cast<double>(bytes));
}
BENCHMARK(BM_Snapshot)->Unit(benchmark::kMillisecond);

void BM_Restore(benchmark::State& state) {
  OmosWorld world = MakeOmosWorld();
  world.Warm();
  std::string snapshot = world.server->Snapshot();
  for (auto _ : state) {
    state.PauseTiming();
    Kernel kernel;
    OmosServer restored(kernel);
    state.ResumeTiming();
    BENCH_CHECK(restored.Restore(snapshot));
  }
}
BENCHMARK(BM_Restore)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace omos
