// Link-engine throughput: merge + relocate as a function of input size.
// Backs the §2.1 discussion (static linking of large programs is the slow
// path OMOS's cache amortizes) and gives the cost OMOS pays on a cache miss.
#include <benchmark/benchmark.h>

#include <set>

#include "bench/bench_common.h"
#include "src/baseline/static_linker.h"

namespace omos {
namespace {

// Merge the first `n` libc members into one module.
Module MergePrefix(int64_t n) {
  const Archive& libc = FullWorkloads().libc;
  Module m;
  bool first = true;
  for (int64_t i = 0; i < n && i < static_cast<int64_t>(libc.members().size()); ++i) {
    Module part =
        Module::FromObject(std::make_shared<const ObjectFile>(libc.members()[static_cast<size_t>(i)]));
    if (first) {
      m = std::move(part);
      first = false;
    } else {
      m = BENCH_UNWRAP(Module::Merge(m, part));
    }
  }
  return m;
}

void BM_MergeFragments(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MergePrefix(state.range(0)));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MergeFragments)->Arg(8)->Arg(32)->Arg(128)->Complexity()->Unit(benchmark::kMicrosecond);

void BM_LinkImage(benchmark::State& state) {
  Module m = MergePrefix(state.range(0));
  uint32_t relocs = 0;
  uint32_t exported = 0;
  for (auto _ : state) {
    LayoutSpec layout;
    LinkedImage image = BENCH_UNWRAP(LinkImage(m, layout, "bench"));
    relocs = image.stats.relocations_applied;
    exported = image.stats.symbols_exported;
    benchmark::DoNotOptimize(image);
  }
  state.counters["relocations"] = relocs;
  state.counters["symbols_exported"] = exported;
}
BENCHMARK(BM_LinkImage)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMicrosecond);

// Same link with the members re-annotated default-hidden (only symbols a
// sibling member references stay exported): the symbol space the linker
// indexes, and the export table the image carries, shrink to the real API —
// compare the symbols_exported counter against BM_LinkImage's.
Module MergePrefixHidden(int64_t n) {
  const Archive& libc = FullWorkloads().libc;
  std::set<std::string> wanted;
  for (const ObjectFile& member : libc.members()) {
    for (const Symbol* ref : member.References()) {
      wanted.insert(ref->name);
    }
  }
  Module m;
  bool first = true;
  for (int64_t i = 0; i < n && i < static_cast<int64_t>(libc.members().size()); ++i) {
    ObjectFile copy = libc.members()[static_cast<size_t>(i)];
    copy.set_default_hidden(true);
    for (Symbol& sym : copy.mutable_symbols()) {
      if (sym.defined && sym.binding != SymbolBinding::kLocal && wanted.count(sym.name) != 0) {
        sym.visibility = SymbolVisibility::kExported;
      }
    }
    Module part = Module::FromObject(std::make_shared<const ObjectFile>(std::move(copy)));
    if (first) {
      m = std::move(part);
      first = false;
    } else {
      m = BENCH_UNWRAP(Module::Merge(m, part));
    }
  }
  return m;
}

void BM_LinkImageDefaultHidden(benchmark::State& state) {
  Module m = MergePrefixHidden(state.range(0));
  uint32_t relocs = 0;
  uint32_t exported = 0;
  for (auto _ : state) {
    LayoutSpec layout;
    LinkedImage image = BENCH_UNWRAP(LinkImage(m, layout, "bench-hidden"));
    relocs = image.stats.relocations_applied;
    exported = image.stats.symbols_exported;
    benchmark::DoNotOptimize(image);
  }
  state.counters["relocations"] = relocs;
  state.counters["symbols_exported"] = exported;
}
BENCHMARK(BM_LinkImageDefaultHidden)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMicrosecond);

// Full static link of the codegen application (client + six libraries):
// the work a traditional development cycle repeats after every edit, and
// which shared libraries (of either flavour) avoid (§2.1).
void BM_StaticLinkCodegen(benchmark::State& state) {
  const Workloads& w = FullWorkloads();
  std::vector<ObjectFile> objs = w.codegen_objs;
  objs.insert(objs.begin(), w.crt0);
  Module prog = BENCH_UNWRAP(ModuleFromObjects(objs));
  for (const Archive* lib : {&w.libc, &w.alpha1, &w.alpha2, &w.libm, &w.libl, &w.libcpp}) {
    prog = BENCH_UNWRAP(Module::Merge(prog, BENCH_UNWRAP(ModuleFromArchive(*lib))));
  }
  CostModel costs;
  uint64_t sim_cost = 0;
  for (auto _ : state) {
    StaticExecutable exe = BENCH_UNWRAP(StaticLink("codegen", prog, costs));
    sim_cost = exe.link_cost;
    benchmark::DoNotOptimize(exe);
  }
  state.counters["sim_link_cycles"] = static_cast<double>(sim_cost);
}
BENCHMARK(BM_StaticLinkCodegen)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace omos
