// bench_upgrade: request service across a mid-run live library upgrade
// (PR 9, docs/upgrade.md).
//
// A lib-dynamic client program is exec'd ~600 times back to back, each
// request wall-clocked (exec + run + release). At the 1/3 mark the library
// is hot-patched to v2 with BeginUpgrade while one long-running task sits
// paused mid-loop inside the old version; DrainUpgrade is polled between
// requests, exactly how a serving loop would drive it. The paused task
// resumes across the upgrade boundary and must finish on a consistent
// version via the OSR frame transfer.
//
// A request is DROPPED if it fails outright or exits with anything other
// than the pure-v1 or pure-v2 value — a torn migration. The PASS gates:
// zero dropped requests across the roll, and physical frames back at the
// warm baseline once every task is gone (the old version reclaimed).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/upgrade/upgrade.h"
#include "src/vasm/assembler.h"

namespace omos {
namespace {

constexpr int kRequests = 600;
constexpr int kUpgradeAt = kRequests / 3;
constexpr int kV1Exit = 21;  // (5 + 2) * 3
constexpr int kV2Exit = 51;  // (5 + 12) * 3

constexpr char kCrt0[] = R"(
.text
.global _start
_start:
  call main
  sys 0
)";

constexpr char kLibV1[] = R"(
.text
.global add2
add2:
  addi r0, r0, 2
  ret
.global mul3
mul3:
  movi r1, 3
  mul r0, r0, r1
  ret
)";

constexpr char kLibV2[] = R"(
.text
.global add2
add2:
  addi r0, r0, 12
  ret
.global mul3
mul3:
  movi r1, 3
  mul r0, r0, r1
  ret
)";

constexpr char kClient[] = R"(
.text
.global main
main:
  push lr
  movi r0, 5
  call add2
  call mul3
  pop lr
  ret
)";

// The long-running task: sums 400 calls to add2(0); each iteration adds 2
// (v1) or 12 (v2), so a consistent mixed-version run exits in [800, 4800].
constexpr char kLooper[] = R"(
.text
.global main
main:
  push lr
  movi r4, 0
  movi r5, 400
  movi r6, 0
loop:
  movi r0, 0
  call add2
  add r4, r4, r0
  addi r5, r5, -1
  bne r5, r6, loop
  mov r0, r4
  pop lr
  ret
)";

struct Percentiles {
  double p50_us = 0;
  double p99_us = 0;
};

Percentiles LatencyPercentiles(std::vector<double> samples_us) {
  Percentiles out;
  if (samples_us.empty()) {
    return out;
  }
  std::sort(samples_us.begin(), samples_us.end());
  out.p50_us = samples_us[samples_us.size() / 2];
  out.p99_us = samples_us[std::min(samples_us.size() - 1, samples_us.size() * 99 / 100)];
  return out;
}

}  // namespace
}  // namespace omos

int main() {
  using namespace omos;
  using Clock = std::chrono::steady_clock;
  std::printf("=== bench_upgrade: requests across a mid-run live upgrade ===\n\n");

  Kernel kernel;
  OmosServer server(kernel);
  BENCH_CHECK(server.AddFragment("/lib/crt0.o", BENCH_UNWRAP(Assemble(kCrt0, "crt0.o"))));
  BENCH_CHECK(server.AddFragment("/obj/lib1.o", BENCH_UNWRAP(Assemble(kLibV1, "lib1.o"))));
  BENCH_CHECK(server.AddFragment("/obj/lib2.o", BENCH_UNWRAP(Assemble(kLibV2, "lib2.o"))));
  BENCH_CHECK(server.AddFragment("/obj/client.o", BENCH_UNWRAP(Assemble(kClient, "client.o"))));
  BENCH_CHECK(server.AddFragment("/obj/looper.o", BENCH_UNWRAP(Assemble(kLooper, "looper.o"))));
  BENCH_CHECK(server.DefineLibrary("/lib/addlib", "(merge /obj/lib1.o)"));
  BENCH_CHECK(server.DefineMeta("/bin/req",
                                "(merge /lib/crt0.o /obj/client.o"
                                " (specialize \"lib-dynamic\" /lib/addlib))"));
  BENCH_CHECK(server.DefineMeta("/bin/looper",
                                "(merge /lib/crt0.o /obj/looper.o"
                                " (specialize \"lib-dynamic\" /lib/addlib))"));

  // Warm both images and take the frame baseline the roll must return to
  // (v1 and v2 are the same shape, so the post-roll cached footprint must
  // equal the warm v1 footprint exactly).
  for (const char* path : {"/bin/req", "/bin/looper"}) {
    TaskId warm = BENCH_UNWRAP(server.IntegratedExec(path, {"warm"}));
    Task* task = kernel.FindTask(warm);
    BENCH_CHECK(kernel.RunTask(*task));
    server.ReleaseTask(warm);
    kernel.DestroyTask(warm);
  }
  uint32_t frame_baseline = kernel.phys().frames_in_use();

  // The long-running client: pause it mid-loop inside v1 before the roll.
  TaskId looper = BENCH_UNWRAP(server.IntegratedExec("/bin/looper", {"looper"}));
  Task* looper_task = kernel.FindTask(looper);
  if (kernel.RunTask(*looper_task, 200).ok()) {
    std::fprintf(stderr, "looper finished before the upgrade window\n");
    return 1;
  }

  int served = 0;
  int dropped = 0;
  bool upgraded = false;
  int looper_exit = -1;
  bool looper_consistent = false;
  std::vector<double> before_us;
  std::vector<double> during_us;
  std::vector<double> after_us;
  auto roll_start = Clock::now();
  for (int i = 0; i < kRequests; ++i) {
    if (i == kUpgradeAt) {
      BENCH_UNWRAP(server.BeginUpgrade("/lib/addlib", "(merge /obj/lib2.o)"));
      upgraded = true;
    }
    if (i == 2 * kRequests / 3) {
      // Resume the paused task across the upgrade boundary: its frame is
      // transferred OSR-style at its first safepoint, and its exit lets
      // the drain complete mid-roll.
      BENCH_CHECK(kernel.RunTask(*looper_task));
      looper_exit = looper_task->exit_code();
      looper_consistent = looper_exit >= 400 * 2 && looper_exit <= 400 * 12;
      if (!looper_consistent) {
        ++dropped;
      }
      server.ReleaseTask(looper);
      kernel.DestroyTask(looper);
    }
    if (upgraded) {
      // The serving loop drives the upgrade between requests, like a
      // real event loop would.
      OmosServer::UpgradeStatus status = server.DrainUpgrade();
      if (status.phase == UpgradePhase::kAborted) {
        std::fprintf(stderr, "upgrade aborted: %s\n", status.error.c_str());
        return 1;
      }
    }
    auto start = Clock::now();
    auto id = server.IntegratedExec("/bin/req", {"req"});
    bool ok = id.ok();
    int exit_code = -1;
    if (ok) {
      Task* task = kernel.FindTask(*id);
      ok = task != nullptr && kernel.RunTask(*task).ok();
      if (ok) {
        exit_code = task->exit_code();
      }
      server.ReleaseTask(*id);
      kernel.DestroyTask(*id);
    }
    double us = std::chrono::duration<double, std::micro>(Clock::now() - start).count();
    if (!ok || (exit_code != kV1Exit && exit_code != kV2Exit)) {
      ++dropped;
    } else {
      ++served;
    }
    OmosServer::UpgradeStatus status = server.UpgradeStatusNow();
    if (!upgraded) {
      before_us.push_back(us);
    } else if (status.phase == UpgradePhase::kDone) {
      after_us.push_back(us);
    } else {
      during_us.push_back(us);
    }
  }
  double roll_s =
      std::chrono::duration<double>(Clock::now() - roll_start).count();

  // Finish the drain if the roll's polling didn't already.
  OmosServer::UpgradeStatus final_status = server.DrainUpgrade();
  for (int i = 0; i < 64 && !final_status.terminal(); ++i) {
    final_status = server.DrainUpgrade();
  }

  // Re-warm both programs on v2 before comparing frames: reclamation
  // evicted the v1-linked images, so the steady-state footprint is one
  // fresh build of each — the same shape the baseline measured.
  for (const char* path : {"/bin/req", "/bin/looper"}) {
    TaskId warm = BENCH_UNWRAP(server.IntegratedExec(path, {"warm"}));
    Task* task = kernel.FindTask(warm);
    BENCH_CHECK(kernel.RunTask(*task));
    server.ReleaseTask(warm);
    kernel.DestroyTask(warm);
  }

  Percentiles before = LatencyPercentiles(before_us);
  Percentiles during = LatencyPercentiles(during_us);
  Percentiles after = LatencyPercentiles(after_us);
  std::printf("%12s %10s %12s %12s\n", "window", "requests", "p50 us", "p99 us");
  std::printf("%12s %10zu %12.1f %12.1f\n", "pre-roll", before_us.size(), before.p50_us,
              before.p99_us);
  std::printf("%12s %10zu %12.1f %12.1f\n", "mid-roll", during_us.size(), during.p50_us,
              during.p99_us);
  std::printf("%12s %10zu %12.1f %12.1f\n", "post-roll", after_us.size(), after.p50_us,
              after.p99_us);
  std::printf("\n  %.0f requests/sec across the roll (%d requests in %.3fs)\n",
              kRequests / roll_s, kRequests, roll_s);
  std::printf("  long-running task exited %d after OSR transfer (consistent: %s)\n",
              looper_exit, looper_consistent ? "yes" : "NO");
  std::printf("  final upgrade phase: %s\n\n", UpgradePhaseName(final_status.phase));

  bool zero_dropped = dropped == 0 && served == kRequests;
  std::printf("  %s: bench_upgrade zero dropped requests (%d served, %d dropped)\n",
              zero_dropped ? "PASS" : "FAIL", served, dropped);
  uint32_t frames_now = kernel.phys().frames_in_use();
  bool reclaimed = final_status.phase == UpgradePhase::kDone && frames_now == frame_baseline;
  std::printf("  %s: old version reclaimed, frames at baseline (%u now vs %u baseline)\n",
              reclaimed ? "PASS" : "FAIL", frames_now, frame_baseline);
  return (zero_dropped && reclaimed) ? 0 : 1;
}
