#include "bench/bench_common.h"

namespace omos {

const Workloads& FullWorkloads() {
  static const Workloads* workloads = [] {
    WorkloadParams params;  // full size
    return new Workloads(BENCH_UNWRAP(BuildWorkloads(params)));
  }();
  return *workloads;
}

InvocationCost BaselineWorld::Run(const std::string& prog, std::vector<std::string> args) {
  TaskId id = BENCH_UNWRAP(rtld->Exec(prog, std::move(args)));
  Task* task = kernel->FindTask(id);
  BENCH_CHECK(kernel->RunTask(*task));
  if (task->exit_code() != 0) {
    std::fprintf(stderr, "baseline %s exited %d\n", prog.c_str(), task->exit_code());
    std::abort();
  }
  InvocationCost cost{task->user_cycles(), task->sys_cycles()};
  rtld->ReleaseTask(id);
  kernel->DestroyTask(id);
  return cost;
}

InvocationCost OmosWorld::Run(const std::string& meta, std::vector<std::string> args,
                              bool integrated) {
  TaskId id = integrated ? BENCH_UNWRAP(server->IntegratedExec(meta, std::move(args)))
                         : BENCH_UNWRAP(server->BootstrapExec(meta, std::move(args)));
  Task* task = kernel->FindTask(id);
  BENCH_CHECK(kernel->RunTask(*task));
  if (task->exit_code() != 0) {
    std::fprintf(stderr, "omos %s exited %d\n", meta.c_str(), task->exit_code());
    std::abort();
  }
  InvocationCost cost{task->user_cycles(), task->sys_cycles()};
  server->ReleaseTask(id);
  kernel->DestroyTask(id);
  return cost;
}

PageSharing BaselineWorld::SampleSharing(const std::string& prog,
                                         std::vector<std::string> args) {
  TaskId id = BENCH_UNWRAP(rtld->Exec(prog, std::move(args)));
  Task* task = kernel->FindTask(id);
  BENCH_CHECK(kernel->RunTask(*task));
  PageSharing sharing{task->space().shared_pages(), task->space().private_pages(),
                      kernel->phys().frames_in_use()};
  rtld->ReleaseTask(id);
  kernel->DestroyTask(id);
  return sharing;
}

PageSharing OmosWorld::SampleSharing(const std::string& meta, std::vector<std::string> args,
                                     bool integrated) {
  TaskId id = integrated ? BENCH_UNWRAP(server->IntegratedExec(meta, std::move(args)))
                         : BENCH_UNWRAP(server->BootstrapExec(meta, std::move(args)));
  Task* task = kernel->FindTask(id);
  BENCH_CHECK(kernel->RunTask(*task));
  PageSharing sharing{task->space().shared_pages(), task->space().private_pages(),
                      kernel->phys().frames_in_use()};
  server->ReleaseTask(id);
  kernel->DestroyTask(id);
  return sharing;
}

void OmosWorld::Warm() {
  BENCH_UNWRAP(server->Instantiate("/bin/ls", {}, nullptr));
  BENCH_UNWRAP(server->Instantiate("/bin/codegen", {}, nullptr));
}

void OmosWorld::Prelink() { BENCH_UNWRAP(server->PrelinkNamespace("/bin")); }

InvocationCost OmosWorld::RunPrelinked(const std::string& meta, std::vector<std::string> args) {
  TaskId id = BENCH_UNWRAP(server->PrelinkedExec(meta, std::move(args)));
  Task* task = kernel->FindTask(id);
  BENCH_CHECK(kernel->RunTask(*task));
  if (task->exit_code() != 0) {
    std::fprintf(stderr, "omos prelinked %s exited %d\n", meta.c_str(), task->exit_code());
    std::abort();
  }
  InvocationCost cost{task->user_cycles(), task->sys_cycles()};
  server->ReleaseTask(id);
  kernel->DestroyTask(id);
  return cost;
}

PageSharing OmosWorld::SampleSharingPrelinked(const std::string& meta,
                                              std::vector<std::string> args) {
  TaskId id = BENCH_UNWRAP(server->PrelinkedExec(meta, std::move(args)));
  Task* task = kernel->FindTask(id);
  BENCH_CHECK(kernel->RunTask(*task));
  PageSharing sharing{task->space().shared_pages(), task->space().private_pages(),
                      kernel->phys().frames_in_use()};
  server->ReleaseTask(id);
  kernel->DestroyTask(id);
  return sharing;
}

BaselineWorld MakeBaselineWorld() {
  const Workloads& w = FullWorkloads();
  BaselineWorld world;
  world.kernel = std::make_unique<Kernel>();
  PopulateLsData(world.kernel->fs());
  PopulateCodegenInputs(world.kernel->fs());
  world.rtld = std::make_unique<Rtld>(*world.kernel);

  DynLibBuilder builder;
  std::vector<const DynImage*> all_libs;
  for (const Archive* archive :
       {&w.libc, &w.alpha1, &w.alpha2, &w.libm, &w.libl, &w.libcpp}) {
    Module m = BENCH_UNWRAP(ModuleFromArchive(*archive));
    DynImage lib = BENCH_UNWRAP(builder.BuildLibrary(archive->name(), m));
    BENCH_CHECK(world.rtld->Install(std::move(lib)));
    all_libs.push_back(world.rtld->Find(archive->name()));
  }

  Module ls_module = BENCH_UNWRAP(ModuleFromObjects({w.crt0, w.ls_obj}));
  DynImage ls_prog =
      BENCH_UNWRAP(builder.BuildExecutable("ls", ls_module, {world.rtld->Find("libc")}));
  BENCH_CHECK(world.rtld->Install(std::move(ls_prog)));

  std::vector<ObjectFile> cg_objs = w.codegen_objs;
  cg_objs.insert(cg_objs.begin(), w.crt0);
  Module cg_module = BENCH_UNWRAP(ModuleFromObjects(cg_objs));
  DynImage cg_prog = BENCH_UNWRAP(builder.BuildExecutable("codegen", cg_module, all_libs));
  BENCH_CHECK(world.rtld->Install(std::move(cg_prog)));
  return world;
}

OmosWorld MakeOmosWorld() {
  const Workloads& w = FullWorkloads();
  OmosWorld world;
  world.kernel = std::make_unique<Kernel>();
  PopulateLsData(world.kernel->fs());
  PopulateCodegenInputs(world.kernel->fs());
  world.server = std::make_unique<OmosServer>(*world.kernel);
  OmosServer& server = *world.server;

  BENCH_CHECK(server.AddFragment("/lib/crt0.o", w.crt0));
  BENCH_CHECK(server.AddFragment("/obj/ls.o", w.ls_obj));
  BENCH_CHECK(server.AddArchive("/libc", w.libc));
  BENCH_CHECK(server.AddArchive("/alpha1", w.alpha1));
  BENCH_CHECK(server.AddArchive("/alpha2", w.alpha2));
  BENCH_CHECK(server.AddArchive("/libm", w.libm));
  BENCH_CHECK(server.AddArchive("/libl", w.libl));
  BENCH_CHECK(server.AddArchive("/libC", w.libcpp));
  BENCH_CHECK(server.DefineLibrary("/lib/libc",
                                   "(constraint-list \"T\" 0x2000000)\n(merge /libc)"));
  BENCH_CHECK(server.DefineLibrary("/lib/alpha1",
                                   "(constraint-list \"T\" 0x3000000)\n(merge /alpha1)"));
  BENCH_CHECK(server.DefineLibrary("/lib/alpha2",
                                   "(constraint-list \"T\" 0x4000000)\n(merge /alpha2)"));
  BENCH_CHECK(server.DefineLibrary("/lib/libm",
                                   "(constraint-list \"T\" 0x5000000)\n(merge /libm)"));
  BENCH_CHECK(server.DefineLibrary("/lib/libl",
                                   "(constraint-list \"T\" 0x6000000)\n(merge /libl)"));
  BENCH_CHECK(server.DefineLibrary("/lib/libC",
                                   "(constraint-list \"T\" 0x7000000)\n(merge /libC)"));
  BENCH_CHECK(server.DefineMeta("/bin/ls", "(merge /lib/crt0.o /obj/ls.o /lib/libc)"));

  std::string cg_meta = "(merge /lib/crt0.o";
  for (size_t i = 0; i < w.codegen_objs.size(); ++i) {
    std::string path = StrCat("/obj/cg", i, ".o");
    BENCH_CHECK(server.AddFragment(path, w.codegen_objs[i]));
    cg_meta += " " + path;
  }
  cg_meta += " /lib/libc /lib/alpha1 /lib/alpha2 /lib/libm /lib/libl /lib/libC)";
  BENCH_CHECK(server.DefineMeta("/bin/codegen", cg_meta));
  return world;
}

}  // namespace omos
