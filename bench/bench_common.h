// Shared setup for the benchmark binaries: full-size workloads wired into
// (a) a traditional-shared-library world and (b) an OMOS world.
#ifndef OMOS_BENCH_BENCH_COMMON_H_
#define OMOS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/baseline/dynlib.h"
#include "src/core/server.h"
#include "src/support/strings.h"
#include "src/workloads/workloads.h"

namespace omos {

// Abort-on-error unwrap for bench setup code.
template <typename T>
T BenchUnwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "bench setup failed (%s): %s\n", what,
                 result.error().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

inline void BenchCheck(const Result<void>& result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "bench setup failed (%s): %s\n", what,
                 result.error().ToString().c_str());
    std::abort();
  }
}

#define BENCH_UNWRAP(expr) BenchUnwrap((expr), #expr)
#define BENCH_CHECK(expr) BenchCheck((expr), #expr)

// Full-size workloads (built once per process).
const Workloads& FullWorkloads();

// Simulated per-invocation cost of one program run.
struct InvocationCost {
  uint64_t user = 0;
  uint64_t sys = 0;
  uint64_t elapsed() const { return user + sys; }
};

// Page-sharing snapshot of one task sampled after it ran to completion but
// before teardown: shared = pages still referencing cached master frames
// (text + unbroken CoW data), private = per-task frames (stack, heap,
// CoW-broken and demand-filled pages), frames_in_use = pool-wide frames
// with the task still resident.
struct PageSharing {
  uint32_t shared_pages = 0;
  uint32_t private_pages = 0;
  uint32_t frames_in_use = 0;
};

// A world with the traditional shared-library scheme installed.
struct BaselineWorld {
  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<Rtld> rtld;

  // Programs installed: "ls" and "codegen".
  InvocationCost Run(const std::string& prog, std::vector<std::string> args);
  PageSharing SampleSharing(const std::string& prog, std::vector<std::string> args);
};

// A world with an OMOS server installed; meta-objects /bin/ls, /bin/codegen.
struct OmosWorld {
  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<OmosServer> server;

  InvocationCost Run(const std::string& meta, std::vector<std::string> args, bool integrated);
  PageSharing SampleSharing(const std::string& meta, std::vector<std::string> args,
                            bool integrated);
  // Pre-build all images so timed runs measure the warm path (the paper
  // generates fixed versions "at installation time", §4.1).
  void Warm();
  // Fleet-wide prelink over /bin: solve the namespace-global layout once,
  // record every meta in the prelink table, enable the subsystem. Warm
  // PrelinkedExec then maps stamped images with zero per-exec relocations.
  void Prelink();
  InvocationCost RunPrelinked(const std::string& meta, std::vector<std::string> args);
  PageSharing SampleSharingPrelinked(const std::string& meta, std::vector<std::string> args);
};

BaselineWorld MakeBaselineWorld();
OmosWorld MakeOmosWorld();

// 67 MHz PA-RISC clock (HP9000/730) for cycle -> seconds conversion.
inline constexpr double kClockHz = 67.0e6;
inline double Seconds(uint64_t cycles) { return static_cast<double>(cycles) / kClockHz; }

}  // namespace omos

#endif  // OMOS_BENCH_BENCH_COMMON_H_
