file(REMOVE_RECURSE
  "CMakeFiles/bench_link.dir/bench_link.cc.o"
  "CMakeFiles/bench_link.dir/bench_link.cc.o.d"
  "bench_link"
  "bench_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
