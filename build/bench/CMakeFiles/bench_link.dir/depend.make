# Empty dependencies file for bench_link.
# This may be replaced when dependencies are built.
