file(REMOVE_RECURSE
  "CMakeFiles/bench_reorder.dir/bench_reorder.cc.o"
  "CMakeFiles/bench_reorder.dir/bench_reorder.cc.o.d"
  "bench_reorder"
  "bench_reorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
