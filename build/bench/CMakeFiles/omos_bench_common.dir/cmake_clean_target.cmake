file(REMOVE_RECURSE
  "../lib/libomos_bench_common.a"
)
