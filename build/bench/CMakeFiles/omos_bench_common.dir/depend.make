# Empty dependencies file for omos_bench_common.
# This may be replaced when dependencies are built.
