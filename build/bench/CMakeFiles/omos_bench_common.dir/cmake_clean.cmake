file(REMOVE_RECURSE
  "../lib/libomos_bench_common.a"
  "../lib/libomos_bench_common.pdb"
  "CMakeFiles/omos_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/omos_bench_common.dir/bench_common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omos_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
