file(REMOVE_RECURSE
  "CMakeFiles/bench_pic_overhead.dir/bench_pic_overhead.cc.o"
  "CMakeFiles/bench_pic_overhead.dir/bench_pic_overhead.cc.o.d"
  "bench_pic_overhead"
  "bench_pic_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pic_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
