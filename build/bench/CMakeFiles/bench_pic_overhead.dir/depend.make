# Empty dependencies file for bench_pic_overhead.
# This may be replaced when dependencies are built.
