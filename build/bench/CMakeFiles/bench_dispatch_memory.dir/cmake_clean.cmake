file(REMOVE_RECURSE
  "CMakeFiles/bench_dispatch_memory.dir/bench_dispatch_memory.cc.o"
  "CMakeFiles/bench_dispatch_memory.dir/bench_dispatch_memory.cc.o.d"
  "bench_dispatch_memory"
  "bench_dispatch_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dispatch_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
