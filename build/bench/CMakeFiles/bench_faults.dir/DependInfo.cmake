
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_faults.cc" "bench/CMakeFiles/bench_faults.dir/bench_faults.cc.o" "gcc" "bench/CMakeFiles/bench_faults.dir/bench_faults.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/omos_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/omos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/omos_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/omos_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/omos_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/omos_os.dir/DependInfo.cmake"
  "/root/repo/build/src/linker/CMakeFiles/omos_linker.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/omos_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/vasm/CMakeFiles/omos_vasm.dir/DependInfo.cmake"
  "/root/repo/build/src/objfmt/CMakeFiles/omos_objfmt.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/omos_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/omos_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/omos_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
