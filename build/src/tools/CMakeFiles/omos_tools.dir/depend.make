# Empty dependencies file for omos_tools.
# This may be replaced when dependencies are built.
