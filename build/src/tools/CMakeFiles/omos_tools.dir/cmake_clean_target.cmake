file(REMOVE_RECURSE
  "libomos_tools.a"
)
