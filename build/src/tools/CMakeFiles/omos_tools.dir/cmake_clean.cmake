file(REMOVE_RECURSE
  "CMakeFiles/omos_tools.dir/ofe_lib.cc.o"
  "CMakeFiles/omos_tools.dir/ofe_lib.cc.o.d"
  "libomos_tools.a"
  "libomos_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omos_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
