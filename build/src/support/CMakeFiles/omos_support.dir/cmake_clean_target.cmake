file(REMOVE_RECURSE
  "libomos_support.a"
)
