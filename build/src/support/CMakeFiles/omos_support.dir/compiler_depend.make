# Empty compiler generated dependencies file for omos_support.
# This may be replaced when dependencies are built.
