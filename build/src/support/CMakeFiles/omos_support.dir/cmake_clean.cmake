file(REMOVE_RECURSE
  "CMakeFiles/omos_support.dir/error.cc.o"
  "CMakeFiles/omos_support.dir/error.cc.o.d"
  "CMakeFiles/omos_support.dir/faultsim.cc.o"
  "CMakeFiles/omos_support.dir/faultsim.cc.o.d"
  "CMakeFiles/omos_support.dir/log.cc.o"
  "CMakeFiles/omos_support.dir/log.cc.o.d"
  "CMakeFiles/omos_support.dir/strings.cc.o"
  "CMakeFiles/omos_support.dir/strings.cc.o.d"
  "libomos_support.a"
  "libomos_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omos_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
