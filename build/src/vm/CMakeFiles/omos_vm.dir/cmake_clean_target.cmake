file(REMOVE_RECURSE
  "libomos_vm.a"
)
