# Empty compiler generated dependencies file for omos_vm.
# This may be replaced when dependencies are built.
