file(REMOVE_RECURSE
  "CMakeFiles/omos_vm.dir/address_space.cc.o"
  "CMakeFiles/omos_vm.dir/address_space.cc.o.d"
  "CMakeFiles/omos_vm.dir/phys_memory.cc.o"
  "CMakeFiles/omos_vm.dir/phys_memory.cc.o.d"
  "libomos_vm.a"
  "libomos_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omos_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
