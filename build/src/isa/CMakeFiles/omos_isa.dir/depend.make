# Empty dependencies file for omos_isa.
# This may be replaced when dependencies are built.
