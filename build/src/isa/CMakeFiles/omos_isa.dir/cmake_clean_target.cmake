file(REMOVE_RECURSE
  "libomos_isa.a"
)
