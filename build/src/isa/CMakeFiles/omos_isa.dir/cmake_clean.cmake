file(REMOVE_RECURSE
  "CMakeFiles/omos_isa.dir/isa.cc.o"
  "CMakeFiles/omos_isa.dir/isa.cc.o.d"
  "libomos_isa.a"
  "libomos_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omos_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
