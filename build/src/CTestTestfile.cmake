# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("objfmt")
subdirs("isa")
subdirs("vasm")
subdirs("cc")
subdirs("vm")
subdirs("os")
subdirs("linker")
subdirs("ipc")
subdirs("core")
subdirs("baseline")
subdirs("workloads")
subdirs("tools")
