file(REMOVE_RECURSE
  "libomos_cc.a"
)
