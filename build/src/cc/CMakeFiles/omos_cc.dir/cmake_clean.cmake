file(REMOVE_RECURSE
  "CMakeFiles/omos_cc.dir/compiler.cc.o"
  "CMakeFiles/omos_cc.dir/compiler.cc.o.d"
  "libomos_cc.a"
  "libomos_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omos_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
