# Empty compiler generated dependencies file for omos_cc.
# This may be replaced when dependencies are built.
