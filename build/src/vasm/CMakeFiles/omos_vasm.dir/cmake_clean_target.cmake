file(REMOVE_RECURSE
  "libomos_vasm.a"
)
