# Empty dependencies file for omos_vasm.
# This may be replaced when dependencies are built.
