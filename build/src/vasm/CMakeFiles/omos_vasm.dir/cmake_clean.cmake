file(REMOVE_RECURSE
  "CMakeFiles/omos_vasm.dir/assembler.cc.o"
  "CMakeFiles/omos_vasm.dir/assembler.cc.o.d"
  "libomos_vasm.a"
  "libomos_vasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omos_vasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
