file(REMOVE_RECURSE
  "libomos_objfmt.a"
)
