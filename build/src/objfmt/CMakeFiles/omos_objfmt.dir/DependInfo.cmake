
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/objfmt/archive.cc" "src/objfmt/CMakeFiles/omos_objfmt.dir/archive.cc.o" "gcc" "src/objfmt/CMakeFiles/omos_objfmt.dir/archive.cc.o.d"
  "/root/repo/src/objfmt/backend.cc" "src/objfmt/CMakeFiles/omos_objfmt.dir/backend.cc.o" "gcc" "src/objfmt/CMakeFiles/omos_objfmt.dir/backend.cc.o.d"
  "/root/repo/src/objfmt/object_file.cc" "src/objfmt/CMakeFiles/omos_objfmt.dir/object_file.cc.o" "gcc" "src/objfmt/CMakeFiles/omos_objfmt.dir/object_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/omos_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
