file(REMOVE_RECURSE
  "CMakeFiles/omos_objfmt.dir/archive.cc.o"
  "CMakeFiles/omos_objfmt.dir/archive.cc.o.d"
  "CMakeFiles/omos_objfmt.dir/backend.cc.o"
  "CMakeFiles/omos_objfmt.dir/backend.cc.o.d"
  "CMakeFiles/omos_objfmt.dir/object_file.cc.o"
  "CMakeFiles/omos_objfmt.dir/object_file.cc.o.d"
  "libomos_objfmt.a"
  "libomos_objfmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omos_objfmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
