# Empty compiler generated dependencies file for omos_objfmt.
# This may be replaced when dependencies are built.
