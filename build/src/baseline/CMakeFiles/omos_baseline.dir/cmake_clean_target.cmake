file(REMOVE_RECURSE
  "libomos_baseline.a"
)
