file(REMOVE_RECURSE
  "CMakeFiles/omos_baseline.dir/dyn_codec.cc.o"
  "CMakeFiles/omos_baseline.dir/dyn_codec.cc.o.d"
  "CMakeFiles/omos_baseline.dir/dynlib.cc.o"
  "CMakeFiles/omos_baseline.dir/dynlib.cc.o.d"
  "CMakeFiles/omos_baseline.dir/static_linker.cc.o"
  "CMakeFiles/omos_baseline.dir/static_linker.cc.o.d"
  "libomos_baseline.a"
  "libomos_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omos_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
