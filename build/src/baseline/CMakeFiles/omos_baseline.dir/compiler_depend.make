# Empty compiler generated dependencies file for omos_baseline.
# This may be replaced when dependencies are built.
