# Empty dependencies file for omos_linker.
# This may be replaced when dependencies are built.
