file(REMOVE_RECURSE
  "CMakeFiles/omos_linker.dir/image_codec.cc.o"
  "CMakeFiles/omos_linker.dir/image_codec.cc.o.d"
  "CMakeFiles/omos_linker.dir/link.cc.o"
  "CMakeFiles/omos_linker.dir/link.cc.o.d"
  "CMakeFiles/omos_linker.dir/module.cc.o"
  "CMakeFiles/omos_linker.dir/module.cc.o.d"
  "libomos_linker.a"
  "libomos_linker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omos_linker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
