file(REMOVE_RECURSE
  "libomos_linker.a"
)
