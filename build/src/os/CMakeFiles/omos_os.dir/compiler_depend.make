# Empty compiler generated dependencies file for omos_os.
# This may be replaced when dependencies are built.
