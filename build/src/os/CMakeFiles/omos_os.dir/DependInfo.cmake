
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/cpu.cc" "src/os/CMakeFiles/omos_os.dir/cpu.cc.o" "gcc" "src/os/CMakeFiles/omos_os.dir/cpu.cc.o.d"
  "/root/repo/src/os/kernel.cc" "src/os/CMakeFiles/omos_os.dir/kernel.cc.o" "gcc" "src/os/CMakeFiles/omos_os.dir/kernel.cc.o.d"
  "/root/repo/src/os/loader.cc" "src/os/CMakeFiles/omos_os.dir/loader.cc.o" "gcc" "src/os/CMakeFiles/omos_os.dir/loader.cc.o.d"
  "/root/repo/src/os/sim_fs.cc" "src/os/CMakeFiles/omos_os.dir/sim_fs.cc.o" "gcc" "src/os/CMakeFiles/omos_os.dir/sim_fs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/omos_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/omos_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/linker/CMakeFiles/omos_linker.dir/DependInfo.cmake"
  "/root/repo/build/src/objfmt/CMakeFiles/omos_objfmt.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/omos_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
