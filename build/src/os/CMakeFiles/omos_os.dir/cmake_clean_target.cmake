file(REMOVE_RECURSE
  "libomos_os.a"
)
