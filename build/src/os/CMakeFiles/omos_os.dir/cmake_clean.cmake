file(REMOVE_RECURSE
  "CMakeFiles/omos_os.dir/cpu.cc.o"
  "CMakeFiles/omos_os.dir/cpu.cc.o.d"
  "CMakeFiles/omos_os.dir/kernel.cc.o"
  "CMakeFiles/omos_os.dir/kernel.cc.o.d"
  "CMakeFiles/omos_os.dir/loader.cc.o"
  "CMakeFiles/omos_os.dir/loader.cc.o.d"
  "CMakeFiles/omos_os.dir/sim_fs.cc.o"
  "CMakeFiles/omos_os.dir/sim_fs.cc.o.d"
  "libomos_os.a"
  "libomos_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omos_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
