file(REMOVE_RECURSE
  "CMakeFiles/omos_core.dir/cache.cc.o"
  "CMakeFiles/omos_core.dir/cache.cc.o.d"
  "CMakeFiles/omos_core.dir/constraints.cc.o"
  "CMakeFiles/omos_core.dir/constraints.cc.o.d"
  "CMakeFiles/omos_core.dir/namespace.cc.o"
  "CMakeFiles/omos_core.dir/namespace.cc.o.d"
  "CMakeFiles/omos_core.dir/server.cc.o"
  "CMakeFiles/omos_core.dir/server.cc.o.d"
  "CMakeFiles/omos_core.dir/sexpr.cc.o"
  "CMakeFiles/omos_core.dir/sexpr.cc.o.d"
  "CMakeFiles/omos_core.dir/stubgen.cc.o"
  "CMakeFiles/omos_core.dir/stubgen.cc.o.d"
  "libomos_core.a"
  "libomos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
