file(REMOVE_RECURSE
  "libomos_core.a"
)
