# Empty compiler generated dependencies file for omos_core.
# This may be replaced when dependencies are built.
