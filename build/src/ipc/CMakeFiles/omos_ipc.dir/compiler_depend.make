# Empty compiler generated dependencies file for omos_ipc.
# This may be replaced when dependencies are built.
