file(REMOVE_RECURSE
  "libomos_ipc.a"
)
