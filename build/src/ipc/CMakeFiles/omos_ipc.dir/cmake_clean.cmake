file(REMOVE_RECURSE
  "CMakeFiles/omos_ipc.dir/channel.cc.o"
  "CMakeFiles/omos_ipc.dir/channel.cc.o.d"
  "CMakeFiles/omos_ipc.dir/message.cc.o"
  "CMakeFiles/omos_ipc.dir/message.cc.o.d"
  "CMakeFiles/omos_ipc.dir/transport.cc.o"
  "CMakeFiles/omos_ipc.dir/transport.cc.o.d"
  "libomos_ipc.a"
  "libomos_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omos_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
