file(REMOVE_RECURSE
  "CMakeFiles/omos_workloads.dir/workloads.cc.o"
  "CMakeFiles/omos_workloads.dir/workloads.cc.o.d"
  "libomos_workloads.a"
  "libomos_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omos_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
