# Empty compiler generated dependencies file for omos_workloads.
# This may be replaced when dependencies are built.
