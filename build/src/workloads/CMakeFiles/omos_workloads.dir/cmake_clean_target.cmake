file(REMOVE_RECURSE
  "libomos_workloads.a"
)
