# Empty compiler generated dependencies file for rename_abort.
# This may be replaced when dependencies are built.
