file(REMOVE_RECURSE
  "CMakeFiles/rename_abort.dir/rename_abort.cpp.o"
  "CMakeFiles/rename_abort.dir/rename_abort.cpp.o.d"
  "rename_abort"
  "rename_abort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rename_abort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
