file(REMOVE_RECURSE
  "CMakeFiles/omos_shell.dir/omos_shell.cpp.o"
  "CMakeFiles/omos_shell.dir/omos_shell.cpp.o.d"
  "omos_shell"
  "omos_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omos_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
