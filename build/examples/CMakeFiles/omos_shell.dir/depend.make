# Empty dependencies file for omos_shell.
# This may be replaced when dependencies are built.
