# Empty dependencies file for ofe.
# This may be replaced when dependencies are built.
