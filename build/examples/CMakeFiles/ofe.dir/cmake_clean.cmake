file(REMOVE_RECURSE
  "CMakeFiles/ofe.dir/ofe.cpp.o"
  "CMakeFiles/ofe.dir/ofe.cpp.o.d"
  "ofe"
  "ofe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ofe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
