# Empty dependencies file for reorder_opt.
# This may be replaced when dependencies are built.
