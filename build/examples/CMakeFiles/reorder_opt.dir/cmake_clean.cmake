file(REMOVE_RECURSE
  "CMakeFiles/reorder_opt.dir/reorder_opt.cpp.o"
  "CMakeFiles/reorder_opt.dir/reorder_opt.cpp.o.d"
  "reorder_opt"
  "reorder_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reorder_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
