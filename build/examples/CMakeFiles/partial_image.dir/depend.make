# Empty dependencies file for partial_image.
# This may be replaced when dependencies are built.
