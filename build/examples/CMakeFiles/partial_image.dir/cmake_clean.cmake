file(REMOVE_RECURSE
  "CMakeFiles/partial_image.dir/partial_image.cpp.o"
  "CMakeFiles/partial_image.dir/partial_image.cpp.o.d"
  "partial_image"
  "partial_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
