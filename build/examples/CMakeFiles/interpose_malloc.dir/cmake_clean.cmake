file(REMOVE_RECURSE
  "CMakeFiles/interpose_malloc.dir/interpose_malloc.cpp.o"
  "CMakeFiles/interpose_malloc.dir/interpose_malloc.cpp.o.d"
  "interpose_malloc"
  "interpose_malloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpose_malloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
