# Empty compiler generated dependencies file for interpose_malloc.
# This may be replaced when dependencies are built.
