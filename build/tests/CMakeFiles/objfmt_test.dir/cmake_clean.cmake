file(REMOVE_RECURSE
  "CMakeFiles/objfmt_test.dir/objfmt_test.cc.o"
  "CMakeFiles/objfmt_test.dir/objfmt_test.cc.o.d"
  "objfmt_test"
  "objfmt_test.pdb"
  "objfmt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objfmt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
