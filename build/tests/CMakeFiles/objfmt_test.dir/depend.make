# Empty dependencies file for objfmt_test.
# This may be replaced when dependencies are built.
