file(REMOVE_RECURSE
  "CMakeFiles/workloadgen_test.dir/workloadgen_test.cc.o"
  "CMakeFiles/workloadgen_test.dir/workloadgen_test.cc.o.d"
  "workloadgen_test"
  "workloadgen_test.pdb"
  "workloadgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloadgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
