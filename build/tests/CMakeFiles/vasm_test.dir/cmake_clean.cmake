file(REMOVE_RECURSE
  "CMakeFiles/vasm_test.dir/vasm_test.cc.o"
  "CMakeFiles/vasm_test.dir/vasm_test.cc.o.d"
  "vasm_test"
  "vasm_test.pdb"
  "vasm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vasm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
