# Empty dependencies file for vasm_test.
# This may be replaced when dependencies are built.
