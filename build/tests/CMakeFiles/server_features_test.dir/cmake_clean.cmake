file(REMOVE_RECURSE
  "CMakeFiles/server_features_test.dir/server_features_test.cc.o"
  "CMakeFiles/server_features_test.dir/server_features_test.cc.o.d"
  "server_features_test"
  "server_features_test.pdb"
  "server_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
