# Empty dependencies file for server_features_test.
# This may be replaced when dependencies are built.
