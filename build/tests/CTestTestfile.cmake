# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/objfmt_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/vasm_test[1]_include.cmake")
include("/root/repo/build/tests/cc_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/os_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/linker_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/sim_property_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/ipc_test[1]_include.cmake")
include("/root/repo/build/tests/core_unit_test[1]_include.cmake")
include("/root/repo/build/tests/tools_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/server_features_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/workloadgen_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
