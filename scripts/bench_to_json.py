#!/usr/bin/env python3
"""Merge bench-smoke outputs into one machine-readable BENCH_RESULTS.json.

Inputs (all inside the directory given as argv[1], default ./bench-results):
  *.json             native google-benchmark JSON (--benchmark_out)
  BENCH_TABLE1.txt   table1 console output (rows + PASS/FAIL gate lines)
  BENCH_IPC.txt      bench_ipc console output (sections + PASS/FAIL gate lines)
  BENCH_UPGRADE.txt  bench_upgrade console output (latency windows across a
                     mid-run live library upgrade + PASS/FAIL gate lines)
  BENCH_INTERP.txt   bench_interp console output (legacy-vs-block-engine
                     steady-state throughput rows + PASS/FAIL speedup gates)

Output: BENCH_RESULTS.json in the same directory, schema
"omos-bench-results/1". Exits non-zero if any parsed gate line says FAIL,
so the CI lane stays red even if a later step forgets to grep.
"""

import json
import re
import sys
from pathlib import Path

SCHEMA = "omos-bench-results/1"

# "  OMOS prelinked exec    0.03  0.34  0.37  0.675  4/2  42" — the Ratio
# column is absent on the Traditional row.
TABLE1_ROW = re.compile(
    r"^  (?P<name>\S.*?)\s{2,}(?P<user>\d+\.\d+)\s+(?P<sys>\d+\.\d+)"
    r"\s+(?P<elapsed>\d+\.\d+)(?:\s+(?P<ratio>\d+\.\d+))?"
    r"\s+(?P<shared>\d+)/(?P<private>\d+)\s+(?P<frames>\d+)\s*$"
)
GATE_LINE = re.compile(r"^\s*(?P<verdict>PASS|FAIL): (?P<what>.*)$")
OPEN_LOOP_ROW = re.compile(r"^\s+(?P<clients>\d+)\s+(?P<p50>\d+)\s+(?P<p99>\d+)\s*$")
TRANSPORT_ROW = re.compile(
    r"^\s+(?P<transport>port|stream|ring)\s+(?P<cold>\d+)\s+(?P<warm>\d+)\s*$"
)
UPGRADE_WINDOW_ROW = re.compile(
    r"^\s+(?P<window>pre-roll|mid-roll|post-roll)\s+(?P<requests>\d+)"
    r"\s+(?P<p50>\d+(?:\.\d+)?)\s+(?P<p99>\d+(?:\.\d+)?)\s*$"
)
UPGRADE_RATE_LINE = re.compile(r"^\s+(?P<rate>\d+) requests/sec across the roll")
# "alu           312.4         2784.1     8.91x" from bench_interp.
INTERP_ROW = re.compile(
    r"^(?P<mix>\w+)\s+(?P<interp>\d+\.\d+)\s+(?P<blocks>\d+\.\d+)"
    r"\s+(?P<speedup>\d+\.\d+)x\s*$"
)
INTERP_COUNTER_LINE = re.compile(
    r"^engine counters over the blocks runs: (?P<decoded>\d+) blocks decoded, "
    r"tlb (?P<tlb_hits>\d+) hits / (?P<tlb_misses>\d+) misses"
)


def parse_gates(text):
    return [
        {"name": m.group("what").strip(), "pass": m.group("verdict") == "PASS"}
        for m in (GATE_LINE.match(line) for line in text.splitlines())
        if m
    ]


def parse_table1(text):
    tests, current = {}, None
    for line in text.splitlines():
        header = re.match(r"^Test: (?P<test>.+?) \((?P<iters>\d+) iterations\)", line)
        if header:
            current = {"iterations": int(header.group("iters")), "rows": {}}
            tests[header.group("test")] = current
            continue
        row = TABLE1_ROW.match(line)
        if row and current is not None:
            current["rows"][row.group("name")] = {
                "user_s": float(row.group("user")),
                "sys_s": float(row.group("sys")),
                "elapsed_s": float(row.group("elapsed")),
                "ratio_vs_traditional": (
                    float(row.group("ratio")) if row.group("ratio") else None
                ),
                "shared_pages": int(row.group("shared")),
                "private_pages": int(row.group("private")),
                "frames_in_use": int(row.group("frames")),
            }
    return {"tests": tests, "gates": parse_gates(text)}


def parse_ipc(text):
    open_loop, transports = [], {}
    for line in text.splitlines():
        row = OPEN_LOOP_ROW.match(line)
        if row:
            open_loop.append(
                {
                    "clients": int(row.group("clients")),
                    "p50_ns": int(row.group("p50")),
                    "p99_ns": int(row.group("p99")),
                }
            )
            continue
        t = TRANSPORT_ROW.match(line)
        if t:
            transports[t.group("transport")] = {
                "cold_cycles": int(t.group("cold")),
                "warm_cycles": int(t.group("warm")),
            }
    return {
        "transports": transports,
        "open_loop": open_loop,
        "gates": parse_gates(text),
    }


def parse_upgrade(text):
    windows, rate = {}, None
    for line in text.splitlines():
        row = UPGRADE_WINDOW_ROW.match(line)
        if row:
            windows[row.group("window")] = {
                "requests": int(row.group("requests")),
                "p50_us": float(row.group("p50")),
                "p99_us": float(row.group("p99")),
            }
            continue
        r = UPGRADE_RATE_LINE.match(line)
        if r:
            rate = int(r.group("rate"))
    return {
        "windows": windows,
        "requests_per_sec": rate,
        "gates": parse_gates(text),
    }


def parse_interp(text):
    mixes, counters = {}, None
    for line in text.splitlines():
        row = INTERP_ROW.match(line)
        if row:
            mixes[row.group("mix")] = {
                "interp_insns_per_s": float(row.group("interp")) * 1e6,
                "blocks_insns_per_s": float(row.group("blocks")) * 1e6,
                "speedup": float(row.group("speedup")),
            }
            continue
        c = INTERP_COUNTER_LINE.match(line)
        if c:
            counters = {
                "blocks_decoded": int(c.group("decoded")),
                "tlb_hits": int(c.group("tlb_hits")),
                "tlb_misses": int(c.group("tlb_misses")),
            }
    return {"mixes": mixes, "engine_counters": counters, "gates": parse_gates(text)}


def main():
    results_dir = Path(sys.argv[1] if len(sys.argv) > 1 else "bench-results")
    out = {
        "schema": SCHEMA,
        "benchmarks": {},
        "table1": None,
        "ipc": None,
        "upgrade": None,
        "interp": None,
    }

    for path in sorted(results_dir.glob("*.json")):
        if path.name == "BENCH_RESULTS.json":
            continue
        try:
            out["benchmarks"][path.stem] = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"warning: skipping {path}: {err}", file=sys.stderr)

    table1_txt = results_dir / "BENCH_TABLE1.txt"
    if table1_txt.exists():
        out["table1"] = parse_table1(table1_txt.read_text())
    ipc_txt = results_dir / "BENCH_IPC.txt"
    if ipc_txt.exists():
        out["ipc"] = parse_ipc(ipc_txt.read_text())
    upgrade_txt = results_dir / "BENCH_UPGRADE.txt"
    if upgrade_txt.exists():
        out["upgrade"] = parse_upgrade(upgrade_txt.read_text())
    interp_txt = results_dir / "BENCH_INTERP.txt"
    if interp_txt.exists():
        out["interp"] = parse_interp(interp_txt.read_text())

    gates = (
        (out["table1"] or {}).get("gates", [])
        + (out["ipc"] or {}).get("gates", [])
        + (out["upgrade"] or {}).get("gates", [])
        + (out["interp"] or {}).get("gates", [])
    )
    out["gates_passed"] = all(g["pass"] for g in gates) if gates else None

    target = results_dir / "BENCH_RESULTS.json"
    target.write_text(json.dumps(out, indent=2) + "\n")
    print(
        f"{target}: {len(out['benchmarks'])} benchmark files, "
        f"{len(gates)} gates, gates_passed={out['gates_passed']}"
    )
    return 0 if out["gates_passed"] in (True, None) else 1


if __name__ == "__main__":
    sys.exit(main())
