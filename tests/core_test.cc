// OMOS server tests: blueprints, namespace, instantiation, exec paths,
// interposition (Fig. 2), renaming (Fig. 3), partial-image libraries,
// monitoring and reordering.
#include <gtest/gtest.h>

#include "src/core/server.h"
#include "src/core/sexpr.h"
#include "src/support/metrics.h"
#include "tests/helpers.h"

namespace omos {
namespace {

constexpr char kAddLib[] = R"(
.text
.global add2
add2:
  addi r0, r0, 2
  ret
.global mul3
mul3:
  movi r1, 3
  mul r0, r0, r1
  ret
)";

constexpr char kCrt0[] = R"(
.text
.global _start
_start:
  call main
  sys 0
)";

// main: exit(mul3(add2(5))) = 21
constexpr char kClient[] = R"(
.text
.global main
main:
  push lr
  movi r0, 5
  call add2
  call mul3
  pop lr
  ret
)";

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<OmosServer>(kernel_);
    ASSERT_OK_AND_ASSIGN(ObjectFile crt0, Assemble(kCrt0, "crt0.o"));
    ASSERT_OK_AND_ASSIGN(ObjectFile lib, Assemble(kAddLib, "addlib.o"));
    ASSERT_OK_AND_ASSIGN(ObjectFile client, Assemble(kClient, "client.o"));
    ASSERT_OK(server_->AddFragment("/lib/crt0.o", std::move(crt0)));
    ASSERT_OK(server_->AddFragment("/obj/addlib.o", std::move(lib)));
    ASSERT_OK(server_->AddFragment("/obj/client.o", std::move(client)));
  }

  Result<RunOutcome> RunTaskById(TaskId id) {
    Task* task = kernel_.FindTask(id);
    if (task == nullptr) {
      return Err(ErrorCode::kNotFound, "no task");
    }
    OMOS_TRY_VOID(kernel_.RunTask(*task));
    RunOutcome out;
    out.exit_code = task->exit_code();
    out.output = task->output();
    out.user_cycles = task->user_cycles();
    out.sys_cycles = task->sys_cycles();
    return out;
  }

  Kernel kernel_;
  std::unique_ptr<OmosServer> server_;
};

TEST_F(ServerTest, IntegratedExecMergedProgram) {
  ASSERT_OK(server_->DefineMeta("/bin/prog",
                                "(merge /lib/crt0.o /obj/client.o /obj/addlib.o)"));
  ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/prog", {"prog"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome out, RunTaskById(id));
  EXPECT_EQ(out.exit_code, 21);
}

TEST_F(ServerTest, BootstrapExecCostsMoreThanIntegrated) {
  ASSERT_OK(server_->DefineMeta("/bin/prog",
                                "(merge /lib/crt0.o /obj/client.o /obj/addlib.o)"));
  // Warm the cache first.
  ASSERT_OK_AND_ASSIGN(TaskId warm, server_->IntegratedExec("/bin/prog", {"prog"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome w, RunTaskById(warm));
  (void)w;
  ASSERT_OK_AND_ASSIGN(TaskId boot_id, server_->BootstrapExec("/bin/prog", {"prog"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome boot, RunTaskById(boot_id));
  ASSERT_OK_AND_ASSIGN(TaskId integ_id, server_->IntegratedExec("/bin/prog", {"prog"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome integ, RunTaskById(integ_id));
  EXPECT_EQ(boot.exit_code, 21);
  EXPECT_EQ(integ.exit_code, 21);
  // The bootstrap pays an IPC round trip plus the loader program.
  EXPECT_GT(boot.sys_cycles, integ.sys_cycles);
}

TEST_F(ServerTest, SecondInstantiationHitsCache) {
  ASSERT_OK(server_->DefineMeta("/bin/prog",
                                "(merge /lib/crt0.o /obj/client.o /obj/addlib.o)"));
  uint64_t work1 = 0;
  ASSERT_OK(server_->Instantiate("/bin/prog", {}, &work1));
  EXPECT_GT(work1, 0u);
  uint64_t work2 = 0;
  ASSERT_OK(server_->Instantiate("/bin/prog", {}, &work2));
  EXPECT_EQ(work2, 0u);
  EXPECT_GE(server_->cache_stats().hits, 1u);
}

TEST_F(ServerTest, SelfContainedLibraryIsSharedBetweenTasks) {
  ASSERT_OK(server_->DefineLibrary("/lib/addlib",
                                   "(constraint-list \"T\" 0x1000000)\n"
                                   "(merge /obj/addlib.o)"));
  ASSERT_OK(server_->DefineMeta("/bin/prog", "(merge /lib/crt0.o /obj/client.o /lib/addlib)"));
  ASSERT_OK_AND_ASSIGN(TaskId id1, server_->IntegratedExec("/bin/prog", {"prog"}));
  ASSERT_OK_AND_ASSIGN(TaskId id2, server_->IntegratedExec("/bin/prog", {"prog"}));
  Task* t1 = kernel_.FindTask(id1);
  Task* t2 = kernel_.FindTask(id2);
  ASSERT_NE(t1, nullptr);
  ASSERT_NE(t2, nullptr);
  // Both tasks share library + program text physically.
  EXPECT_GT(t1->space().shared_pages(), 0u);
  EXPECT_GT(t2->space().shared_pages(), 0u);
  ASSERT_OK_AND_ASSIGN(RunOutcome o1, RunTaskById(id1));
  ASSERT_OK_AND_ASSIGN(RunOutcome o2, RunTaskById(id2));
  EXPECT_EQ(o1.exit_code, 21);
  EXPECT_EQ(o2.exit_code, 21);
  // The library was constrained near 0x1000000.
  ASSERT_OK_AND_ASSIGN(const CachedImage* lib,
                       server_->Instantiate("/lib/addlib",
                                            Specialization{"lib-constrained", {}}, nullptr));
  EXPECT_EQ(lib->image.text_base, 0x1000000u);
}

// The vm_map CoW exec path (§5): each task's data segment maps copy-on-write
// against the cached master, so one task's writes are invisible to other
// tasks and to the cache, and teardown returns every privatized frame.
TEST_F(ServerTest, CowExecIsolatesDataWritesBetweenTasks) {
  // main: counter += 1; exit(counter). Starts at 7, so every task that gets
  // its own pristine copy exits 8; shared writes would leak to 9.
  constexpr char kCounter[] = R"(
.text
.global main
main:
  lea r1, counter
  ld r0, [r1+0]
  addi r0, r0, 1
  st r0, [r1+0]
  ld r0, [r1+0]
  ret
.data
.align 4
counter: .word 7
)";
  ASSERT_OK_AND_ASSIGN(ObjectFile counter, Assemble(kCounter, "counter.o"));
  ASSERT_OK(server_->AddFragment("/obj/counter.o", std::move(counter)));
  ASSERT_OK(server_->DefineMeta("/bin/count", "(merge /lib/crt0.o /obj/counter.o)"));

  // Warm the cache, then capture the frame baseline with only masters live.
  ASSERT_OK_AND_ASSIGN(TaskId warm, server_->IntegratedExec("/bin/count", {"count"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome w, RunTaskById(warm));
  EXPECT_EQ(w.exit_code, 8);
  server_->ReleaseTask(warm);
  kernel_.DestroyTask(warm);
  uint32_t baseline = kernel_.phys().frames_in_use();
  uint64_t cow_before = MetricsRegistry::Global().GetCounter("vm.cow_faults")->value();

  ASSERT_OK_AND_ASSIGN(TaskId id1, server_->IntegratedExec("/bin/count", {"count"}));
  ASSERT_OK_AND_ASSIGN(TaskId id2, server_->IntegratedExec("/bin/count", {"count"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome o1, RunTaskById(id1));
  EXPECT_EQ(o1.exit_code, 8);
  // Task 2 runs after task 1 already wrote its counter — still sees 7+1.
  ASSERT_OK_AND_ASSIGN(RunOutcome o2, RunTaskById(id2));
  EXPECT_EQ(o2.exit_code, 8);
  EXPECT_GT(MetricsRegistry::Global().GetCounter("vm.cow_faults")->value(), cow_before);

  // The cached master's bytes are untouched: a fresh instantiate still sees 7.
  ASSERT_OK_AND_ASSIGN(const CachedImage* cached,
                       server_->Instantiate("/bin/count", {}, nullptr));
  ASSERT_TRUE(cached->data_seg.has_value());
  const uint8_t* master_page = kernel_.phys().FrameData(cached->data_seg->frames()[0]);
  EXPECT_EQ(master_page[0], 7);
  EXPECT_EQ(cached->image.data[0], 7);

  // Exits return every CoW-broken and demand-filled frame to the pool.
  server_->ReleaseTask(id1);
  kernel_.DestroyTask(id1);
  server_->ReleaseTask(id2);
  kernel_.DestroyTask(id2);
  EXPECT_EQ(kernel_.phys().frames_in_use(), baseline);
}

// Figure 2 of the paper: interpose on a routine, preserving access to the
// original under a new name.
TEST_F(ServerTest, MallocInterposition) {
  // "libc" with a add2; wrapper add2 that adds 100 then calls the original.
  ASSERT_OK_AND_ASSIGN(ObjectFile wrapper, Assemble(R"(
.text
.global add2
add2:
  push lr
  addi r0, r0, 100
  call _REAL_add2
  pop lr
  ret
)", "wrap.o"));
  ASSERT_OK(server_->AddFragment("/lib/test_add2.o", std::move(wrapper)));
  ASSERT_OK(server_->DefineMeta("/bin/wrapped", R"(
(hide "_REAL_add2"
  (merge
    (restrict "^add2$"
      (copy_as "^add2$" "_REAL_add2"
        (merge /lib/crt0.o /obj/client.o /obj/addlib.o)))
    /lib/test_add2.o))
)"));
  ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/wrapped", {"prog"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome out, RunTaskById(id));
  // add2(5) -> wrapper: 5+100=105 -> real: 107 -> mul3: 321.
  EXPECT_EQ(out.exit_code, 321);
}

// Figure 3 of the paper: resolve an undefined data reference from C source
// and reroute an undefined routine to abort.
TEST_F(ServerTest, SourceOperatorAndRenameToAbort) {
  ASSERT_OK_AND_ASSIGN(ObjectFile uses_undef, Assemble(R"(
.text
.global main
main:
  push lr
  lea r1, undef_var
  ld r0, [r1+0]
  call undefined_routine
  pop lr
  ret
)", "problem.o"));
  ASSERT_OK(server_->AddFragment("/lib/lib-with-problems.o", std::move(uses_undef)));
  ASSERT_OK_AND_ASSIGN(ObjectFile abort_obj, Assemble(R"(
.text
.global abort
abort:
  movi r0, 134
  sys 0
)", "abort.o"));
  ASSERT_OK(server_->AddFragment("/lib/abort.o", std::move(abort_obj)));
  ASSERT_OK(server_->DefineMeta("/bin/fixed", R"(
(merge
  /lib/crt0.o /lib/abort.o
  (source "c" "int undef_var = 0;\n")
  (rename "^undefined_routine$" "abort" "refs"
    /lib/lib-with-problems.o))
)"));
  ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/fixed", {"prog"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome out, RunTaskById(id));
  // The rerouted call aborts with the distinctive code.
  EXPECT_EQ(out.exit_code, 134);
}

TEST_F(ServerTest, PartialImageLazyStubs) {
  ASSERT_OK(server_->DefineLibrary("/lib/addlib", "(merge /obj/addlib.o)"));
  ASSERT_OK(server_->DefineMeta("/bin/dynprog",
                                "(merge /lib/crt0.o /obj/client.o"
                                " (specialize \"lib-dynamic\" /lib/addlib))"));
  ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/dynprog", {"prog"}));
  Task* task = kernel_.FindTask(id);
  ASSERT_NE(task, nullptr);
  // Before running, the library is not mapped (only program + stack).
  size_t regions_before = task->space().Regions().size();
  ASSERT_OK_AND_ASSIGN(RunOutcome out, RunTaskById(id));
  EXPECT_EQ(out.exit_code, 21);
  // The first call faulted the library in.
  EXPECT_GT(task->space().Regions().size(), regions_before);
}

TEST_F(ServerTest, PartialImageSecondCallUsesPatchedSlot) {
  ASSERT_OK(server_->DefineLibrary("/lib/addlib", "(merge /obj/addlib.o)"));
  // Client calls add2 twice; second call must not re-trap.
  ASSERT_OK_AND_ASSIGN(ObjectFile client2, Assemble(R"(
.text
.global main
main:
  push lr
  movi r0, 1
  call add2
  call add2
  pop lr
  ret
)", "client2.o"));
  ASSERT_OK(server_->AddFragment("/obj/client2.o", std::move(client2)));
  ASSERT_OK(server_->DefineMeta("/bin/dyn2",
                                "(merge /lib/crt0.o /obj/client2.o"
                                " (specialize \"lib-dynamic\" /lib/addlib))"));
  ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/dyn2", {"prog"}));
  ASSERT_OK_AND_ASSIGN(RunOutcome out, RunTaskById(id));
  EXPECT_EQ(out.exit_code, 5);
}

TEST_F(ServerTest, MonitorCountsCalls) {
  ASSERT_OK(server_->DefineMeta("/bin/prog",
                                "(merge /lib/crt0.o /obj/client.o /obj/addlib.o)"));
  Specialization monitor{"monitor", {}};
  ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/prog", {"prog"}, monitor));
  ASSERT_OK_AND_ASSIGN(RunOutcome out, RunTaskById(id));
  EXPECT_EQ(out.exit_code, 21);
  ASSERT_OK_AND_ASSIGN(auto counts, server_->MonitorCounts("/bin/prog"));
  uint64_t add2_count = 0;
  uint64_t mul3_count = 0;
  for (const auto& [name, count] : counts) {
    if (name == "add2") {
      add2_count = count;
    }
    if (name == "mul3") {
      mul3_count = count;
    }
  }
  EXPECT_EQ(add2_count, 1u);
  EXPECT_EQ(mul3_count, 1u);
}

TEST_F(ServerTest, ReorderedProgramStillWorks) {
  ASSERT_OK(server_->DefineMeta("/bin/prog",
                                "(merge /lib/crt0.o /obj/client.o /obj/addlib.o)"));
  Specialization monitor{"monitor", {}};
  ASSERT_OK_AND_ASSIGN(TaskId mid, server_->IntegratedExec("/bin/prog", {"prog"}, monitor));
  ASSERT_OK_AND_ASSIGN(RunOutcome mon_out, RunTaskById(mid));
  EXPECT_EQ(mon_out.exit_code, 21);
  ASSERT_OK(server_->DerivePreferredOrder("/bin/prog"));
  Specialization reorder{"reorder", {}};
  ASSERT_OK_AND_ASSIGN(TaskId rid, server_->IntegratedExec("/bin/prog", {"prog"}, reorder));
  ASSERT_OK_AND_ASSIGN(RunOutcome out, RunTaskById(rid));
  EXPECT_EQ(out.exit_code, 21);
}

TEST_F(ServerTest, DynamicLoadIntoRunningTask) {
  ASSERT_OK(server_->DefineMeta("/bin/prog",
                                "(merge /lib/crt0.o /obj/client.o /obj/addlib.o)"));
  ASSERT_OK_AND_ASSIGN(TaskId id, server_->IntegratedExec("/bin/prog", {"prog"}));
  Task* task = kernel_.FindTask(id);
  ASSERT_NE(task, nullptr);
  // Load a plugin that calls back into the client's add2.
  ASSERT_OK_AND_ASSIGN(ObjectFile plugin, Assemble(R"(
.text
.global plugin_entry
plugin_entry:
  push lr
  movi r0, 7
  call add2
  pop lr
  ret
)", "plugin.o"));
  ASSERT_OK(server_->AddFragment("/obj/plugin.o", std::move(plugin)));
  ASSERT_OK_AND_ASSIGN(auto loaded,
                       server_->DynamicLoad(*task, "(merge /obj/plugin.o)", {"plugin_entry"}));
  ASSERT_EQ(loaded.symbol_values.size(), 1u);
  ASSERT_NE(loaded.symbol_values[0], 0u);
  // Jump the task to the plugin entry instead of its normal start.
  task->set_pc(loaded.symbol_values[0]);
  task->set_reg(kRegLr, 0);  // returning would fault; plugin must not return
  // Run a few steps: plugin_entry pushes, calls add2, then pops and rets to 0
  // which faults — so instead verify via a wrapper that exits.
  // Simpler: check the symbol is inside the mapped region.
  bool found = false;
  for (const auto& region : task->space().Regions()) {
    if (loaded.symbol_values[0] >= region.base &&
        loaded.symbol_values[0] < region.base + region.size) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ServerTest, IpcProtocolRoundTrip) {
  ASSERT_OK(server_->DefineMeta("/bin/prog",
                                "(merge /lib/crt0.o /obj/client.o /obj/addlib.o)"));
  Channel channel = server_->MakeChannel();
  OmosRequest request;
  request.op = OmosOp::kListNamespace;
  request.path = "/bin";
  ASSERT_OK_AND_ASSIGN(OmosReply reply, channel.Call(request, nullptr));
  ASSERT_TRUE(reply.ok);
  ASSERT_EQ(reply.names.size(), 1u);
  EXPECT_EQ(reply.names[0], "prog");
  EXPECT_GT(channel.cycles_billed(), 0u);

  OmosRequest stats;
  stats.op = OmosOp::kStats;
  ASSERT_OK_AND_ASSIGN(OmosReply stats_reply, channel.Call(stats, nullptr));
  EXPECT_TRUE(stats_reply.ok);
}

TEST_F(ServerTest, MalformedIpcMessageRejected) {
  std::vector<uint8_t> garbage = {1, 2, 3, 4, 5};
  std::vector<uint8_t> reply_bytes = server_->ServeMessage(garbage);
  ASSERT_OK_AND_ASSIGN(OmosReply reply, DecodeReply(reply_bytes));
  EXPECT_FALSE(reply.ok);
  EXPECT_FALSE(reply.error.empty());
}

TEST_F(ServerTest, ExecFileInterpreterLine) {
  ASSERT_OK(server_->DefineMeta("/bin/prog",
                                "(merge /lib/crt0.o /obj/client.o /obj/addlib.o)"));
  kernel_.fs().WriteFile("/usr/bin/prog", "#!omos /bin/prog\n");
  ASSERT_OK_AND_ASSIGN(TaskId id, server_->ExecFile("/usr/bin/prog", {"prog"}, true));
  ASSERT_OK_AND_ASSIGN(RunOutcome out, RunTaskById(id));
  EXPECT_EQ(out.exit_code, 21);
}

TEST_F(ServerTest, UnknownMetaObjectFails) {
  auto result = server_->IntegratedExec("/bin/nonexistent", {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kNotFound);
}

TEST_F(ServerTest, UnresolvedReferenceFailsInstantiation) {
  ASSERT_OK(server_->DefineMeta("/bin/broken", "(merge /lib/crt0.o /obj/client.o)"));
  auto result = server_->Instantiate("/bin/broken", {}, nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kUnresolvedSymbol);
}

}  // namespace
}  // namespace omos
